// Lifetimeguarantee demonstrates the Wear Quota mechanism (§IV-C): a
// write-hammering workload burns the memory out in about a year under
// normal writes, and the quota pins the projected lifetime back to the
// 8-year target by forcing slow writes once a bank exceeds its
// per-period wear budget.
package main

import (
	"fmt"
	"log"

	"mellow"
)

func main() {
	cfg := mellow.DefaultConfig()
	cfg.Run.WarmupInstructions = 1_000_000
	cfg.Run.DetailedInstructions = 6_000_000

	const workload = "lbm" // the suite's heaviest writer

	fmt.Printf("workload: %s  (target lifetime: 8 years)\n\n", workload)
	for _, name := range []string{"Norm", "Norm+WQ", "BE-Mellow+SC", "BE-Mellow+SC+WQ"} {
		spec, err := mellow.ParsePolicy(name)
		if err != nil {
			log.Fatal(err)
		}
		res, err := mellow.Run(cfg, spec, workload)
		if err != nil {
			log.Fatal(err)
		}
		guard := " "
		if res.LifetimeYears() >= 7.0 { // short-run estimate of the 8y floor
			guard = "*"
		}
		fmt.Printf("%-16s lifetime %6.2f y %s   IPC %.3f   slow writes %d/%d\n",
			name, res.LifetimeYears(), guard, res.IPC,
			res.Mem.SlowWrites(), res.Mem.TotalWrites())
	}
	fmt.Println("\n* meets the lifetime floor (8 years at full run length)")
}
