// Policycompare reproduces the core message of Figures 10 and 11 on one
// workload: sweep the paper's policy line-up and show the
// performance/lifetime trade-off each point makes.
//
// Run with a workload argument to try others, e.g.:
//
//	go run ./examples/policycompare lbm
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"mellow"
)

func main() {
	workload := "GemsFDTD"
	if len(os.Args) > 1 {
		workload = os.Args[1]
	}

	cfg := mellow.DefaultConfig()
	cfg.Run.WarmupInstructions = 1_000_000
	cfg.Run.DetailedInstructions = 4_000_000

	var base mellow.Result
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "policy\tIPC\tvs Norm\tlifetime (y)\tvs Norm\tslow writes\n")
	for i, spec := range mellow.Policies() {
		res, err := mellow.Run(cfg, spec, workload)
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			base = res
		}
		slowShare := 0.0
		if tw := res.Mem.TotalWrites(); tw > 0 {
			slowShare = float64(res.Mem.SlowWrites()) / float64(tw)
		}
		fmt.Fprintf(w, "%s\t%.3f\t%.2fx\t%.2f\t%.2fx\t%.0f%%\n",
			res.Policy, res.IPC, res.IPC/base.IPC,
			res.LifetimeYears(), res.LifetimeYears()/base.LifetimeYears(),
			slowShare*100)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
}
