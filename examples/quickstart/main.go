// Quickstart: simulate one workload under the paper's best policy and
// print the headline metrics — performance (IPC) and memory lifetime.
package main

import (
	"fmt"
	"log"

	"mellow"
)

func main() {
	cfg := mellow.DefaultConfig()
	// Scale the run down so the example finishes in a couple of seconds;
	// drop these two lines for full-length (paper-scale) runs.
	cfg.Run.WarmupInstructions = 1_000_000
	cfg.Run.DetailedInstructions = 4_000_000

	spec, err := mellow.ParsePolicy("BE-Mellow+SC+WQ")
	if err != nil {
		log.Fatal(err)
	}

	res, err := mellow.Run(cfg, spec, "stream")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload: %s   policy: %s\n", res.Workload, res.Policy)
	fmt.Printf("IPC:              %.3f\n", res.IPC)
	fmt.Printf("memory lifetime:  %.1f years\n", res.LifetimeYears())
	fmt.Printf("slow writes:      %d of %d\n", res.Mem.SlowWrites(), res.Mem.TotalWrites())
	fmt.Printf("eager writebacks: %d\n", res.Mem.EagerDone)
}
