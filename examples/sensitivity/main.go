// Sensitivity explores Equation 2's ExpoFactor (Figure 17): how much of
// Mellow Writes' lifetime benefit survives if slowing a write pays off
// only linearly (Expo = 1) instead of quadratically or cubically?
package main

import (
	"fmt"
	"log"

	"mellow"
)

func main() {
	cfg := mellow.DefaultConfig()
	cfg.Run.WarmupInstructions = 1_000_000
	cfg.Run.DetailedInstructions = 4_000_000

	const workload = "GemsFDTD"
	spec, err := mellow.ParsePolicy("BE-Mellow+SC")
	if err != nil {
		log.Fatal(err)
	}
	norm, err := mellow.ParsePolicy("Norm")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload: %s, policy: %s\n\n", workload, spec.Name)
	fmt.Println("ExpoFactor  lifetime (y)  vs Norm")
	for _, expo := range []float64{1.0, 1.5, 2.0, 2.5, 3.0} {
		c := cfg
		c.Memory.Device.ExpoFactor = expo
		res, err := mellow.Run(c, spec, workload)
		if err != nil {
			log.Fatal(err)
		}
		baseline, err := mellow.Run(c, norm, workload)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("   %.1f        %7.2f     %.2fx\n",
			expo, res.LifetimeYears(), res.LifetimeYears()/baseline.LifetimeYears())
	}
	fmt.Println("\nEven at Expo=1.0 the mechanism retains a lifetime advantage (§VI-G).")
}
