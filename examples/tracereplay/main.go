// Tracereplay shows the bring-your-own-trace path: record a trace from
// a built-in generator (any tool can produce the same textual format),
// then replay it through the full memory system under two policies.
//
// The format is one record per line: "<gap> <hex-address> <R|W>[!]",
// where gap counts non-memory instructions and '!' marks a dependent
// load.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"mellow"
)

func main() {
	path := filepath.Join(os.TempDir(), "mellow-example.trace")

	// 1. Record: 200k ops of the GUPS random-update kernel.
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := mellow.RecordTrace(f, "gups", 1, 200_000); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recorded %s\n\n", path)

	// 2. Replay under two policies.
	cfg := mellow.DefaultConfig()
	cfg.Run.WarmupInstructions = 500_000
	cfg.Run.DetailedInstructions = 2_000_000

	for _, name := range []string{"Norm", "BE-Mellow+SC"} {
		spec, err := mellow.ParsePolicy(name)
		if err != nil {
			log.Fatal(err)
		}
		in, err := os.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		w, err := mellow.WorkloadFromReader("gups-trace", in)
		in.Close()
		if err != nil {
			log.Fatal(err)
		}
		res, err := mellow.RunWorkload(cfg, spec, w)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s IPC %.3f   lifetime %6.2f y   slow writes %d   wasted eager %d\n",
			name, res.IPC, res.LifetimeYears(), res.Mem.SlowWrites(), res.Cache.WastedEager)
	}
	fmt.Println("\nNote: a short cyclic trace re-touches every line each cycle, so eager")
	fmt.Println("write-backs are often premature here — watch the wasted-eager count.")
	fmt.Println("Real traces (or the built-in generators) give eager writes room to help.")
}
