// Multiprogram runs two programs on separate cores sharing one
// resistive memory system and shows what interference does to Mellow
// Writes: with a co-runner stealing bank idle time, fewer writes can
// afford to be slow — the multi-core analogue of the paper's
// bank-parallelism sensitivity (Figure 18).
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"mellow"
)

func main() {
	cfg := mellow.DefaultConfig()
	cfg.Run.WarmupInstructions = 1_000_000
	cfg.Run.DetailedInstructions = 3_000_000

	mix := []string{"GemsFDTD", "milc"}
	fmt.Printf("mix: %v (private caches, shared 16-bank ReRAM)\n\n", mix)

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "policy\tIPC(%s)\tIPC(%s)\tsum\tlifetime\tslow writes\n", mix[0], mix[1])
	for _, name := range []string{"Norm", "BE-Mellow+SC", "BE-Mellow+SC+WQ"} {
		spec, err := mellow.ParsePolicy(name)
		if err != nil {
			log.Fatal(err)
		}
		m, err := mellow.RunMix(cfg, spec, mix...)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "%s\t%.3f\t%.3f\t%.3f\t%.2f y\t%d/%d\n",
			name, m.Cores[0].IPC, m.Cores[1].IPC, m.WeightedIPC(),
			m.LifetimeYears(), m.Mem.SlowWrites(), m.Mem.TotalWrites())
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
}
