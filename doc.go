// Package mellow is a full reproduction of "Mellow Writes: Extending
// Lifetime in Resistive Memories through Selective Slow Write Backs"
// (Zhang et al., ISCA 2016) as a Go library.
//
// Resistive memories (ReRAM, PCM) trade write speed for endurance: a
// pulse stretched by N× wears the cell N^ExpoFactor times less. The
// paper — and this library — exploits idle memory-bank time to issue
// such slow writes without hurting performance, using three mechanisms:
// Bank-Aware Mellow Writes, Eager Mellow Writes, and a Wear Quota that
// guarantees a minimum lifetime.
//
// The package is a facade over a complete simulation stack built from
// scratch (see DESIGN.md): a discrete-event kernel, an interval OoO core
// model, a three-level cache hierarchy with the eager-write-back
// profiler, an NVMain-class resistive-memory controller with read/write/
// eager queues, write drains and write cancellation, Start-Gap wear
// leveling, and an nvsim-calibrated energy model.
//
// Quick start:
//
//	cfg := mellow.DefaultConfig()
//	spec, _ := mellow.ParsePolicy("BE-Mellow+SC+WQ")
//	res, err := mellow.Run(cfg, spec, "stream")
//	fmt.Println(res.IPC, res.LifetimeYears())
//
// Every table and figure of the paper's evaluation can be regenerated
// through Experiments (or the mellowbench command).
package mellow
