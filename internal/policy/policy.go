// Package policy defines the memory write policies of Table III and the
// slow-vs-normal decision logic of Figure 9 — the paper's central
// contribution.
//
// A policy is a Spec: a base write mode, the two Mellow Writes mechanisms
// (bank-aware and eager), the cancellation options (+NC/+SC) and the Wear
// Quota scheme (+WQ). Policies are pure data plus pure decision
// functions; the memory controller (package mem) feeds them queue state
// and quota state.
package policy

import (
	"fmt"
	"sort"
	"strings"

	"mellow/internal/nvm"
	"mellow/internal/sim"
)

// Spec describes one memory write policy.
type Spec struct {
	// Name is the canonical Table III name, e.g. "BE-Mellow+SC+WQ".
	Name string
	// StaticMode is the pulse used for ordinary write-queue writes when
	// no mellow rule fires: Normal for Norm-family policies, the slow
	// pulse for Slow-family ones.
	StaticMode nvm.WriteMode
	// SlowMode is the slow pulse used by mellow decisions and by the
	// eager queue (the paper's default is the 3.0× pulse).
	SlowMode nvm.WriteMode
	// BankAware enables Bank-Aware Mellow Writes (§IV-A).
	BankAware bool
	// Eager enables Eager Mellow Writes (§IV-B).
	Eager bool
	// EagerMode is the pulse for eager write-backs. In the Mellow
	// schemes the eager queue only issues slow writes; the static
	// E-Norm policy eagerly writes back at normal speed.
	EagerMode nvm.WriteMode
	// NormalCancellable (+NC) lets an incoming read cancel an in-flight
	// normal write to its bank.
	NormalCancellable bool
	// SlowCancellable (+SC) does the same for slow writes.
	SlowCancellable bool
	// Pausable (+WP) enables write pausing (Qureshi et al., HPCA 2010,
	// §VII): an incoming read suspends the in-flight write, which later
	// resumes from where it stopped instead of being redone. Pausing
	// takes precedence over cancellation when both are enabled.
	Pausable bool
	// WearQuota (+WQ) enables the guaranteed-lifetime scheme (§IV-C).
	WearQuota bool
	// MultiLatency (+ML) enables the paper's future-work extension
	// (§VI-I, §VIII): instead of choosing between just the normal and the
	// 3× pulse, a bank-aware decision grades the pulse by queue pressure —
	// the fewer writes competing for the bank, the slower (and gentler)
	// the pulse.
	MultiLatency bool
	// TargetLifetime is the Wear Quota lifetime floor (8 years).
	TargetLifetime Years
	// QuotaRatio is Ratio_quota (0.9: headroom for Start-Gap slack).
	QuotaRatio float64
	// QuotaPeriod is the Wear Quota sample period (500 µs).
	QuotaPeriod sim.Tick
}

// Years is a duration in years, the paper's lifetime unit.
type Years float64

// Ticks converts a year count to simulation ticks.
func (y Years) Ticks() sim.Tick {
	return sim.Tick(float64(y) * SecondsPerYear * 1e9 * sim.TicksPerNS)
}

// SecondsPerYear uses the Julian year.
const SecondsPerYear = 365.25 * 24 * 3600

// Default Wear Quota parameters (Table II).
const (
	DefaultTargetLifetime Years   = 8
	DefaultQuotaRatio     float64 = 0.90
)

// DefaultQuotaPeriod is the Wear Quota sample period (500,000 ns).
func DefaultQuotaPeriod() sim.Tick { return sim.NS(500000) }

// WriteDecision reports how a write should be issued.
type WriteDecision struct {
	Mode        nvm.WriteMode
	Cancellable bool
	Pausable    bool
}

// QueueView is the controller state the decision logic inspects for one
// bank, mirroring Figures 4–6 and 9.
type QueueView struct {
	// WritesForBank is the number of write-queue entries for the bank,
	// including the candidate write itself.
	WritesForBank int
	// QuotaExceeded reports whether the bank exhausted its Wear Quota in
	// previous periods (ExceedQuota > 0).
	QuotaExceeded bool
	// Draining reports whether the controller is in write-drain mode.
	Draining bool
}

// DecideWrite implements Figure 9 for a write picked from the write
// queue. The caller guarantees no read is pending for the bank (reads
// always have priority).
func (s Spec) DecideWrite(v QueueView) WriteDecision {
	mode := s.StaticMode
	switch {
	case s.WearQuota && v.QuotaExceeded:
		// Quota exhausted: only slow writes this period.
		mode = s.SlowMode
	case s.BankAware && s.MultiLatency:
		mode = gradedMode(v.WritesForBank, s.StaticMode)
	case s.BankAware && v.WritesForBank == 1:
		// Sole request for the bank: free to be mellow.
		mode = s.SlowMode
	}
	return WriteDecision{
		Mode:        mode,
		Cancellable: s.cancellable(mode, v.Draining),
		Pausable:    s.Pausable && !v.Draining,
	}
}

// gradedMode implements the multi-latency extension: pulse speed graded
// by how many writes compete for the bank.
func gradedMode(writesForBank int, fallback nvm.WriteMode) nvm.WriteMode {
	switch writesForBank {
	case 1:
		return nvm.WriteSlow30
	case 2:
		return nvm.WriteSlow20
	case 3:
		return nvm.WriteSlow15
	default:
		return fallback
	}
}

// DecideEager returns the decision for an entry issued from the Eager
// Mellow Queue. The caller guarantees the bank has no read- or
// write-queue entries.
func (s Spec) DecideEager(v QueueView) WriteDecision {
	mode := s.EagerMode
	if s.WearQuota && v.QuotaExceeded {
		mode = s.SlowMode
	}
	// Eager writes never participate in drains, so Draining is forced
	// false for cancellability: cancelling them cannot cause a drain
	// (§V: "the eager write queue does not trigger write drains, so
	// cancelling eager slow writes will not increase the possibility of
	// write drains").
	return WriteDecision{Mode: mode, Cancellable: s.cancellable(mode, false), Pausable: s.Pausable}
}

// cancellable reports whether a write in the given mode may be cancelled
// by an incoming read. Writes are never cancellable while the controller
// drains: the drain exists to free the write queue, and cancelling its
// writes would livelock it.
func (s Spec) cancellable(mode nvm.WriteMode, draining bool) bool {
	if draining {
		return false
	}
	if mode.IsSlow() {
		return s.SlowCancellable
	}
	return s.NormalCancellable
}

// base constructs the six basic policies of Table III.
func base(name string, static nvm.WriteMode, bankAware, eager bool, eagerMode nvm.WriteMode) Spec {
	return Spec{
		Name:           name,
		StaticMode:     static,
		SlowMode:       nvm.WriteSlow30,
		BankAware:      bankAware,
		Eager:          eager,
		EagerMode:      eagerMode,
		TargetLifetime: DefaultTargetLifetime,
		QuotaRatio:     DefaultQuotaRatio,
		QuotaPeriod:    DefaultQuotaPeriod(),
	}
}

// The six basic policies of Table III.
func Norm() Spec { return base("Norm", nvm.WriteNormal, false, false, nvm.WriteNormal) }

// Slow uses only slow writes.
func Slow() Spec { return base("Slow", nvm.WriteSlow30, false, false, nvm.WriteSlow30) }

// BMellow is Bank-Aware Mellow Writes.
func BMellow() Spec { return base("B-Mellow", nvm.WriteNormal, true, false, nvm.WriteSlow30) }

// BEMellow combines Bank-Aware and Eager Mellow Writes.
func BEMellow() Spec { return base("BE-Mellow", nvm.WriteNormal, true, true, nvm.WriteSlow30) }

// ENorm is normal writes plus eager (normal-speed) write-backs.
func ENorm() Spec { return base("E-Norm", nvm.WriteNormal, false, true, nvm.WriteNormal) }

// ESlow is slow writes plus eager slow write-backs.
func ESlow() Spec { return base("E-Slow", nvm.WriteSlow30, false, true, nvm.WriteSlow30) }

// WithNC returns the policy with normal writes cancellable.
func (s Spec) WithNC() Spec {
	s.NormalCancellable = true
	s.Name += "+NC"
	return s
}

// WithSC returns the policy with slow writes cancellable.
func (s Spec) WithSC() Spec {
	s.SlowCancellable = true
	s.Name += "+SC"
	return s
}

// WithWQ returns the policy with the Wear Quota scheme enabled.
func (s Spec) WithWQ() Spec {
	s.WearQuota = true
	s.Name += "+WQ"
	return s
}

// WithWP returns the policy with write pausing enabled.
func (s Spec) WithWP() Spec {
	s.Pausable = true
	s.Name += "+WP"
	return s
}

// WithML returns the policy with multi-latency graded pulses enabled
// (only meaningful for bank-aware policies).
func (s Spec) WithML() Spec {
	s.MultiLatency = true
	s.Name += "+ML"
	return s
}

// WithSlowMode returns the policy using a different slow pulse (the
// motivation study sweeps 1.5×, 2× and 3×). The static mode follows for
// Slow-family policies.
func (s Spec) WithSlowMode(m nvm.WriteMode) Spec {
	if s.StaticMode.IsSlow() {
		s.StaticMode = m
	}
	if s.EagerMode.IsSlow() {
		s.EagerMode = m
	}
	s.SlowMode = m
	if m != nvm.WriteSlow30 {
		s.Name += fmt.Sprintf("@%gx", m.Multiplier())
	}
	return s
}

// Parse resolves a canonical policy name such as "BE-Mellow+SC+WQ" or
// "Slow@1.5x+NC".
func Parse(name string) (Spec, error) {
	parts := strings.Split(name, "+")
	head := parts[0]
	var mult string
	if i := strings.Index(head, "@"); i >= 0 {
		mult = head[i+1:]
		head = head[:i]
	}
	var s Spec
	switch head {
	case "Norm":
		s = Norm()
	case "Slow":
		s = Slow()
	case "B-Mellow":
		s = BMellow()
	case "BE-Mellow":
		s = BEMellow()
	case "E-Norm":
		s = ENorm()
	case "E-Slow":
		s = ESlow()
	default:
		return Spec{}, fmt.Errorf("policy: unknown base policy %q", head)
	}
	if mult != "" {
		var n float64
		if _, err := fmt.Sscanf(mult, "%gx", &n); err != nil {
			return Spec{}, fmt.Errorf("policy: bad multiplier %q in %q", mult, name)
		}
		m, err := nvm.ModeForMultiplier(n)
		if err != nil {
			return Spec{}, err
		}
		s = s.WithSlowMode(m)
	}
	for _, mod := range parts[1:] {
		switch mod {
		case "NC":
			s = s.WithNC()
		case "SC":
			s = s.WithSC()
		case "WQ":
			s = s.WithWQ()
		case "WP":
			s = s.WithWP()
		case "ML":
			s = s.WithML()
		default:
			return Spec{}, fmt.Errorf("policy: unknown modifier %q in %q", mod, name)
		}
	}
	return s, nil
}

// EvaluationSet returns the policy line-up of Figures 10–16, in the
// paper's presentation order.
func EvaluationSet() []Spec {
	return []Spec{
		Norm(),
		ENorm().WithNC(),
		Slow(),
		ESlow().WithSC(),
		BMellow().WithSC(),
		BEMellow().WithSC(),
		Norm().WithWQ(),
		BMellow().WithSC().WithWQ(),
		BEMellow().WithSC().WithWQ(),
	}
}

// Names returns the canonical names of a policy set, for table headers.
func Names(specs []Spec) []string {
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}

// Registry lists every named preset reachable from Parse, sorted, for
// CLI help text.
func Registry() []string {
	names := []string{"Norm", "Slow", "B-Mellow", "BE-Mellow", "E-Norm", "E-Slow"}
	sort.Strings(names)
	return names
}
