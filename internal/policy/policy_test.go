package policy

import (
	"testing"

	"mellow/internal/nvm"
)

func TestFigure9Decisions(t *testing.T) {
	be := BEMellow().WithSC().WithWQ()
	cases := []struct {
		name string
		view QueueView
		want nvm.WriteMode
	}{
		{"single request in WQ -> slow", QueueView{WritesForBank: 1}, nvm.WriteSlow30},
		{"multiple requests, quota ok -> normal", QueueView{WritesForBank: 3}, nvm.WriteNormal},
		{"multiple requests, quota exceeded -> slow", QueueView{WritesForBank: 3, QuotaExceeded: true}, nvm.WriteSlow30},
	}
	for _, c := range cases {
		if got := be.DecideWrite(c.view).Mode; got != c.want {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
		}
	}
	// Empty write queue + eager entry -> slow write from the eager queue.
	if got := be.DecideEager(QueueView{}).Mode; got != nvm.WriteSlow30 {
		t.Errorf("eager issue: got %v, want slow", got)
	}
}

func TestNormAlwaysNormal(t *testing.T) {
	n := Norm()
	for w := 0; w <= 5; w++ {
		if got := n.DecideWrite(QueueView{WritesForBank: w}).Mode; got != nvm.WriteNormal {
			t.Errorf("Norm with %d writes: got %v", w, got)
		}
	}
}

func TestSlowAlwaysSlow(t *testing.T) {
	s := Slow()
	for w := 1; w <= 5; w++ {
		if got := s.DecideWrite(QueueView{WritesForBank: w}).Mode; got != nvm.WriteSlow30 {
			t.Errorf("Slow with %d writes: got %v", w, got)
		}
	}
}

func TestBankAwareOnlyWhenSole(t *testing.T) {
	b := BMellow()
	if got := b.DecideWrite(QueueView{WritesForBank: 1}).Mode; got != nvm.WriteSlow30 {
		t.Errorf("sole write should be slow, got %v", got)
	}
	if got := b.DecideWrite(QueueView{WritesForBank: 2}).Mode; got != nvm.WriteNormal {
		t.Errorf("two writes should be normal, got %v", got)
	}
}

func TestQuotaForcesSlowEverywhere(t *testing.T) {
	for _, s := range []Spec{Norm().WithWQ(), BMellow().WithSC().WithWQ(), BEMellow().WithSC().WithWQ()} {
		if got := s.DecideWrite(QueueView{WritesForBank: 4, QuotaExceeded: true}).Mode; got != nvm.WriteSlow30 {
			t.Errorf("%s: quota-exceeded write = %v, want slow", s.Name, got)
		}
		if s.Eager {
			if got := s.DecideEager(QueueView{QuotaExceeded: true}).Mode; got != nvm.WriteSlow30 {
				t.Errorf("%s: quota-exceeded eager = %v, want slow", s.Name, got)
			}
		}
	}
	// Without +WQ, quota state must be ignored.
	b := BMellow()
	if got := b.DecideWrite(QueueView{WritesForBank: 4, QuotaExceeded: true}).Mode; got != nvm.WriteNormal {
		t.Errorf("no-WQ policy honoured quota: %v", got)
	}
}

func TestEagerModes(t *testing.T) {
	if got := ENorm().DecideEager(QueueView{}).Mode; got != nvm.WriteNormal {
		t.Errorf("E-Norm eager mode = %v, want normal", got)
	}
	if got := ESlow().DecideEager(QueueView{}).Mode; got != nvm.WriteSlow30 {
		t.Errorf("E-Slow eager mode = %v, want slow", got)
	}
	if got := BEMellow().DecideEager(QueueView{}).Mode; got != nvm.WriteSlow30 {
		t.Errorf("BE-Mellow eager mode = %v, want slow", got)
	}
}

func TestCancellability(t *testing.T) {
	nc := Norm().WithNC()
	if !nc.DecideWrite(QueueView{WritesForBank: 2}).Cancellable {
		t.Error("+NC normal write not cancellable")
	}
	if Norm().DecideWrite(QueueView{WritesForBank: 2}).Cancellable {
		t.Error("plain Norm write cancellable")
	}
	sc := BEMellow().WithSC()
	if !sc.DecideWrite(QueueView{WritesForBank: 1}).Cancellable {
		t.Error("+SC slow write not cancellable")
	}
	if sc.DecideWrite(QueueView{WritesForBank: 2}).Cancellable {
		t.Error("+SC normal write cancellable without +NC")
	}
	// Draining writes are never cancellable.
	if nc.DecideWrite(QueueView{WritesForBank: 2, Draining: true}).Cancellable {
		t.Error("draining write cancellable")
	}
	// Eager writes are cancellable under +SC even during a drain of the
	// normal queue.
	if !sc.DecideEager(QueueView{Draining: true}).Cancellable {
		t.Error("eager slow write not cancellable under +SC")
	}
}

func TestNames(t *testing.T) {
	cases := map[string]Spec{
		"Norm":              Norm(),
		"Slow":              Slow(),
		"B-Mellow+SC":       BMellow().WithSC(),
		"BE-Mellow+SC+WQ":   BEMellow().WithSC().WithWQ(),
		"E-Norm+NC":         ENorm().WithNC(),
		"E-Slow+SC":         ESlow().WithSC(),
		"Slow@1.5x":         Slow().WithSlowMode(nvm.WriteSlow15),
		"Slow@2x":           Slow().WithSlowMode(nvm.WriteSlow20),
		"BE-Mellow@1.5x+SC": BEMellow().WithSlowMode(nvm.WriteSlow15).WithSC(),
	}
	for want, s := range cases {
		if s.Name != want {
			t.Errorf("Name = %q, want %q", s.Name, want)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	names := []string{
		"Norm", "Slow", "B-Mellow+SC", "BE-Mellow+SC", "BE-Mellow+SC+WQ",
		"E-Norm+NC", "E-Slow+SC", "Norm+WQ", "Slow@1.5x", "Slow@2x+NC",
	}
	for _, n := range names {
		s, err := Parse(n)
		if err != nil {
			t.Errorf("Parse(%q): %v", n, err)
			continue
		}
		if s.Name != n {
			t.Errorf("Parse(%q).Name = %q", n, s.Name)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, n := range []string{"", "Bogus", "Norm+XX", "Slow@7x", "Slow@x"} {
		if _, err := Parse(n); err == nil {
			t.Errorf("Parse(%q) should fail", n)
		}
	}
}

func TestParseSemantics(t *testing.T) {
	s, err := Parse("BE-Mellow+SC+WQ")
	if err != nil {
		t.Fatal(err)
	}
	if !s.BankAware || !s.Eager || !s.SlowCancellable || s.NormalCancellable || !s.WearQuota {
		t.Errorf("parsed flags wrong: %+v", s)
	}
	if s.TargetLifetime != 8 || s.QuotaRatio != 0.9 {
		t.Errorf("quota defaults wrong: %+v", s)
	}
}

func TestWithSlowModeChangesStaticForSlowFamily(t *testing.T) {
	s := Slow().WithSlowMode(nvm.WriteSlow15)
	if s.StaticMode != nvm.WriteSlow15 || s.SlowMode != nvm.WriteSlow15 || s.EagerMode != nvm.WriteSlow15 {
		t.Errorf("Slow@1.5x modes wrong: %+v", s)
	}
	b := BMellow().WithSlowMode(nvm.WriteSlow20)
	if b.StaticMode != nvm.WriteNormal {
		t.Errorf("B-Mellow static mode must stay normal, got %v", b.StaticMode)
	}
	if b.SlowMode != nvm.WriteSlow20 {
		t.Errorf("B-Mellow slow mode = %v, want 2x", b.SlowMode)
	}
}

func TestEvaluationSet(t *testing.T) {
	set := EvaluationSet()
	if len(set) != 9 {
		t.Fatalf("evaluation set has %d policies, want 9", len(set))
	}
	want := []string{
		"Norm", "E-Norm+NC", "Slow", "E-Slow+SC", "B-Mellow+SC",
		"BE-Mellow+SC", "Norm+WQ", "B-Mellow+SC+WQ", "BE-Mellow+SC+WQ",
	}
	got := Names(set)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("evaluation set[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestYearsTicks(t *testing.T) {
	y := Years(1)
	secs := y.Ticks().Seconds()
	if secs < SecondsPerYear*0.999 || secs > SecondsPerYear*1.001 {
		t.Errorf("1 year = %v s, want %v", secs, SecondsPerYear)
	}
}

func TestMultiLatencyGrading(t *testing.T) {
	ml := BMellow().WithSC().WithML()
	cases := []struct {
		writes int
		want   nvm.WriteMode
	}{
		{1, nvm.WriteSlow30},
		{2, nvm.WriteSlow20},
		{3, nvm.WriteSlow15},
		{4, nvm.WriteNormal},
		{8, nvm.WriteNormal},
	}
	for _, c := range cases {
		if got := ml.DecideWrite(QueueView{WritesForBank: c.writes}).Mode; got != c.want {
			t.Errorf("%d writes: got %v, want %v", c.writes, got, c.want)
		}
	}
	// Quota still forces the full slow pulse.
	mlq := ml.WithWQ()
	if got := mlq.DecideWrite(QueueView{WritesForBank: 4, QuotaExceeded: true}).Mode; got != nvm.WriteSlow30 {
		t.Errorf("quota-exceeded ML write = %v, want slow3.0x", got)
	}
	// Intermediate pulses are cancellable under +SC.
	if !ml.DecideWrite(QueueView{WritesForBank: 2}).Cancellable {
		t.Error("2.0x pulse not cancellable under +SC")
	}
}

func TestMultiLatencyParse(t *testing.T) {
	s, err := Parse("BE-Mellow+SC+ML")
	if err != nil {
		t.Fatal(err)
	}
	if !s.MultiLatency || !s.BankAware || s.Name != "BE-Mellow+SC+ML" {
		t.Errorf("parsed: %+v", s)
	}
}

func TestMultiLatencyIgnoredWithoutBankAware(t *testing.T) {
	s := Norm().WithML()
	if got := s.DecideWrite(QueueView{WritesForBank: 1}).Mode; got != nvm.WriteNormal {
		t.Errorf("non-bank-aware ML policy changed mode: %v", got)
	}
}
