package core

import (
	"fmt"

	"mellow/internal/cache"
	"mellow/internal/config"
	"mellow/internal/cpu"
	"mellow/internal/mem"
	"mellow/internal/policy"
	"mellow/internal/rng"
	"mellow/internal/sim"
	"mellow/internal/trace"
)

// MixResult is the outcome of a multiprogrammed simulation: several
// cores, each with a private cache hierarchy, sharing one resistive
// memory system. Bank interference between programs is exactly what
// erodes the idle time Mellow Writes feeds on, so mixes probe the
// mechanisms beyond the paper's single-core evaluation.
type MixResult struct {
	Policy string
	// Cores holds per-core results; Mem fields there are zero — the
	// memory system is shared and reported once below.
	Cores []Result
	// Mem is the shared memory system's measurement window.
	Mem mem.Snapshot
}

// LifetimeYears is the shared memory's projected lifetime.
func (m MixResult) LifetimeYears() float64 { return m.Mem.LifetimeYears }

// WeightedIPC is the throughput metric: the sum of per-core IPCs.
func (m MixResult) WeightedIPC() float64 {
	sum := 0.0
	for _, c := range m.Cores {
		sum += c.IPC
	}
	return sum
}

// mixCore bundles one program's private front end.
type mixCore struct {
	name string
	hier *cache.Hierarchy
	core *cpu.Core
	done bool
}

// RunMix simulates the named workloads on one core each (private
// L1/L2/LLC per program — a multiprogrammed, not shared-cache, CMP)
// against a single shared memory controller under the given policy.
// Cores co-simulate conservatively: at every step the core with the
// smallest local time advances, so no core submits requests into
// another's past.
func RunMix(cfg config.Config, spec policy.Spec, workloads []string) (MixResult, error) {
	if err := cfg.Validate(); err != nil {
		return MixResult{}, err
	}
	if len(workloads) == 0 {
		return MixResult{}, fmt.Errorf("core: empty workload mix")
	}
	k := &sim.Kernel{}
	ctl := mem.New(k, cfg.Memory, spec)
	src := rng.New(cfg.Run.Seed)

	cores := make([]*mixCore, len(workloads))
	for i, name := range workloads {
		w, err := trace.ByName(name)
		if err != nil {
			return MixResult{}, err
		}
		hier := cache.NewHierarchy(cfg.Caches, src.Branch(uint64(i)))
		gen := w.New(cfg.Run.Seed + uint64(i)*1001)
		cores[i] = &mixCore{name: name, hier: hier, core: cpu.New(cfg, hier, ctl, gen)}
	}

	// The eager source drains candidates from the private LLCs round-
	// robin, so no program monopolises the eager queue.
	next := 0
	ctl.SetEagerSource(func() (uint64, bool) {
		for tries := 0; tries < len(cores); tries++ {
			h := cores[next].hier
			next = (next + 1) % len(cores)
			if line, ok := h.EagerCandidate(); ok {
				return line, true
			}
		}
		return 0, false
	})
	var rotate sim.Event
	rotate = func(sim.Tick) {
		for _, c := range cores {
			c.hier.RotateProfile()
		}
		k.After(cfg.Caches.ProfilePeriod, rotate)
	}
	k.After(cfg.Caches.ProfilePeriod, rotate)

	runPhase := func(target uint64) {
		for {
			// Advance the laggard that still has work.
			var pick *mixCore
			for _, c := range cores {
				if c.done {
					continue
				}
				if c.core.Instructions() >= target {
					c.done = true
					continue
				}
				if pick == nil || c.core.Cycles() < pick.core.Cycles() {
					pick = c
				}
			}
			if pick == nil {
				return
			}
			pick.core.Step()
		}
	}

	runPhase(cfg.Run.WarmupInstructions)
	for _, c := range cores {
		c.done = false
		c.hier.ResetStats()
		c.core.BeginMeasurement()
	}
	ctl.ResetStats()
	runPhase(cfg.Run.WarmupInstructions + cfg.Run.DetailedInstructions)

	// Align the memory clock with the slowest core.
	var maxT sim.Tick
	for _, c := range cores {
		if t := sim.Tick(c.core.Cycles()); t > maxT {
			maxT = t
		}
	}
	if maxT > ctl.Now() {
		ctl.AdvanceTo(maxT)
	}

	res := MixResult{Policy: spec.Name}
	for _, c := range cores {
		cs := c.hier.Snapshot()
		r := Result{
			Workload:     c.name,
			Policy:       spec.Name,
			IPC:          c.core.IPC(),
			Instructions: c.core.MeasuredInstructions(),
			Cycles:       c.core.MeasuredCycles(),
			Cache:        cs,
		}
		if r.Instructions > 0 {
			r.MPKI = float64(cs.LLCMisses) / (float64(r.Instructions) / 1000)
		}
		res.Cores = append(res.Cores, r)
	}
	res.Mem = ctl.Snapshot()
	return res, nil
}
