// Package core assembles the full system — workload generator, OoO core
// model, cache hierarchy, and resistive-memory controller — and runs one
// simulation, producing the measurements every figure of the paper is
// built from.
package core

import (
	"context"
	"fmt"

	"mellow/internal/cache"
	"mellow/internal/config"
	"mellow/internal/cpu"
	"mellow/internal/engine"
	"mellow/internal/mem"
	"mellow/internal/policy"
	"mellow/internal/rng"
	"mellow/internal/sim"
	"mellow/internal/trace"
)

// Result is the outcome of one (workload, policy, config) simulation.
type Result struct {
	Workload string
	Policy   string
	// Instructions and Cycles cover the post-warmup window.
	Instructions uint64
	Cycles       float64
	// IPC is the headline performance metric (Figures 2, 10, 19).
	IPC float64
	// MPKI is LLC misses per 1000 instructions (Table IV).
	MPKI float64
	// Mem carries lifetime, utilization, drain, energy and bank traffic.
	Mem mem.Snapshot
	// Cache carries LLC traffic (Figure 14) and eager statistics.
	Cache cache.Stats
}

// LifetimeYears is shorthand for the §V lifetime metric.
func (r Result) LifetimeYears() float64 { return r.Mem.LifetimeYears }

// System is a fully wired simulator instance.
type System struct {
	Cfg    config.Config
	Spec   policy.Spec
	Kernel *sim.Kernel
	Hier   *cache.Hierarchy
	Ctl    *mem.Controller
	Core   *cpu.Core

	workload trace.Workload
}

// NewSystem builds and wires a system for one workload and policy.
func NewSystem(cfg config.Config, spec policy.Spec, w trace.Workload) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	k := &sim.Kernel{}
	src := rng.New(cfg.Run.Seed)
	hier := cache.NewHierarchy(cfg.Caches, src.Branch(1))
	ctl := mem.New(k, cfg.Memory, spec)
	ctl.SetEagerSource(hier.EagerCandidate)
	gen := w.New(cfg.Run.Seed)
	core := cpu.New(cfg, hier, ctl, gen)

	// The LLC's useless-position profiler rotates every T_sample
	// (§IV-B1), driven by the memory clock.
	var rotate sim.Event
	rotate = func(sim.Tick) {
		hier.RotateProfile()
		k.After(cfg.Caches.ProfilePeriod, rotate)
	}
	k.After(cfg.Caches.ProfilePeriod, rotate)

	return &System{
		Cfg: cfg, Spec: spec, Kernel: k,
		Hier: hier, Ctl: ctl, Core: core,
		workload: w,
	}, nil
}

// Engine builds the phase-aware run engine for this system with the
// given observation options. The engine is single-use.
func (s *System) Engine(opts engine.Options) *engine.Engine {
	return engine.New(s.Kernel, s.Hier, s.Ctl, s.Core, s.Cfg.Run, opts)
}

// Run warms the system up, measures the detailed window, and returns the
// result.
func (s *System) Run() Result {
	r, _ := s.RunContext(context.Background())
	return r
}

// RunContext is Run with cancellation: the simulation loop polls ctx at
// checkpoints and aborts with ctx's error when it is cancelled or times
// out. An uncancelled run is bit-identical to Run. It is a thin wrapper
// over the engine with no observers attached.
func (s *System) RunContext(ctx context.Context) (Result, error) {
	r, _, err := s.RunObserved(ctx, engine.Options{})
	return r, err
}

// RunObserved runs the phase-aware engine with the given observation
// options, returning the result plus the epoch time series (nil unless
// opts.Collect). Results are bit-identical to RunContext regardless of
// the observers attached.
func (s *System) RunObserved(ctx context.Context, opts engine.Options) (Result, []engine.EpochSample, error) {
	out, err := s.Engine(opts).Run(ctx)
	if err != nil {
		return Result{}, nil, err
	}
	return s.resultOf(out), out.Series, nil
}

// resultOf labels an engine outcome with this system's identity and
// derives the per-instruction metrics.
func (s *System) resultOf(out engine.Outcome) Result {
	r := Result{
		Workload:     s.workload.Name,
		Policy:       s.Spec.Name,
		IPC:          out.IPC,
		Instructions: out.Instructions,
		Cycles:       out.Cycles,
		Mem:          out.Mem,
		Cache:        out.Cache,
	}
	if r.Instructions > 0 {
		r.MPKI = float64(out.Cache.LLCMisses) / (float64(r.Instructions) / 1000)
	}
	return r
}

// Run is the one-call entry point: simulate workloadName under spec with
// cfg and return the result.
func Run(cfg config.Config, spec policy.Spec, workloadName string) (Result, error) {
	return RunContext(context.Background(), cfg, spec, workloadName)
}

// RunObserved is RunContext with engine observation options: it returns
// the result plus the collected epoch series (nil unless opts.Collect).
func RunObserved(ctx context.Context, cfg config.Config, spec policy.Spec, workloadName string, opts engine.Options) (Result, []engine.EpochSample, error) {
	w, err := trace.ByName(workloadName)
	if err != nil {
		return Result{}, nil, err
	}
	sys, err := NewSystem(cfg, spec, w)
	if err != nil {
		return Result{}, nil, fmt.Errorf("core: %w", err)
	}
	return sys.RunObserved(ctx, opts)
}

// RunContext is Run with cancellation.
func RunContext(ctx context.Context, cfg config.Config, spec policy.Spec, workloadName string) (Result, error) {
	w, err := trace.ByName(workloadName)
	if err != nil {
		return Result{}, err
	}
	return RunWorkloadContext(ctx, cfg, spec, w)
}

// RunWorkload simulates an explicit workload (e.g. one replayed from a
// trace file) under spec with cfg.
func RunWorkload(cfg config.Config, spec policy.Spec, w trace.Workload) (Result, error) {
	return RunWorkloadContext(context.Background(), cfg, spec, w)
}

// RunWorkloadContext is RunWorkload with cancellation.
func RunWorkloadContext(ctx context.Context, cfg config.Config, spec policy.Spec, w trace.Workload) (Result, error) {
	sys, err := NewSystem(cfg, spec, w)
	if err != nil {
		return Result{}, fmt.Errorf("core: %w", err)
	}
	return sys.RunContext(ctx)
}
