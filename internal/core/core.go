// Package core assembles the full system — workload generator, OoO core
// model, cache hierarchy, and resistive-memory controller — and runs one
// simulation, producing the measurements every figure of the paper is
// built from.
package core

import (
	"context"
	"fmt"

	"mellow/internal/cache"
	"mellow/internal/config"
	"mellow/internal/cpu"
	"mellow/internal/mem"
	"mellow/internal/policy"
	"mellow/internal/rng"
	"mellow/internal/sim"
	"mellow/internal/trace"
)

// Result is the outcome of one (workload, policy, config) simulation.
type Result struct {
	Workload string
	Policy   string
	// Instructions and Cycles cover the post-warmup window.
	Instructions uint64
	Cycles       float64
	// IPC is the headline performance metric (Figures 2, 10, 19).
	IPC float64
	// MPKI is LLC misses per 1000 instructions (Table IV).
	MPKI float64
	// Mem carries lifetime, utilization, drain, energy and bank traffic.
	Mem mem.Snapshot
	// Cache carries LLC traffic (Figure 14) and eager statistics.
	Cache cache.Stats
}

// LifetimeYears is shorthand for the §V lifetime metric.
func (r Result) LifetimeYears() float64 { return r.Mem.LifetimeYears }

// System is a fully wired simulator instance.
type System struct {
	Cfg    config.Config
	Spec   policy.Spec
	Kernel *sim.Kernel
	Hier   *cache.Hierarchy
	Ctl    *mem.Controller
	Core   *cpu.Core

	workload trace.Workload
}

// NewSystem builds and wires a system for one workload and policy.
func NewSystem(cfg config.Config, spec policy.Spec, w trace.Workload) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	k := &sim.Kernel{}
	src := rng.New(cfg.Run.Seed)
	hier := cache.NewHierarchy(cfg.Caches, src.Branch(1))
	ctl := mem.New(k, cfg.Memory, spec)
	ctl.SetEagerSource(hier.EagerCandidate)
	gen := w.New(cfg.Run.Seed)
	core := cpu.New(cfg, hier, ctl, gen)

	// The LLC's useless-position profiler rotates every T_sample
	// (§IV-B1), driven by the memory clock.
	var rotate sim.Event
	rotate = func(sim.Tick) {
		hier.RotateProfile()
		k.After(cfg.Caches.ProfilePeriod, rotate)
	}
	k.After(cfg.Caches.ProfilePeriod, rotate)

	return &System{
		Cfg: cfg, Spec: spec, Kernel: k,
		Hier: hier, Ctl: ctl, Core: core,
		workload: w,
	}, nil
}

// Run warms the system up, measures the detailed window, and returns the
// result.
func (s *System) Run() Result {
	r, _ := s.RunContext(context.Background())
	return r
}

// RunContext is Run with cancellation: the simulation loop polls ctx at
// checkpoints and aborts with ctx's error when it is cancelled or times
// out. An uncancelled run is bit-identical to Run.
func (s *System) RunContext(ctx context.Context) (Result, error) {
	// context.Background and friends have a nil Done channel; skip the
	// per-checkpoint poll entirely for them.
	var cancelled func() bool
	if ctx.Done() != nil {
		cancelled = func() bool { return ctx.Err() != nil }
	}
	if s.Cfg.Run.WarmupInstructions > 0 {
		if !s.Core.RunCancellable(s.Cfg.Run.WarmupInstructions, cancelled) {
			return Result{}, ctx.Err()
		}
	}
	s.Hier.ResetStats()
	s.Ctl.ResetStats()
	s.Core.BeginMeasurement()
	if !s.Core.RunCancellable(s.Cfg.Run.DetailedInstructions, cancelled) {
		return Result{}, ctx.Err()
	}
	// Align the memory clock with the core before snapshotting so
	// utilization windows match the measured cycles.
	if t := sim.Tick(s.Core.Cycles()); t > s.Ctl.Now() {
		s.Ctl.AdvanceTo(t)
	}
	return s.snapshot(), nil
}

func (s *System) snapshot() Result {
	cs := s.Hier.Snapshot()
	r := Result{
		Workload:     s.workload.Name,
		Policy:       s.Spec.Name,
		IPC:          s.Core.IPC(),
		Instructions: s.Core.MeasuredInstructions(),
		Cycles:       s.Core.MeasuredCycles(),
		Mem:          s.Ctl.Snapshot(),
		Cache:        cs,
	}
	if r.Instructions > 0 {
		r.MPKI = float64(cs.LLCMisses) / (float64(r.Instructions) / 1000)
	}
	return r
}

// Run is the one-call entry point: simulate workloadName under spec with
// cfg and return the result.
func Run(cfg config.Config, spec policy.Spec, workloadName string) (Result, error) {
	return RunContext(context.Background(), cfg, spec, workloadName)
}

// RunContext is Run with cancellation.
func RunContext(ctx context.Context, cfg config.Config, spec policy.Spec, workloadName string) (Result, error) {
	w, err := trace.ByName(workloadName)
	if err != nil {
		return Result{}, err
	}
	return RunWorkloadContext(ctx, cfg, spec, w)
}

// RunWorkload simulates an explicit workload (e.g. one replayed from a
// trace file) under spec with cfg.
func RunWorkload(cfg config.Config, spec policy.Spec, w trace.Workload) (Result, error) {
	return RunWorkloadContext(context.Background(), cfg, spec, w)
}

// RunWorkloadContext is RunWorkload with cancellation.
func RunWorkloadContext(ctx context.Context, cfg config.Config, spec policy.Spec, w trace.Workload) (Result, error) {
	sys, err := NewSystem(cfg, spec, w)
	if err != nil {
		return Result{}, fmt.Errorf("core: %w", err)
	}
	return sys.RunContext(ctx)
}
