// Package core assembles the full system — workload generator, OoO core
// model, cache hierarchy, and resistive-memory controller — and runs one
// simulation, producing the measurements every figure of the paper is
// built from.
package core

import (
	"fmt"

	"mellow/internal/cache"
	"mellow/internal/config"
	"mellow/internal/cpu"
	"mellow/internal/mem"
	"mellow/internal/policy"
	"mellow/internal/rng"
	"mellow/internal/sim"
	"mellow/internal/trace"
)

// Result is the outcome of one (workload, policy, config) simulation.
type Result struct {
	Workload string
	Policy   string
	// Instructions and Cycles cover the post-warmup window.
	Instructions uint64
	Cycles       float64
	// IPC is the headline performance metric (Figures 2, 10, 19).
	IPC float64
	// MPKI is LLC misses per 1000 instructions (Table IV).
	MPKI float64
	// Mem carries lifetime, utilization, drain, energy and bank traffic.
	Mem mem.Snapshot
	// Cache carries LLC traffic (Figure 14) and eager statistics.
	Cache cache.Stats
}

// LifetimeYears is shorthand for the §V lifetime metric.
func (r Result) LifetimeYears() float64 { return r.Mem.LifetimeYears }

// System is a fully wired simulator instance.
type System struct {
	Cfg    config.Config
	Spec   policy.Spec
	Kernel *sim.Kernel
	Hier   *cache.Hierarchy
	Ctl    *mem.Controller
	Core   *cpu.Core

	workload trace.Workload
}

// NewSystem builds and wires a system for one workload and policy.
func NewSystem(cfg config.Config, spec policy.Spec, w trace.Workload) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	k := &sim.Kernel{}
	src := rng.New(cfg.Run.Seed)
	hier := cache.NewHierarchy(cfg.Caches, src.Branch(1))
	ctl := mem.New(k, cfg.Memory, spec)
	ctl.SetEagerSource(hier.EagerCandidate)
	gen := w.New(cfg.Run.Seed)
	core := cpu.New(cfg, hier, ctl, gen)

	// The LLC's useless-position profiler rotates every T_sample
	// (§IV-B1), driven by the memory clock.
	var rotate sim.Event
	rotate = func(sim.Tick) {
		hier.RotateProfile()
		k.After(cfg.Caches.ProfilePeriod, rotate)
	}
	k.After(cfg.Caches.ProfilePeriod, rotate)

	return &System{
		Cfg: cfg, Spec: spec, Kernel: k,
		Hier: hier, Ctl: ctl, Core: core,
		workload: w,
	}, nil
}

// Run warms the system up, measures the detailed window, and returns the
// result.
func (s *System) Run() Result {
	if s.Cfg.Run.WarmupInstructions > 0 {
		s.Core.Run(s.Cfg.Run.WarmupInstructions)
	}
	s.Hier.ResetStats()
	s.Ctl.ResetStats()
	s.Core.BeginMeasurement()
	s.Core.Run(s.Cfg.Run.DetailedInstructions)
	// Align the memory clock with the core before snapshotting so
	// utilization windows match the measured cycles.
	if t := sim.Tick(s.Core.Cycles()); t > s.Ctl.Now() {
		s.Ctl.AdvanceTo(t)
	}
	return s.snapshot()
}

func (s *System) snapshot() Result {
	cs := s.Hier.Snapshot()
	r := Result{
		Workload:     s.workload.Name,
		Policy:       s.Spec.Name,
		IPC:          s.Core.IPC(),
		Instructions: s.Core.MeasuredInstructions(),
		Cycles:       s.Core.MeasuredCycles(),
		Mem:          s.Ctl.Snapshot(),
		Cache:        cs,
	}
	if r.Instructions > 0 {
		r.MPKI = float64(cs.LLCMisses) / (float64(r.Instructions) / 1000)
	}
	return r
}

// Run is the one-call entry point: simulate workloadName under spec with
// cfg and return the result.
func Run(cfg config.Config, spec policy.Spec, workloadName string) (Result, error) {
	w, err := trace.ByName(workloadName)
	if err != nil {
		return Result{}, err
	}
	return RunWorkload(cfg, spec, w)
}

// RunWorkload simulates an explicit workload (e.g. one replayed from a
// trace file) under spec with cfg.
func RunWorkload(cfg config.Config, spec policy.Spec, w trace.Workload) (Result, error) {
	sys, err := NewSystem(cfg, spec, w)
	if err != nil {
		return Result{}, fmt.Errorf("core: %w", err)
	}
	return sys.Run(), nil
}
