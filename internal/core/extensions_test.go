package core

import (
	"math"
	"testing"

	"mellow/internal/cache"
	"mellow/internal/policy"
)

func TestMultiLatencyIntegration(t *testing.T) {
	// +ML must produce intermediate pulses under contention and keep a
	// lifetime between Norm and the two-pulse BE-Mellow.
	ml := mustRun(t, quickCfg(), policy.BEMellow().WithSC().WithML(), "GemsFDTD")
	var mid uint64
	mid += ml.Mem.WritesByMode[1] + ml.Mem.WritesByMode[2] // 1.5x + 2x pulses
	if mid == 0 {
		t.Error("multi-latency policy never used an intermediate pulse")
	}
	norm := mustRun(t, quickCfg(), policy.Norm(), "GemsFDTD")
	if ml.LifetimeYears() <= norm.LifetimeYears() {
		t.Errorf("ML lifetime %v did not beat Norm %v", ml.LifetimeYears(), norm.LifetimeYears())
	}
}

func TestWritePausingIntegration(t *testing.T) {
	wp := mustRun(t, quickCfg(), policy.BEMellow().WithWP(), "GemsFDTD")
	if wp.Mem.Pauses == 0 {
		t.Fatal("no pauses occurred under +WP")
	}
	if wp.Mem.Cancellations != 0 {
		t.Errorf("cancellations = %d under pausing-only policy", wp.Mem.Cancellations)
	}
	// Pausing wastes no work: lifetime should match or beat the
	// cancellation variant under the same policy family.
	sc := mustRun(t, quickCfg(), policy.BEMellow().WithSC(), "GemsFDTD")
	if wp.LifetimeYears() < sc.LifetimeYears()*0.95 {
		t.Errorf("pausing lifetime %v well below cancellation %v",
			wp.LifetimeYears(), sc.LifetimeYears())
	}
}

func TestDecayPredictorIntegration(t *testing.T) {
	cfg := quickCfg()
	cfg.Caches.EagerPredictor = cache.PredictorDecay
	r := mustRun(t, cfg, policy.BEMellow().WithSC(), "GemsFDTD")
	if r.Cache.EagerIssued == 0 {
		t.Fatal("decay predictor produced no eager write-backs")
	}
	norm := mustRun(t, quickCfg(), policy.Norm(), "GemsFDTD")
	if r.LifetimeYears() <= norm.LifetimeYears() {
		t.Errorf("decay-predicted BE-Mellow %v did not beat Norm %v",
			r.LifetimeYears(), norm.LifetimeYears())
	}
}

func TestExpoFactorMonotonicity(t *testing.T) {
	// Higher ExpoFactor only helps policies that use slow writes; a
	// policy's lifetime must be nondecreasing in the exponent.
	prev := 0.0
	for i, expo := range []float64{1.0, 2.0, 3.0} {
		cfg := quickCfg()
		cfg.Memory.Device.ExpoFactor = expo
		r := mustRun(t, cfg, policy.Slow(), "GemsFDTD")
		if i > 0 && r.LifetimeYears() < prev {
			t.Errorf("Slow lifetime decreased with expo %v: %v < %v", expo, r.LifetimeYears(), prev)
		}
		prev = r.LifetimeYears()
	}
}

func TestNormLifetimeIndependentOfExpo(t *testing.T) {
	a, b := quickCfg(), quickCfg()
	a.Memory.Device.ExpoFactor = 1.0
	b.Memory.Device.ExpoFactor = 3.0
	ra := mustRun(t, a, policy.Norm(), "milc")
	rb := mustRun(t, b, policy.Norm(), "milc")
	if math.Abs(ra.LifetimeYears()-rb.LifetimeYears()) > 1e-9 {
		t.Errorf("Norm lifetime changed with ExpoFactor: %v vs %v",
			ra.LifetimeYears(), rb.LifetimeYears())
	}
}

func TestEnergyBreakdownConsistent(t *testing.T) {
	r := mustRun(t, quickCfg(), policy.BEMellow().WithSC(), "lbm")
	e := r.Mem.Energy
	sum := e.ReadTotalPJ() + e.WriteTotalPJ() + e.CancelledPJ + e.MigrationPJ
	if math.Abs(sum-r.Mem.EnergyPJ) > 1e-6 {
		t.Errorf("breakdown sum %v != total %v", sum, r.Mem.EnergyPJ)
	}
	if e.WriteTotalPJ() == 0 || e.ReadTotalPJ() == 0 {
		t.Error("breakdown missing major components")
	}
}

func TestSeedChangesTimingNotShape(t *testing.T) {
	a := mustRun(t, quickCfg(), policy.Norm(), "gups")
	cfg := quickCfg()
	cfg.Run.Seed = 42
	b := mustRun(t, cfg, policy.Norm(), "gups")
	if a.IPC == b.IPC && a.Mem.TotalWrites() == b.Mem.TotalWrites() {
		t.Error("different seeds produced identical runs — seeding broken")
	}
	// But the workload character is stable across seeds.
	if b.IPC < a.IPC*0.8 || b.IPC > a.IPC*1.2 {
		t.Errorf("IPC unstable across seeds: %v vs %v", a.IPC, b.IPC)
	}
}
