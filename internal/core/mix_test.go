package core

import (
	"testing"

	"mellow/internal/policy"
)

func mustMix(t *testing.T, spec policy.Spec, workloads ...string) MixResult {
	t.Helper()
	cfg := quickCfg()
	cfg.Run.WarmupInstructions = 500_000
	cfg.Run.DetailedInstructions = 2_000_000
	m, err := RunMix(cfg, spec, workloads)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMixBasics(t *testing.T) {
	m := mustMix(t, policy.Norm(), "stream", "mcf")
	if len(m.Cores) != 2 {
		t.Fatalf("cores = %d, want 2", len(m.Cores))
	}
	for _, c := range m.Cores {
		if c.IPC <= 0 {
			t.Errorf("%s IPC = %v", c.Workload, c.IPC)
		}
		// The warmup phase overshoots by at most one op, so the measured
		// window can be a few instructions short of the nominal target.
		if c.Instructions < 1_990_000 {
			t.Errorf("%s measured %d instructions", c.Workload, c.Instructions)
		}
	}
	if m.Mem.TotalWrites() == 0 {
		t.Error("no shared-memory writes")
	}
	if m.WeightedIPC() <= m.Cores[0].IPC {
		t.Error("weighted IPC not a sum")
	}
}

func TestMixErrors(t *testing.T) {
	cfg := quickCfg()
	if _, err := RunMix(cfg, policy.Norm(), nil); err == nil {
		t.Error("empty mix accepted")
	}
	if _, err := RunMix(cfg, policy.Norm(), []string{"nope"}); err == nil {
		t.Error("unknown workload accepted")
	}
	bad := cfg
	bad.CPU.IssueWidth = 0
	if _, err := RunMix(bad, policy.Norm(), []string{"stream"}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestMixDeterministic(t *testing.T) {
	a := mustMix(t, policy.BEMellow().WithSC(), "lbm", "gups")
	b := mustMix(t, policy.BEMellow().WithSC(), "lbm", "gups")
	for i := range a.Cores {
		if a.Cores[i].IPC != b.Cores[i].IPC {
			t.Errorf("core %d IPC differs: %v vs %v", i, a.Cores[i].IPC, b.Cores[i].IPC)
		}
	}
	if a.Mem.TotalWrites() != b.Mem.TotalWrites() {
		t.Error("shared memory traffic differs between runs")
	}
}

func TestMixInterferenceSlowsCores(t *testing.T) {
	// Two memory-hungry programs sharing the memory must each run slower
	// than alone.
	solo := mustRun(t, quickCfg(), policy.Norm(), "lbm")
	mix := mustMix(t, policy.Norm(), "lbm", "lbm")
	for _, c := range mix.Cores {
		if c.IPC >= solo.IPC {
			t.Errorf("mixed lbm IPC %v not below solo %v", c.IPC, solo.IPC)
		}
	}
}

func TestMixMellowStillExtendsLifetime(t *testing.T) {
	norm := mustMix(t, policy.Norm(), "GemsFDTD", "milc")
	be := mustMix(t, policy.BEMellow().WithSC(), "GemsFDTD", "milc")
	if be.LifetimeYears() <= norm.LifetimeYears() {
		t.Errorf("BE-Mellow mix lifetime %v did not beat Norm %v",
			be.LifetimeYears(), norm.LifetimeYears())
	}
	if be.Mem.EagerDone == 0 {
		t.Error("no eager writes in the mix")
	}
}

func TestMixDistinctSeedsPerCore(t *testing.T) {
	// Two copies of the same workload must not issue identical address
	// streams (they get per-core seeds).
	m := mustMix(t, policy.Norm(), "gups", "gups")
	a, b := m.Cores[0], m.Cores[1]
	if a.Cache.LLCMisses == b.Cache.LLCMisses && a.IPC == b.IPC {
		t.Error("identical per-core behaviour suggests shared seeds")
	}
}
