package core

import (
	"testing"

	"mellow/internal/config"
	"mellow/internal/policy"
)

// quickCfg shortens runs for integration tests.
func quickCfg() config.Config {
	cfg := config.Default()
	cfg.Run.WarmupInstructions = 1_500_000
	cfg.Run.DetailedInstructions = 5_000_000
	return cfg
}

func mustRun(t *testing.T, cfg config.Config, spec policy.Spec, workload string) Result {
	t.Helper()
	r, err := Run(cfg, spec, workload)
	if err != nil {
		t.Fatalf("Run(%s, %s): %v", workload, spec.Name, err)
	}
	return r
}

func TestRunBasics(t *testing.T) {
	r := mustRun(t, quickCfg(), policy.Norm(), "stream")
	if r.IPC <= 0 || r.IPC > 8 {
		t.Errorf("IPC = %v, want in (0, 8]", r.IPC)
	}
	if r.Instructions < 1_000_000 {
		t.Errorf("measured instructions = %d, want >= 1M", r.Instructions)
	}
	// With the stream prefetcher converting many demand misses into LLC
	// hits, timing-run MPKI sits below the Table IV (no-prefetch) value.
	if r.MPKI < 3 || r.MPKI > 25 {
		t.Errorf("stream MPKI = %v, want a few to ~12", r.MPKI)
	}
	if r.Mem.TotalWrites() == 0 {
		t.Error("no memory writes recorded for stream")
	}
	if r.LifetimeYears() <= 0 {
		t.Errorf("lifetime = %v", r.LifetimeYears())
	}
	if r.Workload != "stream" || r.Policy != "Norm" {
		t.Errorf("labels: %q %q", r.Workload, r.Policy)
	}
}

func TestUnknownWorkload(t *testing.T) {
	if _, err := Run(quickCfg(), policy.Norm(), "nope"); err == nil {
		t.Fatal("expected error for unknown workload")
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	cfg := quickCfg()
	cfg.CPU.IssueWidth = 0
	if _, err := Run(cfg, policy.Norm(), "stream"); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestDeterministicResults(t *testing.T) {
	a := mustRun(t, quickCfg(), policy.BEMellow().WithSC(), "stream")
	b := mustRun(t, quickCfg(), policy.BEMellow().WithSC(), "stream")
	if a.IPC != b.IPC || a.Mem.TotalWrites() != b.Mem.TotalWrites() ||
		a.Mem.LifetimeYears != b.Mem.LifetimeYears {
		t.Errorf("runs differ: %+v vs %+v", a, b)
	}
}

func TestSlowWritesTradeoff(t *testing.T) {
	// The paper's fundamental trade-off (Figure 2): all-slow writes give
	// much longer lifetime and no better performance than all-normal.
	norm := mustRun(t, quickCfg(), policy.Norm(), "lbm")
	slow := mustRun(t, quickCfg(), policy.Slow(), "lbm")
	if slow.LifetimeYears() < norm.LifetimeYears()*4 {
		t.Errorf("Slow lifetime %v vs Norm %v: want >= 4x (ideal 9x)",
			slow.LifetimeYears(), norm.LifetimeYears())
	}
	if slow.IPC > norm.IPC*1.02 {
		t.Errorf("Slow IPC %v beat Norm %v", slow.IPC, norm.IPC)
	}
}

func TestBankAwareMellowExtendsLifetime(t *testing.T) {
	norm := mustRun(t, quickCfg(), policy.Norm(), "GemsFDTD")
	bm := mustRun(t, quickCfg(), policy.BMellow().WithSC(), "GemsFDTD")
	if bm.LifetimeYears() <= norm.LifetimeYears()*1.2 {
		t.Errorf("B-Mellow lifetime %v vs Norm %v: want clear improvement",
			bm.LifetimeYears(), norm.LifetimeYears())
	}
	// Minimal performance cost (§VI-A: "negligible loss").
	if bm.IPC < norm.IPC*0.85 {
		t.Errorf("B-Mellow IPC %v vs Norm %v: too much degradation", bm.IPC, norm.IPC)
	}
}

func TestEagerMellowWritesFlow(t *testing.T) {
	be := mustRun(t, quickCfg(), policy.BEMellow().WithSC(), "GemsFDTD")
	if be.Cache.EagerIssued == 0 {
		t.Fatal("no eager write-backs were generated")
	}
	if be.Mem.EagerDone == 0 {
		t.Fatal("no eager writes completed at the banks")
	}
	norm := mustRun(t, quickCfg(), policy.Norm(), "GemsFDTD")
	if be.LifetimeYears() <= norm.LifetimeYears() {
		t.Errorf("BE-Mellow lifetime %v did not beat Norm %v",
			be.LifetimeYears(), norm.LifetimeYears())
	}
}

func TestWearQuotaGuaranteesLifetime(t *testing.T) {
	// lbm under Norm burns out in far less than 8 years; +WQ must push
	// the projected lifetime to at least ~8 years.
	norm := mustRun(t, quickCfg(), policy.Norm(), "lbm")
	if norm.LifetimeYears() >= 8 {
		t.Skip("baseline already exceeds 8 years; quota test needs a hotter workload")
	}
	wq := mustRun(t, quickCfg(), policy.Norm().WithWQ(), "lbm")
	if wq.LifetimeYears() < 6.0 {
		t.Errorf("Norm+WQ lifetime = %v years, want ~8 (>=6 with short-run noise)",
			wq.LifetimeYears())
	}
}

func TestMcfIsMemoryBound(t *testing.T) {
	r := mustRun(t, quickCfg(), policy.Norm(), "mcf")
	if r.IPC > 0.6 {
		t.Errorf("mcf IPC = %v, expected memory-bound (< 0.6)", r.IPC)
	}
}

func TestCancellationHelpsDependentReads(t *testing.T) {
	// With all-slow writes, letting reads cancel writes must not hurt a
	// read-dominated dependent workload.
	plain := mustRun(t, quickCfg(), policy.Slow(), "mcf")
	sc := mustRun(t, quickCfg(), policy.Slow().WithSC(), "mcf")
	if sc.Mem.Cancellations == 0 {
		t.Error("no cancellations occurred under Slow+SC for mcf")
	}
	if sc.IPC < plain.IPC*0.95 {
		t.Errorf("Slow+SC IPC %v much worse than Slow %v", sc.IPC, plain.IPC)
	}
}

func TestBankCountSweepRuns(t *testing.T) {
	for _, banks := range []int{4, 8, 16} {
		cfg, err := quickCfg().WithBanks(banks)
		if err != nil {
			t.Fatal(err)
		}
		r := mustRun(t, cfg, policy.BEMellow().WithSC(), "GemsFDTD")
		if len(r.Mem.BankUtilization) != banks {
			t.Errorf("%d banks: got %d utilization entries", banks, len(r.Mem.BankUtilization))
		}
	}
}

func TestUtilizationSane(t *testing.T) {
	r := mustRun(t, quickCfg(), policy.Norm(), "milc")
	if r.Mem.AvgUtilization <= 0 || r.Mem.AvgUtilization >= 1 {
		t.Errorf("avg utilization = %v", r.Mem.AvgUtilization)
	}
}
