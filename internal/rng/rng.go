// Package rng provides the deterministic pseudo-random number generator
// used by the workload generators and by stochastic microarchitectural
// choices (e.g. the LLC picking a random set for eager write-back
// candidates, §IV-B1 of the paper).
//
// A dedicated generator — rather than math/rand — keeps every simulation
// bit-for-bit reproducible across Go releases and lets each component own
// an independent stream derived from the run seed.
package rng

import (
	"math"
	"math/bits"
)

// Source is an xorshift128+ generator. The zero value is invalid; use New.
type Source struct {
	s0, s1 uint64
}

// New returns a Source seeded from seed. Any seed, including 0, yields a
// valid non-degenerate state (seeds are passed through splitmix64).
func New(seed uint64) *Source {
	var s Source
	s.s0 = splitmix64(&seed)
	s.s1 = splitmix64(&seed)
	if s.s0 == 0 && s.s1 == 0 {
		s.s1 = 1
	}
	return &s
}

// splitmix64 advances *x and returns the next splitmix64 output. It is the
// standard seeding routine recommended for xorshift-family generators.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 pseudo-random bits.
func (s *Source) Uint64() uint64 {
	x, y := s.s0, s.s1
	s.s0 = y
	x ^= x << 23
	x ^= x >> 17
	x ^= y ^ (y >> 26)
	s.s1 = x
	return x + y
}

// Branch derives an independent child stream. Children created with
// distinct labels from the same parent state are decorrelated.
func (s *Source) Branch(label uint64) *Source {
	seed := s.Uint64() ^ (label * 0x9e3779b97f4a7c15)
	return New(seed)
}

// Uintn returns a uniform value in [0, n). n must be > 0.
func (s *Source) Uintn(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uintn(0)")
	}
	// Multiply-shift mapping (Lemire). The tiny bias is irrelevant for
	// workload synthesis.
	hi, _ := bits.Mul64(s.Uint64(), n)
	return hi
}

// Intn returns a uniform int in [0, n).
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.Uintn(uint64(n)))
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Zipf draws from a Zipf-like distribution over [0, n) with exponent
// theta in (0, 1). It implements the classic Knuth/Gray approximate
// inverse-CDF used by YCSB-style generators: item 0 is the hottest.
type Zipf struct {
	src   *Source
	n     uint64
	theta float64
	alpha float64
	zetan float64
	eta   float64
}

// NewZipf constructs a Zipf generator over [0, n) with skew theta
// (0 < theta < 1; larger is more skewed).
func NewZipf(src *Source, n uint64, theta float64) *Zipf {
	if n == 0 {
		panic("rng: NewZipf with n == 0")
	}
	if theta <= 0 || theta >= 1 {
		panic("rng: NewZipf theta must be in (0,1)")
	}
	z := &Zipf{src: src, n: n, theta: theta}
	z.zetan = zeta(n, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - powF(2.0/float64(n), 1-theta)) / (1 - zeta(2, theta)/z.zetan)
	return z
}

func zeta(n uint64, theta float64) float64 {
	// For large n this loop would be slow; cap the exact sum and
	// approximate the tail with the integral of x^-theta.
	const exact = 1 << 16
	sum := 0.0
	m := n
	if m > exact {
		m = exact
	}
	for i := uint64(1); i <= m; i++ {
		sum += powF(1.0/float64(i), theta)
	}
	if n > m {
		// ∫_m^n x^-theta dx = (n^(1-theta) - m^(1-theta)) / (1-theta)
		sum += (powF(float64(n), 1-theta) - powF(float64(m), 1-theta)) / (1 - theta)
	}
	return sum
}

func powF(base, exp float64) float64 { return math.Pow(base, exp) }

// Next returns the next Zipf-distributed value in [0, n).
func (z *Zipf) Next() uint64 {
	u := z.src.Float64()
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+powF(0.5, z.theta) {
		return 1
	}
	v := uint64(float64(z.n) * powF(z.eta*u-z.eta+1, z.alpha))
	if v >= z.n {
		v = z.n - 1
	}
	return v
}
