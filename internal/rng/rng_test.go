package rng

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds collided %d/100 times", same)
	}
}

func TestZeroSeedValid(t *testing.T) {
	s := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[s.Uint64()] = true
	}
	if len(seen) < 100 {
		t.Errorf("zero-seeded source produced duplicates: %d unique of 100", len(seen))
	}
}

func TestBranchDecorrelated(t *testing.T) {
	parent := New(7)
	a := parent.Branch(1)
	b := parent.Branch(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("branched streams collided %d/1000 times", same)
	}
}

func TestUintnRange(t *testing.T) {
	s := New(3)
	f := func(n uint64) bool {
		n = n%1000 + 1
		v := s.Uintn(n)
		return v < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestUintnUniform(t *testing.T) {
	s := New(11)
	const n, draws = 10, 100000
	var counts [n]int
	for i := 0; i < draws; i++ {
		counts[s.Uintn(n)]++
	}
	want := draws / n
	for i, c := range counts {
		if c < want*9/10 || c > want*11/10 {
			t.Errorf("bucket %d: %d draws, want ~%d (±10%%)", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(5)
	sum := 0.0
	for i := 0; i < 100000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
		sum += v
	}
	mean := sum / 100000
	if mean < 0.49 || mean > 0.51 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(9)
	hits := 0
	for i := 0; i < 100000; i++ {
		if s.Bool(0.25) {
			hits++
		}
	}
	if hits < 24000 || hits > 26000 {
		t.Errorf("Bool(0.25) hit %d/100000, want ~25000", hits)
	}
	if s.Bool(0) {
		t.Error("Bool(0) returned true")
	}
	if !s.Bool(1) {
		t.Error("Bool(1) returned false")
	}
}

func TestZipfSkew(t *testing.T) {
	s := New(21)
	z := NewZipf(s, 1000, 0.9)
	counts := map[uint64]int{}
	const draws = 200000
	for i := 0; i < draws; i++ {
		v := z.Next()
		if v >= 1000 {
			t.Fatalf("Zipf value %d out of range", v)
		}
		counts[v]++
	}
	// Item 0 must be the clear hot spot and the top 10 items must carry a
	// disproportionate share of the mass.
	top10 := 0
	for i := uint64(0); i < 10; i++ {
		top10 += counts[i]
	}
	if counts[0] < counts[500]*10 {
		t.Errorf("Zipf not skewed: count[0]=%d count[500]=%d", counts[0], counts[500])
	}
	if float64(top10)/draws < 0.25 {
		t.Errorf("top-10 share = %v, want heavy head (>0.25)", float64(top10)/draws)
	}
}

func TestZipfLargeN(t *testing.T) {
	s := New(33)
	z := NewZipf(s, 1<<30, 0.6)
	for i := 0; i < 10000; i++ {
		if v := z.Next(); v >= 1<<30 {
			t.Fatalf("Zipf value %d out of range for n=2^30", v)
		}
	}
}

func TestZipfPanicsOnBadArgs(t *testing.T) {
	s := New(1)
	for _, tc := range []struct {
		n     uint64
		theta float64
	}{{0, 0.5}, {10, 0}, {10, 1}, {10, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewZipf(%d, %v) did not panic", tc.n, tc.theta)
				}
			}()
			NewZipf(s, tc.n, tc.theta)
		}()
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += s.Uint64()
	}
	_ = sink
}
