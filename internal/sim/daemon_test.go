package sim

import "testing"

// tickerHandler is a self-rescheduling daemon: every fire re-arms itself
// `period` ticks later, exactly like the Wear Quota period timer and the
// eager-pump heartbeat in the memory controller.
type tickerHandler struct {
	k      *Kernel
	period Tick
	fires  []Tick
}

func (h *tickerHandler) OnEvent(now Tick, a, b uint64) {
	h.fires = append(h.fires, now)
	h.k.AfterDaemonEvent(h.period, h, a, b)
}

// TestDaemonEventsFireLikeNormalEvents: daemon status changes nothing
// about when or in what order an event fires.
func TestDaemonEventsFireLikeNormalEvents(t *testing.T) {
	var k Kernel
	var order []int
	h := &tickerHandler{k: &k, period: 1000}
	k.AtDaemonEvent(10, h, 0, 0)
	k.At(10, func(Tick) { order = append(order, 1) })
	k.At(5, func(Tick) { order = append(order, 0) })
	k.AdvanceTo(12)
	if len(h.fires) != 1 || h.fires[0] != 10 {
		t.Fatalf("daemon fires = %v, want [10]", h.fires)
	}
	// Same-tick FIFO: the daemon was scheduled before the closure at 10.
	if len(order) != 2 || order[0] != 0 || order[1] != 1 {
		t.Fatalf("closure order = %v, want [0 1]", order)
	}
}

// TestPendingWorkExcludesDaemons: Pending counts everything,
// PendingWork only the non-daemon events.
func TestPendingWorkExcludesDaemons(t *testing.T) {
	var k Kernel
	h := &tickerHandler{k: &k, period: 50}
	k.AtDaemonEvent(10, h, 0, 0)
	k.At(20, func(Tick) {})
	k.At(30, func(Tick) {})
	if k.Pending() != 3 || k.PendingWork() != 2 {
		t.Fatalf("Pending/PendingWork = %d/%d, want 3/2", k.Pending(), k.PendingWork())
	}
	k.AdvanceTo(25)
	// Daemon fired at 10 and re-armed at 60; one closure fired.
	if k.Pending() != 2 || k.PendingWork() != 1 {
		t.Fatalf("after advance: Pending/PendingWork = %d/%d, want 2/1", k.Pending(), k.PendingWork())
	}
	k.Drain()
	if k.PendingWork() != 0 {
		t.Fatalf("after drain: PendingWork = %d, want 0", k.PendingWork())
	}
}

// TestDrainTerminatesWithSelfReschedulingDaemon is the kernel-level
// regression for the Drain()-hangs-under-Wear-Quota bug: a periodic
// timer that always re-arms itself must not keep Drain alive.
func TestDrainTerminatesWithSelfReschedulingDaemon(t *testing.T) {
	var k Kernel
	h := &tickerHandler{k: &k, period: 100}
	k.AtDaemonEvent(100, h, 0, 0)
	work := 0
	k.At(350, func(Tick) { work++ })
	fired := k.Drain()
	// The daemon fires at 100, 200, 300 (all due before the work event at
	// 350), then the work fires and the drain stops with the 400 tick
	// still armed.
	if work != 1 {
		t.Fatalf("work event did not fire")
	}
	if len(h.fires) != 3 || h.fires[2] != 300 {
		t.Fatalf("daemon fires = %v, want [100 200 300]", h.fires)
	}
	if fired != 4 {
		t.Fatalf("Drain fired %d events, want 4", fired)
	}
	if k.Now() != 350 {
		t.Fatalf("Now = %d after drain, want 350", k.Now())
	}
	if k.Pending() != 1 || k.PendingWork() != 0 {
		t.Fatalf("Pending/PendingWork = %d/%d, want 1/0 (daemon left armed)", k.Pending(), k.PendingWork())
	}
	// A drain with only daemons pending fires nothing and returns.
	if fired := k.Drain(); fired != 0 {
		t.Fatalf("idle drain fired %d events", fired)
	}
	// The daemon keeps ticking under explicit time advance.
	k.AdvanceTo(1000)
	if len(h.fires) != 10 {
		t.Fatalf("daemon fired %d times by t=1000, want 10 (100..1000)", len(h.fires))
	}
}

// TestDrainRunsWorkScheduledByDaemons: when a daemon schedules real
// work while draining, that work still completes before Drain returns.
func TestDrainRunsWorkScheduledByDaemons(t *testing.T) {
	var k Kernel
	done := 0
	var h Handler
	h = handlerFunc(func(now Tick, a, b uint64) {
		if a < 3 {
			// First fires enqueue real work and re-arm.
			k.At(now+5, func(Tick) { done++ })
			k.AfterDaemonEvent(10, h, a+1, 0)
		}
	})
	k.AtDaemonEvent(10, h, 0, 0)
	k.At(100, func(Tick) { done++ })
	k.Drain()
	if done != 4 {
		t.Fatalf("done = %d, want 4 (3 daemon-spawned + 1 direct)", done)
	}
	if k.PendingWork() != 0 {
		t.Fatalf("work left pending after drain")
	}
}

// handlerFunc adapts a closure to the Handler interface for tests.
type handlerFunc func(now Tick, a, b uint64)

func (f handlerFunc) OnEvent(now Tick, a, b uint64) { f(now, a, b) }
