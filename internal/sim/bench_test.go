package sim

import "testing"

// BenchmarkKernelSchedule measures the kernel hot path in isolation —
// schedule + fire through the timer wheel — so optimization PRs can
// localize wins without running a full experiment. The mix mirrors the
// memory controller's event population: mostly near-future events, a
// rotating periodic far-future timer, frequent same-tick scheduling.
func BenchmarkKernelSchedule(b *testing.B) {
	b.Run("near", func(b *testing.B) {
		var k Kernel
		h := nopHandler{}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			k.AtEvent(k.Now()+1, h, 0, 0)
			k.AtEvent(k.Now()+900, h, 0, 0) // longest write pulse
			k.AtEvent(k.Now(), h, 0, 0)     // same-tick (scheduleSoon pattern)
			k.AdvanceTo(k.Now() + 1)
		}
		k.Drain()
	})
	b.Run("overflow", func(b *testing.B) {
		// A few long-period timers beyond the horizon (the Wear Quota /
		// profiler shape) riding over a stream of near events.
		var k Kernel
		h := nopHandler{}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if i&127 == 0 {
				k.AtEvent(k.Now()+2*wheelSlots, h, 0, 0) // beyond the horizon
			}
			k.AtEvent(k.Now()+5, h, 0, 0)
			k.AdvanceTo(k.Now() + 5)
		}
		k.Drain()
	})
	b.Run("closure", func(b *testing.B) {
		// The legacy closure path, for comparison against AtEvent.
		var k Kernel
		fn := func(Tick) {}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			k.After(1, fn)
			k.AdvanceTo(k.Now() + 1)
		}
	})
}

type nopHandler struct{}

func (nopHandler) OnEvent(Tick, uint64, uint64) {}
