package sim

import (
	"testing"
	"testing/quick"
)

func TestUnitConversions(t *testing.T) {
	if NS(150) != 300 {
		t.Errorf("NS(150) = %d, want 300", NS(150))
	}
	if MemCycle != 5*CPUCycle {
		t.Errorf("memory cycle must be 5 CPU cycles, got %d", MemCycle)
	}
	if got := Tick(300).Nanoseconds(); got != 150 {
		t.Errorf("300 ticks = %v ns, want 150", got)
	}
	if got := NS(1e9).Seconds(); got != 1.0 {
		t.Errorf("1e9 ns = %v s, want 1", got)
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	var k Kernel
	var order []int
	k.At(30, func(Tick) { order = append(order, 3) })
	k.At(10, func(Tick) { order = append(order, 1) })
	k.At(20, func(Tick) { order = append(order, 2) })
	k.AdvanceTo(100)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("fire order = %v, want [1 2 3]", order)
	}
	if k.Now() != 100 {
		t.Errorf("Now = %d, want 100", k.Now())
	}
}

func TestSameTickFIFO(t *testing.T) {
	var k Kernel
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(5, func(Tick) { order = append(order, i) })
	}
	k.AdvanceTo(5)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-tick events not FIFO: %v", order)
		}
	}
}

func TestEventSchedulesEvent(t *testing.T) {
	var k Kernel
	hits := 0
	var chain Event
	chain = func(now Tick) {
		hits++
		if hits < 5 {
			k.After(10, chain)
		}
	}
	k.At(0, chain)
	k.AdvanceTo(100)
	if hits != 5 {
		t.Errorf("chained events fired %d times, want 5", hits)
	}
	if k.Pending() != 0 {
		t.Errorf("pending = %d, want 0", k.Pending())
	}
}

func TestAdvanceToStopsAtBoundary(t *testing.T) {
	var k Kernel
	fired := false
	k.At(50, func(Tick) { fired = true })
	k.AdvanceTo(49)
	if fired {
		t.Fatal("event at 50 fired during AdvanceTo(49)")
	}
	if k.Now() != 49 {
		t.Errorf("Now = %d, want 49", k.Now())
	}
	k.AdvanceTo(50)
	if !fired {
		t.Fatal("event at 50 did not fire during AdvanceTo(50)")
	}
}

func TestAdvanceUntil(t *testing.T) {
	var k Kernel
	count := 0
	for i := Tick(1); i <= 10; i++ {
		k.At(i*10, func(Tick) { count++ })
	}
	ok := k.AdvanceUntil(func() bool { return count >= 4 })
	if !ok || count != 4 {
		t.Fatalf("AdvanceUntil stopped with count=%d ok=%v, want 4 true", count, ok)
	}
	if k.Now() != 40 {
		t.Errorf("Now = %d, want 40", k.Now())
	}
	ok = k.AdvanceUntil(func() bool { return count >= 100 })
	if ok {
		t.Error("AdvanceUntil reported success with unsatisfiable predicate")
	}
	if count != 10 {
		t.Errorf("count = %d, want all 10 events fired", count)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	var k Kernel
	k.AdvanceTo(100)
	k.At(50, func(Tick) {})
}

func TestDrain(t *testing.T) {
	var k Kernel
	for i := Tick(0); i < 7; i++ {
		k.At(i*1000, func(Tick) {})
	}
	if n := k.Drain(); n != 7 {
		t.Errorf("Drain fired %d, want 7", n)
	}
	if k.Fired() != 7 {
		t.Errorf("Fired = %d, want 7", k.Fired())
	}
}

// Property: for any set of event times, events fire in nondecreasing time
// order and the clock never runs backwards.
func TestQuickEventOrdering(t *testing.T) {
	f := func(times []uint16) bool {
		var k Kernel
		var fired []Tick
		for _, raw := range times {
			at := Tick(raw)
			k.At(at, func(now Tick) { fired = append(fired, now) })
		}
		k.AdvanceTo(1 << 20)
		if len(fired) != len(times) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
