package sim

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestUnitConversions(t *testing.T) {
	if NS(150) != 300 {
		t.Errorf("NS(150) = %d, want 300", NS(150))
	}
	if MemCycle != 5*CPUCycle {
		t.Errorf("memory cycle must be 5 CPU cycles, got %d", MemCycle)
	}
	if got := Tick(300).Nanoseconds(); got != 150 {
		t.Errorf("300 ticks = %v ns, want 150", got)
	}
	if got := NS(1e9).Seconds(); got != 1.0 {
		t.Errorf("1e9 ns = %v s, want 1", got)
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	var k Kernel
	var order []int
	k.At(30, func(Tick) { order = append(order, 3) })
	k.At(10, func(Tick) { order = append(order, 1) })
	k.At(20, func(Tick) { order = append(order, 2) })
	k.AdvanceTo(100)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("fire order = %v, want [1 2 3]", order)
	}
	if k.Now() != 100 {
		t.Errorf("Now = %d, want 100", k.Now())
	}
}

func TestSameTickFIFO(t *testing.T) {
	var k Kernel
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(5, func(Tick) { order = append(order, i) })
	}
	k.AdvanceTo(5)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-tick events not FIFO: %v", order)
		}
	}
}

func TestEventSchedulesEvent(t *testing.T) {
	var k Kernel
	hits := 0
	var chain Event
	chain = func(now Tick) {
		hits++
		if hits < 5 {
			k.After(10, chain)
		}
	}
	k.At(0, chain)
	k.AdvanceTo(100)
	if hits != 5 {
		t.Errorf("chained events fired %d times, want 5", hits)
	}
	if k.Pending() != 0 {
		t.Errorf("pending = %d, want 0", k.Pending())
	}
}

func TestAdvanceToStopsAtBoundary(t *testing.T) {
	var k Kernel
	fired := false
	k.At(50, func(Tick) { fired = true })
	k.AdvanceTo(49)
	if fired {
		t.Fatal("event at 50 fired during AdvanceTo(49)")
	}
	if k.Now() != 49 {
		t.Errorf("Now = %d, want 49", k.Now())
	}
	k.AdvanceTo(50)
	if !fired {
		t.Fatal("event at 50 did not fire during AdvanceTo(50)")
	}
}

func TestAdvanceUntil(t *testing.T) {
	var k Kernel
	count := 0
	for i := Tick(1); i <= 10; i++ {
		k.At(i*10, func(Tick) { count++ })
	}
	ok := k.AdvanceUntil(func() bool { return count >= 4 })
	if !ok || count != 4 {
		t.Fatalf("AdvanceUntil stopped with count=%d ok=%v, want 4 true", count, ok)
	}
	if k.Now() != 40 {
		t.Errorf("Now = %d, want 40", k.Now())
	}
	ok = k.AdvanceUntil(func() bool { return count >= 100 })
	if ok {
		t.Error("AdvanceUntil reported success with unsatisfiable predicate")
	}
	if count != 10 {
		t.Errorf("count = %d, want all 10 events fired", count)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	var k Kernel
	k.AdvanceTo(100)
	k.At(50, func(Tick) {})
}

func TestDrain(t *testing.T) {
	var k Kernel
	for i := Tick(0); i < 7; i++ {
		k.At(i*1000, func(Tick) {})
	}
	if n := k.Drain(); n != 7 {
		t.Errorf("Drain fired %d, want 7", n)
	}
	if k.Fired() != 7 {
		t.Errorf("Fired = %d, want 7", k.Fired())
	}
}

// Property: for any set of event times, events fire in nondecreasing time
// order and the clock never runs backwards.
func TestQuickEventOrdering(t *testing.T) {
	f := func(times []uint16) bool {
		var k Kernel
		var fired []Tick
		for _, raw := range times {
			at := Tick(raw)
			k.At(at, func(now Tick) { fired = append(fired, now) })
		}
		k.AdvanceTo(1 << 20)
		if len(fired) != len(times) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestProbeFiresAtPeriodMultiples(t *testing.T) {
	var k Kernel
	var fired []Tick
	k.AddProbe(10, func(now Tick) { fired = append(fired, now) })
	for i := Tick(1); i <= 50; i++ {
		k.At(i, func(Tick) {})
	}
	k.Drain()
	want := []Tick{10, 20, 30, 40, 50}
	if len(fired) != len(want) {
		t.Fatalf("probe fired at %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("probe fired at %v, want %v", fired, want)
		}
	}
}

func TestProbeObservesStateBeforeItsTick(t *testing.T) {
	// A probe due at tick T fires after every event strictly before T and
	// before any event at T.
	var k Kernel
	events := 0
	var seen []int
	k.AddProbe(10, func(Tick) { seen = append(seen, events) })
	for i := Tick(5); i <= 30; i += 5 {
		k.At(i, func(Tick) { events++ })
	}
	k.Drain()
	// Due at 10: events at 5 fired (1). Due at 20: 5,10,15 fired (3).
	// Due at 30: 5..25 fired (5).
	want := []int{1, 3, 5}
	if len(seen) != len(want) {
		t.Fatalf("probe observations = %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("probe observations = %v, want %v", seen, want)
		}
	}
}

func TestProbesFireDuringAdvanceToWithoutEvents(t *testing.T) {
	var k Kernel
	var fired []Tick
	k.AddProbe(7, func(now Tick) { fired = append(fired, now) })
	k.AdvanceTo(20)
	if len(fired) != 2 || fired[0] != 7 || fired[1] != 14 {
		t.Fatalf("probe fired at %v, want [7 14]", fired)
	}
	if k.Now() != 20 {
		t.Errorf("Now = %d, want 20", k.Now())
	}
	// Probes do not fire past the horizon and do not keep time alive.
	if k.Pending() != 0 {
		t.Errorf("probes leaked into the event heap: pending = %d", k.Pending())
	}
}

func TestProbeRegistrationOrderBreaksTies(t *testing.T) {
	var k Kernel
	var order []int
	k.AddProbe(10, func(Tick) { order = append(order, 1) })
	k.AddProbe(5, func(Tick) { order = append(order, 2) })
	k.AdvanceTo(10)
	// Tick 5: probe 2. Tick 10: both due; registration order wins.
	want := []int{2, 1, 2}
	if len(order) != len(want) {
		t.Fatalf("probe order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("probe order = %v, want %v", order, want)
		}
	}
}

func TestRemoveProbe(t *testing.T) {
	var k Kernel
	fired := 0
	id := k.AddProbe(10, func(Tick) { fired++ })
	k.AdvanceTo(25)
	k.RemoveProbe(id)
	k.AdvanceTo(100)
	if fired != 2 {
		t.Errorf("probe fired %d times, want 2 (removed after tick 25)", fired)
	}
	k.RemoveProbe(id) // unknown id is a no-op
}

func TestProbeDoesNotPerturbEvents(t *testing.T) {
	// The same event workload, with and without a probe, fires the same
	// events at the same times and leaves the same clock.
	run := func(withProbe bool) (fired []Tick, now Tick, count uint64) {
		var k Kernel
		if withProbe {
			k.AddProbe(3, func(Tick) {})
		}
		var chain Event
		chain = func(t Tick) {
			fired = append(fired, t)
			if t < 50 {
				k.After(7, chain)
			}
		}
		k.At(1, chain)
		k.Drain()
		return fired, k.Now(), k.Fired()
	}
	f1, n1, c1 := run(false)
	f2, n2, c2 := run(true)
	if n1 != n2 || c1 != c2 || len(f1) != len(f2) {
		t.Fatalf("probe perturbed the run: now %d vs %d, fired %d vs %d", n1, n2, c1, c2)
	}
	for i := range f1 {
		if f1[i] != f2[i] {
			t.Fatalf("event times diverge at %d: %d vs %d", i, f1[i], f2[i])
		}
	}
}

func TestProbeCannotSchedule(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling from a probe did not panic")
		}
	}()
	var k Kernel
	k.AddProbe(5, func(Tick) { k.At(100, func(Tick) {}) })
	k.AdvanceTo(10)
}

func TestZeroProbePeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero probe period did not panic")
		}
	}()
	var k Kernel
	k.AddProbe(0, func(Tick) {})
}

func TestSchedulePastPanicNamesTicks(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("scheduling in the past did not panic")
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("panic value %v (%T), want string", r, r)
		}
		for _, want := range []string{"at tick 50", "now 100"} {
			if !strings.Contains(msg, want) {
				t.Errorf("panic %q does not mention %q", msg, want)
			}
		}
	}()
	var k Kernel
	k.AdvanceTo(100)
	k.At(50, func(Tick) {})
}

// BenchmarkEventLoop measures the kernel hot path: schedule + fire, with
// no probes registered (the common case the probe hook must not slow).
func BenchmarkEventLoop(b *testing.B) {
	var k Kernel
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k.After(1, func(Tick) {})
		k.AdvanceTo(k.Now() + 1)
	}
}

// BenchmarkEventLoopWithProbe is the same loop with one registered probe
// firing every 1000 ticks.
func BenchmarkEventLoopWithProbe(b *testing.B) {
	var k Kernel
	k.AddProbe(1000, func(Tick) {})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k.After(1, func(Tick) {})
		k.AdvanceTo(k.Now() + 1)
	}
}
