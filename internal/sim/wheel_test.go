package sim

import (
	"container/heap"
	"math/rand"
	"testing"
)

// refKernel is the pre-wheel reference implementation: a container/heap
// priority queue ordered by (at, seq) with the same probe interleaving
// rules. The differential tests below run random schedules against both
// implementations and require identical fire order — including same-tick
// seq ties and probe add/remove interleaving — so the wheel can never
// silently drift from the documented ordering contract.
type refKernel struct {
	now    Tick
	seq    uint64
	events refHeap

	probes      []probe
	nextProbeID ProbeID
	inProbe     bool
}

type refEvent struct {
	at   Tick
	seq  uint64
	fire Event
}

type refHeap []refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)   { *h = append(*h, x.(refEvent)) }
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}

func (k *refKernel) Now() Tick { return k.now }

func (k *refKernel) At(t Tick, fn Event) {
	if k.inProbe {
		panic("ref: schedule from probe")
	}
	if t < k.now {
		panic("ref: event scheduled in the past")
	}
	k.seq++
	heap.Push(&k.events, refEvent{at: t, seq: k.seq, fire: fn})
}

func (k *refKernel) After(d Tick, fn Event) { k.At(k.now+d, fn) }

func (k *refKernel) AddProbe(period Tick, fn Event) ProbeID {
	k.nextProbeID++
	id := k.nextProbeID
	k.probes = append(k.probes, probe{id: id, period: period, next: k.now + period, fn: fn})
	return id
}

func (k *refKernel) RemoveProbe(id ProbeID) {
	for i := range k.probes {
		if k.probes[i].id == id {
			k.probes = append(k.probes[:i], k.probes[i+1:]...)
			return
		}
	}
}

func (k *refKernel) fireProbesTo(target Tick) {
	for {
		best := -1
		for i := range k.probes {
			if k.probes[i].next > target {
				continue
			}
			if best < 0 || k.probes[i].next < k.probes[best].next ||
				(k.probes[i].next == k.probes[best].next && k.probes[i].id < k.probes[best].id) {
				best = i
			}
		}
		if best < 0 {
			return
		}
		p := &k.probes[best]
		due := p.next
		p.next += p.period
		if due > k.now {
			k.now = due
		}
		k.inProbe = true
		p.fn(due)
		k.inProbe = false
	}
}

func (k *refKernel) step() {
	if len(k.probes) > 0 {
		k.fireProbesTo(k.events[0].at)
	}
	ev := heap.Pop(&k.events).(refEvent)
	k.now = ev.at
	ev.fire(k.now)
}

func (k *refKernel) AdvanceTo(t Tick) {
	for len(k.events) > 0 && k.events[0].at <= t {
		k.step()
	}
	if len(k.probes) > 0 {
		k.fireProbesTo(t)
	}
	if t > k.now {
		k.now = t
	}
}

func (k *refKernel) Drain() {
	for len(k.events) > 0 {
		k.step()
	}
}

// trace records one callback invocation: which event/probe fired, at
// what reported time, with the observer's clock reading.
type fireRecord struct {
	id    int
	now   Tick
	probe bool
}

// scheduler abstracts the two kernels for the differential driver.
type scheduler interface {
	Now() Tick
	At(Tick, Event)
	After(Tick, Event)
	AddProbe(Tick, Event) ProbeID
	RemoveProbe(ProbeID)
	AdvanceTo(Tick)
	drainAll()
}

func (k *Kernel) drainAll()    { k.Drain() }
func (k *refKernel) drainAll() { k.Drain() }

// randomSchedule drives one kernel through a seeded random workload:
// events at random offsets (same-tick collisions are frequent by
// construction), events chaining further events, occasional far-future
// events that exercise the overflow path, and probe add/remove
// interleaved mid-run. It returns the full fire log.
func randomSchedule(k scheduler, seed int64) []fireRecord {
	rnd := rand.New(rand.NewSource(seed))
	var log []fireRecord
	nextID := 0
	var chain func(depth int) Event
	chain = func(depth int) Event {
		id := nextID
		nextID++
		return func(now Tick) {
			log = append(log, fireRecord{id: id, now: now})
			if depth > 0 && rnd.Intn(3) == 0 {
				// Re-entrant scheduling, often at the current tick.
				k.After(Tick(rnd.Intn(8)), chain(depth-1))
			}
		}
	}

	var probeIDs []ProbeID
	addProbe := func() {
		id := nextID
		nextID++
		period := Tick(1 + rnd.Intn(200))
		probeIDs = append(probeIDs, k.AddProbe(period, func(now Tick) {
			log = append(log, fireRecord{id: id, now: now, probe: true})
		}))
	}

	for round := 0; round < 30; round++ {
		n := rnd.Intn(40)
		for i := 0; i < n; i++ {
			var off Tick
			switch rnd.Intn(10) {
			case 0:
				off = 0 // same-tick pile-up
			case 1:
				off = Tick(5000 + rnd.Intn(20000)) // beyond the wheel window
			case 2:
				off = Tick(rnd.Intn(2)) * wheelSlots // exactly on the horizon
			default:
				off = Tick(rnd.Intn(600))
			}
			k.At(k.Now()+off, chain(2))
		}
		switch rnd.Intn(4) {
		case 0:
			addProbe()
		case 1:
			if len(probeIDs) > 0 {
				i := rnd.Intn(len(probeIDs))
				k.RemoveProbe(probeIDs[i])
				probeIDs = append(probeIDs[:i], probeIDs[i+1:]...)
			}
		}
		k.AdvanceTo(k.Now() + Tick(rnd.Intn(3000)))
	}
	k.drainAll()
	return log
}

// TestWheelMatchesReferenceHeap is the differential property test: for
// many random seeds the timer-wheel kernel and the reference heap kernel
// must produce byte-identical fire logs — same callbacks, same order,
// same reported times.
func TestWheelMatchesReferenceHeap(t *testing.T) {
	seeds := 50
	if testing.Short() {
		seeds = 10
	}
	for seed := 0; seed < seeds; seed++ {
		got := randomSchedule(&Kernel{}, int64(seed))
		want := randomSchedule(&refKernel{}, int64(seed))
		if len(got) != len(want) {
			t.Fatalf("seed %d: wheel fired %d callbacks, reference %d", seed, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d: divergence at fire %d: wheel %+v, reference %+v",
					seed, i, got[i], want[i])
			}
		}
	}
}

// TestWheelHorizonBoundary pins the exact wheel/overflow boundary: an
// event at now+wheelSlots-1 is the last direct insert, now+wheelSlots
// the first overflow, and both fire in time order with same-tick FIFO
// preserved across the boundary.
func TestWheelHorizonBoundary(t *testing.T) {
	var k Kernel
	var order []int
	k.At(wheelSlots, func(Tick) { order = append(order, 2) })   // overflow
	k.At(wheelSlots-1, func(Tick) { order = append(order, 1) }) // wheel
	k.At(wheelSlots, func(Tick) { order = append(order, 3) })   // overflow, later seq
	k.Drain()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("fire order across the wheel horizon = %v, want [1 2 3]", order)
	}
}

// TestOverflowMigrationSeqOrder forces the subtle case the migration
// path must handle: an event overflows, the clock approaches, a second
// event is scheduled directly into the same future tick (with a later
// seq), and then the overflow migrates into the now-shared bucket. The
// earlier-seq migrant must fire first.
func TestOverflowMigrationSeqOrder(t *testing.T) {
	var k Kernel
	var order []int
	target := Tick(wheelSlots + 100)
	k.At(target, func(Tick) { order = append(order, 1) }) // overflows (seq 1)
	k.At(200, func(Tick) {
		// now = 200: target is inside the window, so this goes straight
		// into the bucket — but the seq-1 event may still sit in overflow.
		k.At(target, func(Tick) { order = append(order, 2) })
	})
	k.Drain()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("migrated/direct same-tick order = %v, want [1 2]", order)
	}
}

// TestPendingIsO1AndExact checks Pending through a churny schedule.
func TestPendingIsO1AndExact(t *testing.T) {
	var k Kernel
	for i := 0; i < 100; i++ {
		k.At(Tick(i*7), func(Tick) {})
	}
	k.At(Tick(1e6), func(Tick) {}) // overflow entry
	if got := k.Pending(); got != 101 {
		t.Fatalf("Pending = %d, want 101", got)
	}
	k.AdvanceTo(7 * 49)
	if got := k.Pending(); got != 51 {
		t.Fatalf("Pending after partial advance = %d, want 51", got)
	}
	k.Drain()
	if got := k.Pending(); got != 0 {
		t.Fatalf("Pending after drain = %d, want 0", got)
	}
}

// countingHandler exercises the typed-event path.
type countingHandler struct {
	fires []uint64
	k     *Kernel
}

func (h *countingHandler) OnEvent(now Tick, a, b uint64) {
	h.fires = append(h.fires, a<<32|b)
	if a < 3 {
		h.k.AfterEvent(10, h, a+1, b)
	}
}

// TestTypedEventsInterleaveWithClosures checks AtEvent shares the clock,
// ordering and seq stream with At.
func TestTypedEventsInterleaveWithClosures(t *testing.T) {
	var k Kernel
	h := &countingHandler{k: &k}
	var closures []Tick
	k.AtEvent(5, h, 0, 7)
	k.At(5, func(now Tick) { closures = append(closures, now) })
	k.AtEvent(5, h, 1, 9)
	k.Drain()
	// Chained: (0,7) at 5 → (1,7) at 15 → (2,7) at 25 → (3,7) at 35, and
	// (1,9) at 5 → ... → (3,9) at 25.
	if len(closures) != 1 || closures[0] != 5 {
		t.Fatalf("closure events = %v, want [5]", closures)
	}
	want := []uint64{0<<32 | 7, 1<<32 | 9, 1<<32 | 7, 2<<32 | 9, 2<<32 | 7, 3<<32 | 9, 3<<32 | 7}
	if len(h.fires) != len(want) {
		t.Fatalf("typed fires = %d, want %d", len(h.fires), len(want))
	}
	for i := range want {
		if h.fires[i] != want[i] {
			t.Fatalf("typed fire order %v, want %v", h.fires, want)
		}
	}
	if k.Pending() != 0 {
		t.Fatalf("Pending = %d after drain", k.Pending())
	}
}

// TestSlabRecyclesSlots checks the free list actually recycles: a
// schedule/fire loop far longer than the peak pending count must not
// grow the slab beyond that peak.
func TestSlabRecyclesSlots(t *testing.T) {
	var k Kernel
	for i := 0; i < 10_000; i++ {
		k.After(3, func(Tick) {})
		k.After(7, func(Tick) {})
		k.AdvanceTo(k.Now() + 10)
	}
	if len(k.slab) > 16 {
		t.Fatalf("slab grew to %d slots for a peak pending of 2", len(k.slab))
	}
}
