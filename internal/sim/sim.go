// Package sim provides the discrete-event simulation kernel used by the
// memory-system model: an integer clock in ticks and a pending-event heap
// with deterministic FIFO tie-breaking for events scheduled at the same
// tick.
//
// One tick is 0.5 ns — one cycle of the 2 GHz core in Table I. The 400 MHz
// memory clock of Table II is exactly 5 ticks, so every timing parameter in
// the paper is an integer number of ticks.
package sim

import (
	"container/heap"
	"fmt"
)

// Tick is a point in simulated time, in units of 0.5 ns.
type Tick uint64

// Conversion constants between ticks and the units used in the paper.
const (
	// TicksPerNS is the number of ticks per nanosecond.
	TicksPerNS = 2
	// CPUCycle is the duration of one 2 GHz processor cycle.
	CPUCycle Tick = 1
	// MemCycle is the duration of one 400 MHz memory-bus cycle (2.5 ns).
	MemCycle Tick = 5
)

// NS returns the tick count for a duration given in nanoseconds.
func NS(ns uint64) Tick { return Tick(ns * TicksPerNS) }

// Nanoseconds converts a tick count back to (possibly fractional) ns.
func (t Tick) Nanoseconds() float64 { return float64(t) / TicksPerNS }

// Seconds converts a tick count to seconds of simulated time.
func (t Tick) Seconds() float64 { return float64(t) / (TicksPerNS * 1e9) }

// Event is a callback scheduled to run at a specific tick. The kernel
// passes the current time back to the callback.
type Event func(now Tick)

type pendingEvent struct {
	at   Tick
	seq  uint64 // insertion order; breaks ties deterministically
	fire Event
}

type eventHeap []pendingEvent

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(pendingEvent)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}

// ProbeID names a registered periodic probe for removal.
type ProbeID int

// probe is a periodic read-only observer: fn fires at every multiple of
// period past its registration time, interleaved deterministically with
// the event heap (see AddProbe for the contract).
type probe struct {
	id     ProbeID
	period Tick
	next   Tick
	fn     Event
}

// Kernel is a discrete-event scheduler. The zero value is ready to use.
// It is not safe for concurrent use; the whole simulator is single-threaded
// and deterministic.
type Kernel struct {
	now    Tick
	seq    uint64
	events eventHeap
	fired  uint64

	probes      []probe
	nextProbeID ProbeID
	inProbe     bool
}

// Now returns the current simulated time.
func (k *Kernel) Now() Tick { return k.now }

// Pending returns the number of scheduled events not yet fired.
func (k *Kernel) Pending() int { return len(k.events) }

// Fired returns the total number of events executed so far.
func (k *Kernel) Fired() uint64 { return k.fired }

// At schedules fn to run at absolute time t. Scheduling in the past (t <
// Now) is a programming error and panics: the kernel can never run time
// backwards. Probe callbacks are observers and may not schedule.
func (k *Kernel) At(t Tick, fn Event) {
	if k.inProbe {
		panic("sim: probe callbacks are read-only observers and must not schedule events")
	}
	if t < k.now {
		panic(fmt.Sprintf("sim: event scheduled in the past (at tick %d, now %d)", t, k.now))
	}
	k.seq++
	heap.Push(&k.events, pendingEvent{at: t, seq: k.seq, fire: fn})
}

// AddProbe registers a periodic observer: fn fires at ticks now+period,
// now+2·period, … for as long as the kernel advances. Probes are
// deterministic with respect to the event heap — a probe due at tick T
// fires after every event scheduled strictly before T and before any
// event at or after T, and probes due at the same tick fire in
// registration order. Probes never keep the simulation alive (a due time
// beyond the last event or AdvanceTo horizon does not fire), never
// appear in Pending or Fired, and must not schedule events or mutate
// simulated state: they exist so telemetry can snapshot the system
// without perturbing it. A zero or negative period panics.
func (k *Kernel) AddProbe(period Tick, fn Event) ProbeID {
	if period == 0 {
		panic("sim: probe period must be positive")
	}
	k.nextProbeID++
	id := k.nextProbeID
	k.probes = append(k.probes, probe{id: id, period: period, next: k.now + period, fn: fn})
	return id
}

// RemoveProbe unregisters a probe. Unknown ids are ignored.
func (k *Kernel) RemoveProbe(id ProbeID) {
	for i := range k.probes {
		if k.probes[i].id == id {
			k.probes = append(k.probes[:i], k.probes[i+1:]...)
			return
		}
	}
}

// fireProbesTo runs every probe due at or before target, in (due time,
// registration order), advancing the clock to each due time.
func (k *Kernel) fireProbesTo(target Tick) {
	for {
		best := -1
		for i := range k.probes {
			if k.probes[i].next > target {
				continue
			}
			if best < 0 || k.probes[i].next < k.probes[best].next ||
				(k.probes[i].next == k.probes[best].next && k.probes[i].id < k.probes[best].id) {
				best = i
			}
		}
		if best < 0 {
			return
		}
		p := &k.probes[best]
		due := p.next
		p.next += p.period
		if due > k.now {
			k.now = due
		}
		k.inProbe = true
		p.fn(due)
		k.inProbe = false
	}
}

// After schedules fn to run d ticks from now.
func (k *Kernel) After(d Tick, fn Event) { k.At(k.now+d, fn) }

// step fires the earliest pending event, advancing the clock to its
// time. Probes due at or before the event's tick fire first.
func (k *Kernel) step() {
	if len(k.probes) > 0 {
		k.fireProbesTo(k.events[0].at)
	}
	ev := heap.Pop(&k.events).(pendingEvent)
	k.now = ev.at
	k.fired++
	ev.fire(k.now)
}

// AdvanceTo runs every event scheduled at or before t and then sets the
// clock to t. Events fired may schedule further events; those are honoured
// if they also fall at or before t.
func (k *Kernel) AdvanceTo(t Tick) {
	for len(k.events) > 0 && k.events[0].at <= t {
		k.step()
	}
	if len(k.probes) > 0 {
		k.fireProbesTo(t)
	}
	if t > k.now {
		k.now = t
	}
}

// AdvanceUntil runs events in order until done() reports true or no events
// remain. It returns true if done() was satisfied. The predicate is checked
// before any event fires and after each one.
func (k *Kernel) AdvanceUntil(done func() bool) bool {
	for {
		if done() {
			return true
		}
		if len(k.events) == 0 {
			return false
		}
		k.step()
	}
}

// Drain runs all remaining events. Useful at end of simulation and in
// tests. It returns the number of events fired.
func (k *Kernel) Drain() uint64 {
	start := k.fired
	for len(k.events) > 0 {
		k.step()
	}
	return k.fired - start
}
