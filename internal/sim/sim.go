// Package sim provides the discrete-event simulation kernel used by the
// memory-system model: an integer clock in ticks and a bucketed timer
// wheel of pending events with deterministic FIFO tie-breaking for
// events scheduled at the same tick.
//
// One tick is 0.5 ns — one cycle of the 2 GHz core in Table I. The 400 MHz
// memory clock of Table II is exactly 5 ticks, so every timing parameter in
// the paper is an integer number of ticks.
//
// # Event storage
//
// Events live in a free-list slab and are threaded through a timer wheel
// of one-tick buckets covering the window [now, now+wheelSlots). Nearly
// every event the memory model schedules lands within a few hundred
// ticks (the longest write pulse is 900 ticks), so the common case is an
// O(1) bucket append on schedule and an O(1) bucket pop on fire, with
// zero allocation in steady state. Events beyond the wheel horizon (the
// Wear Quota period, 10^6 ticks) go to a small overflow list and migrate
// into the wheel as the clock approaches them — a calendar-queue
// fallback. The fire order is exactly (tick, seq): within one bucket all
// events share one tick and are chained in insertion order, and overflow
// migration inserts by seq, so the ordering contract of the old
// container/heap implementation is preserved bit for bit (see
// TestWheelMatchesReferenceHeap).
package sim

import (
	"fmt"
	"math/bits"
)

// Tick is a point in simulated time, in units of 0.5 ns.
type Tick uint64

// Conversion constants between ticks and the units used in the paper.
const (
	// TicksPerNS is the number of ticks per nanosecond.
	TicksPerNS = 2
	// CPUCycle is the duration of one 2 GHz processor cycle.
	CPUCycle Tick = 1
	// MemCycle is the duration of one 400 MHz memory-bus cycle (2.5 ns).
	MemCycle Tick = 5
)

// NS returns the tick count for a duration given in nanoseconds.
func NS(ns uint64) Tick { return Tick(ns * TicksPerNS) }

// Nanoseconds converts a tick count back to (possibly fractional) ns.
func (t Tick) Nanoseconds() float64 { return float64(t) / TicksPerNS }

// Seconds converts a tick count to seconds of simulated time.
func (t Tick) Seconds() float64 { return float64(t) / (TicksPerNS * 1e9) }

// Event is a callback scheduled to run at a specific tick. The kernel
// passes the current time back to the callback.
type Event func(now Tick)

// Handler is the allocation-free event callback: a single interface
// value (typically the component itself) receives every typed event with
// two opaque payload words. Hot paths schedule through AtEvent so that
// no closure is allocated per event; the payload words carry an opcode
// plus whatever identifies the work (a bank index, a slab index, a
// generation counter).
type Handler interface {
	OnEvent(now Tick, a, b uint64)
}

// Timer-wheel geometry. One bucket per tick over a 4096-tick window
// (2 µs): wide enough for every bank-timing event the memory model
// schedules (longest write pulse 900 ticks, tFAW windows, bus bursts);
// only multi-period timers (Wear Quota, profiler rotation when scheduled
// far ahead) overflow.
const (
	wheelBits  = 12
	wheelSlots = 1 << wheelBits
	wheelMask  = wheelSlots - 1
	wheelWords = wheelSlots / 64

	nilIdx = int32(-1)
)

// maxTick is the step horizon used by Drain and AdvanceUntil.
const maxTick = Tick(^uint64(0))

// pendingEvent is one slab slot: timing, ordering, the callback (either
// a closure or a typed handler+payload), and the intrusive bucket link.
type pendingEvent struct {
	at     Tick
	seq    uint64 // insertion order; breaks ties deterministically
	fire   Event
	h      Handler
	a, b   uint64
	daemon bool  // housekeeping event: never keeps Drain alive
	next   int32 // next event in bucket / free list
}

// ProbeID names a registered periodic probe for removal.
type ProbeID int

// probe is a periodic read-only observer: fn fires at every multiple of
// period past its registration time, interleaved deterministically with
// the pending events (see AddProbe for the contract).
type probe struct {
	id     ProbeID
	period Tick
	next   Tick
	fn     Event
}

// Kernel is a discrete-event scheduler. The zero value is ready to use.
// It is not safe for concurrent use; the whole simulator is single-threaded
// and deterministic.
type Kernel struct {
	now   Tick
	seq   uint64
	fired uint64

	slab     []pendingEvent
	freeHead int32
	npending int
	ndaemon  int // pending daemon (housekeeping) events, a subset of npending

	// wheel buckets: head/tail slab indices per slot, plus an occupancy
	// bitmap so the next non-empty bucket is found with bit scans.
	wheelHead [wheelSlots]int32
	wheelTail [wheelSlots]int32
	occ       [wheelWords]uint64
	wheelN    int

	// overflow holds events at or beyond now+wheelSlots; overflowMin
	// caches the earliest overflow tick.
	overflow    []int32
	overflowMin Tick

	// peekAt caches the earliest pending tick while peekValid. The CPU
	// model nudges the memory clock forward every instruction; with the
	// cache those calls are a compare instead of a bitmap scan. Scheduling
	// can only lower the cached minimum (handled in schedule); firing an
	// event invalidates it.
	peekAt    Tick
	peekValid bool

	probes      []probe
	nextProbeID ProbeID
	inProbe     bool

	ready bool // lazy one-time init of the nil-sentinel indices
}

// init prepares the zero-value kernel: bucket heads and the free list
// use -1 as nil, which the zero value cannot express.
func (k *Kernel) init() {
	k.ready = true
	k.freeHead = nilIdx
	for i := range k.wheelHead {
		k.wheelHead[i] = nilIdx
		k.wheelTail[i] = nilIdx
	}
}

// Now returns the current simulated time.
func (k *Kernel) Now() Tick { return k.now }

// Pending returns the number of scheduled events not yet fired. O(1).
func (k *Kernel) Pending() int { return k.npending }

// PendingWork returns the pending events that represent outstanding work:
// Pending minus the daemon (housekeeping) events. Drain runs until this
// reaches zero. O(1).
func (k *Kernel) PendingWork() int { return k.npending - k.ndaemon }

// Fired returns the total number of events executed so far.
func (k *Kernel) Fired() uint64 { return k.fired }

// alloc takes a slab slot from the free list, growing the slab when it
// is exhausted. Steady state recycles: the slab stops growing once it
// covers the peak number of simultaneously pending events.
func (k *Kernel) alloc() int32 {
	if idx := k.freeHead; idx != nilIdx {
		k.freeHead = k.slab[idx].next
		return idx
	}
	k.slab = append(k.slab, pendingEvent{})
	return int32(len(k.slab) - 1)
}

// release returns a fired event's slot to the free list, dropping the
// callback references so the slab never pins closures alive.
func (k *Kernel) release(idx int32) {
	e := &k.slab[idx]
	e.fire, e.h = nil, nil
	e.next = k.freeHead
	k.freeHead = idx
}

// schedule places a filled slab slot into the wheel or the overflow.
func (k *Kernel) schedule(t Tick, fn Event, h Handler, a, b uint64, daemon bool) {
	if k.inProbe {
		panic("sim: probe callbacks are read-only observers and must not schedule events")
	}
	if t < k.now {
		panic(fmt.Sprintf("sim: event scheduled in the past (at tick %d, now %d)", t, k.now))
	}
	if !k.ready {
		k.init()
	}
	k.seq++
	idx := k.alloc()
	e := &k.slab[idx]
	e.at, e.seq = t, k.seq
	e.fire, e.h, e.a, e.b = fn, h, a, b
	e.daemon = daemon
	e.next = nilIdx
	k.npending++
	if daemon {
		k.ndaemon++
	}
	if k.peekValid && t < k.peekAt {
		k.peekAt = t
	}
	if t-k.now < wheelSlots {
		// Direct inserts carry monotone seq, so a tail append keeps the
		// bucket in (tick, seq) order.
		k.bucketAppend(int(t&wheelMask), idx)
	} else {
		if len(k.overflow) == 0 || t < k.overflowMin {
			k.overflowMin = t
		}
		k.overflow = append(k.overflow, idx)
	}
}

// bucketAppend pushes idx at the tail of a bucket.
func (k *Kernel) bucketAppend(slot int, idx int32) {
	if k.wheelHead[slot] == nilIdx {
		k.wheelHead[slot] = idx
		k.occ[slot>>6] |= 1 << uint(slot&63)
	} else {
		k.slab[k.wheelTail[slot]].next = idx
	}
	k.wheelTail[slot] = idx
	k.wheelN++
}

// bucketInsertSorted inserts idx into a bucket keeping seq order; used
// only for overflow migration, where seq is not monotone with respect to
// events already in the bucket.
func (k *Kernel) bucketInsertSorted(slot int, idx int32) {
	seq := k.slab[idx].seq
	prev := nilIdx
	for cur := k.wheelHead[slot]; cur != nilIdx && k.slab[cur].seq < seq; cur = k.slab[cur].next {
		prev = cur
	}
	if prev == nilIdx {
		k.slab[idx].next = k.wheelHead[slot]
		if k.wheelHead[slot] == nilIdx {
			k.wheelTail[slot] = idx
			k.occ[slot>>6] |= 1 << uint(slot&63)
		}
		k.wheelHead[slot] = idx
	} else {
		k.slab[idx].next = k.slab[prev].next
		k.slab[prev].next = idx
		if k.slab[idx].next == nilIdx {
			k.wheelTail[slot] = idx
		}
	}
	k.wheelN++
}

// bucketPop removes and returns the bucket head.
func (k *Kernel) bucketPop(slot int) int32 {
	idx := k.wheelHead[slot]
	next := k.slab[idx].next
	k.wheelHead[slot] = next
	if next == nilIdx {
		k.wheelTail[slot] = nilIdx
		k.occ[slot>>6] &^= 1 << uint(slot&63)
	}
	k.wheelN--
	return idx
}

// nextOccupied finds the first occupied slot at or after from in
// circular order. Because every wheel event lies in [now, now+wheelSlots),
// circular distance from now's slot equals temporal distance, so the
// first occupied slot holds the earliest events. The caller guarantees
// the wheel is non-empty.
func (k *Kernel) nextOccupied(from int) int {
	w := from >> 6
	if word := k.occ[w] & (^uint64(0) << uint(from&63)); word != 0 {
		return w<<6 | bits.TrailingZeros64(word)
	}
	for i := 1; i <= wheelWords; i++ {
		ww := (w + i) & (wheelWords - 1)
		word := k.occ[ww]
		if ww == w {
			word &= (1 << uint(from&63)) - 1
		}
		if word != 0 {
			return ww<<6 | bits.TrailingZeros64(word)
		}
	}
	return -1 // unreachable when wheelN > 0
}

// migrate moves overflow events that now fit the wheel window into their
// buckets. Migrated events insert by seq: a same-tick event may have
// been scheduled directly into the bucket (with a later seq) after this
// one was pushed to overflow.
func (k *Kernel) migrate() {
	if len(k.overflow) == 0 || k.overflowMin-k.now >= wheelSlots {
		return
	}
	keep := k.overflow[:0]
	min := maxTick
	for _, idx := range k.overflow {
		at := k.slab[idx].at
		if at-k.now < wheelSlots {
			k.slab[idx].next = nilIdx
			k.bucketInsertSorted(int(at&wheelMask), idx)
		} else {
			keep = append(keep, idx)
			if at < min {
				min = at
			}
		}
	}
	k.overflow = keep
	k.overflowMin = min
}

// popOverflowMin removes the overflow event with the smallest (at, seq).
// Only reached when the wheel is empty, i.e. the next event is at least
// wheelSlots ahead; the overflow list is always small (periodic timers).
func (k *Kernel) popOverflowMin() int32 {
	best := 0
	be := &k.slab[k.overflow[0]]
	for i := 1; i < len(k.overflow); i++ {
		e := &k.slab[k.overflow[i]]
		if e.at < be.at || (e.at == be.at && e.seq < be.seq) {
			best, be = i, e
		}
	}
	idx := k.overflow[best]
	last := len(k.overflow) - 1
	k.overflow[best] = k.overflow[last]
	k.overflow = k.overflow[:last]
	return idx
}

// peek returns the earliest pending tick, running overflow migration so
// that afterwards the earliest event is poppable (in the wheel whenever
// the wheel is non-empty). It refreshes the peek cache.
func (k *Kernel) peek() (Tick, bool) {
	if k.npending == 0 {
		return 0, false
	}
	k.migrate()
	var t Tick
	if k.wheelN > 0 {
		s := k.nextOccupied(int(k.now) & wheelMask)
		t = k.slab[k.wheelHead[s]].at
	} else {
		t = k.overflowMin
	}
	k.peekAt, k.peekValid = t, true
	return t, true
}

// At schedules fn to run at absolute time t. Scheduling in the past (t <
// Now) is a programming error and panics: the kernel can never run time
// backwards. Probe callbacks are observers and may not schedule.
func (k *Kernel) At(t Tick, fn Event) { k.schedule(t, fn, nil, 0, 0, false) }

// After schedules fn to run d ticks from now.
func (k *Kernel) After(d Tick, fn Event) { k.At(k.now+d, fn) }

// AtEvent schedules a typed event: h.OnEvent(now, a, b) runs at absolute
// time t. It is the allocation-free twin of At — the handler is an
// interface value the caller constructed once, and the payload words
// travel in the event slab, so nothing escapes to the heap per event.
// Ordering is identical to At: typed and closure events share one clock
// and one seq counter.
func (k *Kernel) AtEvent(t Tick, h Handler, a, b uint64) { k.schedule(t, nil, h, a, b, false) }

// AfterEvent schedules a typed event d ticks from now.
func (k *Kernel) AfterEvent(d Tick, h Handler, a, b uint64) { k.AtEvent(k.now+d, h, a, b) }

// AtDaemonEvent schedules a typed housekeeping event. Daemon events fire
// exactly like AtEvent events — same clock, same seq stream, same (tick,
// seq) ordering — but they represent periodic background work (a Wear
// Quota period timer, the eager-pump heartbeat) rather than outstanding
// requests, so Drain does not wait for them: once only daemon events
// remain pending, Drain stops with those events still scheduled. A
// self-rescheduling timer therefore keeps ticking across AdvanceTo and
// AdvanceUntil but can never hang a drain (the bug this distinction
// fixes: Kernel.Drain spun forever under Wear Quota policies because the
// period timer always re-armed itself).
func (k *Kernel) AtDaemonEvent(t Tick, h Handler, a, b uint64) { k.schedule(t, nil, h, a, b, true) }

// AfterDaemonEvent schedules a typed housekeeping event d ticks from now.
func (k *Kernel) AfterDaemonEvent(d Tick, h Handler, a, b uint64) { k.AtDaemonEvent(k.now+d, h, a, b) }

// AddProbe registers a periodic observer: fn fires at ticks now+period,
// now+2·period, … for as long as the kernel advances. Probes are
// deterministic with respect to the pending events — a probe due at tick
// T fires after every event scheduled strictly before T and before any
// event at or after T, and probes due at the same tick fire in
// registration order. Probes never keep the simulation alive (a due time
// beyond the last event or AdvanceTo horizon does not fire), never
// appear in Pending or Fired, and must not schedule events or mutate
// simulated state: they exist so telemetry can snapshot the system
// without perturbing it. A zero or negative period panics.
func (k *Kernel) AddProbe(period Tick, fn Event) ProbeID {
	if period == 0 {
		panic("sim: probe period must be positive")
	}
	k.nextProbeID++
	id := k.nextProbeID
	k.probes = append(k.probes, probe{id: id, period: period, next: k.now + period, fn: fn})
	return id
}

// RemoveProbe unregisters a probe. Unknown ids are ignored.
func (k *Kernel) RemoveProbe(id ProbeID) {
	for i := range k.probes {
		if k.probes[i].id == id {
			k.probes = append(k.probes[:i], k.probes[i+1:]...)
			return
		}
	}
}

// fireProbesTo runs every probe due at or before target, in (due time,
// registration order), advancing the clock to each due time.
func (k *Kernel) fireProbesTo(target Tick) {
	for {
		best := -1
		for i := range k.probes {
			if k.probes[i].next > target {
				continue
			}
			if best < 0 || k.probes[i].next < k.probes[best].next ||
				(k.probes[i].next == k.probes[best].next && k.probes[i].id < k.probes[best].id) {
				best = i
			}
		}
		if best < 0 {
			return
		}
		p := &k.probes[best]
		due := p.next
		p.next += p.period
		if due > k.now {
			k.now = due
		}
		k.inProbe = true
		p.fn(due)
		k.inProbe = false
	}
}

// stepAtMost fires the earliest pending event if it is due at or before
// limit, advancing the clock to its time. Probes due at or before the
// event's tick fire first. It reports whether an event fired.
func (k *Kernel) stepAtMost(limit Tick) bool {
	if k.peekValid && k.peekAt > limit {
		return false // nothing due: the common idle-advance fast path
	}
	// The full peek also migrates, which the pop below relies on: after
	// migration the earliest event is in the wheel iff the wheel is
	// non-empty.
	t, ok := k.peek()
	if !ok || t > limit {
		return false
	}
	k.peekValid = false
	if len(k.probes) > 0 {
		k.fireProbesTo(t)
	}
	var idx int32
	if k.wheelN > 0 {
		idx = k.bucketPop(int(t & wheelMask))
	} else {
		idx = k.popOverflowMin()
	}
	e := &k.slab[idx]
	k.now = e.at
	k.fired++
	k.npending--
	if e.daemon {
		k.ndaemon--
	}
	fn, h, a, b := e.fire, e.h, e.a, e.b
	k.release(idx)
	if h != nil {
		h.OnEvent(k.now, a, b)
	} else {
		fn(k.now)
	}
	return true
}

// AdvanceTo runs every event scheduled at or before t and then sets the
// clock to t. Events fired may schedule further events; those are honoured
// if they also fall at or before t.
func (k *Kernel) AdvanceTo(t Tick) {
	for k.stepAtMost(t) {
	}
	if len(k.probes) > 0 {
		k.fireProbesTo(t)
	}
	if t > k.now {
		k.now = t
	}
}

// AdvanceUntil runs events in order until done() reports true or no events
// remain. It returns true if done() was satisfied. The predicate is checked
// before any event fires and after each one.
func (k *Kernel) AdvanceUntil(done func() bool) bool {
	for {
		if done() {
			return true
		}
		if !k.stepAtMost(maxTick) {
			return false
		}
	}
}

// Drain runs events until no work remains: every non-daemon event has
// fired. Daemon events due before outstanding work still fire in exact
// (tick, seq) order — a quota period can close between two writes — but
// once only daemon events remain the drain stops, leaving them scheduled
// and the clock just before them. Self-rescheduling housekeeping timers
// therefore never hang a drain. Useful at end of simulation and in
// tests. It returns the number of events fired.
func (k *Kernel) Drain() uint64 {
	start := k.fired
	for k.npending > k.ndaemon && k.stepAtMost(maxTick) {
	}
	return k.fired - start
}
