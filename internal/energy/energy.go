// Package energy accumulates main-memory energy by operation class, so
// Figure 16 can be reported both as a total and as a breakdown (reads vs
// writes vs the overheads the Mellow schemes add: cancelled attempts,
// eager writes and Start-Gap migrations).
package energy

import "mellow/internal/nvm"

// Breakdown is a running energy account in picojoules. The zero value
// is an empty account.
type Breakdown struct {
	// RowHitReadsPJ is column reads served by an open row buffer.
	RowHitReadsPJ float64
	// BufferFillsPJ is array-to-row-buffer fills (read row misses).
	BufferFillsPJ float64
	// WritesPJ is completed write pulses, by pulse mode.
	WritesPJ [4]float64
	// CancelledPJ is aborted write pulses, pro-rated by the fraction of
	// the pulse that ran before the cancelling read arrived.
	CancelledPJ float64
	// MigrationPJ is Start-Gap gap-move reads+writes.
	MigrationPJ float64
}

// AddRowHitRead charges one open-row read.
func (b *Breakdown) AddRowHitRead(m nvm.EnergyModel) {
	b.RowHitReadsPJ += m.RowHitReadEnergyPJ()
}

// AddBufferFill charges one row-buffer fill plus the column read.
func (b *Breakdown) AddBufferFill(m nvm.EnergyModel) {
	b.BufferFillsPJ += m.BufferReadEnergyPJ()
	b.RowHitReadsPJ += m.RowHitReadEnergyPJ()
}

// AddWrite charges one completed write pulse.
func (b *Breakdown) AddWrite(m nvm.EnergyModel, mode nvm.WriteMode) {
	b.WritesPJ[mode] += m.WriteEnergyPJ(mode)
}

// AddCancelled charges an aborted write attempt in the given mode for
// the fraction of the pulse that completed.
func (b *Breakdown) AddCancelled(m nvm.EnergyModel, mode nvm.WriteMode, frac float64) {
	b.CancelledPJ += m.WriteEnergyPJ(mode) * frac
}

// AddMigration charges a Start-Gap gap move: one array read and one
// normal write.
func (b *Breakdown) AddMigration(m nvm.EnergyModel) {
	b.MigrationPJ += m.BufferReadEnergyPJ() + m.WriteEnergyPJ(nvm.WriteNormal)
}

// WriteTotalPJ sums completed write energy across modes.
func (b Breakdown) WriteTotalPJ() float64 {
	t := 0.0
	for _, v := range b.WritesPJ {
		t += v
	}
	return t
}

// ReadTotalPJ sums read-path energy.
func (b Breakdown) ReadTotalPJ() float64 { return b.RowHitReadsPJ + b.BufferFillsPJ }

// TotalPJ is whole-memory energy.
func (b Breakdown) TotalPJ() float64 {
	return b.ReadTotalPJ() + b.WriteTotalPJ() + b.CancelledPJ + b.MigrationPJ
}

// Sub returns the energy accumulated since base (measurement windows).
func (b Breakdown) Sub(base Breakdown) Breakdown {
	d := Breakdown{
		RowHitReadsPJ: b.RowHitReadsPJ - base.RowHitReadsPJ,
		BufferFillsPJ: b.BufferFillsPJ - base.BufferFillsPJ,
		CancelledPJ:   b.CancelledPJ - base.CancelledPJ,
		MigrationPJ:   b.MigrationPJ - base.MigrationPJ,
	}
	for i := range b.WritesPJ {
		d.WritesPJ[i] = b.WritesPJ[i] - base.WritesPJ[i]
	}
	return d
}
