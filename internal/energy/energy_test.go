package energy

import (
	"math"
	"testing"
	"testing/quick"

	"mellow/internal/nvm"
)

func TestBreakdownAccumulates(t *testing.T) {
	m := nvm.EnergyModel{Cell: nvm.CellC}
	var b Breakdown
	b.AddRowHitRead(m)
	b.AddBufferFill(m)
	b.AddWrite(m, nvm.WriteNormal)
	b.AddWrite(m, nvm.WriteSlow30)
	b.AddCancelled(m, nvm.WriteSlow30, 0.5)
	b.AddMigration(m)

	wantReads := 100.0 + (1503.0 + 100.0)
	if math.Abs(b.ReadTotalPJ()-wantReads) > 1e-9 {
		t.Errorf("reads = %v, want %v", b.ReadTotalPJ(), wantReads)
	}
	wantWrites := m.WriteEnergyPJ(nvm.WriteNormal) + m.WriteEnergyPJ(nvm.WriteSlow30)
	if math.Abs(b.WriteTotalPJ()-wantWrites) > 1e-9 {
		t.Errorf("writes = %v, want %v", b.WriteTotalPJ(), wantWrites)
	}
	if math.Abs(b.CancelledPJ-0.5*m.WriteEnergyPJ(nvm.WriteSlow30)) > 1e-9 {
		t.Errorf("cancelled = %v", b.CancelledPJ)
	}
	wantMigration := 1503.0 + m.WriteEnergyPJ(nvm.WriteNormal)
	if math.Abs(b.MigrationPJ-wantMigration) > 1e-9 {
		t.Errorf("migration = %v, want %v", b.MigrationPJ, wantMigration)
	}
	wantTotal := wantReads + wantWrites + b.CancelledPJ + wantMigration
	if math.Abs(b.TotalPJ()-wantTotal) > 1e-9 {
		t.Errorf("total = %v, want %v", b.TotalPJ(), wantTotal)
	}
}

func TestSubGivesWindow(t *testing.T) {
	m := nvm.EnergyModel{Cell: nvm.CellA}
	var b Breakdown
	b.AddWrite(m, nvm.WriteNormal)
	base := b
	b.AddWrite(m, nvm.WriteSlow30)
	b.AddRowHitRead(m)
	d := b.Sub(base)
	if d.WritesPJ[nvm.WriteNormal] != 0 {
		t.Errorf("window includes pre-base write: %v", d.WritesPJ)
	}
	if d.WritesPJ[nvm.WriteSlow30] != m.WriteEnergyPJ(nvm.WriteSlow30) {
		t.Errorf("slow write missing from window")
	}
	if d.RowHitReadsPJ != 100.0 {
		t.Errorf("read missing from window: %v", d.RowHitReadsPJ)
	}
}

// Property: totals are always the sum of the parts, and Sub is the
// inverse of accumulation.
func TestQuickTotalConsistent(t *testing.T) {
	m := nvm.EnergyModel{Cell: nvm.CellB}
	f := func(ops []uint8) bool {
		var b Breakdown
		for _, op := range ops {
			switch op % 6 {
			case 0:
				b.AddRowHitRead(m)
			case 1:
				b.AddBufferFill(m)
			case 2:
				b.AddWrite(m, nvm.WriteNormal)
			case 3:
				b.AddWrite(m, nvm.WriteSlow30)
			case 4:
				b.AddCancelled(m, nvm.WriteNormal, 0.7)
			case 5:
				b.AddMigration(m)
			}
		}
		sum := b.ReadTotalPJ() + b.WriteTotalPJ() + b.CancelledPJ + b.MigrationPJ
		if math.Abs(sum-b.TotalPJ()) > 1e-6 {
			return false
		}
		return math.Abs(b.Sub(Breakdown{}).TotalPJ()-b.TotalPJ()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
