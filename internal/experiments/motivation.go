package experiments

import (
	"fmt"

	"mellow/internal/cache"
	"mellow/internal/nvm"
	"mellow/internal/policy"
	"mellow/internal/rng"
	"mellow/internal/stats"
	"mellow/internal/trace"
)

// runTable4 regenerates Table IV: LLC MPKI per workload, measured the
// way the paper does — demand misses of a 2 MB LLC, no prefetcher in the
// path (the trace drives the hierarchy functionally).
func runTable4(o Options) error {
	t := stats.Table{
		Title:  "Table IV: workloads and their MPKI (2 MB LLC)",
		Header: []string{"workload", "paper", "measured"},
	}
	for _, name := range o.workloads() {
		w, err := trace.ByName(name)
		if err != nil {
			return err
		}
		h := cache.NewHierarchy(o.Cfg.Caches, rng.New(o.Cfg.Run.Seed))
		g := w.New(o.Cfg.Run.Seed)
		var instr uint64
		for instr < o.Cfg.Run.WarmupInstructions {
			op := g.Next()
			instr += uint64(op.Gap) + 1
			h.Access(op.Addr, op.Write)
		}
		h.ResetStats()
		instr = 0
		for instr < o.Cfg.Run.DetailedInstructions {
			op := g.Next()
			instr += uint64(op.Gap) + 1
			h.Access(op.Addr, op.Write)
		}
		mpki := float64(h.Snapshot().LLCMisses) / (float64(instr) / 1000)
		t.AddRow(name, stats.F(w.TargetMPKI, 2), stats.F(mpki, 2))
	}
	return t.Fprint(o.Out)
}

// runTable6 regenerates Table VI from the nvsim-lite model.
func runTable6(o Options) error {
	t := stats.Table{
		Title: "Table VI: energy per operation of memristive main memory",
		Header: []string{"cell", "buffer read (pJ)", "norm write (pJ)",
			"slow write (pJ)", "slow/norm ratio"},
	}
	for _, c := range nvm.Cells() {
		m := nvm.EnergyModel{Cell: c}
		t.AddRow(c.String(),
			stats.F(m.BufferReadEnergyPJ(), 1),
			stats.F(m.WriteEnergyPJ(nvm.WriteNormal), 1),
			stats.F(m.WriteEnergyPJ(nvm.WriteSlow30), 1),
			stats.F(m.SlowNormalRatio(), 2))
	}
	return t.Fprint(o.Out)
}

// runFig1 regenerates Figure 1: endurance versus write-latency
// multiplier for five ExpoFactor curves.
func runFig1(o Options) error {
	expos := []float64{1.0, 1.5, 2.0, 2.5, 3.0}
	t := stats.Table{
		Title:  "Figure 1: endurance vs write latency (base 150 ns, 5e6 writes)",
		Header: []string{"latency mult"},
	}
	for _, e := range expos {
		t.Header = append(t.Header, fmt.Sprintf("Expo=%.1f", e))
	}
	for _, n := range []float64{1.0, 1.5, 2.0, 2.5, 3.0} {
		row := []string{fmt.Sprintf("%.1fx (%.0f ns)", n, 150*n)}
		for _, e := range expos {
			d := o.Cfg.Memory.Device
			d.ExpoFactor = e
			row = append(row, fmt.Sprintf("%.3g", d.EnduranceAt(n)))
		}
		t.AddRow(row...)
	}
	return t.Fprint(o.Out)
}

// fig2Specs is the static-latency grid of the motivation study: each
// write latency with and without write cancellation.
func fig2Specs() []policy.Spec {
	modes := []nvm.WriteMode{nvm.WriteNormal, nvm.WriteSlow15, nvm.WriteSlow20, nvm.WriteSlow30}
	var specs []policy.Spec
	for _, m := range modes {
		var base policy.Spec
		if m == nvm.WriteNormal {
			base = policy.Norm()
		} else {
			base = policy.Slow().WithSlowMode(m)
		}
		specs = append(specs, base)
		if m == nvm.WriteNormal {
			specs = append(specs, base.WithNC())
		} else {
			specs = append(specs, base.WithSC())
		}
	}
	return specs
}

// runFig2 regenerates Figure 2: normalized IPC and lifetime for static
// write latencies, with and without write cancellation.
func runFig2(o Options) error {
	specs := fig2Specs()
	var jobs []job
	for _, w := range o.workloads() {
		for _, s := range specs {
			jobs = append(jobs, job{cfg: o.Cfg, spec: s, workload: w})
		}
	}
	res, err := runAll(o, jobs)
	if err != nil {
		return err
	}
	ipc := stats.Table{
		Title:  "Figure 2 (top): IPC normalized to 1.0x writes without cancellation",
		Header: append([]string{"workload"}, policy.Names(specs)...),
	}
	life := stats.Table{
		Title:  "Figure 2 (bottom): lifetime in years",
		Header: append([]string{"workload"}, policy.Names(specs)...),
	}
	for _, w := range o.workloads() {
		base := res[[2]string{"Norm", w}]
		ipcRow, lifeRow := []string{w}, []string{w}
		for _, s := range specs {
			r := res[[2]string{s.Name, w}]
			ipcRow = append(ipcRow, stats.F(r.IPC/base.IPC, 3))
			lifeRow = append(lifeRow, formatYears(r.LifetimeYears()))
		}
		ipc.AddRow(ipcRow...)
		life.AddRow(lifeRow...)
	}
	if err := ipc.Fprint(o.Out); err != nil {
		return err
	}
	fmt.Fprintln(o.Out)
	return life.Fprint(o.Out)
}

// runFig3 regenerates Figure 3: average bank utilization under normal
// writes.
func runFig3(o Options) error {
	var jobs []job
	for _, w := range o.workloads() {
		jobs = append(jobs, job{cfg: o.Cfg, spec: policy.Norm(), workload: w})
	}
	res, err := runAll(o, jobs)
	if err != nil {
		return err
	}
	bars := &stats.Bars{Title: "Figure 3: average bank utilization with normal writes"}
	for _, w := range o.workloads() {
		u := res[[2]string{"Norm", w}].Mem.AvgUtilization
		bars.Add(w, u, stats.Pct(u))
	}
	return bars.Fprint(o.Out)
}

// formatYears renders a lifetime, capping the display of effectively
// unbounded values.
func formatYears(y float64) string {
	if y > 1e4 {
		return ">10000"
	}
	return stats.F(y, 2)
}
