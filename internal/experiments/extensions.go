package experiments

import (
	"fmt"
	"strings"

	"mellow/internal/cache"
	"mellow/internal/config"
	"mellow/internal/core"
	"mellow/internal/nvm"
	"mellow/internal/policy"
	"mellow/internal/rng"
	"mellow/internal/sched"
	"mellow/internal/stats"
	"mellow/internal/wear"
)

// The ext* experiments go beyond the paper's figures: they implement the
// design-space explorations §VI-I and §VIII name as future work, plus
// ablations of the parameters DESIGN.md calls out.

func init() {
	registry = append(registry,
		Experiment{"ext1", "Extension: multi-latency Mellow Writes (§VIII future work)", runExt1},
		Experiment{"ext2", "Extension: dead-block (decay) prediction for eager write-backs (§VII)", runExt2},
		Experiment{"ext3", "Ablation: eager queue depth, drain thresholds, Start-Gap psi", runExt3},
		Experiment{"ext4", "Extension: write pausing vs write cancellation", runExt4},
		Experiment{"ext5", "Validation: Start-Gap leveling efficiency vs the 0.9 assumption", runExt5},
		Experiment{"ext6", "Extension: multiprogrammed mixes sharing the memory system", runExt6},
		Experiment{"ext7", "Extension: technology corners (PCM-like, high/low-endurance ReRAM)", runExt7},
		Experiment{"ext8", "Extension: Mellow policies x wear-leveling backends (Start-Gap, WoLFRaM, SoftWear)", runExt8},
	)
}

// runExt1 compares the two-pulse BE-Mellow+SC against the graded
// multi-latency variant (+ML), which §VI-I suggests for the benchmarks
// where a fixed 3× pulse is too blunt.
func runExt1(o Options) error {
	specs := []policy.Spec{
		policy.Norm(),
		policy.BEMellow().WithSC(),
		policy.BEMellow().WithSC().WithML(),
		policy.BEMellow().WithSC().WithWQ(),
		policy.BEMellow().WithSC().WithML().WithWQ(),
	}
	var jobs []job
	for _, w := range o.workloads() {
		for _, s := range specs {
			jobs = append(jobs, job{cfg: o.Cfg, spec: s, workload: w})
		}
	}
	res, err := runAll(o, jobs)
	if err != nil {
		return err
	}
	t := stats.Table{
		Title:  "Extension 1: graded write pulses (IPC vs Norm / lifetime years)",
		Header: append([]string{"workload"}, policy.Names(specs)...),
	}
	for _, w := range o.workloads() {
		base := res[[2]string{"Norm", w}]
		row := []string{w}
		for _, s := range specs {
			r := res[[2]string{s.Name, w}]
			row = append(row, fmt.Sprintf("%.2f/%s", r.IPC/base.IPC, formatYears(r.LifetimeYears())))
		}
		t.AddRow(row...)
	}
	return t.Fprint(o.Out)
}

// runExt2 swaps the eager-candidate predictor: the paper's LRU-position
// profiler versus timeout-style dead-block (decay) prediction.
func runExt2(o Options) error {
	spec := policy.BEMellow().WithSC()
	type variant struct {
		label     string
		predictor string
	}
	variants := []variant{
		{"lru-profile (paper)", cache.PredictorLRUProfile},
		{"decay (dead-block)", cache.PredictorDecay},
	}
	var jobs []job
	cfgs := map[string]Options{}
	for _, v := range variants {
		cfg := o.Cfg
		cfg.Caches.EagerPredictor = v.predictor
		cfgs[v.predictor] = Options{Cfg: cfg}
		for _, w := range o.workloads() {
			jobs = append(jobs, job{cfg: cfg, spec: spec, workload: w})
		}
	}
	// Also a Norm baseline on the default config.
	for _, w := range o.workloads() {
		jobs = append(jobs, job{cfg: o.Cfg, spec: policy.Norm(), workload: w})
	}
	res, err := runAll(o, jobs)
	if err != nil {
		return err
	}
	// runAll keys by (policy, workload); the two variants share a policy
	// name, so rerun per variant to keep results separate.
	t := stats.Table{
		Title: "Extension 2: eager-candidate predictor " +
			"(IPC vs Norm / lifetime years / wasted eager writes)",
		Header: []string{"workload", variants[0].label, variants[1].label},
	}
	for _, w := range o.workloads() {
		base := res[[2]string{"Norm", w}]
		row := []string{w}
		for _, v := range variants {
			r, err := runOne(o, cfgs[v.predictor].Cfg, spec, w)
			if err != nil {
				return err
			}
			row = append(row, fmt.Sprintf("%.2f/%s/%d",
				r.IPC/base.IPC, formatYears(r.LifetimeYears()), r.Cache.WastedEager))
		}
		t.AddRow(row...)
	}
	return t.Fprint(o.Out)
}

// runExt3 ablates the controller parameters the design fixes by fiat:
// the 16-entry eager queue, the 16/32 drain thresholds and Start-Gap's
// gap-move interval psi.
func runExt3(o Options) error {
	spec := policy.BEMellow().WithSC()
	workload := "GemsFDTD"
	if ws := o.workloads(); len(ws) > 0 {
		workload = ws[0]
	}
	t := stats.Table{
		Title:  fmt.Sprintf("Extension 3: parameter ablations (%s, BE-Mellow+SC)", workload),
		Header: []string{"variant", "IPC", "lifetime (y)", "eager done", "drain time", "gap moves"},
	}
	addRow := func(label string, cfg cfgMutator) error {
		c := o.Cfg
		cfg(&c)
		r, err := runOne(o, c, spec, workload)
		if err != nil {
			return err
		}
		t.AddRow(label, stats.F(r.IPC, 3), formatYears(r.LifetimeYears()),
			fmt.Sprintf("%d", r.Mem.EagerDone), stats.Pct(r.Mem.DrainFraction),
			fmt.Sprintf("%d", r.Mem.GapMoves))
		return nil
	}
	cases := []struct {
		label string
		mut   cfgMutator
	}{
		{"baseline (eq=16, drain 16/32, psi=100)", func(*configT) {}},
		{"eager queue 4", func(c *configT) { c.Memory.EagerQueue = 4 }},
		{"eager queue 64", func(c *configT) { c.Memory.EagerQueue = 64 }},
		{"drain thresholds 8/16", func(c *configT) { c.Memory.DrainLow, c.Memory.DrainHigh = 8, 16 }},
		{"drain thresholds 24/32", func(c *configT) { c.Memory.DrainLow = 24 }},
		{"Start-Gap psi 10", func(c *configT) { c.Memory.StartGapPsi = 10 }},
		{"Start-Gap psi 1000", func(c *configT) { c.Memory.StartGapPsi = 1000 }},
		{"2 channels", func(c *configT) { c.Memory.Channels = 2 }},
		{"FR-FCFS reads", func(c *configT) { c.Memory.Scheduler = "frfcfs" }},
		{"profile period 100us", func(c *configT) { c.Caches.ProfilePeriod /= 5 }},
		{"useless threshold 1/8", func(c *configT) { c.Caches.UselessHitRatio = 1.0 / 8.0 }},
	}
	for _, cse := range cases {
		if err := addRow(cse.label, cse.mut); err != nil {
			return err
		}
	}
	return t.Fprint(o.Out)
}

// runExt4 compares read-preemption mechanisms: cancellation (+SC/+NC,
// the paper's choice) redoes the aborted pulse and wears the cell for
// the wasted fraction; pausing (+WP) resumes it. Qureshi et al. (HPCA
// 2010) introduced both; the paper adopts cancellation (§VII).
func runExt4(o Options) error {
	specs := []policy.Spec{
		policy.Norm(),
		policy.Slow(),
		policy.Slow().WithSC(),
		policy.Slow().WithWP(),
		policy.BEMellow().WithSC(),
		policy.BEMellow().WithWP(),
	}
	var jobs []job
	for _, w := range o.workloads() {
		for _, s := range specs {
			jobs = append(jobs, job{cfg: o.Cfg, spec: s, workload: w})
		}
	}
	res, err := runAll(o, jobs)
	if err != nil {
		return err
	}
	t := stats.Table{
		Title: "Extension 4: pausing vs cancellation " +
			"(IPC vs Norm / lifetime years / preemptions / mean read ns)",
		Header: append([]string{"workload"}, policy.Names(specs)...),
	}
	for _, w := range o.workloads() {
		base := res[[2]string{"Norm", w}]
		row := []string{w}
		for _, s := range specs {
			r := res[[2]string{s.Name, w}]
			pre := r.Mem.Cancellations + r.Mem.Pauses
			row = append(row, fmt.Sprintf("%.2f/%s/%d/%.0f",
				r.IPC/base.IPC, formatYears(r.LifetimeYears()), pre,
				r.Mem.ReadLatency.Mean()))
		}
		t.AddRow(row...)
	}
	return t.Fprint(o.Out)
}

// runExt5 validates the Start-Gap efficiency assumption behind the §V
// lifetime model (and Ratio_quota = 0.9): it measures achieved leveling
// for representative write patterns across gap-move intervals. Memory
// write streams are cache-filtered and diffuse, which is the regime
// where the assumption holds; the table also shows the adversarial
// single-block case where plain Start-Gap cannot help (the original
// paper pairs it with randomized mapping for that threat).
func runExt5(o Options) error {
	const blocks = 4096
	const writes = 4_000_000
	patterns := []struct {
		name string
		mk   func(seed uint64) func() int64
	}{
		{"uniform (cache-filtered)", func(seed uint64) func() int64 {
			src := rng.New(seed)
			return func() int64 { return int64(src.Uintn(blocks)) }
		}},
		{"sequential sweep", func(seed uint64) func() int64 {
			var i int64
			return func() int64 { i++; return i % blocks }
		}},
		{"zipf 0.9 (skewed)", func(seed uint64) func() int64 {
			src := rng.New(seed)
			z := rng.NewZipf(src, blocks, 0.9)
			return func() int64 { return int64((z.Next() * 0x9E3779B1) % blocks) }
		}},
		{"single hot block", func(seed uint64) func() int64 {
			return func() int64 { return 0 }
		}},
	}
	t := stats.Table{
		Title:  "Extension 5: measured Start-Gap leveling efficiency (1.0 = ideal; model assumes 0.9)",
		Header: []string{"pattern", "psi=10", "psi=100", "psi=1000", "no leveling", "overhead@100"},
	}
	for _, pat := range patterns {
		row := []string{pat.name}
		var ov float64
		for _, psi := range []int{10, 100, 1000, 1 << 30} {
			res := wear.MeasureLeveling(blocks, psi, writes, pat.mk(7))
			row = append(row, stats.F(res.Efficiency, 3))
			if psi == 100 {
				ov = res.Overhead
			}
		}
		row = append(row, stats.Pct(ov))
		t.AddRow(row...)
	}
	return t.Fprint(o.Out)
}

// runExt6 probes Mellow Writes under multiprogrammed mixes: several
// cores with private caches share the banks, eroding the idle time the
// mechanisms exploit — the multi-core analogue of Figure 18's bank-
// parallelism sensitivity.
func runExt6(o Options) error {
	mixes := [][]string{
		{"GemsFDTD", "milc"},
		{"lbm", "mcf"},
		{"stream", "gups"},
		{"lbm", "GemsFDTD", "gups", "milc"},
	}
	specs := []policy.Spec{policy.Norm(), policy.BEMellow().WithSC(), policy.BEMellow().WithSC().WithWQ()}
	t := stats.Table{
		Title:  "Extension 6: multiprogrammed mixes (per-core IPC sum / lifetime years / bank util)",
		Header: append([]string{"mix"}, policy.Names(specs)...),
	}
	for _, mix := range mixes {
		row := []string{strings.Join(mix, "+")}
		for _, s := range specs {
			// A mix models len(mix) cores against one memory system, so
			// it holds that many scheduler slots — the weighted analogue
			// of one slot per single-core simulation.
			release, err := sched.Default().Acquire(o.ctx(), int64(len(mix)))
			if err != nil {
				return err
			}
			m, err := core.RunMix(o.Cfg, s, mix)
			release()
			if err != nil {
				return err
			}
			row = append(row, fmt.Sprintf("%.2f/%s/%s",
				m.WeightedIPC(), formatYears(m.LifetimeYears()), stats.Pct(m.Mem.AvgUtilization)))
		}
		t.AddRow(row...)
	}
	return t.Fprint(o.Out)
}

// runExt7 sweeps §II's technology corners: the same mechanisms on a
// PCM-like device, a high-endurance ReRAM (wear limiting barely needed)
// and a scarce-endurance corner (wear limiting critical).
func runExt7(o Options) error {
	specs := []policy.Spec{policy.Norm(), policy.BEMellow().WithSC()}
	suite := o.workloads()
	if len(suite) > 3 {
		suite = []string{"GemsFDTD", "lbm", "gups"}
	}
	t := stats.Table{
		Title:  "Extension 7: technology corners (per workload: Norm lifetime -> BE-Mellow+SC lifetime, years)",
		Header: append([]string{"device"}, suite...),
	}
	for _, p := range nvm.Presets() {
		cfg := o.Cfg
		cfg.Memory.Device = p.Device
		var jobs []job
		for _, w := range suite {
			for _, s := range specs {
				jobs = append(jobs, job{cfg: cfg, spec: s, workload: w})
			}
		}
		res, err := runAll(o, jobs)
		if err != nil {
			return err
		}
		row := []string{p.Name}
		for _, w := range suite {
			n := res[[2]string{"Norm", w}].LifetimeYears()
			b := res[[2]string{"BE-Mellow+SC", w}].LifetimeYears()
			row = append(row, fmt.Sprintf("%s -> %s", formatYears(n), formatYears(b)))
		}
		t.AddRow(row...)
	}
	return t.Fprint(o.Out)
}

// runExt8 re-evaluates the Mellow policy line-up on top of each
// selectable wear-leveling backend. The paper's Tables I/II assume
// Start-Gap underneath every policy; WoLFRaM-style decoder remapping and
// SoftWear-style page-granularity software leveling charge different
// remap costs and level with different efficiency, so both the IPC and
// the lifetime columns move — the comparison PAPERS.md names as the
// natural modern baseline sweep.
func runExt8(o Options) error {
	specs := []policy.Spec{
		policy.Norm(),
		policy.BMellow().WithSC(),
		policy.BEMellow().WithSC(),
		policy.BEMellow().WithSC().WithWQ(),
	}
	t := stats.Table{
		Title: "Extension 8: wear-leveling backends x Mellow policies " +
			"(IPC vs same-backend Norm / lifetime years / migration writes)",
		Header: append([]string{"workload", "leveler"}, policy.Names(specs)...),
	}
	for _, w := range o.workloads() {
		for _, backend := range wear.Backends() {
			cfg := o.Cfg
			cfg.Memory.WearLeveler = backend
			var jobs []job
			for _, s := range specs {
				jobs = append(jobs, job{cfg: cfg, spec: s, workload: w})
			}
			res, err := runAll(o, jobs)
			if err != nil {
				return err
			}
			base := res[[2]string{"Norm", w}]
			row := []string{w, backend}
			for _, s := range specs {
				r := res[[2]string{s.Name, w}]
				row = append(row, fmt.Sprintf("%.2f/%s/%d",
					r.IPC/base.IPC, formatYears(r.LifetimeYears()), r.Mem.GapMoves))
			}
			t.AddRow(row...)
		}
	}
	return t.Fprint(o.Out)
}

// cfgMutator adjusts one configuration field for an ablation variant.
type cfgMutator = func(*configT)

// configT abbreviates the config type in ablation tables.
type configT = config.Config
