package experiments

import (
	"fmt"

	"mellow/internal/core"
	"mellow/internal/policy"
	"mellow/internal/stats"
)

// evalTable renders one Figure 10–16 style table: a column per policy of
// the evaluation set, a row per workload plus a summary row.
func evalTable(o Options, title, summary string,
	cell func(r, base core.Result) (value float64, text string)) error {
	res, specs, err := evalSweep(o)
	if err != nil {
		return err
	}
	t := stats.Table{
		Title:  title,
		Header: append([]string{"workload"}, policy.Names(specs)...),
	}
	sums := make([][]float64, len(specs))
	for _, w := range o.workloads() {
		base := res[[2]string{"Norm", w}]
		row := []string{w}
		for i, s := range specs {
			v, text := cell(res[[2]string{s.Name, w}], base)
			sums[i] = append(sums[i], v)
			row = append(row, text)
		}
		t.AddRow(row...)
	}
	if summary != "" {
		row := []string{summary}
		for i := range specs {
			row = append(row, stats.F(stats.Geomean(sums[i]), 3))
		}
		t.AddRow(row...)
	}
	return t.Fprint(o.Out)
}

func runFig10(o Options) error {
	return evalTable(o, "Figure 10: IPC by write policy (normalized to Norm)", "geomean",
		func(r, base core.Result) (float64, string) {
			v := r.IPC / base.IPC
			return v, stats.F(v, 3)
		})
}

func runFig11(o Options) error {
	if err := evalTable(o, "Figure 11: resistive memory lifetime by write policy (years)", "geomean",
		func(r, base core.Result) (float64, string) {
			y := r.LifetimeYears()
			return y, formatYears(y)
		}); err != nil {
		return err
	}
	// The paper plots Figure 11 on a log axis; render the headline
	// comparison that way for the default suite.
	res, _, err := evalSweep(o)
	if err != nil {
		return err
	}
	bars := &stats.Bars{Title: "Figure 11 (log scale): Norm vs BE-Mellow+SC lifetime", Log: true}
	for _, w := range o.workloads() {
		n := res[[2]string{"Norm", w}].LifetimeYears()
		b := res[[2]string{"BE-Mellow+SC", w}].LifetimeYears()
		bars.Add(w+" Norm", n, formatYears(n)+"y")
		bars.Add(w+" BE-Mellow+SC", b, formatYears(b)+"y")
	}
	fmt.Fprintln(o.Out)
	return bars.Fprint(o.Out)
}

func runFig12(o Options) error {
	return evalTable(o, "Figure 12: average bank utilization by write policy", "geomean",
		func(r, base core.Result) (float64, string) {
			u := r.Mem.AvgUtilization
			return u, stats.Pct(u)
		})
}

func runFig13(o Options) error {
	return evalTable(o, "Figure 13: fraction of time in write drain", "",
		func(r, base core.Result) (float64, string) {
			f := r.Mem.DrainFraction
			return f, stats.Pct(f)
		})
}

// runFig14 shows the LLC-side request mix: demand fetches, ordinary
// dirty write-backs, and eager write-backs, normalized to Norm's total.
func runFig14(o Options) error {
	res, specs, err := evalSweep(o)
	if err != nil {
		return err
	}
	t := stats.Table{
		Title: "Figure 14: memory requests from LLC, normalized to Norm total " +
			"(read / writeback / eager)",
		Header: append([]string{"workload"}, policy.Names(specs)...),
	}
	for _, w := range o.workloads() {
		base := res[[2]string{"Norm", w}]
		baseTotal := float64(base.Cache.MemFetches + base.Cache.MemWritebacks + base.Cache.EagerIssued)
		row := []string{w}
		for _, s := range specs {
			r := res[[2]string{s.Name, w}]
			c := r.Cache
			row = append(row, fmt.Sprintf("%.2f/%.2f/%.2f",
				float64(c.MemFetches)/baseTotal,
				float64(c.MemWritebacks)/baseTotal,
				float64(c.EagerIssued)/baseTotal))
		}
		t.AddRow(row...)
	}
	return t.Fprint(o.Out)
}

// runFig15 shows requests actually serviced by banks — including
// cancelled write attempts and Start-Gap migrations — normalized to Norm.
func runFig15(o Options) error {
	return evalTable(o, "Figure 15: requests issued to memory banks (normalized to Norm)", "geomean",
		func(r, base core.Result) (float64, string) {
			v := float64(r.Mem.BankAttempts) / float64(base.Mem.BankAttempts)
			return v, stats.F(v, 3)
		})
}

func runFig16(o Options) error {
	return evalTable(o, "Figure 16: main memory energy (CellC, normalized to Norm)", "geomean",
		func(r, base core.Result) (float64, string) {
			v := r.Mem.EnergyPJ / base.Mem.EnergyPJ
			return v, stats.F(v, 3)
		})
}
