package experiments

import (
	"fmt"
	"math"

	"mellow/internal/core"
	"mellow/internal/policy"
	"mellow/internal/stats"
)

func init() {
	registry = append(registry,
		Experiment{"claims", "Headline-claim verification (paper vs this reproduction)", runClaims})
}

// claim is one falsifiable statement from the paper, checked against the
// evaluation sweep. Thresholds are set at "shape" level: direction and
// rough magnitude, not the authors' absolute numbers (see DESIGN.md §4).
type claim struct {
	id    string
	text  string
	paper string
	check func(sweep map[[2]string]core.Result, o Options) (measured string, ok bool)
}

// geomeanOver computes a geometric mean of a per-workload metric for one
// policy, skipping unbounded values.
func geomeanOver(sweep map[[2]string]core.Result, o Options, policyName string,
	metric func(core.Result) float64) float64 {
	var vs []float64
	for _, w := range o.workloads() {
		v := metric(sweep[[2]string{policyName, w}])
		if !math.IsInf(v, 1) && !math.IsNaN(v) {
			vs = append(vs, v)
		}
	}
	return stats.Geomean(vs)
}

func claims() []claim {
	lifetime := func(r core.Result) float64 { return r.LifetimeYears() }
	ipc := func(r core.Result) float64 { return r.IPC }
	return []claim{
		{
			id:    "C1",
			text:  "BE-Mellow+SC extends lifetime well beyond Norm (geomean)",
			paper: "2.58x",
			check: func(s map[[2]string]core.Result, o Options) (string, bool) {
				ratio := geomeanOver(s, o, "BE-Mellow+SC", lifetime) /
					geomeanOver(s, o, "Norm", lifetime)
				return fmt.Sprintf("%.2fx", ratio), ratio >= 1.5
			},
		},
		{
			id:    "C2",
			text:  "BE-Mellow+SC matches or beats Norm performance (geomean IPC)",
			paper: "1.06x",
			check: func(s map[[2]string]core.Result, o Options) (string, bool) {
				ratio := geomeanOver(s, o, "BE-Mellow+SC", ipc) /
					geomeanOver(s, o, "Norm", ipc)
				return fmt.Sprintf("%.2fx", ratio), ratio >= 0.98
			},
		},
		{
			id:    "C3",
			text:  "BE-Mellow+SC is within a whisker of the aggressive E-Norm+NC's performance",
			paper: "'almost the same as a system aggressively optimized for performance'",
			check: func(s map[[2]string]core.Result, o Options) (string, bool) {
				ratio := geomeanOver(s, o, "BE-Mellow+SC", ipc) /
					geomeanOver(s, o, "E-Norm+NC", ipc)
				return fmt.Sprintf("%.2fx", ratio), ratio >= 0.95
			},
		},
		{
			id:    "C4",
			text:  "E-Norm+NC has an unacceptably short lifetime (worst of the line-up)",
			paper: "shortest in Fig. 11",
			check: func(s map[[2]string]core.Result, o Options) (string, bool) {
				en := geomeanOver(s, o, "E-Norm+NC", lifetime)
				for _, p := range policy.Names(policy.EvaluationSet()) {
					if p == "E-Norm+NC" {
						continue
					}
					if geomeanOver(s, o, p, lifetime) < en {
						return fmt.Sprintf("%.2fy not the minimum", en), false
					}
				}
				return fmt.Sprintf("%.2fy (minimum)", en), true
			},
		},
		{
			id:    "C5",
			text:  "All-slow writes cost real performance",
			paper: "E-Slow+SC geomean 0.77x, worst 0.46x",
			check: func(s map[[2]string]core.Result, o Options) (string, bool) {
				ratio := geomeanOver(s, o, "Slow", ipc) / geomeanOver(s, o, "Norm", ipc)
				return fmt.Sprintf("Slow %.2fx", ratio), ratio <= 0.90
			},
		},
		{
			id:    "C6",
			text:  "Wear Quota pulls heavy writers toward the 8-year floor",
			paper: ">= 8 years for all workloads",
			check: func(s map[[2]string]core.Result, o Options) (string, bool) {
				// The floor emerges over the measured window; for the
				// heavy writers the +WQ config must land near 8 years
				// even though Norm is far below.
				worstGain, worst := math.Inf(1), ""
				for _, w := range o.workloads() {
					n := s[[2]string{"Norm", w}].LifetimeYears()
					if n >= 8 {
						continue // quota never binds
					}
					q := s[[2]string{"Norm+WQ", w}].LifetimeYears()
					gain := q / n
					if gain < worstGain {
						worstGain, worst = gain, w
					}
					if q < 4.5 {
						return fmt.Sprintf("%s: %.1fy under Norm+WQ", w, q), false
					}
				}
				if worst == "" {
					return "quota never needed", true
				}
				return fmt.Sprintf("worst gain %.1fx (%s)", worstGain, worst), true
			},
		},
		{
			id:    "C7",
			text:  "BE-Mellow+SC keeps write-drain time small",
			paper: "<= ~6% of execution time",
			check: func(s map[[2]string]core.Result, o Options) (string, bool) {
				worst := 0.0
				for _, w := range o.workloads() {
					if f := s[[2]string{"BE-Mellow+SC", w}].Mem.DrainFraction; f > worst {
						worst = f
					}
				}
				return stats.Pct(worst), worst <= 0.08
			},
		},
		{
			id:    "C8",
			text:  "Eager writes convert a large share of LLC write-backs",
			paper: "'nearly half of the writes' (Fig. 14)",
			check: func(s map[[2]string]core.Result, o Options) (string, bool) {
				var shares []float64
				for _, w := range o.workloads() {
					c := s[[2]string{"BE-Mellow+SC", w}].Cache
					if tot := c.MemWritebacks + c.EagerIssued; tot > 0 {
						shares = append(shares, float64(c.EagerIssued)/float64(tot))
					}
				}
				mean := 0.0
				for _, v := range shares {
					mean += v
				}
				mean /= float64(len(shares))
				return stats.Pct(mean), mean >= 0.35
			},
		},
		{
			id:    "C9",
			text:  "The useless-line predictor is accurate: eager writes barely inflate write traffic",
			paper: "up to 2.2% extra writes (hmmer, Fig. 14)",
			check: func(s map[[2]string]core.Result, o Options) (string, bool) {
				// The paper's metric: LLC->memory write requests under the
				// eager scheme versus the baseline. Workloads whose baseline
				// write traffic is negligible (our hmmer stand-in is almost
				// fully cache-resident) are skipped — any eager write at all
				// is an unbounded relative increase there.
				worst := 0.0
				for _, w := range o.workloads() {
					base := s[[2]string{"Norm", w}].Cache
					be := s[[2]string{"BE-Mellow+SC", w}].Cache
					if base.MemWritebacks < base.MemFetches/20 {
						continue
					}
					incr := float64(be.MemWritebacks+be.EagerIssued)/float64(base.MemWritebacks) - 1
					if incr > worst {
						worst = incr
					}
				}
				return stats.Pct(worst), worst <= 0.15
			},
		},
		{
			id:    "C10",
			text:  "Main-memory energy overhead of the best config is moderate",
			paper: "~1.39x Norm",
			check: func(s map[[2]string]core.Result, o Options) (string, bool) {
				ratio := geomeanOver(s, o, "BE-Mellow+SC+WQ",
					func(r core.Result) float64 { return r.Mem.EnergyPJ }) /
					geomeanOver(s, o, "Norm",
						func(r core.Result) float64 { return r.Mem.EnergyPJ })
				return fmt.Sprintf("%.2fx", ratio), ratio <= 1.6
			},
		},
	}
}

// runClaims evaluates every headline claim against the standard sweep
// and prints a pass/fail table.
func runClaims(o Options) error {
	sweep, _, err := evalSweep(o)
	if err != nil {
		return err
	}
	t := stats.Table{
		Title:  "Headline claims: paper statement vs this reproduction",
		Header: []string{"id", "claim", "paper", "measured", "verdict"},
	}
	pass := 0
	all := claims()
	for _, c := range all {
		measured, ok := c.check(sweep, o)
		verdict := "FAIL"
		if ok {
			verdict = "pass"
			pass++
		}
		t.AddRow(c.id, c.text, c.paper, measured, verdict)
	}
	t.AddRow("", fmt.Sprintf("total: %d/%d", pass, len(all)))
	return t.Fprint(o.Out)
}
