package experiments

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"mellow/internal/metrics"
	"mellow/internal/policy"
)

// runInstrumented is the test shorthand: one metrics-on simulation
// against a fresh cache.
func runInstrumented(t *testing.T, seed uint64) *metrics.Snapshot {
	t.Helper()
	ResetCache()
	spec, err := policy.Parse("Norm")
	if err != nil {
		t.Fatal(err)
	}
	_, _, snap, err := RunInstrumented(context.Background(), tinyConfig(seed), spec, "stream",
		Observation{Metrics: true})
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil {
		t.Fatal("RunInstrumented with Metrics returned no snapshot")
	}
	return snap
}

// TestRunInstrumentedPreservesResult pins the per-run collector
// contract: attaching a metrics registry must not perturb the
// simulation. The instrumented result must equal the plain one
// bit-for-bit.
func TestRunInstrumentedPreservesResult(t *testing.T) {
	ResetCache()
	cfg := tinyConfig(7)
	spec, err := policy.Parse("Norm")
	if err != nil {
		t.Fatal(err)
	}
	plain, err := RunCached(context.Background(), cfg, spec, "stream")
	if err != nil {
		t.Fatal(err)
	}
	instr, _, snap, err := RunInstrumented(context.Background(), cfg, spec, "stream",
		Observation{Metrics: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, instr) {
		t.Error("instrumented result differs from plain result")
	}
	if snap == nil || len(snap.Families) == 0 {
		t.Fatal("no per-run snapshot")
	}
	// The two runs must be distinct cache entries: the metrics flag is
	// part of the content key, since the memoised values differ.
	if st := CacheSnapshot(); st.Entries != 2 {
		t.Errorf("cache entries = %d, want 2 (plain and instrumented keys)", st.Entries)
	}
}

// TestRunInstrumentedSnapshotDeterministic re-simulates the same key
// against a cleared cache and requires byte-equal snapshot JSON — the
// property that lets per-run metrics ride the content-addressed result
// cache.
func TestRunInstrumentedSnapshotDeterministic(t *testing.T) {
	a := runInstrumented(t, 31)
	b := runInstrumented(t, 31)
	ja, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if string(ja) != string(jb) {
		t.Error("per-run snapshots differ across identical runs")
	}

	// Spot-check the taxonomy: one family per instrumented layer, and
	// the memory counters actually counted.
	for _, name := range []string{
		"sim_cpu_instructions_total",
		"sim_cache_demand_reads_total",
		"sim_mem_reads_total",
		"sim_wear_max_bank_damage",
	} {
		if _, ok := a.Get(name); !ok {
			t.Errorf("snapshot missing %s", name)
		}
	}
	if v := a.Value("sim_mem_reads_total"); v <= 0 {
		t.Errorf("sim_mem_reads_total = %v, want > 0", v)
	}
}
