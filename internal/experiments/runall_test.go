package experiments

import (
	"context"
	"sync"
	"testing"

	"mellow/internal/policy"
	"mellow/internal/sched"
)

// TestRunAllProgressOnError: a failing simulation must still advance
// the progress callback — previously the error path returned before
// OnProgress, so a failed sweep's last reported fraction froze at an
// arbitrary value.
func TestRunAllProgressOnError(t *testing.T) {
	ResetCache()
	cfg := tinyConfig(301)
	spec := policy.Norm()
	jobs := []job{
		{cfg: cfg, spec: spec, workload: "stream"},
		{cfg: cfg, spec: spec, workload: "no-such-workload"}, // fails fast
		{cfg: cfg, spec: spec, workload: "gups"},
	}
	var mu sync.Mutex
	var calls [][2]int
	o := Options{Cfg: cfg, Parallel: 1, OnProgress: func(done, total int) {
		mu.Lock()
		calls = append(calls, [2]int{done, total})
		mu.Unlock()
	}}
	_, err := runAll(o, jobs)
	if err == nil {
		t.Fatal("sweep with an invalid workload succeeded")
	}
	if len(calls) != len(jobs) {
		t.Fatalf("OnProgress fired %d times, want %d (every attempt, failures included): %v",
			len(calls), len(jobs), calls)
	}
	for i, c := range calls {
		if c[0] != i+1 || c[1] != len(jobs) {
			t.Fatalf("call %d reported %d/%d, want %d/%d", i, c[0], c[1], i+1, len(jobs))
		}
	}
}

// TestBudgetBoundsConcurrentSims is the scheduler acceptance check at
// the harness level: with budget B, hammering RunCached from many
// goroutines never executes more than B simulations at once. Run with
// -race in CI.
func TestBudgetBoundsConcurrentSims(t *testing.T) {
	ResetCache()
	old := sched.Default().Stats().Budget
	const budget = 2
	sched.Default().SetBudget(budget)
	defer sched.Default().SetBudget(old)

	workloads := []string{"stream", "gups", "mcf", "lbm", "milc", "hmmer"}
	var wg sync.WaitGroup
	for i, w := range workloads {
		w := w
		cfg := tinyConfig(uint64(400 + i)) // distinct keys: no memo reuse
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := RunCached(context.Background(), cfg, policy.Norm(), w); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()

	st := CacheSnapshot()
	if st.Misses != uint64(len(workloads)) {
		t.Fatalf("misses = %d, want %d distinct simulations", st.Misses, len(workloads))
	}
	if st.PeakRunning > budget {
		t.Fatalf("peak concurrent simulations = %d, exceeds budget %d", st.PeakRunning, budget)
	}
	if st.PeakRunning == 0 {
		t.Fatal("no simulation ever held a scheduler slot")
	}
}
