package experiments

import (
	"fmt"
	"math"

	"mellow/internal/policy"
	"mellow/internal/stats"
)

// runFig17 regenerates Figure 17: geometric-mean lifetime of Slow+SC and
// BE-Mellow+SC across the suite as the latency/endurance ExpoFactor
// sweeps 1.0–3.0, with Norm as the (ExpoFactor-independent) reference.
func runFig17(o Options) error {
	expos := []float64{1.0, 1.5, 2.0, 2.5, 3.0}
	specs := []policy.Spec{policy.Norm(), policy.Slow().WithSC(), policy.BEMellow().WithSC()}
	t := stats.Table{
		Title:  "Figure 17: lifetime (geomean years) vs ExpoFactor",
		Header: []string{"ExpoFactor", "Norm", "Slow+SC", "BE-Mellow+SC", "BE-Mellow+SC/Norm"},
	}
	for _, e := range expos {
		cfg := o.Cfg
		cfg.Memory.Device.ExpoFactor = e
		var jobs []job
		for _, w := range o.workloads() {
			for _, s := range specs {
				jobs = append(jobs, job{cfg: cfg, spec: s, workload: w})
			}
		}
		res, err := runAll(o, jobs)
		if err != nil {
			return err
		}
		geo := func(name string) float64 {
			var ys []float64
			for _, w := range o.workloads() {
				y := res[[2]string{name, w}].LifetimeYears()
				if !math.IsInf(y, 1) {
					ys = append(ys, y)
				}
			}
			return stats.Geomean(ys)
		}
		norm, slow, be := geo("Norm"), geo("Slow+SC"), geo("BE-Mellow+SC")
		t.AddRow(fmt.Sprintf("%.1f", e), stats.F(norm, 2), stats.F(slow, 2),
			stats.F(be, 2), stats.F(be/norm, 2)+"x")
	}
	return t.Fprint(o.Out)
}

// runFig18 regenerates Figure 18: GemsFDTD under 4, 8 and 16 banks —
// (a) lifetime, (b) bank utilization, (c) eager writes, (d) writes
// issued to banks by pulse.
func runFig18(o Options) error {
	const workload = "GemsFDTD"
	specs := []policy.Spec{policy.Norm(), policy.BEMellow().WithSC()}
	t := stats.Table{
		Title: "Figure 18: GemsFDTD vs bank-level parallelism",
		Header: []string{"banks", "policy", "lifetime (y)", "bank util",
			"eager writes", "normal writes", "slow writes", "cancelled"},
	}
	for _, banks := range []int{16, 8, 4} {
		cfg, err := o.Cfg.WithBanks(banks)
		if err != nil {
			return err
		}
		var jobs []job
		for _, s := range specs {
			jobs = append(jobs, job{cfg: cfg, spec: s, workload: workload})
		}
		res, err := runAll(o, jobs)
		if err != nil {
			return err
		}
		for _, s := range specs {
			r := res[[2]string{s.Name, workload}]
			t.AddRow(fmt.Sprintf("%d", banks), s.Name,
				formatYears(r.LifetimeYears()),
				stats.Pct(r.Mem.AvgUtilization),
				fmt.Sprintf("%d", r.Mem.EagerDone),
				fmt.Sprintf("%d", r.Mem.WritesByMode[0]),
				fmt.Sprintf("%d", r.Mem.SlowWrites()),
				fmt.Sprintf("%d", r.Mem.TotalCancelled()))
		}
	}
	return t.Fprint(o.Out)
}

// fig19Statics is the static-mechanism grid Figure 19 compares against:
// every write latency, plain / cancellable / eager+cancellable.
func fig19Statics() []policy.Spec {
	var specs []policy.Spec
	for _, s := range fig2Specs() {
		specs = append(specs, s)
	}
	// Eager variants of the static policies.
	specs = append(specs, policy.ENorm().WithNC(), policy.ESlow().WithSC())
	return specs
}

// runFig19 regenerates Figure 19: for each workload, find the best
// static mechanism that guarantees the 8-year lifetime and compare it
// with BE-Mellow+SC+WQ.
func runFig19(o Options) error {
	statics := fig19Statics()
	ours := policy.BEMellow().WithSC().WithWQ()
	var jobs []job
	for _, w := range o.workloads() {
		for _, s := range append(statics, ours, policy.Norm()) {
			jobs = append(jobs, job{cfg: o.Cfg, spec: s, workload: w})
		}
	}
	res, err := runAll(o, jobs)
	if err != nil {
		return err
	}
	const floor = 8.0
	t := stats.Table{
		Title: "Figure 19: BE-Mellow+SC+WQ vs best static mechanism " +
			"(IPC normalized to Norm; best static must reach 8 years)",
		Header: []string{"workload", "best static", "static IPC", "static life",
			"ours IPC", "ours life", "ours >= static"},
	}
	wins := 0
	for _, w := range o.workloads() {
		base := res[[2]string{"Norm", w}]
		bestName, bestIPC, bestLife := "(none)", 0.0, 0.0
		for _, s := range statics {
			r := res[[2]string{s.Name, w}]
			if r.LifetimeYears() < floor {
				continue
			}
			if r.IPC > bestIPC {
				bestName, bestIPC, bestLife = s.Name, r.IPC, r.LifetimeYears()
			}
		}
		mine := res[[2]string{ours.Name, w}]
		ok := mine.IPC >= bestIPC*0.995
		if ok {
			wins++
		}
		t.AddRow(w, bestName,
			stats.F(bestIPC/base.IPC, 3), formatYears(bestLife),
			stats.F(mine.IPC/base.IPC, 3), formatYears(mine.LifetimeYears()),
			fmt.Sprintf("%v", ok))
	}
	t.AddRow(fmt.Sprintf("wins: %d/%d", wins, len(o.workloads())))
	return t.Fprint(o.Out)
}
