package experiments

import (
	"bytes"
	"strings"
	"testing"

	"mellow/internal/config"
)

// quickOpts shrinks run lengths so every experiment finishes fast; the
// suite is restricted to three representative workloads.
func quickOpts(buf *bytes.Buffer) Options {
	cfg := config.Default()
	cfg.Run.WarmupInstructions = 500_000
	cfg.Run.DetailedInstructions = 1_500_000
	return Options{
		Cfg:       cfg,
		Out:       buf,
		Workloads: []string{"stream", "lbm", "gups"},
	}
}

func TestRegistryComplete(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range All() {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Errorf("incomplete experiment: %+v", e)
		}
		if ids[e.ID] {
			t.Errorf("duplicate id %q", e.ID)
		}
		ids[e.ID] = true
	}
	want := []string{"tab4", "tab6", "fig1", "fig2", "fig3", "fig10", "fig11",
		"fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19",
		"ext1", "ext2", "ext3", "ext4", "ext5", "ext6", "ext7", "ext8", "claims"}
	for _, id := range want {
		if !ids[id] {
			t.Errorf("missing experiment %q", id)
		}
	}
	if len(ids) != len(want) {
		t.Errorf("registry has %d entries, want %d", len(ids), len(want))
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("fig11")
	if err != nil || e.ID != "fig11" {
		t.Fatalf("ByID(fig11) = %v, %v", e.ID, err)
	}
	if _, err := ByID("fig99"); err == nil {
		t.Error("ByID(fig99) should fail")
	}
}

func TestTable6Static(t *testing.T) {
	var buf bytes.Buffer
	if err := runTable6(quickOpts(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"CellA", "CellE", "1503.0", "402.4", "667.8"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table VI output missing %q:\n%s", want, out)
		}
	}
}

func TestFig1Static(t *testing.T) {
	var buf bytes.Buffer
	if err := runFig1(quickOpts(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// 3x pulse at Expo=2 must show 4.5e7.
	if !strings.Contains(out, "4.5e+07") {
		t.Errorf("Figure 1 output missing 4.5e+07 endurance:\n%s", out)
	}
}

func TestEvaluationSweepFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep is slow")
	}
	ResetCache()
	var buf bytes.Buffer
	o := quickOpts(&buf)
	// Figures 10–16 share one sweep; run them all and sanity-check rows.
	for _, id := range []string{"fig10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Run(o); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
	out := buf.String()
	for _, want := range []string{"BE-Mellow+SC+WQ", "stream", "lbm", "gups", "geomean"} {
		if !strings.Contains(out, want) {
			t.Errorf("sweep output missing %q", want)
		}
	}
	// The sweep cache must have been populated: 3 workloads × 9 policies.
	n := CacheSnapshot().Entries
	if n < 27 {
		t.Errorf("run cache holds %d results, want >= 27", n)
	}
}

func TestTable4Runs(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation is slow")
	}
	var buf bytes.Buffer
	o := quickOpts(&buf)
	o.Workloads = []string{"stream"}
	if err := runTable4(o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "12.28") {
		t.Errorf("Table IV missing paper MPKI column:\n%s", buf.String())
	}
}

func TestFig18Runs(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation is slow")
	}
	ResetCache()
	var buf bytes.Buffer
	o := quickOpts(&buf)
	if err := runFig18(o); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"16", "8", "4", "BE-Mellow+SC"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure 18 output missing %q:\n%s", want, out)
		}
	}
}

func TestRunCacheMemoises(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation is slow")
	}
	ResetCache()
	var buf bytes.Buffer
	o := quickOpts(&buf)
	o.Workloads = []string{"stream"}
	if err := runFig3(o); err != nil {
		t.Fatal(err)
	}
	first := CacheSnapshot().Entries
	if err := runFig3(o); err != nil {
		t.Fatal(err)
	}
	after := CacheSnapshot()
	if first == 0 || after.Entries != first {
		t.Errorf("cache sizes %d -> %d; second run should reuse", first, after.Entries)
	}
	if after.Hits == 0 {
		t.Error("second run recorded no cache hits")
	}
}

func TestExtensionExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation is slow")
	}
	ResetCache()
	var buf bytes.Buffer
	o := quickOpts(&buf)
	o.Workloads = []string{"stream", "gups"}
	for _, id := range []string{"ext1", "ext2", "ext3", "ext4", "ext5", "ext6", "ext7", "ext8", "claims"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Run(o); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
	out := buf.String()
	for _, want := range []string{"BE-Mellow+SC+ML", "decay", "Start-Gap psi 10",
		"wolfram", "softwear"} {
		if !strings.Contains(out, want) {
			t.Errorf("extension output missing %q", want)
		}
	}
}

func TestFig2AndFig19Run(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep is slow")
	}
	ResetCache()
	var buf bytes.Buffer
	o := quickOpts(&buf)
	o.Workloads = []string{"lbm", "gups"}
	for _, id := range []string{"fig2", "fig19"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Run(o); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
	out := buf.String()
	for _, want := range []string{"Slow@1.5x", "best static", "wins:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestClaimsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep is slow")
	}
	var buf bytes.Buffer
	o := quickOpts(&buf)
	e, err := ByID("claims")
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(o); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"C1", "C10", "total:", "2.58x"} {
		if !strings.Contains(out, want) {
			t.Errorf("claims output missing %q", want)
		}
	}
}

func TestExt6Runs(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation is slow")
	}
	var buf bytes.Buffer
	o := quickOpts(&buf)
	e, err := ByID("ext6")
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "lbm+mcf") {
		t.Errorf("ext6 output missing mix label:\n%s", buf.String())
	}
}
