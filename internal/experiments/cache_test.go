package experiments

import (
	"context"
	"sync"
	"testing"

	"mellow/internal/config"
	"mellow/internal/policy"
)

// tinyConfig keeps hammer tests fast: a few tens of thousands of
// instructions simulate in milliseconds.
func tinyConfig(seed uint64) config.Config {
	cfg := config.Default()
	cfg.Run.WarmupInstructions = 0
	cfg.Run.DetailedInstructions = 50_000
	cfg.Run.Seed = seed
	return cfg
}

// TestRunCachedConcurrent hammers the memoisation cache from many
// goroutines (run under -race): identical keys must simulate exactly
// once, and every caller must observe the same result.
func TestRunCachedConcurrent(t *testing.T) {
	ResetCache()
	cfg := tinyConfig(99)
	spec, err := policy.Parse("Norm")
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 16
	var wg sync.WaitGroup
	ipcs := make([]float64, goroutines)
	for i := 0; i < goroutines; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := RunCached(context.Background(), cfg, spec, "stream")
			if err != nil {
				t.Errorf("goroutine %d: %v", i, err)
				return
			}
			ipcs[i] = r.IPC
		}()
	}
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if ipcs[i] != ipcs[0] {
			t.Errorf("goroutine %d saw IPC %v, goroutine 0 saw %v", i, ipcs[i], ipcs[0])
		}
	}
	st := CacheSnapshot()
	if st.Misses != 1 {
		t.Errorf("misses = %d, want exactly 1 simulation", st.Misses)
	}
	if st.Hits != goroutines-1 {
		t.Errorf("hits = %d, want %d", st.Hits, goroutines-1)
	}
	if st.Entries != 1 || st.InFlight != 0 {
		t.Errorf("entries=%d inflight=%d, want 1/0", st.Entries, st.InFlight)
	}
}

// TestRunAllConcurrent drives the harness-level entry from several
// goroutines at once, the daemon's usage pattern.
func TestRunAllConcurrent(t *testing.T) {
	ResetCache()
	o := Options{Cfg: tinyConfig(7), Parallel: 4}
	specs := policy.EvaluationSet()[:3]
	var jobs []job
	for _, s := range specs {
		jobs = append(jobs, job{cfg: o.Cfg, spec: s, workload: "gups"})
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := runAll(o, jobs)
			if err != nil {
				t.Error(err)
				return
			}
			if len(res) != len(jobs) {
				t.Errorf("got %d results, want %d", len(res), len(jobs))
			}
		}()
	}
	wg.Wait()
	if st := CacheSnapshot(); st.Misses != uint64(len(jobs)) {
		t.Errorf("misses = %d, want %d distinct simulations", st.Misses, len(jobs))
	}
}

// TestCacheEviction verifies the bound: the cache never holds more than
// its cap and reports evictions.
func TestCacheEviction(t *testing.T) {
	ResetCache()
	SetCacheCap(2)
	defer func() { SetCacheCap(DefaultCacheCap); ResetCache() }()
	spec, err := policy.Parse("Norm")
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(1); seed <= 4; seed++ {
		if _, err := RunCached(context.Background(), tinyConfig(seed), spec, "gups"); err != nil {
			t.Fatal(err)
		}
	}
	st := CacheSnapshot()
	if st.Entries > 2 {
		t.Errorf("entries = %d, want <= cap 2", st.Entries)
	}
	if st.Evictions != 2 {
		t.Errorf("evictions = %d, want 2", st.Evictions)
	}
}

// TestRunCancellation checks that a cancelled context aborts a
// simulation promptly with the context's error.
func TestRunCancellation(t *testing.T) {
	ResetCache()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	spec, err := policy.Parse("Norm")
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyConfig(3)
	cfg.Run.DetailedInstructions = 50_000_000 // would take seconds uncancelled
	if _, err := RunCached(ctx, cfg, spec, "stream"); err != context.Canceled {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if st := CacheSnapshot(); st.Entries != 0 {
		t.Errorf("cancelled run cached %d entries, want 0", st.Entries)
	}
	ResetCache()
}
