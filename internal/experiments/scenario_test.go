package experiments

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"mellow/internal/config"
	"mellow/internal/policy"
	"mellow/internal/scenario"
	"mellow/internal/trace"
)

// scenarioBase keeps scenario-runner tests fast and write-heavy: a
// small LLC fills within the short run so dirty evictions reach memory.
func scenarioBase() config.Config {
	cfg := config.Default()
	cfg.Run.WarmupInstructions = 50_000
	cfg.Run.DetailedInstructions = 100_000
	cfg.Caches.L3.SizeBytes = 256 << 10
	return cfg
}

// A scenario cell for a builtin workload must report exactly what the
// figure sweeps' RunCached reports — one simulation path, one result.
func TestRunScenarioMatchesRunCached(t *testing.T) {
	ResetCache()
	base := scenarioBase()
	sc := &scenario.Scenario{
		Name:      "t",
		Workloads: []scenario.WorkloadRef{{Name: "gups"}},
		Policies:  []string{"Norm", "BE-Mellow+SC"},
	}
	res, err := RunScenario(context.Background(), base, sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 {
		t.Fatalf("cells = %d, want 2", len(res.Cells))
	}
	for _, cell := range res.Cells {
		pspec, err := policy.Parse(cell.Policy)
		if err != nil {
			t.Fatal(err)
		}
		want, err := RunCached(context.Background(), base, pspec, cell.Workload)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(cell.Result, want) {
			t.Errorf("%s/%s: scenario result differs from RunCached", cell.Workload, cell.Policy)
		}
	}
}

// An inline spec spelling out a builtin's exact parameterization must
// reproduce the builtin's result bit for bit, through its own memo key.
func TestInlineSpecMatchesBuiltin(t *testing.T) {
	ResetCache()
	base := scenarioBase()
	spec, err := trace.SpecByName("gups")
	if err != nil {
		t.Fatal(err)
	}
	pspec, err := policy.Parse("Norm")
	if err != nil {
		t.Fatal(err)
	}
	inline, err := RunSpecCached(context.Background(), base, pspec, "my-gups", spec)
	if err != nil {
		t.Fatal(err)
	}
	builtin, err := RunCached(context.Background(), base, pspec, "gups")
	if err != nil {
		t.Fatal(err)
	}
	// Everything but the label matches.
	inline.Workload = builtin.Workload
	if !reflect.DeepEqual(inline, builtin) {
		t.Fatal("inline gups spec result differs from the builtin workload")
	}
}

// RunSpecCached memoises on the spec's content hash: a second call must
// not simulate again.
func TestRunSpecCachedMemoises(t *testing.T) {
	ResetCache()
	base := scenarioBase()
	spec := trace.Spec{Kind: trace.KindStream, GapMean: 6, ReadArrays: 2, WriteArrays: 1, ArrayBytes: 4 << 20}
	pspec, err := policy.Parse("Norm")
	if err != nil {
		t.Fatal(err)
	}
	r1, err := RunSpecCached(context.Background(), base, pspec, "w", spec)
	if err != nil {
		t.Fatal(err)
	}
	before := CacheSnapshot().Hits
	r2, err := RunSpecCached(context.Background(), base, pspec, "w", spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatal("memoised result differs")
	}
	if CacheSnapshot().Hits <= before {
		t.Fatal("second RunSpecCached missed the memo cache")
	}
}

// Per-cell levelers override the effective configuration: distinct
// backends must yield distinct results on a write-heavy workload, while
// the "" leveler reproduces the base backend exactly.
func TestRunScenarioLevelerCells(t *testing.T) {
	ResetCache()
	base := scenarioBase()
	// The run must be long enough for dirty lines to evict all the way
	// to memory, and the softwear epoch tight enough that its remaps
	// (and charged copy writes) land within it — otherwise both
	// backends idle and report identical results.
	warmup, detailed := uint64(300_000), uint64(600_000)
	epoch := 256
	sc := &scenario.Scenario{
		Name:      "t",
		Workloads: []scenario.WorkloadRef{{Name: "GemsFDTD"}},
		Policies:  []string{"Norm"},
		Levelers:  []string{"", "startgap", "softwear"},
		Overrides: &scenario.Overrides{Warmup: &warmup, Detailed: &detailed, SoftWearEpochWrites: &epoch},
	}
	res, err := RunScenario(context.Background(), base, sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 3 {
		t.Fatalf("cells = %d, want 3", len(res.Cells))
	}
	// base default is startgap: "" and "startgap" agree.
	if !reflect.DeepEqual(res.Cells[0].Result, res.Cells[1].Result) {
		t.Error(`"" leveler differs from the base backend`)
	}
	if reflect.DeepEqual(res.Cells[1].Result, res.Cells[2].Result) {
		t.Error("startgap and softwear report identical results on gups")
	}
}

// Two runs of one scenario encode byte-identical documents — the golden
// contract, independent of goroutine completion order.
func TestRunScenarioDeterministicBytes(t *testing.T) {
	base := scenarioBase()
	sc := &scenario.Scenario{
		Name:      "t",
		Workloads: []scenario.WorkloadRef{{Name: "gups"}, {Name: "stream"}},
		Policies:  []string{"Norm", "B-Mellow+SC"},
	}
	ResetCache()
	r1, err := RunScenario(context.Background(), base, sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := r1.Encode()
	if err != nil {
		t.Fatal(err)
	}
	ResetCache() // force full re-simulation
	r2, err := RunScenario(context.Background(), base, sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := r2.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Fatal("scenario documents differ across re-simulations")
	}
}

func TestRunScenarioProgressAndErrors(t *testing.T) {
	ResetCache()
	base := scenarioBase()
	sc := &scenario.Scenario{
		Name:      "t",
		Workloads: []scenario.WorkloadRef{{Name: "gups"}},
		Policies:  []string{"Norm", "Slow"},
	}
	var calls int
	if _, err := RunScenario(context.Background(), base, sc, func(done, total int) {
		calls++
		if total != 2 {
			t.Errorf("total = %d, want 2", total)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Errorf("progress calls = %d, want 2", calls)
	}

	// Validation failures surface before any simulation.
	bad := &scenario.Scenario{Name: "t", Workloads: []scenario.WorkloadRef{{Name: "nope"}}, Policies: []string{"Norm"}}
	if _, err := RunScenario(context.Background(), base, bad, nil); err == nil {
		t.Fatal("invalid scenario accepted")
	}
	// A cancelled context aborts.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunScenario(ctx, base, sc, nil); err == nil {
		t.Fatal("cancelled context not reported")
	}
}

// The corpus runner: update mode creates goldens, compare mode then
// passes, and drift is reported per scenario while the rest still runs.
func TestRunScenarioCorpusUpdateThenCompare(t *testing.T) {
	ResetCache()
	base := scenarioBase()
	dir := t.TempDir()
	write := func(name, body string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, "test-"+name+".json"), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("one", `{"name":"one","workloads":[{"name":"gups"}],"policies":["Norm"]}`)
	write("two", `{"name":"two","workloads":[{"name":"stream"}],"policies":["Norm"]}`)

	// Compare with no goldens: every scenario fails with the hint, but
	// all are attempted.
	ocs, err := RunScenarioCorpus(context.Background(), base, dir, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ocs) != 2 || ocs[0].Err == nil || ocs[1].Err == nil {
		t.Fatalf("outcomes = %+v", ocs)
	}
	if !strings.Contains(ocs[0].Err.Error(), "-update") {
		t.Errorf("missing-golden hint absent: %v", ocs[0].Err)
	}

	// Update writes both goldens; a clean compare follows.
	ocs, err = RunScenarioCorpus(context.Background(), base, dir, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, oc := range ocs {
		if oc.Err != nil || !oc.Updated {
			t.Fatalf("update outcome: %+v", oc)
		}
	}
	var seen []string
	ocs, err = RunScenarioCorpus(context.Background(), base, dir, false, func(oc ScenarioOutcome) {
		seen = append(seen, oc.Name)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, oc := range ocs {
		if oc.Err != nil {
			t.Fatalf("fresh golden drifted: %v", oc.Err)
		}
	}
	if len(seen) != 2 || seen[0] != "one" || seen[1] != "two" {
		t.Errorf("onDone order = %v", seen)
	}

	// Tampered golden: that scenario fails, the other still passes.
	gold := scenario.ExpectedPath(filepath.Join(dir, "test-one.json"))
	if err := os.WriteFile(gold, []byte("{}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	ocs, err = RunScenarioCorpus(context.Background(), base, dir, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ocs[0].Err == nil || ocs[1].Err != nil {
		t.Fatalf("tamper detection: %+v", ocs)
	}
}

// The committed corpus must pass against its committed goldens — the
// same gate CI and scripts/e2e_scenario.sh run through the binaries.
func TestCommittedScenarioCorpusGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus run in -short mode")
	}
	ResetCache()
	base := config.Default()
	base.Run.Seed = 1
	ocs, err := RunScenarioCorpus(context.Background(), base, filepath.Join("..", "..", "scenarios"), false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ocs) < 24 {
		t.Fatalf("corpus has %d scenarios, want >= 24", len(ocs))
	}
	for _, oc := range ocs {
		if oc.Err != nil {
			t.Errorf("%s: %v", oc.Name, oc.Err)
		}
	}
}
