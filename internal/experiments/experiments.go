// Package experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §5 for the index). Each experiment runs the
// required (workload, policy, config) simulations — in parallel, with
// per-process memoisation so figures sharing a sweep reuse it — and
// prints the same rows/series the paper reports.
package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"

	"mellow/internal/config"
	"mellow/internal/core"
	"mellow/internal/policy"
	"mellow/internal/trace"
)

// Options control an experiment run.
type Options struct {
	// Cfg is the base configuration; experiments override policy- or
	// sweep-specific fields (banks, ExpoFactor) but keep run lengths.
	Cfg config.Config
	// Out receives the rendered tables.
	Out io.Writer
	// Workloads restricts the benchmark suite (default: all 11).
	Workloads []string
	// Parallel bounds concurrent simulations (default: NumCPU).
	Parallel int
}

// workloads resolves the active suite.
func (o Options) workloads() []string {
	if len(o.Workloads) > 0 {
		return o.Workloads
	}
	return trace.Names()
}

func (o Options) parallel() int {
	if o.Parallel > 0 {
		return o.Parallel
	}
	return runtime.NumCPU()
}

// Experiment is one reproducible artifact of the paper.
type Experiment struct {
	// ID is the short handle, e.g. "fig11" or "tab4".
	ID string
	// Title names the paper artifact.
	Title string
	// Run executes the experiment and renders its output.
	Run func(Options) error
}

// registry lists all experiments in paper order.
var registry = []Experiment{
	{"tab4", "Table IV: workload MPKI with a 2 MB LLC", runTable4},
	{"tab6", "Table VI: energy per operation of memristive main memory", runTable6},
	{"fig1", "Figure 1: write latency / endurance trade-off", runFig1},
	{"fig2", "Figure 2: IPC and lifetime under static write latencies", runFig2},
	{"fig3", "Figure 3: bank utilization with normal writes", runFig3},
	{"fig10", "Figure 10: IPC by write policy", runFig10},
	{"fig11", "Figure 11: memory lifetime by write policy (years)", runFig11},
	{"fig12", "Figure 12: bank utilization by write policy", runFig12},
	{"fig13", "Figure 13: write drain time by write policy", runFig13},
	{"fig14", "Figure 14: memory requests from the LLC", runFig14},
	{"fig15", "Figure 15: requests issued to memory banks", runFig15},
	{"fig16", "Figure 16: main memory energy consumption", runFig16},
	{"fig17", "Figure 17: lifetime sensitivity to ExpoFactor", runFig17},
	{"fig18", "Figure 18: sensitivity to bank-level parallelism (GemsFDTD)", runFig18},
	{"fig19", "Figure 19: BE-Mellow+SC+WQ vs static policies", runFig19},
}

// All returns every experiment in paper order.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// ByID finds an experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	ids := make([]string, len(registry))
	for i, e := range registry {
		ids[i] = e.ID
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("experiments: unknown id %q (have %v)", id, ids)
}

// runKey identifies one simulation for memoisation.
type runKey struct {
	cfg      string // canonical JSON of the config
	policy   string
	workload string
}

var (
	cacheMu  sync.Mutex
	runCache = map[runKey]core.Result{}
)

// ResetCache drops memoised simulation results (tests).
func ResetCache() {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	runCache = map[runKey]core.Result{}
}

func keyFor(cfg config.Config, spec policy.Spec, workload string) runKey {
	b, err := json.Marshal(cfg)
	if err != nil {
		panic(fmt.Sprintf("experiments: config not serialisable: %v", err))
	}
	return runKey{cfg: string(b), policy: spec.Name, workload: workload}
}

// job is one simulation to perform.
type job struct {
	cfg      config.Config
	spec     policy.Spec
	workload string
}

// runAll executes the jobs (memoised, parallel) and returns results
// keyed by (policy, workload).
func runAll(o Options, jobs []job) (map[[2]string]core.Result, error) {
	results := make(map[[2]string]core.Result, len(jobs))
	var resMu sync.Mutex
	sem := make(chan struct{}, o.parallel())
	var wg sync.WaitGroup
	var firstErr error
	for _, j := range jobs {
		j := j
		key := keyFor(j.cfg, j.spec, j.workload)
		cacheMu.Lock()
		if r, ok := runCache[key]; ok {
			cacheMu.Unlock()
			results[[2]string{j.spec.Name, j.workload}] = r
			continue
		}
		cacheMu.Unlock()
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			r, err := core.Run(j.cfg, j.spec, j.workload)
			resMu.Lock()
			defer resMu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			cacheMu.Lock()
			runCache[key] = r
			cacheMu.Unlock()
			results[[2]string{j.spec.Name, j.workload}] = r
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}

// runOne executes (or reuses) a single simulation.
func runOne(o Options, cfg config.Config, spec policy.Spec, workload string) (core.Result, error) {
	key := keyFor(cfg, spec, workload)
	cacheMu.Lock()
	if r, ok := runCache[key]; ok {
		cacheMu.Unlock()
		return r, nil
	}
	cacheMu.Unlock()
	r, err := core.Run(cfg, spec, workload)
	if err != nil {
		return core.Result{}, err
	}
	cacheMu.Lock()
	runCache[key] = r
	cacheMu.Unlock()
	return r, nil
}

// evalSweep runs the Figure 10–16 policy line-up over the active suite.
func evalSweep(o Options) (map[[2]string]core.Result, []policy.Spec, error) {
	specs := policy.EvaluationSet()
	var jobs []job
	for _, w := range o.workloads() {
		for _, s := range specs {
			jobs = append(jobs, job{cfg: o.Cfg, spec: s, workload: w})
		}
	}
	res, err := runAll(o, jobs)
	return res, specs, err
}

// EvalSweep exposes the Figure 10-16 sweep to sibling tools (the SVG
// plotter): results keyed by (policy name, workload), plus the line-up.
func EvalSweep(o Options) (map[[2]string]core.Result, []policy.Spec, error) {
	return evalSweep(o)
}
