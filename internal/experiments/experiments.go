// Package experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §5 for the index). Each experiment runs the
// required (workload, policy, config) simulations — in parallel, with
// per-process memoisation so figures sharing a sweep reuse it — and
// prints the same rows/series the paper reports.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"

	"mellow/internal/config"
	"mellow/internal/core"
	"mellow/internal/engine"
	"mellow/internal/metrics"
	"mellow/internal/policy"
	"mellow/internal/sched"
	"mellow/internal/sim"
	"mellow/internal/trace"
	"mellow/internal/xtrace"
)

// Options control an experiment run.
type Options struct {
	// Ctx cancels the run: simulations abort at their next checkpoint
	// and the experiment returns ctx's error (default: Background).
	Ctx context.Context
	// Cfg is the base configuration; experiments override policy- or
	// sweep-specific fields (banks, ExpoFactor) but keep run lengths.
	Cfg config.Config
	// Out receives the rendered tables.
	Out io.Writer
	// Workloads restricts the benchmark suite (default: all 11).
	Workloads []string
	// Parallel, when positive, additionally throttles this sweep's
	// fan-out. Simulation concurrency itself is governed by the
	// process-wide sched.Default() budget — every simulation acquires a
	// scheduler slot before it runs, whatever sweep or job spawned it.
	Parallel int
	// Epoch, when positive, runs every simulation observed at this
	// sampling period and hands each collected series to OnSeries.
	Epoch sim.Tick
	// OnSeries receives one record per simulated (workload, policy) when
	// Epoch is set. Calls are serialised but may come from any worker
	// goroutine, in completion order.
	OnSeries func(SeriesRecord)
	// OnProgress, when set, is called after every simulation a sweep
	// completes, with the done count and the sweep total. Calls are
	// serialised; completion order is nondeterministic.
	OnProgress func(done, total int)
	// Trace records an execution timeline for every simulation and
	// hands each to OnTrace. Traced runs are bit-identical to untraced
	// ones; they only memoise under a distinct key.
	Trace bool
	// OnTrace receives one record per simulated (workload, policy) when
	// Trace is set. Calls are serialised, in completion order. The
	// timeline is shared with the memo cache and must not be modified.
	OnTrace func(TraceRecord)
}

func (o Options) ctx() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

// workloads resolves the active suite.
func (o Options) workloads() []string {
	if len(o.Workloads) > 0 {
		return o.Workloads
	}
	return trace.Names()
}

// Experiment is one reproducible artifact of the paper.
type Experiment struct {
	// ID is the short handle, e.g. "fig11" or "tab4".
	ID string
	// Title names the paper artifact.
	Title string
	// Run executes the experiment and renders its output.
	Run func(Options) error
}

// registry lists all experiments in paper order.
var registry = []Experiment{
	{"tab4", "Table IV: workload MPKI with a 2 MB LLC", runTable4},
	{"tab6", "Table VI: energy per operation of memristive main memory", runTable6},
	{"fig1", "Figure 1: write latency / endurance trade-off", runFig1},
	{"fig2", "Figure 2: IPC and lifetime under static write latencies", runFig2},
	{"fig3", "Figure 3: bank utilization with normal writes", runFig3},
	{"fig10", "Figure 10: IPC by write policy", runFig10},
	{"fig11", "Figure 11: memory lifetime by write policy (years)", runFig11},
	{"fig12", "Figure 12: bank utilization by write policy", runFig12},
	{"fig13", "Figure 13: write drain time by write policy", runFig13},
	{"fig14", "Figure 14: memory requests from the LLC", runFig14},
	{"fig15", "Figure 15: requests issued to memory banks", runFig15},
	{"fig16", "Figure 16: main memory energy consumption", runFig16},
	{"fig17", "Figure 17: lifetime sensitivity to ExpoFactor", runFig17},
	{"fig18", "Figure 18: sensitivity to bank-level parallelism (GemsFDTD)", runFig18},
	{"fig19", "Figure 19: BE-Mellow+SC+WQ vs static policies", runFig19},
}

// All returns every experiment in paper order.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// ByID finds an experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	ids := make([]string, len(registry))
	for i, e := range registry {
		ids[i] = e.ID
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("experiments: unknown id %q (have %v)", id, ids)
}

// runKey identifies one simulation for memoisation. Observed runs key
// on their sampling period and per-bank-damage flag too: the stored
// epoch series is part of the memoised value, and equal keys must yield
// equal bytes.
type runKey struct {
	cfg        string // canonical JSON of the config
	policy     string
	workload   string
	epoch      sim.Tick // 0 for unobserved runs
	bankDamage bool
	metrics    bool // per-run metrics snapshot stored with the value
	trace      bool // execution timeline stored with the value
}

func keyFor(cfg config.Config, spec policy.Spec, workload string, epoch sim.Tick, bankDamage, metrics, trace bool) runKey {
	b, err := cfg.CanonicalJSON()
	if err != nil {
		panic(fmt.Sprintf("experiments: config not serialisable: %v", err))
	}
	return runKey{cfg: string(b), policy: spec.Name, workload: workload,
		epoch: epoch, bankDamage: bankDamage, metrics: metrics, trace: trace}
}

// DefaultCacheCap bounds the memoisation cache so a long-lived process
// (the mellowd daemon) does not grow without limit. At ~1 KB a result,
// the default costs a few MB.
const DefaultCacheCap = 4096

// CacheStats reports the memoisation cache's behaviour. A "hit" counts
// both finished-result reuse and joining a simulation already in
// flight (singleflight); only simulations actually started count as
// misses.
type CacheStats struct {
	Hits, Misses, Evictions uint64
	Entries, InFlight       int
	// Running counts simulations executing right now — flights that hold
	// a scheduler slot, as opposed to InFlight, which also counts
	// flights queued for one. PeakRunning is its high-water mark: with
	// scheduler budget B, PeakRunning <= B always holds.
	Running, PeakRunning int
}

// cached is one memoised simulation: the result, plus the epoch series
// for observed runs, the per-run metrics snapshot for instrumented runs
// and the execution timeline for traced runs (nil otherwise). Entries
// are immutable once stored.
type cached struct {
	res    core.Result
	series []engine.EpochSample
	met    *metrics.Snapshot
	trace  *xtrace.SimTrace
}

// flight is one in-progress simulation that concurrent callers join.
type flight struct {
	done chan struct{}
	res  cached
	err  error
}

// simCache memoises finished simulations (bounded, FIFO eviction) and
// deduplicates concurrent identical runs.
type simCache struct {
	mu       sync.Mutex
	cap      int
	entries  map[runKey]cached
	order    []runKey // insertion order, for eviction
	inflight map[runKey]*flight
	hits     uint64
	misses   uint64
	evicted  uint64
	running  int // flights holding a scheduler slot right now
	peakRun  int // high-water mark of running
}

func newSimCache(cap int) *simCache {
	return &simCache{
		cap:      cap,
		entries:  map[runKey]cached{},
		inflight: map[runKey]*flight{},
	}
}

var memo = newSimCache(DefaultCacheCap)

// do returns the memoised result for key, joins an identical simulation
// already in flight, or runs fn itself and publishes the result. A
// caller waiting on someone else's flight aborts with ctx's error when
// cancelled; the flight itself keeps running for the others.
//
// The executing caller acquires one slot from the process-wide
// scheduler before fn runs, so total concurrent simulations never
// exceed the sched budget regardless of how many sweeps or jobs fan out
// at once. Cache hits and singleflight joins never consume a slot. If
// the executing caller's context ends while it is queued for a slot,
// the flight fails with that error for every joiner too — the same
// outcome as the runner being cancelled mid-simulation.
func (c *simCache) do(ctx context.Context, key runKey, fn func() (cached, error)) (cached, error) {
	c.mu.Lock()
	if r, ok := c.entries[key]; ok {
		c.hits++
		c.mu.Unlock()
		return r, nil
	}
	if f, ok := c.inflight[key]; ok {
		c.hits++
		c.mu.Unlock()
		select {
		case <-f.done:
			return f.res, f.err
		case <-ctx.Done():
			return cached{}, ctx.Err()
		}
	}
	c.misses++
	f := &flight{done: make(chan struct{})}
	c.inflight[key] = f
	c.mu.Unlock()

	release, err := sched.Default().Acquire(ctx, 1)
	if err != nil {
		f.err = err
	} else {
		c.noteRunning(+1)
		f.res, f.err = fn()
		c.noteRunning(-1)
		release()
	}

	c.mu.Lock()
	delete(c.inflight, key)
	if f.err == nil {
		c.insert(key, f.res)
	}
	c.mu.Unlock()
	close(f.done)
	return f.res, f.err
}

// noteRunning tracks how many flights hold a scheduler slot, and the
// high-water mark — the budget test's witness that concurrent
// simulations never exceed the sched budget.
func (c *simCache) noteRunning(d int) {
	c.mu.Lock()
	c.running += d
	if c.running > c.peakRun {
		c.peakRun = c.running
	}
	c.mu.Unlock()
}

// insert stores a finished result, evicting oldest-first past the cap.
// Callers hold c.mu.
func (c *simCache) insert(key runKey, r cached) {
	if _, ok := c.entries[key]; ok {
		c.entries[key] = r
		return
	}
	for c.cap > 0 && len(c.entries) >= c.cap {
		old := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, old)
		c.evicted++
	}
	c.entries[key] = r
	c.order = append(c.order, key)
}

func (c *simCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits: c.hits, Misses: c.misses, Evictions: c.evicted,
		Entries: len(c.entries), InFlight: len(c.inflight),
		Running: c.running, PeakRunning: c.peakRun,
	}
}

func (c *simCache) reset(cap int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cap = cap
	c.entries = map[runKey]cached{}
	c.order = nil
	c.hits, c.misses, c.evicted = 0, 0, 0
	c.peakRun = c.running
	// in-flight simulations publish into the fresh maps when they land.
	c.inflight = map[runKey]*flight{}
}

// ResetCache drops memoised simulation results and counters (tests).
func ResetCache() {
	memo.mu.Lock()
	cap := memo.cap
	memo.mu.Unlock()
	memo.reset(cap)
}

// SetCacheCap bounds the number of memoised results (<= 0: unbounded)
// and applies on the next insertion; it does not shrink eagerly.
func SetCacheCap(n int) {
	memo.mu.Lock()
	defer memo.mu.Unlock()
	memo.cap = n
}

// CacheSnapshot reports hit/miss/eviction counters and current
// occupancy of the memoisation cache.
func CacheSnapshot() CacheStats { return memo.stats() }

// CacheCollector returns a read-only metrics collector publishing the
// memoisation cache's counters and occupancy under the given prefix —
// the registry face of CacheSnapshot.
func CacheCollector(prefix string) metrics.Collector {
	return func(g *metrics.Gatherer) {
		cs := memo.stats()
		g.Counter(prefix+"simcache_hits_total", "Simulation memo-cache hits (incl. singleflight joins).", cs.Hits)
		g.Counter(prefix+"simcache_misses_total", "Simulations actually executed.", cs.Misses)
		g.Counter(prefix+"simcache_evictions_total", "Memoised simulations evicted by the cap.", cs.Evictions)
		g.Gauge(prefix+"simcache_entries", "Memoised simulation results held.", float64(cs.Entries))
		g.Gauge(prefix+"simcache_inflight", "Deduplicated simulations in flight (running or queued for a scheduler slot).", float64(cs.InFlight))
		g.Gauge(prefix+"sims_running", "Simulations executing right now (holding a scheduler slot).", float64(cs.Running))
	}
}

// RunCached is the memoised, deduplicated simulation entry point: an
// identical (config, policy, workload) triple simulates at most once
// concurrently and its result is reused across callers — the primitive
// the mellowd service builds on.
func RunCached(ctx context.Context, cfg config.Config, spec policy.Spec, workload string) (core.Result, error) {
	c, err := memo.do(ctx, keyFor(cfg, spec, workload, 0, false, false, false), func() (cached, error) {
		r, err := core.RunContext(ctx, cfg, spec, workload)
		return cached{res: r}, err
	})
	return c.res, err
}

// Observation configures an observed simulation run.
type Observation struct {
	// Epoch is the sampling period in ticks (0: engine.DefaultEpoch).
	Epoch sim.Tick
	// BankDamage includes the per-bank damage vector in every sample.
	BankDamage bool
	// Tracker, when set, receives the run's live progress and epochs.
	// A memo hit or a joined in-flight run only reports completion (the
	// simulating caller's tracker sees the intermediate samples).
	Tracker *engine.Tracker
	// OnEpoch, when set, is called synchronously with every epoch sample
	// the run closes, in order — the live feed behind mellowd's SSE
	// streaming. Like Tracker it is a per-caller observer that never
	// enters the memo key; a memo hit or a joined in-flight run sees no
	// live samples (callers stream the memoised series on completion
	// instead). The samples delivered here are the same values collected
	// into the returned series, so a live consumer and a reader of the
	// final result observe byte-identical data.
	OnEpoch func(engine.EpochSample)
	// Metrics, when set, attaches a per-run metrics registry: cpu,
	// cache, mem and wear publish their counters as collectors and the
	// run's deterministic snapshot is memoised alongside the result.
	Metrics bool
	// Trace, when set, records the run's execution timeline (engine
	// phases, epochs, per-bank controller events) into a bounded ring
	// and memoises it alongside the result. The timeline recorder is an
	// append-only observer: a traced run's result and series are
	// bit-identical to an untraced run's.
	Trace bool
}

func (ob Observation) epoch() sim.Tick {
	if ob.Epoch > 0 {
		return ob.Epoch
	}
	return engine.DefaultEpoch
}

// RunObserved is RunCached for observed runs: the memoised value
// carries the deterministic epoch series, so equal keys still yield
// equal bytes. The returned series is shared and must not be modified.
func RunObserved(ctx context.Context, cfg config.Config, spec policy.Spec, workload string, ob Observation) (core.Result, []engine.EpochSample, error) {
	ob.Epoch = ob.epoch()
	r, series, _, err := RunInstrumented(ctx, cfg, spec, workload, ob)
	return r, series, err
}

// RunInstrumented is the metrics-aware memoised entry point: epoch
// observation when ob.Epoch > 0, a per-run metrics snapshot when
// ob.Metrics. The returned series and snapshot are shared and must not
// be modified. Callers that also want the execution timeline use
// RunFull.
func RunInstrumented(ctx context.Context, cfg config.Config, spec policy.Spec, workload string, ob Observation) (core.Result, []engine.EpochSample, *metrics.Snapshot, error) {
	ins, err := RunFull(ctx, cfg, spec, workload, ob)
	return ins.Result, ins.Series, ins.Metrics, err
}

// Instrumented bundles everything one memoised simulation can produce.
// Series, Metrics and Trace are shared with the memo cache and must not
// be modified.
type Instrumented struct {
	Result  core.Result
	Series  []engine.EpochSample
	Metrics *metrics.Snapshot
	Trace   *xtrace.SimTrace
}

// RunFull is the full memoised entry point: epoch observation when
// ob.Epoch > 0, a per-run metrics snapshot when ob.Metrics, an
// execution timeline when ob.Trace — all stored with the memoised value
// (every observer is deterministic or, for the timeline, read-only, so
// equal keys still yield equal result bytes).
func RunFull(ctx context.Context, cfg config.Config, spec policy.Spec, workload string, ob Observation) (Instrumented, error) {
	key := keyFor(cfg, spec, workload, ob.Epoch, ob.BankDamage, ob.Metrics, ob.Trace)
	c, err := memo.do(ctx, key, func() (cached, error) {
		opts := engine.Options{
			Epoch:      ob.Epoch,
			Collect:    ob.Epoch > 0,
			BankDamage: ob.BankDamage,
			Tracker:    ob.Tracker,
			OnEpoch:    ob.OnEpoch,
		}
		var reg *metrics.Registry
		if ob.Metrics {
			reg = metrics.NewRegistry()
			opts.Metrics = reg
		}
		var rec *xtrace.Recorder
		if ob.Trace {
			rec = xtrace.NewRecorder(0)
			opts.Timeline = rec
		}
		r, series, err := core.RunObserved(ctx, cfg, spec, workload, opts)
		if err != nil {
			rec.Discard()
			return cached{}, err
		}
		ch := cached{res: r, series: series}
		if reg != nil {
			snap := reg.Snapshot()
			ch.met = &snap
		}
		if rec != nil {
			ch.trace = rec.Finalize(workload, spec.Name, cfg.Memory.Banks())
		}
		return ch, err
	})
	if err != nil {
		return Instrumented{}, err
	}
	if ob.Tracker != nil {
		// Covers the memo-hit and joined-flight paths; a no-op when this
		// caller ran the simulation itself.
		ob.Tracker.SetProgress(1)
	}
	return Instrumented{Result: c.res, Series: c.series, Metrics: c.met, Trace: c.trace}, nil
}

// SeriesRecord labels one simulation's epoch series for export.
type SeriesRecord struct {
	Workload string               `json:"workload"`
	Policy   string               `json:"policy"`
	Series   []engine.EpochSample `json:"series"`
}

// TraceRecord labels one simulation's execution timeline for export.
// The timeline may be shared across records when experiments reuse a
// memoised run.
type TraceRecord struct {
	Workload string
	Policy   string
	Trace    *xtrace.SimTrace
}

// job is one simulation to perform.
type job struct {
	cfg      config.Config
	spec     policy.Spec
	workload string
}

// runAll executes the jobs (memoised, parallel) and returns results
// keyed by (policy, workload). With Options.Epoch set, runs are
// observed and each series goes to OnSeries; OnProgress fires after
// every attempted job either way — including failed ones, so a sweep
// that errors still accounts for every simulation it attempted and a
// caller's progress figure never freezes at an arbitrary value.
//
// Concurrency is bounded by the process-wide sched.Default() budget
// (acquired per simulation at the memo-cache miss), not by a sweep-
// local semaphore: many sweeps fanning out at once still run at most
// budget simulations in total.
func runAll(o Options, jobs []job) (map[[2]string]core.Result, error) {
	ctx := o.ctx()
	results := make(map[[2]string]core.Result, len(jobs))
	var resMu sync.Mutex
	var cbMu sync.Mutex // serialises OnSeries/OnProgress outside resMu
	total := len(jobs)
	done := 0
	// Optional sweep-local fan-out throttle, in addition to the
	// process-wide scheduler gate.
	var sem chan struct{}
	if o.Parallel > 0 {
		sem = make(chan struct{}, o.Parallel)
	}
	var wg sync.WaitGroup
	var firstErr error
	for _, j := range jobs {
		if err := ctx.Err(); err != nil {
			resMu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			resMu.Unlock()
			break
		}
		j := j
		wg.Add(1)
		if sem != nil {
			sem <- struct{}{}
		}
		go func() {
			defer wg.Done()
			if sem != nil {
				defer func() { <-sem }()
			}
			var r core.Result
			var series []engine.EpochSample
			var tr *xtrace.SimTrace
			var err error
			switch {
			case o.Trace:
				ob := Observation{Trace: true}
				if o.Epoch > 0 {
					ob.Epoch = o.Epoch
				}
				var ins Instrumented
				ins, err = RunFull(ctx, j.cfg, j.spec, j.workload, ob)
				r, series, tr = ins.Result, ins.Series, ins.Trace
			case o.Epoch > 0:
				r, series, err = RunObserved(ctx, j.cfg, j.spec, j.workload,
					Observation{Epoch: o.Epoch})
			default:
				r, err = RunCached(ctx, j.cfg, j.spec, j.workload)
			}
			resMu.Lock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
			} else {
				results[[2]string{j.spec.Name, j.workload}] = r
			}
			resMu.Unlock()

			cbMu.Lock()
			done++
			if err == nil && o.OnSeries != nil && o.Epoch > 0 {
				o.OnSeries(SeriesRecord{Workload: j.workload, Policy: j.spec.Name, Series: series})
			}
			if err == nil && o.OnTrace != nil && tr != nil {
				o.OnTrace(TraceRecord{Workload: j.workload, Policy: j.spec.Name, Trace: tr})
			}
			if o.OnProgress != nil {
				o.OnProgress(done, total)
			}
			cbMu.Unlock()
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}

// runOne executes (or reuses) a single simulation.
func runOne(o Options, cfg config.Config, spec policy.Spec, workload string) (core.Result, error) {
	return RunCached(o.ctx(), cfg, spec, workload)
}

// evalSweep runs the Figure 10–16 policy line-up over the active suite.
func evalSweep(o Options) (map[[2]string]core.Result, []policy.Spec, error) {
	specs := policy.EvaluationSet()
	var jobs []job
	for _, w := range o.workloads() {
		for _, s := range specs {
			jobs = append(jobs, job{cfg: o.Cfg, spec: s, workload: w})
		}
	}
	res, err := runAll(o, jobs)
	return res, specs, err
}

// EvalSweep exposes the Figure 10-16 sweep to sibling tools (the SVG
// plotter): results keyed by (policy name, workload), plus the line-up.
func EvalSweep(o Options) (map[[2]string]core.Result, []policy.Spec, error) {
	return evalSweep(o)
}
