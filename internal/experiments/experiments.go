// Package experiments regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §5 for the index). Each experiment runs the
// required (workload, policy, config) simulations — in parallel, with
// per-process memoisation so figures sharing a sweep reuse it — and
// prints the same rows/series the paper reports.
package experiments

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"

	"mellow/internal/config"
	"mellow/internal/core"
	"mellow/internal/policy"
	"mellow/internal/trace"
)

// Options control an experiment run.
type Options struct {
	// Ctx cancels the run: simulations abort at their next checkpoint
	// and the experiment returns ctx's error (default: Background).
	Ctx context.Context
	// Cfg is the base configuration; experiments override policy- or
	// sweep-specific fields (banks, ExpoFactor) but keep run lengths.
	Cfg config.Config
	// Out receives the rendered tables.
	Out io.Writer
	// Workloads restricts the benchmark suite (default: all 11).
	Workloads []string
	// Parallel bounds concurrent simulations (default: NumCPU).
	Parallel int
}

func (o Options) ctx() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

// workloads resolves the active suite.
func (o Options) workloads() []string {
	if len(o.Workloads) > 0 {
		return o.Workloads
	}
	return trace.Names()
}

func (o Options) parallel() int {
	if o.Parallel > 0 {
		return o.Parallel
	}
	return runtime.NumCPU()
}

// Experiment is one reproducible artifact of the paper.
type Experiment struct {
	// ID is the short handle, e.g. "fig11" or "tab4".
	ID string
	// Title names the paper artifact.
	Title string
	// Run executes the experiment and renders its output.
	Run func(Options) error
}

// registry lists all experiments in paper order.
var registry = []Experiment{
	{"tab4", "Table IV: workload MPKI with a 2 MB LLC", runTable4},
	{"tab6", "Table VI: energy per operation of memristive main memory", runTable6},
	{"fig1", "Figure 1: write latency / endurance trade-off", runFig1},
	{"fig2", "Figure 2: IPC and lifetime under static write latencies", runFig2},
	{"fig3", "Figure 3: bank utilization with normal writes", runFig3},
	{"fig10", "Figure 10: IPC by write policy", runFig10},
	{"fig11", "Figure 11: memory lifetime by write policy (years)", runFig11},
	{"fig12", "Figure 12: bank utilization by write policy", runFig12},
	{"fig13", "Figure 13: write drain time by write policy", runFig13},
	{"fig14", "Figure 14: memory requests from the LLC", runFig14},
	{"fig15", "Figure 15: requests issued to memory banks", runFig15},
	{"fig16", "Figure 16: main memory energy consumption", runFig16},
	{"fig17", "Figure 17: lifetime sensitivity to ExpoFactor", runFig17},
	{"fig18", "Figure 18: sensitivity to bank-level parallelism (GemsFDTD)", runFig18},
	{"fig19", "Figure 19: BE-Mellow+SC+WQ vs static policies", runFig19},
}

// All returns every experiment in paper order.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// ByID finds an experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	ids := make([]string, len(registry))
	for i, e := range registry {
		ids[i] = e.ID
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("experiments: unknown id %q (have %v)", id, ids)
}

// runKey identifies one simulation for memoisation.
type runKey struct {
	cfg      string // canonical JSON of the config
	policy   string
	workload string
}

func keyFor(cfg config.Config, spec policy.Spec, workload string) runKey {
	b, err := cfg.CanonicalJSON()
	if err != nil {
		panic(fmt.Sprintf("experiments: config not serialisable: %v", err))
	}
	return runKey{cfg: string(b), policy: spec.Name, workload: workload}
}

// DefaultCacheCap bounds the memoisation cache so a long-lived process
// (the mellowd daemon) does not grow without limit. At ~1 KB a result,
// the default costs a few MB.
const DefaultCacheCap = 4096

// CacheStats reports the memoisation cache's behaviour. A "hit" counts
// both finished-result reuse and joining a simulation already in
// flight (singleflight); only simulations actually started count as
// misses.
type CacheStats struct {
	Hits, Misses, Evictions uint64
	Entries, InFlight       int
}

// flight is one in-progress simulation that concurrent callers join.
type flight struct {
	done chan struct{}
	res  core.Result
	err  error
}

// simCache memoises finished simulations (bounded, FIFO eviction) and
// deduplicates concurrent identical runs.
type simCache struct {
	mu       sync.Mutex
	cap      int
	entries  map[runKey]core.Result
	order    []runKey // insertion order, for eviction
	inflight map[runKey]*flight
	hits     uint64
	misses   uint64
	evicted  uint64
}

func newSimCache(cap int) *simCache {
	return &simCache{
		cap:      cap,
		entries:  map[runKey]core.Result{},
		inflight: map[runKey]*flight{},
	}
}

var memo = newSimCache(DefaultCacheCap)

// do returns the memoised result for key, joins an identical simulation
// already in flight, or runs fn itself and publishes the result. A
// caller waiting on someone else's flight aborts with ctx's error when
// cancelled; the flight itself keeps running for the others.
func (c *simCache) do(ctx context.Context, key runKey, fn func() (core.Result, error)) (core.Result, error) {
	c.mu.Lock()
	if r, ok := c.entries[key]; ok {
		c.hits++
		c.mu.Unlock()
		return r, nil
	}
	if f, ok := c.inflight[key]; ok {
		c.hits++
		c.mu.Unlock()
		select {
		case <-f.done:
			return f.res, f.err
		case <-ctx.Done():
			return core.Result{}, ctx.Err()
		}
	}
	c.misses++
	f := &flight{done: make(chan struct{})}
	c.inflight[key] = f
	c.mu.Unlock()

	f.res, f.err = fn()

	c.mu.Lock()
	delete(c.inflight, key)
	if f.err == nil {
		c.insert(key, f.res)
	}
	c.mu.Unlock()
	close(f.done)
	return f.res, f.err
}

// insert stores a finished result, evicting oldest-first past the cap.
// Callers hold c.mu.
func (c *simCache) insert(key runKey, r core.Result) {
	if _, ok := c.entries[key]; ok {
		c.entries[key] = r
		return
	}
	for c.cap > 0 && len(c.entries) >= c.cap {
		old := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, old)
		c.evicted++
	}
	c.entries[key] = r
	c.order = append(c.order, key)
}

func (c *simCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits: c.hits, Misses: c.misses, Evictions: c.evicted,
		Entries: len(c.entries), InFlight: len(c.inflight),
	}
}

func (c *simCache) reset(cap int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cap = cap
	c.entries = map[runKey]core.Result{}
	c.order = nil
	c.hits, c.misses, c.evicted = 0, 0, 0
	// in-flight simulations publish into the fresh maps when they land.
	c.inflight = map[runKey]*flight{}
}

// ResetCache drops memoised simulation results and counters (tests).
func ResetCache() {
	memo.mu.Lock()
	cap := memo.cap
	memo.mu.Unlock()
	memo.reset(cap)
}

// SetCacheCap bounds the number of memoised results (<= 0: unbounded)
// and applies on the next insertion; it does not shrink eagerly.
func SetCacheCap(n int) {
	memo.mu.Lock()
	defer memo.mu.Unlock()
	memo.cap = n
}

// CacheSnapshot reports hit/miss/eviction counters and current
// occupancy of the memoisation cache.
func CacheSnapshot() CacheStats { return memo.stats() }

// RunCached is the memoised, deduplicated simulation entry point: an
// identical (config, policy, workload) triple simulates at most once
// concurrently and its result is reused across callers — the primitive
// the mellowd service builds on.
func RunCached(ctx context.Context, cfg config.Config, spec policy.Spec, workload string) (core.Result, error) {
	return memo.do(ctx, keyFor(cfg, spec, workload), func() (core.Result, error) {
		return core.RunContext(ctx, cfg, spec, workload)
	})
}

// job is one simulation to perform.
type job struct {
	cfg      config.Config
	spec     policy.Spec
	workload string
}

// runAll executes the jobs (memoised, parallel) and returns results
// keyed by (policy, workload).
func runAll(o Options, jobs []job) (map[[2]string]core.Result, error) {
	ctx := o.ctx()
	results := make(map[[2]string]core.Result, len(jobs))
	var resMu sync.Mutex
	sem := make(chan struct{}, o.parallel())
	var wg sync.WaitGroup
	var firstErr error
	for _, j := range jobs {
		if err := ctx.Err(); err != nil {
			resMu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			resMu.Unlock()
			break
		}
		j := j
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			r, err := RunCached(ctx, j.cfg, j.spec, j.workload)
			resMu.Lock()
			defer resMu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			results[[2]string{j.spec.Name, j.workload}] = r
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}

// runOne executes (or reuses) a single simulation.
func runOne(o Options, cfg config.Config, spec policy.Spec, workload string) (core.Result, error) {
	return RunCached(o.ctx(), cfg, spec, workload)
}

// evalSweep runs the Figure 10–16 policy line-up over the active suite.
func evalSweep(o Options) (map[[2]string]core.Result, []policy.Spec, error) {
	specs := policy.EvaluationSet()
	var jobs []job
	for _, w := range o.workloads() {
		for _, s := range specs {
			jobs = append(jobs, job{cfg: o.Cfg, spec: s, workload: w})
		}
	}
	res, err := runAll(o, jobs)
	return res, specs, err
}

// EvalSweep exposes the Figure 10-16 sweep to sibling tools (the SVG
// plotter): results keyed by (policy name, workload), plus the line-up.
func EvalSweep(o Options) (map[[2]string]core.Result, []policy.Spec, error) {
	return evalSweep(o)
}
