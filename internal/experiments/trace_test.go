package experiments

import (
	"context"
	"reflect"
	"testing"

	"mellow/internal/policy"
	"mellow/internal/xtrace"
)

// TestTracedBitIdentical pins the trace-determinism contract at the
// memoised layer: a run with Trace set yields a result byte-identical
// to the plain RunCached result for the same (config, policy,
// workload), while also producing a finalized timeline.
func TestTracedBitIdentical(t *testing.T) {
	ResetCache()
	cfg := tinyConfig(11)
	spec, err := policy.Parse("BE-Mellow+SC+WQ")
	if err != nil {
		t.Fatal(err)
	}
	plain, err := RunCached(context.Background(), cfg, spec, "gups")
	if err != nil {
		t.Fatal(err)
	}
	ins, err := RunFull(context.Background(), cfg, spec, "gups", Observation{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, ins.Result) {
		t.Error("traced result differs from untraced run")
	}
	if ins.Trace == nil || len(ins.Trace.Events) == 0 {
		t.Fatalf("traced run produced no timeline: %+v", ins.Trace)
	}
	if ins.Trace.Workload != "gups" || ins.Trace.Policy != spec.Name || ins.Trace.Banks != cfg.Memory.Banks() {
		t.Errorf("timeline labels = %q/%q/%d banks", ins.Trace.Workload, ins.Trace.Policy, ins.Trace.Banks)
	}
	// Trace and no-trace runs use distinct memo keys: the traced run is
	// a second simulation, not a hit that lacks a timeline.
	if st := CacheSnapshot(); st.Misses != 2 {
		t.Errorf("misses = %d, want 2 (trace flag must enter the key)", st.Misses)
	}

	// An identical traced run is a memo hit sharing the same timeline.
	again, err := RunFull(context.Background(), cfg, spec, "gups", Observation{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if again.Trace != ins.Trace {
		t.Error("memo hit rebuilt the timeline instead of sharing it")
	}
	if st := CacheSnapshot(); st.Misses != 2 {
		t.Errorf("misses after repeat = %d, want still 2", st.Misses)
	}
	ResetCache()
}

// TestTracedCancellationDiscards verifies the failure path retires the
// recorder: a cancelled traced run must not leak into the active count.
func TestTracedCancellationDiscards(t *testing.T) {
	ResetCache()
	spec, err := policy.Parse("Norm")
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyConfig(5)
	cfg.Run.DetailedInstructions = 50_000_000 // would take seconds uncancelled
	base := xtrace.ActiveCount()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunFull(ctx, cfg, spec, "stream", Observation{Trace: true}); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := xtrace.ActiveCount(); got != base {
		t.Errorf("active recorders = %d after cancelled run, want %d", got, base)
	}
	ResetCache()
}
