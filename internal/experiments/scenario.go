package experiments

import (
	"context"
	"fmt"
	"sync"

	"mellow/internal/config"
	"mellow/internal/core"
	"mellow/internal/policy"
	"mellow/internal/scenario"
	"mellow/internal/trace"
)

// RunSpecCached is RunCached for inline declarative workloads: the memo
// key carries the spec's content hash (plus its result label), so two
// scenarios declaring the same generator share one simulation while
// distinct parameterizations never collide. Builtin-name workloads
// should keep using RunCached — their keys are shared with the figure
// sweeps.
func RunSpecCached(ctx context.Context, cfg config.Config, spec policy.Spec, name string, ts trace.Spec) (core.Result, error) {
	h, err := ts.Hash()
	if err != nil {
		return core.Result{}, err
	}
	w, err := ts.Workload(name, 0)
	if err != nil {
		return core.Result{}, err
	}
	key := keyFor(cfg, spec, "spec:"+name+":"+h, 0, false, false, false)
	c, err := memo.do(ctx, key, func() (cached, error) {
		r, err := core.RunWorkloadContext(ctx, cfg, spec, w)
		return cached{res: r}, err
	})
	return c.res, err
}

// RunScenario executes one declarative scenario: the workload × leveler
// × policy matrix fans out in parallel through the memoised sched-
// governed simulation path, and the cells land in matrix order so the
// result document is deterministic. onProgress (optional) fires after
// every completed cell.
func RunScenario(ctx context.Context, base config.Config, sc *scenario.Scenario, onProgress func(done, total int)) (*scenario.Result, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	cfg, err := sc.EffectiveConfig(base)
	if err != nil {
		return nil, err
	}
	key, err := sc.RunKey(base)
	if err != nil {
		return nil, err
	}
	cells := sc.Cells()
	out := &scenario.Result{Scenario: sc.Name, Key: key, Cells: make([]scenario.CellResult, len(cells))}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		done     int
	)
	for i, cell := range cells {
		if err := ctx.Err(); err != nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
			break
		}
		wg.Add(1)
		go func(i int, cell scenario.Cell) {
			defer wg.Done()
			ccfg := cfg
			if cell.Leveler != "" {
				ccfg.Memory.WearLeveler = cell.Leveler
			}
			pspec, err := policy.Parse(cell.Policy)
			var r core.Result
			if err == nil {
				if cell.Workload.Spec != nil {
					r, err = RunSpecCached(ctx, ccfg, pspec, cell.Workload.Name, *cell.Workload.Spec)
				} else {
					r, err = RunCached(ctx, ccfg, pspec, cell.Workload.Name)
				}
			}
			mu.Lock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
			} else {
				out.Cells[i] = scenario.CellResult{
					Workload: cell.Workload.Name,
					Leveler:  cell.Leveler,
					Policy:   cell.Policy,
					Result:   r,
				}
			}
			done++
			if onProgress != nil {
				onProgress(done, len(cells))
			}
			mu.Unlock()
		}(i, cell)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// ScenarioOutcome reports one corpus scenario's run.
type ScenarioOutcome struct {
	Name string
	Path string
	// Updated marks a golden (re)written in update mode.
	Updated bool
	// Err is the run or golden-compare failure, nil on success.
	Err error
	// Result is the produced document (nil when the run itself failed).
	Result *scenario.Result
}

// RunScenarioCorpus discovers every test-*.json scenario under dir,
// runs each against base and compares (or, with update, regenerates)
// its committed .expected golden. Scenarios execute in sorted path
// order — their cells still fan out in parallel under the scheduler
// budget — and every scenario is attempted even after failures, so one
// run reports the whole corpus. onDone (optional) fires per scenario.
func RunScenarioCorpus(ctx context.Context, base config.Config, dir string, update bool, onDone func(ScenarioOutcome)) ([]ScenarioOutcome, error) {
	entries, err := scenario.LoadDir(dir)
	if err != nil {
		return nil, err
	}
	outcomes := make([]ScenarioOutcome, 0, len(entries))
	for _, e := range entries {
		oc := ScenarioOutcome{Name: e.Scenario.Name, Path: e.Path}
		res, err := RunScenario(ctx, base, e.Scenario, nil)
		if err != nil {
			oc.Err = fmt.Errorf("scenario %s: %v", e.Scenario.Name, err)
		} else {
			oc.Result = res
			if update {
				oc.Err = res.WriteFile(scenario.ExpectedPath(e.Path))
				oc.Updated = oc.Err == nil
			} else {
				oc.Err = res.CompareFile(scenario.ExpectedPath(e.Path))
			}
		}
		if onDone != nil {
			onDone(oc)
		}
		outcomes = append(outcomes, oc)
		if err := ctx.Err(); err != nil {
			return outcomes, err
		}
	}
	return outcomes, nil
}
