// Package config defines every simulation parameter, with defaults taken
// from Tables I and II of the paper. Configurations validate themselves
// and round-trip through JSON so experiment sweeps can be described as
// data.
package config

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math/bits"

	"mellow/internal/nvm"
	"mellow/internal/sim"
)

// LineBytes is the cache-line and memory-write granularity (64 bytes
// throughout the paper).
const LineBytes = 64

// CPU describes the processor model (Table I). The clock is fixed at
// 2 GHz by the simulation tick; see package sim.
type CPU struct {
	// IssueWidth is the maximum instructions retired per cycle.
	IssueWidth int
	// ROBEntries bounds the number of in-flight instructions; it sets
	// how much memory-level parallelism the core can expose.
	ROBEntries int
}

// Cache describes one cache level.
type Cache struct {
	// SizeBytes is the total capacity; must be a power of two.
	SizeBytes int
	// Ways is the set associativity.
	Ways int
	// HitLatency is the access latency in CPU cycles.
	HitLatency int
	// MSHRs bounds outstanding misses to the next level.
	MSHRs int
}

// Sets returns the number of sets.
func (c Cache) Sets() int { return c.SizeBytes / (LineBytes * c.Ways) }

func (c Cache) validate(name string) error {
	if c.SizeBytes <= 0 || bits.OnesCount(uint(c.SizeBytes)) != 1 {
		return fmt.Errorf("config: %s size %d is not a positive power of two", name, c.SizeBytes)
	}
	if c.Ways <= 0 || c.SizeBytes%(LineBytes*c.Ways) != 0 {
		return fmt.Errorf("config: %s ways %d does not divide %d lines", name, c.Ways, c.SizeBytes/LineBytes)
	}
	if s := c.Sets(); bits.OnesCount(uint(s)) != 1 {
		return fmt.Errorf("config: %s set count %d is not a power of two", name, s)
	}
	if c.HitLatency <= 0 {
		return fmt.Errorf("config: %s hit latency must be positive", name)
	}
	if c.MSHRs <= 0 {
		return fmt.Errorf("config: %s MSHR count must be positive", name)
	}
	return nil
}

// Hierarchy describes the three-level cache hierarchy of Table I. The L1
// is the data cache (instruction fetches are assumed to hit).
type Hierarchy struct {
	L1, L2, L3 Cache
	// UselessHitRatio is the Eager Mellow Writes threshold: LRU stack
	// positions whose cumulative tail hit share is below this fraction
	// of all LLC requests are "useless" (paper: 1/32).
	UselessHitRatio float64
	// ProfilePeriod is T_sample for the LRU-position profiler (500 µs).
	ProfilePeriod sim.Tick
	// EagerPredictor selects how eager write-back candidates are found:
	// "lru-profile" (the paper's §IV-B1 scheme, default) or "decay"
	// (timeout-style dead-block prediction, the §VII future direction).
	EagerPredictor string
	// DecayAccesses is the decay predictor's staleness threshold in LLC
	// accesses; ignored by the lru-profile predictor.
	DecayAccesses uint64
}

// Memory describes the resistive main-memory system (Table II).
type Memory struct {
	// Channels, Ranks and BanksPerRank set the topology; the paper's
	// default is one channel of 4 ranks × 4 banks. Each channel has its
	// own data bus; ranks and banks are per channel.
	Channels     int
	Ranks        int
	BanksPerRank int
	// CapacityBytes is total memory capacity (wear accounting needs it).
	CapacityBytes int64
	// RowBytes is the DRAM-style row (page) size per bank: 16 KB.
	RowBytes int
	// RowBufferBytes is the row-buffer (open page) size: 1 KB.
	RowBufferBytes int
	// Queue depths (entries) and the write-drain thresholds.
	ReadQueue, WriteQueue, EagerQueue int
	DrainHigh, DrainLow               int
	// Timing parameters.
	TRCD sim.Tick // activate (row) latency: 120 ns
	TCAS sim.Tick // column access: 2.5 ns
	TFAW sim.Tick // four-activate window: 50 ns
	// BurstCycles is the data-bus occupancy of one 64-byte transfer on
	// the 64-bit 400 MHz DDR bus (800 MT/s): 8 beats = 4 memory cycles.
	BurstCycles int
	// Device is the ReRAM latency/endurance model.
	Device nvm.Device
	// Cell selects the energy design point (Table V); Fig. 16 uses CellC.
	Cell nvm.Cell
	// Scheduler selects the read-queue service order per bank: "fcfs"
	// (default; the paper describes plain priority order) or "frfcfs"
	// (first-ready FCFS: row-buffer hits first, NVMain's usual default).
	Scheduler string
	// StartGapPsi is the Start-Gap gap-movement interval (writes per
	// move); the original paper uses ψ=100.
	StartGapPsi int
	// StartGapEfficiency is the fraction of ideal leveling achieved;
	// §IV-C conservatively uses 0.9.
	StartGapEfficiency float64
	// WearLeveler selects the wear-leveling backend: "startgap" (the
	// paper's scheme, default), "wolfram" (WoLFRaM-style programmable-
	// address-decoder block remapping) or "softwear" (SoftWear-style
	// software-only page-granularity leveling). The field is part of the
	// canonical JSON, so runs under different backends hash to different
	// content addresses.
	WearLeveler string
	// WolframSwapPeriod is the wolfram backend's remap interval: the
	// written block swaps frames with a random partner every this many
	// bank writes.
	WolframSwapPeriod int
	// SoftWearPageBlocks is the softwear page size in 64-byte blocks; a
	// power of two dividing BlocksPerBank (default 64 = a 4 KB OS page).
	SoftWearPageBlocks int
	// SoftWearEpochWrites is the softwear remap-evaluation epoch in bank
	// writes: at each boundary the hottest page may migrate to the
	// coldest frame.
	SoftWearEpochWrites int
}

// Banks returns the total bank count across all channels.
func (m Memory) Banks() int { return m.Channels * m.Ranks * m.BanksPerRank }

// TotalRanks returns the rank count across all channels.
func (m Memory) TotalRanks() int { return m.Channels * m.Ranks }

// BlocksPerBank returns the number of 64-byte blocks per bank.
func (m Memory) BlocksPerBank() int64 {
	return m.CapacityBytes / int64(m.Banks()) / LineBytes
}

// Run bounds the simulation length.
type Run struct {
	// WarmupInstructions run with caches live but statistics frozen.
	WarmupInstructions uint64
	// DetailedInstructions are measured.
	DetailedInstructions uint64
	// Seed drives every stochastic choice in the run.
	Seed uint64
}

// Config is the complete system configuration.
type Config struct {
	CPU    CPU
	Caches Hierarchy
	Memory Memory
	Run    Run
}

// Default returns the paper's baseline configuration (Tables I and II),
// with run lengths scaled to laptop budgets (see DESIGN.md §4).
func Default() Config {
	return Config{
		CPU: CPU{IssueWidth: 8, ROBEntries: 192},
		Caches: Hierarchy{
			L1:              Cache{SizeBytes: 32 << 10, Ways: 4, HitLatency: 2, MSHRs: 8},
			L2:              Cache{SizeBytes: 256 << 10, Ways: 8, HitLatency: 12, MSHRs: 12},
			L3:              Cache{SizeBytes: 2 << 20, Ways: 16, HitLatency: 35, MSHRs: 32},
			UselessHitRatio: 1.0 / 32.0,
			ProfilePeriod:   sim.NS(500000),
			EagerPredictor:  "lru-profile",
			DecayAccesses:   65536, // ~2 LLC turnovers
		},
		Memory: Memory{
			Channels:            1,
			Ranks:               4,
			BanksPerRank:        4,
			CapacityBytes:       8 << 30,
			RowBytes:            16 << 10,
			RowBufferBytes:      1 << 10,
			ReadQueue:           32,
			WriteQueue:          32,
			EagerQueue:          16,
			DrainHigh:           32,
			DrainLow:            16,
			TRCD:                sim.NS(120),
			TCAS:                sim.MemCycle, // 2.5 ns
			TFAW:                sim.NS(50),
			BurstCycles:         4,
			Device:              nvm.DefaultDevice(),
			Cell:                nvm.CellC,
			Scheduler:           "fcfs",
			StartGapPsi:         100,
			StartGapEfficiency:  0.9,
			WearLeveler:         "startgap",
			WolframSwapPeriod:   100,
			SoftWearPageBlocks:  64,
			SoftWearEpochWrites: 4096,
		},
		Run: Run{
			WarmupInstructions:   10_000_000,
			DetailedInstructions: 20_000_000,
			Seed:                 1,
		},
	}
}

// Validate checks internal consistency. A Config from Default always
// validates.
func (c Config) Validate() error {
	if c.CPU.IssueWidth <= 0 {
		return fmt.Errorf("config: issue width must be positive")
	}
	if c.CPU.ROBEntries <= 0 {
		return fmt.Errorf("config: ROB size must be positive")
	}
	for _, lv := range []struct {
		name string
		c    Cache
	}{{"L1", c.Caches.L1}, {"L2", c.Caches.L2}, {"L3", c.Caches.L3}} {
		if err := lv.c.validate(lv.name); err != nil {
			return err
		}
	}
	if c.Caches.L1.SizeBytes > c.Caches.L2.SizeBytes || c.Caches.L2.SizeBytes > c.Caches.L3.SizeBytes {
		return fmt.Errorf("config: cache sizes must be nondecreasing by level")
	}
	if c.Caches.UselessHitRatio <= 0 || c.Caches.UselessHitRatio >= 1 {
		return fmt.Errorf("config: useless hit ratio %v out of (0,1)", c.Caches.UselessHitRatio)
	}
	if c.Caches.ProfilePeriod == 0 {
		return fmt.Errorf("config: profile period must be positive")
	}
	switch c.Caches.EagerPredictor {
	case "lru-profile":
	case "decay":
		if c.Caches.DecayAccesses == 0 {
			return fmt.Errorf("config: decay predictor needs a positive threshold")
		}
	default:
		return fmt.Errorf("config: unknown eager predictor %q", c.Caches.EagerPredictor)
	}
	m := c.Memory
	if m.Channels <= 0 || m.Ranks <= 0 || m.BanksPerRank <= 0 {
		return fmt.Errorf("config: need at least one channel, rank and bank")
	}
	if bits.OnesCount(uint(m.Channels)) != 1 {
		return fmt.Errorf("config: channel count %d must be a power of two", m.Channels)
	}
	if bits.OnesCount(uint(m.Banks())) != 1 {
		return fmt.Errorf("config: bank count %d must be a power of two", m.Banks())
	}
	if m.CapacityBytes <= 0 || m.CapacityBytes%(int64(m.Banks())*LineBytes) != 0 {
		return fmt.Errorf("config: capacity %d not divisible across %d banks", m.CapacityBytes, m.Banks())
	}
	if m.RowBufferBytes <= 0 || m.RowBytes%m.RowBufferBytes != 0 {
		return fmt.Errorf("config: row %dB not a multiple of row buffer %dB", m.RowBytes, m.RowBufferBytes)
	}
	if m.RowBufferBytes%LineBytes != 0 {
		return fmt.Errorf("config: row buffer must hold whole lines")
	}
	if m.ReadQueue <= 0 || m.WriteQueue <= 0 || m.EagerQueue < 0 {
		return fmt.Errorf("config: queue depths must be positive (eager may be zero)")
	}
	// DrainLow == DrainHigh is the degenerate-but-valid hysteresis: each
	// drain entry services exactly one write before the low mark clears.
	if m.DrainHigh > m.WriteQueue || m.DrainHigh <= 0 || m.DrainLow > m.DrainHigh || m.DrainLow < 0 {
		return fmt.Errorf("config: drain thresholds low=%d high=%d invalid for queue %d",
			m.DrainLow, m.DrainHigh, m.WriteQueue)
	}
	if m.TRCD == 0 || m.TCAS == 0 {
		return fmt.Errorf("config: timing parameters must be positive")
	}
	if m.BurstCycles <= 0 {
		return fmt.Errorf("config: burst length must be positive")
	}
	if m.Device.BaseLatency == 0 || m.Device.BaseEndurance <= 0 {
		return fmt.Errorf("config: device model incomplete")
	}
	if m.Device.ExpoFactor < 0.5 || m.Device.ExpoFactor > 4.0 {
		return fmt.Errorf("config: ExpoFactor %v outside plausible range [0.5,4]", m.Device.ExpoFactor)
	}
	switch m.Scheduler {
	case "fcfs", "frfcfs":
	default:
		return fmt.Errorf("config: unknown scheduler %q (want fcfs or frfcfs)", m.Scheduler)
	}
	if m.StartGapPsi <= 0 {
		return fmt.Errorf("config: Start-Gap psi must be positive")
	}
	if m.StartGapEfficiency <= 0 || m.StartGapEfficiency > 1 {
		return fmt.Errorf("config: Start-Gap efficiency %v out of (0,1]", m.StartGapEfficiency)
	}
	switch m.WearLeveler {
	case "", "startgap", "wolfram", "softwear":
	default:
		return fmt.Errorf("config: unknown wear leveler %q (want startgap, wolfram or softwear)", m.WearLeveler)
	}
	if m.WolframSwapPeriod <= 0 {
		return fmt.Errorf("config: wolfram swap period must be positive, got %d", m.WolframSwapPeriod)
	}
	if m.SoftWearPageBlocks <= 0 || bits.OnesCount(uint(m.SoftWearPageBlocks)) != 1 {
		return fmt.Errorf("config: softwear page size %d blocks is not a positive power of two", m.SoftWearPageBlocks)
	}
	if m.BlocksPerBank()%int64(m.SoftWearPageBlocks) != 0 {
		return fmt.Errorf("config: softwear page size %d does not divide %d blocks per bank",
			m.SoftWearPageBlocks, m.BlocksPerBank())
	}
	if m.SoftWearEpochWrites <= 0 {
		return fmt.Errorf("config: softwear epoch must be positive, got %d", m.SoftWearEpochWrites)
	}
	if c.Run.DetailedInstructions == 0 {
		return fmt.Errorf("config: detailed instruction count must be positive")
	}
	return nil
}

// WithBanks returns a copy configured for the given per-channel bank
// count, preserving the paper's 4-banks-per-rank layout (Table II offers
// 4, 8 and 16 banks as 1, 2 and 4 ranks).
func (c Config) WithBanks(banks int) (Config, error) {
	if banks%4 != 0 || banks <= 0 {
		return c, fmt.Errorf("config: bank count %d not a multiple of 4", banks)
	}
	c.Memory.Ranks = banks / 4
	c.Memory.BanksPerRank = 4
	return c, c.Validate()
}

// WithChannels returns a copy with the given channel count (each channel
// keeps the configured ranks × banks and gains its own data bus).
func (c Config) WithChannels(channels int) (Config, error) {
	c.Memory.Channels = channels
	return c, c.Validate()
}

// MarshalJSON/UnmarshalJSON use the default struct codecs; Config is plain
// data. These named methods exist only to keep the round-trip property
// explicit in the API surface and tested.
func (c Config) MarshalJSON() ([]byte, error) {
	type plain Config
	return json.Marshal(plain(c))
}

// UnmarshalJSON decodes into the receiver.
func (c *Config) UnmarshalJSON(b []byte) error {
	type plain Config
	return json.Unmarshal(b, (*plain)(c))
}

// CanonicalJSON renders the configuration in its canonical byte form:
// the stdlib encoding with fields in declaration order and no insigni-
// ficant whitespace. Two Configs with equal values produce identical
// bytes, which makes the encoding safe to hash for content addressing.
func (c Config) CanonicalJSON() ([]byte, error) {
	return json.Marshal(c)
}

// Hash returns the hex SHA-256 of the canonical JSON — the identity of
// this configuration for memoisation and result caches.
func (c Config) Hash() (string, error) {
	b, err := c.CanonicalJSON()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}
