package config

import (
	"encoding/json"
	"reflect"
	"testing"

	"mellow/internal/nvm"
	"mellow/internal/sim"
)

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestDefaultMatchesTables(t *testing.T) {
	c := Default()
	// Table I.
	if c.CPU.IssueWidth != 8 {
		t.Errorf("issue width = %d, want 8", c.CPU.IssueWidth)
	}
	if c.Caches.L1.SizeBytes != 32<<10 || c.Caches.L1.Ways != 4 || c.Caches.L1.HitLatency != 2 || c.Caches.L1.MSHRs != 8 {
		t.Errorf("L1 config mismatch: %+v", c.Caches.L1)
	}
	if c.Caches.L2.SizeBytes != 256<<10 || c.Caches.L2.Ways != 8 || c.Caches.L2.HitLatency != 12 || c.Caches.L2.MSHRs != 12 {
		t.Errorf("L2 config mismatch: %+v", c.Caches.L2)
	}
	if c.Caches.L3.SizeBytes != 2<<20 || c.Caches.L3.Ways != 16 || c.Caches.L3.HitLatency != 35 || c.Caches.L3.MSHRs != 32 {
		t.Errorf("L3 config mismatch: %+v", c.Caches.L3)
	}
	if c.Caches.UselessHitRatio != 1.0/32.0 {
		t.Errorf("useless ratio = %v, want 1/32", c.Caches.UselessHitRatio)
	}
	if c.Caches.ProfilePeriod != sim.NS(500000) {
		t.Errorf("profile period = %v, want 500000 ns", c.Caches.ProfilePeriod)
	}
	// Table II.
	if c.Memory.Banks() != 16 || c.Memory.Ranks != 4 {
		t.Errorf("default topology = %d banks in %d ranks, want 16 in 4", c.Memory.Banks(), c.Memory.Ranks)
	}
	if c.Memory.ReadQueue != 32 || c.Memory.WriteQueue != 32 || c.Memory.EagerQueue != 16 {
		t.Errorf("queue depths %d/%d/%d, want 32/32/16",
			c.Memory.ReadQueue, c.Memory.WriteQueue, c.Memory.EagerQueue)
	}
	if c.Memory.DrainLow != 16 || c.Memory.DrainHigh != 32 {
		t.Errorf("drain thresholds %d/%d, want 16/32", c.Memory.DrainLow, c.Memory.DrainHigh)
	}
	if c.Memory.TRCD != sim.NS(120) || c.Memory.TCAS != sim.MemCycle || c.Memory.TFAW != sim.NS(50) {
		t.Errorf("timing mismatch: tRCD=%d tCAS=%d tFAW=%d", c.Memory.TRCD, c.Memory.TCAS, c.Memory.TFAW)
	}
	if c.Memory.RowBytes != 16<<10 || c.Memory.RowBufferBytes != 1<<10 {
		t.Errorf("row sizes mismatch: %d/%d", c.Memory.RowBytes, c.Memory.RowBufferBytes)
	}
	if c.Memory.Device.BaseEndurance != 5e6 || c.Memory.Device.ExpoFactor != 2.0 {
		t.Errorf("device mismatch: %+v", c.Memory.Device)
	}
	if c.Memory.Cell != nvm.CellC {
		t.Errorf("cell = %v, want CellC", c.Memory.Cell)
	}
	if c.Memory.StartGapEfficiency != 0.9 {
		t.Errorf("Start-Gap efficiency = %v, want 0.9", c.Memory.StartGapEfficiency)
	}
}

func TestBlocksPerBank(t *testing.T) {
	c := Default()
	want := int64(8<<30) / 16 / 64
	if got := c.Memory.BlocksPerBank(); got != want {
		t.Errorf("BlocksPerBank = %d, want %d", got, want)
	}
}

func TestWithBanks(t *testing.T) {
	for _, banks := range []int{4, 8, 16} {
		c, err := Default().WithBanks(banks)
		if err != nil {
			t.Fatalf("WithBanks(%d): %v", banks, err)
		}
		if c.Memory.Banks() != banks || c.Memory.BanksPerRank != 4 {
			t.Errorf("WithBanks(%d) = %d banks, %d per rank", banks, c.Memory.Banks(), c.Memory.BanksPerRank)
		}
	}
	if _, err := Default().WithBanks(6); err == nil {
		t.Error("WithBanks(6) should fail")
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	mutations := map[string]func(*Config){
		"zero issue width":     func(c *Config) { c.CPU.IssueWidth = 0 },
		"zero ROB":             func(c *Config) { c.CPU.ROBEntries = 0 },
		"non-pow2 L1":          func(c *Config) { c.Caches.L1.SizeBytes = 3000 },
		"zero ways":            func(c *Config) { c.Caches.L2.Ways = 0 },
		"zero hit latency":     func(c *Config) { c.Caches.L3.HitLatency = 0 },
		"zero MSHRs":           func(c *Config) { c.Caches.L1.MSHRs = 0 },
		"L1 bigger than L2":    func(c *Config) { c.Caches.L1.SizeBytes = 1 << 20 },
		"bad useless ratio":    func(c *Config) { c.Caches.UselessHitRatio = 1.5 },
		"zero profile period":  func(c *Config) { c.Caches.ProfilePeriod = 0 },
		"zero ranks":           func(c *Config) { c.Memory.Ranks = 0 },
		"zero channels":        func(c *Config) { c.Memory.Channels = 0 },
		"non-pow2 channels":    func(c *Config) { c.Memory.Channels = 3 },
		"non-pow2 banks":       func(c *Config) { c.Memory.Ranks = 3 },
		"odd capacity":         func(c *Config) { c.Memory.CapacityBytes = 1000 },
		"row buffer mismatch":  func(c *Config) { c.Memory.RowBufferBytes = 999 },
		"zero read queue":      func(c *Config) { c.Memory.ReadQueue = 0 },
		"drain low > high":     func(c *Config) { c.Memory.DrainLow = 33 },
		"drain high too big":   func(c *Config) { c.Memory.DrainHigh = 64 },
		"negative drain low":   func(c *Config) { c.Memory.DrainLow = -1 },
		"zero drain high":      func(c *Config) { c.Memory.DrainHigh = 0; c.Memory.DrainLow = 0 },
		"unknown leveler":      func(c *Config) { c.Memory.WearLeveler = "chalkboard" },
		"zero wolfram period":  func(c *Config) { c.Memory.WolframSwapPeriod = 0 },
		"non-pow2 page":        func(c *Config) { c.Memory.SoftWearPageBlocks = 48 },
		"page exceeds bank":    func(c *Config) { c.Memory.SoftWearPageBlocks = 1 << 30 },
		"zero softwear epoch":  func(c *Config) { c.Memory.SoftWearEpochWrites = 0 },
		"zero tRCD":            func(c *Config) { c.Memory.TRCD = 0 },
		"zero burst":           func(c *Config) { c.Memory.BurstCycles = 0 },
		"zero endurance":       func(c *Config) { c.Memory.Device.BaseEndurance = 0 },
		"silly expo factor":    func(c *Config) { c.Memory.Device.ExpoFactor = 9 },
		"zero psi":             func(c *Config) { c.Memory.StartGapPsi = 0 },
		"bad SG efficiency":    func(c *Config) { c.Memory.StartGapEfficiency = 0 },
		"zero detailed instrs": func(c *Config) { c.Run.DetailedInstructions = 0 },
	}
	for name, mutate := range mutations {
		c := Default()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid config", name)
		}
	}
}

// Degenerate hysteresis (DrainLow == DrainHigh) is valid: the window
// collapses to a single flip point (§VI-C boundary behavior).
func TestValidateAcceptsDegenerateDrainWindow(t *testing.T) {
	c := Default()
	c.Memory.DrainLow = c.Memory.DrainHigh
	if err := c.Validate(); err != nil {
		t.Fatalf("DrainLow == DrainHigh rejected: %v", err)
	}
}

// Every selectable wear backend validates with default parameters, and
// the empty string (meaning startgap) does too.
func TestValidateAcceptsAllLevelers(t *testing.T) {
	for _, name := range []string{"", "startgap", "wolfram", "softwear"} {
		c := Default()
		c.Memory.WearLeveler = name
		if err := c.Validate(); err != nil {
			t.Errorf("leveler %q rejected: %v", name, err)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	c := Default()
	c.Run.Seed = 12345
	c.Memory.Device.ExpoFactor = 2.5
	b, err := json.Marshal(c)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Config
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(c, back) {
		t.Errorf("round trip changed config:\n got %+v\nwant %+v", back, c)
	}
}

func TestCacheSets(t *testing.T) {
	c := Default()
	if got := c.Caches.L3.Sets(); got != 2048 {
		t.Errorf("L3 sets = %d, want 2048 (2MB/16way/64B)", got)
	}
	if got := c.Caches.L1.Sets(); got != 128 {
		t.Errorf("L1 sets = %d, want 128", got)
	}
}

func TestWithChannels(t *testing.T) {
	c, err := Default().WithChannels(2)
	if err != nil {
		t.Fatal(err)
	}
	if c.Memory.Banks() != 32 || c.Memory.TotalRanks() != 8 {
		t.Errorf("2 channels: %d banks in %d ranks", c.Memory.Banks(), c.Memory.TotalRanks())
	}
	if _, err := Default().WithChannels(3); err == nil {
		t.Error("WithChannels(3) should fail (not a power of two)")
	}
	if _, err := Default().WithChannels(0); err == nil {
		t.Error("WithChannels(0) should fail")
	}
}

func TestCanonicalHash(t *testing.T) {
	a, err := Default().Hash()
	if err != nil {
		t.Fatal(err)
	}
	b, err := Default().Hash()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("equal configs hash differently: %s vs %s", a, b)
	}
	if len(a) != 64 {
		t.Errorf("hash length = %d, want 64 hex chars", len(a))
	}
	c := Default()
	c.Run.Seed = 7
	h, err := c.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h == a {
		t.Error("changing the seed did not change the hash")
	}

	// The canonical form survives a JSON round trip: decode + re-hash
	// yields the same identity.
	raw, err := c.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Config
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	h2, err := back.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h2 != h {
		t.Errorf("hash not stable across round trip: %s vs %s", h2, h)
	}
}
