package cpu

import (
	"testing"

	"mellow/internal/cache"
	"mellow/internal/config"
	"mellow/internal/mem"
	"mellow/internal/policy"
	"mellow/internal/rng"
	"mellow/internal/sim"
	"mellow/internal/trace"
)

// scriptGen replays a fixed op sequence cyclically.
type scriptGen struct {
	ops []trace.Op
	i   int
}

func (g *scriptGen) Next() trace.Op {
	op := g.ops[g.i%len(g.ops)]
	g.i++
	return op
}

// seqGen emits line-sequential reads with a fixed gap.
type seqGen struct {
	line uint64
	gap  uint32
}

func (g *seqGen) Next() trace.Op {
	g.line++
	return trace.Op{Gap: g.gap, Addr: g.line << 6}
}

// randGen emits random-line reads with a fixed gap.
type randGen struct {
	src *rng.Source
	gap uint32
}

func (g *randGen) Next() trace.Op {
	return trace.Op{Gap: g.gap, Addr: g.src.Uintn(1<<24) << 6}
}

func newRig(t *testing.T, gen trace.Generator) (*Core, *mem.Controller) {
	t.Helper()
	cfg := config.Default()
	k := &sim.Kernel{}
	hier := cache.NewHierarchy(cfg.Caches, rng.New(1))
	ctl := mem.New(k, cfg.Memory, policy.Norm())
	ctl.SetEagerSource(hier.EagerCandidate)
	return New(cfg, hier, ctl, gen), ctl
}

func TestIssueWidthBound(t *testing.T) {
	// All L1 hits after the first touch: IPC approaches the 8-wide issue
	// limit.
	gen := &scriptGen{ops: []trace.Op{{Gap: 15, Addr: 0x1000}}}
	c, _ := newRig(t, gen)
	c.Run(100_000)
	c.BeginMeasurement()
	c.Run(1_000_000)
	if ipc := c.IPC(); ipc < 7.5 || ipc > 8.0 {
		t.Errorf("cache-resident IPC = %v, want ~8", ipc)
	}
}

func TestDependentChainSerialises(t *testing.T) {
	// Dependent random misses: each must wait for the previous.
	dep := &randGen{src: rng.New(3), gap: 9}
	depOps := func() trace.Generator {
		return &genWrap{inner: dep, dep: true}
	}
	c, _ := newRig(t, depOps())
	c.BeginMeasurement()
	c.Run(500_000)
	ipcDep := c.IPC()

	c2, _ := newRig(t, &randGen{src: rng.New(3), gap: 9})
	c2.BeginMeasurement()
	c2.Run(500_000)
	ipcInd := c2.IPC()

	if ipcDep >= ipcInd*0.6 {
		t.Errorf("dependent IPC %v not much slower than independent %v", ipcDep, ipcInd)
	}
}

// genWrap marks every read of an inner generator as dependent.
type genWrap struct {
	inner trace.Generator
	dep   bool
}

func (g *genWrap) Next() trace.Op {
	op := g.inner.Next()
	op.Dep = g.dep
	return op
}

func TestSequentialBeatsRandom(t *testing.T) {
	// The stream prefetcher must make sequential misses far cheaper than
	// random ones at the same nominal miss rate.
	cs, _ := newRig(t, &seqGen{gap: 9})
	cs.BeginMeasurement()
	cs.Run(500_000)
	seq := cs.IPC()

	cr, _ := newRig(t, &randGen{src: rng.New(5), gap: 9})
	cr.BeginMeasurement()
	cr.Run(500_000)
	rand := cr.IPC()

	if seq < rand*1.3 {
		t.Errorf("sequential IPC %v vs random %v: prefetcher ineffective", seq, rand)
	}
}

func TestStoresDoNotStallRetirement(t *testing.T) {
	// A pure store-miss stream should run much faster than a pure
	// dependent-load-miss stream: stores are fire-and-forget.
	stores := &genWrap2{inner: &randGen{src: rng.New(7), gap: 9}, write: true}
	cw, _ := newRig(t, stores)
	cw.BeginMeasurement()
	cw.Run(300_000)
	wIPC := cw.IPC()

	loads := &genWrap{inner: &randGen{src: rng.New(7), gap: 9}, dep: true}
	cl, _ := newRig(t, loads)
	cl.BeginMeasurement()
	cl.Run(300_000)
	lIPC := cl.IPC()

	if wIPC < lIPC*2 {
		t.Errorf("store-stream IPC %v vs dependent-load %v: stores stalling?", wIPC, lIPC)
	}
}

type genWrap2 struct {
	inner trace.Generator
	write bool
}

func (g *genWrap2) Next() trace.Op {
	op := g.inner.Next()
	op.Write = g.write
	return op
}

func TestWritebacksReachController(t *testing.T) {
	// Enough random stores to overflow the LLC must surface as memory
	// write-backs.
	gen := &genWrap2{inner: &randGen{src: rng.New(9), gap: 1}, write: true}
	c, ctl := newRig(t, gen)
	c.Run(2_000_000)
	if s := ctl.Snapshot(); s.WriteQueued == 0 {
		t.Error("no write-backs reached the controller")
	}
}

func TestMSHRBoundsRespected(t *testing.T) {
	gen := &randGen{src: rng.New(11), gap: 0}
	c, _ := newRig(t, gen)
	for i := 0; i < 50_000; i++ {
		c.step()
		if got := c.loadsOutstanding(); got > c.loadMSHRs {
			t.Fatalf("outstanding loads %d exceeds L1 MSHRs %d", got, c.loadMSHRs)
		}
		if got := c.memOutstanding(); got > c.mshrLimit+1 {
			t.Fatalf("outstanding memory reads %d exceeds LLC MSHRs %d", got, c.mshrLimit)
		}
	}
}

func TestPrefetcherObserve(t *testing.T) {
	p := newPrefetcher(4)
	if p.observe(100) {
		t.Error("first miss confirmed a stream")
	}
	if !p.observe(101) {
		t.Error("sequential successor not confirmed")
	}
	if !p.observe(103) { // stride-2 within the confirmation window
		t.Error("X-2 successor not confirmed")
	}
	if p.observe(5000) {
		t.Error("random jump confirmed a stream")
	}
}

func TestMonotonicCycles(t *testing.T) {
	gen := &randGen{src: rng.New(13), gap: 4}
	c, _ := newRig(t, gen)
	prev := 0.0
	for i := 0; i < 20_000; i++ {
		c.step()
		if c.cycles < prev {
			t.Fatalf("cycle cursor went backwards at step %d", i)
		}
		prev = c.cycles
	}
}

func TestMeasurementWindow(t *testing.T) {
	gen := &scriptGen{ops: []trace.Op{{Gap: 7, Addr: 0x40}}}
	c, _ := newRig(t, gen)
	c.Run(10_000)
	c.BeginMeasurement()
	c.Run(10_000)
	if got := c.MeasuredInstructions(); got < 10_000 || got > 10_100 {
		t.Errorf("measured instructions = %d, want ~10000", got)
	}
	if c.MeasuredCycles() <= 0 {
		t.Error("measured cycles not positive")
	}
}
