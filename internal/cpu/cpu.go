// Package cpu models the out-of-order core of Table I as an interval
// (ROB-window) model: instructions dispatch and retire in order at the
// issue width, execution is out of order with unlimited functional
// units, and the pipeline stalls when the reorder buffer fills behind an
// incomplete load. This keeps the three couplings the paper's results
// rest on — read latency exposed at the ROB head, memory-level
// parallelism bounded by MSHRs and the ROB, and write traffic shaped by
// the cache hierarchy — at a cost proportional to memory traffic rather
// than instruction count (see DESIGN.md §3/§4).
package cpu

import (
	"mellow/internal/cache"
	"mellow/internal/config"
	"mellow/internal/mem"
	"mellow/internal/metrics"
	"mellow/internal/sim"
	"mellow/internal/trace"
)

// pendingLoad is an in-flight load occupying the ROB (and an MSHR when
// it went to memory).
type pendingLoad struct {
	num      uint64       // instruction number
	req      *mem.Request // nil for L2/L3 hits
	fallback sim.Tick     // completion time when req is nil
}

// loadRing is the FIFO of ROB-resident loads, backed by a reusable
// power-of-two ring. The previous plain-slice FIFO re-sliced on every
// pop, so each later append reallocated — one allocation per retired
// load; the ring allocates only when the ROB's high-water mark grows.
type loadRing struct {
	buf  []pendingLoad
	head int
	n    int
}

func (r *loadRing) len() int              { return r.n }
func (r *loadRing) front() *pendingLoad   { return &r.buf[r.head] }
func (r *loadRing) at(i int) *pendingLoad { return &r.buf[(r.head+i)&(len(r.buf)-1)] }
func (r *loadRing) popFront() (p pendingLoad) {
	p = r.buf[r.head]
	r.buf[r.head] = pendingLoad{} // drop the *mem.Request reference
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return p
}

func (r *loadRing) pushBack(p pendingLoad) {
	if r.n == len(r.buf) {
		nb := make([]pendingLoad, max(16, 2*len(r.buf)))
		for i := 0; i < r.n; i++ {
			nb[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
		}
		r.buf, r.head = nb, 0
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = p
	r.n++
}

// reqRing mirrors the subsequence of ROB-resident loads that carry a
// memory request, in the same FIFO order. The MSHR occupancy checks run
// once per step (and once per stall iteration); scanning just the
// req-bearing loads instead of the whole ROB window turns the dominant
// per-step cost into a walk over at most a few MSHRs' worth of entries.
type reqRing struct {
	buf  []*mem.Request
	head int
	n    int
}

func (r *reqRing) popFront() {
	r.buf[r.head] = nil
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
}

func (r *reqRing) pushBack(q *mem.Request) {
	if r.n == len(r.buf) {
		nb := make([]*mem.Request, max(16, 2*len(r.buf)))
		for i := 0; i < r.n; i++ {
			nb[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
		}
		r.buf, r.head = nb, 0
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = q
	r.n++
}

// pending counts entries whose request has not completed.
func (r *reqRing) pending() int {
	n := 0
	mask := len(r.buf) - 1
	for i := 0; i < r.n; i++ {
		if !r.buf[(r.head+i)&mask].Done() {
			n++
		}
	}
	return n
}

// Core drives the cache hierarchy and memory controller from a workload
// trace. One tick is one core cycle.
type Core struct {
	cfg  config.CPU
	hier *cache.Hierarchy
	ctl  *mem.Controller
	gen  trace.Generator

	width     float64
	robSize   uint64
	loadMSHRs int // demand loads (L1 miss-status file)
	mshrLimit int // every outstanding memory read (LLC MSHRs)

	cycles   float64 // dispatch/retire cursor, in cycles (= ticks)
	instrs   uint64
	loads    loadRing       // FIFO of ROB-resident loads
	loadReqs reqRing        // the req-bearing subsequence of loads
	fetches  []*mem.Request // store-allocate fetches (MSHR only)
	// Dependence chain state: the most recent load is either a resolved
	// completion time or a still-pending memory request.
	lastLoad    sim.Tick
	lastLoadReq *mem.Request
	pf          *prefetcher

	baseCycles float64 // measurement window start
	baseInstrs uint64
}

// New builds a core over an already-wired hierarchy and controller.
func New(cfg config.Config, hier *cache.Hierarchy, ctl *mem.Controller, gen trace.Generator) *Core {
	return &Core{
		cfg:       cfg.CPU,
		hier:      hier,
		ctl:       ctl,
		gen:       gen,
		width:     float64(cfg.CPU.IssueWidth),
		robSize:   uint64(cfg.CPU.ROBEntries),
		loadMSHRs: cfg.Caches.L1.MSHRs,
		mshrLimit: cfg.Caches.L3.MSHRs,
		pf:        newPrefetcher(4),
	}
}

// now returns the dispatch cursor as a tick.
func (c *Core) now() sim.Tick { return sim.Tick(c.cycles) }

// complete resolves a pending load's completion time, advancing the
// memory clock as needed.
func (c *Core) complete(p pendingLoad) sim.Tick {
	if p.req == nil {
		return p.fallback
	}
	return c.ctl.WaitRead(p.req)
}

// sweep retires finished loads and fetches from the head of the queues
// without waiting.
func (c *Core) sweep() {
	for c.loads.len() > 0 {
		p := c.loads.front()
		if p.req != nil {
			if !p.req.Done() {
				break
			}
		} else if p.fallback > c.now() {
			break
		}
		c.popLoad()
	}
	keep := c.fetches[:0]
	for _, r := range c.fetches {
		if !r.Done() {
			keep = append(keep, r)
		}
	}
	c.fetches = keep
}

// loadsOutstanding counts unfinished demand loads that went to memory.
func (c *Core) loadsOutstanding() int { return c.loadReqs.pending() }

// memOutstanding counts LLC MSHR occupancy: demand loads, store-allocate
// fetches and prefetches share the miss-status file.
func (c *Core) memOutstanding() int {
	return len(c.fetches) + c.prefetchOutstanding() + c.loadReqs.pending()
}

// popLoad retires the FIFO head, keeping the req-bearing mirror in step.
func (c *Core) popLoad() pendingLoad {
	p := c.loads.popFront()
	if p.req != nil {
		c.loadReqs.popFront()
	}
	return p
}

// stallFor advances the pipeline cursor to t if it is ahead.
func (c *Core) stallFor(t sim.Tick) {
	if ft := float64(t); ft > c.cycles {
		c.cycles = ft
	}
}

// Run executes n instructions (dispatch-counted) and returns.
func (c *Core) Run(n uint64) { c.RunCancellable(n, nil) }

// cancelCheckMask sets the cancellation-checkpoint granularity: the run
// loop polls cancelled once per 1024 trace ops, keeping the overhead
// invisible next to the per-op simulation work.
const cancelCheckMask = 1<<10 - 1

// RunCancellable executes n instructions like Run but polls cancelled
// (if non-nil) at checkpoints, returning false as soon as it reports
// true. Instruction accounting is identical to Run, so a run that is
// never cancelled produces bit-identical results.
func (c *Core) RunCancellable(n uint64, cancelled func() bool) bool {
	end := c.instrs + n
	for steps := 0; c.instrs < end; steps++ {
		if cancelled != nil && steps&cancelCheckMask == 0 && cancelled() {
			return false
		}
		c.step()
	}
	return true
}

// Step consumes exactly one trace op (its gap plus one access). Multi-
// core co-simulation drives cores step-by-step in local-time order.
func (c *Core) Step() { c.step() }

// step consumes one trace op: its gap instructions plus one access.
func (c *Core) step() {
	op := c.gen.Next()

	// Dispatch bandwidth for the gap and the access itself.
	c.instrs += uint64(op.Gap) + 1
	c.cycles += (float64(op.Gap) + 1) / c.width

	c.sweep()
	c.drainPrefetches()

	// ROB: the window cannot move past an incomplete load that is
	// ROBEntries behind the dispatch point.
	for c.loads.len() > 0 && c.loads.front().num+c.robSize <= c.instrs {
		c.stallFor(c.complete(c.popLoad()))
	}

	// MSHRs. Demand loads are bounded by the L1 miss-status file; the
	// total of loads, store-allocate fetches and prefetches is bounded
	// by the LLC's (stores and prefetches bypass the L1 MSHRs: stores
	// retire into write buffers, prefetches train at the LLC).
	for c.loadsOutstanding() >= c.loadMSHRs {
		c.stallFor(c.complete(c.popLoad()))
		c.sweep()
	}
	for c.memOutstanding() >= c.mshrLimit {
		if c.loads.len() > 0 && c.loads.front().req != nil {
			c.stallFor(c.complete(c.popLoad()))
		} else if len(c.fetches) > 0 {
			c.ctl.WaitRead(c.fetches[0])
			c.fetches = c.fetches[1:]
		} else if len(c.pf.inflight) > 0 {
			c.ctl.WaitRead(c.pf.inflight[0].req)
			c.drainPrefetches()
		} else {
			break
		}
		c.sweep()
	}

	// Dependent loads (pointer chase) cannot issue until the previous
	// load's value arrived; the chain serialises the window.
	if op.Dep && !op.Write {
		if c.lastLoadReq != nil {
			c.stallFor(c.ctl.WaitRead(c.lastLoadReq))
		} else {
			c.stallFor(c.lastLoad)
		}
	}

	// Keep the memory clock tracking the core during compute-heavy
	// stretches so eager writes and profiling continue.
	if t := c.now(); t > c.ctl.Now() {
		c.ctl.AdvanceTo(t)
	}

	res := c.hier.Access(op.Addr, op.Write)

	// LLC write-backs displaced by this access enter the write queue;
	// a full queue back-pressures the miss.
	for _, wb := range res.Writebacks {
		accepted := c.ctl.SubmitWrite(wb, c.now())
		c.stallFor(accepted)
	}

	latency := c.hitLatency(res.Hit)
	switch {
	case res.Fetch && op.Write:
		// Write-allocate fetch: occupies an MSHR, never blocks retire.
		r := c.demandRead(res.FetchAddr)
		c.fetches = append(c.fetches, r)
	case res.Fetch:
		r := c.demandRead(res.FetchAddr)
		c.loads.pushBack(pendingLoad{num: c.instrs, req: r})
		c.loadReqs.pushBack(r)
		c.lastLoadReq = r
	case !op.Write && res.Hit != cache.LevelL1:
		done := c.now() + sim.Tick(latency)
		c.loads.pushBack(pendingLoad{num: c.instrs, fallback: done})
		c.lastLoad, c.lastLoadReq = done, nil
	case !op.Write:
		c.lastLoad, c.lastLoadReq = c.now()+sim.Tick(latency), nil
	}
}

// demandRead issues a memory read for a demand miss, reusing an
// in-flight prefetch of the same line when one exists, and training the
// stream prefetcher.
func (c *Core) demandRead(line uint64) *mem.Request {
	confirmed := c.pf.observe(line)
	r := c.prefetchRequest(line)
	if r == nil {
		r = c.ctl.SubmitRead(line, c.now())
	}
	if confirmed {
		c.issuePrefetches(line)
	}
	return r
}

// hitLatency returns the load-to-use latency in cycles for a hit level.
func (c *Core) hitLatency(lv cache.Level) int {
	// Latencies accumulate down the hierarchy (Table I hit latencies).
	switch lv {
	case cache.LevelL1:
		return 2
	case cache.LevelL2:
		return 2 + 12
	default:
		return 2 + 12 + 35
	}
}

// ProbeCounters is the core's cumulative progress view, cheap enough to
// snapshot from an epoch probe without perturbing the pipeline model.
type ProbeCounters struct {
	Instructions uint64
	Cycles       float64
}

// ProbeCounters snapshots the dispatch cursor (field reads only).
func (c *Core) ProbeCounters() ProbeCounters {
	return ProbeCounters{Instructions: c.instrs, Cycles: c.cycles}
}

// Delta returns the counters accumulated since prev.
func (p ProbeCounters) Delta(prev ProbeCounters) ProbeCounters {
	return ProbeCounters{
		Instructions: p.Instructions - prev.Instructions,
		Cycles:       p.Cycles - prev.Cycles,
	}
}

// Instructions returns instructions dispatched so far.
func (c *Core) Instructions() uint64 { return c.instrs }

// Cycles returns the pipeline cursor in cycles.
func (c *Core) Cycles() float64 { return c.cycles }

// BeginMeasurement marks the end of warmup for IPC accounting.
func (c *Core) BeginMeasurement() {
	c.baseCycles = c.cycles
	c.baseInstrs = c.instrs
}

// MeasuredInstructions returns instructions dispatched since
// BeginMeasurement.
func (c *Core) MeasuredInstructions() uint64 { return c.instrs - c.baseInstrs }

// MeasuredCycles returns cycles elapsed since BeginMeasurement.
func (c *Core) MeasuredCycles() float64 { return c.cycles - c.baseCycles }

// IPC returns instructions per cycle over the measurement window.
func (c *Core) IPC() float64 {
	cycles := c.cycles - c.baseCycles
	if cycles <= 0 {
		return 0
	}
	return float64(c.instrs-c.baseInstrs) / cycles
}

// CollectMetrics publishes the core's cumulative counters into a
// per-run metrics registry. Read-only: it is a snapshot-time collector
// and must never perturb the pipeline model.
func (c *Core) CollectMetrics(g *metrics.Gatherer) {
	g.Counter("sim_cpu_instructions_total", "Instructions dispatched since construction.", c.instrs)
	g.Gauge("sim_cpu_cycles", "Core cycles consumed since construction.", c.cycles)
	g.Counter("sim_cpu_instructions_measured_total", "Instructions retired inside the measured window.", c.MeasuredInstructions())
	g.Gauge("sim_cpu_cycles_measured", "Core cycles consumed inside the measured window.", c.MeasuredCycles())
}
