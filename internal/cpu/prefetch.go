package cpu

import "mellow/internal/mem"

// prefetcher is a confirmed next-line stream prefetcher attached to the
// LLC: when a demand miss for line X follows a recent miss for X-1 or
// X-2, the lines X+1..X+degree are fetched into the LLC. It gives the
// streaming workloads the memory-level parallelism a gem5-class setup
// has, so the bandwidth pressure that makes slow writes expensive
// (Figure 2: stream, lbm) is reproduced. Prefetches share the demand
// MSHRs — the issue path stops when the miss-status file is full — and
// install on completion.
type prefetcher struct {
	recent    [64]uint64 // ring of recent demand-miss line addresses
	recentIdx int
	inflight  []pfEntry               // FIFO, drained in order (determinism)
	index     map[uint64]*mem.Request // dedup / hit-under-prefetch lookup
	degree    int
}

type pfEntry struct {
	line uint64
	req  *mem.Request
}

func newPrefetcher(degree int) *prefetcher {
	return &prefetcher{index: make(map[uint64]*mem.Request), degree: degree}
}

// observe records a demand miss and reports whether it confirms a
// sequential stream.
func (p *prefetcher) observe(line uint64) bool {
	confirmed := false
	for _, r := range p.recent {
		if r == line-1 || r == line-2 {
			confirmed = true
			break
		}
	}
	p.recent[p.recentIdx] = line
	p.recentIdx = (p.recentIdx + 1) % len(p.recent)
	return confirmed
}

// issuePrefetches launches next-line fetches for a confirmed stream.
func (c *Core) issuePrefetches(line uint64) {
	for d := uint64(1); d <= uint64(c.pf.degree); d++ {
		if c.memOutstanding() >= c.mshrLimit {
			return
		}
		target := line + d
		if _, busy := c.pf.index[target]; busy || c.hier.Contains(target) {
			continue
		}
		r := c.ctl.SubmitRead(target, c.now())
		c.pf.index[target] = r
		c.pf.inflight = append(c.pf.inflight, pfEntry{line: target, req: r})
	}
}

// drainPrefetches installs completed prefetches into the LLC, pushing
// any displaced dirty victims to the write queue. Entries complete
// roughly in order; a stalled head blocks installation of later lines
// only until the next drain, which is harmless.
func (c *Core) drainPrefetches() {
	keep := c.pf.inflight[:0]
	for _, e := range c.pf.inflight {
		if !e.req.Done() {
			keep = append(keep, e)
			continue
		}
		delete(c.pf.index, e.line)
		for _, wb := range c.hier.InstallPrefetch(e.line) {
			c.ctl.SubmitWrite(wb, c.now())
		}
	}
	c.pf.inflight = keep
}

// prefetchRequest returns the in-flight prefetch covering a demand miss,
// if any (a hit-under-prefetch attaches the load to it instead of
// issuing a duplicate read).
func (c *Core) prefetchRequest(line uint64) *mem.Request {
	return c.pf.index[line]
}

// prefetchOutstanding counts prefetches holding MSHRs.
func (c *Core) prefetchOutstanding() int {
	n := 0
	for _, e := range c.pf.inflight {
		if !e.req.Done() {
			n++
		}
	}
	return n
}
