// Package cache implements the three-level cache hierarchy of Table I:
// set-associative true-LRU caches with write-back/write-allocate policy,
// an inclusive LLC with back-invalidation, and the LLC-side machinery of
// Eager Mellow Writes (§IV-B): per-LRU-position hit counters, the
// periodic useless-position profiler of Figure 7, and dirty-candidate
// selection (Figure 8).
package cache

import (
	"fmt"

	"mellow/internal/config"
)

// Line state bits in the flags array.
const (
	flagValid      = 1 << iota
	flagDirty      // holds data memory has not seen
	flagEagerClean // cleaned by an eager mellow write-back, not re-dirtied yet
)

// Cache is one cache level. Lines live in flat struct-of-arrays storage:
// slot set*ways+i holds the line at LRU stack position i of that set, so
// a line's slot offset within its set IS its stack position — which the
// LLC profiler depends on (§IV-B1). An LRU touch shifts a few array
// entries instead of reordering a slice of 32-byte structs, and the whole
// level is three allocations instead of one per set.
//
// Lines store the full line address (byte address >> 6) rather than a
// set-relative tag; comparisons are equally cheap and reverse mapping for
// eager write-back is free.
type Cache struct {
	cfg     config.Cache
	ways    int
	nsets   int
	setMask uint64

	addrs []uint64 // line address per slot
	last  []uint64 // access-clock value at last demand use, per slot
	flags []uint8  // flagValid | flagDirty | flagEagerClean, per slot

	hits     uint64
	misses   uint64
	acc      uint64
	touches  uint64 // monotone logical clock for decay prediction
	fills    uint64
	evicts   uint64
	dirtyEv  uint64
	profiler *Profiler // non-nil on the LLC only
}

// New builds a cache level from its configuration.
func New(cfg config.Cache) *Cache {
	nsets := cfg.Sets()
	n := nsets * cfg.Ways
	return &Cache{
		cfg:     cfg,
		ways:    cfg.Ways,
		nsets:   nsets,
		setMask: uint64(nsets - 1),
		addrs:   make([]uint64, n),
		last:    make([]uint64, n),
		flags:   make([]uint8, n),
	}
}

// base returns the first slot of the set holding addr.
func (c *Cache) base(addr uint64) int { return int(addr&c.setMask) * c.ways }

// find returns the stack position holding addr within the set at base,
// or -1. This is the hottest loop in the simulator; it reads only the
// two small per-set array stripes.
func (c *Cache) find(base int, addr uint64) int {
	for i := 0; i < c.ways; i++ {
		if c.addrs[base+i] == addr && c.flags[base+i]&flagValid != 0 {
			return i
		}
	}
	return -1
}

// touch moves the line at stack position i of the set at base to MRU.
func (c *Cache) touch(base, i int) {
	a, la, f := c.addrs[base+i], c.last[base+i], c.flags[base+i]
	copy(c.addrs[base+1:base+i+1], c.addrs[base:base+i])
	copy(c.last[base+1:base+i+1], c.last[base:base+i])
	copy(c.flags[base+1:base+i+1], c.flags[base:base+i])
	c.addrs[base], c.last[base], c.flags[base] = a, la, f
}

// shiftIn pushes positions [0,i) of the set at base down one and writes
// the new line at MRU.
func (c *Cache) shiftIn(base, i int, addr, last uint64, flags uint8) {
	copy(c.addrs[base+1:base+i+1], c.addrs[base:base+i])
	copy(c.last[base+1:base+i+1], c.last[base:base+i])
	copy(c.flags[base+1:base+i+1], c.flags[base:base+i])
	c.addrs[base], c.last[base], c.flags[base] = addr, last, flags
}

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// Config returns the level's configuration.
func (c *Cache) Config() config.Cache { return c.cfg }

// Hits and Misses return demand access counts since the last ResetStats.
func (c *Cache) Hits() uint64   { return c.hits }
func (c *Cache) Misses() uint64 { return c.misses }

// Accesses returns total demand accesses.
func (c *Cache) Accesses() uint64 { return c.acc }

// DirtyEvictions returns the count of dirty victims produced.
func (c *Cache) DirtyEvictions() uint64 { return c.dirtyEv }

// lookup performs a demand access. On a hit the line moves to MRU and is
// dirtied if write; wasEagerClean reports that a write re-dirtied a line
// an eager write-back had cleaned (a wasted eager write).
func (c *Cache) lookup(addr uint64, write bool) (hit, wasEagerClean bool) {
	c.acc++
	base := c.base(addr)
	i := c.find(base, addr)
	if i < 0 {
		c.misses++
		if c.profiler != nil {
			c.profiler.miss++
		}
		return false, false
	}
	c.hits++
	if c.profiler != nil {
		c.profiler.hit[i]++
	}
	c.touch(base, i)
	c.touches++
	c.last[base] = c.touches
	if write {
		wasEagerClean = c.flags[base]&flagEagerClean != 0
		c.flags[base] = c.flags[base]&^flagEagerClean | flagDirty
	}
	return true, wasEagerClean
}

// install allocates a line (after a fill from the next level or an
// incoming write-back from the previous one) and returns the victim, if
// any valid line was displaced.
func (c *Cache) install(addr uint64, dirty bool) (victimAddr uint64, victimValid, victimDirty bool) {
	c.fills++
	c.touches++
	f := uint8(flagValid)
	if dirty {
		f |= flagDirty
	}
	base := c.base(addr)
	// Prefer filling an invalid way; the LRU-most invalid way is as good
	// as any.
	for i := c.ways - 1; i >= 0; i-- {
		if c.flags[base+i]&flagValid == 0 {
			c.shiftIn(base, i, addr, c.touches, f)
			return 0, false, false
		}
	}
	victimAddr = c.addrs[base+c.ways-1]
	victimDirty = c.flags[base+c.ways-1]&flagDirty != 0
	c.shiftIn(base, c.ways-1, addr, c.touches, f)
	c.evicts++
	if victimDirty {
		c.dirtyEv++
	}
	return victimAddr, true, victimDirty
}

// mergeWriteback handles a dirty line arriving from the level above: on
// hit the existing copy is dirtied (without promoting to MRU — a
// write-back is not a demand use); on miss the caller must install.
func (c *Cache) mergeWriteback(addr uint64) bool {
	base := c.base(addr)
	if i := c.find(base, addr); i >= 0 {
		c.flags[base+i] = c.flags[base+i]&^flagEagerClean | flagDirty
		return true
	}
	return false
}

// invalidate removes addr if present, reporting whether the dropped copy
// was dirty (the caller merges that into the outgoing write-back). The
// hole stays at the line's stack position until an install shifts past
// it, exactly like the pre-flattening slice implementation.
func (c *Cache) invalidate(addr uint64) (present, dirty bool) {
	base := c.base(addr)
	i := c.find(base, addr)
	if i < 0 {
		return false, false
	}
	dirty = c.flags[base+i]&flagDirty != 0
	c.addrs[base+i], c.last[base+i], c.flags[base+i] = 0, 0, 0
	return true, dirty
}

// contains reports whether addr is cached (tests and invariants).
func (c *Cache) contains(addr uint64) bool { return c.find(c.base(addr), addr) >= 0 }

// ResetStats zeroes the demand counters (end of warmup). Profiler counts
// are left alone: the profiler follows its own sampling periods.
func (c *Cache) ResetStats() {
	c.hits, c.misses, c.acc, c.fills, c.evicts, c.dirtyEv = 0, 0, 0, 0, 0, 0
}

// DirtyLines counts dirty lines currently resident (tests).
func (c *Cache) DirtyLines() int {
	n := 0
	for _, f := range c.flags {
		if f&(flagValid|flagDirty) == flagValid|flagDirty {
			n++
		}
	}
	return n
}

func (c *Cache) String() string {
	return fmt.Sprintf("cache{%dKB %d-way, %d sets}", c.cfg.SizeBytes>>10, c.cfg.Ways, c.nsets)
}
