// Package cache implements the three-level cache hierarchy of Table I:
// set-associative true-LRU caches with write-back/write-allocate policy,
// an inclusive LLC with back-invalidation, and the LLC-side machinery of
// Eager Mellow Writes (§IV-B): per-LRU-position hit counters, the
// periodic useless-position profiler of Figure 7, and dirty-candidate
// selection (Figure 8).
package cache

import (
	"fmt"

	"mellow/internal/config"
)

// line is one cache line. Lines store the full line address (byte address
// >> 6) rather than a set-relative tag; comparisons are equally cheap and
// reverse mapping for eager write-back is free.
type line struct {
	addr       uint64
	valid      bool
	dirty      bool
	eagerClean bool   // cleaned by an eager mellow write-back, not re-dirtied yet
	lastTouch  uint64 // value of the cache's access counter at last demand use
}

// set is one associativity set, ordered MRU (index 0) → LRU (index
// ways-1). The index of a line is exactly its LRU stack position, which
// the LLC profiler depends on (§IV-B1).
type set struct {
	ways []line
}

// find returns the way index (LRU stack position) holding addr, or -1.
func (s *set) find(addr uint64) int {
	for i := range s.ways {
		if s.ways[i].valid && s.ways[i].addr == addr {
			return i
		}
	}
	return -1
}

// touch moves the line at position i to MRU and returns a pointer to it.
func (s *set) touch(i int) *line {
	l := s.ways[i]
	copy(s.ways[1:i+1], s.ways[:i])
	s.ways[0] = l
	return &s.ways[0]
}

// insert places a new line at MRU, returning the evicted victim (valid
// only if the set was full of valid lines).
func (s *set) insert(l line) (victim line) {
	// Prefer filling an invalid way; the LRU-most invalid way is as good
	// as any.
	for i := len(s.ways) - 1; i >= 0; i-- {
		if !s.ways[i].valid {
			copy(s.ways[1:i+1], s.ways[:i])
			s.ways[0] = l
			return line{}
		}
	}
	victim = s.ways[len(s.ways)-1]
	copy(s.ways[1:], s.ways[:len(s.ways)-1])
	s.ways[0] = l
	return victim
}

// Cache is one cache level.
type Cache struct {
	cfg      config.Cache
	sets     []set
	setMask  uint64
	hits     uint64
	misses   uint64
	acc      uint64
	touches  uint64 // monotone logical clock for decay prediction
	fills    uint64
	evicts   uint64
	dirtyEv  uint64
	profiler *Profiler // non-nil on the LLC only
}

// New builds a cache level from its configuration.
func New(cfg config.Cache) *Cache {
	nsets := cfg.Sets()
	c := &Cache{cfg: cfg, sets: make([]set, nsets), setMask: uint64(nsets - 1)}
	for i := range c.sets {
		c.sets[i].ways = make([]line, cfg.Ways)
	}
	return c
}

// setFor returns the set for a line address.
func (c *Cache) setFor(addr uint64) *set { return &c.sets[addr&c.setMask] }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.cfg.Ways }

// Config returns the level's configuration.
func (c *Cache) Config() config.Cache { return c.cfg }

// Hits and Misses return demand access counts since the last ResetStats.
func (c *Cache) Hits() uint64   { return c.hits }
func (c *Cache) Misses() uint64 { return c.misses }

// Accesses returns total demand accesses.
func (c *Cache) Accesses() uint64 { return c.acc }

// DirtyEvictions returns the count of dirty victims produced.
func (c *Cache) DirtyEvictions() uint64 { return c.dirtyEv }

// lookup performs a demand access. On a hit the line moves to MRU and is
// dirtied if write; wasEagerClean reports that a write re-dirtied a line
// an eager write-back had cleaned (a wasted eager write).
func (c *Cache) lookup(addr uint64, write bool) (hit, wasEagerClean bool) {
	c.acc++
	s := c.setFor(addr)
	i := s.find(addr)
	if i < 0 {
		c.misses++
		if c.profiler != nil {
			c.profiler.miss++
		}
		return false, false
	}
	c.hits++
	if c.profiler != nil {
		c.profiler.hit[i]++
	}
	l := s.touch(i)
	c.touches++
	l.lastTouch = c.touches
	if write {
		wasEagerClean = l.eagerClean
		l.dirty = true
		l.eagerClean = false
	}
	return true, wasEagerClean
}

// install allocates a line (after a fill from the next level or an
// incoming write-back from the previous one) and returns the victim, if
// any valid line was displaced.
func (c *Cache) install(addr uint64, dirty bool) (victimAddr uint64, victimValid, victimDirty bool) {
	c.fills++
	c.touches++
	v := c.setFor(addr).insert(line{addr: addr, valid: true, dirty: dirty, lastTouch: c.touches})
	if v.valid {
		c.evicts++
		if v.dirty {
			c.dirtyEv++
		}
	}
	return v.addr, v.valid, v.dirty
}

// mergeWriteback handles a dirty line arriving from the level above: on
// hit the existing copy is dirtied (without promoting to MRU — a
// write-back is not a demand use); on miss the caller must install.
func (c *Cache) mergeWriteback(addr uint64) bool {
	s := c.setFor(addr)
	if i := s.find(addr); i >= 0 {
		s.ways[i].dirty = true
		s.ways[i].eagerClean = false
		return true
	}
	return false
}

// invalidate removes addr if present, reporting whether the dropped copy
// was dirty (the caller merges that into the outgoing write-back).
func (c *Cache) invalidate(addr uint64) (present, dirty bool) {
	s := c.setFor(addr)
	i := s.find(addr)
	if i < 0 {
		return false, false
	}
	dirty = s.ways[i].dirty
	s.ways[i] = line{}
	return true, dirty
}

// contains reports whether addr is cached (tests and invariants).
func (c *Cache) contains(addr uint64) bool { return c.setFor(addr).find(addr) >= 0 }

// ResetStats zeroes the demand counters (end of warmup). Profiler counts
// are left alone: the profiler follows its own sampling periods.
func (c *Cache) ResetStats() {
	c.hits, c.misses, c.acc, c.fills, c.evicts, c.dirtyEv = 0, 0, 0, 0, 0, 0
}

// DirtyLines counts dirty lines currently resident (tests).
func (c *Cache) DirtyLines() int {
	n := 0
	for si := range c.sets {
		for _, l := range c.sets[si].ways {
			if l.valid && l.dirty {
				n++
			}
		}
	}
	return n
}

func (c *Cache) String() string {
	return fmt.Sprintf("cache{%dKB %d-way, %d sets}", c.cfg.SizeBytes>>10, c.cfg.Ways, len(c.sets))
}
