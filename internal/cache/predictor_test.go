package cache

import (
	"testing"

	"mellow/internal/config"
	"mellow/internal/rng"
)

func decayTinyCfg() config.Hierarchy {
	cfg := tinyCfg()
	cfg.EagerPredictor = PredictorDecay
	cfg.DecayAccesses = 20
	return cfg
}

func TestDecayCandidateRequiresStaleness(t *testing.T) {
	h := NewHierarchy(decayTinyCfg(), rng.New(1))
	// Dirty a line, then keep touching it: never stale, never a candidate.
	h.Access(addr(3), true)
	for i := 0; i < 200; i++ {
		h.Access(addr(3), false)
		if a, ok := h.EagerCandidate(); ok {
			t.Fatalf("hot dirty line %d offered as decay candidate", a)
		}
	}
}

func TestDecayCandidateFindsStaleDirtyLines(t *testing.T) {
	h := NewHierarchy(decayTinyCfg(), rng.New(1))
	// Dirty a line that will settle into L3 via conflicts, then age it
	// with unrelated reads.
	for _, l := range []uint64{0, 4, 8, 16, 24} {
		h.Access(addr(l), true)
	}
	for l := uint64(100); l < 160; l++ {
		h.Access(addr(l), false)
	}
	found := false
	for i := 0; i < 3000 && !found; i++ {
		if _, ok := h.EagerCandidate(); ok {
			found = true
		}
	}
	if !found {
		t.Fatal("decay predictor never surfaced a stale dirty line")
	}
}

func TestDecayCandidateMarksClean(t *testing.T) {
	c := New(config.Cache{SizeBytes: 256, Ways: 2, HitLatency: 1, MSHRs: 1})
	c.install(0, true)
	// Age the line far past any threshold.
	for i := 0; i < 100; i++ {
		c.install(uint64(2+2*i), false) // other set? 2 sets: even lines map set 0... use odd
	}
	src := rng.New(2)
	got := false
	for i := 0; i < 200; i++ {
		if a, ok := c.EagerCandidateDecay(src, 10); ok {
			if a != 0 {
				t.Fatalf("unexpected candidate %d", a)
			}
			got = true
			break
		}
	}
	if !got {
		t.Skip("random set selection missed; acceptable for 2-set cache")
	}
	// Second selection must not return the same (now clean) line.
	for i := 0; i < 200; i++ {
		if a, ok := c.EagerCandidateDecay(src, 10); ok && a == 0 {
			t.Fatal("cleaned line offered twice")
		}
	}
}

func TestDecayPrefersStalest(t *testing.T) {
	c := New(config.Cache{SizeBytes: 512, Ways: 8, HitLatency: 1, MSHRs: 1}) // 1 set × 8 ways
	c.install(10, true)                                                      // oldest dirty
	c.install(20, false)
	c.install(30, true) // newer dirty
	for i := 0; i < 50; i++ {
		c.lookup(20, false) // age both dirty lines
	}
	src := rng.New(3)
	a, ok := c.EagerCandidateDecay(src, 5)
	if !ok {
		t.Fatal("no candidate found")
	}
	if a != 10 {
		t.Errorf("candidate = %d, want stalest dirty line 10", a)
	}
}

func TestTouchClockAdvances(t *testing.T) {
	c := New(config.Cache{SizeBytes: 512, Ways: 8, HitLatency: 1, MSHRs: 1})
	before := c.Touches()
	c.install(1, false)
	c.lookup(1, false)
	if c.Touches() != before+2 {
		t.Errorf("touch clock advanced by %d, want 2", c.Touches()-before)
	}
}

func TestHierarchyPredictorSelection(t *testing.T) {
	for _, pred := range []string{PredictorLRUProfile, PredictorDecay, ""} {
		cfg := tinyCfg()
		cfg.EagerPredictor = pred
		h := NewHierarchy(cfg, rng.New(1))
		// Must not panic regardless of predictor.
		h.Access(addr(1), true)
		h.EagerCandidate()
	}
}
