package cache

import (
	"encoding/json"
	"reflect"
	"testing"
)

// TestStatsJSONRoundTrip checks the Stats counters survive the JSON
// encoding the mellowd API serves them through.
func TestStatsJSONRoundTrip(t *testing.T) {
	want := Stats{
		DemandReads: 1000, DemandWrites: 400, LLCMisses: 90,
		MemFetches: 90, MemWritebacks: 35, EagerIssued: 12, WastedEager: 2,
		L1Hits: 900, L1Misses: 500,
		L2Hits: 300, L2Misses: 200,
		L3Hits: 110, L3Misses: 90,
	}
	b, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	var got Stats
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("round trip changed the stats:\nwant %+v\ngot  %+v", want, got)
	}
}

// TestStatsJSONFieldNames pins the wire names the API contract exposes:
// every counter appears under its Go field name.
func TestStatsJSONFieldNames(t *testing.T) {
	b, err := json.Marshal(Stats{LLCMisses: 7})
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"DemandReads", "DemandWrites", "LLCMisses", "MemFetches",
		"MemWritebacks", "EagerIssued", "WastedEager",
		"L1Hits", "L1Misses", "L2Hits", "L2Misses", "L3Hits", "L3Misses",
	} {
		if _, ok := m[name]; !ok {
			t.Errorf("encoded stats missing %q: %s", name, b)
		}
	}
	if v, ok := m["LLCMisses"].(float64); !ok || v != 7 {
		t.Errorf("LLCMisses = %v, want 7", m["LLCMisses"])
	}
}
