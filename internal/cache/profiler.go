package cache

import "mellow/internal/rng"

// Profiler is the Eager Mellow Writes useless-line detector of §IV-B1.
//
// One hit counter per LRU stack position (shared across all sets) plus a
// single miss counter are updated on every LLC request. Every T_sample
// the profiler finds the *eager LRU position*: the lowest stack position
// such that the positions from it to the bottom of the stack together
// received less than THRESHOLD_RATIO (1/32) of all requests. Dirty lines
// at or beyond that position are considered useless and may be eagerly
// written back. Counters then reset for the next period.
//
// Storage cost matches the paper's §IV-E estimate: one counter per way
// plus a miss counter and a cycle counter — 360 bits for a 16-way LLC.
type Profiler struct {
	hit       []uint64
	miss      uint64
	ratio     float64
	eagerPos  int // positions >= eagerPos are useless
	rotations uint64
}

// NewProfiler creates a profiler for an LLC with the given associativity
// and threshold ratio. Before the first rotation no position is useless
// (eagerPos == ways): the scheme has no evidence yet.
func NewProfiler(ways int, ratio float64) *Profiler {
	return &Profiler{hit: make([]uint64, ways), ratio: ratio, eagerPos: ways}
}

// EagerPos returns the current eager LRU position; stack positions at or
// beyond it are useless until the next rotation.
func (p *Profiler) EagerPos() int { return p.eagerPos }

// Rotations returns how many sampling periods have completed.
func (p *Profiler) Rotations() uint64 { return p.rotations }

// Rotate closes a sampling period: recompute the eager position from the
// counters, then reset them.
func (p *Profiler) Rotate() {
	total := p.miss
	for _, h := range p.hit {
		total += h
	}
	n := len(p.hit)
	if total == 0 {
		// No traffic this period: no evidence, no eager write-backs.
		p.eagerPos = n
	} else {
		bound := p.ratio * float64(total)
		cum := uint64(0)
		pos := n
		for i := n - 1; i >= 0; i-- {
			if float64(cum+p.hit[i]) >= bound {
				break
			}
			cum += p.hit[i]
			pos = i
		}
		p.eagerPos = pos
	}
	for i := range p.hit {
		p.hit[i] = 0
	}
	p.miss = 0
	p.rotations++
}

// Counters returns a copy of the in-period hit counters and the miss
// count (for tests and debugging dumps).
func (p *Profiler) Counters() (hits []uint64, misses uint64) {
	return append([]uint64(nil), p.hit...), p.miss
}

// EagerCandidate picks an eager write-back candidate from the LLC per
// Figure 8: choose a random set; among its dirty lines at useless LRU
// positions take the least recently used; mark it clean (it is *not*
// evicted) and return its line address.
func (c *Cache) EagerCandidate(src *rng.Source) (addr uint64, ok bool) {
	p := c.profiler
	if p == nil {
		panic("cache: EagerCandidate on a level without a profiler")
	}
	if p.eagerPos >= c.ways {
		return 0, false
	}
	base := int(src.Uintn(uint64(c.nsets))) * c.ways
	for i := c.ways - 1; i >= p.eagerPos; i-- {
		f := c.flags[base+i]
		if f&(flagValid|flagDirty) == flagValid|flagDirty {
			c.flags[base+i] = f&^flagDirty | flagEagerClean
			return c.addrs[base+i], true
		}
	}
	return 0, false
}

// AttachProfiler makes this cache level the LLC: demand accesses update
// the LRU-position counters and EagerCandidate becomes available.
func (c *Cache) AttachProfiler(ratio float64) *Profiler {
	c.profiler = NewProfiler(c.ways, ratio)
	return c.profiler
}

// Profiler returns the attached profiler, or nil.
func (c *Cache) Profiler() *Profiler { return c.profiler }
