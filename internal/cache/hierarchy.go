package cache

import (
	"mellow/internal/config"
	"mellow/internal/metrics"
	"mellow/internal/rng"
)

// Level identifies where an access was satisfied.
type Level int

// Hit levels; LevelMemory means the LLC missed.
const (
	LevelL1 Level = iota + 1
	LevelL2
	LevelL3
	LevelMemory
)

// Access is the outcome of one demand access: where it hit, whether a
// memory fetch is required (LLC miss, including write-allocate fetches),
// and which dirty lines were pushed out of the LLC towards memory.
type Access struct {
	Hit        Level
	Fetch      bool
	FetchAddr  uint64   // line address to fetch when Fetch
	Writebacks []uint64 // line addresses evicted dirty from the LLC
}

// Hierarchy is the three-level write-back write-allocate cache hierarchy
// with an inclusive, back-invalidating LLC.
type Hierarchy struct {
	L1, L2, L3 *Cache
	eagerRNG   *rng.Source
	predictor  string
	decayAge   uint64

	wbScratch []uint64 // reused across accesses to avoid per-access allocs

	demandReads   uint64
	demandWrites  uint64
	llcMisses     uint64
	memFetches    uint64
	memWritebacks uint64
	eagerIssued   uint64
	wastedEager   uint64
}

// NewHierarchy builds the hierarchy from the Table I configuration. The
// profiler threshold and the eager candidate RNG come from cfg and src.
func NewHierarchy(cfg config.Hierarchy, src *rng.Source) *Hierarchy {
	h := &Hierarchy{
		L1:        New(cfg.L1),
		L2:        New(cfg.L2),
		L3:        New(cfg.L3),
		eagerRNG:  src,
		predictor: cfg.EagerPredictor,
		decayAge:  cfg.DecayAccesses,
	}
	if h.predictor == "" {
		h.predictor = PredictorLRUProfile
	}
	h.L3.AttachProfiler(cfg.UselessHitRatio)
	return h
}

// Access performs one demand access at a byte address. The returned
// slice aliases internal scratch and is only valid until the next call.
func (h *Hierarchy) Access(byteAddr uint64, write bool) Access {
	addr := byteAddr >> 6 // line address
	if write {
		h.demandWrites++
	} else {
		h.demandReads++
	}
	h.wbScratch = h.wbScratch[:0]

	if hit, _ := h.L1.lookup(addr, write); hit {
		return Access{Hit: LevelL1}
	}
	if hit, _ := h.L2.lookup(addr, false); hit {
		h.fillUpper(addr, write, false)
		return Access{Hit: LevelL2, Writebacks: h.wbScratch}
	}
	if hit, _ := h.L3.lookup(addr, false); hit {
		h.fillUpper(addr, write, true)
		return Access{Hit: LevelL3, Writebacks: h.wbScratch}
	}
	// LLC miss: fetch from memory, allocate in all levels.
	h.llcMisses++
	h.memFetches++
	h.installL3(addr, false)
	h.fillUpper(addr, write, true)
	return Access{Hit: LevelMemory, Fetch: true, FetchAddr: addr, Writebacks: h.wbScratch}
}

// fillUpper allocates addr into L1 (always) and L2 (when the hit came
// from L3 or memory), cascading any dirty victims downwards. A store
// dirties the L1 copy.
func (h *Hierarchy) fillUpper(addr uint64, write, fillL2 bool) {
	if fillL2 {
		h.installL2(addr, false)
	}
	if v, ok, dirty := h.L1.install(addr, write); ok && dirty {
		h.writebackToL2(v)
	}
}

// writebackToL2 delivers a dirty L1 victim to L2.
func (h *Hierarchy) writebackToL2(addr uint64) {
	if h.L2.mergeWriteback(addr) {
		return
	}
	h.installL2(addr, true)
}

// installL2 allocates in L2, cascading a dirty victim to L3.
func (h *Hierarchy) installL2(addr uint64, dirty bool) {
	if v, ok, vdirty := h.L2.install(addr, dirty); ok && vdirty {
		h.writebackToL3(v)
	}
}

// writebackToL3 delivers a dirty L2 victim to L3, counting wasted eager
// write-backs (a dirty line landing on a copy an eager write had
// cleaned means that eager write was wasted, §VI-D).
func (h *Hierarchy) writebackToL3(addr uint64) {
	l3 := h.L3
	base := l3.base(addr)
	if i := l3.find(base, addr); i >= 0 {
		if l3.flags[base+i]&flagEagerClean != 0 {
			h.wastedEager++
		}
		l3.flags[base+i] = l3.flags[base+i]&^flagEagerClean | flagDirty
		return
	}
	h.installL3(addr, true)
}

// installL3 allocates in the LLC. Its victim is back-invalidated from
// the upper levels (inclusive LLC); a dirty copy anywhere becomes a
// memory write-back.
func (h *Hierarchy) installL3(addr uint64, dirty bool) {
	v, ok, vdirty := h.L3.install(addr, dirty)
	if !ok {
		return
	}
	if _, d1 := h.L1.invalidate(v); d1 {
		vdirty = true
	}
	if _, d2 := h.L2.invalidate(v); d2 {
		vdirty = true
	}
	if vdirty {
		h.memWritebacks++
		h.wbScratch = append(h.wbScratch, v)
	}
}

// Contains reports whether a line address is resident at any level
// (prefetcher duplicate suppression).
func (h *Hierarchy) Contains(addr uint64) bool {
	return h.L1.contains(addr) || h.L2.contains(addr) || h.L3.contains(addr)
}

// InstallPrefetch allocates a prefetched line into the LLC only (it was
// not demanded, so the upper levels are not polluted). Dirty LLC victims
// displaced by the prefetch are returned as write-backs; the slice
// aliases internal scratch, valid until the next Access/InstallPrefetch.
func (h *Hierarchy) InstallPrefetch(addr uint64) []uint64 {
	h.wbScratch = h.wbScratch[:0]
	if h.L3.contains(addr) {
		return nil
	}
	h.installL3(addr, false)
	return h.wbScratch
}

// EagerCandidate asks the LLC for a useless dirty line to eagerly write
// back (Figure 8), using the configured predictor. It returns the line
// address. The line is marked clean but stays resident.
func (h *Hierarchy) EagerCandidate() (addr uint64, ok bool) {
	if h.predictor == PredictorDecay {
		addr, ok = h.L3.EagerCandidateDecay(h.eagerRNG, h.decayAge)
	} else {
		addr, ok = h.L3.EagerCandidate(h.eagerRNG)
	}
	if ok {
		h.eagerIssued++
	}
	return addr, ok
}

// RotateProfile closes one T_sample profiling period (§IV-B1).
func (h *Hierarchy) RotateProfile() { h.L3.Profiler().Rotate() }

// ProbeCounters is the hierarchy's cumulative LLC traffic view, cheap
// enough to snapshot from an epoch probe (plain field reads, no walks).
type ProbeCounters struct {
	LLCHits      uint64
	LLCMisses    uint64
	LLCEvictions uint64 // dirty lines pushed to memory
	EagerIssued  uint64
	WastedEager  uint64
}

// ProbeCounters snapshots the LLC-facing counters.
func (h *Hierarchy) ProbeCounters() ProbeCounters {
	return ProbeCounters{
		LLCHits:      h.L3.Hits(),
		LLCMisses:    h.llcMisses,
		LLCEvictions: h.memWritebacks,
		EagerIssued:  h.eagerIssued,
		WastedEager:  h.wastedEager,
	}
}

// Delta returns the counters accumulated since prev.
func (p ProbeCounters) Delta(prev ProbeCounters) ProbeCounters {
	return ProbeCounters{
		LLCHits:      p.LLCHits - prev.LLCHits,
		LLCMisses:    p.LLCMisses - prev.LLCMisses,
		LLCEvictions: p.LLCEvictions - prev.LLCEvictions,
		EagerIssued:  p.EagerIssued - prev.EagerIssued,
		WastedEager:  p.WastedEager - prev.WastedEager,
	}
}

// Stats is a snapshot of hierarchy counters.
type Stats struct {
	DemandReads      uint64
	DemandWrites     uint64
	LLCMisses        uint64
	MemFetches       uint64
	MemWritebacks    uint64
	EagerIssued      uint64
	WastedEager      uint64
	L1Hits, L1Misses uint64
	L2Hits, L2Misses uint64
	L3Hits, L3Misses uint64
}

// Snapshot returns the counters since the last ResetStats.
func (h *Hierarchy) Snapshot() Stats {
	return Stats{
		DemandReads:   h.demandReads,
		DemandWrites:  h.demandWrites,
		LLCMisses:     h.llcMisses,
		MemFetches:    h.memFetches,
		MemWritebacks: h.memWritebacks,
		EagerIssued:   h.eagerIssued,
		WastedEager:   h.wastedEager,
		L1Hits:        h.L1.Hits(), L1Misses: h.L1.Misses(),
		L2Hits: h.L2.Hits(), L2Misses: h.L2.Misses(),
		L3Hits: h.L3.Hits(), L3Misses: h.L3.Misses(),
	}
}

// ResetStats zeroes all counters (end of warmup); cache contents are
// preserved.
func (h *Hierarchy) ResetStats() {
	h.demandReads, h.demandWrites, h.llcMisses = 0, 0, 0
	h.memFetches, h.memWritebacks, h.eagerIssued, h.wastedEager = 0, 0, 0, 0
	h.L1.ResetStats()
	h.L2.ResetStats()
	h.L3.ResetStats()
}

// CollectMetrics publishes the hierarchy's counters into a per-run
// metrics registry. Read-only: it walks no sets and touches no
// recency state, so collecting can never perturb the simulation.
func (h *Hierarchy) CollectMetrics(g *metrics.Gatherer) {
	g.Counter("sim_cache_demand_reads_total", "Demand reads entering the hierarchy since the last stats reset.", h.demandReads)
	g.Counter("sim_cache_demand_writes_total", "Demand writes entering the hierarchy since the last stats reset.", h.demandWrites)
	g.Counter("sim_cache_llc_misses_total", "LLC misses (memory fetches required).", h.llcMisses)
	g.Counter("sim_cache_mem_fetches_total", "Line fetches issued to memory.", h.memFetches)
	g.Counter("sim_cache_mem_writebacks_total", "Dirty lines pushed from the LLC to memory.", h.memWritebacks)
	g.Counter("sim_cache_eager_issued_total", "Eager write-backs issued by the predictor.", h.eagerIssued)
	g.Counter("sim_cache_eager_wasted_total", "Eager write-backs invalidated by a later dirtying (wasted).", h.wastedEager)
	for _, lv := range []struct {
		name string
		c    *Cache
	}{{"l1", h.L1}, {"l2", h.L2}, {"l3", h.L3}} {
		g.CounterL("sim_cache_hits_total", "Cache hits by level.", "level", lv.name, lv.c.Hits())
		g.CounterL("sim_cache_misses_total", "Cache misses by level.", "level", lv.name, lv.c.Misses())
	}
}
