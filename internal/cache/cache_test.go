package cache

import (
	"testing"
	"testing/quick"

	"mellow/internal/config"
	"mellow/internal/rng"
)

// tinyCfg is a small hierarchy that exercises evictions quickly:
// L1 4 sets×2 ways, L2 8×2, L3 16×4 (all lines = 64B).
func tinyCfg() config.Hierarchy {
	return config.Hierarchy{
		L1:              config.Cache{SizeBytes: 512, Ways: 2, HitLatency: 2, MSHRs: 8},
		L2:              config.Cache{SizeBytes: 1024, Ways: 2, HitLatency: 12, MSHRs: 12},
		L3:              config.Cache{SizeBytes: 4096, Ways: 4, HitLatency: 35, MSHRs: 32},
		UselessHitRatio: 1.0 / 32.0,
		ProfilePeriod:   1000,
	}
}

func newTiny(t *testing.T) *Hierarchy {
	t.Helper()
	for _, c := range []config.Cache{tinyCfg().L1, tinyCfg().L2, tinyCfg().L3} {
		if c.Sets()*c.Ways*config.LineBytes != c.SizeBytes {
			t.Fatalf("tiny config inconsistent: %+v", c)
		}
	}
	return NewHierarchy(tinyCfg(), rng.New(1))
}

func addr(line uint64) uint64 { return line << 6 }

func TestColdMissThenHit(t *testing.T) {
	h := newTiny(t)
	a := h.Access(addr(100), false)
	if a.Hit != LevelMemory || !a.Fetch || a.FetchAddr != 100 {
		t.Fatalf("cold access = %+v, want memory fetch of line 100", a)
	}
	a = h.Access(addr(100), false)
	if a.Hit != LevelL1 {
		t.Fatalf("second access hit %v, want L1", a.Hit)
	}
	s := h.Snapshot()
	if s.LLCMisses != 1 || s.MemFetches != 1 {
		t.Errorf("stats = %+v, want 1 LLC miss/fetch", s)
	}
}

func TestWriteAllocateAndWriteback(t *testing.T) {
	h := newTiny(t)
	// Store to a cold line: write-allocate fetches it.
	a := h.Access(addr(5), true)
	if !a.Fetch {
		t.Fatal("store miss must fetch (write-allocate)")
	}
	if h.L1.DirtyLines() != 1 {
		t.Fatalf("dirty L1 lines = %d, want 1", h.L1.DirtyLines())
	}
	// Stream enough distinct lines through to evict line 5 from every
	// level; its dirtiness must surface as exactly one memory writeback.
	wbs := 0
	for l := uint64(1000); l < 1200; l++ {
		r := h.Access(addr(l), false)
		for _, wb := range r.Writebacks {
			if wb == 5 {
				wbs++
			}
		}
	}
	if wbs != 1 {
		t.Errorf("line 5 written back %d times, want exactly 1", wbs)
	}
	if h.L1.contains(5) || h.L2.contains(5) || h.L3.contains(5) {
		t.Error("line 5 still resident after streaming eviction")
	}
}

func TestCleanEvictionsSilent(t *testing.T) {
	h := newTiny(t)
	for l := uint64(0); l < 500; l++ {
		r := h.Access(addr(l), false) // reads only: nothing is dirty
		if len(r.Writebacks) != 0 {
			t.Fatalf("clean read stream produced writeback of %v", r.Writebacks)
		}
	}
}

func TestLRUOrder(t *testing.T) {
	// With a 4-way L3 set, the 5th distinct line mapping to the same set
	// evicts the least recently used one.
	h := newTiny(t)
	sets := uint64(16)                             // L3 sets in tinyCfg
	lines := []uint64{0, sets, 2 * sets, 3 * sets} // all map to L3 set 0
	for _, l := range lines {
		h.Access(addr(l), false)
	}
	// Touch line 0 to make it MRU, then bring in a 5th line.
	h.Access(addr(0), false)
	h.Access(addr(4*sets), false)
	if !h.L3.contains(0) {
		t.Error("recently touched line 0 was evicted")
	}
	if h.L3.contains(sets) {
		t.Error("LRU line (sets) survived the conflict fill")
	}
}

func TestInclusionBackInvalidation(t *testing.T) {
	h := newTiny(t)
	// Fill line X everywhere, then force it out of L3 via set conflicts.
	const x = 0
	h.Access(addr(x), true) // dirty in L1
	sets := uint64(16)
	for k := uint64(1); k <= 4; k++ {
		h.Access(addr(k*sets), false) // same L3 set as x
	}
	if h.L3.contains(x) {
		t.Fatal("line x should have been evicted from L3")
	}
	if h.L1.contains(x) || h.L2.contains(x) {
		t.Error("back-invalidation did not remove x from upper levels")
	}
	// The dirty data in L1 must have been merged into a memory writeback.
	if h.Snapshot().MemWritebacks != 1 {
		t.Errorf("writebacks = %d, want 1 (merged dirty upper copy)", h.Snapshot().MemWritebacks)
	}
}

func TestHitLevels(t *testing.T) {
	h := newTiny(t)
	h.Access(addr(7), false) // memory
	// Evict from L1 only: two more lines in L1 set of 7 (L1 has 4 sets,
	// 2 ways): lines 7, 11, 15 share L1 set 3.
	h.Access(addr(11), false)
	h.Access(addr(15), false)
	got := h.Access(addr(7), false)
	if got.Hit == LevelL1 || got.Hit == LevelMemory {
		t.Fatalf("hit level = %v, want L2 or L3", got.Hit)
	}
}

func TestSnapshotAndReset(t *testing.T) {
	h := newTiny(t)
	for l := uint64(0); l < 64; l++ {
		h.Access(addr(l), l%2 == 0)
	}
	s := h.Snapshot()
	if s.DemandReads+s.DemandWrites != 64 {
		t.Errorf("demand = %d, want 64", s.DemandReads+s.DemandWrites)
	}
	if s.LLCMisses == 0 {
		t.Error("expected LLC misses")
	}
	h.ResetStats()
	s = h.Snapshot()
	if s.DemandReads != 0 || s.LLCMisses != 0 || s.MemWritebacks != 0 {
		t.Errorf("stats after reset = %+v", s)
	}
	// Contents preserved: line 63 still hits.
	if a := h.Access(addr(63), false); a.Hit == LevelMemory {
		t.Error("reset dropped cache contents")
	}
}

// Property: the hierarchy never loses a dirty line — every store's line
// either remains resident somewhere or has been written back exactly
// once since it was last dirtied.
func TestQuickNoLostDirtyLines(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		h := NewHierarchy(tinyCfg(), rng.New(2))
		dirty := map[uint64]bool{} // lines stored to and not yet written back
		for i := 0; i < 3000; i++ {
			l := src.Uintn(512)
			write := src.Bool(0.4)
			r := h.Access(addr(l), write)
			for _, wb := range r.Writebacks {
				if !dirty[wb] {
					return false // writeback of a line never dirtied
				}
				delete(dirty, wb)
			}
			if write {
				dirty[l] = true
			}
		}
		// Every still-dirty line must be resident somewhere.
		for l := range dirty {
			if !h.L1.contains(l) && !h.L2.contains(l) && !h.L3.contains(l) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestProfilerBoundary(t *testing.T) {
	p := NewProfiler(8, 1.0/32.0)
	// 1000 requests: positions 0-2 get nearly everything; positions 3+
	// get fewer than 1/32 of requests combined.
	p.hit[0], p.hit[1], p.hit[2] = 600, 250, 120
	p.hit[3], p.hit[4], p.hit[7] = 10, 5, 5
	p.miss = 10
	p.Rotate()
	if p.EagerPos() != 3 {
		t.Errorf("eager position = %d, want 3 (paper Figure 7 shape)", p.EagerPos())
	}
	// Counters reset after rotation.
	hits, misses := p.Counters()
	for _, v := range hits {
		if v != 0 {
			t.Fatal("hit counters not reset")
		}
	}
	if misses != 0 {
		t.Fatal("miss counter not reset")
	}
}

func TestProfilerAllHot(t *testing.T) {
	p := NewProfiler(4, 1.0/32.0)
	for i := range p.hit {
		p.hit[i] = 1000 // every position earns its keep
	}
	p.Rotate()
	if p.EagerPos() != 4 {
		t.Errorf("eager position = %d, want 4 (no useless positions)", p.EagerPos())
	}
}

func TestProfilerAllMisses(t *testing.T) {
	// A pure streaming period: all misses, no hits anywhere. Every
	// position is useless — dirty lines will never be re-used.
	p := NewProfiler(4, 1.0/32.0)
	p.miss = 10000
	p.Rotate()
	if p.EagerPos() != 0 {
		t.Errorf("eager position = %d, want 0 (all positions useless)", p.EagerPos())
	}
}

func TestProfilerNoTraffic(t *testing.T) {
	p := NewProfiler(4, 1.0/32.0)
	p.Rotate()
	if p.EagerPos() != 4 {
		t.Errorf("eager position = %d, want 4 (no evidence)", p.EagerPos())
	}
}

func TestEagerCandidateLifecycle(t *testing.T) {
	h := newTiny(t)
	// Dirty a bunch of lines that settle in L3.
	for l := uint64(0); l < 64; l++ {
		h.Access(addr(l), true)
	}
	// Make all positions useless (streaming profile).
	p := h.L3.Profiler()
	p.miss = 100000
	p.Rotate()
	got := 0
	seen := map[uint64]bool{}
	for i := 0; i < 2000 && got < 10; i++ {
		a, ok := h.EagerCandidate()
		if !ok {
			continue
		}
		if seen[a] {
			t.Fatalf("candidate %d returned twice without re-dirtying", a)
		}
		seen[a] = true
		got++
	}
	if got < 10 {
		t.Fatalf("only %d eager candidates found", got)
	}
	if h.Snapshot().EagerIssued != uint64(got) {
		t.Errorf("EagerIssued = %d, want %d", h.Snapshot().EagerIssued, got)
	}
}

func TestEagerCandidateRespectsBoundary(t *testing.T) {
	h := newTiny(t)
	for l := uint64(0); l < 64; l++ {
		h.Access(addr(l), true)
	}
	// Boundary at the associativity: nothing is useless.
	if _, ok := h.EagerCandidate(); ok {
		t.Error("candidate produced before any profile rotation")
	}
}

func TestWastedEagerDetection(t *testing.T) {
	h := newTiny(t)
	// Dirty a line and push it to L3 (evict from L1 and L2 via conflicts).
	h.Access(addr(0), true)
	// L1 set 0 also holds lines 4, 8 (4 L1 sets, 2 ways); L2 (8 sets,
	// 2 ways) set 0 holds 8, 16.
	h.Access(addr(4), true)
	h.Access(addr(8), true)
	h.Access(addr(16), true)
	h.Access(addr(24), true)
	if !h.L3.contains(0) {
		t.Skip("line 0 unexpectedly left L3; adjust conflict lines")
	}
	// Make everything useless and eagerly clean line 0 (retry until the
	// random set lands on it).
	p := h.L3.Profiler()
	p.miss = 1 << 20
	p.Rotate()
	cleaned := false
	for i := 0; i < 5000; i++ {
		if a, ok := h.EagerCandidate(); ok && a == 0 {
			cleaned = true
			break
		}
	}
	if !cleaned {
		t.Fatal("never eager-cleaned line 0")
	}
	// Re-dirty it: the merge must count one wasted eager write.
	h.Access(addr(0), true)
	// Force it back out of L1/L2 so the dirty data merges into L3.
	h.Access(addr(4), true)
	h.Access(addr(8), true)
	h.Access(addr(16), true)
	h.Access(addr(24), true)
	if h.Snapshot().WastedEager == 0 {
		t.Error("wasted eager write not detected")
	}
}

func TestLLCPositionCountersTrackHits(t *testing.T) {
	h := newTiny(t)
	// Two lines in the same L3 set, accessed so L2/L1 never hold them:
	// use lines far apart mapping to same L3 set but different L1/L2
	// sets... simpler: access each line once (install), then evict from
	// L1/L2 by streaming others, then re-access and check counters moved.
	h.Access(addr(3), false)
	for l := uint64(100); l < 140; l++ {
		h.Access(addr(l), false)
	}
	if h.L3.contains(3) {
		h.Access(addr(3), false) // should hit L3 at some stack position
		hits, _ := h.L3.Profiler().Counters()
		total := uint64(0)
		for _, v := range hits {
			total += v
		}
		if total == 0 {
			t.Error("L3 hit did not increment any position counter")
		}
	}
}

func TestMergeWritebackDoesNotPromote(t *testing.T) {
	// A dirty write-back arriving at L2 must not refresh the line's LRU
	// position: write-backs are not demand uses.
	c := New(config.Cache{SizeBytes: 256, Ways: 2, HitLatency: 1, MSHRs: 1}) // 2 sets × 2 ways
	c.install(0, false)                                                      // set 0: [0]
	c.install(2, false)                                                      // set 0: [2, 0]
	if !c.mergeWriteback(0) {
		t.Fatal("merge missed resident line")
	}
	// Insert a third line: victim must be 0 (still LRU despite merge).
	v, ok, dirty := c.install(4, false)
	if !ok || v != 0 {
		t.Errorf("victim = %d (ok=%v), want 0", v, ok)
	}
	if !dirty {
		t.Error("merged dirty bit lost on eviction")
	}
}
