package cache

import (
	"testing"

	"mellow/internal/config"
	"mellow/internal/rng"
)

// BenchmarkCacheAccess measures the hierarchy layer in isolation — the
// flat-array LRU lookup/touch/install path — so optimization PRs can
// localize wins without running a full experiment. The address streams
// model the two extremes the simulator lives between: a hot working set
// that hits in L1/L2, and a striding sweep that misses to memory and
// keeps the fill/evict/back-invalidate path busy.
func BenchmarkCacheAccess(b *testing.B) {
	cfg := config.Default().Caches
	b.Run("hot", func(b *testing.B) {
		h := NewHierarchy(cfg, rng.New(1))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			// 16 hot lines: after the cold fills this is all upper-level hits.
			h.Access(uint64(i&15)<<6, i&3 == 0)
		}
	})
	b.Run("stride", func(b *testing.B) {
		h := NewHierarchy(cfg, rng.New(1))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			// A large stride defeats every level: each access is an LLC
			// miss with installs (and eventually evictions) at all levels.
			h.Access(uint64(i)*64*129, i&1 == 0)
		}
	})
	b.Run("eager", func(b *testing.B) {
		h := NewHierarchy(cfg, rng.New(1))
		// Dirty a spread of lines, then measure candidate selection.
		for i := 0; i < 1<<16; i++ {
			h.Access(uint64(i)*64*9, true)
		}
		h.RotateProfile()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.EagerCandidate()
			if i&1023 == 0 {
				h.Access(uint64(i)*64*9, true) // keep dirty lines coming
			}
		}
	})
}
