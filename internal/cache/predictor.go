package cache

import "mellow/internal/rng"

// Eager-candidate predictor names (config.Hierarchy.EagerPredictor).
const (
	// PredictorLRUProfile is the paper's §IV-B1 scheme: LRU stack
	// positions whose hits fall below the useless threshold.
	PredictorLRUProfile = "lru-profile"
	// PredictorDecay is a timeout-style dead-block predictor (the §VII
	// future-work direction): a dirty line untouched for more than a
	// threshold number of LLC accesses is presumed dead and eligible for
	// eager write-back.
	PredictorDecay = "decay"
)

// EagerCandidateDecay picks an eager write-back candidate using decay
// prediction: from a random set, the stalest dirty line whose age (in
// LLC accesses) exceeds threshold. The chosen line is marked clean but
// stays resident, exactly like the LRU-profile scheme.
func (c *Cache) EagerCandidateDecay(src *rng.Source, threshold uint64) (addr uint64, ok bool) {
	base := int(src.Uintn(uint64(c.nsets))) * c.ways
	best := -1
	var bestAge uint64
	for i := 0; i < c.ways; i++ {
		if c.flags[base+i]&(flagValid|flagDirty) != flagValid|flagDirty {
			continue
		}
		age := c.touches - c.last[base+i]
		if age > threshold && age > bestAge {
			best, bestAge = i, age
		}
	}
	if best < 0 {
		return 0, false
	}
	c.flags[base+best] = c.flags[base+best]&^flagDirty | flagEagerClean
	return c.addrs[base+best], true
}

// Touches returns the cache's logical access clock (tests).
func (c *Cache) Touches() uint64 { return c.touches }
