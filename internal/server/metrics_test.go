package server

import (
	"bufio"
	"flag"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"mellow/internal/experiments"
)

var update = flag.Bool("update", false, "rewrite golden files")

// stubQueue is a fixed queueInfo source for telemetry built outside a
// Server.
func stubQueue() queueInfo {
	return queueInfo{depth: 0, capacity: 64, workers: 2, results: 0}
}

// gateWriter blocks every Write until released, emulating a scraper
// that stopped reading mid-response.
type gateWriter struct {
	entered chan struct{} // closed on first Write
	release chan struct{} // writes block until this closes
	once    sync.Once
}

func newGateWriter() *gateWriter {
	return &gateWriter{entered: make(chan struct{}), release: make(chan struct{})}
}

func (w *gateWriter) Write(p []byte) (int, error) {
	w.once.Do(func() { close(w.entered) })
	<-w.release
	return len(p), nil
}

// TestMetricsWriteDoesNotBlockObserve pins the snapshot-then-render
// contract: while an exposition write sits blocked on a stalled
// scraper, job-completion observes and even fresh snapshots must
// proceed. The old renderer held the telemetry mutex across the
// response write, so a slow client stalled every worker at its next
// latency observe.
func TestMetricsWriteDoesNotBlockObserve(t *testing.T) {
	tel := newTelemetry(stubQueue)
	tel.observe("sim", time.Millisecond) // a cell to render

	w := newGateWriter()
	writeDone := make(chan error, 1)
	go func() { writeDone <- tel.write(w) }()

	select {
	case <-w.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("exposition write never started")
	}

	// The writer is now blocked mid-render. Observes and snapshots
	// must still complete promptly.
	opsDone := make(chan struct{})
	go func() {
		defer close(opsDone)
		tel.observe("sim", 2*time.Millisecond)
		tel.observeWait(time.Millisecond)
		tel.accepted.Inc()
		_ = tel.snapshot()
	}()
	select {
	case <-opsDone:
	case <-time.After(5 * time.Second):
		t.Fatal("observe blocked behind a stalled exposition writer")
	}

	close(w.release)
	select {
	case err := <-writeDone:
		if err != nil {
			t.Fatalf("write: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("exposition write never finished")
	}
}

// scrapeCounter fetches /metrics and returns the value of an unlabeled
// counter line. Errors are reported with t.Errorf so it is safe from
// scraper goroutines; ok is false when the scrape failed.
func scrapeCounter(t *testing.T, url, name string) (v uint64, ok bool) {
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Errorf("scrape: %v", err)
		return 0, false
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	found := false
	for sc.Scan() {
		line := sc.Text()
		if rest, cut := strings.CutPrefix(line, name+" "); cut {
			v, err = strconv.ParseUint(rest, 10, 64)
			if err != nil {
				t.Errorf("parse %q: %v", line, err)
				return 0, false
			}
			found = true
			// Keep scanning: the body must drain for connection reuse.
		}
	}
	if err := sc.Err(); err != nil {
		t.Errorf("scrape read: %v", err)
		return 0, false
	}
	if !found {
		t.Errorf("counter %s not in exposition", name)
		return 0, false
	}
	return v, true
}

// TestMetricsScrapeDuringJobs hammers /metrics from several goroutines
// while jobs run to completion, asserting the scrape stays well-formed
// and the completion counter is monotone across scrapes. Run with
// -race, this is the witness that the hot paths and the snapshot walk
// are data-race-free.
func TestMetricsScrapeDuringJobs(t *testing.T) {
	experiments.ResetCache()
	_, ts := newTestServer(t, Config{Workers: 2, BaseConfig: tinyBase(401)})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var stopOnce sync.Once
	stopScrapers := func() {
		stopOnce.Do(func() { close(stop) })
		wg.Wait()
	}
	// A Fatal below must not strand scraper goroutines reporting into a
	// finished test.
	defer stopScrapers()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				v, ok := scrapeCounter(t, ts.URL, "mellowd_jobs_completed_total")
				if !ok {
					return
				}
				if v < last {
					t.Errorf("completed counter went backwards: %d after %d", v, last)
					return
				}
				last = v
			}
		}()
	}

	ids := make([]string, 0, 3)
	for i, body := range []string{
		`{"kind":"sim","workload":"stream","policy":"Norm"}`,
		`{"kind":"sim","workload":"gups","policy":"Norm"}`,
		`{"kind":"sim","workload":"stream","policy":"B-Mellow"}`,
	} {
		st, code := postJob(t, ts, body)
		if code != http.StatusAccepted {
			t.Fatalf("job %d: status %d", i, code)
		}
		ids = append(ids, st.ID)
	}
	for _, id := range ids {
		if st := waitDone(t, ts, id); st.State != StateDone {
			t.Fatalf("job %s: %s (%s)", id, st.State, st.Error)
		}
	}
	stopScrapers()

	if v, ok := scrapeCounter(t, ts.URL, "mellowd_jobs_completed_total"); ok && v != 3 {
		t.Errorf("completed = %d, want 3", v)
	}
}

// TestJobPerRunMetrics submits a compare job with per-run metrics on
// and checks the result carries one deterministic snapshot per matrix
// cell, aligned with the results slice.
func TestJobPerRunMetrics(t *testing.T) {
	experiments.ResetCache()
	_, ts := newTestServer(t, Config{Workers: 2, BaseConfig: tinyBase(503)})

	body := `{"kind":"compare","workload":"stream","policies":["Norm","B-Mellow"],"metrics":true}`
	st, code := postJob(t, ts, body)
	if code != http.StatusAccepted {
		t.Fatalf("status %d", code)
	}
	st = waitDone(t, ts, st.ID)
	if st.State != StateDone {
		t.Fatalf("job: %s (%s)", st.State, st.Error)
	}
	res := st.Result
	if res == nil {
		t.Fatal("no result")
	}
	if len(res.Metrics) != len(res.Results) || len(res.Results) != 2 {
		t.Fatalf("metrics/results = %d/%d, want 2/2", len(res.Metrics), len(res.Results))
	}
	for i, snap := range res.Metrics {
		if snap == nil || len(snap.Families) == 0 {
			t.Fatalf("cell %d: empty snapshot", i)
		}
		if v := snap.Value("sim_mem_reads_total"); v <= 0 {
			t.Errorf("cell %d: sim_mem_reads_total = %v, want > 0", i, v)
		}
	}

	// Same job without metrics: same simulations, no snapshots, and a
	// distinct content key — the flag changes the payload.
	st2, code := postJob(t, ts, `{"kind":"compare","workload":"stream","policies":["Norm","B-Mellow"]}`)
	if code != http.StatusAccepted {
		t.Fatalf("status %d", code)
	}
	if st2.Key == st.Key {
		t.Error("metrics flag did not enter the content key")
	}
	st2 = waitDone(t, ts, st2.ID)
	if st2.State != StateDone {
		t.Fatalf("job 2: %s (%s)", st2.State, st2.Error)
	}
	if len(st2.Result.Metrics) != 0 {
		t.Errorf("unflagged job carried %d snapshots", len(st2.Result.Metrics))
	}
}

// TestMetricNamesGolden pins the process registry's full name set — the
// exposition's "name kind" lines — against a checked-in golden file, so
// a metric rename, removal or kind change has to be a conscious diff.
// Regenerate with: go test ./internal/server -run MetricNamesGolden -update
func TestMetricNamesGolden(t *testing.T) {
	tel := newTelemetry(stubQueue)
	got := strings.Join(tel.snapshot().Names(), "\n") + "\n"

	path := filepath.Join("testdata", "metric_names.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("metric name set drifted from %s (regenerate with -update):\ngot:\n%s\nwant:\n%s",
			path, got, want)
	}

	// Every name must carry a TYPE line in the rendered exposition,
	// even for families with no cells yet, so the full taxonomy is
	// visible from the first scrape.
	var sb strings.Builder
	if err := tel.write(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, line := range strings.Split(strings.TrimSpace(got), "\n") {
		name, kind, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("malformed golden line %q", line)
		}
		if want := "# TYPE " + name + " " + kind + "\n"; !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", strings.TrimSpace(want))
		}
	}
}
