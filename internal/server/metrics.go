package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mellow/internal/experiments"
	"mellow/internal/stats"
)

// metrics aggregates service counters and per-kind latency
// distributions, rendered in Prometheus text exposition format.
type metrics struct {
	accepted  atomic.Uint64 // jobs admitted to the queue
	completed atomic.Uint64
	failed    atomic.Uint64
	shed      atomic.Uint64 // rejected with 429: queue full
	deduped   atomic.Uint64 // submissions joined to an existing job
	resultHit atomic.Uint64 // submissions answered from the result cache

	mu      sync.Mutex
	latency map[string]*stats.Histogram // by job kind, in microseconds
}

func newMetrics() *metrics {
	return &metrics{latency: map[string]*stats.Histogram{}}
}

// observe records one finished job's wall time.
func (m *metrics) observe(kind string, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.latency[kind]
	if h == nil {
		h = &stats.Histogram{}
		m.latency[kind] = h
	}
	h.Add(uint64(d.Microseconds()))
}

func counter(w io.Writer, name, help string, v uint64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
}

func gauge(w io.Writer, name, help string, v int) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
}

// write renders the full exposition: service counters, queue and cache
// gauges, the simulation memo-cache counters, and per-kind latency
// histograms (power-of-two buckets from internal/stats, cumulated into
// Prometheus "le" bounds in seconds).
func (m *metrics) write(w io.Writer, queueDepth, queueCap, workers, resultEntries int) {
	counter(w, "mellowd_jobs_accepted_total", "Jobs admitted to the work queue.", m.accepted.Load())
	counter(w, "mellowd_jobs_completed_total", "Jobs finished successfully.", m.completed.Load())
	counter(w, "mellowd_jobs_failed_total", "Jobs finished with an error.", m.failed.Load())
	counter(w, "mellowd_jobs_shed_total", "Submissions rejected with 429: queue full.", m.shed.Load())
	counter(w, "mellowd_jobs_deduped_total", "Submissions joined to an identical active job.", m.deduped.Load())
	counter(w, "mellowd_result_cache_hits_total", "Submissions answered from the content-addressed result cache.", m.resultHit.Load())
	gauge(w, "mellowd_queue_depth", "Jobs waiting in the admission queue.", queueDepth)
	gauge(w, "mellowd_queue_capacity", "Admission queue bound.", queueCap)
	gauge(w, "mellowd_workers", "Worker pool size.", workers)
	gauge(w, "mellowd_result_cache_entries", "Finished jobs held by the result cache.", resultEntries)

	cs := experiments.CacheSnapshot()
	counter(w, "mellowd_simcache_hits_total", "Simulation memo-cache hits (incl. singleflight joins).", cs.Hits)
	counter(w, "mellowd_simcache_misses_total", "Simulations actually executed.", cs.Misses)
	counter(w, "mellowd_simcache_evictions_total", "Memoised simulations evicted by the cap.", cs.Evictions)
	gauge(w, "mellowd_simcache_entries", "Memoised simulation results held.", cs.Entries)
	gauge(w, "mellowd_simcache_inflight", "Simulations currently running (deduplicated).", cs.InFlight)

	m.mu.Lock()
	kinds := make([]string, 0, len(m.latency))
	for k := range m.latency {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	const name = "mellowd_job_duration_seconds"
	fmt.Fprintf(w, "# HELP %s Wall time of finished jobs by kind.\n# TYPE %s histogram\n", name, name)
	for _, k := range kinds {
		h := m.latency[k]
		var cum uint64
		for _, b := range h.Buckets() {
			cum += b.Count
			fmt.Fprintf(w, "%s_bucket{kind=%q,le=%q} %d\n", name, k, fmt.Sprintf("%g", float64(b.Upper)/1e6), cum)
		}
		fmt.Fprintf(w, "%s_bucket{kind=%q,le=\"+Inf\"} %d\n", name, k, h.Count())
		fmt.Fprintf(w, "%s_sum{kind=%q} %g\n", name, k, float64(h.Sum())/1e6)
		fmt.Fprintf(w, "%s_count{kind=%q} %d\n", name, k, h.Count())
	}
	m.mu.Unlock()
}
