package server

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"mellow/internal/experiments"
	"mellow/internal/metrics"
	"mellow/internal/sched"
	"mellow/internal/xtrace"
)

// telemetry is the service's face of the process metrics registry: the
// handles mellowd's hot paths record through, plus the snapshot-time
// collectors (scheduler, memo cache, queue occupancy, build identity,
// Go runtime). The old hand-rendered exposition, its per-kind latency
// map, and the mutex held across response writing are all gone — every
// scrape is a registry snapshot rendered by the shared walker.
type telemetry struct {
	reg *metrics.Registry

	accepted  *metrics.Counter // jobs admitted to the queue
	completed *metrics.Counter
	failed    *metrics.Counter
	shed      *metrics.Counter // rejected with 429: queue full
	deduped   *metrics.Counter // submissions joined to an existing job
	resultHit *metrics.Counter // submissions answered from the result cache
	running   *metrics.Gauge   // jobs currently executing

	queueWait *metrics.Histogram    // admission → worker pickup, microseconds
	latency   *metrics.HistogramVec // job wall time by kind, microseconds

	joblogEntries *metrics.Counter // records appended to the write-ahead job log
	replayed      *metrics.Gauge   // jobs re-enqueued from the joblog at startup
	streamSubs    *metrics.Gauge   // live SSE subscribers across all jobs
	streamDropped *metrics.Counter // epoch events dropped at a stream-buffer bound
}

// queueInfo reports the server's point-in-time queue occupancy for the
// snapshot-time gauges.
type queueInfo struct {
	depth, capacity, workers, results int
}

// newTelemetry builds the process registry. queue is polled at snapshot
// time (under the server mutex, briefly); it must be safe to call from
// any goroutine.
func newTelemetry(queue func() queueInfo) *telemetry {
	reg := metrics.NewRegistry()
	t := &telemetry{
		reg:       reg,
		accepted:  reg.Counter("mellowd_jobs_accepted_total", "Jobs admitted to the work queue."),
		completed: reg.Counter("mellowd_jobs_completed_total", "Jobs finished successfully."),
		failed:    reg.Counter("mellowd_jobs_failed_total", "Jobs finished with an error."),
		shed:      reg.Counter("mellowd_jobs_shed_total", "Submissions rejected with 429: queue full."),
		deduped:   reg.Counter("mellowd_jobs_deduped_total", "Submissions joined to an identical active job."),
		resultHit: reg.Counter("mellowd_result_cache_hits_total", "Submissions answered from the content-addressed result cache."),
		running:   reg.Gauge("mellowd_jobs_running", "Jobs currently executing on the worker pool."),
		queueWait: reg.Histogram("mellowd_queue_wait_seconds",
			"Time jobs spent in the admission queue before a worker picked them up.", 1e-6),
		latency: reg.HistogramVec("mellowd_job_duration_seconds",
			"Wall time of finished jobs by kind.", "kind", 1e-6),
		joblogEntries: reg.Counter("mellowd_joblog_entries_total",
			"Records appended to the write-ahead job log (admit, start, finish, fail)."),
		replayed: reg.Gauge("mellowd_joblog_replayed_jobs",
			"Unfinished jobs re-enqueued from the joblog at the last startup replay."),
		streamSubs: reg.Gauge("mellowd_stream_subscribers",
			"Live Server-Sent-Events subscribers on GET /v1/jobs/{id}/events."),
		streamDropped: reg.Counter("mellowd_stream_events_dropped_total",
			"Epoch events dropped at a per-job stream-buffer bound (results keep the full series)."),
	}
	reg.GaugeFunc("mellowd_queue_depth", "Jobs waiting in the admission queue.",
		func() float64 { return float64(queue().depth) })
	reg.GaugeFunc("mellowd_queue_capacity", "Admission queue bound.",
		func() float64 { return float64(queue().capacity) })
	reg.GaugeFunc("mellowd_workers", "Worker pool size.",
		func() float64 { return float64(queue().workers) })
	reg.GaugeFunc("mellowd_result_cache_entries", "Finished jobs held by the result cache.",
		func() float64 { return float64(queue().results) })
	RegisterProcessCollectors(reg)
	return t
}

// RegisterProcessCollectors adds the process-scope collectors shared by
// every mellowd-namespace registry: build identity, the simulation
// scheduler, the experiments memo cache and Go runtime basics.
// mellowbench reuses it for `-metrics` so both binaries expose one
// taxonomy.
func RegisterProcessCollectors(reg *metrics.Registry) {
	reg.RegisterCollector(func(g *metrics.Gatherer) {
		g.GaugeRaw("mellowd_build_info",
			"Build identity of the running mellowd binary (value is always 1).", buildLabels(), 1)
	})
	reg.RegisterCollector(sched.Default().Collector("mellowd_"))
	reg.RegisterCollector(experiments.CacheCollector("mellowd_"))
	reg.RegisterCollector(func(g *metrics.Gatherer) {
		g.Gauge("mellowd_traces_active",
			"Execution-timeline recorders currently recording (created, not yet finalized).",
			float64(xtrace.ActiveCount()))
		g.Counter("mellowd_trace_events_dropped_total",
			"Trace events discarded at a ring-buffer or span-buffer bound since process start.",
			xtrace.DroppedCount())
	})
	reg.RegisterCollector(metrics.GoRuntime("mellowd_"))
}

// observe records one finished job's wall time. Lock-free: a vec cell
// lookup plus two atomic adds.
func (t *telemetry) observe(kind string, d time.Duration) {
	t.latency.With(kind).Observe(uint64(d.Microseconds()))
}

// observeWait records one job's time from admission to worker pickup.
func (t *telemetry) observeWait(d time.Duration) {
	if d < 0 {
		d = 0
	}
	t.queueWait.Observe(uint64(d.Microseconds()))
}

// snapshot freezes the registry. Collectors take their own short locks
// while it is built; nothing is held once it returns.
func (t *telemetry) snapshot() metrics.Snapshot { return t.reg.Snapshot() }

// write renders the exposition: snapshot first, render after, so a slow
// scraper can never block a job-completion observe.
func (t *telemetry) write(w io.Writer) error {
	return t.snapshot().WritePrometheus(w)
}

// buildLabels resolves the binary's identity for mellowd_build_info
// once: Go runtime version plus the main module version and VCS
// revision when the build recorded them.
var buildLabels = sync.OnceValue(func() string {
	version, revision := "unknown", "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Main.Version != "" {
			version = bi.Main.Version
		}
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				revision = s.Value
			}
		}
	}
	esc := func(s string) string { return strings.ReplaceAll(s, `"`, `\"`) }
	return fmt.Sprintf(`go_version="%s",version="%s",revision="%s"`,
		esc(runtime.Version()), esc(version), esc(revision))
})
