package server

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mellow/internal/experiments"
	"mellow/internal/sched"
	"mellow/internal/stats"
)

// metrics aggregates service counters and per-kind latency
// distributions, rendered in Prometheus text exposition format.
type metrics struct {
	accepted  atomic.Uint64 // jobs admitted to the queue
	completed atomic.Uint64
	failed    atomic.Uint64
	shed      atomic.Uint64 // rejected with 429: queue full
	deduped   atomic.Uint64 // submissions joined to an existing job
	resultHit atomic.Uint64 // submissions answered from the result cache
	running   atomic.Int64  // jobs currently executing

	mu        sync.Mutex
	latency   map[string]*stats.Histogram // by job kind, in microseconds
	queueWait stats.Histogram             // admission → worker pickup, in microseconds
}

func newMetrics() *metrics {
	return &metrics{latency: map[string]*stats.Histogram{}}
}

// observe records one finished job's wall time.
func (m *metrics) observe(kind string, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.latency[kind]
	if h == nil {
		h = &stats.Histogram{}
		m.latency[kind] = h
	}
	h.Add(uint64(d.Microseconds()))
}

// observeWait records one job's time from admission to worker pickup.
func (m *metrics) observeWait(d time.Duration) {
	if d < 0 {
		d = 0
	}
	m.mu.Lock()
	m.queueWait.Add(uint64(d.Microseconds()))
	m.mu.Unlock()
}

// buildLabels resolves the binary's identity for mellowd_build_info
// once: Go runtime version plus the main module version and VCS
// revision when the build recorded them.
var buildLabels = sync.OnceValue(func() string {
	version, revision := "unknown", "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok {
		if bi.Main.Version != "" {
			version = bi.Main.Version
		}
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				revision = s.Value
			}
		}
	}
	esc := func(s string) string { return strings.ReplaceAll(s, `"`, `\"`) }
	return fmt.Sprintf(`go_version="%s",version="%s",revision="%s"`,
		esc(runtime.Version()), esc(version), esc(revision))
})

// histogram renders one unlabelled stats.Histogram in Prometheus
// exposition form, converting the microsecond buckets into "le" bounds
// in seconds.
func histogram(w io.Writer, name, help string, h *stats.Histogram) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	var cum uint64
	for _, b := range h.Buckets() {
		cum += b.Count
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, fmt.Sprintf("%g", float64(b.Upper)/1e6), cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count())
	fmt.Fprintf(w, "%s_sum %g\n", name, float64(h.Sum())/1e6)
	fmt.Fprintf(w, "%s_count %d\n", name, h.Count())
}

func counter(w io.Writer, name, help string, v uint64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
}

func gauge(w io.Writer, name, help string, v int) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
}

// write renders the full exposition: service counters, queue and cache
// gauges, the simulation memo-cache counters, and per-kind latency
// histograms (power-of-two buckets from internal/stats, cumulated into
// Prometheus "le" bounds in seconds).
func (m *metrics) write(w io.Writer, queueDepth, queueCap, workers, resultEntries int) {
	fmt.Fprintf(w, "# HELP mellowd_build_info Build identity of the running mellowd binary (value is always 1).\n"+
		"# TYPE mellowd_build_info gauge\nmellowd_build_info{%s} 1\n", buildLabels())
	counter(w, "mellowd_jobs_accepted_total", "Jobs admitted to the work queue.", m.accepted.Load())
	counter(w, "mellowd_jobs_completed_total", "Jobs finished successfully.", m.completed.Load())
	counter(w, "mellowd_jobs_failed_total", "Jobs finished with an error.", m.failed.Load())
	counter(w, "mellowd_jobs_shed_total", "Submissions rejected with 429: queue full.", m.shed.Load())
	counter(w, "mellowd_jobs_deduped_total", "Submissions joined to an identical active job.", m.deduped.Load())
	counter(w, "mellowd_result_cache_hits_total", "Submissions answered from the content-addressed result cache.", m.resultHit.Load())
	gauge(w, "mellowd_queue_depth", "Jobs waiting in the admission queue.", queueDepth)
	gauge(w, "mellowd_queue_capacity", "Admission queue bound.", queueCap)
	gauge(w, "mellowd_workers", "Worker pool size.", workers)
	gauge(w, "mellowd_jobs_running", "Jobs currently executing on the worker pool.", int(m.running.Load()))
	gauge(w, "mellowd_result_cache_entries", "Finished jobs held by the result cache.", resultEntries)

	ss := sched.Default().Stats()
	gauge(w, "mellowd_sched_budget", "Process-wide simulation slot budget.", int(ss.Budget))
	gauge(w, "mellowd_sched_slots_in_use", "Simulation slots currently held.", int(ss.InUse))
	gauge(w, "mellowd_sched_waiters", "Simulations parked waiting for a scheduler slot.", ss.Waiters)
	counter(w, "mellowd_sched_acquires_total", "Scheduler slot grants handed out.", ss.Acquires)
	counter(w, "mellowd_sched_waited_total", "Grants that queued before being granted.", ss.Waited)
	schedWait := sched.Default().WaitHistogram()
	histogram(w, "mellowd_sched_wait_seconds",
		"Time simulations waited for a scheduler slot before running.", &schedWait)

	cs := experiments.CacheSnapshot()
	counter(w, "mellowd_simcache_hits_total", "Simulation memo-cache hits (incl. singleflight joins).", cs.Hits)
	counter(w, "mellowd_simcache_misses_total", "Simulations actually executed.", cs.Misses)
	counter(w, "mellowd_simcache_evictions_total", "Memoised simulations evicted by the cap.", cs.Evictions)
	gauge(w, "mellowd_simcache_entries", "Memoised simulation results held.", cs.Entries)
	gauge(w, "mellowd_simcache_inflight", "Deduplicated simulations in flight (running or queued for a scheduler slot).", cs.InFlight)
	gauge(w, "mellowd_sims_running", "Simulations executing right now (holding a scheduler slot).", cs.Running)

	m.mu.Lock()
	histogram(w, "mellowd_queue_wait_seconds",
		"Time jobs spent in the admission queue before a worker picked them up.", &m.queueWait)
	kinds := make([]string, 0, len(m.latency))
	for k := range m.latency {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	const name = "mellowd_job_duration_seconds"
	fmt.Fprintf(w, "# HELP %s Wall time of finished jobs by kind.\n# TYPE %s histogram\n", name, name)
	for _, k := range kinds {
		h := m.latency[k]
		var cum uint64
		for _, b := range h.Buckets() {
			cum += b.Count
			fmt.Fprintf(w, "%s_bucket{kind=%q,le=%q} %d\n", name, k, fmt.Sprintf("%g", float64(b.Upper)/1e6), cum)
		}
		fmt.Fprintf(w, "%s_bucket{kind=%q,le=\"+Inf\"} %d\n", name, k, h.Count())
		fmt.Fprintf(w, "%s_sum{kind=%q} %g\n", name, k, float64(h.Sum())/1e6)
		fmt.Fprintf(w, "%s_count{kind=%q} %d\n", name, k, h.Count())
	}
	m.mu.Unlock()
}
