package server

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"path/filepath"
	"strings"
	"testing"

	"mellow/internal/experiments"
	"mellow/internal/joblog"
)

// scenarioBody is a small two-cell scenario document wrapped in a job
// request; the tight run lengths keep every test here under a second.
const scenarioBody = `{"kind":"scenario","scenario":{
	"name":"srv-test",
	"workloads":[{"name":"gups"}],
	"policies":["Norm","BE-Mellow+SC"],
	"overrides":{"seed":7,"llc_bytes":262144,"warmup_instructions":20000,"detailed_instructions":50000}
}}`

// TestScenarioSubmitPollFetch: a scenario job runs the document's
// matrix through the ordinary job pipeline — 202 on admit, a result
// document with one cell per (workload, policy) pair, content
// addressing by key, and a byte-for-byte identical resubmit answered
// from the cache.
func TestScenarioSubmitPollFetch(t *testing.T) {
	experiments.ResetCache()
	_, ts := newTestServer(t, Config{Workers: 2, BaseConfig: tinyBase(31)})

	st, code := postJob(t, ts, scenarioBody)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", code)
	}
	if st.ID == "" || len(st.Key) != 64 {
		t.Fatalf("bad status: %+v", st)
	}
	final := waitDone(t, ts, st.ID)
	if final.State != StateDone {
		t.Fatalf("state = %s (%s)", final.State, final.Error)
	}
	sr := final.Result.Scenario
	if sr == nil {
		t.Fatal("scenario job finished without a scenario result")
	}
	if sr.Scenario != "srv-test" || len(sr.Key) != 64 {
		t.Fatalf("scenario result header: name %q key %q", sr.Scenario, sr.Key)
	}
	if len(sr.Cells) != 2 {
		t.Fatalf("cells = %d, want 2", len(sr.Cells))
	}
	for i, want := range []string{"Norm", "BE-Mellow+SC"} {
		if sr.Cells[i].Workload != "gups" || sr.Cells[i].Policy != want {
			t.Errorf("cell %d = %s/%s, want gups/%s", i, sr.Cells[i].Workload, sr.Cells[i].Policy, want)
		}
	}
	if len(final.Result.Results) != 0 {
		t.Errorf("scenario job carries %d flat results, want the scenario document only", len(final.Result.Results))
	}

	bytes1 := getResultBytes(t, ts, st.Key)

	// The identical document again: same content address, answered from
	// the cache without re-running.
	st2, code := postJob(t, ts, scenarioBody)
	if code != http.StatusOK {
		t.Fatalf("resubmit = %d, want 200", code)
	}
	if !st2.Deduped || st2.Key != st.Key || st2.State != StateDone {
		t.Fatalf("resubmit status: %+v", st2)
	}
	if got := getResultBytes(t, ts, st2.Key); !bytes.Equal(got, bytes1) {
		t.Error("resubmitted scenario result bytes differ")
	}
}

// TestScenarioSubmitValidation: admission rejects everything the
// scenario-kind contract forbids — matrix fields on the request, run
// observers, invalid documents, bad overrides, unresolved replay
// paths — and the unknown-kind error lists the full registry.
func TestScenarioSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, BaseConfig: tinyBase(1)})

	doc := `{"name":"t","workloads":[{"name":"gups"}],"policies":["Norm"]}`
	cases := []struct {
		name, body, wantErr string
	}{
		{"missing document", `{"kind":"scenario"}`, "needs a scenario document"},
		{"request workload", fmt.Sprintf(`{"kind":"scenario","workload":"gups","scenario":%s}`, doc), "matrix from the scenario document only"},
		{"request workloads", fmt.Sprintf(`{"kind":"scenario","workloads":["gups"],"scenario":%s}`, doc), "matrix from the scenario document only"},
		{"request policy", fmt.Sprintf(`{"kind":"scenario","policy":"Norm","scenario":%s}`, doc), "matrix from the scenario document only"},
		{"request policies", fmt.Sprintf(`{"kind":"scenario","policies":["Norm"],"scenario":%s}`, doc), "matrix from the scenario document only"},
		{"request experiment", fmt.Sprintf(`{"kind":"scenario","experiment":"fig6","scenario":%s}`, doc), "matrix from the scenario document only"},
		{"interval_ns", fmt.Sprintf(`{"kind":"scenario","interval_ns":500000,"scenario":%s}`, doc), "does not support interval_ns"},
		{"trace", fmt.Sprintf(`{"kind":"scenario","trace":true,"scenario":%s}`, doc), "does not support trace"},
		{"unknown workload", `{"kind":"scenario","scenario":{"name":"t","workloads":[{"name":"nope"}],"policies":["Norm"]}}`, "nope"},
		{"bad policy", `{"kind":"scenario","scenario":{"name":"t","workloads":[{"name":"gups"}],"policies":["Turbo"]}}`, "Turbo"},
		{"bad override", `{"kind":"scenario","scenario":{"name":"t","workloads":[{"name":"gups"}],"policies":["Norm"],"overrides":{"banks":7}}}`, "bank count 7"},
		{"replay path not inlined", `{"kind":"scenario","scenario":{"name":"t","workloads":[{"name":"r","spec":{"kind":"replay","path":"x.trace"}}],"policies":["Norm"]}}`, "not resolved"},
		{"unknown kind", `{"kind":"frobnicate"}`, "want sim, compare, experiment or scenario"},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		raw := new(bytes.Buffer)
		raw.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: code = %d, want 400", tc.name, resp.StatusCode)
			continue
		}
		if !strings.Contains(raw.String(), tc.wantErr) {
			t.Errorf("%s: body %q does not mention %q", tc.name, raw.String(), tc.wantErr)
		}
	}
}

// TestScenarioBatch: scenario jobs ride the batch endpoint alongside
// other kinds, and duplicate documents within a batch join one job.
func TestScenarioBatch(t *testing.T) {
	experiments.ResetCache()
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 8, BaseConfig: tinyBase(33)})

	scen := `{"kind":"scenario","scenario":{"name":"b","workloads":[{"name":"gups"}],"policies":["Norm"],"overrides":{"warmup_instructions":10000,"detailed_instructions":30000}}}`
	body := fmt.Sprintf(`{"jobs":[%s,{"kind":"sim","workload":"stream","policy":"Norm"},%s]}`, scen, scen)
	br, code, raw := postBatch(t, ts, body)
	if code != http.StatusAccepted {
		t.Fatalf("batch = %d (%s), want 202", code, raw)
	}
	if len(br.Jobs) != 3 {
		t.Fatalf("batch returned %d statuses, want 3", len(br.Jobs))
	}
	if br.Jobs[2].ID != br.Jobs[0].ID || !br.Jobs[2].Deduped {
		t.Errorf("duplicate scenario entry got id %s deduped=%v, want join of %s",
			br.Jobs[2].ID, br.Jobs[2].Deduped, br.Jobs[0].ID)
	}
	for _, st := range br.Jobs[:2] {
		if fin := waitDone(t, ts, st.ID); fin.State != StateDone {
			t.Fatalf("job %s failed: %s", st.ID, fin.Error)
		}
	}
	fin := waitDone(t, ts, br.Jobs[0].ID)
	if fin.Result.Scenario == nil || len(fin.Result.Scenario.Cells) != 1 {
		t.Fatalf("batched scenario result: %+v", fin.Result)
	}
}

// TestScenarioJobLogReplay: a scenario job admitted to the write-ahead
// log before a crash replays on restart under its original id and
// reproduces the undisturbed run's result bytes — the document (with
// any replay traces inlined) travels whole through the log.
func TestScenarioJobLogReplay(t *testing.T) {
	base := tinyBase(35)

	// Reference run on an undisturbed server.
	experiments.ResetCache()
	_, refTS := newTestServer(t, Config{Workers: 2, BaseConfig: base})
	st, code := postJob(t, refTS, scenarioBody)
	if code != http.StatusAccepted {
		t.Fatalf("reference submit = %d", code)
	}
	if fin := waitDone(t, refTS, st.ID); fin.State != StateDone {
		t.Fatalf("reference job failed: %s", fin.Error)
	}
	wantBytes := getResultBytes(t, refTS, st.Key)

	// Victim: admit, then crash before the job can finish.
	path := filepath.Join(t.TempDir(), "jobs.wal")
	l1, err := joblog.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	s1, ts1 := newTestServer(t, Config{Workers: 1, QueueDepth: 8, BaseConfig: base, JobLog: l1})
	gate := make(chan struct{})
	t.Cleanup(func() { close(gate) })
	s1.exec = func(ctx context.Context, js *jobState) (*JobResult, error) {
		select {
		case <-gate:
		case <-ctx.Done():
		}
		return nil, fmt.Errorf("victim never finishes")
	}
	j1, code := postJob(t, ts1, scenarioBody)
	if code != http.StatusAccepted {
		t.Fatalf("victim submit = %d", code)
	}
	if j1.Key != st.Key {
		t.Fatalf("victim key %s differs from reference %s", j1.Key, st.Key)
	}
	crashServer(t, l1)

	// Survivor: replay from the log and run for real.
	experiments.ResetCache()
	l2, err := joblog.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	s2, ts2 := newTestServer(t, Config{Workers: 2, QueueDepth: 8, BaseConfig: base, JobLog: l2})
	n, err := s2.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("Restore replayed %d jobs, want 1", n)
	}
	if fin := waitDone(t, ts2, j1.ID); fin.State != StateDone {
		t.Fatalf("replayed scenario job: state %s (%s)", fin.State, fin.Error)
	}
	if got := getResultBytes(t, ts2, j1.Key); !bytes.Equal(got, wantBytes) {
		t.Errorf("replayed scenario result differs from the undisturbed run's bytes (%d vs %d bytes)",
			len(got), len(wantBytes))
	}
}
