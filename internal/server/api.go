package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"mellow/internal/config"
	"mellow/internal/core"
	"mellow/internal/engine"
	"mellow/internal/experiments"
	"mellow/internal/metrics"
	"mellow/internal/policy"
	"mellow/internal/scenario"
	"mellow/internal/sim"
	"mellow/internal/trace"
)

// Job kinds.
const (
	// KindSim simulates one (workload, policy) pair.
	KindSim = "sim"
	// KindCompare sweeps one or more workloads over a policy line-up
	// (default: the paper's Figure 10–16 evaluation set).
	KindCompare = "compare"
	// KindExperiment regenerates one paper artifact ("fig11", ...).
	KindExperiment = "experiment"
	// KindScenario runs one declarative scenario document (workloads ×
	// levelers × policies under config overrides, internal/scenario).
	KindScenario = "scenario"
)

// jobKinds is the single registry of job kinds: admission validates
// against it and the unknown-kind error message derives from it, so the
// two cannot drift when a kind is added.
var jobKinds = []string{KindSim, KindCompare, KindExperiment, KindScenario}

// Kinds lists the accepted job kinds in admission order.
func Kinds() []string {
	out := make([]string, len(jobKinds))
	copy(out, jobKinds)
	return out
}

// kindList renders the registry for error messages: "sim, compare,
// experiment or scenario".
func kindList() string {
	switch len(jobKinds) {
	case 0:
		return ""
	case 1:
		return jobKinds[0]
	}
	return strings.Join(jobKinds[:len(jobKinds)-1], ", ") + " or " + jobKinds[len(jobKinds)-1]
}

// JobRequest is the body of POST /v1/jobs. Every field except the kind
// discriminator and its operands is optional; unset run parameters take
// the server's base configuration.
type JobRequest struct {
	// Kind selects the work: "sim" (default), "compare", "experiment".
	Kind string `json:"kind,omitempty"`
	// Workload names one benchmark (sim); Workloads a set (compare and
	// experiment; default: the full 11-benchmark suite).
	Workload  string   `json:"workload,omitempty"`
	Workloads []string `json:"workloads,omitempty"`
	// Policy names one write policy (sim); Policies a line-up (compare;
	// default: the paper's evaluation set).
	Policy   string   `json:"policy,omitempty"`
	Policies []string `json:"policies,omitempty"`
	// Experiment is the artifact id for kind "experiment".
	Experiment string `json:"experiment,omitempty"`
	// Scenario is the declarative document for kind "scenario". Replay
	// workloads must be content-inlined (Spec.Data): the server resolves
	// no file paths, so a request replays identically from the write-
	// ahead log.
	Scenario *scenario.Scenario `json:"scenario,omitempty"`
	// Config replaces the server's base configuration wholesale.
	Config *config.Config `json:"config,omitempty"`
	// Seed, Warmup and Detailed override individual run parameters of
	// the effective configuration.
	Seed     *uint64 `json:"seed,omitempty"`
	Warmup   *uint64 `json:"warmup,omitempty"`
	Detailed *uint64 `json:"detailed,omitempty"`
	// IntervalNS, when positive, runs the job's simulations observed:
	// an epoch sample is taken every IntervalNS nanoseconds of simulated
	// time and the per-simulation series is embedded in the result. It
	// enters the cache key — an observed result carries more bytes than
	// an unobserved one for the same work.
	IntervalNS uint64 `json:"interval_ns,omitempty"`
	// Metrics, for sim and compare jobs, runs each simulation with a
	// per-run metrics registry and embeds the final snapshots in the
	// result. Snapshots are deterministic and the flag enters the cache
	// key, so equal keys still yield equal bytes. Experiment jobs ignore
	// it: their artifact is the rendered report.
	Metrics bool `json:"metrics,omitempty"`
	// Trace records an end-to-end execution trace for the job: wall-clock
	// service spans (queued, sched-wait, per-cell simulation, render)
	// plus each simulation's deterministic timeline (engine phases,
	// epochs, per-bank controller events). The finished trace is served
	// as Chrome Trace Event Format JSON at GET /v1/jobs/{id}/trace; the
	// job result itself is byte-identical to an untraced run's. The flag
	// enters the cache key — a traced job memoises its timelines.
	Trace bool `json:"trace,omitempty"`
	// TimeoutSeconds caps this job's execution (bounded by the server's
	// per-job timeout). It does not enter the job's cache key.
	TimeoutSeconds float64 `json:"timeout_seconds,omitempty"`
	// Leveler selects the wear-leveling backend ("startgap", "wolfram"
	// or "softwear") for the job's simulations, overriding the effective
	// configuration's Memory.WearLeveler. It changes the simulated
	// machine, so it enters the cache key through the config.
	Leveler string `json:"leveler,omitempty"`
}

// BatchRequest is the body of POST /v1/jobs:batch: a set of submissions
// admitted under one shed/accept decision — either every entry is
// answered (cache hit, join, or fresh enqueue) or the whole batch is
// rejected 429. Fresh entries share a single fsync of the job log.
type BatchRequest struct {
	Jobs []JobRequest `json:"jobs"`
}

// BatchResponse is the body of a successful POST /v1/jobs:batch. Jobs
// aligns with the request order; entries answered by the cache or by
// joining an active job (including an earlier entry of the same batch)
// are marked deduped.
type BatchResponse struct {
	Jobs []JobStatus `json:"jobs"`
}

// Admission bounds for interval_ns.
const (
	// MinIntervalNS is the finest observation period accepted: 1 µs of
	// simulated time. Below it the engine emits an epoch sample every
	// few simulated nanoseconds — an effectively unbounded series that
	// exhausts memory long before the simulation ends.
	MinIntervalNS = 1_000
	// MaxIntervalNS is the coarsest period accepted: anything larger
	// overflows sim.NS's ns × TicksPerNS conversion to ticks.
	MaxIntervalNS = math.MaxUint64 / sim.TicksPerNS
)

// validateInterval applies the documented interval_ns bounds (zero
// means unobserved and is always valid). mellowbench applies the same
// floor to its -interval flag.
func validateInterval(ns uint64) error {
	if ns == 0 {
		return nil
	}
	if ns < MinIntervalNS {
		return fmt.Errorf("interval_ns %d below the %d ns (1 µs) floor: the epoch series would be unbounded", ns, MinIntervalNS)
	}
	if ns > MaxIntervalNS {
		return fmt.Errorf("interval_ns %d overflows the tick clock (max %d)", ns, uint64(MaxIntervalNS))
	}
	return nil
}

// canonicalJob is the fully resolved, defaults-applied form of a
// request. Its canonical JSON is hashed into the content address, so
// two requests that mean the same work share one key.
type canonicalJob struct {
	Kind       string             `json:"kind"`
	Config     config.Config      `json:"config"`
	Workloads  []string           `json:"workloads"`
	Policies   []string           `json:"policies,omitempty"`
	Experiment string             `json:"experiment,omitempty"`
	Scenario   *scenario.Scenario `json:"scenario,omitempty"`
	IntervalNS uint64             `json:"interval_ns,omitempty"`
	Metrics    bool               `json:"metrics,omitempty"`
	Trace      bool               `json:"trace,omitempty"`
}

// normalize resolves a request against the base configuration,
// validates every name it references, and returns the canonical job
// plus its content address.
func normalize(req JobRequest, base config.Config) (canonicalJob, string, error) {
	c := canonicalJob{Kind: req.Kind, Config: base}
	if c.Kind == "" {
		c.Kind = KindSim
	}
	if req.Config != nil {
		c.Config = *req.Config
	}
	if req.Seed != nil {
		c.Config.Run.Seed = *req.Seed
	}
	if req.Warmup != nil {
		c.Config.Run.WarmupInstructions = *req.Warmup
	}
	if req.Detailed != nil {
		c.Config.Run.DetailedInstructions = *req.Detailed
	}
	if req.Leveler != "" {
		c.Config.Memory.WearLeveler = req.Leveler
	}
	if err := c.Config.Validate(); err != nil {
		return c, "", err
	}
	if err := validateInterval(req.IntervalNS); err != nil {
		return c, "", err
	}
	c.IntervalNS = req.IntervalNS
	// Experiment artifacts are rendered reports and scenario results are
	// golden documents: neither embeds per-run metrics snapshots.
	if c.Kind != KindExperiment && c.Kind != KindScenario {
		c.Metrics = req.Metrics
	}
	c.Trace = req.Trace

	switch c.Kind {
	case KindSim:
		if req.Workload == "" {
			return c, "", fmt.Errorf("sim job needs a workload")
		}
		if req.Policy == "" {
			return c, "", fmt.Errorf("sim job needs a policy")
		}
		c.Workloads = []string{req.Workload}
		c.Policies = []string{req.Policy}
	case KindCompare:
		c.Workloads = req.Workloads
		if req.Workload != "" {
			c.Workloads = append([]string{req.Workload}, c.Workloads...)
		}
		if len(c.Workloads) == 0 {
			return c, "", fmt.Errorf("compare job needs at least one workload")
		}
		c.Policies = req.Policies
		if req.Policy != "" {
			c.Policies = append([]string{req.Policy}, c.Policies...)
		}
		if len(c.Policies) == 0 {
			c.Policies = policy.Names(policy.EvaluationSet())
		}
	case KindExperiment:
		if req.Experiment == "" {
			return c, "", fmt.Errorf("experiment job needs an experiment id")
		}
		if _, err := experiments.ByID(req.Experiment); err != nil {
			return c, "", err
		}
		c.Experiment = req.Experiment
		c.Workloads = req.Workloads
		if len(c.Workloads) == 0 {
			c.Workloads = trace.Names()
		}
	case KindScenario:
		if req.Scenario == nil {
			return c, "", fmt.Errorf("scenario job needs a scenario document")
		}
		if req.Workload != "" || len(req.Workloads) > 0 || req.Policy != "" ||
			len(req.Policies) > 0 || req.Experiment != "" {
			return c, "", fmt.Errorf("scenario job takes its matrix from the scenario document only")
		}
		// The corpus contract is byte-stable golden documents; observers
		// that would grow the payload (series) or attach timelines are not
		// part of it.
		if req.IntervalNS != 0 {
			return c, "", fmt.Errorf("scenario job does not support interval_ns")
		}
		if req.Trace {
			return c, "", fmt.Errorf("scenario job does not support trace")
		}
		if err := req.Scenario.Validate(); err != nil {
			return c, "", err
		}
		// The effective config must be buildable at admission, not at run
		// time: a bad override fails the request, never a queued job.
		if _, err := req.Scenario.EffectiveConfig(c.Config); err != nil {
			return c, "", err
		}
		c.Scenario = req.Scenario.Normalize()
	default:
		return c, "", fmt.Errorf("unknown job kind %q (want %s)", c.Kind, kindList())
	}

	for _, w := range c.Workloads {
		if _, err := trace.ByName(w); err != nil {
			return c, "", err
		}
	}
	for _, p := range c.Policies {
		if _, err := policy.Parse(p); err != nil {
			return c, "", err
		}
	}
	// Canonical order and no duplicates, for workloads and policies
	// alike: `{"workload":"x","workloads":["x"]}` means x once, not
	// twice, and two compare jobs listing the same policies in a
	// different order are the same work — they must share one content
	// address and one result-cache entry.
	sort.Strings(c.Workloads)
	c.Workloads = dedupeSorted(c.Workloads)
	sort.Strings(c.Policies)
	c.Policies = dedupeSorted(c.Policies)

	b, err := json.Marshal(c)
	if err != nil {
		return c, "", fmt.Errorf("server: job not serialisable: %v", err)
	}
	sum := sha256.Sum256(b)
	return c, hex.EncodeToString(sum[:]), nil
}

// dedupeSorted removes adjacent duplicates from a sorted slice, in
// place.
func dedupeSorted(xs []string) []string {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

// Job states.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// JobStatus is the body of POST /v1/jobs and GET /v1/jobs/{id}.
type JobStatus struct {
	ID    string `json:"id"`
	Key   string `json:"key"`
	State string `json:"state"`
	// Deduped marks a submission that joined an existing identical job
	// instead of enqueueing a new simulation.
	Deduped bool   `json:"deduped,omitempty"`
	Error   string `json:"error,omitempty"`
	// Progress is the job's fractional completion in [0, 1]: finished
	// simulations plus the running simulation's own fraction, over the
	// job's total. It is monotone non-decreasing across polls of one job
	// and reaches 1 when the job is done.
	Progress float64 `json:"progress"`
	// Epoch is the most recent epoch sample of the currently running
	// simulation (only for jobs submitted with interval_ns).
	Epoch *engine.EpochSample `json:"epoch,omitempty"`
	// Timing is reported on the status, never inside the result, so
	// result bytes stay bit-identical across re-runs of the same key.
	QueuedAt   time.Time  `json:"queued_at"`
	StartedAt  *time.Time `json:"started_at,omitempty"`
	FinishedAt *time.Time `json:"finished_at,omitempty"`
	ElapsedMS  int64      `json:"elapsed_ms,omitempty"`
	Result     *JobResult `json:"result,omitempty"`
}

// JobResult is the deterministic payload of a finished job, served both
// inline on the status and content-addressed at GET /v1/results/{key}.
// It carries no timestamps or durations: equal keys yield equal bytes.
type JobResult struct {
	Key  string `json:"key"`
	Kind string `json:"kind"`
	// Results holds sim/compare outcomes in (workload, policy) order.
	Results []core.Result `json:"results,omitempty"`
	// Series holds the per-simulation epoch time series, in the same
	// order as Results, for jobs submitted with interval_ns. The series
	// is deterministic, so result bytes remain equal for equal keys.
	Series []experiments.SeriesRecord `json:"series,omitempty"`
	// Metrics holds each simulation's final per-run registry snapshot,
	// in the same order as Results, for jobs submitted with metrics.
	// Snapshots are deterministic, so result bytes remain equal for
	// equal keys.
	Metrics []*metrics.Snapshot `json:"metrics,omitempty"`
	// Report holds an experiment job's rendered artifact.
	Report *ExperimentReport `json:"report,omitempty"`
	// Scenario holds a scenario job's result document — the same bytes
	// `mellowbench -scenario-dir` pins against the committed goldens.
	Scenario *scenario.Result `json:"scenario,omitempty"`
}

// ExperimentReport is the machine-readable rendering of one paper
// artifact — shared by mellowd experiment jobs and `mellowbench -json`.
type ExperimentReport struct {
	ID     string `json:"id"`
	Title  string `json:"title"`
	Output string `json:"output"`
	// Series carries the underlying simulations' epoch series when the
	// run was observed (mellowbench -interval, interval_ns jobs).
	Series []experiments.SeriesRecord `json:"series,omitempty"`
}

// APIError is the body of every non-2xx response.
type APIError struct {
	Error string `json:"error"`
}
