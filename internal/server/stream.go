package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"mellow/internal/engine"
	"mellow/internal/metrics"
)

// Stream event types, as carried on the SSE `event:` line and in the
// payload's "type" field.
const (
	// EventEpoch carries one EpochSample of one matrix cell. The
	// subsequence of epoch events for a given cell is byte-for-byte the
	// series the finished result embeds for that cell — the streaming
	// face of the determinism contract.
	EventEpoch = "epoch"
	// EventTruncated marks the point where the bounded per-job buffer
	// started dropping epoch events; Dropped counts the loss so far. The
	// final result still carries every sample.
	EventTruncated = "truncated"
	// EventDone and EventFailed terminate every stream exactly once.
	EventDone   = "done"
	EventFailed = "failed"
)

// StreamEvent is one event on the GET /v1/jobs/{id}/events feed.
type StreamEvent struct {
	// Seq is the event's zero-based index in the job's event log (also
	// the SSE id), identical for every subscriber of the job.
	Seq int `json:"seq"`
	// Type is one of the Event* constants.
	Type string `json:"type"`
	// Cell is the matrix cell index the sample belongs to — the index
	// into the result's Results and Series slices. It is -1 on
	// non-epoch events and on experiment-kind jobs, which stream whole
	// per-simulation series as each completes: group by (workload,
	// policy) instead.
	Cell     int    `json:"cell"`
	Workload string `json:"workload,omitempty"`
	Policy   string `json:"policy,omitempty"`
	// Sample is the epoch payload (epoch events only).
	Sample *engine.EpochSample `json:"sample,omitempty"`
	// Dropped counts epoch events lost to the buffer bound (truncated
	// events only).
	Dropped uint64 `json:"dropped,omitempty"`
	// Error carries the failure message (failed events only).
	Error string `json:"error,omitempty"`
}

// DefaultStreamBuffer bounds each job's event log. 1<<16 events is
// ~40 MB of a pathological job's samples but a normal observed matrix
// stays far below it; past the bound epoch events are dropped (counted
// and marked) while the result keeps the full series.
const DefaultStreamBuffer = 1 << 16

// streamLog is one job's bounded, append-only broadcast log of stream
// events. Every subscriber replays from the start — events are
// immutable once appended, so late subscribers observe exactly the
// sequence early ones did — and waits on a broadcast channel for more.
// A terminal event closes the log; appends after it are ignored.
type streamLog struct {
	mu       sync.Mutex
	wake     chan struct{} // closed and replaced on every append
	events   []StreamEvent
	bound    int
	dropped  uint64
	terminal bool

	// droppedTotal is the process-wide drop counter
	// (mellowd_stream_events_dropped_total); nil in unit tests.
	droppedTotal *metrics.Counter
}

func newStreamLog(bound int, droppedTotal *metrics.Counter) *streamLog {
	if bound <= 0 {
		bound = DefaultStreamBuffer
	}
	return &streamLog{wake: make(chan struct{}), bound: bound, droppedTotal: droppedTotal}
}

// append adds ev to the log and wakes subscribers. Epoch events beyond
// the bound are dropped (counted; the first drop appends a truncated
// marker so subscribers know the stream is incomplete). Terminal events
// always land and seal the log. Nil-safe: jobs without a stream ignore
// every call.
func (l *streamLog) append(ev StreamEvent) {
	if l == nil {
		return
	}
	l.mu.Lock()
	if l.terminal {
		l.mu.Unlock()
		return
	}
	terminal := ev.Type == EventDone || ev.Type == EventFailed
	if !terminal && len(l.events) >= l.bound {
		l.dropped++
		if l.droppedTotal != nil {
			l.droppedTotal.Add(1)
		}
		if l.dropped > 1 {
			// Published events are immutable (subscribers read them
			// lock-free), so the marker is appended once; further drops
			// are only counted.
			l.mu.Unlock()
			return
		}
		ev = StreamEvent{Type: EventTruncated, Cell: -1, Dropped: 1}
	}
	ev.Seq = len(l.events)
	l.events = append(l.events, ev)
	l.terminal = terminal
	close(l.wake)
	l.wake = make(chan struct{})
	l.mu.Unlock()
}

// epoch appends one live sample for a cell.
func (l *streamLog) epoch(cell int, workload, policy string, s engine.EpochSample) {
	if l == nil {
		return
	}
	l.append(StreamEvent{Type: EventEpoch, Cell: cell, Workload: workload, Policy: policy, Sample: &s})
}

// flushSeries appends the samples of a completed simulation that were
// not already streamed live: everything from index streamed on. A memo
// hit or joined flight streamed nothing live (streamed 0) and flushes
// the whole memoised series; the executing caller streamed everything
// (streamed == len(series)) and flushes nothing. Either way the cell's
// epoch-event subsequence ends up byte-identical to the result series.
func (l *streamLog) flushSeries(cell int, workload, policy string, series []engine.EpochSample, streamed int) {
	if l == nil || streamed >= len(series) {
		return
	}
	for _, s := range series[streamed:] {
		l.epoch(cell, workload, policy, s)
	}
}

// finish seals the log with the job's terminal event.
func (l *streamLog) finish(errMsg string) {
	if l == nil {
		return
	}
	if errMsg != "" {
		l.append(StreamEvent{Type: EventFailed, Cell: -1, Error: errMsg})
		return
	}
	l.append(StreamEvent{Type: EventDone, Cell: -1})
}

// next returns the events from seq on, whether the log is sealed, and
// the channel to wait on when caught up.
func (l *streamLog) next(seq int) ([]StreamEvent, bool, <-chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var evs []StreamEvent
	if seq < len(l.events) {
		evs = l.events[seq:len(l.events):len(l.events)]
	}
	return evs, l.terminal, l.wake
}

// streamKeepAlive is the idle period after which the handler emits an
// SSE comment so proxies and clients see a live connection between
// epochs.
const streamKeepAlive = 15 * time.Second

// handleJobEvents serves GET /v1/jobs/{id}/events: the job's event log
// as Server-Sent Events. Every subscriber — attached before, during or
// after the run — replays the log from the start and receives events
// until the terminal done/failed event, so a dashboard can render the
// simulation in flight and a late client still sees the full sequence.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	js, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		writeJSON(w, http.StatusNotFound, APIError{Error: "unknown job id"})
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, APIError{Error: "streaming unsupported by this connection"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	s.met.streamSubs.Add(1)
	defer s.met.streamSubs.Add(-1)

	ctx := r.Context()
	keep := time.NewTimer(streamKeepAlive)
	defer keep.Stop()
	seq := 0
	for {
		evs, sealed, wake := js.stream.next(seq)
		for _, ev := range evs {
			if err := writeSSE(w, ev); err != nil {
				return // client gone
			}
		}
		if len(evs) > 0 {
			fl.Flush()
			seq += len(evs)
		}
		if sealed && len(evs) == 0 {
			return
		}
		if sealed {
			// Drain whatever the seal left (the terminal event may have
			// arrived while we were writing).
			continue
		}
		if !keep.Stop() {
			select {
			case <-keep.C:
			default:
			}
		}
		keep.Reset(streamKeepAlive)
		select {
		case <-wake:
		case <-keep.C:
			if _, err := fmt.Fprint(w, ": keepalive\n\n"); err != nil {
				return
			}
			fl.Flush()
		case <-ctx.Done():
			return
		}
	}
}

// writeSSE renders one event in SSE wire format: the log index as the
// event id, the type on the event line, the JSON payload on data.
func writeSSE(w http.ResponseWriter, ev StreamEvent) error {
	b, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, b)
	return err
}
