package server

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mellow/internal/core"
	"mellow/internal/engine"
	"mellow/internal/experiments"
	"mellow/internal/metrics"
	"mellow/internal/policy"
	"mellow/internal/sim"
	"mellow/internal/xtrace"
)

// jobState is one submitted job's lifecycle record. Mutable fields are
// guarded by the owning Server's mutex; done closes on completion. The
// progress tracker is lock-free so the status handler can read it while
// the job runs.
type jobState struct {
	id    string
	key   string
	canon canonicalJob
	// timeout caps execution; zero means the server default.
	timeout time.Duration

	state      string
	err        string
	result     *JobResult
	queuedAt   time.Time
	startedAt  time.Time
	finishedAt time.Time
	done       chan struct{}

	progress jobProgress

	// stream is the job's bounded broadcast log behind
	// GET /v1/jobs/{id}/events. Minted at admission; nil only for
	// jobStates tests build by hand (every streamLog method is
	// nil-safe).
	stream *streamLog

	// spans is the wall-clock span recorder, minted at admission for
	// jobs submitted with "trace": true (nil otherwise; every recording
	// call is nil-safe).
	spans *xtrace.SpanRecorder
	// traces collects each simulation's execution timeline. runJob's
	// workers write disjoint slots; readers wait for done to close.
	traces []*xtrace.SimTrace
}

// jobProgress is a job's live completion state: simulations attempted
// out of the job's total, plus the live trackers of every simulation
// the job is running in parallel. Workers write concurrently; status
// readers see a monotone non-decreasing fraction through the maxSeen
// clamp (tracker handoffs between simulations could otherwise read a
// hair backwards). Failed and cancelled simulations count as attempted
// too, so a failed job's fraction accounts for all work the job tried
// rather than freezing at an arbitrary value.
type jobProgress struct {
	totalSims atomic.Uint64
	doneSims  atomic.Uint64
	active    engine.TrackerSet
	last      atomic.Pointer[engine.EpochSample]
	maxSeen   atomic.Uint64 // float64 bits
}

func (p *jobProgress) setTotal(n int) {
	if n > 0 {
		p.totalSims.Store(uint64(n))
	}
}

// beginSim registers a starting simulation's tracker (nil for
// unobserved runs, which contribute progress only on completion).
// Several simulations may be live at once — the job matrix runs in
// parallel under the process-wide scheduler.
func (p *jobProgress) beginSim(tr *engine.Tracker) { p.active.Add(tr) }

// endSim retires one simulation: its freshest epoch sample is kept for
// the status, its tracker leaves the active set, and the attempted
// count advances — on success, failure and cancellation alike.
func (p *jobProgress) endSim(tr *engine.Tracker) {
	if tr != nil {
		if s := tr.Sample(); s != nil {
			p.keepLast(s)
		}
		p.active.Remove(tr)
	}
	p.doneSims.Add(1)
}

// keepLast retains the freshest (greatest end tick) retired sample;
// parallel simulations retire in any order.
func (p *jobProgress) keepLast(s *engine.EpochSample) {
	for {
		old := p.last.Load()
		if old != nil && old.End >= s.End {
			return
		}
		if p.last.CompareAndSwap(old, s) {
			return
		}
	}
}

// set records sweep progress reported by the experiments layer.
func (p *jobProgress) set(done, total int) {
	p.setTotal(total)
	if done >= 0 {
		p.doneSims.Store(uint64(done))
	}
}

// finish pins the fraction at 1 (job completed successfully).
func (p *jobProgress) finish() { p.clamp(1) }

// clamp publishes f through the monotone max filter and returns the
// published (never-decreasing) value.
func (p *jobProgress) clamp(f float64) float64 {
	if f < 0 || math.IsNaN(f) {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	for {
		old := p.maxSeen.Load()
		if math.Float64frombits(old) >= f {
			return math.Float64frombits(old)
		}
		if p.maxSeen.CompareAndSwap(old, math.Float64bits(f)) {
			return f
		}
	}
}

// fraction returns the job's completion in [0, 1], monotone across
// calls: attempted simulations plus the summed fractions of every
// simulation currently in flight, over the job's total.
func (p *jobProgress) fraction() float64 {
	total := p.totalSims.Load()
	if total == 0 {
		return p.clamp(0)
	}
	f := float64(p.doneSims.Load()) + p.active.SumProgress()
	return p.clamp(f / float64(total))
}

// sample returns the freshest epoch sample: the furthest-along running
// simulation's, or the last one a finished simulation left behind.
func (p *jobProgress) sample() *engine.EpochSample {
	if s := p.active.Freshest(); s != nil {
		return s
	}
	return p.last.Load()
}

// status renders the job for the API. Callers hold the server mutex;
// the progress fields are read through their own atomics.
func (j *jobState) status(deduped bool) JobStatus {
	st := JobStatus{
		ID:       j.id,
		Key:      j.key,
		State:    j.state,
		Deduped:  deduped,
		Error:    j.err,
		Progress: j.progress.fraction(),
		Epoch:    j.progress.sample(),
		QueuedAt: j.queuedAt,
	}
	if !j.startedAt.IsZero() {
		t := j.startedAt
		st.StartedAt = &t
	}
	if !j.finishedAt.IsZero() {
		t := j.finishedAt
		st.FinishedAt = &t
		st.ElapsedMS = j.finishedAt.Sub(j.startedAt).Milliseconds()
	}
	if j.state == StateDone {
		st.Result = j.result
	}
	return st
}

// sortSeriesRecords puts sweep series in a canonical order: OnSeries
// delivers them in completion order, which is nondeterministic, but
// result bytes must be equal for equal keys. Records are keyed by
// (workload, policy) and — since one experiment can run the same pair
// under several configs — tie-broken by their full JSON encoding, so
// any remaining ties are byte-identical and order-irrelevant.
func sortSeriesRecords(records []experiments.SeriesRecord) {
	keys := make([]string, len(records))
	for i, r := range records {
		b, err := json.Marshal(r)
		if err != nil {
			b = []byte(r.Workload + "/" + r.Policy)
		}
		keys[i] = r.Workload + "\x00" + r.Policy + "\x00" + string(b)
	}
	sort.Sort(&recordSorter{records: records, keys: keys})
}

type recordSorter struct {
	records []experiments.SeriesRecord
	keys    []string
}

func (s *recordSorter) Len() int           { return len(s.records) }
func (s *recordSorter) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s *recordSorter) Swap(i, j int) {
	s.records[i], s.records[j] = s.records[j], s.records[i]
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
}

// runJob executes one job's simulations through the memoised harness,
// so identical sub-simulations across different jobs run once. A
// positive interval_ns runs them observed: per-epoch series land in the
// result and the jobState's progress trackers feed the status API live.
//
// Sim and compare matrices fan out in parallel; the process-wide
// scheduler (internal/sched) bounds total concurrent simulations across
// every job, so the fan-out cannot oversubscribe the machine. Each
// matrix cell writes its result (and series) into a slot fixed by its
// (workload, policy) loop index, so the payload keeps the exact
// sequential ordering — equal keys still yield equal bytes no matter
// which cells finish first.
func runJob(ctx context.Context, js *jobState) (*JobResult, error) {
	canon := js.canon
	out := &JobResult{Key: js.key, Kind: canon.Kind}
	epoch := sim.NS(canon.IntervalNS)
	switch canon.Kind {
	case KindSim, KindCompare:
		type cell struct {
			workload string
			policy   string
			spec     policy.Spec
		}
		cells := make([]cell, 0, len(canon.Workloads)*len(canon.Policies))
		for _, w := range canon.Workloads {
			for _, p := range canon.Policies {
				spec, err := policy.Parse(p)
				if err != nil {
					return nil, err
				}
				cells = append(cells, cell{workload: w, policy: p, spec: spec})
			}
		}
		js.progress.setTotal(len(cells))

		// The first failure cancels the siblings; every cell still
		// retires through endSim, so a failed job's progress accounts
		// for all attempted work instead of freezing mid-matrix.
		runCtx, cancel := context.WithCancel(ctx)
		defer cancel()
		results := make([]core.Result, len(cells))
		var series []experiments.SeriesRecord
		if epoch > 0 {
			series = make([]experiments.SeriesRecord, len(cells))
		}
		var snaps []*metrics.Snapshot
		if canon.Metrics {
			snaps = make([]*metrics.Snapshot, len(cells))
		}
		var traces []*xtrace.SimTrace
		if canon.Trace {
			traces = make([]*xtrace.SimTrace, len(cells))
		}
		var (
			wg       sync.WaitGroup
			mu       sync.Mutex
			firstErr error
		)
		for i, cl := range cells {
			i, cl := i, cl
			wg.Add(1)
			go func() {
				defer wg.Done()
				var err error
				if epoch > 0 || canon.Metrics || canon.Trace {
					var tr *engine.Tracker
					if epoch > 0 {
						tr = &engine.Tracker{}
					}
					js.progress.beginSim(tr)
					cellStart := time.Now()
					ob := experiments.Observation{Epoch: epoch, Tracker: tr,
						Metrics: canon.Metrics, Trace: canon.Trace}
					// streamed counts this cell's live epoch events. OnEpoch
					// only fires when this goroutine executes the simulation
					// itself; a memo hit or a joined in-flight run streams
					// nothing live and flushes the whole memoised series
					// below — either way the cell's epoch-event subsequence
					// is exactly the series the result embeds.
					streamed := 0
					if epoch > 0 && js.stream != nil {
						ob.OnEpoch = func(s engine.EpochSample) {
							streamed++
							js.stream.epoch(i, cl.workload, cl.policy, s)
						}
					}
					var ins experiments.Instrumented
					ins, err = experiments.RunFull(runCtx, canon.Config, cl.spec, cl.workload, ob)
					js.spans.Span("sim "+cl.workload+"/"+cl.policy, "cell",
						cellStart, time.Now(), "workload", cl.workload, "policy", cl.policy)
					js.progress.endSim(tr)
					if err == nil {
						results[i] = ins.Result
						if epoch > 0 {
							series[i] = experiments.SeriesRecord{
								Workload: cl.workload, Policy: cl.policy, Series: ins.Series}
							js.stream.flushSeries(i, cl.workload, cl.policy, ins.Series, streamed)
						}
						if canon.Metrics {
							snaps[i] = ins.Metrics
						}
						if canon.Trace {
							traces[i] = ins.Trace
						}
					}
				} else {
					var r core.Result
					r, err = experiments.RunCached(runCtx, canon.Config, cl.spec, cl.workload)
					js.progress.endSim(nil)
					if err == nil {
						results[i] = r
					}
				}
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					cancel()
				}
			}()
		}
		wg.Wait()
		js.traces = traces
		if firstErr != nil {
			return nil, firstErr
		}
		renderStart := time.Now()
		out.Results = results
		out.Series = series
		out.Metrics = snaps
		js.spans.Span("render", "job", renderStart, time.Now())
	case KindExperiment:
		e, err := experiments.ByID(canon.Experiment)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		var records []experiments.SeriesRecord
		opts := experiments.Options{
			Ctx:        ctx,
			Cfg:        canon.Config,
			Out:        &buf,
			Workloads:  canon.Workloads,
			OnProgress: js.progress.set,
		}
		if epoch > 0 {
			opts.Epoch = epoch
			// Experiments deliver whole series as each simulation
			// completes (OnSeries is serialized by the experiments layer),
			// so the stream carries each (workload, policy) series as one
			// contiguous run of epoch events with cell -1.
			opts.OnSeries = func(rec experiments.SeriesRecord) {
				records = append(records, rec)
				js.stream.flushSeries(-1, rec.Workload, rec.Policy, rec.Series, 0)
			}
		}
		if canon.Trace {
			opts.Trace = true
			opts.OnTrace = func(rec experiments.TraceRecord) {
				js.traces = append(js.traces, rec.Trace)
			}
		}
		if err := e.Run(opts); err != nil {
			return nil, err
		}
		renderStart := time.Now()
		sortSeriesRecords(records)
		out.Report = &ExperimentReport{ID: e.ID, Title: e.Title, Output: buf.String(), Series: records}
		js.spans.Span("render", "job", renderStart, time.Now())
	case KindScenario:
		// The scenario document was validated and normalized at admission;
		// its matrix fans out through the same memoised sched-governed path
		// as every other kind, and the cells land in matrix order — the
		// result document is the byte-stable golden form.
		res, err := experiments.RunScenario(ctx, canon.Config, canon.Scenario, js.progress.set)
		if err != nil {
			return nil, err
		}
		out.Scenario = res
	}
	return out, nil
}
