package server

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"sort"
	"sync/atomic"
	"time"

	"mellow/internal/engine"
	"mellow/internal/experiments"
	"mellow/internal/policy"
	"mellow/internal/sim"
)

// jobState is one submitted job's lifecycle record. Mutable fields are
// guarded by the owning Server's mutex; done closes on completion. The
// progress tracker is lock-free so the status handler can read it while
// the job runs.
type jobState struct {
	id    string
	key   string
	canon canonicalJob
	// timeout caps execution; zero means the server default.
	timeout time.Duration

	state      string
	err        string
	result     *JobResult
	queuedAt   time.Time
	startedAt  time.Time
	finishedAt time.Time
	done       chan struct{}

	progress jobProgress
}

// jobProgress is a job's live completion state: simulations finished
// out of the job's total, plus the running simulation's own tracker.
// Only the executing worker writes; status readers see a monotone
// non-decreasing fraction through the maxSeen clamp (the tracker handoff
// between simulations could otherwise read a hair backwards).
type jobProgress struct {
	totalSims atomic.Uint64
	doneSims  atomic.Uint64
	tracker   atomic.Pointer[engine.Tracker]
	last      atomic.Pointer[engine.EpochSample]
	maxSeen   atomic.Uint64 // float64 bits
}

func (p *jobProgress) setTotal(n int) {
	if n > 0 {
		p.totalSims.Store(uint64(n))
	}
}

// beginSim installs the next simulation's tracker (nil for unobserved
// runs, which contribute progress only on completion).
func (p *jobProgress) beginSim(tr *engine.Tracker) { p.tracker.Store(tr) }

// endSim retires the current simulation: its last epoch sample is kept
// for the status, the tracker is cleared, and the done count advances.
func (p *jobProgress) endSim() {
	if tr := p.tracker.Load(); tr != nil {
		if s := tr.Sample(); s != nil {
			p.last.Store(s)
		}
	}
	p.tracker.Store(nil)
	p.doneSims.Add(1)
}

// set records sweep progress reported by the experiments layer.
func (p *jobProgress) set(done, total int) {
	p.setTotal(total)
	if done >= 0 {
		p.doneSims.Store(uint64(done))
	}
}

// finish pins the fraction at 1 (job completed successfully).
func (p *jobProgress) finish() { p.clamp(1) }

// clamp publishes f through the monotone max filter and returns the
// published (never-decreasing) value.
func (p *jobProgress) clamp(f float64) float64 {
	if f < 0 || math.IsNaN(f) {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	for {
		old := p.maxSeen.Load()
		if math.Float64frombits(old) >= f {
			return math.Float64frombits(old)
		}
		if p.maxSeen.CompareAndSwap(old, math.Float64bits(f)) {
			return f
		}
	}
}

// fraction returns the job's completion in [0, 1], monotone across
// calls.
func (p *jobProgress) fraction() float64 {
	total := p.totalSims.Load()
	if total == 0 {
		return p.clamp(0)
	}
	f := float64(p.doneSims.Load())
	if tr := p.tracker.Load(); tr != nil {
		f += tr.Progress()
	}
	return p.clamp(f / float64(total))
}

// sample returns the freshest epoch sample: the running simulation's,
// or the last one a finished simulation left behind.
func (p *jobProgress) sample() *engine.EpochSample {
	if tr := p.tracker.Load(); tr != nil {
		if s := tr.Sample(); s != nil {
			return s
		}
	}
	return p.last.Load()
}

// status renders the job for the API. Callers hold the server mutex;
// the progress fields are read through their own atomics.
func (j *jobState) status(deduped bool) JobStatus {
	st := JobStatus{
		ID:       j.id,
		Key:      j.key,
		State:    j.state,
		Deduped:  deduped,
		Error:    j.err,
		Progress: j.progress.fraction(),
		Epoch:    j.progress.sample(),
		QueuedAt: j.queuedAt,
	}
	if !j.startedAt.IsZero() {
		t := j.startedAt
		st.StartedAt = &t
	}
	if !j.finishedAt.IsZero() {
		t := j.finishedAt
		st.FinishedAt = &t
		st.ElapsedMS = j.finishedAt.Sub(j.startedAt).Milliseconds()
	}
	if j.state == StateDone {
		st.Result = j.result
	}
	return st
}

// sortSeriesRecords puts sweep series in a canonical order: OnSeries
// delivers them in completion order, which is nondeterministic, but
// result bytes must be equal for equal keys. Records are keyed by
// (workload, policy) and — since one experiment can run the same pair
// under several configs — tie-broken by their full JSON encoding, so
// any remaining ties are byte-identical and order-irrelevant.
func sortSeriesRecords(records []experiments.SeriesRecord) {
	keys := make([]string, len(records))
	for i, r := range records {
		b, err := json.Marshal(r)
		if err != nil {
			b = []byte(r.Workload + "/" + r.Policy)
		}
		keys[i] = r.Workload + "\x00" + r.Policy + "\x00" + string(b)
	}
	sort.Sort(&recordSorter{records: records, keys: keys})
}

type recordSorter struct {
	records []experiments.SeriesRecord
	keys    []string
}

func (s *recordSorter) Len() int           { return len(s.records) }
func (s *recordSorter) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s *recordSorter) Swap(i, j int) {
	s.records[i], s.records[j] = s.records[j], s.records[i]
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
}

// runJob executes one job's simulations through the memoised harness,
// so identical sub-simulations across different jobs run once. A
// positive interval_ns runs them observed: per-epoch series land in the
// result and the jobState's progress tracker feeds the status API live.
func runJob(ctx context.Context, js *jobState) (*JobResult, error) {
	canon := js.canon
	out := &JobResult{Key: js.key, Kind: canon.Kind}
	epoch := sim.NS(canon.IntervalNS)
	switch canon.Kind {
	case KindSim, KindCompare:
		js.progress.setTotal(len(canon.Workloads) * len(canon.Policies))
		for _, w := range canon.Workloads {
			for _, p := range canon.Policies {
				spec, err := policy.Parse(p)
				if err != nil {
					return nil, err
				}
				if epoch > 0 {
					tr := &engine.Tracker{}
					js.progress.beginSim(tr)
					r, series, err := experiments.RunObserved(ctx, canon.Config, spec, w,
						experiments.Observation{Epoch: epoch, Tracker: tr})
					js.progress.endSim()
					if err != nil {
						return nil, err
					}
					out.Results = append(out.Results, r)
					out.Series = append(out.Series,
						experiments.SeriesRecord{Workload: w, Policy: p, Series: series})
				} else {
					r, err := experiments.RunCached(ctx, canon.Config, spec, w)
					js.progress.endSim()
					if err != nil {
						return nil, err
					}
					out.Results = append(out.Results, r)
				}
			}
		}
	case KindExperiment:
		e, err := experiments.ByID(canon.Experiment)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		var records []experiments.SeriesRecord
		opts := experiments.Options{
			Ctx:        ctx,
			Cfg:        canon.Config,
			Out:        &buf,
			Workloads:  canon.Workloads,
			OnProgress: js.progress.set,
		}
		if epoch > 0 {
			opts.Epoch = epoch
			opts.OnSeries = func(rec experiments.SeriesRecord) { records = append(records, rec) }
		}
		if err := e.Run(opts); err != nil {
			return nil, err
		}
		sortSeriesRecords(records)
		out.Report = &ExperimentReport{ID: e.ID, Title: e.Title, Output: buf.String(), Series: records}
	}
	return out, nil
}
