package server

import (
	"bytes"
	"context"
	"time"

	"mellow/internal/experiments"
	"mellow/internal/policy"
)

// jobState is one submitted job's lifecycle record. Mutable fields are
// guarded by the owning Server's mutex; done closes on completion.
type jobState struct {
	id    string
	key   string
	canon canonicalJob
	// timeout caps execution; zero means the server default.
	timeout time.Duration

	state      string
	err        string
	result     *JobResult
	queuedAt   time.Time
	startedAt  time.Time
	finishedAt time.Time
	done       chan struct{}
}

// status renders the job for the API. Callers hold the server mutex.
func (j *jobState) status(deduped bool) JobStatus {
	st := JobStatus{
		ID:       j.id,
		Key:      j.key,
		State:    j.state,
		Deduped:  deduped,
		Error:    j.err,
		QueuedAt: j.queuedAt,
	}
	if !j.startedAt.IsZero() {
		t := j.startedAt
		st.StartedAt = &t
	}
	if !j.finishedAt.IsZero() {
		t := j.finishedAt
		st.FinishedAt = &t
		st.ElapsedMS = j.finishedAt.Sub(j.startedAt).Milliseconds()
	}
	if j.state == StateDone {
		st.Result = j.result
	}
	return st
}

// runJob executes one job's simulations through the memoised harness,
// so identical sub-simulations across different jobs run once.
func runJob(ctx context.Context, canon canonicalJob, key string) (*JobResult, error) {
	out := &JobResult{Key: key, Kind: canon.Kind}
	switch canon.Kind {
	case KindSim, KindCompare:
		for _, w := range canon.Workloads {
			for _, p := range canon.Policies {
				spec, err := policy.Parse(p)
				if err != nil {
					return nil, err
				}
				r, err := experiments.RunCached(ctx, canon.Config, spec, w)
				if err != nil {
					return nil, err
				}
				out.Results = append(out.Results, r)
			}
		}
	case KindExperiment:
		e, err := experiments.ByID(canon.Experiment)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		err = e.Run(experiments.Options{
			Ctx:       ctx,
			Cfg:       canon.Config,
			Out:       &buf,
			Workloads: canon.Workloads,
		})
		if err != nil {
			return nil, err
		}
		out.Report = &ExperimentReport{ID: e.ID, Title: e.Title, Output: buf.String()}
	}
	return out, nil
}
