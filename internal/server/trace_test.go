package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"reflect"
	"strings"
	"testing"
	"time"

	"mellow/internal/experiments"
)

// chromeTrace mirrors the slice of the Chrome Trace Event Format the
// tests assert on.
type chromeTrace struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	OtherData       struct {
		TraceID string `json:"trace_id"`
	} `json:"otherData"`
	TraceEvents []struct {
		Name string  `json:"name"`
		Ph   string  `json:"ph"`
		Ts   float64 `json:"ts"`
		PID  int     `json:"pid"`
		TID  int     `json:"tid"`
	} `json:"traceEvents"`
}

func getTrace(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestJobTraceEndpoint submits a traced sim job and fetches its trace:
// the payload must be valid Chrome Trace Event Format with service
// spans and at least one simulation timeline — and the job result must
// be byte-for-byte what the untraced twin produces.
func TestJobTraceEndpoint(t *testing.T) {
	experiments.ResetCache()
	_, ts := newTestServer(t, Config{Workers: 2, BaseConfig: tinyBase(17)})

	plain, code := postJob(t, ts, `{"kind":"sim","workload":"gups","policy":"BE-Mellow+SC+WQ"}`)
	if code != http.StatusAccepted {
		t.Fatalf("untraced submit = %d", code)
	}
	plainDone := waitDone(t, ts, plain.ID)
	if plainDone.State != StateDone {
		t.Fatalf("untraced state = %s (%s)", plainDone.State, plainDone.Error)
	}

	traced, code := postJob(t, ts, `{"kind":"sim","workload":"gups","policy":"BE-Mellow+SC+WQ","trace":true}`)
	if code != http.StatusAccepted {
		t.Fatalf("traced submit = %d", code)
	}
	if traced.Key == plain.Key {
		t.Error("trace flag did not enter the job content address")
	}
	tracedDone := waitDone(t, ts, traced.ID)
	if tracedDone.State != StateDone {
		t.Fatalf("traced state = %s (%s)", tracedDone.State, tracedDone.Error)
	}
	// The determinism contract across the API: tracing changes the key
	// (a separate cache entry) but not one byte of the simulation output.
	if !reflect.DeepEqual(plainDone.Result.Results, tracedDone.Result.Results) {
		t.Error("traced job result differs from untraced twin")
	}

	resp, body := getTrace(t, ts.URL+"/v1/jobs/"+traced.ID+"/trace")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace fetch = %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}
	var doc chromeTrace
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ns" || len(doc.OtherData.TraceID) != 16 {
		t.Fatalf("bad trace header: unit %q, id %q", doc.DisplayTimeUnit, doc.OtherData.TraceID)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	spanNames, phaseKinds := map[string]bool{}, map[string]int{}
	for _, e := range doc.TraceEvents {
		phaseKinds[e.Ph]++
		if e.Ph == "b" {
			spanNames[e.Name] = true
		}
	}
	if !spanNames["queued"] || !spanNames["sim gups/BE-Mellow+SC+WQ"] {
		t.Errorf("service spans missing: %v", spanNames)
	}
	if phaseKinds["X"] == 0 {
		t.Error("no simulation slices in trace")
	}
	if !strings.Contains(string(body), "sim gups/BE-Mellow+SC+WQ") {
		t.Error("no simulation process metadata in trace")
	}

	// The untraced job has no trace artifact.
	resp, body = getTrace(t, ts.URL+"/v1/jobs/"+plain.ID+"/trace")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("untraced job trace fetch = %d: %s", resp.StatusCode, body)
	}
	// Unknown job ids 404.
	if resp, _ = getTrace(t, ts.URL+"/v1/jobs/nope/trace"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job trace fetch = %d", resp.StatusCode)
	}
}

// TestJobTraceConflictWhileRunning verifies the endpoint refuses to
// serve a trace before the job finishes.
func TestJobTraceConflictWhileRunning(t *testing.T) {
	experiments.ResetCache()
	base := tinyBase(19)
	base.Run.DetailedInstructions = 50_000_000 // seconds of work
	s, ts := newTestServer(t, Config{Workers: 1, BaseConfig: base})

	st, code := postJob(t, ts, `{"kind":"sim","workload":"stream","policy":"Norm","trace":true}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	resp, body := getTrace(t, ts.URL+"/v1/jobs/"+st.ID+"/trace")
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("trace fetch while running = %d: %s", resp.StatusCode, body)
	}
	// Hard-stop cancels the in-flight simulation; the job fails but its
	// service spans are still servable.
	stopCtx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(stopCtx); err != context.DeadlineExceeded {
		t.Fatalf("Shutdown err = %v, want DeadlineExceeded", err)
	}
	final := waitDone(t, ts, st.ID)
	if final.State != StateFailed {
		t.Fatalf("state after hard stop = %s", final.State)
	}
	resp, body = getTrace(t, ts.URL+"/v1/jobs/"+st.ID+"/trace")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace fetch after failure = %d: %s", resp.StatusCode, body)
	}
	var doc chromeTrace
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("failed-job trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Error("failed traced job exported no events (queued span expected)")
	}
}
