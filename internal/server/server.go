// Package server is the mellowd simulation service: a JSON API that
// turns the deterministic, memoised simulation harness into a shared,
// long-lived daemon. Jobs are admitted into a bounded queue (load past
// the bound is shed with 429), executed by a fixed worker pool, and
// deduplicated two ways — identical in-flight submissions join one job
// (singleflight), and finished work is served from a content-addressed
// result cache keyed on the canonical hash of (config, workload,
// policy, seed, run lengths).
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mellow/internal/config"
	"mellow/internal/joblog"
	"mellow/internal/metrics"
	"mellow/internal/sched"
	"mellow/internal/xtrace"
)

// Config sets the service's capacity knobs; zero values take defaults.
type Config struct {
	// Workers sizes the job worker pool (default: GOMAXPROCS). Workers
	// bound concurrent *jobs*; concurrent *simulations* are bounded
	// process-wide by SimBudget, however many jobs fan out at once.
	Workers int
	// SimBudget sets the process-wide simulation scheduler's slot
	// budget (default: GOMAXPROCS). It is the hard cap on in-flight
	// simulations across all jobs, sweeps and benchmarks in this
	// process.
	SimBudget int
	// QueueDepth bounds the admission queue; submissions beyond it are
	// shed with 429 + Retry-After (default: 4 × workers).
	QueueDepth int
	// JobTimeout caps each job's execution (default: 15 minutes).
	JobTimeout time.Duration
	// MaxResults bounds the finished-job/result cache (default: 1024).
	MaxResults int
	// BaseConfig seeds every job's configuration before per-request
	// overrides (default: the paper's baseline).
	BaseConfig *config.Config
	// Logger receives structured request and job logs (default: slog's
	// default logger).
	Logger *slog.Logger
	// JobLog, when set, is the write-ahead job log: every admission is
	// recorded (and fsynced) before it is acknowledged, lifecycle
	// transitions are appended as they happen, and Restore re-enqueues
	// the log's unfinished jobs after a crash. Nil disables durability.
	JobLog *joblog.Log
	// StreamBuffer bounds each job's live event log for
	// GET /v1/jobs/{id}/events (default DefaultStreamBuffer). Past the
	// bound epoch events are dropped and counted; results always keep
	// the full series.
	StreamBuffer int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.SimBudget <= 0 {
		c.SimBudget = runtime.GOMAXPROCS(0)
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 15 * time.Minute
	}
	if c.MaxResults <= 0 {
		c.MaxResults = 1024
	}
	if c.BaseConfig == nil {
		d := config.Default()
		c.BaseConfig = &d
	}
	if c.StreamBuffer <= 0 {
		c.StreamBuffer = DefaultStreamBuffer
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// Server is one mellowd instance: worker pool, queue, and caches.
type Server struct {
	cfg Config
	log *slog.Logger
	met *telemetry

	// runCtx is cancelled only on hard stop (drain deadline exceeded);
	// a graceful drain lets in-flight simulations finish under it.
	runCtx  context.Context
	hardTop context.CancelFunc

	queue chan *jobState
	wg    sync.WaitGroup

	mu       sync.Mutex
	draining bool
	jobs     map[string]*jobState // by id, bounded via finished
	byKey    map[string]*jobState // latest job per content address
	finished []string             // finished job ids, eviction order
	nextID   atomic.Uint64

	// exec runs one job; tests replace it to control timing.
	exec func(ctx context.Context, js *jobState) (*JobResult, error)
}

// New builds a Server and starts its worker pool. The process-wide
// simulation scheduler is resized to cfg.SimBudget: every simulation
// any job runs must hold a scheduler slot, so W concurrent jobs can
// never oversubscribe the machine W-fold.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	sched.Default().SetBudget(int64(cfg.SimBudget))
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		log:     cfg.Logger,
		runCtx:  ctx,
		hardTop: cancel,
		queue:   make(chan *jobState, cfg.QueueDepth),
		jobs:    map[string]*jobState{},
		byKey:   map[string]*jobState{},
		exec:    runJob,
	}
	s.met = newTelemetry(s.queueInfo)
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

func (s *Server) worker() {
	defer s.wg.Done()
	for js := range s.queue {
		s.execute(js)
	}
}

func (s *Server) execute(js *jobState) {
	s.mu.Lock()
	js.state = StateRunning
	js.startedAt = time.Now()
	timeout := js.timeout
	s.mu.Unlock()
	s.logAppend(false, joblog.Record{Type: joblog.TypeStart, ID: js.id, Key: js.key})
	s.met.observeWait(js.startedAt.Sub(js.queuedAt))
	s.met.running.Add(1)
	defer s.met.running.Add(-1)

	if timeout <= 0 || timeout > s.cfg.JobTimeout {
		timeout = s.cfg.JobTimeout
	}
	js.spans.Span("queued", "job", js.queuedAt, js.startedAt)
	ctx, cancel := context.WithTimeout(s.runCtx, timeout)
	// The span recorder travels in the context so lower layers (the
	// scheduler's parked acquires) stamp their own phases.
	ctx = xtrace.NewContext(ctx, js.spans)
	res, err := s.exec(ctx, js)
	cancel()

	s.mu.Lock()
	js.finishedAt = time.Now()
	if err != nil {
		js.state = StateFailed
		js.err = err.Error()
		s.met.failed.Add(1)
	} else {
		js.state = StateDone
		js.result = res
		js.progress.finish()
		s.met.completed.Add(1)
	}
	s.finished = append(s.finished, js.id)
	s.evictLocked()
	elapsed := js.finishedAt.Sub(js.startedAt)
	s.mu.Unlock()
	close(js.done)
	// Seal the event stream after the status is final, so a subscriber
	// woken by the terminal event reads a finished job.
	js.stream.finish(js.err)
	if err != nil {
		s.logAppend(false, joblog.Record{Type: joblog.TypeFail, ID: js.id, Key: js.key, Error: js.err})
	} else {
		s.logAppend(false, joblog.Record{Type: joblog.TypeFinish, ID: js.id, Key: js.key})
	}

	js.spans.Span("run", "job", js.startedAt, js.finishedAt,
		"kind", js.canon.Kind, "state", js.state)
	s.met.observe(js.canon.Kind, elapsed)
	// The content address rides on the log line so clients can re-find
	// this work by key after a restart re-assigns process-local ids.
	s.log.Info("job finished",
		"id", js.id, "key", js.key, "kind", js.canon.Kind, "state", js.state,
		"trace_id", js.spans.TraceID(),
		"elapsed_ms", elapsed.Milliseconds(), "err", js.err)
}

// logAppend records lifecycle transitions in the write-ahead job log.
// Only admits are fsynced (syncNow); losing a finish to a crash merely
// re-runs deterministic work. Append failures are logged, never fatal —
// availability over durability for everything past admission.
func (s *Server) logAppend(syncNow bool, recs ...joblog.Record) error {
	if s.cfg.JobLog == nil {
		return nil
	}
	if err := s.cfg.JobLog.Append(syncNow, recs...); err != nil {
		s.log.Error("joblog append failed", "err", err)
		return err
	}
	s.met.joblogEntries.Add(uint64(len(recs)))
	return nil
}

// evictLocked bounds the finished-job cache FIFO. Callers hold s.mu.
func (s *Server) evictLocked() {
	for len(s.finished) > s.cfg.MaxResults {
		id := s.finished[0]
		s.finished = s.finished[1:]
		js := s.jobs[id]
		delete(s.jobs, id)
		if js != nil && s.byKey[js.key] == js {
			delete(s.byKey, js.key)
		}
	}
}

// Submit admits one request: returns the job's status plus the HTTP
// code the API reports (202 accepted, 200 deduped/cached, 429 shed,
// 503 draining, 400 invalid).
func (s *Server) Submit(req JobRequest) (JobStatus, int, error) {
	canon, key, err := normalize(req, *s.cfg.BaseConfig)
	if err != nil {
		return JobStatus{}, http.StatusBadRequest, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()

	// Content-addressed reuse: an identical job that is finished (hit),
	// queued or running (singleflight join) answers this submission.
	// A failed job does not poison its key — fall through and retry.
	if prev, ok := s.byKey[key]; ok && prev.state != StateFailed {
		if prev.state == StateDone {
			s.met.resultHit.Add(1)
		} else {
			s.met.deduped.Add(1)
		}
		return prev.status(true), http.StatusOK, nil
	}

	if s.draining {
		return JobStatus{}, http.StatusServiceUnavailable, fmt.Errorf("server is draining")
	}

	// Capacity is checked under s.mu, and every queue sender holds s.mu
	// (workers only drain), so a send after a passing check can never
	// block. The old select/default raced nothing but read worse.
	if len(s.queue) >= cap(s.queue) {
		s.met.shed.Add(1)
		return JobStatus{}, http.StatusTooManyRequests,
			fmt.Errorf("queue full (%d jobs waiting)", s.cfg.QueueDepth)
	}

	js := s.newJob(canon, key, req.TimeoutSeconds)

	// Durability barrier: the admit record reaches disk (fsync) before
	// the job is enqueued or acknowledged. A crash after the 202 then
	// finds the job in the log and replays it; a crash before loses only
	// work the client was never promised.
	rec, err := admitRecord(js, req)
	if err != nil {
		return JobStatus{}, http.StatusInternalServerError, err
	}
	if err := s.logAppend(true, rec); err != nil {
		return JobStatus{}, http.StatusInternalServerError,
			fmt.Errorf("job log write failed: %v", err)
	}

	s.queue <- js
	s.jobs[js.id] = js
	s.byKey[key] = js
	s.met.accepted.Add(1)
	return js.status(false), http.StatusAccepted, nil
}

// newJob mints a jobState with a fresh process-local id. Callers hold
// s.mu.
func (s *Server) newJob(canon canonicalJob, key string, timeoutSeconds float64) *jobState {
	js := &jobState{
		id:       fmt.Sprintf("job-%06d", s.nextID.Add(1)),
		key:      key,
		canon:    canon,
		state:    StateQueued,
		queuedAt: time.Now(),
		done:     make(chan struct{}),
		stream:   newStreamLog(s.cfg.StreamBuffer, s.met.streamDropped),
	}
	if timeoutSeconds > 0 {
		js.timeout = time.Duration(timeoutSeconds * float64(time.Second))
	}
	if canon.Trace {
		js.spans = xtrace.NewSpanRecorder("")
	}
	return js
}

// admitRecord builds a job's write-ahead admit record. The original
// request rides in the payload so replay re-normalizes it against the
// (possibly restarted) server's base configuration.
func admitRecord(js *jobState, req JobRequest) (joblog.Record, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return joblog.Record{}, fmt.Errorf("job not serialisable: %v", err)
	}
	return joblog.Record{
		Type: joblog.TypeAdmit, ID: js.id, Key: js.key,
		Job: body, TimeoutSeconds: req.TimeoutSeconds,
	}, nil
}

// SubmitBatch admits a set of requests as one shed/accept decision:
// either every entry is answered (by cache, by joining an active job, or
// by a fresh enqueue) or the whole batch is rejected. Fresh entries are
// admitted with a single fsync of all their admit records. The returned
// statuses align with the request order; the HTTP code is 202 when
// anything was enqueued, 200 when every entry was already answered.
func (s *Server) SubmitBatch(breq BatchRequest) ([]JobStatus, int, error) {
	if len(breq.Jobs) == 0 {
		return nil, http.StatusBadRequest, fmt.Errorf("batch needs at least one job")
	}
	canons := make([]canonicalJob, len(breq.Jobs))
	keys := make([]string, len(breq.Jobs))
	for i, req := range breq.Jobs {
		canon, key, err := normalize(req, *s.cfg.BaseConfig)
		if err != nil {
			return nil, http.StatusBadRequest, fmt.Errorf("jobs[%d]: %v", i, err)
		}
		canons[i], keys[i] = canon, key
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, http.StatusServiceUnavailable, fmt.Errorf("server is draining")
	}

	// First pass: resolve each entry against the caches and count how
	// many fresh jobs the batch needs, deduplicating within the batch —
	// two identical entries cost one queue slot.
	fresh := 0
	inBatch := map[string]bool{}
	for i := range breq.Jobs {
		if prev, ok := s.byKey[keys[i]]; ok && prev.state != StateFailed {
			continue
		}
		if !inBatch[keys[i]] {
			inBatch[keys[i]] = true
			fresh++
		}
	}
	if free := cap(s.queue) - len(s.queue); fresh > free {
		s.met.shed.Add(1)
		return nil, http.StatusTooManyRequests,
			fmt.Errorf("batch needs %d queue slots, %d free", fresh, free)
	}

	// Second pass: mint the fresh jobs and their admit records. Nothing
	// is published until the whole batch's records are on disk.
	statuses := make([]JobStatus, len(breq.Jobs))
	minted := map[string]*jobState{}
	var newJobs []*jobState
	var recs []joblog.Record
	for i, req := range breq.Jobs {
		if prev, ok := s.byKey[keys[i]]; ok && prev.state != StateFailed {
			if prev.state == StateDone {
				s.met.resultHit.Add(1)
			} else {
				s.met.deduped.Add(1)
			}
			statuses[i] = prev.status(true)
			continue
		}
		if prev, ok := minted[keys[i]]; ok {
			s.met.deduped.Add(1)
			statuses[i] = prev.status(true)
			continue
		}
		js := s.newJob(canons[i], keys[i], req.TimeoutSeconds)
		rec, err := admitRecord(js, req)
		if err != nil {
			return nil, http.StatusBadRequest, fmt.Errorf("jobs[%d]: %v", i, err)
		}
		minted[keys[i]] = js
		newJobs = append(newJobs, js)
		recs = append(recs, rec)
		statuses[i] = js.status(false)
	}
	if len(recs) > 0 {
		if err := s.logAppend(true, recs...); err != nil {
			return nil, http.StatusInternalServerError,
				fmt.Errorf("job log write failed: %v", err)
		}
	}
	for _, js := range newJobs {
		s.queue <- js // cannot block: capacity checked above under s.mu
		s.jobs[js.id] = js
		s.byKey[js.key] = js
		s.met.accepted.Add(1)
	}
	code := http.StatusOK
	if len(newJobs) > 0 {
		code = http.StatusAccepted
	}
	return statuses, code, nil
}

// Restore replays the write-ahead job log: every admitted-but-unfinished
// job is re-enqueued under its original id (clients polling a pre-crash
// id find their work again), and the id counter is seeded past the
// largest id the previous process minted so new submissions can never
// collide with replayed ones. Call it once after New; it may run
// concurrently with live traffic — a client re-submitting replayed work
// simply joins it.
func (s *Server) Restore() (int, error) {
	l := s.cfg.JobLog
	if l == nil {
		return 0, nil
	}
	recs := l.Records()

	// Seed the id counter from every record, finished jobs included — a
	// restart must never hand a new job an id the old process used.
	var maxID uint64
	for _, r := range recs {
		if n, err := strconv.ParseUint(strings.TrimPrefix(r.ID, "job-"), 10, 64); err == nil && n > maxID {
			maxID = n
		}
	}
	for {
		cur := s.nextID.Load()
		if cur >= maxID || s.nextID.CompareAndSwap(cur, maxID) {
			break
		}
	}

	restored := 0
	for _, rec := range joblog.Pending(recs) {
		var req JobRequest
		if err := json.Unmarshal(rec.Job, &req); err != nil {
			s.log.Error("joblog: replayed admit not decodable, skipping",
				"id", rec.ID, "err", err)
			continue
		}
		canon, key, err := normalize(req, *s.cfg.BaseConfig)
		if err != nil {
			s.log.Error("joblog: replayed job no longer valid, skipping",
				"id", rec.ID, "err", err)
			continue
		}
		if key != rec.Key {
			s.log.Warn("joblog: replayed job re-keyed (base config changed?)",
				"id", rec.ID, "logged_key", rec.Key, "key", key)
		}
		js := &jobState{
			id:       rec.ID,
			key:      key,
			canon:    canon,
			state:    StateQueued,
			queuedAt: time.Now(),
			done:     make(chan struct{}),
			stream:   newStreamLog(s.cfg.StreamBuffer, s.met.streamDropped),
		}
		if rec.TimeoutSeconds > 0 {
			js.timeout = time.Duration(rec.TimeoutSeconds * float64(time.Second))
		}
		if canon.Trace {
			js.spans = xtrace.NewSpanRecorder("")
		}
		ok, err := s.enqueueReplayed(js)
		if err != nil {
			return restored, err
		}
		if ok {
			restored++
			s.log.Info("joblog: job replayed", "id", js.id, "key", js.key)
		}
	}
	s.met.replayed.Set(float64(restored))
	return restored, nil
}

// enqueueReplayed admits one replayed job, waiting for queue space —
// the log can hold more pending jobs than the queue bound, and the
// workers are already draining it. Returns false when the job's key is
// already active (a client beat the replay to it).
func (s *Server) enqueueReplayed(js *jobState) (bool, error) {
	for {
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			return false, fmt.Errorf("server is draining")
		}
		if prev, ok := s.byKey[js.key]; ok && prev.state != StateFailed {
			s.mu.Unlock()
			return false, nil
		}
		if len(s.queue) < cap(s.queue) {
			s.queue <- js
			s.jobs[js.id] = js
			s.byKey[js.key] = js
			s.met.accepted.Add(1)
			s.mu.Unlock()
			return true, nil
		}
		s.mu.Unlock()
		time.Sleep(10 * time.Millisecond)
	}
}

// Job returns one job's status by id.
func (s *Server) Job(id string) (JobStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	js, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	return js.status(false), true
}

// Result returns the content-addressed result for key, if finished.
func (s *Server) Result(key string) (*JobResult, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	js, ok := s.byKey[key]
	if !ok || js.state != StateDone {
		return nil, false
	}
	return js.result, true
}

// Shutdown drains gracefully: stop admitting, let workers finish every
// queued and in-flight job, and return. If ctx expires first, in-flight
// simulations are cancelled at their next checkpoint and ctx's error is
// returned once the pool exits.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.mu.Unlock()
	if !already {
		close(s.queue)
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.hardTop()
		<-done
		return ctx.Err()
	}
}

// Handler returns the service's HTTP API with request logging.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("POST /v1/jobs:batch", s.handleSubmitBatch)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleJobTrace)
	mux.HandleFunc("GET /v1/results/{key}", s.handleResult)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s.logRequests(mux)
}

// maxBodyBytes bounds request bodies; a full Config is ~2 KB.
const maxBodyBytes = 1 << 20

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, APIError{Error: "bad request body: " + err.Error()})
		return
	}
	st, code, err := s.Submit(req)
	if err != nil {
		if code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable {
			w.Header().Set("Retry-After", "1")
		}
		writeJSON(w, code, APIError{Error: err.Error()})
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+st.ID)
	writeJSON(w, code, st)
}

// handleSubmitBatch serves POST /v1/jobs:batch: many submissions, one
// shed/accept decision, one fsync for all the fresh admits.
func (s *Server) handleSubmitBatch(w http.ResponseWriter, r *http.Request) {
	var breq BatchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&breq); err != nil {
		writeJSON(w, http.StatusBadRequest, APIError{Error: "bad request body: " + err.Error()})
		return
	}
	sts, code, err := s.SubmitBatch(breq)
	if err != nil {
		if code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable {
			w.Header().Set("Retry-After", "1")
		}
		writeJSON(w, code, APIError{Error: err.Error()})
		return
	}
	writeJSON(w, code, BatchResponse{Jobs: sts})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	st, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, APIError{Error: "unknown job id"})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleJobTrace serves a finished traced job's execution trace as
// Chrome Trace Event Format JSON (loadable in Perfetto). The trace is
// a separate artifact from the job result, which stays byte-identical
// to an untraced run's.
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	js, ok := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		writeJSON(w, http.StatusNotFound, APIError{Error: "unknown job id"})
		return
	}
	if js.spans == nil {
		writeJSON(w, http.StatusNotFound, APIError{Error: `job was not submitted with "trace": true`})
		return
	}
	select {
	case <-js.done:
	default:
		writeJSON(w, http.StatusConflict, APIError{Error: "job not finished; poll GET /v1/jobs/{id}"})
		return
	}
	doc := &xtrace.Doc{
		TraceID: js.spans.TraceID(),
		Origin:  js.queuedAt,
		Spans:   js.spans.Spans(),
		Sims:    js.traces,
	}
	w.Header().Set("Content-Type", "application/json")
	if err := doc.WriteChrome(w); err != nil {
		s.log.Error("trace render failed", "id", js.id, "err", err)
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	res, ok := s.Result(r.PathValue("key"))
	if !ok {
		writeJSON(w, http.StatusNotFound, APIError{Error: "no finished result for key"})
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	st := struct {
		Status    string `json:"status"`
		Jobs      int    `json:"jobs"`
		Queue     int    `json:"queue_depth"`
		Workers   int    `json:"workers"`
		SimBudget int    `json:"sim_budget"`
	}{"ok", len(s.jobs), len(s.queue), s.cfg.Workers, s.cfg.SimBudget}
	if s.draining {
		st.Status = "draining"
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

// queueInfo reports queue occupancy for the snapshot-time gauges.
func (s *Server) queueInfo() queueInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	return queueInfo{
		depth:    len(s.queue),
		capacity: s.cfg.QueueDepth,
		workers:  s.cfg.Workers,
		results:  len(s.finished),
	}
}

// Metrics returns a point-in-time snapshot of the process registry —
// the same families /metrics renders, in the JSON-codec form.
func (s *Server) Metrics() metrics.Snapshot { return s.met.snapshot() }

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	// The snapshot is taken first (collectors hold their own locks only
	// while it is built); rendering to however slow a scraper happens
	// with nothing held, so scrapes never block job completions.
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.met.write(w)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	// Marshal before touching the response so an encoding failure can
	// still become a 500 instead of a truncated 2xx.
	b, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"response not serialisable"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(b, '\n'))
}

// statusRecorder captures the response code for the request log.
type statusRecorder struct {
	http.ResponseWriter
	code  int
	bytes int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	n, err := r.ResponseWriter.Write(b)
	r.bytes += n
	return n, err
}

// Flush delegates so the SSE handler's Flusher assertion sees through
// the logging wrapper.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap supports http.NewResponseController.
func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

func (s *Server) logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(rec, r)
		s.log.Info("request",
			"method", r.Method, "path", r.URL.Path,
			"status", rec.code, "bytes", rec.bytes,
			"dur_ms", strconv.FormatFloat(float64(time.Since(start).Microseconds())/1000, 'f', 3, 64))
	})
}
