package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mellow/internal/engine"
)

// readEventsErr subscribes to a job's SSE feed and decodes events until
// the terminal done/failed event (which is included) or the deadline.
// It is goroutine-safe (no testing.T calls) so subscribers can run
// concurrently with the job.
func readEventsErr(ts *httptest.Server, id string) ([]StreamEvent, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("events subscribe = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		return nil, fmt.Errorf("Content-Type = %q, want text/event-stream", ct)
	}
	var events []StreamEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue // id:, event:, keepalive comments, blank separators
		}
		var ev StreamEvent
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			return nil, fmt.Errorf("bad event payload %q: %v", line, err)
		}
		events = append(events, ev)
		if ev.Type == EventDone || ev.Type == EventFailed {
			return events, nil
		}
	}
	return nil, fmt.Errorf("stream ended without a terminal event (%d events, scan err %v)", len(events), sc.Err())
}

func readEvents(t *testing.T, ts *httptest.Server, id string) []StreamEvent {
	t.Helper()
	events, err := readEventsErr(ts, id)
	if err != nil {
		t.Fatal(err)
	}
	return events
}

// epochJSON renders a subscriber's epoch events for one cell as JSON
// lines — the byte-level form both sides of the determinism contract
// are compared in.
func epochJSON(t *testing.T, events []StreamEvent, cell int) []string {
	t.Helper()
	var out []string
	for _, ev := range events {
		if ev.Type != EventEpoch || ev.Cell != cell {
			continue
		}
		b, err := json.Marshal(ev.Sample)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, string(b))
	}
	return out
}

// seriesJSON renders a result series the same way.
func seriesJSON(t *testing.T, st JobStatus, cell int) []string {
	t.Helper()
	if st.Result == nil || cell >= len(st.Result.Series) {
		t.Fatalf("result has no series for cell %d", cell)
	}
	var out []string
	for _, s := range st.Result.Series[cell].Series {
		s := s
		b, err := json.Marshal(&s)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, string(b))
	}
	return out
}

func sameLines(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestStreamMatchesResultSeries is the streaming face of the
// determinism contract: subscribers attached while the job is queued
// and long after it finished both observe, per cell, exactly the epoch
// series the finished result embeds — identical bytes, identical order.
func TestStreamMatchesResultSeries(t *testing.T) {
	t.Parallel()
	_, ts := newTestServer(t, Config{Workers: 2, SimBudget: 4, BaseConfig: tinyBase(401)})
	st, code := postJob(t, ts,
		`{"kind":"compare","workloads":["stream","gups"],"policies":["BE-Mellow+SC"],"interval_ns":40000}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", code)
	}

	// Early subscriber: attached before the run, lives through it.
	type sub struct {
		events []StreamEvent
		err    error
	}
	earlyCh := make(chan sub, 1)
	go func() {
		events, err := readEventsErr(ts, st.ID)
		earlyCh <- sub{events, err}
	}()

	fin := waitDone(t, ts, st.ID)
	if fin.State != StateDone {
		t.Fatalf("job failed: %s", fin.Error)
	}
	got := <-earlyCh
	if got.err != nil {
		t.Fatalf("early subscriber: %v", got.err)
	}
	early := got.events
	// Late subscriber: attached after completion, replays from scratch.
	late := readEvents(t, ts, st.ID)

	if last := early[len(early)-1]; last.Type != EventDone {
		t.Fatalf("early subscriber terminal = %s, want done", last.Type)
	}
	for i, ev := range late {
		if ev.Seq != i {
			t.Fatalf("late subscriber seq[%d] = %d: replay must start at 0", i, ev.Seq)
		}
	}
	for cell := 0; cell < 2; cell++ {
		want := seriesJSON(t, fin, cell)
		if len(want) == 0 {
			t.Fatalf("cell %d: result series empty", cell)
		}
		if got := epochJSON(t, early, cell); !sameLines(got, want) {
			t.Errorf("cell %d: early subscriber saw %d epochs, result embeds %d (or bytes differ)",
				cell, len(got), len(want))
		}
		if got := epochJSON(t, late, cell); !sameLines(got, want) {
			t.Errorf("cell %d: late subscriber saw %d epochs, result embeds %d (or bytes differ)",
				cell, len(got), len(want))
		}
	}
	if !sameLines(eventJSON(t, early), eventJSON(t, late)) {
		t.Error("early and late subscribers observed different event sequences")
	}
}

// eventJSON renders a whole event sequence as JSON lines.
func eventJSON(t *testing.T, events []StreamEvent) []string {
	t.Helper()
	out := make([]string, len(events))
	for i, ev := range events {
		b, err := json.Marshal(ev)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = string(b)
	}
	return out
}

// TestStreamMemoHitFlushes submits the same underlying simulation twice
// under two job keys (sim vs compare kind). The second job's simulation
// is a memo hit — no live OnEpoch callbacks fire — so its stream is fed
// entirely by the completion-time series flush, and must still match
// its result series exactly.
func TestStreamMemoHitFlushes(t *testing.T) {
	t.Parallel()
	_, ts := newTestServer(t, Config{Workers: 2, BaseConfig: tinyBase(409)})
	first, code := postJob(t, ts,
		`{"kind":"sim","workload":"stream","policy":"Norm","interval_ns":40000}`)
	if code != http.StatusAccepted {
		t.Fatalf("first submit = %d", code)
	}
	if fin := waitDone(t, ts, first.ID); fin.State != StateDone {
		t.Fatalf("first job failed: %s", fin.Error)
	}
	second, code := postJob(t, ts,
		`{"kind":"compare","workloads":["stream"],"policies":["Norm"],"interval_ns":40000}`)
	if code != http.StatusAccepted {
		t.Fatalf("second submit = %d (the compare kind must not dedupe against the sim kind)", code)
	}
	fin := waitDone(t, ts, second.ID)
	if fin.State != StateDone {
		t.Fatalf("second job failed: %s", fin.Error)
	}
	events := readEvents(t, ts, second.ID)
	want := seriesJSON(t, fin, 0)
	if len(want) == 0 {
		t.Fatal("result series empty")
	}
	if got := epochJSON(t, events, 0); !sameLines(got, want) {
		t.Errorf("memo-hit stream: %d epochs vs %d in result (or bytes differ)", len(got), len(want))
	}
}

// TestStreamFailedJob checks a failing job's stream terminates with a
// failed event carrying the error.
func TestStreamFailedJob(t *testing.T) {
	t.Parallel()
	s, ts := newTestServer(t, Config{Workers: 1, BaseConfig: tinyBase(419)})
	s.exec = func(ctx context.Context, js *jobState) (*JobResult, error) {
		return nil, fmt.Errorf("boom")
	}
	st, code := postJob(t, ts, `{"kind":"sim","workload":"stream","policy":"Norm"}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	waitDone(t, ts, st.ID)
	events := readEvents(t, ts, st.ID)
	last := events[len(events)-1]
	if last.Type != EventFailed || !strings.Contains(last.Error, "boom") {
		t.Fatalf("terminal = %+v, want failed event carrying the error", last)
	}
}

// TestStreamUnknownJob checks the 404 path.
func TestStreamUnknownJob(t *testing.T) {
	t.Parallel()
	_, ts := newTestServer(t, Config{Workers: 1, BaseConfig: tinyBase(421)})
	resp, err := http.Get(ts.URL + "/v1/jobs/job-999999/events")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("events for unknown job = %d, want 404", resp.StatusCode)
	}
}

// TestStreamLogBound pins the drop policy: epoch events past the bound
// are dropped and counted, exactly one truncated marker is appended,
// published events are never mutated, and the terminal event still
// lands and seals the log.
func TestStreamLogBound(t *testing.T) {
	t.Parallel()
	l := newStreamLog(2, nil)
	for i := 0; i < 5; i++ {
		l.append(StreamEvent{Type: EventEpoch, Cell: i})
	}
	l.finish("")
	evs, sealed, _ := l.next(0)
	if !sealed {
		t.Fatal("log not sealed after finish")
	}
	types := make([]string, len(evs))
	for i, ev := range evs {
		types[i] = ev.Type
		if ev.Seq != i {
			t.Errorf("seq[%d] = %d", i, ev.Seq)
		}
	}
	want := []string{EventEpoch, EventEpoch, EventTruncated, EventDone}
	if !sameLines(types, want) {
		t.Fatalf("event types = %v, want %v", types, want)
	}
	if l.dropped != 3 {
		t.Errorf("dropped = %d, want 3", l.dropped)
	}
	if evs[2].Dropped != 1 {
		t.Errorf("truncated marker carries Dropped=%d; published events are immutable", evs[2].Dropped)
	}
	// Appends after the terminal are ignored.
	l.append(StreamEvent{Type: EventEpoch})
	if evs2, _, _ := l.next(0); len(evs2) != len(evs) {
		t.Error("append after terminal extended the log")
	}
}

// TestStreamLogNilSafe: jobStates built by hand in tests carry no
// stream; every method must tolerate the nil receiver.
func TestStreamLogNilSafe(t *testing.T) {
	t.Parallel()
	var l *streamLog
	l.append(StreamEvent{Type: EventEpoch})
	l.epoch(0, "w", "p", engine.EpochSample{})
	l.flushSeries(0, "w", "p", nil, 0)
	l.finish("")
}
