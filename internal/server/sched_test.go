package server

import (
	"context"
	"fmt"
	"net/http"
	"reflect"
	"testing"
	"time"

	"mellow/internal/experiments"
	"mellow/internal/sched"
)

// TestNormalizeDedup: duplicate operands collapse and both lists get a
// canonical order, so spellings of the same work share one content
// address (and one result-cache entry) and the progress total counts
// each simulation once.
func TestNormalizeDedup(t *testing.T) {
	base := tinyBase(3)

	// workload + workloads naming the same benchmark means it once.
	c, k1, err := normalize(JobRequest{
		Kind: KindCompare, Workload: "gups", Workloads: []string{"gups", "stream"},
		Policies: []string{"Norm", "BE-Mellow+SC"},
	}, *base)
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"gups", "stream"}; !reflect.DeepEqual(c.Workloads, want) {
		t.Fatalf("workloads = %v, want deduped sorted %v", c.Workloads, want)
	}

	// Same policies, different order and a duplicate: same canonical
	// form, same key.
	c2, k2, err := normalize(JobRequest{
		Kind: KindCompare, Workloads: []string{"stream", "gups", "gups"},
		Policies: []string{"BE-Mellow+SC", "Norm", "Norm"},
	}, *base)
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"BE-Mellow+SC", "Norm"}; !reflect.DeepEqual(c2.Policies, want) {
		t.Fatalf("policies = %v, want deduped sorted %v", c2.Policies, want)
	}
	if k1 != k2 {
		t.Errorf("equivalent compare jobs hash differently:\n%s\n%s", k1, k2)
	}

	// The policy field merges and dedupes like the workload field.
	c3, k3, err := normalize(JobRequest{
		Kind: KindCompare, Workloads: []string{"gups", "stream"},
		Policy: "Norm", Policies: []string{"BE-Mellow+SC", "Norm"},
	}, *base)
	if err != nil {
		t.Fatal(err)
	}
	if len(c3.Policies) != 2 || k3 != k1 {
		t.Errorf("policy+policies merge: %v (key match %v)", c3.Policies, k3 == k1)
	}
}

// TestIntervalValidationHTTP: out-of-bounds interval_ns is rejected at
// admission with 400 — not discovered as an OOM mid-simulation.
func TestIntervalValidationHTTP(t *testing.T) {
	experiments.ResetCache()
	_, ts := newTestServer(t, Config{Workers: 1, BaseConfig: tinyBase(19)})

	for _, bad := range []string{
		`{"kind":"sim","workload":"stream","policy":"Norm","interval_ns":1}`,
		`{"kind":"sim","workload":"stream","policy":"Norm","interval_ns":999}`,
		// One past MaxIntervalNS: the ns→tick conversion would overflow.
		`{"kind":"sim","workload":"stream","policy":"Norm","interval_ns":9223372036854775808}`,
	} {
		if _, code := postJob(t, ts, bad); code != http.StatusBadRequest {
			t.Errorf("body %s: code = %d, want 400", bad, code)
		}
	}

	// The floor itself is accepted and the job runs to completion.
	st, code := postJob(t, ts, `{"kind":"sim","workload":"stream","policy":"Norm","interval_ns":2000}`)
	if code != http.StatusAccepted {
		t.Fatalf("valid interval rejected with %d", code)
	}
	if fin := waitDone(t, ts, st.ID); fin.State != StateDone {
		t.Fatalf("state = %s (%s)", fin.State, fin.Error)
	}
}

// TestMixedLoadRespectsBudget is the oversubscription acceptance check
// (run under -race in CI): with SimBudget B, a mix of sim, compare and
// experiment jobs running on more than B workers never has more than B
// simulations executing at once.
func TestMixedLoadRespectsBudget(t *testing.T) {
	experiments.ResetCache()
	const budget = 2
	_, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 16, SimBudget: budget, BaseConfig: tinyBase(101)})

	bodies := []string{
		`{"kind":"sim","workload":"stream","policy":"BE-Mellow+SC"}`,
		`{"kind":"compare","workload":"gups","policies":["Norm","BE-Mellow+SC"]}`,
		`{"kind":"experiment","experiment":"fig3","workloads":["lbm","mcf"]}`,
	}
	var ids []string
	for _, b := range bodies {
		st, code := postJob(t, ts, b)
		if code != http.StatusAccepted {
			t.Fatalf("body %s: code %d", b, code)
		}
		ids = append(ids, st.ID)
	}
	for _, id := range ids {
		if fin := waitDone(t, ts, id); fin.State != StateDone {
			t.Fatalf("job %s: state = %s (%s)", id, fin.State, fin.Error)
		}
	}

	cs := experiments.CacheSnapshot()
	if cs.Misses <= budget {
		t.Fatalf("only %d simulations executed; the mix should exceed the budget %d", cs.Misses, budget)
	}
	if cs.PeakRunning > budget {
		t.Fatalf("peak concurrent simulations = %d, exceeds budget %d", cs.PeakRunning, budget)
	}
}

// TestWideJobCannotStarveSmall pins the scheduler's FIFO guarantee end
// to end: a small sim job parked behind one wide experiment job is
// granted before a second wide job submitted after it — a stream of
// wide work cannot push the small job back indefinitely.
func TestWideJobCannotStarveSmall(t *testing.T) {
	experiments.ResetCache()
	_, ts := newTestServer(t, Config{Workers: 3, QueueDepth: 16, SimBudget: 1, BaseConfig: tinyBase(103)})

	// Registered acquires (granted + parked) observed so far; every
	// memo-miss simulation registers exactly one.
	registered := func() uint64 {
		st := sched.Default().Stats()
		return st.Acquires + uint64(st.Waiters)
	}
	waitRegistered := func(n uint64) {
		deadline := time.Now().Add(20 * time.Second)
		for time.Now().Before(deadline) {
			if registered() >= n {
				return
			}
			time.Sleep(time.Millisecond)
		}
		t.Fatalf("scheduler never saw %d registered acquires (have %d)", n, registered())
	}
	r0 := registered()

	// Wide job A: 4 simulations, all queued at once against budget 1.
	wideA, code := postJob(t, ts, `{"kind":"experiment","experiment":"fig3","workloads":["lbm","mcf","milc","gups"]}`)
	if code != http.StatusAccepted {
		t.Fatal(code)
	}
	waitRegistered(r0 + 4)

	// Small job parks behind A's queued work...
	small, code := postJob(t, ts, `{"kind":"sim","workload":"stream","policy":"Norm"}`)
	if code != http.StatusAccepted {
		t.Fatal(code)
	}
	waitRegistered(r0 + 5)

	// ...and wide job B arrives after it (distinct seed: no memo reuse).
	wideB, code := postJob(t, ts, `{"kind":"experiment","experiment":"fig3","workloads":["lbm","mcf","milc","gups"],"seed":104}`)
	if code != http.StatusAccepted {
		t.Fatal(code)
	}

	finSmall := waitDone(t, ts, small.ID)
	if finSmall.State != StateDone {
		t.Fatalf("small job: %s (%s)", finSmall.State, finSmall.Error)
	}
	finB := waitDone(t, ts, wideB.ID)
	if finB.State != StateDone {
		t.Fatalf("wide job B: %s (%s)", finB.State, finB.Error)
	}
	waitDone(t, ts, wideA.ID)

	// FIFO: the small job's one simulation was granted before any of
	// B's four, so it must finish first.
	if finSmall.FinishedAt.After(*finB.FinishedAt) {
		t.Errorf("small job finished at %v, after the later wide job's %v — starved past FIFO order",
			finSmall.FinishedAt, finB.FinishedAt)
	}
}

// TestFailedJobProgressCoherent: a job whose simulations fail still
// accounts for every attempted simulation, so its progress fraction
// ends at a defined value (1: all attempts retired) instead of
// freezing wherever the first error happened to land.
func TestFailedJobProgressCoherent(t *testing.T) {
	experiments.ResetCache()
	base := tinyBase(47)
	canon, key, err := normalize(JobRequest{
		Kind: KindCompare, Workloads: []string{"gups", "stream"},
		Policies: []string{"BE-Mellow+SC", "Norm"},
	}, *base)
	if err != nil {
		t.Fatal(err)
	}
	js := &jobState{id: "t-fail", key: key, canon: canon, done: make(chan struct{})}

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // every simulation fails at admission to the scheduler
	if _, err := runJob(ctx, js); err == nil {
		t.Fatal("cancelled job succeeded")
	}
	if got := js.progress.fraction(); got != 1 {
		t.Fatalf("failed job fraction = %v, want 1 (all %d attempts retired)",
			got, js.progress.totalSims.Load())
	}
}

// TestParallelMatrixOrdering: the fan-out must preserve the sequential
// (workload-major, policy-minor) result order however cells finish.
func TestParallelMatrixOrdering(t *testing.T) {
	experiments.ResetCache()
	_, ts := newTestServer(t, Config{Workers: 2, SimBudget: 4, BaseConfig: tinyBase(53)})
	st, code := postJob(t, ts,
		`{"kind":"compare","workloads":["gups","stream"],"policies":["Norm","BE-Mellow+SC"]}`)
	if code != http.StatusAccepted {
		t.Fatal(code)
	}
	fin := waitDone(t, ts, st.ID)
	if fin.State != StateDone {
		t.Fatalf("state = %s (%s)", fin.State, fin.Error)
	}
	var got []string
	for _, r := range fin.Result.Results {
		got = append(got, fmt.Sprintf("%s/%s", r.Workload, r.Policy))
	}
	want := []string{"gups/BE-Mellow+SC", "gups/Norm", "stream/BE-Mellow+SC", "stream/Norm"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("result order = %v, want %v", got, want)
	}
}
