package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mellow/internal/config"
	"mellow/internal/experiments"
)

// tinyBase keeps API tests fast: ~50k instructions per simulation.
func tinyBase(seed uint64) *config.Config {
	cfg := config.Default()
	cfg.Run.WarmupInstructions = 0
	cfg.Run.DetailedInstructions = 50_000
	cfg.Run.Seed = seed
	return &cfg
}

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = quietLogger()
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, ts
}

func postJob(t *testing.T, ts *httptest.Server, body string) (JobStatus, int) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("decode status: %v", err)
		}
	}
	return st, resp.StatusCode
}

func waitDone(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State == StateDone || st.State == StateFailed {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return JobStatus{}
}

func TestSubmitPollFetch(t *testing.T) {
	experiments.ResetCache()
	_, ts := newTestServer(t, Config{Workers: 2, BaseConfig: tinyBase(11)})

	st, code := postJob(t, ts, `{"kind":"sim","workload":"stream","policy":"BE-Mellow+SC"}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit code = %d, want 202", code)
	}
	if st.ID == "" || len(st.Key) != 64 {
		t.Fatalf("bad status: %+v", st)
	}

	final := waitDone(t, ts, st.ID)
	if final.State != StateDone {
		t.Fatalf("state = %s (%s)", final.State, final.Error)
	}
	if len(final.Result.Results) != 1 || final.Result.Results[0].IPC <= 0 {
		t.Fatalf("bad result: %+v", final.Result)
	}
	if final.Result.Results[0].Policy != "BE-Mellow+SC" {
		t.Errorf("policy = %q", final.Result.Results[0].Policy)
	}

	// The same payload is addressable by key.
	resp, err := http.Get(ts.URL + "/v1/results/" + st.Key)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result fetch = %d", resp.StatusCode)
	}
	var jr JobResult
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatal(err)
	}
	if jr.Key != st.Key || len(jr.Results) != 1 {
		t.Fatalf("bad content-addressed result: %+v", jr)
	}

	// Unknown ids and keys 404.
	if r, _ := http.Get(ts.URL + "/v1/jobs/nope"); r.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job = %d, want 404", r.StatusCode)
	}
	if r, _ := http.Get(ts.URL + "/v1/results/feedbeef"); r.StatusCode != http.StatusNotFound {
		t.Errorf("unknown key = %d, want 404", r.StatusCode)
	}
}

func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, BaseConfig: tinyBase(1)})
	for _, body := range []string{
		`{"kind":"sim","policy":"Norm"}`,                                  // no workload
		`{"kind":"sim","workload":"stream"}`,                              // no policy
		`{"kind":"sim","workload":"nope","policy":"Norm"}`,                // bad workload
		`{"kind":"sim","workload":"stream","policy":"Bogus"}`,             // bad policy
		`{"kind":"experiment"}`,                                           // no id
		`{"kind":"experiment","experiment":"fig99"}`,                      // bad id
		`{"kind":"warp"}`,                                                 // bad kind
		`{"kind":"sim","workload":"stream","policy":"Norm","detailed":0}`, // invalid config
		`{nope`, // malformed JSON
	} {
		if _, code := postJob(t, ts, body); code != http.StatusBadRequest {
			t.Errorf("body %s: code = %d, want 400", body, code)
		}
	}
}

// TestDedupConcurrent is the singleflight acceptance check: concurrent
// identical submissions trigger exactly one simulation, proven by the
// dedup metric and the memo-cache miss counter.
func TestDedupConcurrent(t *testing.T) {
	experiments.ResetCache()
	s, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 32, BaseConfig: tinyBase(23)})

	// Hold job execution on a gate so every submission lands while the
	// first job is demonstrably still active.
	gate := make(chan struct{})
	realExec := s.exec
	s.exec = func(ctx context.Context, js *jobState) (*JobResult, error) {
		<-gate
		return realExec(ctx, js)
	}

	const clients = 8
	body := `{"kind":"sim","workload":"gups","policy":"Norm","seed":23}`
	var wg sync.WaitGroup
	ids := make([]string, clients)
	codes := make([]int, clients)
	for i := 0; i < clients; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			st, code := postJob(t, ts, body)
			ids[i], codes[i] = st.ID, code
		}()
	}
	wg.Wait()
	close(gate)

	accepted := 0
	for i, code := range codes {
		switch code {
		case http.StatusAccepted:
			accepted++
		case http.StatusOK:
		default:
			t.Fatalf("client %d: code %d", i, code)
		}
		if ids[i] != ids[0] {
			t.Errorf("client %d joined job %s, client 0 got %s", i, ids[i], ids[0])
		}
	}
	if accepted != 1 {
		t.Errorf("%d submissions enqueued, want exactly 1", accepted)
	}
	if got := s.met.deduped.Value(); got != clients-1 {
		t.Errorf("deduped metric = %d, want %d", got, clients-1)
	}

	final := waitDone(t, ts, ids[0])
	if final.State != StateDone {
		t.Fatalf("state = %s (%s)", final.State, final.Error)
	}
	if st := experiments.CacheSnapshot(); st.Misses != 1 {
		t.Errorf("simulations executed = %d, want exactly 1", st.Misses)
	}

	// A post-completion identical submission is a result-cache hit.
	st, code := postJob(t, ts, body)
	if code != http.StatusOK || !st.Deduped || st.State != StateDone || st.Result == nil {
		t.Errorf("cached resubmit: code=%d status=%+v", code, st)
	}
	if s.met.resultHit.Value() == 0 {
		t.Error("result cache hit not counted")
	}
}

// TestShedsUnderSaturation fills the pool and queue with gated jobs and
// checks the overflow submission is shed with 429 + Retry-After.
func TestShedsUnderSaturation(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 2, BaseConfig: tinyBase(31)})
	gate := make(chan struct{})
	s.exec = func(ctx context.Context, js *jobState) (*JobResult, error) {
		select {
		case <-gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return &JobResult{Key: js.key, Kind: js.canon.Kind}, nil
	}

	// Distinct seeds make distinct keys: 1 running + 2 queued fill the
	// service; the 4th must shed. Submissions are sequential, so the
	// worker has picked up the first job before the queue fills.
	submit := func(seed int) (JobStatus, int) {
		return postJob(t, ts, fmt.Sprintf(
			`{"kind":"sim","workload":"stream","policy":"Norm","seed":%d}`, seed))
	}
	first, code := submit(1)
	if code != http.StatusAccepted {
		t.Fatalf("first submit = %d", code)
	}
	// Wait until the worker dequeues job 1, freeing a queue slot race.
	waitState := func(id, want string) {
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if st, ok := s.Job(id); ok && st.State == want {
				return
			}
			time.Sleep(time.Millisecond)
		}
		t.Fatalf("job %s never reached %s", id, want)
	}
	waitState(first.ID, StateRunning)

	for seed := 2; seed <= 3; seed++ {
		if _, code := submit(seed); code != http.StatusAccepted {
			t.Fatalf("seed %d: code %d, want 202", seed, code)
		}
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"kind":"sim","workload":"stream","policy":"Norm","seed":4}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated submit = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if s.met.shed.Value() != 1 {
		t.Errorf("shed metric = %d, want 1", s.met.shed.Value())
	}
	close(gate)
}

// TestGracefulDrain verifies Shutdown finishes queued and in-flight
// jobs before returning, and that draining servers refuse new work.
func TestGracefulDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4, BaseConfig: tinyBase(41)})
	started := make(chan struct{}, 8)
	gate := make(chan struct{})
	s.exec = func(ctx context.Context, js *jobState) (*JobResult, error) {
		started <- struct{}{}
		<-gate
		return &JobResult{Key: js.key, Kind: js.canon.Kind}, nil
	}

	var ids []string
	for seed := 1; seed <= 3; seed++ {
		st, code := postJob(t, ts, fmt.Sprintf(
			`{"kind":"sim","workload":"gups","policy":"Norm","seed":%d}`, seed))
		if code != http.StatusAccepted {
			t.Fatalf("seed %d: code %d", seed, code)
		}
		ids = append(ids, st.ID)
	}
	<-started // first job is in flight

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drained <- s.Shutdown(ctx)
	}()

	// While draining, new submissions are refused.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, code := postJob(t, ts, `{"kind":"sim","workload":"gups","policy":"Norm","seed":99}`)
		if code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("draining server kept accepting jobs")
		}
		time.Sleep(time.Millisecond)
	}

	select {
	case err := <-drained:
		t.Fatalf("Shutdown returned before jobs finished: %v", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(gate) // release all jobs
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, id := range ids {
		st, ok := s.Job(id)
		if !ok || st.State != StateDone {
			t.Errorf("job %s state after drain: %+v", id, st)
		}
	}
}

// TestHardStopCancelsJobs verifies the drain deadline: a job that will
// not finish is cancelled through its context and Shutdown returns the
// deadline error.
func TestHardStopCancelsJobs(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, BaseConfig: tinyBase(43)})
	s.exec = func(ctx context.Context, js *jobState) (*JobResult, error) {
		<-ctx.Done() // run "forever" until cancelled
		return nil, ctx.Err()
	}
	st, code := postJob(t, ts, `{"kind":"sim","workload":"stream","policy":"Norm"}`)
	if code != http.StatusAccepted {
		t.Fatal(code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Shutdown err = %v, want DeadlineExceeded", err)
	}
	got, _ := s.Job(st.ID)
	if got.State != StateFailed {
		t.Errorf("cancelled job state = %s, want failed", got.State)
	}
}

// TestDeterministicResults is the byte-identity acceptance check: two
// fresh servers given the same submission serve byte-identical result
// payloads — series included — for the same key, even though the 2×2
// matrix fans out in parallel and its cells finish in arbitrary order.
func TestDeterministicResults(t *testing.T) {
	body := `{"kind":"compare","workloads":["gups","stream"],"policies":["Norm","BE-Mellow+SC"],"interval_ns":2000,"seed":57}`
	fetch := func() (string, []byte) {
		experiments.ResetCache() // force a real re-simulation
		_, ts := newTestServer(t, Config{Workers: 2, SimBudget: 4, BaseConfig: tinyBase(57)})
		st, code := postJob(t, ts, body)
		if code != http.StatusAccepted {
			t.Fatalf("code = %d", code)
		}
		if fin := waitDone(t, ts, st.ID); fin.State != StateDone {
			t.Fatalf("state = %s (%s)", fin.State, fin.Error)
		}
		resp, err := http.Get(ts.URL + "/v1/results/" + st.Key)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		var jr JobResult
		if err := json.Unmarshal(b, &jr); err != nil {
			t.Fatal(err)
		}
		if len(jr.Results) != 4 || len(jr.Series) != 4 {
			t.Fatalf("matrix payload has %d results, %d series, want 4 and 4",
				len(jr.Results), len(jr.Series))
		}
		return st.Key, b
	}
	k1, b1 := fetch()
	k2, b2 := fetch()
	if k1 != k2 {
		t.Fatalf("equal submissions got different keys: %s vs %s", k1, k2)
	}
	if !bytes.Equal(b1, b2) {
		t.Errorf("results for key %s differ:\n%s\nvs\n%s", k1, b1, b2)
	}
}

// TestExperimentJob runs a paper artifact end to end through the API.
func TestExperimentJob(t *testing.T) {
	experiments.ResetCache()
	_, ts := newTestServer(t, Config{Workers: 2, BaseConfig: tinyBase(61)})
	st, code := postJob(t, ts, `{"kind":"experiment","experiment":"fig3","workloads":["stream"]}`)
	if code != http.StatusAccepted {
		t.Fatalf("code = %d", code)
	}
	fin := waitDone(t, ts, st.ID)
	if fin.State != StateDone {
		t.Fatalf("state = %s (%s)", fin.State, fin.Error)
	}
	rep := fin.Result.Report
	if rep == nil || rep.ID != "fig3" || !strings.Contains(rep.Output, "stream") {
		t.Fatalf("bad report: %+v", rep)
	}
}

// TestKeyNormalization: spelled-out defaults and implicit defaults hash
// to the same content address.
func TestKeyNormalization(t *testing.T) {
	base := tinyBase(3)
	_, k1, err := normalize(JobRequest{Kind: KindSim, Workload: "stream", Policy: "Norm"}, *base)
	if err != nil {
		t.Fatal(err)
	}
	seed := base.Run.Seed
	_, k2, err := normalize(JobRequest{Workload: "stream", Policy: "Norm", Seed: &seed}, *base)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Errorf("equivalent requests hash differently: %s vs %s", k1, k2)
	}
	other := uint64(4)
	_, k3, err := normalize(JobRequest{Workload: "stream", Policy: "Norm", Seed: &other}, *base)
	if err != nil {
		t.Fatal(err)
	}
	if k3 == k1 {
		t.Error("different seed, same key")
	}
	// Timeout is an execution knob, not an identity field.
	_, k4, err := normalize(JobRequest{Workload: "stream", Policy: "Norm", TimeoutSeconds: 5}, *base)
	if err != nil {
		t.Fatal(err)
	}
	if k4 != k1 {
		t.Error("timeout changed the content address")
	}
	// The observation interval IS identity: an observed result carries
	// the epoch series, so it must not answer an unobserved request.
	_, k5, err := normalize(JobRequest{Workload: "stream", Policy: "Norm", IntervalNS: 500_000}, *base)
	if err != nil {
		t.Fatal(err)
	}
	if k5 == k1 {
		t.Error("interval_ns did not change the content address")
	}
	// The wear-leveling backend changes the simulated machine, so it is
	// identity; spelling out the default is not.
	c6, k6, err := normalize(JobRequest{Workload: "stream", Policy: "Norm", Leveler: "wolfram"}, *base)
	if err != nil {
		t.Fatal(err)
	}
	if c6.Config.Memory.WearLeveler != "wolfram" {
		t.Errorf("leveler not applied: %q", c6.Config.Memory.WearLeveler)
	}
	if k6 == k1 {
		t.Error("leveler did not change the content address")
	}
	_, k7, err := normalize(JobRequest{Workload: "stream", Policy: "Norm", Leveler: "startgap"}, *base)
	if err != nil {
		t.Fatal(err)
	}
	if k7 != k1 {
		t.Error("explicit default leveler changed the content address")
	}
	if _, _, err := normalize(JobRequest{Workload: "stream", Policy: "Norm", Leveler: "bogus"}, *base); err == nil {
		t.Error("unknown leveler accepted")
	}
}

// TestHealthAndMetrics spot-checks the observability endpoints.
func TestHealthAndMetrics(t *testing.T) {
	experiments.ResetCache()
	_, ts := newTestServer(t, Config{Workers: 2, BaseConfig: tinyBase(71)})
	st, code := postJob(t, ts, `{"kind":"sim","workload":"stream","policy":"Norm"}`)
	if code != http.StatusAccepted {
		t.Fatal(code)
	}
	waitDone(t, ts, st.ID)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct{ Status string }
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Status != "ok" {
		t.Errorf("health = %q", health.Status)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(b)
	for _, want := range []string{
		"mellowd_jobs_accepted_total 1",
		"mellowd_jobs_completed_total 1",
		"mellowd_simcache_misses_total 1",
		"mellowd_job_duration_seconds_bucket{kind=\"sim\",le=\"+Inf\"} 1",
		"mellowd_job_duration_seconds_count{kind=\"sim\"} 1",
		"mellowd_queue_depth 0",
		"mellowd_build_info{go_version=\"go",
		"mellowd_queue_wait_seconds_count 1",
		"mellowd_jobs_running 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
}

// TestJobProgressMonotone is the live-progress acceptance check: while
// a long job runs, GET /v1/jobs/{id} reports a strictly increasing
// progress fraction, finishing at exactly 1, and an interval_ns job
// embeds one epoch series per simulation in its result.
func TestJobProgressMonotone(t *testing.T) {
	experiments.ResetCache()
	base := tinyBase(91)
	base.Run.DetailedInstructions = 1_500_000
	_, ts := newTestServer(t, Config{Workers: 1, BaseConfig: base})

	st, code := postJob(t, ts,
		`{"kind":"compare","workload":"GemsFDTD","policies":["Norm","BE-Mellow+SC"],"interval_ns":100000}`)
	if code != http.StatusAccepted {
		t.Fatalf("code = %d", code)
	}

	var observed []float64
	var sawEpoch bool
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		var cur JobStatus
		err = json.NewDecoder(resp.Body).Decode(&cur)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if n := len(observed); n == 0 || cur.Progress != observed[n-1] {
			observed = append(observed, cur.Progress)
		}
		if cur.Epoch != nil {
			sawEpoch = true
		}
		if cur.State == StateDone || cur.State == StateFailed {
			if cur.State != StateDone {
				t.Fatalf("state = %s (%s)", cur.State, cur.Error)
			}
			break
		}
		time.Sleep(2 * time.Millisecond)
	}

	for i := 1; i < len(observed); i++ {
		if observed[i] <= observed[i-1] {
			t.Fatalf("progress not strictly increasing: %v", observed)
		}
	}
	if len(observed) < 3 {
		t.Errorf("saw only %d distinct progress values: %v", len(observed), observed)
	}
	if final := observed[len(observed)-1]; final != 1 {
		t.Errorf("final progress = %v, want 1", final)
	}
	if !sawEpoch {
		t.Error("no status carried an epoch sample")
	}

	fin := waitDone(t, ts, st.ID)
	if len(fin.Result.Series) != 2 {
		t.Fatalf("result carries %d series records, want 2", len(fin.Result.Series))
	}
	for _, rec := range fin.Result.Series {
		if rec.Workload != "GemsFDTD" || len(rec.Series) == 0 {
			t.Errorf("bad series record: %s/%s with %d samples", rec.Workload, rec.Policy, len(rec.Series))
		}
	}
}

// TestResultEviction bounds the finished-job cache.
func TestResultEviction(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 16, MaxResults: 2, BaseConfig: tinyBase(83)})
	s.exec = func(ctx context.Context, js *jobState) (*JobResult, error) {
		return &JobResult{Key: js.key, Kind: js.canon.Kind}, nil
	}
	var first JobStatus
	for seed := 1; seed <= 4; seed++ {
		st, code := postJob(t, ts, fmt.Sprintf(
			`{"kind":"sim","workload":"gups","policy":"Norm","seed":%d}`, seed))
		if code != http.StatusAccepted {
			t.Fatalf("seed %d: %d", seed, code)
		}
		if seed == 1 {
			first = st
		}
		waitDone(t, ts, st.ID)
	}
	s.mu.Lock()
	finished, jobs := len(s.finished), len(s.jobs)
	s.mu.Unlock()
	if finished > 2 || jobs > 2 {
		t.Errorf("finished=%d jobs=%d, want <= cap 2", finished, jobs)
	}
	if _, ok := s.Result(first.Key); ok {
		t.Error("evicted result still addressable")
	}
	if _, ok := s.Job(first.ID); ok {
		t.Error("evicted job still addressable")
	}
}
