package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mellow/internal/experiments"
	"mellow/internal/joblog"
)

func postBatch(t *testing.T, ts *httptest.Server, body string) (BatchResponse, int, string) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs:batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var br BatchResponse
	if resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, &br); err != nil {
			t.Fatalf("decode batch response: %v", err)
		}
	}
	return br, resp.StatusCode, string(raw)
}

// TestBatchSubmit checks the happy path: statuses align with request
// order, duplicates within the batch join the first instance, and a
// repeat of the whole batch after completion is answered 200 from the
// caches.
func TestBatchSubmit(t *testing.T) {
	t.Parallel()
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 8, BaseConfig: tinyBase(501)})
	body := `{"jobs":[
		{"kind":"sim","workload":"stream","policy":"Norm"},
		{"kind":"sim","workload":"gups","policy":"Norm"},
		{"kind":"sim","workload":"stream","policy":"Norm"}
	]}`
	br, code, _ := postBatch(t, ts, body)
	if code != http.StatusAccepted {
		t.Fatalf("batch = %d, want 202", code)
	}
	if len(br.Jobs) != 3 {
		t.Fatalf("batch returned %d statuses, want 3", len(br.Jobs))
	}
	if br.Jobs[0].ID == br.Jobs[1].ID {
		t.Error("distinct jobs share an id")
	}
	if br.Jobs[2].ID != br.Jobs[0].ID || !br.Jobs[2].Deduped {
		t.Errorf("duplicate entry got id %s deduped=%v, want join of %s",
			br.Jobs[2].ID, br.Jobs[2].Deduped, br.Jobs[0].ID)
	}
	for _, st := range br.Jobs[:2] {
		if fin := waitDone(t, ts, st.ID); fin.State != StateDone {
			t.Fatalf("job %s failed: %s", st.ID, fin.Error)
		}
	}
	br2, code, _ := postBatch(t, ts, body)
	if code != http.StatusOK {
		t.Fatalf("repeat batch = %d, want 200 (all answered from cache)", code)
	}
	for i, st := range br2.Jobs {
		if !st.Deduped || st.State != StateDone {
			t.Errorf("repeat jobs[%d]: deduped=%v state=%s", i, st.Deduped, st.State)
		}
	}
}

// TestBatchValidation: one bad entry rejects the whole batch with the
// entry's index in the error; an empty batch is a 400 too.
func TestBatchValidation(t *testing.T) {
	t.Parallel()
	_, ts := newTestServer(t, Config{Workers: 1, BaseConfig: tinyBase(503)})
	_, code, raw := postBatch(t, ts, `{"jobs":[
		{"kind":"sim","workload":"stream","policy":"Norm"},
		{"kind":"sim","workload":"no-such-workload","policy":"Norm"}
	]}`)
	if code != http.StatusBadRequest || !strings.Contains(raw, "jobs[1]") {
		t.Fatalf("bad entry: code %d body %s, want 400 naming jobs[1]", code, raw)
	}
	if _, code, _ := postBatch(t, ts, `{"jobs":[]}`); code != http.StatusBadRequest {
		t.Fatalf("empty batch = %d, want 400", code)
	}
}

// TestBatchShedAllOrNothing: a batch needing more queue slots than are
// free is rejected whole — no partial admission, nothing enqueued.
func TestBatchShedAllOrNothing(t *testing.T) {
	t.Parallel()
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 2, BaseConfig: tinyBase(507)})
	gate := make(chan struct{})
	defer close(gate)
	s.exec = func(ctx context.Context, js *jobState) (*JobResult, error) {
		select {
		case <-gate:
		case <-ctx.Done():
		}
		return &JobResult{Key: js.key, Kind: js.canon.Kind}, nil
	}
	first, code := postJob(t, ts, `{"kind":"sim","workload":"stream","policy":"Norm","seed":1}`)
	if code != http.StatusAccepted {
		t.Fatalf("prime submit = %d", code)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st, ok := s.Job(first.ID); ok && st.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("prime job never started")
		}
		time.Sleep(time.Millisecond)
	}
	// Queue has 2 free slots; the batch needs 3.
	_, code, raw := postBatch(t, ts, `{"jobs":[
		{"kind":"sim","workload":"stream","policy":"Norm","seed":2},
		{"kind":"sim","workload":"stream","policy":"Norm","seed":3},
		{"kind":"sim","workload":"stream","policy":"Norm","seed":4}
	]}`)
	if code != http.StatusTooManyRequests {
		t.Fatalf("oversized batch = %d body %s, want 429", code, raw)
	}
	s.mu.Lock()
	jobs := len(s.jobs)
	s.mu.Unlock()
	if jobs != 1 {
		t.Errorf("%d jobs registered after rejected batch, want 1 (no partial admission)", jobs)
	}
	// A batch that fits the free slots is accepted.
	br, code, _ := postBatch(t, ts, `{"jobs":[
		{"kind":"sim","workload":"stream","policy":"Norm","seed":2},
		{"kind":"sim","workload":"stream","policy":"Norm","seed":3}
	]}`)
	if code != http.StatusAccepted || len(br.Jobs) != 2 {
		t.Fatalf("fitting batch = %d with %d statuses, want 202 with 2", code, len(br.Jobs))
	}
}

// crashServer simulates a kill -9 against a joblog-backed server: the
// log handle is closed (no further records can land) while jobs are
// still admitted-but-unfinished. The server itself is drained by the
// usual test cleanup afterwards; its late finish records hit the closed
// log and are dropped, exactly like a dead process's would be.
func crashServer(t *testing.T, l *joblog.Log) {
	t.Helper()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestJobLogRestoreAfterCrash is the crash-recovery path end to end:
// jobs admitted (and fsynced) before a crash are replayed on restart
// under their original ids, run to completion, and produce results
// byte-identical to an undisturbed run's. New submissions after the
// restore mint ids past everything the dead process handed out.
func TestJobLogRestoreAfterCrash(t *testing.T) {
	base := tinyBase(521)
	body1 := `{"kind":"sim","workload":"stream","policy":"BE-Mellow+SC","interval_ns":40000}`
	body2 := `{"kind":"sim","workload":"gups","policy":"Norm"}`

	// Reference run on an undisturbed server: the bytes replay must hit.
	ref, refTS := newTestServer(t, Config{Workers: 2, BaseConfig: base})
	_ = ref
	st, code := postJob(t, refTS, body1)
	if code != http.StatusAccepted {
		t.Fatalf("reference submit = %d", code)
	}
	if fin := waitDone(t, refTS, st.ID); fin.State != StateDone {
		t.Fatalf("reference job failed: %s", fin.Error)
	}
	wantBytes := getResultBytes(t, refTS, st.Key)

	// Victim server: block execution so the crash lands while both jobs
	// are admitted but unfinished.
	dir := t.TempDir()
	path := filepath.Join(dir, "jobs.wal")
	l1, err := joblog.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	s1, ts1 := newTestServer(t, Config{Workers: 1, QueueDepth: 8, BaseConfig: base, JobLog: l1})
	gate := make(chan struct{})
	t.Cleanup(func() { close(gate) }) // runs before s1's Shutdown cleanup
	s1.exec = func(ctx context.Context, js *jobState) (*JobResult, error) {
		select {
		case <-gate:
		case <-ctx.Done():
		}
		return nil, fmt.Errorf("victim never finishes")
	}
	j1, code := postJob(t, ts1, body1)
	if code != http.StatusAccepted {
		t.Fatalf("victim submit 1 = %d", code)
	}
	j2, code := postJob(t, ts1, body2)
	if code != http.StatusAccepted {
		t.Fatalf("victim submit 2 = %d", code)
	}
	crashServer(t, l1)

	// Survivor: reopen the same log, restore, run for real. The memo
	// cache is cleared so the replayed result is recomputed, not
	// remembered.
	experiments.ResetCache()
	l2, err := joblog.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if st := l2.Stats(); st.Replayed == 0 || st.Pending != 2 {
		t.Fatalf("reopened log: %+v, want 2 pending jobs", st)
	}
	s2, ts2 := newTestServer(t, Config{Workers: 2, QueueDepth: 8, BaseConfig: base, JobLog: l2})
	n, err := s2.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("Restore replayed %d jobs, want 2", n)
	}

	// Replayed jobs keep their pre-crash ids.
	for _, id := range []string{j1.ID, j2.ID} {
		if fin := waitDone(t, ts2, id); fin.State != StateDone {
			t.Fatalf("replayed job %s: state %s (%s)", id, fin.State, fin.Error)
		}
	}
	if got := getResultBytes(t, ts2, j1.Key); !bytes.Equal(got, wantBytes) {
		t.Errorf("replayed result differs from the undisturbed run's bytes (%d vs %d bytes)",
			len(got), len(wantBytes))
	}

	// Fresh ids start past the dead process's counter.
	st3, code := postJob(t, ts2, `{"kind":"sim","workload":"stream","policy":"Norm","seed":9}`)
	if code != http.StatusAccepted {
		t.Fatalf("post-restore submit = %d", code)
	}
	if st3.ID == j1.ID || st3.ID == j2.ID {
		t.Errorf("post-restore job reused id %s", st3.ID)
	}
	if st3.ID != "job-000003" {
		t.Errorf("post-restore id = %s, want job-000003 (seeded past the replayed max)", st3.ID)
	}
}

func getResultBytes(t *testing.T, ts *httptest.Server, key string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/results/" + key)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result fetch = %d", resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestJobLogLifecycleRecords: a finished job leaves admit, start and
// finish records carrying the same id and content address, and a clean
// drain leaves nothing pending, so compaction empties the log.
func TestJobLogLifecycleRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.wal")
	l, err := joblog.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Workers: 1, BaseConfig: tinyBase(523), JobLog: l, Logger: quietLogger()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	st, code := postJob(t, ts, `{"kind":"sim","workload":"stream","policy":"Norm"}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	waitDone(t, ts, st.ID)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: compaction after a clean drain leaves an empty log.
	l2, err := joblog.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if st := l2.Stats(); st.Replayed != 0 || st.Pending != 0 {
		t.Errorf("compacted log: %+v, want empty", st)
	}
}

// TestJobLogShedNotRecorded: a shed submission writes no admit record,
// so a replay cannot resurrect work the client was told to retry.
func TestJobLogShedNotRecorded(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.wal")
	l, err := joblog.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, BaseConfig: tinyBase(541), JobLog: l})
	gate := make(chan struct{})
	t.Cleanup(func() { close(gate) })
	s.exec = func(ctx context.Context, js *jobState) (*JobResult, error) {
		select {
		case <-gate:
		case <-ctx.Done():
		}
		return &JobResult{Key: js.key, Kind: js.canon.Kind}, nil
	}
	admitted := 0
	for seed := 1; seed <= 5; seed++ {
		_, code := postJob(t, ts, fmt.Sprintf(
			`{"kind":"sim","workload":"stream","policy":"Norm","seed":%d}`, seed))
		if code == http.StatusAccepted {
			admitted++
		}
	}
	if admitted >= 5 {
		t.Fatal("nothing shed; test needs a full queue")
	}
	// Crash and replay: only the admitted jobs are pending — the shed
	// submissions left no trace for replay to resurrect.
	crashServer(t, l)
	l2, err := joblog.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.Stats().Pending; got != admitted {
		t.Errorf("replay finds %d pending jobs, want %d (shed submissions must not be recorded)", got, admitted)
	}
}
