package joblog

import (
	"encoding/binary"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func tempLog(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "jobs.wal")
}

func admit(id, key string) Record {
	return Record{Type: TypeAdmit, ID: id, Key: key, Job: json.RawMessage(`{"kind":"sim"}`)}
}

// pendingKeys extracts the pending content addresses from a reopened
// log — the canonical "what would replay re-enqueue" view every
// corruption test below asserts on.
func pendingKeys(t *testing.T, path string) []string {
	t.Helper()
	l, err := Open(path)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	defer l.Close()
	var keys []string
	for _, r := range Pending(l.Records()) {
		keys = append(keys, r.Key)
	}
	return keys
}

func TestRoundTrip(t *testing.T) {
	path := tempLog(t)
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(true, admit("job-1", "aaa"), admit("job-2", "bbb")); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(false,
		Record{Type: TypeStart, ID: "job-1", Key: "aaa"},
		Record{Type: TypeFinish, ID: "job-1", Key: "aaa"}); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Appended != 4 || st.Pending != 1 || st.TailDropped {
		t.Fatalf("stats after appends: %+v", st)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	recs := re.Records()
	if len(recs) != 4 {
		t.Fatalf("replayed %d records, want 4", len(recs))
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) {
			t.Errorf("record %d seq = %d, want %d", i, r.Seq, i+1)
		}
	}
	if got := Pending(recs); len(got) != 1 || got[0].Key != "bbb" || got[0].ID != "job-2" {
		t.Fatalf("pending = %+v, want the unfinished job-2", got)
	}
	if got0 := Pending(recs)[0].Job; string(got0) != `{"kind":"sim"}` {
		t.Errorf("admit payload lost: %s", got0)
	}
}

// TestTruncatedTail simulates a crash mid-append: the file ends with a
// torn frame. Replay must recover every whole record, drop the tail,
// and leave the file appendable.
func TestTruncatedTail(t *testing.T) {
	path := tempLog(t)
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(true, admit("job-1", "aaa"), admit("job-2", "bbb")); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Tear the last frame at several cut points: inside the payload,
	// inside the header, and header-only.
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{1, 5, 8 + 3} {
		if cut >= len(full) {
			t.Fatalf("test cut %d beyond file size %d", cut, len(full))
		}
		if err := os.WriteFile(path, full[:len(full)-cut], 0o644); err != nil {
			t.Fatal(err)
		}
		re, err := Open(path)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		st := re.Stats()
		if st.Replayed != 1 || !st.TailDropped {
			t.Fatalf("cut %d: stats %+v, want 1 replayed with tail dropped", cut, st)
		}
		if got := Pending(re.Records()); len(got) != 1 || got[0].Key != "aaa" {
			t.Fatalf("cut %d: pending %+v", cut, got)
		}
		// The truncated log must accept appends cleanly.
		if err := re.Append(true, admit("job-9", "ccc")); err != nil {
			t.Fatalf("cut %d: append after truncation: %v", cut, err)
		}
		re.Close()
		if keys := pendingKeys(t, path); !reflect.DeepEqual(keys, []string{"aaa", "ccc"}) {
			t.Fatalf("cut %d: pending after reopen = %v", cut, keys)
		}
	}
}

// TestBadCRCMidFile flips a payload byte in an early record: replay
// must stop at the last good entry before the corruption (frame sync is
// gone beyond it) and converge — a second replay sees the same state.
func TestBadCRCMidFile(t *testing.T) {
	path := tempLog(t)
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(true,
		admit("job-1", "aaa"), admit("job-2", "bbb"), admit("job-3", "ccc")); err != nil {
		t.Fatal(err)
	}
	l.Close()

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Locate record 2's payload and flip one byte in it.
	size1 := binary.LittleEndian.Uint32(raw[0:4])
	rec2 := int64(8 + size1)
	raw[rec2+8+4] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	st := re.Stats()
	if st.Replayed != 1 || !st.TailDropped {
		t.Fatalf("stats = %+v, want 1 replayed with tail dropped", st)
	}
	if keys := pendingKeys(t, path); !reflect.DeepEqual(keys, []string{"aaa"}) {
		t.Fatalf("pending after CRC corruption = %v, want [aaa]", keys)
	}
	re.Close()

	// Convergence: replaying the already-truncated file again reaches
	// the identical state with no further tail drops.
	re2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	st2 := re2.Stats()
	if st2.Replayed != 1 || st2.TailDropped {
		t.Fatalf("second replay stats = %+v, want clean 1-record log", st2)
	}
}

// TestDuplicateAdmits: the same content address admitted twice (a
// replayed log appended to by a second lifetime, or an at-least-once
// writer) reduces to one pending job; a finish retires it however many
// admits preceded it.
func TestDuplicateAdmits(t *testing.T) {
	path := tempLog(t)
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(true,
		admit("job-1", "aaa"), admit("job-7", "aaa"), admit("job-2", "bbb")); err != nil {
		t.Fatal(err)
	}
	if n := l.Stats().Pending; n != 2 {
		t.Fatalf("pending with duplicate admits = %d, want 2", n)
	}
	if err := l.Append(false, Record{Type: TypeFinish, ID: "job-1", Key: "aaa"}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	if keys := pendingKeys(t, path); !reflect.DeepEqual(keys, []string{"bbb"}) {
		t.Fatalf("pending = %v, want [bbb]", keys)
	}

	// An admit after a finish re-opens the key: a resubmission of
	// completed work whose result cache has since been lost must replay.
	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.Append(true, admit("job-9", "aaa")); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	if keys := pendingKeys(t, path); !reflect.DeepEqual(keys, []string{"bbb", "aaa"}) {
		t.Fatalf("pending after re-admit = %v, want [bbb aaa]", keys)
	}
}

// TestReplayThenCrashAgain drives two crash-replay cycles: a log with
// pending work is replayed, the second lifetime appends its own records
// and crashes mid-append, and the third replay must converge to the
// correct pending set.
func TestReplayThenCrashAgain(t *testing.T) {
	path := tempLog(t)
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	// Lifetime 1: two jobs admitted, one finishes, crash (no compact).
	if err := l.Append(true, admit("job-1", "aaa"), admit("job-2", "bbb")); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(false, Record{Type: TypeFinish, ID: "job-1", Key: "aaa"}); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Lifetime 2: replays bbb, starts it, admits ccc, then "crashes"
	// with a torn final frame.
	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := Pending(l2.Records()); len(got) != 1 || got[0].Key != "bbb" {
		t.Fatalf("lifetime 2 pending = %+v", got)
	}
	if err := l2.Append(false, Record{Type: TypeStart, ID: "job-3", Key: "bbb"}); err != nil {
		t.Fatal(err)
	}
	if err := l2.Append(true, admit("job-4", "ccc")); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-2], 0o644); err != nil {
		t.Fatal(err)
	}

	// Lifetime 3: the torn ccc admit is gone; bbb (started, never
	// finished) is still pending. A fourth replay agrees — the state is
	// a fixed point.
	for i := 0; i < 2; i++ {
		if keys := pendingKeys(t, path); !reflect.DeepEqual(keys, []string{"bbb"}) {
			t.Fatalf("replay %d: pending = %v, want [bbb]", i+3, keys)
		}
	}
}

// TestCompact rewrites the log down to its pending admits; a drained
// log compacts to empty bytes.
func TestCompact(t *testing.T) {
	path := tempLog(t)
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(true, admit("job-1", "aaa"), admit("job-2", "bbb")); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(false, Record{Type: TypeFinish, ID: "job-1", Key: "aaa"}); err != nil {
		t.Fatal(err)
	}
	if err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	// Appends after compaction keep working.
	if err := l.Append(false, Record{Type: TypeStart, ID: "job-2", Key: "bbb"}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	if keys := pendingKeys(t, path); !reflect.DeepEqual(keys, []string{"bbb"}) {
		t.Fatalf("pending after compact = %v, want [bbb]", keys)
	}

	// Finish the survivor and compact again: the log is now empty.
	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.Append(false, Record{Type: TypeFinish, ID: "job-2", Key: "bbb"}); err != nil {
		t.Fatal(err)
	}
	if err := l2.Compact(); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != 0 {
		t.Fatalf("drained log is %d bytes after compact, want 0", fi.Size())
	}
}

// TestClosedLogRefusesAppends pins the closed-log error path.
func TestClosedLogRefusesAppends(t *testing.T) {
	path := tempLog(t)
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if err := l.Append(true, admit("job-1", "aaa")); err == nil {
		t.Fatal("append on closed log succeeded")
	}
	if err := l.Compact(); err == nil {
		t.Fatal("compact on closed log succeeded")
	}
}
