// Package joblog is mellowd's write-ahead job log: an append-only,
// crash-safe file of content-addressed job lifecycle records. Every
// admitted job is recorded (and fsynced) before the service accepts
// it, so a kill -9 or power cut never silently drops queued work — on
// the next start the log is replayed and every admit without a
// matching finish or fail is re-enqueued. Because jobs are
// content-addressed and simulations are deterministic, replaying an
// unfinished job re-runs it to the byte-identical result the original
// submission would have produced; re-running an already-finished job
// whose finish record was lost (finishes are not fsynced) is merely
// redundant work, never wrong work.
//
// On-disk format: consecutive CRC-framed entries, each
//
//	uint32 LE payload length | uint32 LE IEEE CRC-32 of payload | payload
//
// where the payload is one Record as JSON. Replay is tolerant: a
// truncated tail, a torn frame, or a CRC mismatch ends the replay at
// the last whole, checksummed entry and the file is truncated there so
// subsequent appends continue from a clean prefix. Repeated
// crash-replay cycles therefore converge: replaying a log, appending,
// crashing and replaying again always reduces to the same pending set.
package joblog

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Record types, in lifecycle order.
const (
	// TypeAdmit marks a job accepted into the queue. Admits carry the
	// canonical job document and are fsynced before the submission is
	// acknowledged — the durability barrier.
	TypeAdmit = "admit"
	// TypeStart marks a worker picking the job up. Informational: a
	// started-but-unfinished job is still pending at replay.
	TypeStart = "start"
	// TypeFinish marks successful completion; the job's key leaves the
	// pending set.
	TypeFinish = "finish"
	// TypeFail marks completion with an error (including shed-after-admit
	// and cancellation); the key leaves the pending set — failures are
	// not retried across restarts, only interrupted work is.
	TypeFail = "fail"
)

// Record is one log entry. Job identity is the content address Key
// (stable across restarts); ID is the process-local job id current when
// the record was written, kept for correlation with request logs.
type Record struct {
	Seq  uint64    `json:"seq"`
	Type string    `json:"type"`
	Time time.Time `json:"time"`
	ID   string    `json:"id"`
	Key  string    `json:"key"`
	// Job is the canonical job document (admit records only) — enough to
	// reconstruct and re-enqueue the work without the original request.
	Job json.RawMessage `json:"job,omitempty"`
	// TimeoutSeconds preserves the submission's execution cap.
	TimeoutSeconds float64 `json:"timeout_seconds,omitempty"`
	// Error carries the failure message (fail records only).
	Error string `json:"error,omitempty"`
}

// maxPayload bounds one entry; a canonical job document is a few KB, so
// anything near this is framing corruption, not data.
const maxPayload = 1 << 24

// Stats reports a log's activity for telemetry.
type Stats struct {
	// Appended counts records written by this process since Open.
	Appended uint64
	// Replayed counts whole records recovered by Open's scan.
	Replayed int
	// Pending counts admits currently without a finish or fail.
	Pending int
	// TailDropped reports whether Open discarded a corrupt or truncated
	// tail.
	TailDropped bool
}

// Log is an open write-ahead job log. All methods are safe for
// concurrent use.
type Log struct {
	mu       sync.Mutex
	f        *os.File
	path     string
	seq      uint64
	appended uint64
	replayed []Record
	dropped  bool

	// Reduced pending state, maintained across appends so Compact never
	// has to re-read the file: admits without a finish/fail, in admit
	// order, keyed by content address.
	pendingByKey map[string]Record
	pendingOrder []string
}

// Open opens (creating if needed) the log at path, replays every whole
// entry, and truncates any corrupt or torn tail so appends resume from
// a clean prefix. The replayed records are available via Records.
func Open(path string) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	l := &Log{f: f, path: path, pendingByKey: map[string]Record{}}
	recs, goodEnd, dropped, err := scan(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	if dropped {
		if err := f.Truncate(goodEnd); err != nil {
			f.Close()
			return nil, fmt.Errorf("joblog: truncate corrupt tail: %w", err)
		}
	}
	if _, err := f.Seek(goodEnd, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	l.replayed = recs
	l.dropped = dropped
	for _, r := range recs {
		if r.Seq > l.seq {
			l.seq = r.Seq
		}
		l.reduce(r)
	}
	return l, nil
}

// scan reads whole entries until EOF or the first sign of corruption,
// returning the records, the offset where the clean prefix ends, and
// whether anything after it was dropped.
func scan(f *os.File) (recs []Record, goodEnd int64, dropped bool, err error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, false, err
	}
	var off int64
	var hdr [8]byte
	for {
		_, err := io.ReadFull(f, hdr[:])
		if err == io.EOF {
			return recs, off, dropped, nil
		}
		if err == io.ErrUnexpectedEOF {
			// Torn header: a crash mid-append. Drop the tail.
			return recs, off, true, nil
		}
		if err != nil {
			return nil, 0, false, err
		}
		size := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if size == 0 || size > maxPayload {
			// Nonsense length: corruption. Everything from here on is
			// unframed garbage.
			return recs, off, true, nil
		}
		payload := make([]byte, size)
		if _, err := io.ReadFull(f, payload); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return recs, off, true, nil
			}
			return nil, 0, false, err
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return recs, off, true, nil
		}
		var r Record
		if err := json.Unmarshal(payload, &r); err != nil {
			return recs, off, true, nil
		}
		recs = append(recs, r)
		off += int64(8 + size)
	}
}

// reduce folds one record into the pending state. Duplicate admits for
// a key already pending are idempotent (the first wins — equal keys
// mean equal canonical jobs); an admit after a finish re-opens the key.
func (l *Log) reduce(r Record) {
	switch r.Type {
	case TypeAdmit:
		if _, ok := l.pendingByKey[r.Key]; ok {
			return
		}
		l.pendingByKey[r.Key] = r
		l.pendingOrder = append(l.pendingOrder, r.Key)
	case TypeFinish, TypeFail:
		if _, ok := l.pendingByKey[r.Key]; ok {
			delete(l.pendingByKey, r.Key)
			l.pendingOrder = remove(l.pendingOrder, r.Key)
		}
	}
}

func remove(xs []string, x string) []string {
	for i, v := range xs {
		if v == x {
			return append(xs[:i], xs[i+1:]...)
		}
	}
	return xs
}

// Records returns the entries recovered by Open, in log order. The
// slice is shared; callers must not modify it.
func (l *Log) Records() []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.replayed
}

// Pending reduces records to the admits that never finished or failed,
// in admit order, one per content address. It mirrors the reduction the
// Log maintains internally and is exported so replay logic and tests
// share one definition of "unfinished".
func Pending(recs []Record) []Record {
	byKey := map[string]Record{}
	var order []string
	for _, r := range recs {
		switch r.Type {
		case TypeAdmit:
			if _, ok := byKey[r.Key]; ok {
				continue
			}
			byKey[r.Key] = r
			order = append(order, r.Key)
		case TypeFinish, TypeFail:
			if _, ok := byKey[r.Key]; ok {
				delete(byKey, r.Key)
				order = remove(order, r.Key)
			}
		}
	}
	out := make([]Record, 0, len(order))
	for _, k := range order {
		out = append(out, byKey[k])
	}
	return out
}

// Append writes recs as consecutive entries, assigning sequence numbers
// and timestamps. When syncNow is set the write is fsynced before
// returning — the admit durability barrier; finish and fail records
// ride on the OS cache (losing one re-runs deterministic work, which is
// safe). A batch shares one write and at most one fsync.
func (l *Log) Append(syncNow bool, recs ...Record) error {
	if len(recs) == 0 {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return fmt.Errorf("joblog: log is closed")
	}
	var buf []byte
	framed := make([]Record, 0, len(recs))
	for _, r := range recs {
		l.seq++
		r.Seq = l.seq
		if r.Time.IsZero() {
			r.Time = time.Now().UTC()
		}
		payload, err := json.Marshal(r)
		if err != nil {
			return fmt.Errorf("joblog: record not serialisable: %w", err)
		}
		if len(payload) > maxPayload {
			return fmt.Errorf("joblog: record payload %d bytes exceeds frame bound", len(payload))
		}
		var hdr [8]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
		buf = append(buf, hdr[:]...)
		buf = append(buf, payload...)
		framed = append(framed, r)
	}
	if _, err := l.f.Write(buf); err != nil {
		return fmt.Errorf("joblog: append: %w", err)
	}
	if syncNow {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("joblog: fsync: %w", err)
		}
	}
	for _, r := range framed {
		l.reduce(r)
		l.appended++
	}
	return nil
}

// Compact rewrites the log to contain only the pending admits — the
// records a replay would re-enqueue — dropping every finished
// lifecycle. Called on clean shutdown, so a drained daemon leaves an
// empty (or minimal) log instead of one that grows forever. The rewrite
// is atomic: temp file, fsync, rename over the original.
func (l *Log) Compact() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return fmt.Errorf("joblog: log is closed")
	}
	tmp, err := os.CreateTemp(filepath.Dir(l.path), filepath.Base(l.path)+".compact-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	var buf []byte
	for _, k := range l.pendingOrder {
		payload, err := json.Marshal(l.pendingByKey[k])
		if err != nil {
			tmp.Close()
			return err
		}
		var hdr [8]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
		buf = append(buf, hdr[:]...)
		buf = append(buf, payload...)
	}
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), l.path); err != nil {
		return err
	}
	syncDir(filepath.Dir(l.path))
	// Re-open the renamed file for any appends after compaction.
	old := l.f
	f, err := os.OpenFile(l.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	old.Close()
	l.f = f
	return nil
}

// syncDir makes a rename durable on filesystems that need the directory
// entry flushed; best-effort everywhere else.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// Stats reports the log's activity counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{
		Appended:    l.appended,
		Replayed:    len(l.replayed),
		Pending:     len(l.pendingOrder),
		TailDropped: l.dropped,
	}
}

// Path returns the log's file path.
func (l *Log) Path() string { return l.path }

// Close syncs and closes the underlying file.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}
