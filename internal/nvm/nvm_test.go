package nvm

import (
	"math"
	"testing"
	"testing/quick"

	"mellow/internal/sim"
)

func TestWriteLatenciesMatchTableII(t *testing.T) {
	d := DefaultDevice()
	cases := []struct {
		mode WriteMode
		ns   uint64
	}{
		{WriteNormal, 150},
		{WriteSlow15, 225},
		{WriteSlow20, 300},
		{WriteSlow30, 450},
	}
	for _, c := range cases {
		if got := d.WriteLatency(c.mode); got != sim.NS(c.ns) {
			t.Errorf("%v latency = %v ticks, want %v ns", c.mode, got, c.ns)
		}
	}
}

func TestEnduranceMatchesTableII(t *testing.T) {
	d := DefaultDevice() // ExpoFactor 2.0
	cases := []struct {
		mode WriteMode
		want float64
	}{
		{WriteNormal, 5.0e6},
		{WriteSlow15, 1.125e7},
		{WriteSlow20, 2.0e7},
		{WriteSlow30, 4.5e7},
	}
	for _, c := range cases {
		if got := d.Endurance(c.mode); math.Abs(got-c.want)/c.want > 1e-9 {
			t.Errorf("%v endurance = %g, want %g", c.mode, got, c.want)
		}
	}
}

func TestEnduranceExpoFactors(t *testing.T) {
	// Figure 1: five ExpoFactor curves; at N=3 they give 3, 5.2, 9, 15.6,
	// 27 × base endurance respectively.
	for _, expo := range []float64{1.0, 1.5, 2.0, 2.5, 3.0} {
		d := DefaultDevice()
		d.ExpoFactor = expo
		want := BaseEndurance * math.Pow(3, expo)
		if got := d.Endurance(WriteSlow30); math.Abs(got-want)/want > 1e-9 {
			t.Errorf("expo %v: endurance = %g, want %g", expo, got, want)
		}
	}
}

func TestDamageReciprocal(t *testing.T) {
	d := DefaultDevice()
	if got := d.Damage(WriteNormal); got != 1.0 {
		t.Errorf("normal damage = %v, want 1", got)
	}
	if got := d.Damage(WriteSlow30); math.Abs(got-1.0/9.0) > 1e-12 {
		t.Errorf("3x slow damage = %v, want 1/9", got)
	}
}

// Property: endurance is monotonically nondecreasing in the latency
// multiplier and damage monotonically nonincreasing, for any ExpoFactor
// in [1,3].
func TestQuickEnduranceMonotone(t *testing.T) {
	f := func(e8, a8, b8 uint8) bool {
		expo := 1.0 + 2.0*float64(e8)/255.0
		na := 1.0 + 2.0*float64(a8)/255.0
		nb := 1.0 + 2.0*float64(b8)/255.0
		if na > nb {
			na, nb = nb, na
		}
		d := DefaultDevice()
		d.ExpoFactor = expo
		return d.EnduranceAt(na) <= d.EnduranceAt(nb)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestModeForMultiplier(t *testing.T) {
	for _, m := range []WriteMode{WriteNormal, WriteSlow15, WriteSlow20, WriteSlow30} {
		got, err := ModeForMultiplier(m.Multiplier())
		if err != nil || got != m {
			t.Errorf("ModeForMultiplier(%v) = %v, %v", m.Multiplier(), got, err)
		}
	}
	if _, err := ModeForMultiplier(2.5); err == nil {
		t.Error("ModeForMultiplier(2.5) should fail")
	}
}

func TestModeStrings(t *testing.T) {
	if WriteNormal.String() != "normal" || WriteSlow30.String() != "slow3.0x" {
		t.Errorf("unexpected mode names: %v %v", WriteNormal, WriteSlow30)
	}
	if WriteNormal.IsSlow() {
		t.Error("normal mode reported slow")
	}
	if !WriteSlow15.IsSlow() {
		t.Error("1.5x mode not reported slow")
	}
}

// TestEnergyMatchesTableVI checks the nvsim-lite model against every row
// of Table VI.
func TestEnergyMatchesTableVI(t *testing.T) {
	rows := []struct {
		cell        Cell
		norm, slow  float64
		ratio       float64
		ratioSlack  float64
		energySlack float64
	}{
		{CellA, 248.8, 314.5, 1.26, 0.01, 0.005},
		{CellB, 300.0, 432.3, 1.44, 0.01, 0.005},
		{CellC, 402.4, 667.8, 1.66, 0.01, 0.005},
		{CellD, 607.2, 1138.8, 1.88, 0.01, 0.005},
		{CellE, 1016.8, 2080.9, 2.05, 0.01, 0.005},
	}
	for _, r := range rows {
		m := EnergyModel{Cell: r.cell}
		if got := m.WriteEnergyPJ(WriteNormal); math.Abs(got-r.norm)/r.norm > r.energySlack {
			t.Errorf("%v normal write = %.1f pJ, want %.1f", r.cell, got, r.norm)
		}
		if got := m.WriteEnergyPJ(WriteSlow30); math.Abs(got-r.slow)/r.slow > r.energySlack {
			t.Errorf("%v slow write = %.1f pJ, want %.1f", r.cell, got, r.slow)
		}
		if got := m.SlowNormalRatio(); math.Abs(got-r.ratio) > r.ratioSlack {
			t.Errorf("%v slow/normal ratio = %.3f, want %.2f", r.cell, got, r.ratio)
		}
		if m.BufferReadEnergyPJ() != 1503.0 {
			t.Errorf("buffer read = %v, want 1503", m.BufferReadEnergyPJ())
		}
	}
}

func TestEnergyRatioShrinksWithCheaperCells(t *testing.T) {
	// §VI-F: as cell write energy decreases, peripheral energy dominates
	// and the slow/normal ratio approaches 1.
	prev := 0.0
	for _, c := range Cells() {
		r := EnergyModel{Cell: c}.SlowNormalRatio()
		if r <= prev {
			t.Fatalf("ratio not increasing with cell energy: %v at %v after %v", r, c, prev)
		}
		prev = r
	}
}

func TestIntermediateModeEnergyBetween(t *testing.T) {
	m := EnergyModel{Cell: CellC}
	n := m.WriteEnergyPJ(WriteNormal)
	s15 := m.WriteEnergyPJ(WriteSlow15)
	s20 := m.WriteEnergyPJ(WriteSlow20)
	s30 := m.WriteEnergyPJ(WriteSlow30)
	if !(n < s15 && s15 < s20 && s20 < s30) {
		t.Errorf("write energies not monotone in pulse time: %v %v %v %v", n, s15, s20, s30)
	}
}

func TestCellNames(t *testing.T) {
	if CellA.String() != "CellA" || CellE.String() != "CellE" {
		t.Errorf("cell names wrong: %v %v", CellA, CellE)
	}
	if len(Cells()) != 5 {
		t.Errorf("Cells() has %d entries, want 5", len(Cells()))
	}
}

func TestPresets(t *testing.T) {
	ps := Presets()
	if len(ps) != 4 || ps[0].Name != "ReRAM (paper baseline)" {
		t.Fatalf("presets: %v", ps)
	}
	for _, p := range ps {
		if p.Device.BaseLatency == 0 || p.Device.BaseEndurance <= 0 {
			t.Errorf("%s: incomplete device %+v", p.Name, p.Device)
		}
		if p.Device.ExpoFactor < 1 || p.Device.ExpoFactor > 3 {
			t.Errorf("%s: ExpoFactor %v outside the paper's range", p.Name, p.Device.ExpoFactor)
		}
		// Equation 2 behaves for every preset.
		if p.Device.Endurance(WriteSlow30) <= p.Device.Endurance(WriteNormal) {
			t.Errorf("%s: slow writes do not extend endurance", p.Name)
		}
	}
	if PCMDevice().BaseEndurance <= DefaultDevice().BaseEndurance {
		t.Error("PCM preset should out-endure baseline ReRAM")
	}
}
