// Package nvm models the resistive-memory (ReRAM) device: the write
// latency/endurance trade-off of §II (Equation 2), the write-pulse modes
// used by the memory controller, and the nvsim-derived energy model of
// §VI-F (Tables V and VI).
//
// The paper's baseline device is a memory-grade ReRAM with a 150 ns
// normal write pulse and 5·10⁶ normal-write endurance; slowing the pulse
// by a factor N multiplies endurance by N^ExpoFactor with ExpoFactor in
// [1, 3] and a representative value of 2.0.
package nvm

import (
	"fmt"
	"math"

	"mellow/internal/sim"
)

// Baseline device constants from Table II.
const (
	// BaseWriteLatencyNS is the normal (1.0×) write-pulse time t_WP.
	BaseWriteLatencyNS = 150
	// BaseEndurance is the cell endurance, in writes, at the normal pulse.
	BaseEndurance = 5e6
	// DefaultExpoFactor is the representative ReRAM latency/endurance
	// exponent (quadratic trade-off).
	DefaultExpoFactor = 2.0
	// SlowPowerRatio is the dissipated power of a 3× slow write relative
	// to a normal write (§VI-F): lower voltage, exponentially slower
	// ionic drift.
	SlowPowerRatio = 0.767
)

// WriteMode identifies a write-pulse speed. The paper's adaptive schemes
// use exactly two (Normal and Slow3x); the motivation and static-policy
// experiments additionally use 1.5× and 2× pulses.
type WriteMode uint8

const (
	// WriteNormal is the 1.0× (150 ns) pulse.
	WriteNormal WriteMode = iota
	// WriteSlow15 is the 1.5× (225 ns) pulse.
	WriteSlow15
	// WriteSlow20 is the 2.0× (300 ns) pulse.
	WriteSlow20
	// WriteSlow30 is the 3.0× (450 ns) pulse — the default "slow write".
	WriteSlow30
	numWriteModes
)

// Multiplier returns the latency multiplier N for the mode.
func (m WriteMode) Multiplier() float64 {
	switch m {
	case WriteNormal:
		return 1.0
	case WriteSlow15:
		return 1.5
	case WriteSlow20:
		return 2.0
	case WriteSlow30:
		return 3.0
	default:
		panic(fmt.Sprintf("nvm: invalid write mode %d", m))
	}
}

// String returns the conventional name used in the paper's tables.
func (m WriteMode) String() string {
	switch m {
	case WriteNormal:
		return "normal"
	case WriteSlow15:
		return "slow1.5x"
	case WriteSlow20:
		return "slow2.0x"
	case WriteSlow30:
		return "slow3.0x"
	default:
		return fmt.Sprintf("WriteMode(%d)", int(m))
	}
}

// IsSlow reports whether the mode is any slow pulse.
func (m WriteMode) IsSlow() bool { return m != WriteNormal }

// ModeForMultiplier returns the WriteMode for a latency multiplier.
func ModeForMultiplier(n float64) (WriteMode, error) {
	switch n {
	case 1.0:
		return WriteNormal, nil
	case 1.5:
		return WriteSlow15, nil
	case 2.0:
		return WriteSlow20, nil
	case 3.0:
		return WriteSlow30, nil
	}
	return WriteNormal, fmt.Errorf("nvm: no write mode with multiplier %v", n)
}

// Device captures the per-device latency/endurance model.
type Device struct {
	// BaseLatency is the normal write-pulse time.
	BaseLatency sim.Tick
	// BaseEndurance is endurance, in writes, at the normal pulse.
	BaseEndurance float64
	// ExpoFactor is the exponent of Equation 2.
	ExpoFactor float64
}

// DefaultDevice returns the paper's baseline ReRAM device.
func DefaultDevice() Device {
	return Device{
		BaseLatency:   sim.NS(BaseWriteLatencyNS),
		BaseEndurance: BaseEndurance,
		ExpoFactor:    DefaultExpoFactor,
	}
}

// Technology corners. §II notes that resistive technologies span write
// latencies from nanoseconds [28] to milliseconds [29] and endurance
// from hundreds [30] to 10¹² [31]; these presets mark useful points for
// sensitivity studies beyond the paper's baseline.

// PCMDevice returns a phase-change-memory-like corner: slower writes,
// higher endurance, and a weaker (sub-quadratic) latency/endurance
// trade-off (field-induced nucleation, [11][12]).
func PCMDevice() Device {
	return Device{
		BaseLatency:   sim.NS(300),
		BaseEndurance: 1e8,
		ExpoFactor:    1.5,
	}
}

// HighEnduranceReRAM returns a Ta₂O₅-bilayer-like corner [31]: fast
// writes with very high endurance, where wear limiting matters little.
func HighEnduranceReRAM() Device {
	return Device{
		BaseLatency:   sim.NS(50),
		BaseEndurance: 1e10,
		ExpoFactor:    2.0,
	}
}

// LowEnduranceReRAM returns a storage-class corner with scarce
// endurance, where Mellow Writes is most valuable.
func LowEnduranceReRAM() Device {
	return Device{
		BaseLatency:   sim.NS(150),
		BaseEndurance: 1e6,
		ExpoFactor:    2.5,
	}
}

// Presets lists the named technology corners with the paper baseline
// first.
func Presets() []struct {
	Name   string
	Device Device
} {
	return []struct {
		Name   string
		Device Device
	}{
		{"ReRAM (paper baseline)", DefaultDevice()},
		{"PCM-like", PCMDevice()},
		{"high-endurance ReRAM", HighEnduranceReRAM()},
		{"low-endurance ReRAM", LowEnduranceReRAM()},
	}
}

// WriteLatency returns the pulse duration t_WP for the mode.
func (d Device) WriteLatency(m WriteMode) sim.Tick {
	return sim.Tick(float64(d.BaseLatency) * m.Multiplier())
}

// Endurance returns the cell endurance, in writes, for the mode:
// Equation 2, Endurance ≈ (t_WP/t_0)^ExpoFactor, normalised so that the
// normal pulse yields BaseEndurance.
func (d Device) Endurance(m WriteMode) float64 {
	return d.EnduranceAt(m.Multiplier())
}

// EnduranceAt returns endurance for an arbitrary latency multiplier N.
func (d Device) EnduranceAt(n float64) float64 {
	if n <= 0 {
		panic("nvm: non-positive latency multiplier")
	}
	return d.BaseEndurance * math.Pow(n, d.ExpoFactor)
}

// Damage returns the wear contributed by one write in the given mode, in
// normal-write equivalents: a write consumes 1/Endurance(mode) of a cell,
// so relative to a normal write it contributes N^-ExpoFactor.
func (d Device) Damage(m WriteMode) float64 {
	return d.BaseEndurance / d.Endurance(m)
}
