package nvm

import "fmt"

// Cell identifies one of the five ReRAM cell design points of Table V,
// distinguished by their normal set/reset energy per cell. Set and reset
// energies are equal in the table, so one number suffices.
type Cell uint8

// The five cell presets of Table V.
const (
	CellA Cell = iota // 0.1 pJ per cell set/reset
	CellB             // 0.2 pJ
	CellC             // 0.4 pJ — used for the Figure 16 whole-memory totals
	CellD             // 0.8 pJ
	CellE             // 1.6 pJ
	numCells
)

// String returns the Table V name of the cell.
func (c Cell) String() string {
	if c >= numCells {
		return fmt.Sprintf("Cell(%d)", int(c))
	}
	return "Cell" + string(rune('A'+c))
}

// NormalCellEnergyPJ returns the per-cell set/reset energy of a normal
// write, in picojoules (Table V).
func (c Cell) NormalCellEnergyPJ() float64 {
	switch c {
	case CellA:
		return 0.1
	case CellB:
		return 0.2
	case CellC:
		return 0.4
	case CellD:
		return 0.8
	case CellE:
		return 1.6
	default:
		panic(fmt.Sprintf("nvm: invalid cell %d", c))
	}
}

// Energy-model constants of §VI-F. The paper assumes a 3× slow write
// dissipates 0.767× the power of a normal write, hence 3 × 0.767 = 2.3×
// the per-cell energy. Table VI (nvsim output) is reproduced exactly by
// a linear array model: a 64-byte line writes 512 bits, of which half are
// set and half reset, with a 2× array-level overhead (half-selected cells
// and write drivers), plus a fixed peripheral energy per operation.
const (
	// SlowCellEnergyRatio is the per-cell energy of a 3× slow write
	// relative to normal (0.767 power × 3.0 time).
	SlowCellEnergyRatio = 2.3
	// CellsPerLine is the number of cells set (or reset) per 64-byte
	// line write: 512 bits, half set and half reset → 256 of each.
	CellsPerLine = 256
	// ArrayOverheadFactor is the array-level multiplier on raw cell
	// energy (half-selected leakage and driver loss).
	ArrayOverheadFactor = 2.0
	// PeripheralWriteNormalPJ is the fixed decode/sense/control energy
	// of a normal line write (fitted to Table VI; exact to <0.5%).
	PeripheralWriteNormalPJ = 197.6
	// PeripheralWriteSlowPJ is the same for a 3× slow write.
	PeripheralWriteSlowPJ = 196.74
	// BufferReadPJ is a row-buffer fill (array read of one row), Table VI.
	BufferReadPJ = 1503.0
	// RowHitReadPJ is a read served from the open row buffer (§VI-F).
	RowHitReadPJ = 100.0
)

// EnergyModel computes per-operation main-memory energies for one cell
// preset, matching Table VI.
type EnergyModel struct {
	Cell Cell
}

// WriteEnergyPJ returns the energy of one 64-byte line write in the given
// mode, in picojoules.
//
// Only the normal and 3× slow pulses appear in Table VI; intermediate
// pulses interpolate the per-cell energy linearly in pulse time at the
// corresponding reduced power (power ratio interpolated between 1.0 at 1×
// and 0.767 at 3×).
func (e EnergyModel) WriteEnergyPJ(m WriteMode) float64 {
	cell := e.Cell.NormalCellEnergyPJ()
	var cellEnergy, peripheral float64
	switch m {
	case WriteNormal:
		cellEnergy = cell
		peripheral = PeripheralWriteNormalPJ
	case WriteSlow30:
		cellEnergy = cell * SlowCellEnergyRatio
		peripheral = PeripheralWriteSlowPJ
	default:
		// Linear interpolation in the latency multiplier between the two
		// calibrated points.
		n := m.Multiplier()
		frac := (n - 1.0) / 2.0 // 0 at 1×, 1 at 3×
		cellEnergy = cell * (1 + frac*(SlowCellEnergyRatio-1))
		peripheral = PeripheralWriteNormalPJ + frac*(PeripheralWriteSlowPJ-PeripheralWriteNormalPJ)
	}
	return ArrayOverheadFactor*CellsPerLine*cellEnergy + peripheral
}

// BufferReadEnergyPJ returns the energy of filling the row buffer from
// the array (a row miss on a read).
func (e EnergyModel) BufferReadEnergyPJ() float64 { return BufferReadPJ }

// RowHitReadEnergyPJ returns the energy of a read served by the open row.
func (e EnergyModel) RowHitReadEnergyPJ() float64 { return RowHitReadPJ }

// SlowNormalRatio returns the slow/normal write energy ratio — the last
// column of Table VI.
func (e EnergyModel) SlowNormalRatio() float64 {
	return e.WriteEnergyPJ(WriteSlow30) / e.WriteEnergyPJ(WriteNormal)
}

// Cells returns all five presets in table order.
func Cells() []Cell { return []Cell{CellA, CellB, CellC, CellD, CellE} }
