package xtrace

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"mellow/internal/sim"
)

func TestNilReceiversAreNoOps(t *testing.T) {
	var r *Recorder
	r.Slice(TrackPhase, "x", "c", 0, 10, 0, 0)
	r.Instant(TrackPhase, "x", "c", 0, 0, 0)
	r.Counter(TrackPhase, "x", "c", 0, 1)
	r.Discard()
	if r.Len() != 0 || r.Dropped() != 0 || r.Finalize("w", "p", 1) != nil {
		t.Fatal("nil Recorder not inert")
	}

	var s *SpanRecorder
	s.Span("x", "c", time.Time{}, time.Time{})
	if s.TraceID() != "" || s.Spans() != nil || s.Dropped() != 0 {
		t.Fatal("nil SpanRecorder not inert")
	}
}

func TestRecorderRingKeepsNewest(t *testing.T) {
	base := ActiveCount()
	r := NewRecorder(4)
	if got := ActiveCount(); got != base+1 {
		t.Fatalf("active count = %d, want %d", got, base+1)
	}
	for i := 0; i < 6; i++ {
		r.Slice(TrackController, "e", "c", 0, 0, 0, uint64(i))
	}
	if r.Len() != 4 {
		t.Fatalf("len = %d, want 4", r.Len())
	}
	if r.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", r.Dropped())
	}
	st := r.Finalize("w", "p", 2)
	if got := ActiveCount(); got != base {
		t.Fatalf("active count after finalize = %d, want %d", got, base)
	}
	if st == nil || st.Workload != "w" || st.Policy != "p" || st.Banks != 2 || st.Dropped != 2 {
		t.Fatalf("bad SimTrace: %+v", st)
	}
	// The ring keeps the newest events, unrolled oldest-first.
	want := []uint64{2, 3, 4, 5}
	if len(st.Events) != len(want) {
		t.Fatalf("events = %d, want %d", len(st.Events), len(want))
	}
	for i, e := range st.Events {
		if e.Aux != want[i] {
			t.Fatalf("event %d aux = %d, want %d", i, e.Aux, want[i])
		}
	}
	// Finalize is terminal: a second call is nil and late hooks are
	// ignored rather than recorded.
	if r.Finalize("w", "p", 2) != nil {
		t.Fatal("double finalize returned a trace")
	}
	r.Slice(TrackController, "late", "c", 0, 0, 0, 0)
	if r.Len() != 0 {
		t.Fatal("finalized recorder accepted an event")
	}
}

func TestRecorderDiscard(t *testing.T) {
	base := ActiveCount()
	r := NewRecorder(0)
	r.Instant(TrackController, "e", "c", 1, 0, 0)
	r.Discard()
	if got := ActiveCount(); got != base {
		t.Fatalf("active count after discard = %d, want %d", got, base)
	}
	if r.Finalize("w", "p", 1) != nil {
		t.Fatal("finalize after discard returned a trace")
	}
	r.Discard() // idempotent
}

func TestSliceClampsReversedBounds(t *testing.T) {
	r := NewRecorder(8)
	defer r.Discard()
	r.Slice(TrackPhase, "e", "c", 10, 5, 0, 0)
	tr := r.Finalize("w", "p", 1)
	if tr.Events[0].End != tr.Events[0].Start {
		t.Fatalf("end %d not clamped to start %d", tr.Events[0].End, tr.Events[0].Start)
	}
}

func TestBankTrackRoundTrip(t *testing.T) {
	for _, b := range []int{0, 1, 15, 63} {
		got, ok := BankOfTrack(BankTrack(b))
		if !ok || got != b {
			t.Fatalf("BankOfTrack(BankTrack(%d)) = %d, %v", b, got, ok)
		}
	}
	for _, tr := range []int32{TrackPhase, TrackEpoch, TrackController} {
		if _, ok := BankOfTrack(tr); ok {
			t.Fatalf("system track %d claimed to be a bank", tr)
		}
	}
}

func TestSpanRecorder(t *testing.T) {
	r := NewSpanRecorder("")
	if len(r.TraceID()) != 16 {
		t.Fatalf("trace id %q not 16 hex digits", r.TraceID())
	}
	if r2 := NewSpanRecorder("cafe"); r2.TraceID() != "cafe" {
		t.Fatalf("explicit trace id lost: %q", r2.TraceID())
	}
	t0 := time.Unix(0, 0)
	r.Span("a", "job", t0, t0.Add(time.Second), "k", "v")
	r.Span("b", "job", t0.Add(time.Second), t0) // reversed: clamped
	spans := r.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	if spans[0].Args[0] != "k" || spans[0].Args[1] != "v" {
		t.Fatalf("args lost: %v", spans[0].Args)
	}
	if !spans[1].End.Equal(spans[1].Start) {
		t.Fatal("reversed span not clamped")
	}
}

func TestSpanRecorderBound(t *testing.T) {
	r := NewSpanRecorder("t")
	t0 := time.Unix(0, 0)
	for i := 0; i < maxSpans+3; i++ {
		r.Span("s", "c", t0, t0)
	}
	if len(r.Spans()) != maxSpans {
		t.Fatalf("spans = %d, want bound %d", len(r.Spans()), maxSpans)
	}
	if r.Dropped() != 3 {
		t.Fatalf("dropped = %d, want 3", r.Dropped())
	}
}

func TestContextRoundTrip(t *testing.T) {
	ctx := context.Background()
	if FromContext(ctx) != nil {
		t.Fatal("empty context carried a recorder")
	}
	if NewContext(ctx, nil) != ctx {
		t.Fatal("nil recorder changed the context")
	}
	r := NewSpanRecorder("x")
	if FromContext(NewContext(ctx, r)) != r {
		t.Fatal("recorder lost in context round trip")
	}
}

// chromeDoc mirrors the subset of the export the tests assert on.
type chromeDoc struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	OtherData       struct {
		TraceID string `json:"trace_id"`
	} `json:"otherData"`
	TraceEvents []struct {
		Name  string         `json:"name"`
		Ph    string         `json:"ph"`
		Ts    float64        `json:"ts"`
		Dur   *float64       `json:"dur"`
		PID   int            `json:"pid"`
		TID   int            `json:"tid"`
		ID    string         `json:"id"`
		Scope string         `json:"s"`
		Args  map[string]any `json:"args"`
	} `json:"traceEvents"`
}

func TestWriteChrome(t *testing.T) {
	rec := NewRecorder(16)
	rec.Slice(BankTrack(0), "fast write", "write", 2000, 4000, 0xbeef, 1)
	rec.Instant(TrackController, "drain start", "drain", 3000, 0, 9)
	rec.Counter(TrackEpoch, "depth", "queue", 4000, 7)
	st := rec.Finalize("gups", "Norm", 2)

	t0 := time.Unix(100, 0)
	sr := NewSpanRecorder("feedface00000000")
	sr.Span("queued", "job", t0, t0.Add(time.Millisecond), "kind", "sim")

	doc := &Doc{TraceID: sr.TraceID(), Origin: t0, Spans: sr.Spans(), Sims: []*SimTrace{st}}
	var buf bytes.Buffer
	if err := doc.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}

	var got chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	if got.DisplayTimeUnit != "ns" {
		t.Fatalf("displayTimeUnit = %q", got.DisplayTimeUnit)
	}
	if got.OtherData.TraceID != "feedface00000000" {
		t.Fatalf("trace id = %q", got.OtherData.TraceID)
	}

	var phases = map[string]int{}
	var sliceTs, sliceDur float64
	sawSpanBegin, sawSpanEnd := false, false
	for _, e := range got.TraceEvents {
		phases[e.Ph]++
		switch {
		case e.Ph == "X" && e.Name == "fast write":
			sliceTs = e.Ts
			if e.Dur == nil {
				t.Fatal("slice without dur")
			}
			sliceDur = *e.Dur
			if e.Args["line"] != "0xbeef" {
				t.Fatalf("slice args = %v", e.Args)
			}
		case e.Ph == "i":
			if e.Scope != "t" {
				t.Fatalf("instant scope = %q", e.Scope)
			}
		case e.Ph == "C":
			if e.Args["value"] != 7.0 {
				t.Fatalf("counter args = %v", e.Args)
			}
		case e.Ph == "b" && e.Name == "queued":
			sawSpanBegin = true
			if e.Args["kind"] != "sim" {
				t.Fatalf("span args = %v", e.Args)
			}
		case e.Ph == "e" && e.Name == "queued":
			sawSpanEnd = true
		}
	}
	// 2000 ticks at 0.5 ns = 1 µs.
	if sliceTs != 1 || sliceDur != 1 {
		t.Fatalf("tick conversion: ts = %v, dur = %v, want 1, 1", sliceTs, sliceDur)
	}
	if !sawSpanBegin || !sawSpanEnd {
		t.Fatal("async span pair missing")
	}
	for _, ph := range []string{"M", "X", "i", "C", "b", "e"} {
		if phases[ph] == 0 {
			t.Fatalf("no %q events in export; phases: %v", ph, phases)
		}
	}
	// Track metadata names the sim process and its bank threads.
	out := buf.String()
	for _, want := range []string{"sim gups/Norm", "bank 00", "bank 01", "controller", "mellowd service"} {
		if !strings.Contains(out, want) {
			t.Fatalf("export missing %q", want)
		}
	}
}

func TestWriteChromeEmptyDoc(t *testing.T) {
	var buf bytes.Buffer
	if err := (&Doc{}).WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var got chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("empty export is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(got.TraceEvents) != 0 {
		t.Fatalf("empty doc exported %d events", len(got.TraceEvents))
	}
}

func TestWriteChromeOverflowMarker(t *testing.T) {
	rec := NewRecorder(2)
	for i := 0; i < 5; i++ {
		rec.Instant(BankTrack(0), "e", "c", sim.Tick(i), 0, 0)
	}
	st := rec.Finalize("w", "p", 1)
	var buf bytes.Buffer
	if err := (&Doc{Sims: []*SimTrace{st}}).WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ring overflow: 3 events dropped") {
		t.Fatalf("no overflow marker in export:\n%s", buf.String())
	}
}
