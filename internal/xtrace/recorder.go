package xtrace

import "mellow/internal/sim"

// Track identifiers within one simulation's timeline. Banks map to
// BankTrack(b); the low track numbers are reserved for system-level
// tracks so a trace viewer lists them first.
const (
	// TrackPhase carries the engine's warmup/detailed/drain slices.
	TrackPhase int32 = 0
	// TrackEpoch carries one slice per closed epoch-probe interval.
	TrackEpoch int32 = 1
	// TrackController carries controller-global events (drain windows).
	TrackController int32 = 2
	// trackBank0 is the track of bank 0; banks are contiguous from it.
	trackBank0 int32 = 8
)

// BankTrack returns the timeline track of one memory bank.
func BankTrack(bank int) int32 { return trackBank0 + int32(bank) }

// BankOfTrack inverts BankTrack, returning (bank, true) for bank
// tracks and (0, false) for the reserved system tracks.
func BankOfTrack(track int32) (int, bool) {
	if track < trackBank0 {
		return 0, false
	}
	return int(track - trackBank0), true
}

// EventKind classifies a timeline event, mirroring the Chrome Trace
// Event phases the exporter emits.
type EventKind uint8

const (
	// KindSlice is a complete event with a duration (ph "X").
	KindSlice EventKind = iota
	// KindInstant is a point event (ph "i").
	KindInstant
	// KindCounter is a sampled counter value (ph "C").
	KindCounter
)

// Event is one timeline entry, timestamped in kernel ticks. Line and
// Aux are optional small arguments (line address; attempt count or
// epoch index) exported into the Chrome event's args.
type Event struct {
	Kind  EventKind
	Track int32
	Name  string
	Cat   string
	Start sim.Tick
	End   sim.Tick // slices only; >= Start
	Value float64  // counters only
	Line  uint64   // line address, or 0
	Aux   uint64   // attempts / epoch index, or 0
}

// DefaultEventCap is the default ring-buffer bound: 64 Ki events per
// simulation, roughly 4 MB of buffered Events. A full-length run
// overflows it by design — the ring keeps the newest events, so the
// exported window covers the end of the run and the drop counter says
// how much history scrolled away.
const DefaultEventCap = 1 << 16

// Recorder is a bounded ring buffer of simulation-timeline events for
// one run. It is single-threaded, like the simulator that feeds it,
// and every method is a no-op on a nil receiver — the disabled state
// costs exactly one nil check at each hook.
//
// Recording only appends to the recorder's own buffer; it never reads
// or mutates simulated state, which is what keeps a traced run
// bit-identical to an untraced one.
type Recorder struct {
	buf       []Event
	head      int // index of the oldest event when full
	dropped   uint64
	finalized bool
}

// NewRecorder starts a timeline recorder with the given event bound
// (<= 0: DefaultEventCap). The recorder counts as active until
// Finalize.
func NewRecorder(cap int) *Recorder {
	if cap <= 0 {
		cap = DefaultEventCap
	}
	activeRecorders.Add(1)
	return &Recorder{buf: make([]Event, 0, cap)}
}

// add appends one event, overwriting the oldest past the bound.
func (r *Recorder) add(e Event) {
	if cap(r.buf) == 0 {
		return // finalized; late flush hooks are ignored
	}
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
		return
	}
	r.buf[r.head] = e
	r.head++
	if r.head == len(r.buf) {
		r.head = 0
	}
	r.dropped++
	droppedEvents.Add(1)
}

// Slice records a complete event spanning [start, end] on a track.
func (r *Recorder) Slice(track int32, name, cat string, start, end sim.Tick, line, aux uint64) {
	if r == nil {
		return
	}
	if end < start {
		end = start
	}
	r.add(Event{Kind: KindSlice, Track: track, Name: name, Cat: cat,
		Start: start, End: end, Line: line, Aux: aux})
}

// Instant records a point event on a track.
func (r *Recorder) Instant(track int32, name, cat string, at sim.Tick, line, aux uint64) {
	if r == nil {
		return
	}
	r.add(Event{Kind: KindInstant, Track: track, Name: name, Cat: cat,
		Start: at, End: at, Line: line, Aux: aux})
}

// Counter records a sampled counter value on a track.
func (r *Recorder) Counter(track int32, name, cat string, at sim.Tick, v float64) {
	if r == nil {
		return
	}
	r.add(Event{Kind: KindCounter, Track: track, Name: name, Cat: cat,
		Start: at, End: at, Value: v})
}

// Dropped returns how many events the ring has discarded so far.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	return r.dropped
}

// Len returns the number of buffered events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.buf)
}

// SimTrace is a finalized simulation timeline, labelled for export.
// Events are in record order (ticks non-decreasing — the simulator
// records as time advances). Entries are immutable once built: the
// memo cache shares them across callers.
type SimTrace struct {
	Workload string
	Policy   string
	Banks    int
	Dropped  uint64
	Events   []Event
}

// Finalize stops the recorder and returns its timeline, oldest event
// first, labelled with the run's identity. The recorder retires from
// the active count; further recording is ignored. Finalize on a nil or
// already-finalized recorder returns nil.
func (r *Recorder) Finalize(workload, policy string, banks int) *SimTrace {
	if r == nil || r.finalized {
		return nil
	}
	r.finalized = true
	activeRecorders.Add(-1)
	events := make([]Event, 0, len(r.buf))
	events = append(events, r.buf[r.head:]...)
	events = append(events, r.buf[:r.head]...)
	r.buf = nil
	return &SimTrace{
		Workload: workload,
		Policy:   policy,
		Banks:    banks,
		Dropped:  r.dropped,
		Events:   events,
	}
}

// Discard stops a recorder whose run failed: it retires from the
// active count and drops its buffer. Safe on nil and after Finalize.
func (r *Recorder) Discard() {
	if r == nil || r.finalized {
		return
	}
	r.finalized = true
	activeRecorders.Add(-1)
	r.buf = nil
}
