// Package xtrace is the execution-tracing layer of the repository: a
// low-overhead recorder for *when* things happened, complementing the
// aggregate counters of internal/metrics (which answer *how many*).
//
// Two recorders share one export format:
//
//   - SpanRecorder captures wall-clock service spans — the phases a
//     mellowd job passes through (queued, sched-wait, per-cell
//     simulation, render). A span recorder travels in a
//     context.Context from job admission down through sched and
//     experiments, so layers stamp their own phases without new
//     plumbing.
//
//   - Recorder captures a simulated-time timeline — a bounded ring
//     buffer of per-bank events (reads, fast/slow/eager writes,
//     cancellations, pauses, drain windows, Wear Quota flips) plus the
//     engine's phase and epoch tracks, in kernel ticks.
//
// Both export as Chrome Trace Event Format JSON (see Doc.WriteChrome),
// loadable in Perfetto or chrome://tracing.
//
// Tracing is always compilable out: every recording method is safe on
// a nil receiver and returns immediately, so a disabled hook costs one
// nil check. An enabled recorder only appends to its own buffer — it
// never reads or mutates simulated state — so a traced run is
// bit-identical to an untraced one (the same determinism contract the
// epoch probes and per-run metrics registries obey; see DESIGN.md
// §3.4).
//
// The package is distinct from internal/trace, which models workload
// memory traces (the simulator's *input*); xtrace records execution
// (the simulator's *behaviour*).
package xtrace

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync"
	"sync/atomic"
	"time"
)

// Package-wide telemetry, exported to the metrics registry by the
// server (mellowd_traces_active, mellowd_trace_events_dropped_total).
var (
	activeRecorders atomic.Int64
	droppedEvents   atomic.Uint64
)

// ActiveCount returns the number of timeline recorders currently
// recording (created and not yet finalized).
func ActiveCount() int64 { return activeRecorders.Load() }

// DroppedCount returns the total events dropped to ring-buffer (or
// span-buffer) overflow since process start.
func DroppedCount() uint64 { return droppedEvents.Load() }

// NewTraceID mints a 16-hex-digit trace identifier. IDs label service
// spans and log lines; they carry no determinism obligations.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; an all-zero
		// id keeps tracing usable regardless.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// Span is one wall-clock phase of service-side work. Args carry
// alternating key/value pairs.
type Span struct {
	Name  string
	Cat   string
	Start time.Time
	End   time.Time
	Args  []string
}

// maxSpans bounds one recorder's span buffer. A job records a handful
// of spans per simulation cell; 8192 covers the widest matrix many
// times over. Past the bound new spans are dropped (and counted), so a
// runaway producer cannot grow a job's trace without limit.
const maxSpans = 8192

// SpanRecorder accumulates the service spans of one trace (one mellowd
// job). It is safe for concurrent use — matrix cells record from many
// goroutines — and all methods are no-ops on a nil receiver.
type SpanRecorder struct {
	traceID string

	mu      sync.Mutex
	spans   []Span
	dropped uint64
}

// NewSpanRecorder starts a span recorder under the given trace id
// (empty mints a fresh one).
func NewSpanRecorder(traceID string) *SpanRecorder {
	if traceID == "" {
		traceID = NewTraceID()
	}
	return &SpanRecorder{traceID: traceID}
}

// TraceID returns the recorder's trace identifier ("" when nil).
func (r *SpanRecorder) TraceID() string {
	if r == nil {
		return ""
	}
	return r.traceID
}

// Span records one completed phase. kv holds alternating key/value
// argument pairs; a trailing odd key is ignored.
func (r *SpanRecorder) Span(name, cat string, start, end time.Time, kv ...string) {
	if r == nil {
		return
	}
	if end.Before(start) {
		end = start
	}
	r.mu.Lock()
	if len(r.spans) >= maxSpans {
		r.dropped++
		r.mu.Unlock()
		droppedEvents.Add(1)
		return
	}
	r.spans = append(r.spans, Span{Name: name, Cat: cat, Start: start, End: end, Args: kv})
	r.mu.Unlock()
}

// Spans returns a copy of the recorded spans in record order.
func (r *SpanRecorder) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, len(r.spans))
	copy(out, r.spans)
	return out
}

// Dropped returns how many spans this recorder discarded at its bound.
func (r *SpanRecorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// ctxKey carries a *SpanRecorder through a context.Context.
type ctxKey struct{}

// NewContext returns ctx carrying r. A nil recorder returns ctx
// unchanged, so untraced paths stay allocation-free.
func NewContext(ctx context.Context, r *SpanRecorder) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, r)
}

// FromContext returns the span recorder carried by ctx, or nil.
func FromContext(ctx context.Context) *SpanRecorder {
	r, _ := ctx.Value(ctxKey{}).(*SpanRecorder)
	return r
}
