package xtrace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Process ids in the exported trace. The service is one process; each
// simulation timeline gets its own, so Perfetto groups per-bank tracks
// under their (workload, policy) cell.
const (
	servicePID = 1
	simPID0    = 2
)

// Doc is one exportable trace: the service spans of a job (optional)
// plus any number of simulation timelines.
type Doc struct {
	// TraceID labels the whole document (metadata only).
	TraceID string
	// Origin is wall-clock zero: span timestamps are exported relative
	// to it. Zero-valued Origin uses the earliest span start.
	Origin time.Time
	// Spans are the service-side wall-clock phases.
	Spans []Span
	// Sims are the simulated-time timelines, one process each.
	Sims []*SimTrace
}

// chromeEvent is one entry of the Chrome Trace Event Format's
// traceEvents array (the subset this exporter emits: complete "X",
// instant "i", counter "C", async "b"/"e" and metadata "M" events).
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	Ts    float64        `json:"ts"`
	Dur   *float64       `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	ID    string         `json:"id,omitempty"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// ticksToMicros converts kernel ticks (0.5 ns) to trace microseconds.
func ticksToMicros(t uint64) float64 { return float64(t) / 2000 }

// chromeWriter streams one traceEvents array with correct commas.
type chromeWriter struct {
	w     *bufio.Writer
	first bool
	err   error
}

func (cw *chromeWriter) event(e chromeEvent) {
	if cw.err != nil {
		return
	}
	b, err := json.Marshal(e)
	if err != nil {
		cw.err = err
		return
	}
	if !cw.first {
		cw.w.WriteByte(',')
	}
	cw.first = false
	cw.w.WriteString("\n  ")
	_, cw.err = cw.w.Write(b)
}

// meta emits a process_name / thread_name metadata event.
func (cw *chromeWriter) meta(kind string, pid, tid int, name string) {
	cw.event(chromeEvent{Name: kind, Ph: "M", PID: pid, TID: tid,
		Args: map[string]any{"name": name}})
}

// WriteChrome renders the document as Chrome Trace Event Format JSON —
// the object form, with a traceEvents array — loadable in Perfetto and
// chrome://tracing.
//
// Service spans are exported as async begin/end pairs (ph "b"/"e") so
// overlapping spans from parallel matrix cells each render on their
// own sub-track. Simulation timelines use one process per sim; within
// it, tid 0/1/2 are the phase, epoch and controller tracks and each
// memory bank has its own named thread track. The two clocks differ —
// spans tick in wall time since Origin, sim events in simulated time
// since tick zero — which is exactly what the trace is for: one view
// of where the service spent real time and what the simulated machine
// did meanwhile.
func (d *Doc) WriteChrome(w io.Writer) error {
	bw := bufio.NewWriter(w)
	cw := &chromeWriter{w: bw, first: true}

	bw.WriteString(`{"displayTimeUnit":"ns",`)
	if d.TraceID != "" {
		fmt.Fprintf(bw, `"otherData":{"trace_id":%q},`, d.TraceID)
	}
	bw.WriteString(`"traceEvents":[`)

	if len(d.Spans) > 0 {
		origin := d.Origin
		if origin.IsZero() {
			origin = d.Spans[0].Start
			for _, s := range d.Spans[1:] {
				if s.Start.Before(origin) {
					origin = s.Start
				}
			}
		}
		cw.meta("process_name", servicePID, 0, "mellowd service")
		for i, s := range d.Spans {
			ts := float64(s.Start.Sub(origin).Nanoseconds()) / 1000
			te := float64(s.End.Sub(origin).Nanoseconds()) / 1000
			var args map[string]any
			if len(s.Args) >= 2 {
				args = make(map[string]any, len(s.Args)/2)
				for k := 0; k+1 < len(s.Args); k += 2 {
					args[s.Args[k]] = s.Args[k+1]
				}
			}
			id := fmt.Sprintf("span-%d", i)
			cw.event(chromeEvent{Name: s.Name, Cat: s.Cat, Ph: "b", Ts: ts,
				PID: servicePID, TID: 0, ID: id, Args: args})
			cw.event(chromeEvent{Name: s.Name, Cat: s.Cat, Ph: "e", Ts: te,
				PID: servicePID, TID: 0, ID: id})
		}
	}

	for i, st := range d.Sims {
		if st == nil {
			continue
		}
		pid := simPID0 + i
		cw.meta("process_name", pid, 0, fmt.Sprintf("sim %s/%s", st.Workload, st.Policy))
		cw.meta("thread_name", pid, int(TrackPhase), "phase")
		cw.meta("thread_name", pid, int(TrackEpoch), "epochs")
		cw.meta("thread_name", pid, int(TrackController), "controller")
		for b := 0; b < st.Banks; b++ {
			cw.meta("thread_name", pid, int(BankTrack(b)), fmt.Sprintf("bank %02d", b))
		}
		for _, e := range st.Events {
			ce := chromeEvent{Name: e.Name, Cat: e.Cat, PID: pid, TID: int(e.Track),
				Ts: ticksToMicros(uint64(e.Start))}
			switch e.Kind {
			case KindSlice:
				dur := ticksToMicros(uint64(e.End - e.Start))
				ce.Ph = "X"
				ce.Dur = &dur
			case KindInstant:
				ce.Ph = "i"
				ce.Scope = "t"
			case KindCounter:
				ce.Ph = "C"
				ce.Args = map[string]any{"value": e.Value}
			}
			if e.Kind != KindCounter && (e.Line != 0 || e.Aux != 0) {
				ce.Args = make(map[string]any, 2)
				if e.Line != 0 {
					ce.Args["line"] = fmt.Sprintf("0x%x", e.Line)
				}
				if e.Aux != 0 {
					ce.Args["n"] = e.Aux
				}
			}
			cw.event(ce)
		}
		if st.Dropped > 0 {
			// Overflow marker: the ring kept only the newest events.
			cw.event(chromeEvent{
				Name: fmt.Sprintf("ring overflow: %d events dropped", st.Dropped),
				Cat:  "xtrace", Ph: "i", Scope: "t", PID: pid, TID: int(TrackController),
				Ts: eventStart(st.Events),
			})
		}
	}

	if cw.err != nil {
		return cw.err
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}

// eventStart returns the first event's timestamp in µs (0 when empty).
func eventStart(events []Event) float64 {
	if len(events) == 0 {
		return 0
	}
	return ticksToMicros(uint64(events[0].Start))
}
