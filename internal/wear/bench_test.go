package wear

import (
	"testing"

	"mellow/internal/rng"
)

// BenchmarkLevelerRemap measures each backend's steady-state Observe+Map
// path over a uniformly random write stream on a 4Mi-block bank (the
// Table II default). Remap intervals use the default config values, so
// the amortized remap work is included. Steady state must be 0 allocs/op:
// the hot path of every backend is allocation-free (wolfram's sparse
// tables amortize map growth across its swap period).
func BenchmarkLevelerRemap(b *testing.B) {
	const blocks = 4 << 20
	for _, backend := range Backends() {
		b.Run(backend, func(b *testing.B) {
			lv, err := NewLeveler(LevelerConfig{
				Backend:             backend,
				Blocks:              blocks,
				Seed:                1,
				StartGapPsi:         100,
				StartGapEfficiency:  0.9,
				WolframSwapPeriod:   100,
				SoftWearPageBlocks:  64,
				SoftWearEpochWrites: 4096,
			})
			if err != nil {
				b.Fatal(err)
			}
			r := rng.New(42)
			// Warm the structures past the first remaps before timing.
			for i := 0; i < 1<<14; i++ {
				lv.Observe(int64(r.Uintn(blocks)))
			}
			b.ReportAllocs()
			b.ResetTimer()
			var sink int64
			for i := 0; i < b.N; i++ {
				l := int64(r.Uintn(blocks))
				lv.Observe(l)
				sink += lv.Map(l)
			}
			_ = sink
		})
	}
}
