package wear

import (
	"math"
	"testing"
	"testing/quick"

	"mellow/internal/nvm"
	"mellow/internal/policy"
	"mellow/internal/rng"
	"mellow/internal/sim"
)

func TestStartGapMapBijective(t *testing.T) {
	const n = 257
	sg := NewStartGap(n, 10)
	for step := 0; step < 5000; step++ {
		if step%97 == 0 { // periodically verify the full mapping
			seen := make(map[int64]bool, n)
			for l := int64(0); l < n; l++ {
				p := sg.Map(l)
				if p < 0 || p > n {
					t.Fatalf("physical %d out of range [0,%d]", p, n)
				}
				if seen[p] {
					t.Fatalf("mapping not injective at step %d: physical %d repeated", step, p)
				}
				seen[p] = true
			}
		}
		sg.OnWrite()
	}
}

func TestStartGapMovesEveryPsi(t *testing.T) {
	sg := NewStartGap(100, 7)
	writes := 0
	for i := 0; i < 700; i++ {
		moved, _ := sg.OnWrite()
		writes++
		if moved && writes%7 != 0 {
			t.Fatalf("gap moved after %d writes, want multiples of 7", writes)
		}
	}
	if sg.Moves() != 100 {
		t.Errorf("moves = %d, want 100", sg.Moves())
	}
}

func TestStartGapRotation(t *testing.T) {
	// After n+1 gap moves the start register must have advanced once:
	// every logical block has shifted by one physical position.
	const n = 8
	sg := NewStartGap(n, 1)
	before := sg.Map(0)
	for i := 0; i < n+1; i++ {
		sg.OnWrite()
	}
	after := sg.Map(0)
	if after == before {
		t.Errorf("logical 0 did not move after a full gap rotation: %d -> %d", before, after)
	}
}

func TestStartGapRewrittenBlockValid(t *testing.T) {
	sg := NewStartGap(50, 3)
	for i := 0; i < 1000; i++ {
		moved, rw := sg.OnWrite()
		if !moved && rw != -1 {
			t.Fatal("rewritten set without a move")
		}
		if moved && rw != -1 && (rw < 0 || rw > 50) {
			t.Fatalf("rewritten block %d out of range", rw)
		}
	}
}

// TestStartGapLevelsHotspot is the key leveling property: a single
// logical hot block must spread its wear over many physical blocks.
func TestStartGapLevelsHotspot(t *testing.T) {
	const n, psi = 64, 4
	sg := NewStartGap(n, psi)
	wearPerPhys := make([]int, n+1)
	const writes = 64 * 4 * 40 // many full rotations
	for i := 0; i < writes; i++ {
		wearPerPhys[sg.Map(0)]++ // always write logical block 0
		if moved, rw := sg.OnWrite(); moved && rw >= 0 {
			wearPerPhys[rw]++
		}
	}
	max, nonzero := 0, 0
	for _, w := range wearPerPhys {
		if w > max {
			max = w
		}
		if w > 0 {
			nonzero++
		}
	}
	if nonzero < n {
		t.Errorf("hotspot wear touched only %d/%d physical blocks", nonzero, n+1)
	}
	// Without leveling one block would take all `writes` wear. Demand a
	// large spread factor.
	if max > writes/8 {
		t.Errorf("max per-block wear %d of %d writes — leveling ineffective", max, writes)
	}
}

func TestStartGapQuickRandomTraffic(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		const n = 31
		sg := NewStartGap(n, 5)
		for i := 0; i < 2000; i++ {
			p := sg.Map(int64(src.Uintn(n)))
			if p < 0 || p > n {
				return false
			}
			sg.OnWrite()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestStartGapPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewStartGap(0, 1) },
		func() { NewStartGap(10, 0) },
		func() { NewStartGap(10, 5).Map(10) },
		func() { NewStartGap(10, 5).Map(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestMeterAccounting(t *testing.T) {
	dev := nvm.DefaultDevice()
	var m Meter
	m.Record(nvm.WriteNormal, dev.Damage(nvm.WriteNormal))
	m.Record(nvm.WriteSlow30, dev.Damage(nvm.WriteSlow30))
	m.RecordCancelled(nvm.WriteSlow30, dev.Damage(nvm.WriteSlow30))
	m.RecordGapMove()
	wantDamage := 1.0 + 1.0/9.0 + 1.0/9.0 + 1.0
	if math.Abs(m.Damage()-wantDamage) > 1e-12 {
		t.Errorf("damage = %v, want %v", m.Damage(), wantDamage)
	}
	if m.Writes(nvm.WriteNormal) != 1 || m.Writes(nvm.WriteSlow30) != 1 {
		t.Error("completed write counts wrong")
	}
	if m.Cancelled(nvm.WriteSlow30) != 1 {
		t.Error("cancelled count wrong")
	}
	if m.TotalAttempts() != 4 {
		t.Errorf("attempts = %d, want 4", m.TotalAttempts())
	}
	if m.TotalCompleted() != 2 {
		t.Errorf("completed = %d, want 2", m.TotalCompleted())
	}
	if m.SlowCompleted() != 1 {
		t.Errorf("slow completed = %d, want 1", m.SlowCompleted())
	}
}

func TestQuotaBoundFormula(t *testing.T) {
	// 4 GB / 16 banks / 64 B = 4 Mi blocks; Endur 5e6; T_sample 500 µs;
	// T_life 8 years; ratio 0.9.
	blocks := int64(4<<30) / 16 / 64
	q := NewQuota(blocks, 5e6, sim.NS(500000), 8, 0.9)
	eightYearsTicks := policy.Years(8).Ticks()
	want := float64(blocks) * 5e6 * float64(sim.NS(500000)) / float64(eightYearsTicks) * 0.9
	if math.Abs(q.Bound()-want)/want > 1e-12 {
		t.Errorf("bound = %v, want %v", q.Bound(), want)
	}
	// Sanity: tens of normal writes per bank per period.
	if q.Bound() < 10 || q.Bound() > 100 {
		t.Errorf("bound = %v, expected tens of writes per period", q.Bound())
	}
}

func TestQuotaExceedLogic(t *testing.T) {
	q := &Quota{bound: 10}
	q.StartPeriod(0) // period 1 begins; no history -> not exceeded
	if q.Exceeded() {
		t.Error("exceeded with no damage")
	}
	q.StartPeriod(25) // after period 1: damage 25 > 10*1 -> slow-only
	if !q.Exceeded() {
		t.Error("not exceeded with 25 damage after 1 period (bound 10)")
	}
	q.StartPeriod(25) // after period 2: 25 > 20 -> still exceeded
	if !q.Exceeded() {
		t.Error("not exceeded with 25 damage after 2 periods")
	}
	q.StartPeriod(28) // after period 3: 28 < 30 -> recovered
	if q.Exceeded() {
		t.Error("exceeded with 28 damage after 3 periods (quota 30)")
	}
	if q.Periods() != 4 {
		t.Errorf("periods = %d, want 4", q.Periods())
	}
}

// Property: a bank whose per-period damage never exceeds the bound is
// never flagged; one that always doubles the bound is flagged from the
// second period on.
func TestQuotaQuickSteadyRates(t *testing.T) {
	f := func(b8 uint8) bool {
		bound := 1 + float64(b8)
		under := &Quota{bound: bound}
		over := &Quota{bound: bound}
		okUnder, okOver := true, true
		for p := 1; p <= 50; p++ {
			under.StartPeriod(0.9 * bound * float64(p-1))
			over.StartPeriod(2.0 * bound * float64(p-1))
			if under.Exceeded() {
				okUnder = false
			}
			if p >= 2 && !over.Exceeded() {
				okOver = false
			}
		}
		return okUnder && okOver
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLifetimeYears(t *testing.T) {
	// One bank of 1000 blocks, endurance 100, perfect leveling. Damage
	// of 1000*100 over a 1-second window -> lifetime exactly 1 second.
	window := sim.NS(1e9)
	got := LifetimeYears(1000*100, 1000, 100, 1.0, window)
	want := 1.0 / policy.SecondsPerYear
	if math.Abs(got-want)/want > 1e-9 {
		t.Errorf("lifetime = %v years, want %v", got, want)
	}
	if !math.IsInf(LifetimeYears(0, 1000, 100, 1.0, window), 1) {
		t.Error("zero damage must yield infinite lifetime")
	}
	// Efficiency scales lifetime linearly.
	half := LifetimeYears(1000*100, 1000, 100, 0.5, window)
	if math.Abs(half-want/2)/want > 1e-9 {
		t.Errorf("eff=0.5 lifetime = %v, want %v", half, want/2)
	}
}

func TestSystemLifetimeIsMin(t *testing.T) {
	dev := nvm.DefaultDevice()
	hot, cold := &Meter{}, &Meter{}
	for i := 0; i < 100; i++ {
		hot.Record(nvm.WriteNormal, dev.Damage(nvm.WriteNormal))
	}
	cold.Record(nvm.WriteSlow30, dev.Damage(nvm.WriteSlow30))
	window := sim.NS(1e6)
	sys := SystemLifetimeYears([]*Meter{hot, cold}, 1000, 5e6, 0.9, window)
	hotOnly := LifetimeYears(hot.Damage(), 1000, 5e6, 0.9, window)
	if sys != hotOnly {
		t.Errorf("system lifetime %v != hottest bank %v", sys, hotOnly)
	}
}

// Property: slow writes always extend lifetime versus the same number of
// normal writes, by the endurance factor.
func TestQuickSlowWritesExtendLifetime(t *testing.T) {
	dev := nvm.DefaultDevice()
	f := func(n16 uint16) bool {
		n := uint64(n16)%1000 + 1
		norm, slow := &Meter{}, &Meter{}
		for i := uint64(0); i < n; i++ {
			norm.Record(nvm.WriteNormal, dev.Damage(nvm.WriteNormal))
			slow.Record(nvm.WriteSlow30, dev.Damage(nvm.WriteSlow30))
		}
		window := sim.NS(1e6)
		ln := LifetimeYears(norm.Damage(), 100, 5e6, 0.9, window)
		ls := LifetimeYears(slow.Damage(), 100, 5e6, 0.9, window)
		ratio := ls / ln
		return math.Abs(ratio-9.0) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeterSnapshotDiff(t *testing.T) {
	dev := nvm.DefaultDevice()
	var m Meter
	m.Record(nvm.WriteNormal, dev.Damage(nvm.WriteNormal))
	base := m.Snapshot()
	m.Record(nvm.WriteSlow30, dev.Damage(nvm.WriteSlow30))
	m.RecordCancelled(nvm.WriteSlow30, 0.05)
	m.RecordGapMove()
	d := m.Snapshot().Sub(base)
	if d.Writes[nvm.WriteNormal] != 0 || d.Writes[nvm.WriteSlow30] != 1 {
		t.Errorf("writes diff = %v", d.Writes)
	}
	if d.TotalCancelled() != 1 || d.GapWrites != 1 {
		t.Errorf("cancelled/gap diff = %d/%d", d.TotalCancelled(), d.GapWrites)
	}
	if d.TotalAttempts() != 3 {
		t.Errorf("attempts diff = %d, want 3", d.TotalAttempts())
	}
	if d.TotalCompleted() != 1 || d.SlowCompleted() != 1 {
		t.Errorf("completed diff = %d/%d", d.TotalCompleted(), d.SlowCompleted())
	}
	wantDamage := 1.0/9.0 + 0.05 + 1.0
	if math.Abs(d.Damage-wantDamage) > 1e-12 {
		t.Errorf("damage diff = %v, want %v", d.Damage, wantDamage)
	}
}
