package wear

import (
	"fmt"
	"math"

	"mellow/internal/metrics"
	"mellow/internal/nvm"
	"mellow/internal/policy"
	"mellow/internal/sim"
)

// Meter accumulates wear for one bank. Damage is measured in
// normal-write equivalents: a normal write adds 1.0 and an N×-slow write
// adds N^-ExpoFactor (see nvm.Device.Damage), so Endurance_blk units of
// damage exhaust one block.
type Meter struct {
	damage    float64
	writes    [4]uint64 // completed writes, indexed by nvm.WriteMode
	cancelled [4]uint64 // aborted write attempts, indexed by mode
	gapWrites uint64    // Start-Gap migration writes
}

// Record accounts one completed write attempt in the given mode.
func (m *Meter) Record(mode nvm.WriteMode, damage float64) {
	m.damage += damage
	m.writes[mode]++
}

// RecordCancelled accounts an aborted write attempt. The attempt still
// wears the cell (§III: write cancellation "comes at a penalty to memory
// lifetime due to the multiple write attempts").
func (m *Meter) RecordCancelled(mode nvm.WriteMode, damage float64) {
	m.damage += damage
	m.cancelled[mode]++
}

// RecordGapMove accounts a Start-Gap migration write (always a normal
// write in this model).
func (m *Meter) RecordGapMove() {
	m.damage += 1.0
	m.gapWrites++
}

// Damage returns total accumulated damage in normal-write equivalents.
func (m *Meter) Damage() float64 { return m.damage }

// Writes returns the completed write count for a mode.
func (m *Meter) Writes(mode nvm.WriteMode) uint64 { return m.writes[mode] }

// Cancelled returns the aborted attempt count for a mode.
func (m *Meter) Cancelled(mode nvm.WriteMode) uint64 { return m.cancelled[mode] }

// GapWrites returns the number of Start-Gap migration writes.
func (m *Meter) GapWrites() uint64 { return m.gapWrites }

// TotalAttempts returns completed + cancelled + migration writes — the
// request count a bank actually serviced (Figure 15's unit).
func (m *Meter) TotalAttempts() uint64 {
	var n uint64
	for i := range m.writes {
		n += m.writes[i] + m.cancelled[i]
	}
	return n + m.gapWrites
}

// TotalCompleted returns completed demand writes across modes.
func (m *Meter) TotalCompleted() uint64 {
	var n uint64
	for i := range m.writes {
		n += m.writes[i]
	}
	return n
}

// SlowCompleted returns completed slow writes across slow modes.
func (m *Meter) SlowCompleted() uint64 {
	var n uint64
	for i := 1; i < len(m.writes); i++ {
		n += m.writes[i]
	}
	return n
}

// MeterSnapshot is a copyable view of a Meter, used to diff measurement
// windows: the Wear Quota logic needs cumulative damage from time zero,
// while lifetime and traffic figures use the post-warmup window only.
type MeterSnapshot struct {
	Damage    float64
	Writes    [4]uint64
	Cancelled [4]uint64
	GapWrites uint64
}

// Snapshot captures the meter's current counts.
func (m *Meter) Snapshot() MeterSnapshot {
	return MeterSnapshot{Damage: m.damage, Writes: m.writes, Cancelled: m.cancelled, GapWrites: m.gapWrites}
}

// Sub returns the counts accumulated since base.
func (s MeterSnapshot) Sub(base MeterSnapshot) MeterSnapshot {
	d := MeterSnapshot{Damage: s.Damage - base.Damage, GapWrites: s.GapWrites - base.GapWrites}
	for i := range s.Writes {
		d.Writes[i] = s.Writes[i] - base.Writes[i]
		d.Cancelled[i] = s.Cancelled[i] - base.Cancelled[i]
	}
	return d
}

// TotalAttempts mirrors Meter.TotalAttempts for a snapshot.
func (s MeterSnapshot) TotalAttempts() uint64 {
	var n uint64
	for i := range s.Writes {
		n += s.Writes[i] + s.Cancelled[i]
	}
	return n + s.GapWrites
}

// TotalCompleted mirrors Meter.TotalCompleted for a snapshot.
func (s MeterSnapshot) TotalCompleted() uint64 {
	var n uint64
	for i := range s.Writes {
		n += s.Writes[i]
	}
	return n
}

// TotalCancelled sums aborted attempts across modes.
func (s MeterSnapshot) TotalCancelled() uint64 {
	var n uint64
	for i := range s.Cancelled {
		n += s.Cancelled[i]
	}
	return n
}

// SlowCompleted sums completed slow-mode writes.
func (s MeterSnapshot) SlowCompleted() uint64 {
	var n uint64
	for i := 1; i < len(s.Writes); i++ {
		n += s.Writes[i]
	}
	return n
}

// Quota implements the Wear Quota accounting of §IV-C for one bank.
//
// Execution is divided into sample periods of T_sample. A bank may incur
// at most WearBound_bank damage per period on average; if cumulative
// damage exceeds periods×bound, only slow writes may issue in the coming
// period.
type Quota struct {
	bound   float64 // WearBound_bank per period, in damage units
	periods uint64  // completed periods
	exceed  bool    // decision for the current period
}

// NewQuota sizes the per-period wear bound:
//
//	WearBound_blk  = Endur_blk · T_sample/T_lifetime
//	WearBound_bank = BlkNum_bank · WearBound_blk · Ratio_quota
//
// Damage is in normal-write equivalents, so Endur_blk contributes its
// write count directly.
func NewQuota(blocksPerBank int64, enduranceBlk float64, samplePeriod sim.Tick,
	target policy.Years, ratio float64) *Quota {
	frac := float64(samplePeriod) / float64(target.Ticks())
	return &Quota{bound: float64(blocksPerBank) * enduranceBlk * frac * ratio}
}

// StartPeriod is called at each sample-period boundary with the bank's
// cumulative damage; it computes ExceedQuota for the period just begun
// and reports whether the decision flipped relative to the previous
// period (the event execution tracing records).
//
// The first call opens period 0: Num_previous_periods is zero, so the
// quota can never start exceeded — §IV-C's budget is damage per
// *completed* period, and with no history there is nothing to have
// overspent. The guard matters when a caller seeds period 0 with
// damage carried in from outside the quota window (e.g. a warmup
// phase): without it the formula would flag ExceedQuota > 0 on history
// the quota never granted a budget for.
func (q *Quota) StartPeriod(cumulativeDamage float64) (flipped bool) {
	// ExceedQuota = ΣWear_bank − WearBound_bank × Num_previous_periods.
	// q.periods counts completed periods here (it increments below), so
	// the subtracted term is never negative: periods is unsigned and
	// only ever grows.
	was := q.exceed
	q.exceed = q.periods > 0 && cumulativeDamage-q.bound*float64(q.periods) > 0
	q.periods++
	return q.exceed != was
}

// Exceeded reports whether only slow writes may issue this period.
func (q *Quota) Exceeded() bool { return q.exceed }

// Bound returns the per-period wear bound (for tests and reports).
func (q *Quota) Bound() float64 { return q.bound }

// Periods returns the number of periods started.
func (q *Quota) Periods() uint64 { return q.periods }

// LifetimeYears estimates memory lifetime from one bank's damage over a
// simulated window, per §V: the workload repeats cyclically and the bank
// fails when its most-worn block is exhausted. With Start-Gap leveling,
// within-bank wear is a factor eff from uniform, so
//
//	lifetime = T_sim · Blocks · Endur_blk · eff / Damage.
//
// A bank with zero damage never fails (+Inf).
func LifetimeYears(damage float64, blocks int64, enduranceBlk, eff float64, window sim.Tick) float64 {
	if damage <= 0 {
		return math.Inf(1)
	}
	capacity := float64(blocks) * enduranceBlk * eff
	lifetimeSeconds := window.Seconds() * capacity / damage
	return lifetimeSeconds / policy.SecondsPerYear
}

// SystemLifetimeYears returns the minimum lifetime across banks — the
// paper's "time until one cell reaches its wear limit".
func SystemLifetimeYears(meters []*Meter, blocksPerBank int64, enduranceBlk, eff float64, window sim.Tick) float64 {
	min := math.Inf(1)
	for _, m := range meters {
		if y := LifetimeYears(m.Damage(), blocksPerBank, enduranceBlk, eff, window); y < min {
			min = y
		}
	}
	return min
}

// CollectMeters publishes per-bank wear into a per-run metrics
// registry: damage gauges by bank, plus totals for migration writes and
// the worst bank. Read-only over the meters, like every collector.
func CollectMeters(g *metrics.Gatherer, meters []*Meter) {
	var gap uint64
	maxDamage := 0.0
	for i, m := range meters {
		d := m.Damage()
		g.GaugeL("sim_wear_bank_damage", "Cumulative wear by bank, in normal-write units (never reset).",
			"bank", fmt.Sprintf("%02d", i), d)
		if d > maxDamage {
			maxDamage = d
		}
		gap += m.GapWrites()
	}
	g.Counter("sim_wear_gap_moves_total", "Wear-leveling migration writes across banks.", gap)
	g.Gauge("sim_wear_max_bank_damage", "Worst bank's cumulative damage in normal-write units.", maxDamage)
}

// CollectLevelers publishes the leveling backend's activity into a
// per-run metrics registry, scoped by backend so runs under different
// levelers expose distinguishable sim_wear_* series. Read-only.
func CollectLevelers(g *metrics.Gatherer, levs []Leveler) {
	if len(levs) == 0 {
		return
	}
	backend := levs[0].Name()
	var moves uint64
	for _, lv := range levs {
		moves += lv.Moves()
	}
	g.CounterL("sim_wear_remap_ops_total", "Wear-leveling remap operations across banks (gap moves, block swaps, page swaps).",
		"backend", backend, moves)
	g.GaugeL("sim_wear_leveler_efficiency", "Assumed fraction of ideal within-bank leveling for the active backend.",
		"backend", backend, levs[0].Efficiency())
}
