package wear

import (
	"testing"

	"mellow/internal/rng"
)

// newTestLeveler builds a backend over a small bank with remap intervals
// tight enough that short write sequences trigger many migrations.
func newTestLeveler(t *testing.T, backend string, blocks int64) Leveler {
	t.Helper()
	lv, err := NewLeveler(LevelerConfig{
		Backend:             backend,
		Blocks:              blocks,
		Seed:                7,
		StartGapPsi:         5,
		StartGapEfficiency:  0.9,
		WolframSwapPeriod:   3,
		SoftWearPageBlocks:  4,
		SoftWearEpochWrites: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	return lv
}

// checkBijection fails unless the leveler's current mapping is injective
// over the logical block space (no two logical blocks share a frame) and
// lands inside [0, PhysBlocks()).
func checkBijection(t *testing.T, lv Leveler, when string) {
	t.Helper()
	seen := make(map[int64]int64, lv.Blocks())
	for l := int64(0); l < lv.Blocks(); l++ {
		p := lv.Map(l)
		if p < 0 || p >= lv.PhysBlocks() {
			t.Fatalf("%s %s: Map(%d) = %d out of [0,%d)", lv.Name(), when, l, p, lv.PhysBlocks())
		}
		if prev, dup := seen[p]; dup {
			t.Fatalf("%s %s: blocks %d and %d both map to frame %d", lv.Name(), when, prev, l, p)
		}
		seen[p] = l
	}
}

// TestLevelerBijectionProperty drives every backend with arbitrary
// (seeded-random) write sequences of several shapes and asserts the
// remap stays a bijection over the block address space at every
// checkpoint. This is the interface's core invariant: a mapping that
// ever aliases two logical blocks corrupts the simulated memory.
func TestLevelerBijectionProperty(t *testing.T) {
	const blocks = 64
	patterns := map[string]func(r *rng.Source, i int) int64{
		"uniform":    func(r *rng.Source, i int) int64 { return int64(r.Uintn(blocks)) },
		"hotspot":    func(r *rng.Source, i int) int64 { return int64(r.Uintn(4)) },
		"sequential": func(r *rng.Source, i int) int64 { return int64(i % blocks) },
		"zipf-ish": func(r *rng.Source, i int) int64 {
			if r.Uintn(4) == 0 {
				return int64(r.Uintn(blocks))
			}
			return int64(r.Uintn(8))
		},
	}
	for _, backend := range Backends() {
		for name, pick := range patterns {
			t.Run(backend+"/"+name, func(t *testing.T) {
				for seed := uint64(0); seed < 4; seed++ {
					lv := newTestLeveler(t, backend, blocks)
					r := rng.New(seed)
					checkBijection(t, lv, "initially")
					for i := 0; i < 2000; i++ {
						l := pick(r, i)
						if cost := lv.Observe(l); cost.CopyWrites > 0 {
							checkBijection(t, lv, "after remap")
						}
						if i%257 == 0 {
							checkBijection(t, lv, "at checkpoint")
						}
					}
					checkBijection(t, lv, "at end")
					if lv.Moves() == 0 {
						t.Fatalf("%s/%s: no remaps in 2000 writes; test exercised nothing", backend, name)
					}
				}
			})
		}
	}
}

// TestLevelerDeterminism: equal configs fed equal sequences produce
// identical mappings and identical remap-op counts — the property that
// keeps simulation results content-addressable.
func TestLevelerDeterminism(t *testing.T) {
	const blocks = 64
	for _, backend := range Backends() {
		a := newTestLeveler(t, backend, blocks)
		b := newTestLeveler(t, backend, blocks)
		r := rng.New(99)
		var costA, costB int
		for i := 0; i < 3000; i++ {
			l := int64(r.Uintn(blocks))
			costA += a.Observe(l).CopyWrites
			costB += b.Observe(l).CopyWrites
		}
		if costA != costB || a.Moves() != b.Moves() {
			t.Errorf("%s: twin runs diverged: cost %d/%d, moves %d/%d",
				backend, costA, costB, a.Moves(), b.Moves())
		}
		for l := int64(0); l < blocks; l++ {
			if a.Map(l) != b.Map(l) {
				t.Errorf("%s: twin runs map block %d to %d vs %d", backend, l, a.Map(l), b.Map(l))
			}
		}
	}
}

// TestLevelerSeedsDecorrelate: wolfram banks with different seeds pick
// different swap partners (the controller seeds per bank).
func TestLevelerSeedsDecorrelate(t *testing.T) {
	mk := func(seed uint64) Leveler {
		lv, err := NewLeveler(LevelerConfig{
			Backend: BackendWolfram, Blocks: 256, Seed: seed, WolframSwapPeriod: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		return lv
	}
	a, b := mk(0), mk(1)
	for i := 0; i < 500; i++ {
		a.Observe(int64(i % 256))
		b.Observe(int64(i % 256))
	}
	same := 0
	for l := int64(0); l < 256; l++ {
		if a.Map(l) == b.Map(l) {
			same++
		}
	}
	if same == 256 {
		t.Error("wolfram banks with different seeds produced identical permutations")
	}
}

// TestNewLevelerValidation pins the factory's error surface.
func TestNewLevelerValidation(t *testing.T) {
	base := LevelerConfig{
		Blocks: 64, StartGapPsi: 100, StartGapEfficiency: 0.9,
		WolframSwapPeriod: 100, SoftWearPageBlocks: 4, SoftWearEpochWrites: 16,
	}
	bad := map[string]func(c *LevelerConfig){
		"unknown backend":      func(c *LevelerConfig) { c.Backend = "roundrobin" },
		"zero sg efficiency":   func(c *LevelerConfig) { c.StartGapEfficiency = 0 },
		"sg efficiency over 1": func(c *LevelerConfig) { c.StartGapEfficiency = 1.5 },
		"zero wolfram period":  func(c *LevelerConfig) { c.Backend = BackendWolfram; c.WolframSwapPeriod = 0 },
		"non-pow2 page":        func(c *LevelerConfig) { c.Backend = BackendSoftWear; c.SoftWearPageBlocks = 3 },
		"page exceeds bank":    func(c *LevelerConfig) { c.Backend = BackendSoftWear; c.SoftWearPageBlocks = 128 },
		"zero epoch":           func(c *LevelerConfig) { c.Backend = BackendSoftWear; c.SoftWearEpochWrites = 0 },
	}
	for name, mutate := range bad {
		c := base
		mutate(&c)
		if _, err := NewLeveler(c); err == nil {
			t.Errorf("%s: NewLeveler accepted invalid config", name)
		}
	}
	// Empty backend means startgap.
	lv, err := NewLeveler(base)
	if err != nil {
		t.Fatal(err)
	}
	if lv.Name() != BackendStartGap {
		t.Errorf("default backend = %q, want startgap", lv.Name())
	}
	if lv.PhysBlocks() != 65 {
		t.Errorf("startgap phys blocks = %d, want 65 (one gap)", lv.PhysBlocks())
	}
}

// TestQuotaFirstPeriodEdgeCases pins the StartPeriod period-0 semantics
// alongside TestQuotaExceedLogic: the opening period has no history, so
// it can neither report Exceeded nor flip, regardless of the damage
// argument, and the previous-period count never goes negative (periods
// is unsigned and compared before increment).
func TestQuotaFirstPeriodEdgeCases(t *testing.T) {
	for _, damage := range []float64{0, 5, 1e12} {
		q := &Quota{bound: 10}
		if flipped := q.StartPeriod(damage); flipped {
			t.Errorf("StartPeriod(%v) on period 0 flipped", damage)
		}
		if q.Exceeded() {
			t.Errorf("StartPeriod(%v) on period 0 reported exceeded", damage)
		}
		if q.Periods() != 1 {
			t.Errorf("periods after first StartPeriod = %d, want 1", q.Periods())
		}
	}
	// The first period with history (period 1) applies the bound
	// normally, and the flip signal fires exactly on transitions.
	q := &Quota{bound: 10}
	q.StartPeriod(1e12) // ignored: no history yet
	if flipped := q.StartPeriod(25); !flipped || !q.Exceeded() {
		t.Error("period 1 with damage 25 > bound 10 did not flip to exceeded")
	}
	if flipped := q.StartPeriod(25); flipped {
		t.Error("unchanged exceed state reported a flip")
	}
	if flipped := q.StartPeriod(25); !flipped || q.Exceeded() {
		t.Error("recovery (25 < 30) did not flip back")
	}
}

// TestQuotaZeroBound: a degenerate zero bound flags any damage at all
// once history exists, and still never flags period 0.
func TestQuotaZeroBound(t *testing.T) {
	q := &Quota{bound: 0}
	if q.StartPeriod(1) || q.Exceeded() {
		t.Error("period 0 flagged despite zero bound")
	}
	if !q.StartPeriod(1) || !q.Exceeded() {
		t.Error("damage 1 > bound 0 not flagged after history exists")
	}
}
