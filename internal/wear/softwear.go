package wear

import (
	"fmt"
	"math/bits"
)

// softwearEfficiency is the within-bank leveling efficiency the lifetime
// model assumes for SoftWear-style leveling: page-granularity remapping
// levels wear across frames but cannot touch the imbalance between
// blocks inside one page, so it trails the fine-grained schemes.
const softwearEfficiency = 0.85

// SoftWear is a SoftWear-style software-only page-granularity
// wear-leveling remapper for one bank (Hakert et al., arXiv 2004.03244:
// "SoftWear: Software-Only In-Memory Wear-Leveling for Non-Volatile
// Main Memory").
//
// The scheme needs no custom hardware: the OS keeps per-page write
// counters and periodically migrates hot pages away from worn physical
// frames by rewriting page contents and updating the page table. The
// model divides the bank into pages of pageBlocks 64-byte blocks and,
// every epochWrites demand writes, swaps the epoch's hottest logical
// page with the logical page occupying the least-written physical
// frame. One remap therefore copies two whole pages — 2·pageBlocks copy
// writes — which is far costlier per action than Start-Gap's single
// block copy, but actions are correspondingly rare; the controller
// charges the whole copy as bank-busy time, which is how the software
// scheme's page-migration pauses reach IPC.
type SoftWear struct {
	n           int64
	pageShift   uint
	pageMask    int64
	pages       int64
	fwd, inv    []int32  // page-level permutation and its inverse
	epochHot    []uint32 // per-logical-page writes in the current epoch
	frameWrites []uint64 // lifetime writes absorbed per physical frame
	epochWrites int
	since       int
	moves       uint64
}

// NewSoftWear creates a remapper for a bank of n blocks with pages of
// pageBlocks blocks (a power of two dividing n), evaluating a remap
// every epochWrites writes.
func NewSoftWear(n int64, pageBlocks, epochWrites int) (*SoftWear, error) {
	if n <= 0 {
		return nil, fmt.Errorf("wear: softwear needs positive block count, got %d", n)
	}
	if pageBlocks <= 0 || bits.OnesCount64(uint64(pageBlocks)) != 1 {
		return nil, fmt.Errorf("wear: softwear page size %d blocks is not a positive power of two", pageBlocks)
	}
	if n%int64(pageBlocks) != 0 {
		return nil, fmt.Errorf("wear: softwear page size %d does not divide %d blocks", pageBlocks, n)
	}
	if epochWrites <= 0 {
		return nil, fmt.Errorf("wear: softwear needs a positive epoch, got %d", epochWrites)
	}
	pages := n / int64(pageBlocks)
	s := &SoftWear{
		n:           n,
		pageShift:   uint(bits.TrailingZeros64(uint64(pageBlocks))),
		pageMask:    int64(pageBlocks) - 1,
		pages:       pages,
		fwd:         make([]int32, pages),
		inv:         make([]int32, pages),
		epochHot:    make([]uint32, pages),
		frameWrites: make([]uint64, pages),
		epochWrites: epochWrites,
	}
	for p := int64(0); p < pages; p++ {
		s.fwd[p] = int32(p)
		s.inv[p] = int32(p)
	}
	return s, nil
}

// Name returns the backend identifier.
func (s *SoftWear) Name() string { return BackendSoftWear }

// Map translates a logical block through the page table: the page index
// remaps, the offset within the page is untouched.
func (s *SoftWear) Map(logical int64) int64 {
	if logical < 0 || logical >= s.n {
		panic(fmt.Sprintf("wear: logical block %d out of [0,%d)", logical, s.n))
	}
	return int64(s.fwd[logical>>s.pageShift])<<s.pageShift | logical&s.pageMask
}

// Observe counts the write against its logical page and physical frame;
// at each epoch boundary the hottest page of the epoch migrates to the
// least-written frame (a page swap), unless it already sits there.
func (s *SoftWear) Observe(logical int64) RemapCost {
	page := logical >> s.pageShift
	s.epochHot[page]++
	s.frameWrites[s.fwd[page]]++
	s.since++
	if s.since < s.epochWrites {
		return RemapCost{}
	}
	s.since = 0
	// Hottest logical page this epoch and coldest physical frame overall;
	// ties break toward the lowest index, keeping runs deterministic.
	hot, cold := int64(0), int64(0)
	for p := int64(1); p < s.pages; p++ {
		if s.epochHot[p] > s.epochHot[hot] {
			hot = p
		}
		if s.frameWrites[p] < s.frameWrites[cold] {
			cold = p
		}
	}
	for p := range s.epochHot {
		s.epochHot[p] = 0
	}
	if int64(s.fwd[hot]) == cold {
		return RemapCost{} // the hot page already owns the coldest frame
	}
	s.moves++
	// Swap the hot page with whichever logical page holds the cold frame.
	other := int64(s.inv[cold])
	oldFrame := s.fwd[hot]
	s.fwd[hot], s.fwd[other] = int32(cold), oldFrame
	s.inv[cold], s.inv[oldFrame] = int32(hot), int32(other)
	// Both pages rewrite in full at their new frames.
	return RemapCost{CopyWrites: 2 * int(s.pageMask+1)}
}

// Blocks returns the logical block count.
func (s *SoftWear) Blocks() int64 { return s.n }

// PhysBlocks returns the physical block count; pages swap in place, so
// there is no spare.
func (s *SoftWear) PhysBlocks() int64 { return s.n }

// Moves returns the number of page swaps performed.
func (s *SoftWear) Moves() uint64 { return s.moves }

// Efficiency returns the assumed fraction of ideal leveling.
func (s *SoftWear) Efficiency() float64 { return softwearEfficiency }
