// Package wear implements the endurance-management substrate: the
// Start-Gap wear-leveling scheme the paper adopts (Qureshi et al.,
// MICRO 2009), per-bank wear accounting, the Wear Quota bookkeeping of
// §IV-C, and the lifetime estimator of §V.
package wear

import "fmt"

// StartGap is the Start-Gap wear-leveling address remapper for one bank.
//
// A bank with N logical blocks is backed by N+1 physical blocks; one
// (the gap) holds no data. Every ψ writes the gap migrates by one
// position, slowly rotating the logical-to-physical mapping so that hot
// logical blocks sweep across the whole bank. The mapping costs two
// registers (Start, Gap) and achieves ~90+% of ideal leveling.
type StartGap struct {
	n         int64 // logical blocks
	start     int64 // rotation offset, in [0, n)
	gap       int64 // gap position, in [0, n]
	psi       int   // writes per gap move
	sinceMove int
	moves     uint64
	eff       float64 // assumed leveling efficiency (§IV-C: 0.9)
}

// NewStartGap creates a remapper for a bank of n logical blocks, moving
// the gap every psi writes.
func NewStartGap(n int64, psi int) *StartGap {
	if n <= 0 {
		panic(fmt.Sprintf("wear: StartGap needs positive block count, got %d", n))
	}
	if psi <= 0 {
		panic(fmt.Sprintf("wear: StartGap needs positive psi, got %d", psi))
	}
	return &StartGap{n: n, gap: n, psi: psi, eff: 0.9}
}

// Map translates a logical block index within the bank to its current
// physical block index in [0, n].
func (s *StartGap) Map(logical int64) int64 {
	if logical < 0 || logical >= s.n {
		panic(fmt.Sprintf("wear: logical block %d out of [0,%d)", logical, s.n))
	}
	pa := logical + s.start
	if pa >= s.n {
		pa -= s.n
	}
	if pa >= s.gap {
		pa++
	}
	return pa
}

// OnWrite records one demand write; every psi-th write migrates the gap.
// It reports whether the gap moved and, if the move copied data, which
// physical block received the migration write (the old gap position), so
// the caller can account the extra wear. rewritten is -1 when the move
// was a wrap (gap teleports from 0 back to n with no copy).
func (s *StartGap) OnWrite() (moved bool, rewritten int64) {
	s.sinceMove++
	if s.sinceMove < s.psi {
		return false, -1
	}
	s.sinceMove = 0
	s.moves++
	if s.gap == 0 {
		// Gap wrapped: one full rotation completed, no data copy.
		s.gap = s.n
		s.start++
		if s.start == s.n {
			s.start = 0
		}
		return true, -1
	}
	// The content of physical block gap-1 slides into the gap; the old
	// gap position is the block that receives the migration write.
	rewritten = s.gap
	s.gap--
	return true, rewritten
}

// Moves returns how many gap migrations have happened.
func (s *StartGap) Moves() uint64 { return s.moves }

// Blocks returns the logical block count.
func (s *StartGap) Blocks() int64 { return s.n }

// The Leveler interface (see leveler.go). Observe adapts OnWrite: the
// written block is irrelevant to Start-Gap (the gap walks regardless of
// the traffic), and a wrap move copies no data.

// Name returns the backend identifier.
func (s *StartGap) Name() string { return BackendStartGap }

// PhysBlocks returns the physical block count: n data blocks plus the gap.
func (s *StartGap) PhysBlocks() int64 { return s.n + 1 }

// Observe records one demand write and returns the migration cost: one
// copy write per gap move, none when the gap wraps.
func (s *StartGap) Observe(logical int64) RemapCost {
	if moved, rewritten := s.OnWrite(); moved && rewritten >= 0 {
		return RemapCost{CopyWrites: 1}
	}
	return RemapCost{}
}

// Efficiency returns the assumed fraction of ideal leveling.
func (s *StartGap) Efficiency() float64 { return s.eff }
