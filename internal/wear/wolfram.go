package wear

import (
	"fmt"

	"mellow/internal/rng"
)

// wolframEfficiency is the within-bank leveling efficiency the lifetime
// model assumes for WoLFRaM-style remapping. Randomized block-granularity
// swaps spread wear more uniformly than Start-Gap's deterministic
// rotation (which leaves a ψ-long hot trail behind the gap), but the
// swap-period sampling still lags a moving hot set slightly.
const wolframEfficiency = 0.95

// Wolfram is a WoLFRaM-style wear-leveling remapper for one bank
// (Yavits et al., arXiv 2010.02825: "WoLFRaM: Enhancing Wear-Leveling
// and Fault Tolerance in Resistive Memories using Programmable Address
// Decoders").
//
// WoLFRaM stores the logical-to-physical mapping inside a programmable
// resistive address decoder (PRAD), so the decoder can hold an arbitrary
// permutation and remapping one block costs a decoder update plus a data
// copy — no Start-Gap-style region rotation and no spare gap block.
// Address translation happens in the decoder, adding no lookup latency
// on the access path. The model implements the scheme's write-access-
// pattern-aware remapping: every swapPeriod demand writes, the block
// just written (by construction a hot one) swaps physical locations with
// a uniformly chosen partner, at a cost of two copy writes (each block's
// data moves to the other's frame).
//
// The permutation is kept sparsely: blocks still at their identity
// position occupy no memory, so an 8 Mi-block bank costs only as much as
// its swap history.
type Wolfram struct {
	n      int64
	fwd    map[int64]int64 // logical -> physical, identity when absent
	inv    map[int64]int64 // physical -> logical, identity when absent
	period int             // demand writes per swap
	since  int
	moves  uint64
	src    *rng.Source
}

// NewWolfram creates a remapper for a bank of n blocks, swapping the
// written block with a random partner every period writes. The seed
// fixes the swap-partner stream, keeping runs deterministic.
func NewWolfram(n int64, period int, seed uint64) (*Wolfram, error) {
	if n <= 0 {
		return nil, fmt.Errorf("wear: wolfram needs positive block count, got %d", n)
	}
	if period <= 0 {
		return nil, fmt.Errorf("wear: wolfram needs positive swap period, got %d", period)
	}
	return &Wolfram{
		n:      n,
		fwd:    make(map[int64]int64, 64),
		inv:    make(map[int64]int64, 64),
		period: period,
		src:    rng.New(seed),
	}, nil
}

// Name returns the backend identifier.
func (w *Wolfram) Name() string { return BackendWolfram }

// Map translates a logical block to its current physical block. The
// PRAD translates during decode, so the model charges no extra latency.
func (w *Wolfram) Map(logical int64) int64 {
	if logical < 0 || logical >= w.n {
		panic(fmt.Sprintf("wear: logical block %d out of [0,%d)", logical, w.n))
	}
	if p, ok := w.fwd[logical]; ok {
		return p
	}
	return logical
}

// set records logical -> phys, dropping identity entries so the sparse
// tables only hold displaced blocks.
func (w *Wolfram) set(logical, phys int64) {
	if logical == phys {
		delete(w.fwd, logical)
		delete(w.inv, phys)
		return
	}
	w.fwd[logical] = phys
	w.inv[phys] = logical
}

// logicalAt returns the logical block currently mapped to a physical one.
func (w *Wolfram) logicalAt(phys int64) int64 {
	if l, ok := w.inv[phys]; ok {
		return l
	}
	return phys
}

// Observe records one demand write; every period-th write swaps the
// written block's physical frame with a uniformly chosen one. Swapping
// is a transposition of the permutation, so the mapping stays bijective
// by construction.
func (w *Wolfram) Observe(logical int64) RemapCost {
	w.since++
	if w.since < w.period {
		return RemapCost{}
	}
	w.since = 0
	pa := w.Map(logical)
	pb := int64(w.src.Uintn(uint64(w.n)))
	if pa == pb {
		return RemapCost{}
	}
	w.moves++
	other := w.logicalAt(pb)
	w.set(logical, pb)
	w.set(other, pa)
	// Both blocks' contents move to their new frames.
	return RemapCost{CopyWrites: 2}
}

// Blocks returns the logical block count.
func (w *Wolfram) Blocks() int64 { return w.n }

// PhysBlocks returns the physical block count; WoLFRaM keeps no spare.
func (w *Wolfram) PhysBlocks() int64 { return w.n }

// Moves returns the number of swaps performed.
func (w *Wolfram) Moves() uint64 { return w.moves }

// Efficiency returns the assumed fraction of ideal leveling.
func (w *Wolfram) Efficiency() float64 { return wolframEfficiency }
