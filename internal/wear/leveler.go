package wear

import "fmt"

// Leveler is the pluggable wear-leveling backend contract. A Leveler
// owns one bank's logical-to-physical block mapping: it remaps block
// addresses, observes the bank's demand writes, and reports the remap
// work each observation triggered so the memory controller can charge
// the backend's latency and extra-write costs. All methods are
// deterministic — two levelers built from the same LevelerConfig and fed
// the same write sequence produce identical mappings and identical
// costs, which is what keeps simulation results content-addressable.
type Leveler interface {
	// Name returns the backend identifier ("startgap", "wolfram",
	// "softwear").
	Name() string
	// Map translates a logical block index in [0, Blocks()) to its
	// current physical block index in [0, PhysBlocks()). The mapping is
	// injective at every instant and changes only inside Observe.
	Map(logical int64) int64
	// Observe records one completed demand write to a logical block and
	// returns the leveling work it triggered. A zero RemapCost means the
	// mapping did not change.
	Observe(logical int64) RemapCost
	// Blocks returns the logical block count; PhysBlocks the physical
	// count (>= Blocks when the backend keeps spare blocks, like
	// Start-Gap's gap).
	Blocks() int64
	PhysBlocks() int64
	// Moves returns the number of remap operations performed so far.
	Moves() uint64
	// Efficiency is the fraction of ideal within-bank leveling the §V
	// lifetime estimator assumes for this backend (1.0 = perfectly
	// uniform wear).
	Efficiency() float64
}

// RemapCost is the overhead of one leveling action, charged through the
// memory controller: each copy write is one array read plus one normal
// write occupying the bank, and each adds one normal write of damage to
// the bank's wear meter.
type RemapCost struct {
	// CopyWrites is the number of physical blocks rewritten by the
	// action (Start-Gap: 1 per gap move; WoLFRaM: 2 per block swap;
	// SoftWear: 2·pageBlocks per page swap).
	CopyWrites int
}

// Backend names, as spelled in config.Memory.WearLeveler, mellowd job
// requests and the mellowbench/mellowsim -leveler flag.
const (
	BackendStartGap = "startgap"
	BackendWolfram  = "wolfram"
	BackendSoftWear = "softwear"
)

// Backends lists the selectable backend names in canonical order.
func Backends() []string {
	return []string{BackendStartGap, BackendWolfram, BackendSoftWear}
}

// LevelerConfig carries everything a backend constructor needs. It is a
// plain-parameter mirror of the config.Memory leveling fields so the
// wear package does not import config.
type LevelerConfig struct {
	// Backend selects the scheme; "" means BackendStartGap.
	Backend string
	// Blocks is the bank's logical block count.
	Blocks int64
	// Seed derives the backend's deterministic random stream (WoLFRaM's
	// swap-partner choice). The controller passes the bank index.
	Seed uint64
	// StartGapPsi / StartGapEfficiency parameterize the startgap backend.
	StartGapPsi        int
	StartGapEfficiency float64
	// WolframSwapPeriod is the wolfram backend's writes-per-swap interval.
	WolframSwapPeriod int
	// SoftWearPageBlocks (power of two) and SoftWearEpochWrites
	// parameterize the softwear backend's page size and remap epoch.
	SoftWearPageBlocks  int
	SoftWearEpochWrites int
}

// NewLeveler constructs the configured backend.
func NewLeveler(c LevelerConfig) (Leveler, error) {
	switch c.Backend {
	case "", BackendStartGap:
		if c.StartGapEfficiency <= 0 || c.StartGapEfficiency > 1 {
			return nil, fmt.Errorf("wear: startgap efficiency %v out of (0,1]", c.StartGapEfficiency)
		}
		sg := NewStartGap(c.Blocks, c.StartGapPsi)
		sg.eff = c.StartGapEfficiency
		return sg, nil
	case BackendWolfram:
		return NewWolfram(c.Blocks, c.WolframSwapPeriod, c.Seed)
	case BackendSoftWear:
		return NewSoftWear(c.Blocks, c.SoftWearPageBlocks, c.SoftWearEpochWrites)
	default:
		return nil, fmt.Errorf("wear: unknown leveler backend %q (want startgap, wolfram or softwear)", c.Backend)
	}
}
