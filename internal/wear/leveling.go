package wear

// This file validates the Start-Gap efficiency assumption (§IV-C sets
// Ratio_quota = 0.9 because "Start-Gap may introduce slightly extra
// wear"; §V's lifetime model assumes near-uniform within-bank wear).
// Full-system windows are far too short for the gap to complete even one
// rotation, so the validation drives the remapper directly with synthetic
// write streams for many rotations and measures the achieved leveling.

// LevelingResult reports measured wear distribution for one pattern.
type LevelingResult struct {
	// Writes is the demand writes applied.
	Writes uint64
	// GapWrites is the extra migration writes Start-Gap performed.
	GapWrites uint64
	// MaxBlockWear / MeanBlockWear are in writes per physical block.
	MaxBlockWear  float64
	MeanBlockWear float64
	// Efficiency is mean/max — 1.0 is ideal leveling; the §IV-C
	// assumption is ≥ 0.9. (The lifetime of the bank is set by its
	// most-worn block, so efficiency is exactly the achieved fraction
	// of the ideal lifetime.)
	Efficiency float64
	// Overhead is migration writes per demand write (≈ 1/psi).
	Overhead float64
}

// MeasureLeveling applies `writes` demand writes to a bank of `blocks`
// logical blocks under Start-Gap with the given psi. pattern returns the
// logical block of each write. Physical wear (including migration
// writes) is tracked exactly.
func MeasureLeveling(blocks int64, psi int, writes uint64, pattern func() int64) LevelingResult {
	sg := NewStartGap(blocks, psi)
	wearPerBlock := make([]uint64, blocks+1)
	var gapWrites uint64
	for i := uint64(0); i < writes; i++ {
		wearPerBlock[sg.Map(pattern())]++
		if moved, rewritten := sg.OnWrite(); moved && rewritten >= 0 {
			wearPerBlock[rewritten]++
			gapWrites++
		}
	}
	var max, sum uint64
	for _, w := range wearPerBlock {
		if w > max {
			max = w
		}
		sum += w
	}
	res := LevelingResult{
		Writes:       writes,
		GapWrites:    gapWrites,
		MaxBlockWear: float64(max),
		// The bank has blocks+1 physical blocks but only `blocks` hold
		// data; wear capacity spans all of them.
		MeanBlockWear: float64(sum) / float64(blocks+1),
	}
	if max > 0 {
		res.Efficiency = res.MeanBlockWear / res.MaxBlockWear
	}
	if writes > 0 {
		res.Overhead = float64(gapWrites) / float64(writes)
	}
	return res
}

// MeasureLevelerWear drives any Leveler backend with a synthetic write
// stream and measures the achieved leveling of demand wear. Unlike
// MeasureLeveling (which knows Start-Gap's rewritten block exactly),
// the Leveler contract reports remap work as a count, so copy writes
// appear in GapWrites and Overhead but are not attributed to individual
// physical blocks; remap targets rotate across the bank under every
// backend, so their omission shifts Efficiency by at most the Overhead
// fraction.
func MeasureLevelerWear(lv Leveler, writes uint64, pattern func() int64) LevelingResult {
	wearPerBlock := make([]uint64, lv.PhysBlocks())
	var copyWrites uint64
	for i := uint64(0); i < writes; i++ {
		l := pattern()
		wearPerBlock[lv.Map(l)]++
		copyWrites += uint64(lv.Observe(l).CopyWrites)
	}
	var max, sum uint64
	for _, w := range wearPerBlock {
		if w > max {
			max = w
		}
		sum += w
	}
	res := LevelingResult{
		Writes:        writes,
		GapWrites:     copyWrites,
		MaxBlockWear:  float64(max),
		MeanBlockWear: float64(sum) / float64(lv.PhysBlocks()),
	}
	if max > 0 {
		res.Efficiency = res.MeanBlockWear / res.MaxBlockWear
	}
	if writes > 0 {
		res.Overhead = float64(copyWrites) / float64(writes)
	}
	return res
}
