package wear

import (
	"testing"

	"mellow/internal/rng"
)

// Start-Gap moves each logical block by one physical position per full
// rotation, so it levels the diffuse, cache-filtered write streams a
// memory controller actually sees (≈uniform over a large footprint) but
// not adversarial single-block hammering — the original paper pairs it
// with randomized mapping for that, and this paper's Ratio_quota = 0.9
// presumes typical traffic. The tests below pin down both sides.

func TestLevelingUniformPattern(t *testing.T) {
	src := rng.New(1)
	const blocks = 4096
	res := MeasureLeveling(blocks, 100, 4_000_000, func() int64 {
		return int64(src.Uintn(blocks))
	})
	// Mean ~976 writes/block; the max is a Poisson tail, so ~0.85-0.9 of
	// ideal — consistent with the paper's 0.9 assumption.
	if res.Efficiency < 0.85 {
		t.Errorf("uniform pattern efficiency = %v, want >= 0.85", res.Efficiency)
	}
	if res.Overhead < 0.009 || res.Overhead > 0.011 {
		t.Errorf("overhead = %v, want ~1/psi = 0.01", res.Overhead)
	}
}

func TestLevelingHelpsHotBlock(t *testing.T) {
	// The adversarial case: one block takes every write. Start-Gap
	// spreads it over ~one extra physical block per rotation — far from
	// ideal, but measurably better than no leveling at all.
	const blocks = 1024
	const psi = 16
	rotations := uint64(8)
	writes := rotations * uint64(blocks+1) * uint64(psi)
	withSG := MeasureLeveling(blocks, psi, writes, func() int64 { return 0 })
	noSG := MeasureLeveling(blocks, 1<<30, writes, func() int64 { return 0 })
	if withSG.Efficiency < 4*noSG.Efficiency {
		t.Errorf("Start-Gap barely helped the hot block: %v vs %v",
			withSG.Efficiency, noSG.Efficiency)
	}
	// Roughly one extra spread position per completed rotation.
	wantFloor := float64(rotations) / float64(blocks+1) * 0.7
	if withSG.Efficiency < wantFloor {
		t.Errorf("hot-block efficiency = %v, want >= %v", withSG.Efficiency, wantFloor)
	}
}

func TestLevelingZipfPattern(t *testing.T) {
	// Skewed but many-block traffic: leveling recovers a meaningful
	// fraction of ideal and clearly beats a frozen mapping.
	const blocks = 4096
	mk := func(seed uint64) func() int64 {
		src := rng.New(seed)
		z := rng.NewZipf(src, blocks, 0.9)
		return func() int64 {
			return int64((z.Next() * 0x9E3779B1) % blocks)
		}
	}
	withSG := MeasureLeveling(blocks, 16, 6_000_000, mk(3))
	noSG := MeasureLeveling(blocks, 1<<30, 6_000_000, mk(3))
	if withSG.Efficiency <= noSG.Efficiency*1.5 {
		t.Errorf("zipf: leveling %v barely beats frozen mapping %v",
			withSG.Efficiency, noSG.Efficiency)
	}
	if withSG.Efficiency < 0.15 {
		t.Errorf("zipf efficiency = %v, implausibly poor", withSG.Efficiency)
	}
}

func TestLevelingWithoutRotationIsPoor(t *testing.T) {
	// With an absurdly large psi the gap barely moves; a hot block must
	// then dominate, demonstrating why the substrate matters.
	const blocks = 1024
	res := MeasureLeveling(blocks, 1<<30, 500_000, func() int64 { return 7 })
	if res.Efficiency > 0.05 {
		t.Errorf("no-leveling efficiency = %v, expected collapse", res.Efficiency)
	}
}

func TestLevelingAccounting(t *testing.T) {
	res := MeasureLeveling(64, 10, 1000, func() int64 { return 0 })
	if res.Writes != 1000 {
		t.Errorf("writes = %d", res.Writes)
	}
	// 100 gap moves, minus wraps which copy nothing.
	if res.GapWrites < 90 || res.GapWrites > 100 {
		t.Errorf("gap writes = %d, want ~100", res.GapWrites)
	}
	if res.MaxBlockWear < res.MeanBlockWear {
		t.Error("max < mean")
	}
}
