package trace

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mellow/internal/rng"
)

// The legacy closure constructors, verbatim as they stood before the
// declarative Spec refactor. They exist only here: the suite below pins
// every builtin workload's Spec byte-identical to its closure, so the
// refactor cannot drift the instruction streams (and therefore any
// simulation result) by even one op.

func legacyStream(gapMean float64, nRead, nWrite int, arrayBytes uint64,
	hotBytes uint64, pHot, hotWriteProb float64) func(uint64) Generator {
	return func(seed uint64) Generator {
		src := rng.New(seed)
		lay := newLayout()
		s := &stream{src: src, gap: gapper{src: src.Branch(1), mean: gapMean}}
		for i := 0; i < nRead; i++ {
			s.reads = append(s.reads, lay.alloc(arrayBytes))
		}
		for i := 0; i < nWrite; i++ {
			s.writes = append(s.writes, lay.alloc(arrayBytes))
		}
		if hotBytes > 0 {
			s.hot = newHotSet(src.Branch(2), lay.alloc(hotBytes), 0.7, hotWriteProb)
			s.pHot = pHot
		}
		return s
	}
}

func legacyRandom(gapMean float64, regionBytes uint64, dep, rmw bool, wProb float64,
	hotBytes uint64, pHot, hotWriteProb float64) func(uint64) Generator {
	return func(seed uint64) Generator {
		src := rng.New(seed)
		lay := newLayout()
		r := &random{
			src: src, gap: gapper{src: src.Branch(1), mean: gapMean},
			reg: lay.alloc(regionBytes), dep: dep, rmw: rmw, wProb: wProb,
		}
		if hotBytes > 0 {
			r.hot = newHotSet(src.Branch(2), lay.alloc(hotBytes), 0.7, hotWriteProb)
			r.pHot = pHot
		}
		return r
	}
}

func legacyHotOnly(gapMean float64, hotBytes uint64, theta, wProb float64) func(uint64) Generator {
	return func(seed uint64) Generator {
		src := rng.New(seed)
		lay := newLayout()
		return &random{
			src: src, gap: gapper{src: src.Branch(1), mean: gapMean},
			reg:  lay.alloc(64 * MB), // cold leak region
			pHot: 0.995,
			hot: &hotSet{
				src:       src.Branch(2),
				reg:       lay.alloc(hotBytes),
				zipf:      rng.NewZipf(src.Branch(3), hotBytes/64, theta),
				writeProb: wProb,
			},
		}
	}
}

// legacyWorkloads is the pre-refactor table, closure for closure.
var legacyWorkloads = map[string]func(uint64) Generator{
	"stream":     legacyStream(9.0, 2, 1, 32*MB, 0, 0, 0),
	"lbm":        legacyStream(3.0, 2, 2, 48*MB, 0, 0, 0),
	"libquantum": legacyStream(3.15, 1, 1, 64*MB, 0, 0, 0),
	"milc":       legacyStream(5.4, 3, 1, 32*MB, 0, 0, 0),
	"mcf":        legacyRandom(16.5, 384*MB, true, true, 0.25, 0, 0, 0),
	"gups":       legacyRandom(110, 1024*MB, false, true, 1.0, 0, 0, 0),
	"leslie3d":   legacyStream(22.4, 4, 2, 12*MB, 1*MB, 0.20, 0.3),
	"GemsFDTD":   legacyStream(7.8, 6, 3, 24*MB, 1*MB, 0.10, 0.3),
	"zeusmp":     legacyStream(27.9, 3, 2, 8*MB, 1*MB, 0.30, 0.3),
	"bwaves":     legacyStream(25.2, 4, 1, 16*MB, 1*MB, 0.15, 0.2),
	"hmmer":      legacyHotOnly(2.5, 1*MB, 0.8, 0.45),
}

// TestSpecMatchesLegacyClosures is the spec↔builtin equivalence pin:
// every Table IV workload × several seeds must produce a byte-identical
// instruction stream from its declarative Spec as from the legacy
// closure it replaced.
func TestSpecMatchesLegacyClosures(t *testing.T) {
	const ops = 50_000
	seeds := []uint64{1, 2, 7, 42, 0xDEADBEEF}
	if len(legacyWorkloads) != len(workloads) {
		t.Fatalf("legacy table has %d workloads, suite has %d", len(legacyWorkloads), len(workloads))
	}
	for _, w := range All() {
		mk, ok := legacyWorkloads[w.Name]
		if !ok {
			t.Fatalf("no legacy closure for %q", w.Name)
		}
		if w.Spec == nil {
			t.Fatalf("%s: builtin workload carries no Spec", w.Name)
		}
		for _, seed := range seeds {
			want, got := mk(seed), w.New(seed)
			for i := 0; i < ops; i++ {
				a, b := want.Next(), got.Next()
				if a != b {
					t.Fatalf("%s seed %d: op %d diverged: closure %+v, spec %+v",
						w.Name, seed, i, a, b)
				}
			}
		}
	}
}

// TestSpecJSONStreamEquivalence pins the full declarative path: a spec
// serialized to JSON and decoded back must still generate the exact
// closure stream — what a scenario file or job request round-trips.
func TestSpecJSONStreamEquivalence(t *testing.T) {
	for _, w := range All() {
		b, err := json.Marshal(w.Spec)
		if err != nil {
			t.Fatalf("%s: marshal: %v", w.Name, err)
		}
		var sp Spec
		if err := json.Unmarshal(b, &sp); err != nil {
			t.Fatalf("%s: unmarshal: %v", w.Name, err)
		}
		w2, err := sp.Workload(w.Name, w.TargetMPKI)
		if err != nil {
			t.Fatalf("%s: workload from decoded spec: %v", w.Name, err)
		}
		a, c := w.New(99), w2.New(99)
		for i := 0; i < 10_000; i++ {
			if x, y := a.Next(), c.Next(); x != y {
				t.Fatalf("%s: op %d diverged after JSON round-trip: %+v vs %+v", w.Name, i, x, y)
			}
		}
	}
}

func TestSpecCanonicalJSONStable(t *testing.T) {
	sp := Spec{Kind: KindHotOnly, GapMean: 2.5, HotBytes: 1 * MB, HotTheta: 0.8, HotWriteProb: 0.45}
	a, err := sp.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	// Defaults made explicit: the sparse and the normalized spellings of
	// the same workload canonicalise — and therefore hash — identically.
	full := Spec{Kind: KindHotOnly, GapMean: 2.5, RegionBytes: 64 * MB,
		HotBytes: 1 * MB, HotProb: 0.995, HotTheta: 0.8, HotWriteProb: 0.45}
	b, err := full.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("canonical JSON differs:\n%s\n%s", a, b)
	}
	h1, err := sp.Hash()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := full.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 || len(h1) != 64 {
		t.Fatalf("hashes differ or malformed: %s vs %s", h1, h2)
	}
}

func TestSpecValidate(t *testing.T) {
	bad := []Spec{
		{},                             // no kind
		{Kind: "zipfian"},              // unknown kind
		{Kind: KindStream},             // no arrays, no gap
		{Kind: KindStream, GapMean: 1}, // no arrays
		{Kind: KindStream, GapMean: 1, ReadArrays: 1},                                 // no array bytes
		{Kind: KindStream, GapMean: 1, ReadArrays: 1, ArrayBytes: MB, RegionBytes: 1}, // foreign field
		{Kind: KindStream, GapMean: 1, ReadArrays: 1, ArrayBytes: MB, HotProb: 0.5},   // hot fields without hot_bytes
		{Kind: KindRandom, GapMean: 1},                                                // no region
		{Kind: KindRandom, GapMean: 1, RegionBytes: MB, WriteProb: 1.5},               // bad prob
		{Kind: KindRandom, GapMean: 1, RegionBytes: MB, ArrayBytes: MB},               // foreign field
		{Kind: KindHotOnly, GapMean: 1},                                               // no hot set
		{Kind: KindHotOnly, GapMean: 1, HotBytes: MB, HotTheta: 1.2, HotProb: 0.9},    // theta out of range
		{Kind: KindReplay},                            // no data
		{Kind: KindReplay, Path: "x.trace"},           // unresolved path
		{Kind: KindReplay, Data: "nonsense"},          // unparseable
		{Kind: KindReplay, Data: "0 40 R", Dep: true}, // foreign field
	}
	for i, sp := range bad {
		if err := sp.Validate(); err == nil {
			t.Errorf("case %d (%+v): want error, got nil", i, sp)
		}
	}
	for _, w := range All() {
		if err := w.Spec.Validate(); err != nil {
			t.Errorf("builtin %s: %v", w.Name, err)
		}
	}
}

// TestReplaySpecRoundTrip pins the mellowtrace -export → replay-spec
// path: recording a builtin generator and replaying the file through a
// replay Spec reproduces the recorded stream cyclically, exactly as
// FromReader does.
func TestReplaySpecRoundTrip(t *testing.T) {
	const n = 2_000
	w, err := ByName("gups")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Record(&buf, w.New(7), n); err != nil { // what mellowtrace -export writes
		t.Fatal(err)
	}
	exported := buf.String()

	// Path-referenced spec resolves to the same canonical identity as the
	// inline spelling: content, not filename, is the hash.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "gups.trace"), []byte(exported), 0o644); err != nil {
		t.Fatal(err)
	}
	byPath, err := Spec{Kind: KindReplay, Path: "gups.trace"}.Resolve(dir)
	if err != nil {
		t.Fatal(err)
	}
	if byPath.Path != "" || byPath.Data != exported {
		t.Fatalf("Resolve did not inline the file (path %q, %d data bytes)", byPath.Path, len(byPath.Data))
	}
	inline := Spec{Kind: KindReplay, Data: exported}
	h1, err := byPath.Hash()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := inline.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatalf("path-resolved and inline replay specs hash differently: %s vs %s", h1, h2)
	}

	rw, err := inline.Workload("gups-replay", w.TargetMPKI)
	if err != nil {
		t.Fatal(err)
	}
	orig := w.New(7)
	gen := rw.New(12345) // replay ignores the seed
	var first []Op
	for i := 0; i < n; i++ {
		op := gen.Next()
		first = append(first, op)
		want := orig.Next()
		// The textual format drops Dep on writes (meaningless there); any
		// other field must survive export→replay exactly.
		want.Dep = want.Dep && !want.Write
		if op != want {
			t.Fatalf("op %d: replay %+v, original %+v", i, op, want)
		}
	}
	for i := 0; i < n; i++ { // cyclic: second pass repeats the first
		if op := gen.Next(); op != first[i] {
			t.Fatalf("cycle op %d: got %+v, want %+v", i, op, first[i])
		}
	}

	// FromReader and the replay spec agree op for op.
	fw, err := FromReader("gups-file", strings.NewReader(exported), 0)
	if err != nil {
		t.Fatal(err)
	}
	fg, sg := fw.New(0), rw.New(0)
	for i := 0; i < n+17; i++ {
		if a, b := fg.Next(), sg.Next(); a != b {
			t.Fatalf("op %d: FromReader %+v, spec %+v", i, a, b)
		}
	}
}

func TestSpecByName(t *testing.T) {
	sp, err := SpecByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	if sp.Kind != KindRandom || !sp.Dep || !sp.RMW {
		t.Fatalf("mcf spec unexpected: %+v", sp)
	}
	if _, err := SpecByName("nope"); err == nil {
		t.Fatal("want error for unknown name")
	}
}
