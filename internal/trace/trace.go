// Package trace synthesises the paper's workloads. SPEC CPU2006 binaries
// and gem5 checkpoints are proprietary/unavailable, so each of the nine
// SPEC benchmarks plus GUPS and stream (Table IV) is replaced by a
// parametric generator that reproduces the traits the Mellow Writes
// mechanisms are sensitive to:
//
//   - LLC miss rate (calibrated to Table IV MPKI; verified by test),
//   - the read/write mix of memory traffic,
//   - spatial pattern (streaming, strided stencil, random, pointer
//     chase, random-update) and therefore bank/row-buffer behaviour,
//   - dependence (pointer chases serialise; streams overlap),
//   - a resident hot set that exercises the LLC LRU stack profiler.
//
// See DESIGN.md §4 for the substitution rationale.
package trace

import (
	"math"

	"mellow/internal/rng"
)

// Op is one trace item: Gap non-memory instructions followed by one
// memory access. The access itself counts as one instruction, so an Op
// represents Gap+1 instructions.
type Op struct {
	// Gap is the number of non-memory instructions preceding the access.
	Gap uint32
	// Addr is the byte address accessed.
	Addr uint64
	// Write marks a store; loads are reads.
	Write bool
	// Dep marks a load whose address depends on the previous load
	// (pointer chasing): it cannot issue until that load completes.
	Dep bool
}

// Generator produces an infinite instruction/access stream.
type Generator interface {
	Next() Op
}

// gapper draws instruction gaps with a fractional mean: uniform jitter in
// [0.5, 1.5)×mean with an accumulator so the long-run mean is exact.
type gapper struct {
	src  *rng.Source
	mean float64
	acc  float64
}

func (g *gapper) next() uint32 {
	g.acc += g.mean * (0.5 + g.src.Float64())
	n := math.Floor(g.acc)
	g.acc -= n
	return uint32(n)
}

// region is a contiguous array of memory, addressed in 8-byte elements.
type region struct {
	base  uint64
	bytes uint64
}

func (r region) elemAddr(i uint64) uint64 { return r.base + (i*8)%r.bytes }
func (r region) lineAddr(l uint64) uint64 { return r.base + (l*64)%r.bytes }
func (r region) lines() uint64            { return r.bytes / 64 }

// layout hands out non-overlapping regions within the 4 GB physical
// space, leaving the first 64 MB unused and aligning to 1 MB.
type layout struct{ cursor uint64 }

func newLayout() *layout { return &layout{cursor: 64 << 20} }

func (a *layout) alloc(bytes uint64) region {
	const align = 1 << 20
	bytes = (bytes + align - 1) &^ uint64(align-1)
	r := region{base: a.cursor, bytes: bytes}
	a.cursor += bytes
	if a.cursor > 4<<30 {
		panic("trace: workload layout exceeds 4 GB physical memory")
	}
	return r
}

// hotSet models a cache-resident (or nearly so) reuse region with a
// Zipf-skewed line popularity, providing the LLC hit-position signal the
// eager profiler feeds on.
type hotSet struct {
	src       *rng.Source
	reg       region
	zipf      *rng.Zipf
	writeProb float64
}

func newHotSet(src *rng.Source, reg region, theta, writeProb float64) *hotSet {
	return &hotSet{
		src:       src,
		reg:       reg,
		zipf:      rng.NewZipf(src.Branch(0x407), reg.lines(), theta),
		writeProb: writeProb,
	}
}

func (h *hotSet) access() (addr uint64, write bool) {
	l := h.zipf.Next()
	// Spread the popular lines across the address space so they do not
	// all collide in the same cache sets: multiply by a large odd
	// constant modulo the line count (a bijection).
	l = (l * 0x9E3779B1) % h.reg.lines()
	return h.reg.lineAddr(l), h.src.Bool(h.writeProb)
}

// stream walks a set of arrays element-by-element (8-byte words),
// emitting one access per array per element — the shape of stream/lbm/
// milc/libquantum and, with more arrays plus a hot set, of the stencil
// codes. writeProb applies to arrays marked maybeWrite (used by
// libquantum's conditional updates).
type stream struct {
	src    *rng.Source
	gap    gapper
	reads  []region
	writes []region
	elem   uint64
	idx    int // next position in the combined read+write sweep
	hot    *hotSet
	pHot   float64
}

func (s *stream) Next() Op {
	g := s.gap.next()
	if s.hot != nil && s.src.Bool(s.pHot) {
		addr, w := s.hot.access()
		return Op{Gap: g, Addr: addr, Write: w}
	}
	var op Op
	if s.idx < len(s.reads) {
		op = Op{Gap: g, Addr: s.reads[s.idx].elemAddr(s.elem)}
	} else {
		op = Op{Gap: g, Addr: s.writes[s.idx-len(s.reads)].elemAddr(s.elem), Write: true}
	}
	s.idx++
	if s.idx == len(s.reads)+len(s.writes) {
		s.idx = 0
		s.elem++
	}
	return op
}

// random emits accesses to uniformly random lines of a region —
// optionally dependent (pointer chase), optionally read-modify-write
// (the write to the just-read line follows immediately), with a given
// write probability for the follow-up or standalone store.
type random struct {
	src     *rng.Source
	gap     gapper
	reg     region
	dep     bool
	rmw     bool
	wProb   float64
	pending uint64 // pending RMW write address
	hasPend bool
	hot     *hotSet
	pHot    float64
}

func (r *random) Next() Op {
	if r.hasPend {
		r.hasPend = false
		return Op{Gap: 0, Addr: r.pending, Write: true}
	}
	g := r.gap.next()
	if r.hot != nil && r.src.Bool(r.pHot) {
		addr, w := r.hot.access()
		return Op{Gap: g, Addr: addr, Write: w}
	}
	addr := r.reg.lineAddr(r.src.Uintn(r.reg.lines()))
	if r.rmw && r.src.Bool(r.wProb) {
		r.pending = addr
		r.hasPend = true
		return Op{Gap: g, Addr: addr, Dep: r.dep}
	}
	if !r.rmw && r.src.Bool(r.wProb) {
		return Op{Gap: g, Addr: addr, Write: true}
	}
	return Op{Gap: g, Addr: addr, Dep: r.dep}
}
