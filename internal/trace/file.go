package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The textual trace format is one record per line:
//
//	<gap> <hex-address> <R|W>[!]
//
// where gap is the number of non-memory instructions preceding the
// access and a trailing '!' marks a dependent load (pointer chase).
// Blank lines and lines starting with '#' are ignored. The format is
// deliberately trivial so traces can be produced by any tool (Pin,
// DynamoRIO, gem5, a debugger script) and inspected by eye.

// WriteOps exports trace records in the textual format.
func WriteOps(w io.Writer, ops []Op) error {
	bw := bufio.NewWriter(w)
	for _, op := range ops {
		kind := "R"
		if op.Write {
			kind = "W"
		}
		dep := ""
		if op.Dep && !op.Write {
			dep = "!"
		}
		if _, err := fmt.Fprintf(bw, "%d %x %s%s\n", op.Gap, op.Addr, kind, dep); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Record exports the next n records of a generator.
func Record(w io.Writer, g Generator, n int) error {
	bw := bufio.NewWriter(w)
	for i := 0; i < n; i++ {
		op := g.Next()
		kind := "R"
		if op.Write {
			kind = "W"
		}
		dep := ""
		if op.Dep && !op.Write {
			dep = "!"
		}
		if _, err := fmt.Fprintf(bw, "%d %x %s%s\n", op.Gap, op.Addr, kind, dep); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// fileGen replays a parsed trace cyclically (the paper assumes the
// workload repeats its execution pattern, §V).
type fileGen struct {
	ops []Op
	i   int
}

func (g *fileGen) Next() Op {
	op := g.ops[g.i]
	g.i++
	if g.i == len(g.ops) {
		g.i = 0
	}
	return op
}

// ParseOps reads every record from r.
func ParseOps(r io.Reader) ([]Op, error) {
	var ops []Op
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("trace: line %d: want 3 fields, got %d", lineNo, len(fields))
		}
		gap, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad gap %q: %v", lineNo, fields[0], err)
		}
		addr, err := strconv.ParseUint(fields[1], 16, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad address %q: %v", lineNo, fields[1], err)
		}
		op := Op{Gap: uint32(gap), Addr: addr}
		switch fields[2] {
		case "R":
		case "R!":
			op.Dep = true
		case "W":
			op.Write = true
		default:
			return nil, fmt.Errorf("trace: line %d: bad kind %q (want R, R! or W)", lineNo, fields[2])
		}
		ops = append(ops, op)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %v", err)
	}
	if len(ops) == 0 {
		return nil, fmt.Errorf("trace: no records")
	}
	return ops, nil
}

// FromReader builds a Workload that cyclically replays a textual trace.
// name labels results; targetMPKI may be zero if unknown.
func FromReader(name string, r io.Reader, targetMPKI float64) (Workload, error) {
	ops, err := ParseOps(r)
	if err != nil {
		return Workload{}, err
	}
	return Workload{
		Name:       name,
		TargetMPKI: targetMPKI,
		New: func(uint64) Generator {
			// The replayed trace is deterministic; the seed is unused.
			return &fileGen{ops: ops}
		},
	}, nil
}
