package trace

import (
	"os"
	"strings"
	"testing"
)

func TestParseOps(t *testing.T) {
	in := `# a comment
10 4000000 R
0 4000040 W

3 8000000 R!
`
	ops, err := ParseOps(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 3 {
		t.Fatalf("parsed %d ops, want 3", len(ops))
	}
	if ops[0].Gap != 10 || ops[0].Addr != 0x4000000 || ops[0].Write || ops[0].Dep {
		t.Errorf("op0 = %+v", ops[0])
	}
	if !ops[1].Write || ops[1].Gap != 0 {
		t.Errorf("op1 = %+v", ops[1])
	}
	if !ops[2].Dep || ops[2].Write {
		t.Errorf("op2 = %+v", ops[2])
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"wrong fields": "1 2\n",
		"bad gap":      "x 40 R\n",
		"bad addr":     "1 zz R\n",
		"bad kind":     "1 40 Q\n",
		"empty":        "# nothing\n",
		"dep write":    "1 40 W!\n",
	}
	for name, in := range cases {
		if _, err := ParseOps(strings.NewReader(in)); err == nil {
			t.Errorf("%s: ParseOps accepted %q", name, in)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	w, _ := ByName("gups")
	g := w.New(7)
	var sb strings.Builder
	if err := Record(&sb, g, 500); err != nil {
		t.Fatal(err)
	}
	back, err := ParseOps(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 500 {
		t.Fatalf("round trip length %d, want 500", len(back))
	}
	// Compare against a fresh generator with the same seed.
	g2 := w.New(7)
	for i, op := range back {
		want := g2.Next()
		if op != want {
			t.Fatalf("record %d: %+v != %+v", i, op, want)
		}
	}
}

func TestWriteOps(t *testing.T) {
	ops := []Op{
		{Gap: 5, Addr: 0x1000},
		{Gap: 0, Addr: 0x1040, Write: true},
		{Gap: 2, Addr: 0x2000, Dep: true},
	}
	var sb strings.Builder
	if err := WriteOps(&sb, ops); err != nil {
		t.Fatal(err)
	}
	back, err := ParseOps(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	for i := range ops {
		if back[i] != ops[i] {
			t.Errorf("op %d: %+v != %+v", i, back[i], ops[i])
		}
	}
}

func TestFromReaderReplaysCyclically(t *testing.T) {
	in := "1 1000 R\n2 2000 W\n"
	w, err := FromReader("mytrace", strings.NewReader(in), 0)
	if err != nil {
		t.Fatal(err)
	}
	if w.Name != "mytrace" {
		t.Errorf("name = %q", w.Name)
	}
	g := w.New(1)
	for cycle := 0; cycle < 3; cycle++ {
		a, b := g.Next(), g.Next()
		if a.Addr != 0x1000 || b.Addr != 0x2000 || !b.Write {
			t.Fatalf("cycle %d: %+v %+v", cycle, a, b)
		}
	}
}

func TestFromReaderRejectsEmpty(t *testing.T) {
	if _, err := FromReader("x", strings.NewReader(""), 0); err == nil {
		t.Error("empty trace accepted")
	}
}

func TestGoldenTraceFile(t *testing.T) {
	f, err := os.Open("testdata/milc64.trace")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ops, err := ParseOps(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 64 {
		t.Fatalf("golden trace has %d ops, want 64", len(ops))
	}
	// The golden file was recorded from milc seed 1; regeneration must
	// still match (trace format and generators are stable interfaces).
	w, _ := ByName("milc")
	g := w.New(1)
	for i, op := range ops {
		if want := g.Next(); op != want {
			t.Fatalf("golden record %d drifted: %+v != %+v", i, op, want)
		}
	}
}
