package trace

import (
	"math"
	"testing"

	"mellow/internal/cache"
	"mellow/internal/config"
	"mellow/internal/rng"
)

func TestAllWorkloadsListed(t *testing.T) {
	names := Names()
	if len(names) != 11 {
		t.Fatalf("suite has %d workloads, want 11", len(names))
	}
	want := map[string]bool{
		"leslie3d": true, "GemsFDTD": true, "libquantum": true, "stream": true,
		"hmmer": true, "zeusmp": true, "bwaves": true, "gups": true,
		"milc": true, "mcf": true, "lbm": true,
	}
	for _, n := range names {
		if !want[n] {
			t.Errorf("unexpected workload %q", n)
		}
		delete(want, n)
	}
	for n := range want {
		t.Errorf("missing workload %q", n)
	}
}

func TestByName(t *testing.T) {
	w, err := ByName("lbm")
	if err != nil || w.Name != "lbm" {
		t.Fatalf("ByName(lbm) = %v, %v", w.Name, err)
	}
	if _, err := ByName("nonesuch"); err == nil {
		t.Error("ByName(nonesuch) should fail")
	}
}

func TestDeterministicGeneration(t *testing.T) {
	for _, w := range All() {
		a, b := w.New(7), w.New(7)
		for i := 0; i < 1000; i++ {
			oa, ob := a.Next(), b.Next()
			if oa != ob {
				t.Fatalf("%s: diverged at op %d: %+v vs %+v", w.Name, i, oa, ob)
			}
		}
	}
}

func TestSeedsChangeStreams(t *testing.T) {
	w, _ := ByName("gups")
	a, b := w.New(1), w.New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Next().Addr == b.Next().Addr {
			same++
		}
	}
	if same > 10 {
		t.Errorf("different seeds produced %d/100 identical addresses", same)
	}
}

func TestAddressesWithinPhysicalMemory(t *testing.T) {
	for _, w := range All() {
		g := w.New(3)
		for i := 0; i < 50000; i++ {
			op := g.Next()
			if op.Addr >= 4<<30 {
				t.Fatalf("%s: address %#x outside 4 GB", w.Name, op.Addr)
			}
		}
	}
}

func TestGapMeanAccurate(t *testing.T) {
	g := gapper{src: rng.New(5), mean: 9.18}
	var sum uint64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += uint64(g.next())
	}
	got := float64(sum) / n
	if math.Abs(got-9.18) > 0.05 {
		t.Errorf("gap mean = %v, want 9.18", got)
	}
}

func TestStreamShape(t *testing.T) {
	w, _ := ByName("stream")
	g := w.New(1)
	reads, writes := 0, 0
	for i := 0; i < 3000; i++ {
		op := g.Next()
		if op.Write {
			writes++
		} else {
			reads++
		}
		if op.Dep {
			t.Fatal("stream must not have dependent loads")
		}
	}
	ratio := float64(writes) / float64(reads+writes)
	if ratio < 0.30 || ratio > 0.37 {
		t.Errorf("stream write share = %v, want ~1/3", ratio)
	}
}

func TestLbmWriteHeavy(t *testing.T) {
	w, _ := ByName("lbm")
	g := w.New(1)
	writes := 0
	for i := 0; i < 3000; i++ {
		if g.Next().Write {
			writes++
		}
	}
	if share := float64(writes) / 3000; share < 0.45 {
		t.Errorf("lbm write share = %v, want ~1/2", share)
	}
}

func TestMcfDependentReads(t *testing.T) {
	w, _ := ByName("mcf")
	g := w.New(1)
	deps, writes := 0, 0
	for i := 0; i < 5000; i++ {
		op := g.Next()
		if op.Dep {
			deps++
		}
		if op.Write {
			writes++
			if op.Gap != 0 {
				t.Fatal("mcf RMW write must follow its read immediately")
			}
		}
	}
	if deps < 3000 {
		t.Errorf("mcf dependent loads = %d/5000, want most", deps)
	}
	if writes < 500 || writes > 1500 {
		t.Errorf("mcf writes = %d/5000, want ~20%% of ops", writes)
	}
}

func TestGupsAlwaysRMW(t *testing.T) {
	w, _ := ByName("gups")
	g := w.New(1)
	var lastRead uint64
	sawRead := false
	for i := 0; i < 2000; i++ {
		op := g.Next()
		if op.Write {
			if !sawRead || op.Addr != lastRead {
				t.Fatal("gups write does not match preceding read")
			}
			sawRead = false
		} else {
			lastRead = op.Addr
			sawRead = true
		}
	}
}

func TestStreamSequentialLocality(t *testing.T) {
	// Consecutive accesses to the same array must advance by 8 bytes —
	// seven of eight consecutive touches stay within one line.
	w, _ := ByName("libquantum")
	g := w.New(1)
	sameLine := 0
	var prev [2]uint64 // per alternating array slot
	const n = 8000
	for i := 0; i < n; i++ {
		op := g.Next()
		slot := i % 2
		if prev[slot] != 0 && op.Addr>>6 == prev[slot]>>6 {
			sameLine++
		}
		prev[slot] = op.Addr
	}
	if frac := float64(sameLine) / n; frac < 0.8 {
		t.Errorf("same-line fraction = %v, want ~7/8 (sequential words)", frac)
	}
}

// TestMPKICalibration regenerates Table IV: every workload, run against
// the paper's real cache hierarchy, must land near its published MPKI.
func TestMPKICalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration run is slow")
	}
	cfg := config.Default()
	const warm = 1_000_000
	const measured = 3_000_000
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			h := cache.NewHierarchy(cfg.Caches, rng.New(99))
			g := w.New(1)
			var instr uint64
			for instr < warm {
				op := g.Next()
				instr += uint64(op.Gap) + 1
				h.Access(op.Addr, op.Write)
			}
			h.ResetStats()
			instr = 0
			for instr < measured {
				op := g.Next()
				instr += uint64(op.Gap) + 1
				h.Access(op.Addr, op.Write)
			}
			mpki := float64(h.Snapshot().LLCMisses) / (float64(instr) / 1000)
			lo, hi := w.TargetMPKI*0.6, w.TargetMPKI*1.5
			if mpki < lo || mpki > hi {
				t.Errorf("MPKI = %.2f, want %.2f (accept %.2f–%.2f)", mpki, w.TargetMPKI, lo, hi)
			} else {
				t.Logf("MPKI = %.2f (target %.2f)", mpki, w.TargetMPKI)
			}
		})
	}
}
