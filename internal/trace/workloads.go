package trace

import (
	"fmt"
	"sort"

	"mellow/internal/rng"
)

// Workload names one synthetic benchmark and its Table IV calibration
// target.
type Workload struct {
	// Name matches the paper's benchmark name.
	Name string
	// TargetMPKI is the LLC misses per 1000 instructions of Table IV
	// (2 MB LLC); the generators are calibrated to it (tested).
	TargetMPKI float64
	// New builds a fresh generator seeded deterministically.
	New func(seed uint64) Generator
}

// MB is a byte-count helper for workload definitions.
const MB = 1 << 20

func mkStream(gapMean float64, nRead, nWrite int, arrayBytes uint64,
	hotBytes uint64, pHot, hotWriteProb float64) func(uint64) Generator {
	return func(seed uint64) Generator {
		src := rng.New(seed)
		lay := newLayout()
		s := &stream{src: src, gap: gapper{src: src.Branch(1), mean: gapMean}}
		for i := 0; i < nRead; i++ {
			s.reads = append(s.reads, lay.alloc(arrayBytes))
		}
		for i := 0; i < nWrite; i++ {
			s.writes = append(s.writes, lay.alloc(arrayBytes))
		}
		if hotBytes > 0 {
			s.hot = newHotSet(src.Branch(2), lay.alloc(hotBytes), 0.7, hotWriteProb)
			s.pHot = pHot
		}
		return s
	}
}

func mkRandom(gapMean float64, regionBytes uint64, dep, rmw bool, wProb float64,
	hotBytes uint64, pHot, hotWriteProb float64) func(uint64) Generator {
	return func(seed uint64) Generator {
		src := rng.New(seed)
		lay := newLayout()
		r := &random{
			src: src, gap: gapper{src: src.Branch(1), mean: gapMean},
			reg: lay.alloc(regionBytes), dep: dep, rmw: rmw, wProb: wProb,
		}
		if hotBytes > 0 {
			r.hot = newHotSet(src.Branch(2), lay.alloc(hotBytes), 0.7, hotWriteProb)
			r.pHot = pHot
		}
		return r
	}
}

func mkHotOnly(gapMean float64, hotBytes uint64, theta, wProb float64) func(uint64) Generator {
	return func(seed uint64) Generator {
		src := rng.New(seed)
		lay := newLayout()
		return &random{
			src: src, gap: gapper{src: src.Branch(1), mean: gapMean},
			reg:  lay.alloc(64 * MB), // cold leak region
			pHot: 0.995,
			hot: &hotSet{
				src:       src.Branch(2),
				reg:       lay.alloc(hotBytes),
				zipf:      rng.NewZipf(src.Branch(3), hotBytes/64, theta),
				writeProb: wProb,
			},
		}
	}
}

// workloads defines the 11-benchmark suite. Gap means were derived from
// the closed-form MPKI model in DESIGN.md §4 and then adjusted against
// the measured MPKI of the real hierarchy (TestMPKICalibration).
var workloads = []Workload{
	// stream: the classic triad — two read arrays, one write array,
	// pure streaming, no reuse.
	{"stream", 12.28, mkStream(9.0, 2, 1, 32*MB, 0, 0, 0)},
	// lbm: streaming fluid solver, unusually write-heavy traffic.
	{"lbm", 31.72, mkStream(3.0, 2, 2, 48*MB, 0, 0, 0)},
	// libquantum: one large amplitude array streamed with conditional
	// updates — modelled as one read + one write sweep of the same-sized
	// arrays (high write share, streaming rows).
	{"libquantum", 30.12, mkStream(3.15, 1, 1, 64*MB, 0, 0, 0)},
	// milc: lattice QCD, streaming reads over several large fields with
	// occasional writes.
	{"milc", 19.49, mkStream(5.4, 3, 1, 32*MB, 0, 0, 0)},
	// mcf: pointer-chasing over a large graph; reads serialise, a
	// quarter of the visited nodes are updated in place.
	{"mcf", 56.34, mkRandom(16.5, 384*MB, true, true, 0.25, 0, 0, 0)},
	// gups: random read-modify-write updates over a 1 GB table.
	{"gups", 8.91, mkRandom(110, 1024*MB, false, true, 1.0, 0, 0, 0)},
	// leslie3d: strided stencil with a modest resident set.
	{"leslie3d", 5.95, mkStream(22.4, 4, 2, 12*MB, 1*MB, 0.20, 0.3)},
	// GemsFDTD: larger stencil over many field arrays.
	{"GemsFDTD", 15.34, mkStream(7.8, 6, 3, 24*MB, 1*MB, 0.10, 0.3)},
	// zeusmp: stencil with strong reuse.
	{"zeusmp", 4.53, mkStream(27.9, 3, 2, 8*MB, 1*MB, 0.30, 0.3)},
	// bwaves: blocked solver, read-dominated.
	{"bwaves", 5.58, mkStream(25.2, 4, 1, 16*MB, 1*MB, 0.15, 0.2)},
	// hmmer: mostly cache-resident, store-heavy; misses come from a
	// slightly-larger-than-LLC hot set plus a small cold leak.
	{"hmmer", 1.34, mkHotOnly(2.5, 1*MB, 0.8, 0.45)},
}

// All returns the benchmark suite in the paper's table order.
func All() []Workload {
	out := make([]Workload, len(workloads))
	copy(out, workloads)
	return out
}

// Names returns the suite's names.
func Names() []string {
	names := make([]string, len(workloads))
	for i, w := range workloads {
		names[i] = w.Name
	}
	return names
}

// ByName finds a workload; the lookup is case-sensitive like the paper's
// tables.
func ByName(name string) (Workload, error) {
	for _, w := range workloads {
		if w.Name == name {
			return w, nil
		}
	}
	sorted := Names()
	sort.Strings(sorted)
	return Workload{}, fmt.Errorf("trace: unknown workload %q (have %v)", name, sorted)
}
