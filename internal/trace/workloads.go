package trace

import (
	"fmt"
	"sort"
)

// Workload names one synthetic benchmark and its Table IV calibration
// target.
type Workload struct {
	// Name matches the paper's benchmark name.
	Name string
	// TargetMPKI is the LLC misses per 1000 instructions of Table IV
	// (2 MB LLC); the generators are calibrated to it (tested).
	TargetMPKI float64
	// New builds a fresh generator seeded deterministically.
	New func(seed uint64) Generator
	// Spec is the declarative parameterization this workload was built
	// from (normalized), nil for workloads constructed directly from a
	// reader. Shared: callers must not modify it.
	Spec *Spec
}

// MB is a byte-count helper for workload definitions.
const MB = 1 << 20

// builtins defines the 11-benchmark suite as declarative specs. Gap
// means were derived from the closed-form MPKI model in DESIGN.md §4 and
// then adjusted against the measured MPKI of the real hierarchy
// (TestMPKICalibration). The specs are pinned byte-identical to the
// original Go closures by the equivalence tests.
var builtins = []struct {
	name string
	mpki float64
	spec Spec
}{
	// stream: the classic triad — two read arrays, one write array,
	// pure streaming, no reuse.
	{"stream", 12.28, Spec{Kind: KindStream, GapMean: 9.0, ReadArrays: 2, WriteArrays: 1, ArrayBytes: 32 * MB}},
	// lbm: streaming fluid solver, unusually write-heavy traffic.
	{"lbm", 31.72, Spec{Kind: KindStream, GapMean: 3.0, ReadArrays: 2, WriteArrays: 2, ArrayBytes: 48 * MB}},
	// libquantum: one large amplitude array streamed with conditional
	// updates — modelled as one read + one write sweep of the same-sized
	// arrays (high write share, streaming rows).
	{"libquantum", 30.12, Spec{Kind: KindStream, GapMean: 3.15, ReadArrays: 1, WriteArrays: 1, ArrayBytes: 64 * MB}},
	// milc: lattice QCD, streaming reads over several large fields with
	// occasional writes.
	{"milc", 19.49, Spec{Kind: KindStream, GapMean: 5.4, ReadArrays: 3, WriteArrays: 1, ArrayBytes: 32 * MB}},
	// mcf: pointer-chasing over a large graph; reads serialise, a
	// quarter of the visited nodes are updated in place.
	{"mcf", 56.34, Spec{Kind: KindRandom, GapMean: 16.5, RegionBytes: 384 * MB, Dep: true, RMW: true, WriteProb: 0.25}},
	// gups: random read-modify-write updates over a 1 GB table.
	{"gups", 8.91, Spec{Kind: KindRandom, GapMean: 110, RegionBytes: 1024 * MB, RMW: true, WriteProb: 1.0}},
	// leslie3d: strided stencil with a modest resident set.
	{"leslie3d", 5.95, Spec{Kind: KindStream, GapMean: 22.4, ReadArrays: 4, WriteArrays: 2, ArrayBytes: 12 * MB,
		HotBytes: 1 * MB, HotProb: 0.20, HotTheta: 0.7, HotWriteProb: 0.3}},
	// GemsFDTD: larger stencil over many field arrays.
	{"GemsFDTD", 15.34, Spec{Kind: KindStream, GapMean: 7.8, ReadArrays: 6, WriteArrays: 3, ArrayBytes: 24 * MB,
		HotBytes: 1 * MB, HotProb: 0.10, HotTheta: 0.7, HotWriteProb: 0.3}},
	// zeusmp: stencil with strong reuse.
	{"zeusmp", 4.53, Spec{Kind: KindStream, GapMean: 27.9, ReadArrays: 3, WriteArrays: 2, ArrayBytes: 8 * MB,
		HotBytes: 1 * MB, HotProb: 0.30, HotTheta: 0.7, HotWriteProb: 0.3}},
	// bwaves: blocked solver, read-dominated.
	{"bwaves", 5.58, Spec{Kind: KindStream, GapMean: 25.2, ReadArrays: 4, WriteArrays: 1, ArrayBytes: 16 * MB,
		HotBytes: 1 * MB, HotProb: 0.15, HotTheta: 0.7, HotWriteProb: 0.2}},
	// hmmer: mostly cache-resident, store-heavy; misses come from a
	// slightly-larger-than-LLC hot set plus a small cold leak.
	{"hmmer", 1.34, Spec{Kind: KindHotOnly, GapMean: 2.5, RegionBytes: 64 * MB,
		HotBytes: 1 * MB, HotProb: 0.995, HotTheta: 0.8, HotWriteProb: 0.45}},
}

// workloads is the runnable suite, built once from the spec table.
var workloads = func() []Workload {
	out := make([]Workload, len(builtins))
	for i, b := range builtins {
		w, err := b.spec.Workload(b.name, b.mpki)
		if err != nil {
			panic(fmt.Sprintf("trace: builtin workload %q: %v", b.name, err))
		}
		out[i] = w
	}
	return out
}()

// All returns the benchmark suite in the paper's table order.
func All() []Workload {
	out := make([]Workload, len(workloads))
	copy(out, workloads)
	return out
}

// Names returns the suite's names.
func Names() []string {
	names := make([]string, len(workloads))
	for i, w := range workloads {
		names[i] = w.Name
	}
	return names
}

// ByName finds a workload; the lookup is case-sensitive like the paper's
// tables.
func ByName(name string) (Workload, error) {
	for _, w := range workloads {
		if w.Name == name {
			return w, nil
		}
	}
	sorted := Names()
	sort.Strings(sorted)
	return Workload{}, fmt.Errorf("trace: unknown workload %q (have %v)", name, sorted)
}

// SpecByName returns the declarative spec of a builtin workload.
func SpecByName(name string) (Spec, error) {
	w, err := ByName(name)
	if err != nil {
		return Spec{}, err
	}
	return *w.Spec, nil
}
