package trace

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mellow/internal/rng"
)

// Spec is the declarative form of a workload generator: the complete
// parameterization that used to live in per-benchmark Go closures, as
// plain data. A Spec round-trips through JSON, canonicalises to stable
// bytes and hashes for content addressing, so workloads can be declared
// in scenario files, shipped in job requests and replayed from the write-
// ahead log without code changes.
//
// Specs are pinned byte-identical to the legacy closures: for every
// builtin workload, the generator built from its Spec emits exactly the
// instruction stream the closure emitted (tested per seed).
type Spec struct {
	// Kind selects the generator shape: "stream", "random", "hotonly" or
	// "replay".
	Kind string `json:"kind"`
	// GapMean is the mean number of non-memory instructions between
	// accesses (fractional; the long-run mean is exact). Synthetic kinds
	// only.
	GapMean float64 `json:"gap_mean,omitempty"`

	// ReadArrays/WriteArrays/ArrayBytes describe the "stream" kind: that
	// many read and write arrays of ArrayBytes each, swept element by
	// element.
	ReadArrays  int    `json:"read_arrays,omitempty"`
	WriteArrays int    `json:"write_arrays,omitempty"`
	ArrayBytes  uint64 `json:"array_bytes,omitempty"`

	// RegionBytes is the uniformly-accessed region of the "random" kind,
	// and the cold leak region of "hotonly" (default 64 MB there).
	RegionBytes uint64 `json:"region_bytes,omitempty"`
	// Dep marks random-kind loads address-dependent (pointer chasing).
	Dep bool `json:"dep,omitempty"`
	// RMW makes a fraction WriteProb of random-kind reads read-modify-
	// write pairs; without RMW, WriteProb is the standalone store share.
	RMW       bool    `json:"rmw,omitempty"`
	WriteProb float64 `json:"write_prob,omitempty"`

	// HotBytes > 0 adds a Zipf-skewed resident hot set; HotProb is the
	// probability an access goes to it, HotTheta the Zipf skew (default
	// 0.7 for stream/random) and HotWriteProb its store share. The
	// "hotonly" kind is built from these fields (HotProb default 0.995).
	HotBytes     uint64  `json:"hot_bytes,omitempty"`
	HotProb      float64 `json:"hot_prob,omitempty"`
	HotTheta     float64 `json:"hot_theta,omitempty"`
	HotWriteProb float64 `json:"hot_write_prob,omitempty"`

	// Path references a textual trace file (mellowtrace -export) for the
	// "replay" kind. It is a loader-level pointer only: Resolve inlines
	// the file into Data, and only Data enters the canonical form —
	// content, not filename, is the identity.
	Path string `json:"path,omitempty"`
	// Data is the inlined textual trace for the "replay" kind, replayed
	// cyclically like FromReader.
	Data string `json:"data,omitempty"`
}

// Spec kinds.
const (
	KindStream  = "stream"
	KindRandom  = "random"
	KindHotOnly = "hotonly"
	KindReplay  = "replay"
)

// Kinds lists the spec kinds in canonical order.
func Kinds() []string { return []string{KindStream, KindRandom, KindHotOnly, KindReplay} }

// Normalize returns the spec with defaults made explicit — the form that
// canonicalises and hashes. Defaults mirror what the legacy closures
// hardcoded: Zipf skew 0.7 for stream/random hot sets, and hotonly's
// 64 MB cold leak region with 0.995 hot probability.
func (sp Spec) Normalize() Spec {
	switch sp.Kind {
	case KindStream, KindRandom:
		if sp.HotBytes > 0 && sp.HotTheta == 0 {
			sp.HotTheta = 0.7
		}
	case KindHotOnly:
		if sp.RegionBytes == 0 {
			sp.RegionBytes = 64 * MB
		}
		if sp.HotProb == 0 {
			sp.HotProb = 0.995
		}
	}
	if sp.Kind == KindReplay && sp.Data != "" {
		sp.Path = ""
	}
	return sp
}

// Validate checks the normalized spec. Validation is strict: fields
// foreign to the kind must be zero, so typos in data files fail loudly
// instead of being silently ignored.
func (sp Spec) Validate() error {
	sp = sp.Normalize()
	switch sp.Kind {
	case KindStream:
		if err := sp.requireZero("region_bytes", sp.RegionBytes != 0,
			"dep", sp.Dep, "rmw", sp.RMW, "write_prob", sp.WriteProb != 0,
			"path", sp.Path != "", "data", sp.Data != ""); err != nil {
			return err
		}
		if sp.GapMean <= 0 {
			return fmt.Errorf("trace: spec: stream gap_mean must be positive, got %v", sp.GapMean)
		}
		if sp.ReadArrays < 0 || sp.WriteArrays < 0 || sp.ReadArrays+sp.WriteArrays < 1 {
			return fmt.Errorf("trace: spec: stream needs at least one array (read %d, write %d)",
				sp.ReadArrays, sp.WriteArrays)
		}
		if sp.ArrayBytes == 0 {
			return fmt.Errorf("trace: spec: stream array_bytes must be positive")
		}
		return sp.validateHot(false)
	case KindRandom:
		if err := sp.requireZero("read_arrays", sp.ReadArrays != 0,
			"write_arrays", sp.WriteArrays != 0, "array_bytes", sp.ArrayBytes != 0,
			"path", sp.Path != "", "data", sp.Data != ""); err != nil {
			return err
		}
		if sp.GapMean <= 0 {
			return fmt.Errorf("trace: spec: random gap_mean must be positive, got %v", sp.GapMean)
		}
		if sp.RegionBytes == 0 {
			return fmt.Errorf("trace: spec: random region_bytes must be positive")
		}
		if sp.WriteProb < 0 || sp.WriteProb > 1 {
			return fmt.Errorf("trace: spec: write_prob %v out of [0,1]", sp.WriteProb)
		}
		return sp.validateHot(false)
	case KindHotOnly:
		if err := sp.requireZero("read_arrays", sp.ReadArrays != 0,
			"write_arrays", sp.WriteArrays != 0, "array_bytes", sp.ArrayBytes != 0,
			"dep", sp.Dep, "rmw", sp.RMW, "write_prob", sp.WriteProb != 0,
			"path", sp.Path != "", "data", sp.Data != ""); err != nil {
			return err
		}
		if sp.GapMean <= 0 {
			return fmt.Errorf("trace: spec: hotonly gap_mean must be positive, got %v", sp.GapMean)
		}
		if sp.RegionBytes == 0 {
			return fmt.Errorf("trace: spec: hotonly region_bytes must be positive")
		}
		return sp.validateHot(true)
	case KindReplay:
		if err := sp.requireZero("gap_mean", sp.GapMean != 0,
			"read_arrays", sp.ReadArrays != 0, "write_arrays", sp.WriteArrays != 0,
			"array_bytes", sp.ArrayBytes != 0, "region_bytes", sp.RegionBytes != 0,
			"dep", sp.Dep, "rmw", sp.RMW, "write_prob", sp.WriteProb != 0,
			"hot_bytes", sp.HotBytes != 0, "hot_prob", sp.HotProb != 0,
			"hot_theta", sp.HotTheta != 0, "hot_write_prob", sp.HotWriteProb != 0); err != nil {
			return err
		}
		if sp.Data == "" {
			if sp.Path != "" {
				return fmt.Errorf("trace: spec: replay path %q not resolved (call Resolve)", sp.Path)
			}
			return fmt.Errorf("trace: spec: replay needs data or path")
		}
		if _, err := ParseOps(strings.NewReader(sp.Data)); err != nil {
			return fmt.Errorf("trace: spec: replay data: %v", err)
		}
		return nil
	case "":
		return fmt.Errorf("trace: spec: missing kind (want %v)", Kinds())
	default:
		return fmt.Errorf("trace: spec: unknown kind %q (want %v)", sp.Kind, Kinds())
	}
}

// requireZero reports the first field in (name, set) pairs that is set
// when it must not be for this kind.
func (sp Spec) requireZero(pairs ...any) error {
	for i := 0; i+1 < len(pairs); i += 2 {
		if pairs[i+1].(bool) {
			return fmt.Errorf("trace: spec: field %q is not used by kind %q", pairs[i].(string), sp.Kind)
		}
	}
	return nil
}

// validateHot checks the hot-set fields; required makes them mandatory
// (the hotonly kind), otherwise they are checked only when HotBytes > 0.
func (sp Spec) validateHot(required bool) error {
	if sp.HotBytes == 0 {
		if required {
			return fmt.Errorf("trace: spec: %s hot_bytes must be positive", sp.Kind)
		}
		if sp.HotProb != 0 || sp.HotTheta != 0 || sp.HotWriteProb != 0 {
			return fmt.Errorf("trace: spec: hot_prob/hot_theta/hot_write_prob need hot_bytes > 0")
		}
		return nil
	}
	if sp.HotProb <= 0 || sp.HotProb > 1 {
		return fmt.Errorf("trace: spec: hot_prob %v out of (0,1]", sp.HotProb)
	}
	if sp.HotTheta <= 0 || sp.HotTheta >= 1 {
		return fmt.Errorf("trace: spec: hot_theta %v out of (0,1)", sp.HotTheta)
	}
	if sp.HotWriteProb < 0 || sp.HotWriteProb > 1 {
		return fmt.Errorf("trace: spec: hot_write_prob %v out of [0,1]", sp.HotWriteProb)
	}
	if sp.HotBytes < 64 {
		return fmt.Errorf("trace: spec: hot_bytes %d below one 64-byte line", sp.HotBytes)
	}
	return nil
}

// Resolve inlines a replay spec's referenced trace file into Data,
// resolving a relative Path against dir. Other kinds (and already-
// resolved specs) pass through unchanged. The returned spec carries no
// Path: content is the identity.
func (sp Spec) Resolve(dir string) (Spec, error) {
	if sp.Kind != KindReplay || sp.Data != "" || sp.Path == "" {
		return sp.Normalize(), nil
	}
	p := sp.Path
	if !filepath.IsAbs(p) {
		p = filepath.Join(dir, p)
	}
	b, err := os.ReadFile(p)
	if err != nil {
		return Spec{}, fmt.Errorf("trace: spec: replay: %v", err)
	}
	sp.Data = string(b)
	return sp.Normalize(), nil
}

// CanonicalJSON renders the normalized spec in its canonical byte form
// (stdlib encoding, declaration-ordered fields, no insignificant
// whitespace): equal specs yield identical bytes.
func (sp Spec) CanonicalJSON() ([]byte, error) {
	n := sp.Normalize()
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return json.Marshal(n)
}

// Hash returns the hex SHA-256 of the canonical JSON — the spec's
// identity for memoisation and result caches.
func (sp Spec) Hash() (string, error) {
	b, err := sp.CanonicalJSON()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// Workload builds a runnable Workload from the spec. name labels
// results; targetMPKI may be zero if unknown. Replay specs parse once
// here, so New never fails afterwards.
func (sp Spec) Workload(name string, targetMPKI float64) (Workload, error) {
	n := sp.Normalize()
	if err := n.Validate(); err != nil {
		return Workload{}, err
	}
	w := Workload{Name: name, TargetMPKI: targetMPKI, Spec: &n}
	if n.Kind == KindReplay {
		ops, err := ParseOps(strings.NewReader(n.Data))
		if err != nil {
			return Workload{}, err
		}
		w.New = func(uint64) Generator {
			// The replayed trace is deterministic; the seed is unused.
			return &fileGen{ops: ops}
		}
		return w, nil
	}
	w.New = n.generator
	return w, nil
}

// generator builds the synthetic generator for a validated, normalized
// spec. The construction order of rng branches and layout allocations
// reproduces the legacy closures exactly — Branch advances the parent
// stream and alloc the layout cursor, so sequence is part of the
// contract (pinned by the equivalence tests).
func (sp Spec) generator(seed uint64) Generator {
	src := rng.New(seed)
	lay := newLayout()
	switch sp.Kind {
	case KindStream:
		s := &stream{src: src, gap: gapper{src: src.Branch(1), mean: sp.GapMean}}
		for i := 0; i < sp.ReadArrays; i++ {
			s.reads = append(s.reads, lay.alloc(sp.ArrayBytes))
		}
		for i := 0; i < sp.WriteArrays; i++ {
			s.writes = append(s.writes, lay.alloc(sp.ArrayBytes))
		}
		if sp.HotBytes > 0 {
			s.hot = newHotSet(src.Branch(2), lay.alloc(sp.HotBytes), sp.HotTheta, sp.HotWriteProb)
			s.pHot = sp.HotProb
		}
		return s
	case KindRandom:
		r := &random{
			src: src, gap: gapper{src: src.Branch(1), mean: sp.GapMean},
			reg: lay.alloc(sp.RegionBytes), dep: sp.Dep, rmw: sp.RMW, wProb: sp.WriteProb,
		}
		if sp.HotBytes > 0 {
			r.hot = newHotSet(src.Branch(2), lay.alloc(sp.HotBytes), sp.HotTheta, sp.HotWriteProb)
			r.pHot = sp.HotProb
		}
		return r
	case KindHotOnly:
		return &random{
			src: src, gap: gapper{src: src.Branch(1), mean: sp.GapMean},
			reg:  lay.alloc(sp.RegionBytes), // cold leak region
			pHot: sp.HotProb,
			hot: &hotSet{
				src:       src.Branch(2),
				reg:       lay.alloc(sp.HotBytes),
				zipf:      rng.NewZipf(src.Branch(3), sp.HotBytes/64, sp.HotTheta),
				writeProb: sp.HotWriteProb,
			},
		}
	default:
		panic(fmt.Sprintf("trace: generator for unvalidated spec kind %q", sp.Kind))
	}
}
