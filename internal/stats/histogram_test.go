package stats

import (
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{100, 200, 300, 400} {
		h.Add(v)
	}
	if h.Count() != 4 {
		t.Errorf("count = %d", h.Count())
	}
	if got := h.Mean(); got != 250 {
		t.Errorf("mean = %v, want 250", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Error("empty histogram must report zeros")
	}
}

func TestHistogramQuantileBuckets(t *testing.T) {
	var h Histogram
	// 90 fast samples (~64-127 ns), 10 slow (~4096-8191 ns).
	for i := 0; i < 90; i++ {
		h.Add(100)
	}
	for i := 0; i < 10; i++ {
		h.Add(5000)
	}
	if q := h.Quantile(0.5); q < 100 || q > 127 {
		t.Errorf("p50 = %d, want within the 64-127 bucket", q)
	}
	if q := h.Quantile(0.99); q < 5000 {
		t.Errorf("p99 = %d, want in the slow bucket", q)
	}
}

// TestHistogramQuantileRankEdges pins the target-rank semantics at
// bucket edges: the rank is the ceiling of q·count, so a fractional
// product rounds up to the next sample. Truncation — the old bug —
// would bias every fractional quantile one sample (often one bucket)
// low: with nine fast samples and one slow one, p95 must report the
// slow bucket, because the 9.5th sample can only be the 10th.
func TestHistogramQuantileRankEdges(t *testing.T) {
	// Samples 1, 2, 4, 8, 16 occupy buckets 0..4 one each; bucket i
	// tops out at 2^(i+1)-1.
	var ladder Histogram
	for _, v := range []uint64{1, 2, 4, 8, 16} {
		ladder.Add(v)
	}
	// Nine samples in bucket 0 (top 1), one in bucket 12 (top 8191).
	var skewed Histogram
	for i := 0; i < 9; i++ {
		skewed.Add(1)
	}
	skewed.Add(5000)

	tests := []struct {
		name string
		h    *Histogram
		q    float64
		want uint64
	}{
		// Exact edges: q·count integral, rank = q·count.
		{"ladder q=0.2 rank 1", &ladder, 0.2, 1},
		{"ladder q=0.4 rank 2", &ladder, 0.4, 3},
		{"ladder q=0.6 rank 3", &ladder, 0.6, 7},
		{"ladder q=0.8 rank 4", &ladder, 0.8, 15},
		{"ladder q=1.0 rank 5", &ladder, 1.0, 31},
		// Fractional: ceil(2.5) = 3, the true median of five samples.
		// Truncation would return rank 2 (value 3) — below median.
		{"ladder q=0.5 rounds up", &ladder, 0.5, 7},
		// ceil(0.05) = 1: tiny quantiles clamp to the first sample.
		{"ladder q=0.01 first sample", &ladder, 0.01, 1},
		// p90 of 10 is exactly the 9th sample: still fast.
		{"skewed q=0.90 rank 9", &skewed, 0.90, 1},
		// p95 of 10 is the 9.5th → 10th sample: the slow bucket.
		// Truncation would report 1 here.
		{"skewed q=0.95 rounds up", &skewed, 0.95, 8191},
		{"skewed q=0.91 rounds up", &skewed, 0.91, 8191},
		{"skewed q=1.0 max", &skewed, 1.0, 8191},
	}
	for _, tc := range tests {
		if got := tc.h.Quantile(tc.q); got != tc.want {
			t.Errorf("%s: Quantile(%v) = %d, want %d", tc.name, tc.q, got, tc.want)
		}
	}
}

func TestHistogramSub(t *testing.T) {
	var h Histogram
	h.Add(10)
	base := h
	h.Add(1000)
	d := h.Sub(base)
	if d.Count() != 1 || d.Mean() != 1000 {
		t.Errorf("window: count=%d mean=%v", d.Count(), d.Mean())
	}
}

// Property: quantiles are monotone in q and bounded by the bucket top of
// the maximum sample.
func TestQuickHistogramQuantileMonotone(t *testing.T) {
	f := func(vals []uint32) bool {
		if len(vals) == 0 {
			return true
		}
		var h Histogram
		var max uint64
		for _, v := range vals {
			h.Add(uint64(v))
			if uint64(v) > max {
				max = uint64(v)
			}
		}
		prev := uint64(0)
		for _, q := range []float64{0.1, 0.5, 0.9, 0.99, 1.0} {
			cur := h.Quantile(q)
			if cur < prev {
				return false
			}
			prev = cur
		}
		// The top quantile is at most the top of max's bucket.
		return h.Quantile(1.0) <= (max+1)*2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHistogramZeroSample(t *testing.T) {
	var h Histogram
	h.Add(0)
	if h.Count() != 1 || h.Quantile(1.0) == 0 {
		// Bucket 0 covers [0,2); its top bound is 1.
		t.Errorf("zero sample mishandled: count=%d q=%d", h.Count(), h.Quantile(1.0))
	}
}

func TestHistogramBucketsExport(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{1, 1, 3, 100} {
		h.Add(v)
	}
	if h.Sum() != 105 {
		t.Errorf("sum = %d, want 105", h.Sum())
	}
	bs := h.Buckets()
	if len(bs) != 3 {
		t.Fatalf("buckets = %v, want 3 occupied", bs)
	}
	var total uint64
	prev := uint64(0)
	for _, b := range bs {
		if b.Upper <= prev {
			t.Errorf("bucket bounds not ascending: %v", bs)
		}
		prev = b.Upper
		total += b.Count
	}
	if total != h.Count() {
		t.Errorf("bucket counts sum to %d, want %d", total, h.Count())
	}
	// 1,1 land in [1,2); 3 in [2,4); 100 in [64,128).
	if bs[0].Count != 2 || bs[0].Upper != 1 {
		t.Errorf("first bucket = %+v, want {1 2}", bs[0])
	}
}
