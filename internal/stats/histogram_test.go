package stats

import (
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{100, 200, 300, 400} {
		h.Add(v)
	}
	if h.Count() != 4 {
		t.Errorf("count = %d", h.Count())
	}
	if got := h.Mean(); got != 250 {
		t.Errorf("mean = %v, want 250", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Error("empty histogram must report zeros")
	}
}

func TestHistogramQuantileBuckets(t *testing.T) {
	var h Histogram
	// 90 fast samples (~64-127 ns), 10 slow (~4096-8191 ns).
	for i := 0; i < 90; i++ {
		h.Add(100)
	}
	for i := 0; i < 10; i++ {
		h.Add(5000)
	}
	if q := h.Quantile(0.5); q < 100 || q > 127 {
		t.Errorf("p50 = %d, want within the 64-127 bucket", q)
	}
	if q := h.Quantile(0.99); q < 5000 {
		t.Errorf("p99 = %d, want in the slow bucket", q)
	}
}

func TestHistogramSub(t *testing.T) {
	var h Histogram
	h.Add(10)
	base := h
	h.Add(1000)
	d := h.Sub(base)
	if d.Count() != 1 || d.Mean() != 1000 {
		t.Errorf("window: count=%d mean=%v", d.Count(), d.Mean())
	}
}

// Property: quantiles are monotone in q and bounded by the bucket top of
// the maximum sample.
func TestQuickHistogramQuantileMonotone(t *testing.T) {
	f := func(vals []uint32) bool {
		if len(vals) == 0 {
			return true
		}
		var h Histogram
		var max uint64
		for _, v := range vals {
			h.Add(uint64(v))
			if uint64(v) > max {
				max = uint64(v)
			}
		}
		prev := uint64(0)
		for _, q := range []float64{0.1, 0.5, 0.9, 0.99, 1.0} {
			cur := h.Quantile(q)
			if cur < prev {
				return false
			}
			prev = cur
		}
		// The top quantile is at most the top of max's bucket.
		return h.Quantile(1.0) <= (max+1)*2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHistogramZeroSample(t *testing.T) {
	var h Histogram
	h.Add(0)
	if h.Count() != 1 || h.Quantile(1.0) == 0 {
		// Bucket 0 covers [0,2); its top bound is 1.
		t.Errorf("zero sample mishandled: count=%d q=%d", h.Count(), h.Quantile(1.0))
	}
}

func TestHistogramBucketsExport(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{1, 1, 3, 100} {
		h.Add(v)
	}
	if h.Sum() != 105 {
		t.Errorf("sum = %d, want 105", h.Sum())
	}
	bs := h.Buckets()
	if len(bs) != 3 {
		t.Fatalf("buckets = %v, want 3 occupied", bs)
	}
	var total uint64
	prev := uint64(0)
	for _, b := range bs {
		if b.Upper <= prev {
			t.Errorf("bucket bounds not ascending: %v", bs)
		}
		prev = b.Upper
		total += b.Count
	}
	if total != h.Count() {
		t.Errorf("bucket counts sum to %d, want %d", total, h.Count())
	}
	// 1,1 land in [1,2); 3 in [2,4); 100 in [64,128).
	if bs[0].Count != 2 || bs[0].Upper != 1 {
		t.Errorf("first bucket = %+v, want {1 2}", bs[0])
	}
}
