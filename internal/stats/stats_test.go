package stats

import (
	"math"
	"strings"
	"testing"

	"mellow/internal/sim"
)

func TestBusyMeter(t *testing.T) {
	var b BusyMeter
	b.Reset(0)
	b.AddBusy(10, 30)
	b.AddBusy(50, 60)
	if b.Busy() != 30 {
		t.Errorf("busy = %d, want 30", b.Busy())
	}
	if got := b.Utilization(100); got != 0.30 {
		t.Errorf("utilization = %v, want 0.30", got)
	}
}

func TestBusyMeterClipsBeforeWindow(t *testing.T) {
	var b BusyMeter
	b.Reset(100)
	b.AddBusy(50, 150) // half before window
	if b.Busy() != 50 {
		t.Errorf("busy = %d, want 50 (clipped)", b.Busy())
	}
	b.AddBusy(0, 50) // entirely before window
	if b.Busy() != 50 {
		t.Errorf("busy = %d after pre-window interval, want 50", b.Busy())
	}
	b.AddBusy(30, 20) // inverted interval is a no-op
	if b.Busy() != 50 {
		t.Errorf("busy = %d after inverted interval, want 50", b.Busy())
	}
}

func TestBusyMeterReset(t *testing.T) {
	var b BusyMeter
	b.Reset(0)
	b.AddBusy(0, 100)
	b.Reset(200)
	if b.Busy() != 0 {
		t.Errorf("busy after reset = %d", b.Busy())
	}
	b.AddBusy(200, 250)
	if got := b.Utilization(300); got != 0.5 {
		t.Errorf("utilization = %v, want 0.5", got)
	}
}

func TestToggle(t *testing.T) {
	var tg Toggle
	tg.Reset(0)
	tg.Set(true, 10)
	tg.Set(false, 30)
	tg.Set(true, 50)
	// Still on at query time 70: 20 + 20 = 40 on-time.
	if got := tg.Total(70); got != 40 {
		t.Errorf("total = %d, want 40", got)
	}
	if got := tg.Fraction(80); got != 50.0/80.0 {
		t.Errorf("fraction = %v, want 0.625", got)
	}
	if !tg.On() {
		t.Error("toggle should be on")
	}
}

func TestToggleIdempotentSet(t *testing.T) {
	var tg Toggle
	tg.Reset(0)
	tg.Set(true, 10)
	tg.Set(true, 20) // no-op
	tg.Set(false, 30)
	if got := tg.Total(100); got != 20 {
		t.Errorf("total = %d, want 20", got)
	}
}

func TestToggleResetPreservesState(t *testing.T) {
	var tg Toggle
	tg.Reset(0)
	tg.Set(true, 10)
	tg.Reset(100)
	if !tg.On() {
		t.Fatal("reset must preserve on state")
	}
	if got := tg.Total(150); got != 50 {
		t.Errorf("total after reset = %d, want 50", got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := Table{
		Title:  "demo",
		Header: []string{"workload", "ipc", "years"},
	}
	tb.AddRow("lbm", "0.43", "1.20")
	tb.AddRow("libquantum", "1.01", "12.00")
	var sb strings.Builder
	if err := tb.Fprint(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"== demo ==", "workload", "libquantum", "12.00"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("got %d lines, want 5:\n%s", len(lines), out)
	}
	// Columns align: "ipc" column right-aligned means rows end consistently.
	if len(lines[3]) != len(lines[4]) {
		t.Errorf("rows not aligned:\n%s", out)
	}
}

func TestFormatters(t *testing.T) {
	if F(1.23456, 2) != "1.23" {
		t.Errorf("F = %q", F(1.23456, 2))
	}
	if Pct(0.0634) != "6.3%" {
		t.Errorf("Pct = %q", Pct(0.0634))
	}
}

func TestGeomean(t *testing.T) {
	got := Geomean([]float64{1, 4})
	if math.Abs(got-2.0) > 1e-12 {
		t.Errorf("geomean(1,4) = %v, want 2", got)
	}
	if Geomean(nil) != 0 {
		t.Error("geomean of empty should be 0")
	}
	// Non-positive values are skipped.
	if got := Geomean([]float64{0, 8, 2}); math.Abs(got-4.0) > 1e-12 {
		t.Errorf("geomean(0,8,2) = %v, want 4", got)
	}
}

func TestTickSanity(t *testing.T) {
	// The meters work in ticks; confirm the integration assumption that
	// one tick is 0.5 ns.
	if sim.NS(1) != 2 {
		t.Fatalf("tick scale changed; stats assumptions need review")
	}
}
