package stats

import (
	"math"
	"strings"
	"testing"
)

func render(t *testing.T, b *Bars) string {
	t.Helper()
	var sb strings.Builder
	if err := b.Fprint(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func barLen(t *testing.T, out, label string) int {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, label) {
			return strings.Count(line, "#")
		}
	}
	t.Fatalf("label %q not found in:\n%s", label, out)
	return 0
}

func TestBarsLinearScale(t *testing.T) {
	b := &Bars{Title: "demo", Width: 40}
	b.Add("small", 1, "")
	b.Add("big", 4, "")
	out := render(t, b)
	if !strings.Contains(out, "-- demo --") {
		t.Errorf("missing title:\n%s", out)
	}
	small, big := barLen(t, out, "small"), barLen(t, out, "big")
	if big != 40 {
		t.Errorf("max bar = %d, want full width 40", big)
	}
	if small != 10 {
		t.Errorf("small bar = %d, want 10 (1/4 of 40)", small)
	}
}

func TestBarsLogScale(t *testing.T) {
	b := &Bars{Width: 30, Log: true}
	b.Add("a", 1, "")
	b.Add("b", 10, "")
	b.Add("c", 100, "")
	out := render(t, b)
	la, lb, lc := barLen(t, out, "a"), barLen(t, out, "b"), barLen(t, out, "c")
	if !(la < lb && lb < lc) {
		t.Fatalf("log bars not increasing: %d %d %d", la, lb, lc)
	}
	// A decade step is a constant bar increment on a log axis.
	if d1, d2 := lb-la, lc-lb; d1 != d2 && d1 != d2+1 && d1 != d2-1 {
		t.Errorf("log axis not uniform: steps %d, %d", d1, d2)
	}
}

func TestBarsZeroAndNegative(t *testing.T) {
	b := &Bars{Width: 10}
	b.Add("zero", 0, "")
	b.Add("pos", 5, "")
	out := render(t, b)
	if barLen(t, out, "zero") != 0 {
		t.Error("zero value drew a bar")
	}
	if barLen(t, out, "pos") != 10 {
		t.Error("positive value did not reach full width")
	}
}

func TestBarsCustomText(t *testing.T) {
	b := &Bars{Width: 10}
	b.Add("x", 2, "2.00y")
	out := render(t, b)
	if !strings.Contains(out, "2.00y") {
		t.Errorf("custom text missing:\n%s", out)
	}
}

func TestBarsInfiniteValues(t *testing.T) {
	b := &Bars{Width: 10, Log: true}
	b.Add("finite", 5, "")
	b.Add("inf", math.Inf(1), "inf")
	out := render(t, b)
	if barLen(t, out, "inf") != 10 {
		t.Error("infinite value must render as full-width bar")
	}
	if n := barLen(t, out, "finite"); n < 1 || n > 10 {
		t.Errorf("finite bar = %d out of range", n)
	}
}
