package stats

import (
	"encoding/json"
	"math"
	"math/bits"
)

// NumBuckets is the fixed bucket count shared by every consumer of the
// power-of-two layout (internal/metrics builds its atomic histograms on
// the same geometry).
const NumBuckets = 48

// Histogram accumulates a latency distribution in power-of-two buckets
// (bucket i holds values in [2^i, 2^(i+1))). It answers mean and
// quantile queries cheaply and exactly enough for reporting (quantiles
// are bucket-resolution).
type Histogram struct {
	buckets [NumBuckets]uint64
	count   uint64
	sum     uint64
}

// Add records one sample.
func (h *Histogram) Add(v uint64) {
	h.count++
	h.sum += v
	h.buckets[bucketOf(v)]++
}

func bucketOf(v uint64) int {
	if v == 0 {
		return 0
	}
	b := bits.Len64(v) - 1
	if b >= NumBuckets {
		b = NumBuckets - 1
	}
	return b
}

// BucketIndex maps a value to its power-of-two bucket, the shared
// geometry external accumulators (internal/metrics) must agree on.
func BucketIndex(v uint64) int { return bucketOf(v) }

// FromBuckets assembles a Histogram from raw per-bucket counts (the
// BucketIndex geometry) and a sample sum. The count is derived from the
// buckets, so a distribution assembled from a torn concurrent read
// stays internally consistent: cumulative bucket counts always reach
// the total. Slices shorter than NumBuckets are zero-extended.
func FromBuckets(buckets []uint64, sum uint64) Histogram {
	h := Histogram{sum: sum}
	for i, c := range buckets {
		if i >= NumBuckets {
			break
		}
		h.buckets[i] = c
		h.count += c
	}
	return h
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the arithmetic mean, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile returns an upper bound for the q-quantile (0 < q <= 1) at
// bucket resolution: the top of the bucket containing it. The target
// rank is the ceiling of q·count — truncation would bias small-sample
// p95/p99 one bucket low whenever q·count is fractional (with 10
// samples, p95 must cover the 10th sample, not the 9th).
func (h *Histogram) Quantile(q float64) uint64 {
	if h.count == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(h.count)))
	if target == 0 {
		target = 1
	}
	if target > h.count {
		target = h.count
	}
	var seen uint64
	for i, c := range h.buckets {
		seen += c
		if seen >= target {
			return 1<<uint(i+1) - 1
		}
	}
	return 1<<uint(len(h.buckets)) - 1
}

// Sum returns the total of all samples.
func (h *Histogram) Sum() uint64 { return h.sum }

// Bucket is one power-of-two bucket of a Histogram: Count samples with
// values <= Upper (and above the previous bucket's Upper).
type Bucket struct {
	Upper uint64
	Count uint64
}

// Buckets returns the occupied buckets in ascending order — the export
// surface for external encodings (e.g. Prometheus exposition, where
// each bucket becomes an "le" bound after cumulation).
func (h *Histogram) Buckets() []Bucket {
	var out []Bucket
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		out = append(out, Bucket{Upper: 1<<uint(i+1) - 1, Count: c})
	}
	return out
}

// histogramJSON is the wire form: occupied buckets plus totals.
type histogramJSON struct {
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// MarshalJSON encodes the distribution as its occupied buckets with
// totals, so results carrying histograms are machine-readable.
func (h Histogram) MarshalJSON() ([]byte, error) {
	return json.Marshal(histogramJSON{Count: h.count, Sum: h.sum, Buckets: h.Buckets()})
}

// UnmarshalJSON rebuilds the distribution from its wire form.
func (h *Histogram) UnmarshalJSON(b []byte) error {
	var w histogramJSON
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	*h = Histogram{count: w.Count, sum: w.Sum}
	for _, bk := range w.Buckets {
		h.buckets[bucketOf(bk.Upper)] += bk.Count
	}
	return nil
}

// Sub returns the distribution accumulated since base (measurement
// windows); base must be an earlier snapshot of the same histogram.
func (h Histogram) Sub(base Histogram) Histogram {
	d := Histogram{count: h.count - base.count, sum: h.sum - base.sum}
	for i := range h.buckets {
		d.buckets[i] = h.buckets[i] - base.buckets[i]
	}
	return d
}
