package stats

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Bars renders a horizontal ASCII bar chart — the closest plain-text
// analogue of the paper's bar figures. Values are scaled to the widest
// bar; Log selects a log10 axis (Figure 11 is log-scale in the paper).
type Bars struct {
	Title string
	// Width is the maximum bar width in characters (default 40).
	Width int
	// Log renders bar lengths on a log10 axis.
	Log  bool
	rows []barRow
}

type barRow struct {
	label string
	value float64
	text  string
}

// Add appends one bar. text is the printed value (e.g. "12.87y"); pass
// "" to print the raw value.
func (b *Bars) Add(label string, value float64, text string) {
	if text == "" {
		text = F(value, 2)
	}
	b.rows = append(b.rows, barRow{label: label, value: value, text: text})
}

// Fprint renders the chart.
func (b *Bars) Fprint(w io.Writer) error {
	width := b.Width
	if width <= 0 {
		width = 40
	}
	// Establish the scale over the finite values; infinities (e.g. an
	// unbounded lifetime) render as full-width bars.
	maxV, minPos := 0.0, math.Inf(1)
	for _, r := range b.rows {
		if math.IsInf(r.value, 1) || math.IsNaN(r.value) {
			continue
		}
		if r.value > maxV {
			maxV = r.value
		}
		if r.value > 0 && r.value < minPos {
			minPos = r.value
		}
	}
	scale := func(v float64) int {
		switch {
		case math.IsNaN(v) || v <= 0:
			return 0
		case math.IsInf(v, 1):
			return width
		case maxV <= 0:
			return 0
		}
		var n int
		if b.Log {
			lo, hi := math.Log10(minPos), math.Log10(maxV)
			if hi <= lo {
				return width
			}
			n = 1 + int(float64(width-1)*(math.Log10(v)-lo)/(hi-lo))
		} else {
			n = int(math.Round(float64(width) * v / maxV))
		}
		if n < 0 {
			n = 0
		}
		if n > width {
			n = width
		}
		return n
	}
	labelW, textW := 0, 0
	for _, r := range b.rows {
		if len(r.label) > labelW {
			labelW = len(r.label)
		}
		if len(r.text) > textW {
			textW = len(r.text)
		}
	}
	var sb strings.Builder
	if b.Title != "" {
		fmt.Fprintf(&sb, "-- %s --\n", b.Title)
	}
	for _, r := range b.rows {
		n := scale(r.value)
		if n > width {
			n = width
		}
		fmt.Fprintf(&sb, "%-*s %*s |%s\n", labelW, r.label, textW, r.text,
			strings.Repeat("#", n))
	}
	_, err := io.WriteString(w, sb.String())
	return err
}
