package stats

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// GroupedBars renders a grouped bar chart as a standalone SVG — the
// publication-style counterpart of the paper's figures (one group per
// workload, one bar per policy).
type GroupedBars struct {
	Title  string
	YLabel string
	// Series names one bar per group (policy names).
	Series []string
	// Log selects a log10 y-axis (Figure 11).
	Log bool
	// YMax fixes the axis top; 0 auto-scales to the data.
	YMax   float64
	groups []svgGroup
}

type svgGroup struct {
	label  string
	values []float64
}

// AddGroup appends one group (e.g. a workload) with one value per
// series. Infinite values are clamped to the axis top.
func (g *GroupedBars) AddGroup(label string, values ...float64) {
	g.groups = append(g.groups, svgGroup{label: label, values: values})
}

// svgPalette is a color per series, cycled if needed.
var svgPalette = []string{
	"#4878d0", "#ee854a", "#6acc64", "#d65f5f", "#956cb4",
	"#8c613c", "#dc7ec0", "#797979", "#d5bb67", "#82c6e2",
}

// WriteTo renders the SVG document.
func (g *GroupedBars) WriteTo(w io.Writer) (int64, error) {
	const (
		barW     = 14.0
		gapInner = 2.0
		gapGroup = 18.0
		plotH    = 260.0
		marginL  = 70.0
		marginT  = 50.0
		marginB  = 90.0
		legendH  = 22.0
	)
	nSeries := len(g.Series)
	groupW := float64(nSeries)*(barW+gapInner) + gapGroup
	plotW := groupW * float64(len(g.groups))
	width := marginL + plotW + 20
	height := marginT + plotH + marginB + legendH

	// Axis scale.
	maxV, minPos := g.YMax, math.Inf(1)
	if maxV == 0 {
		for _, gr := range g.groups {
			for _, v := range gr.values {
				if !math.IsInf(v, 1) && !math.IsNaN(v) && v > maxV {
					maxV = v
				}
			}
		}
	}
	for _, gr := range g.groups {
		for _, v := range gr.values {
			if v > 0 && v < minPos {
				minPos = v
			}
		}
	}
	if maxV <= 0 {
		maxV = 1
	}
	if math.IsInf(minPos, 1) {
		minPos = 0.1
	}
	yOf := func(v float64) float64 {
		switch {
		case math.IsNaN(v) || v <= 0:
			return 0
		case math.IsInf(v, 1):
			return plotH
		}
		var frac float64
		if g.Log {
			lo, hi := math.Log10(minPos), math.Log10(maxV)
			if hi <= lo {
				return plotH
			}
			frac = (math.Log10(v) - lo) / (hi - lo)
			if frac < 0.02 {
				frac = 0.02 // keep tiny bars visible on a log axis
			}
		} else {
			frac = v / maxV
		}
		if frac > 1 {
			frac = 1
		}
		return plotH * frac
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" font-family="sans-serif">`+"\n", width, height)
	fmt.Fprintf(&sb, `<rect width="100%%" height="100%%" fill="white"/>`+"\n")
	fmt.Fprintf(&sb, `<text x="%.0f" y="24" font-size="15" font-weight="bold">%s</text>`+"\n", marginL, xmlEscape(g.Title))
	fmt.Fprintf(&sb, `<text x="16" y="%.0f" font-size="11" transform="rotate(-90 16 %.0f)">%s</text>`+"\n",
		marginT+plotH/2, marginT+plotH/2, xmlEscape(g.YLabel))

	// Gridlines: 4 for linear, decades for log.
	if g.Log {
		lo, hi := math.Floor(math.Log10(minPos)), math.Ceil(math.Log10(maxV))
		for e := lo; e <= hi; e++ {
			v := math.Pow(10, e)
			y := marginT + plotH - yOf(v)
			fmt.Fprintf(&sb, `<line x1="%.0f" y1="%.1f" x2="%.0f" y2="%.1f" stroke="#ddd"/>`+"\n", marginL, y, marginL+plotW, y)
			fmt.Fprintf(&sb, `<text x="%.0f" y="%.1f" font-size="10" text-anchor="end">%g</text>`+"\n", marginL-6, y+3, v)
		}
	} else {
		for i := 0; i <= 4; i++ {
			v := maxV * float64(i) / 4
			y := marginT + plotH - yOf(v)
			fmt.Fprintf(&sb, `<line x1="%.0f" y1="%.1f" x2="%.0f" y2="%.1f" stroke="#ddd"/>`+"\n", marginL, y, marginL+plotW, y)
			fmt.Fprintf(&sb, `<text x="%.0f" y="%.1f" font-size="10" text-anchor="end">%.2g</text>`+"\n", marginL-6, y+3, v)
		}
	}

	// Bars.
	for gi, gr := range g.groups {
		x0 := marginL + groupW*float64(gi) + gapGroup/2
		for si, v := range gr.values {
			h := yOf(v)
			x := x0 + float64(si)*(barW+gapInner)
			y := marginT + plotH - h
			fmt.Fprintf(&sb, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"><title>%s / %s: %s</title></rect>`+"\n",
				x, y, barW, h, svgPalette[si%len(svgPalette)],
				xmlEscape(gr.label), xmlEscape(seriesName(g.Series, si)), tooltipValue(v))
		}
		// Group label, angled for space.
		lx := x0 + (groupW-gapGroup)/2
		ly := marginT + plotH + 14
		fmt.Fprintf(&sb, `<text x="%.1f" y="%.1f" font-size="10" text-anchor="end" transform="rotate(-35 %.1f %.1f)">%s</text>`+"\n",
			lx, ly, lx, ly, xmlEscape(gr.label))
	}
	// Baseline.
	fmt.Fprintf(&sb, `<line x1="%.0f" y1="%.1f" x2="%.0f" y2="%.1f" stroke="#333"/>`+"\n",
		marginL, marginT+plotH, marginL+plotW, marginT+plotH)

	// Legend.
	lx, ly := marginL, height-14
	for si, name := range g.Series {
		fmt.Fprintf(&sb, `<rect x="%.1f" y="%.1f" width="10" height="10" fill="%s"/>`+"\n",
			lx, ly-9, svgPalette[si%len(svgPalette)])
		fmt.Fprintf(&sb, `<text x="%.1f" y="%.1f" font-size="10">%s</text>`+"\n", lx+13, ly, xmlEscape(name))
		lx += 13 + float64(len(name))*6 + 14
	}
	sb.WriteString("</svg>\n")
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

// tooltipValue renders a bar's value for hover text, taming non-finite
// values (an unbounded lifetime reads better as "unbounded").
func tooltipValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "unbounded"
	case math.IsNaN(v):
		return "n/a"
	}
	return fmt.Sprintf("%g", v)
}

func seriesName(series []string, i int) string {
	if i < len(series) {
		return series[i]
	}
	return fmt.Sprintf("series %d", i)
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
