package stats

import (
	"math"
	"strings"
	"testing"
)

func renderSVG(t *testing.T, g *GroupedBars) string {
	t.Helper()
	var sb strings.Builder
	if _, err := g.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestSVGStructure(t *testing.T) {
	g := &GroupedBars{Title: "IPC", YLabel: "normalized", Series: []string{"Norm", "BE"}}
	g.AddGroup("stream", 1.0, 1.07)
	g.AddGroup("lbm", 1.0, 0.98)
	out := renderSVG(t, g)
	if !strings.HasPrefix(out, "<svg") || !strings.HasSuffix(strings.TrimSpace(out), "</svg>") {
		t.Fatalf("not an SVG document:\n%.120s", out)
	}
	// 2 groups × 2 series bars, plus one legend swatch per series.
	if got := strings.Count(out, "<rect"); got != 2*2+2+1 { // +1 background
		t.Errorf("rect count = %d, want 7", got)
	}
	for _, want := range []string{"IPC", "stream", "lbm", "Norm", "BE", "normalized"} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
}

func TestSVGLogScaleDecades(t *testing.T) {
	g := &GroupedBars{Title: "life", Series: []string{"x"}, Log: true}
	g.AddGroup("a", 1)
	g.AddGroup("b", 100)
	out := renderSVG(t, g)
	// Decade gridlines 1, 10, 100 must be labelled.
	for _, want := range []string{">1<", ">10<", ">100<"} {
		if !strings.Contains(out, want) {
			t.Errorf("log axis missing label %s", want)
		}
	}
}

func TestSVGHandlesInfAndZero(t *testing.T) {
	g := &GroupedBars{Title: "t", Series: []string{"x"}}
	g.AddGroup("inf", math.Inf(1))
	g.AddGroup("zero", 0)
	out := renderSVG(t, g)
	if strings.Contains(out, "Inf") || strings.Contains(out, "NaN") {
		t.Errorf("SVG leaked non-finite coordinates:\n%s", out)
	}
}

func TestSVGEscapesLabels(t *testing.T) {
	g := &GroupedBars{Title: `a<b&"c"`, Series: []string{"s<1>"}}
	g.AddGroup("w&x", 1)
	out := renderSVG(t, g)
	if strings.Contains(out, `a<b`) || strings.Contains(out, "w&x") {
		t.Errorf("labels not escaped:\n%s", out)
	}
	if !strings.Contains(out, "a&lt;b&amp;") {
		t.Error("expected escaped title")
	}
}
