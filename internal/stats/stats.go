// Package stats provides the measurement primitives shared by the
// simulator — busy-time meters for bank utilization (Figures 3, 12, 18b),
// a toggle meter for write-drain time (Figure 13), counters, and plain-
// text table rendering for the experiment harness.
package stats

import (
	"fmt"
	"io"
	"math"
	"strings"

	"mellow/internal/sim"
)

// BusyMeter accumulates the busy time of a resource whose busy intervals
// never overlap (a memory bank services one operation at a time).
type BusyMeter struct {
	accum sim.Tick
	start sim.Tick // window start, set by Reset
}

// AddBusy records a busy interval [from, to). Intervals before the
// current window start are clipped.
func (b *BusyMeter) AddBusy(from, to sim.Tick) {
	if to <= from {
		return
	}
	if from < b.start {
		if to <= b.start {
			return
		}
		from = b.start
	}
	b.accum += to - from
}

// Utilization returns busy time as a fraction of the window [start, now).
func (b *BusyMeter) Utilization(now sim.Tick) float64 {
	if now <= b.start {
		return 0
	}
	return float64(b.accum) / float64(now-b.start)
}

// Busy returns the accumulated busy time.
func (b *BusyMeter) Busy() sim.Tick { return b.accum }

// Reset zeroes the meter and starts a new window at now. Busy intervals
// that began before now must be re-reported by the caller if they extend
// past it (the memory model reports completion-time intervals, so a
// mid-operation reset clips at most one operation).
func (b *BusyMeter) Reset(now sim.Tick) {
	b.accum = 0
	b.start = now
}

// Toggle accumulates the total time a boolean condition is true (e.g.
// the controller's write-drain mode).
type Toggle struct {
	on    bool
	since sim.Tick
	accum sim.Tick
	start sim.Tick
}

// Set records a state change at time now. Setting the current state is a
// no-op.
func (t *Toggle) Set(on bool, now sim.Tick) {
	if on == t.on {
		return
	}
	if t.on {
		t.accum += now - t.since
	}
	t.on = on
	t.since = now
}

// On reports the current state.
func (t *Toggle) On() bool { return t.on }

// Total returns accumulated on-time through now.
func (t *Toggle) Total(now sim.Tick) sim.Tick {
	total := t.accum
	if t.on && now > t.since {
		total += now - t.since
	}
	return total
}

// Fraction returns on-time as a fraction of the window since Reset.
func (t *Toggle) Fraction(now sim.Tick) float64 {
	if now <= t.start {
		return 0
	}
	return float64(t.Total(now)) / float64(now-t.start)
}

// Reset zeroes accumulation and starts a new window at now, preserving
// the current on/off state.
func (t *Toggle) Reset(now sim.Tick) {
	t.accum = 0
	t.since = now
	t.start = now
}

// Table is a plain-text table with a title, for experiment output.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row; cells beyond the header width are kept (the
// renderer sizes columns by content).
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) error {
	cols := len(t.Header)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(row []string) {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Header)
	for _, r := range t.Rows {
		measure(r)
	}
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "== %s ==\n", t.Title)
	}
	writeRow := func(row []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			if i > 0 {
				sb.WriteString("  ")
			}
			// Left-align the first column (labels), right-align numbers.
			if i == 0 {
				fmt.Fprintf(&sb, "%-*s", widths[i], cell)
			} else {
				fmt.Fprintf(&sb, "%*s", widths[i], cell)
			}
		}
		sb.WriteByte('\n')
	}
	if len(t.Header) > 0 {
		writeRow(t.Header)
		total := 0
		for _, w := range widths {
			total += w
		}
		sb.WriteString(strings.Repeat("-", total+2*(cols-1)))
		sb.WriteByte('\n')
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// F formats a float with the given number of decimals — the standard
// numeric cell formatter.
func F(v float64, decimals int) string {
	return fmt.Sprintf("%.*f", decimals, v)
}

// Pct formats a fraction as a percentage with one decimal.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

// Geomean returns the geometric mean of positive values; zero or
// negative entries are skipped. It returns 0 for an empty input.
func Geomean(vs []float64) float64 {
	sum, n := 0.0, 0
	for _, v := range vs {
		if v > 0 {
			sum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}
