package engine

import (
	"math"
	"sync"
	"testing"

	"mellow/internal/sim"
)

func TestTrackerSetAggregation(t *testing.T) {
	var set TrackerSet
	if set.Len() != 0 || set.SumProgress() != 0 || set.Freshest() != nil {
		t.Fatal("zero-value TrackerSet not empty")
	}

	a, b := &Tracker{}, &Tracker{}
	set.Add(a)
	set.Add(b)
	set.Add(nil) // ignored
	if set.Len() != 2 {
		t.Fatalf("len = %d, want 2", set.Len())
	}

	a.SetProgress(0.25)
	b.SetProgress(0.5)
	if got := set.SumProgress(); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("sum = %v, want 0.75", got)
	}

	// Freshest picks the greatest end tick across members.
	a.publish(&EpochSample{Epoch: 0, End: 100, Progress: 0.3})
	b.publish(&EpochSample{Epoch: 0, End: 250, Progress: 0.6})
	if s := set.Freshest(); s == nil || s.End != 250 {
		t.Fatalf("freshest = %+v, want end tick 250", s)
	}

	set.Remove(b)
	if s := set.Freshest(); s == nil || s.End != 100 {
		t.Fatalf("freshest after remove = %+v, want end tick 100", s)
	}
	if got := set.SumProgress(); math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("sum after remove = %v, want 0.3 (a's published progress)", got)
	}

	set.Remove(b) // double remove is a no-op
	set.Remove(a)
	if set.Len() != 0 || set.Freshest() != nil {
		t.Fatal("set not empty after removing all members")
	}
}

// TestTrackerProgressMonotoneConcurrent hammers one Tracker from many
// writers publishing out-of-order progress values while readers verify
// the published fraction never moves backwards — the contract a job's
// live "progress" field depends on when matrix cells race.
func TestTrackerProgressMonotoneConcurrent(t *testing.T) {
	const writers, steps = 8, 2000
	tr := &Tracker{}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			prev := 0.0
			for {
				select {
				case <-stop:
					return
				default:
				}
				p := tr.Progress()
				if p < prev {
					t.Errorf("progress moved backwards: %v after %v", p, prev)
					return
				}
				prev = p
			}
		}()
	}
	var writersWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			for i := 0; i < steps; i++ {
				// Interleaved ascending and descending publications, plus
				// out-of-range junk that must clamp rather than regress.
				tr.SetProgress(float64(i) / steps)
				tr.SetProgress(float64(steps-i) / steps)
				if i%97 == 0 {
					tr.SetProgress(-1)
					tr.SetProgress(math.NaN())
					tr.SetProgress(2)
				}
			}
		}(w)
	}
	writersWG.Wait()
	close(stop)
	readers.Wait()
	if p := tr.Progress(); p != 1 {
		t.Fatalf("final progress = %v, want 1 (a writer published 2, clamped)", p)
	}
}

// TestTrackerSetConcurrentChurn mimics a sweep's matrix cells: trackers
// join and publish epochs concurrently while a status reader polls the
// aggregate. While membership is add-only and every member's progress is
// monotone, both SumProgress and the freshest sample's end tick can only
// move forward — the invariant a job's live progress figure relies on.
func TestTrackerSetConcurrentChurn(t *testing.T) {
	const cells = 16
	var set TrackerSet
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		prevSum := 0.0
		var prevEnd sim.Tick
		for {
			select {
			case <-stop:
				return
			default:
			}
			sum := set.SumProgress()
			if sum < prevSum-1e-9 {
				t.Errorf("SumProgress moved backwards: %v after %v", sum, prevSum)
				return
			}
			if sum > float64(cells)+1e-9 {
				t.Errorf("SumProgress %v exceeds cell count %d", sum, cells)
				return
			}
			if sum > prevSum {
				prevSum = sum
			}
			if s := set.Freshest(); s != nil {
				if s.End < prevEnd {
					t.Errorf("freshest sample regressed: end %d after %d", s.End, prevEnd)
					return
				}
				prevEnd = s.End
			}
		}
	}()
	var cellsWG sync.WaitGroup
	trackers := make([]*Tracker, cells)
	for c := 0; c < cells; c++ {
		cellsWG.Add(1)
		go func(c int) {
			defer cellsWG.Done()
			tr := &Tracker{}
			trackers[c] = tr
			set.Add(tr)
			for i := 1; i <= 200; i++ {
				tr.publish(&EpochSample{Epoch: i - 1, End: sim.Tick(i * 500), Progress: float64(i) / 200})
			}
		}(c)
	}
	cellsWG.Wait()
	close(stop)
	readers.Wait()
	if got := set.SumProgress(); math.Abs(got-cells) > 1e-9 {
		t.Fatalf("final SumProgress = %v, want %d", got, cells)
	}
	if s := set.Freshest(); s == nil || s.End != 200*500 {
		t.Fatalf("final freshest = %+v, want end tick %d", s, 200*500)
	}
	for _, tr := range trackers {
		if tr.Epochs() != 200 {
			t.Fatalf("tracker closed %d epochs, want 200", tr.Epochs())
		}
		set.Remove(tr)
	}
	if set.Len() != 0 {
		t.Fatalf("set len = %d after all cells retired", set.Len())
	}
}
