package engine

import (
	"math"
	"testing"
)

func TestTrackerSetAggregation(t *testing.T) {
	var set TrackerSet
	if set.Len() != 0 || set.SumProgress() != 0 || set.Freshest() != nil {
		t.Fatal("zero-value TrackerSet not empty")
	}

	a, b := &Tracker{}, &Tracker{}
	set.Add(a)
	set.Add(b)
	set.Add(nil) // ignored
	if set.Len() != 2 {
		t.Fatalf("len = %d, want 2", set.Len())
	}

	a.SetProgress(0.25)
	b.SetProgress(0.5)
	if got := set.SumProgress(); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("sum = %v, want 0.75", got)
	}

	// Freshest picks the greatest end tick across members.
	a.publish(&EpochSample{Epoch: 0, End: 100, Progress: 0.3})
	b.publish(&EpochSample{Epoch: 0, End: 250, Progress: 0.6})
	if s := set.Freshest(); s == nil || s.End != 250 {
		t.Fatalf("freshest = %+v, want end tick 250", s)
	}

	set.Remove(b)
	if s := set.Freshest(); s == nil || s.End != 100 {
		t.Fatalf("freshest after remove = %+v, want end tick 100", s)
	}
	if got := set.SumProgress(); math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("sum after remove = %v, want 0.3 (a's published progress)", got)
	}

	set.Remove(b) // double remove is a no-op
	set.Remove(a)
	if set.Len() != 0 || set.Freshest() != nil {
		t.Fatal("set not empty after removing all members")
	}
}
