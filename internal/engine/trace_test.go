package engine_test

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"mellow/internal/engine"
	"mellow/internal/xtrace"
)

// TestGoldenTracedBitIdentical attaches an execution-timeline recorder
// (alone, and alongside the full observer stack) and requires results
// bit-identical to both the golden values and an untraced twin run —
// the trace-determinism contract of DESIGN.md §3.4.
func TestGoldenTracedBitIdentical(t *testing.T) {
	for _, g := range golden {
		plain, err := newSystem(t, g.workload, g.policy).RunContext(context.Background())
		if err != nil {
			t.Fatalf("%s/%s plain: %v", g.workload, g.policy, err)
		}

		// Trace-only: the timeline must not enable the epoch probe.
		rec := xtrace.NewRecorder(0)
		traced, series, err := newSystem(t, g.workload, g.policy).RunObserved(
			context.Background(), engine.Options{Timeline: rec})
		if err != nil {
			t.Fatalf("%s/%s traced: %v", g.workload, g.policy, err)
		}
		checkGolden(t, "traced", g, traced)
		if !reflect.DeepEqual(plain, traced) {
			t.Errorf("%s/%s: traced result differs from untraced run", g.workload, g.policy)
		}
		if len(series) != 0 {
			t.Errorf("%s/%s: trace-only run emitted %d epoch samples", g.workload, g.policy, len(series))
		}
		checkTimeline(t, g.workload, g.policy, rec, false, g.totalWrites > 0)

		// Traced + full observer stack: still bit-identical.
		rec2 := xtrace.NewRecorder(0)
		both, series2, err := newSystem(t, g.workload, g.policy).RunObserved(
			context.Background(), engine.Options{
				Collect:    true,
				BankDamage: true,
				Tracker:    &engine.Tracker{},
				Timeline:   rec2,
			})
		if err != nil {
			t.Fatalf("%s/%s traced+observed: %v", g.workload, g.policy, err)
		}
		if !reflect.DeepEqual(plain, both) {
			t.Errorf("%s/%s: traced+observed result differs from untraced run", g.workload, g.policy)
		}
		if len(series2) == 0 {
			t.Errorf("%s/%s: traced+observed run emitted no epoch samples", g.workload, g.policy)
		}
		checkTimeline(t, g.workload, g.policy, rec2, true, g.totalWrites > 0)
	}
}

// checkTimeline finalizes rec and asserts the taxonomy the engine and
// controller promise: phase slices always; epoch slices only when the
// probe ran; bank write slices whenever the golden run wrote memory.
func checkTimeline(t *testing.T, workload, policy string, rec *xtrace.Recorder, wantEpochs, wantWrites bool) {
	t.Helper()
	st := rec.Finalize(workload, policy, 16)
	if st == nil {
		t.Fatalf("%s/%s: recorder finalized to nil", workload, policy)
	}
	phases := map[string]bool{}
	epochs, bankEvents, writeEvents := 0, 0, 0
	for _, e := range st.Events {
		switch e.Track {
		case xtrace.TrackPhase:
			phases[e.Name] = true
		case xtrace.TrackEpoch:
			epochs++
		default:
			if _, ok := xtrace.BankOfTrack(e.Track); ok {
				bankEvents++
				if strings.Contains(e.Name, "write") {
					writeEvents++
				}
			}
		}
	}
	for _, ph := range []string{engine.PhaseWarmup, engine.PhaseDetailed, engine.PhaseDrain} {
		if !phases[ph] {
			t.Errorf("%s/%s: no %q phase slice in timeline", workload, policy, ph)
		}
	}
	if wantEpochs && epochs == 0 {
		t.Errorf("%s/%s: observed run recorded no epoch slices", workload, policy)
	}
	if !wantEpochs && epochs != 0 {
		t.Errorf("%s/%s: trace-only run recorded %d epoch slices", workload, policy, epochs)
	}
	if bankEvents == 0 {
		t.Errorf("%s/%s: no per-bank events in timeline", workload, policy)
	}
	if wantWrites && writeEvents == 0 {
		t.Errorf("%s/%s: run wrote memory but timeline has no write slices", workload, policy)
	}
	// Phase and epoch slices are recorded sequentially as simulated time
	// advances, so those two tracks must be in order. Bank tracks are
	// not checked: a cancelled write's slice can be stamped with a
	// bus-deferred start later than its record moment.
	lastPhase, lastEpoch := uint64(0), uint64(0)
	for i, e := range st.Events {
		if e.End < e.Start {
			t.Fatalf("%s/%s: event %d ends before it starts", workload, policy, i)
		}
		switch e.Track {
		case xtrace.TrackPhase:
			if uint64(e.Start) < lastPhase {
				t.Fatalf("%s/%s: phase slice %d out of order", workload, policy, i)
			}
			lastPhase = uint64(e.End)
		case xtrace.TrackEpoch:
			if uint64(e.Start) < lastEpoch {
				t.Fatalf("%s/%s: epoch slice %d out of order", workload, policy, i)
			}
			lastEpoch = uint64(e.End)
		}
	}
}
