// Package engine owns the simulation run pipeline: the warmup →
// detailed → drain phasing that used to live inline in core.Run, plus an
// epoch-probe observer layer that turns a run from an opaque black box
// into a live, interval-resolved time series.
//
// The paper's mechanisms are all periodic — the LLC useless-position
// profiler rotates and Wear Quota re-budgets every 500 µs — so the
// engine samples on the same clock: a sim.Kernel probe fires every
// EpochTicks of simulated time and snapshots the cheap probe counters of
// cpu, cache and mem into an EpochSample. Probes are read-only observers
// interleaved deterministically with the event heap, so a run with an
// epoch probe attached produces bit-identical results to one without,
// and the series itself is deterministic: same (config, policy,
// workload, seed, epoch) → same samples, byte for byte.
package engine

import (
	"context"
	"math"
	"sync/atomic"

	"mellow/internal/cache"
	"mellow/internal/config"
	"mellow/internal/cpu"
	"mellow/internal/mem"
	"mellow/internal/metrics"
	"mellow/internal/sim"
	"mellow/internal/xtrace"
)

// Phase names the engine's run phases.
const (
	PhaseWarmup   = "warmup"
	PhaseDetailed = "detailed"
	PhaseDrain    = "drain"
)

// DefaultEpoch is the default sampling period: 500 µs of simulated time,
// matching the paper's T_sample (profiler rotation and Wear Quota
// period), so one epoch spans exactly one re-profiling interval.
const DefaultEpoch = sim.Tick(1_000_000) // sim.NS(500_000)

// EpochSample is one closed observation interval. Counter fields are
// deltas over the epoch; queue and damage fields are instantaneous at
// the epoch boundary. End ticks are strictly increasing within a run.
type EpochSample struct {
	// Epoch is the zero-based sample index within the run.
	Epoch int `json:"epoch"`
	// Phase is the run phase the epoch closed in.
	Phase string `json:"phase"`
	// Start and End bound the interval in kernel ticks (0.5 ns).
	Start sim.Tick `json:"start_tick"`
	End   sim.Tick `json:"end_tick"`

	// Core progress over the epoch.
	Instructions uint64  `json:"instructions"`
	Cycles       float64 `json:"cycles"`
	IPC          float64 `json:"ipc"`

	// LLC traffic over the epoch.
	LLCHits      uint64 `json:"llc_hits"`
	LLCMisses    uint64 `json:"llc_misses"`
	LLCEvictions uint64 `json:"llc_evictions"`
	EagerIssued  uint64 `json:"eager_issued"`

	// Memory traffic over the epoch.
	Reads         uint64 `json:"reads"`
	WritesFast    uint64 `json:"writes_fast"`
	WritesSlow    uint64 `json:"writes_slow"`
	EagerDone     uint64 `json:"eager_done"`
	Cancellations uint64 `json:"cancellations"`
	Pauses        uint64 `json:"pauses"`
	Drains        uint64 `json:"drains"`

	// Instantaneous controller state at the epoch boundary.
	ReadQueue  int  `json:"read_queue"`
	WriteQueue int  `json:"write_queue"`
	EagerQueue int  `json:"eager_queue"`
	Draining   bool `json:"draining,omitempty"`

	// Cumulative wear at the epoch boundary (normal-write units, never
	// reset — the quantity Wear Quota budgets against).
	MaxBankDamage float64   `json:"max_bank_damage"`
	BankDamage    []float64 `json:"bank_damage,omitempty"`

	// Progress is the run's fractional completion at the boundary.
	Progress float64 `json:"progress"`
}

// Tracker publishes a run's live telemetry — fractional progress and the
// last closed epoch — through atomics, so a concurrent reader (an HTTP
// status handler) can observe a simulation mid-flight without locks and
// without perturbing it.
type Tracker struct {
	progress atomic.Uint64 // float64 bits, monotone non-decreasing
	sample   atomic.Pointer[EpochSample]
	epochs   atomic.Uint64
}

// Progress returns the last published completion fraction in [0, 1].
func (t *Tracker) Progress() float64 {
	return math.Float64frombits(t.progress.Load())
}

// SetProgress publishes p, clamped to [0, 1] and never moving backwards.
func (t *Tracker) SetProgress(p float64) {
	if p < 0 || math.IsNaN(p) {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	for {
		old := t.progress.Load()
		if math.Float64frombits(old) >= p {
			return
		}
		if t.progress.CompareAndSwap(old, math.Float64bits(p)) {
			return
		}
	}
}

// Sample returns the last closed epoch, or nil before the first one.
// The returned sample is immutable; BankDamage must not be modified.
func (t *Tracker) Sample() *EpochSample {
	return t.sample.Load()
}

// Epochs returns the number of epochs closed so far.
func (t *Tracker) Epochs() uint64 { return t.epochs.Load() }

func (t *Tracker) publish(s *EpochSample) {
	t.sample.Store(s)
	t.epochs.Add(1)
	t.SetProgress(s.Progress)
}

// Options configure an engine run. The zero value observes nothing: no
// probe is registered and the run takes exactly the pre-engine path.
type Options struct {
	// Epoch is the sampling period in ticks. Zero disables the epoch
	// probe unless a Tracker or OnEpoch hook is set, in which case
	// DefaultEpoch applies.
	Epoch sim.Tick
	// Collect retains the full []EpochSample series in the Outcome.
	Collect bool
	// BankDamage includes the per-bank damage vector in every sample
	// (off by default: it is the one per-epoch field that is O(banks)
	// in the JSON encoding).
	BankDamage bool
	// Tracker, when set, receives live progress and the current epoch.
	Tracker *Tracker
	// OnEpoch, when set, is called synchronously with each closed
	// sample. It must not mutate simulation state.
	OnEpoch func(EpochSample)
	// Metrics, when set, receives the run's component collectors: cpu,
	// cache, mem and wear publish their counters into this per-run
	// registry, and a snapshot taken after Run returns is deterministic
	// — collectors are read-only and only evaluated at snapshot time,
	// so attaching a registry never perturbs event order.
	Metrics *metrics.Registry
	// Timeline, when set, records the run's execution timeline: phase
	// and epoch slices from the engine plus the per-bank operation
	// events from the memory controller. Like every observer here it is
	// append-only — a traced run is bit-identical to an untraced one —
	// and it does not by itself enable the epoch probe.
	Timeline *xtrace.Recorder
}

// observing reports whether an epoch probe is wanted at all.
func (o Options) observing() bool {
	return o.Epoch > 0 || o.Collect || o.Tracker != nil || o.OnEpoch != nil
}

func (o Options) epoch() sim.Tick {
	if o.Epoch > 0 {
		return o.Epoch
	}
	return DefaultEpoch
}

// Outcome is the engine's measurement of one run: the end-of-run
// aggregates every paper figure is built from, plus the epoch series
// when Options.Collect was set.
type Outcome struct {
	Instructions uint64
	Cycles       float64
	IPC          float64
	Mem          mem.Snapshot
	Cache        cache.Stats
	Series       []EpochSample
}

// Engine drives one wired system through the run phases. It owns no
// model state — construction is cheap and an Engine is single-use.
type Engine struct {
	kernel *sim.Kernel
	hier   *cache.Hierarchy
	ctl    *mem.Controller
	core   *cpu.Core
	run    config.Run
	opts   Options

	phase      string
	totalInstr uint64 // warmup + detailed, for progress accounting
	epochIdx   int
	prevEnd    sim.Tick
	prevCPU    cpu.ProbeCounters
	prevCache  cache.ProbeCounters
	prevMem    mem.ProbeCounters
	series     []EpochSample
	tracker    *Tracker
	pool       epochPool
}

// epochPool hands out EpochSamples in chunks. Tracker.publish retains a
// pointer to the last closed sample and concurrent readers may still
// hold older ones, so slots are pointer-stable and never recycled within
// a run; the chunking just batches what used to be one heap allocation
// per epoch into one per chunk of samples.
type epochPool struct {
	chunk []EpochSample
	n     int
}

func (p *epochPool) alloc() *EpochSample {
	if p.n == len(p.chunk) {
		p.chunk = make([]EpochSample, 128)
		p.n = 0
	}
	s := &p.chunk[p.n]
	p.n++
	return s
}

// New wires an engine over an assembled system. The components must all
// share kernel.
func New(kernel *sim.Kernel, hier *cache.Hierarchy, ctl *mem.Controller,
	core *cpu.Core, run config.Run, opts Options) *Engine {
	e := &Engine{
		kernel: kernel, hier: hier, ctl: ctl, core: core,
		run: run, opts: opts,
		totalInstr: run.WarmupInstructions + run.DetailedInstructions,
		tracker:    opts.Tracker,
	}
	if e.tracker == nil {
		e.tracker = &Tracker{}
	}
	return e
}

// Progress returns the run's live completion fraction in [0, 1]. Safe
// to call from other goroutines while Run executes.
func (e *Engine) Progress() float64 { return e.tracker.Progress() }

// Tracker returns the engine's telemetry tracker (the one passed in
// Options, or an internal one).
func (e *Engine) Tracker() *Tracker { return e.tracker }

// Phase returns the current run phase (single-threaded use only).
func (e *Engine) Phase() string { return e.phase }

// rebase re-captures the probe-counter baselines; called at start and
// after the warmup-boundary stats reset so epoch deltas never span a
// counter reset.
func (e *Engine) rebase() {
	e.prevCPU = e.core.ProbeCounters()
	e.prevCache = e.hier.ProbeCounters()
	e.prevMem = e.ctl.ProbeCounters()
}

// sampleEpoch is the probe callback: close the interval ending at now.
func (e *Engine) sampleEpoch(now sim.Tick) {
	curCPU := e.core.ProbeCounters()
	curCache := e.hier.ProbeCounters()
	curMem := e.ctl.ProbeCounters()
	dCPU := curCPU.Delta(e.prevCPU)
	dCache := curCache.Delta(e.prevCache)
	dMem := curMem.Delta(e.prevMem)

	s := e.pool.alloc()
	*s = EpochSample{
		Epoch:         e.epochIdx,
		Phase:         e.phase,
		Start:         e.prevEnd,
		End:           now,
		Instructions:  dCPU.Instructions,
		Cycles:        dCPU.Cycles,
		LLCHits:       dCache.LLCHits,
		LLCMisses:     dCache.LLCMisses,
		LLCEvictions:  dCache.LLCEvictions,
		EagerIssued:   dCache.EagerIssued,
		Reads:         dMem.Reads,
		WritesFast:    dMem.WritesFast,
		WritesSlow:    dMem.WritesSlow,
		EagerDone:     dMem.EagerDone,
		Cancellations: dMem.Cancellations,
		Pauses:        dMem.Pauses,
		Drains:        dMem.Drains,
		ReadQueue:     dMem.ReadQueue,
		WriteQueue:    dMem.WriteQueue,
		EagerQueue:    dMem.EagerQueue,
		Draining:      dMem.Draining,
		MaxBankDamage: dMem.MaxBankDamage,
		Progress:      e.progressAt(curCPU.Instructions),
	}
	if dCPU.Cycles > 0 {
		s.IPC = float64(dCPU.Instructions) / dCPU.Cycles
	}
	if e.opts.BankDamage {
		s.BankDamage = dMem.BankDamage
	}

	e.opts.Timeline.Slice(xtrace.TrackEpoch, "epoch", "epoch",
		s.Start, s.End, 0, uint64(s.Epoch))

	e.epochIdx++
	e.prevEnd = now
	e.prevCPU, e.prevCache, e.prevMem = curCPU, curCache, curMem
	if e.opts.Collect {
		e.series = append(e.series, *s)
	}
	e.tracker.publish(s)
	if e.opts.OnEpoch != nil {
		e.opts.OnEpoch(*s)
	}
}

// progressAt maps a cumulative instruction count to a run fraction.
func (e *Engine) progressAt(instrs uint64) float64 {
	if e.totalInstr == 0 {
		return 0
	}
	p := float64(instrs) / float64(e.totalInstr)
	if p > 1 {
		p = 1
	}
	return p
}

// Run executes the phases: warmup (statistics frozen), detailed (the
// measured window), and drain (the memory clock catches up with the
// core before the final snapshot). With no observation options set it
// is bit-identical to the pre-engine pipeline; with an epoch probe the
// results are still identical and a deterministic time series is
// produced on the side. Cancellation aborts at the next checkpoint with
// ctx's error.
func (e *Engine) Run(ctx context.Context) (Outcome, error) {
	if reg := e.opts.Metrics; reg != nil {
		// The collectors are registered up front but evaluated only when
		// the registry is snapshotted — typically after Run returns, when
		// the system is quiescent, so the snapshot is deterministic.
		reg.RegisterCollector(e.core.CollectMetrics)
		reg.RegisterCollector(e.hier.CollectMetrics)
		reg.RegisterCollector(e.ctl.CollectMetrics)
	}
	// context.Background and friends have a nil Done channel; skip the
	// per-checkpoint poll entirely for them.
	var cancelled func() bool
	if ctx.Done() != nil {
		cancelled = func() bool { return ctx.Err() != nil }
	}
	if e.opts.observing() {
		// Progress piggybacks on the core's cancellation checkpoints
		// (every 1024 trace ops); the poll itself never perturbs the
		// simulation, so results remain bit-identical.
		inner := cancelled
		cancelled = func() bool {
			e.tracker.SetProgress(e.progressAt(e.core.Instructions()))
			return inner != nil && inner()
		}
		id := e.kernel.AddProbe(e.opts.epoch(), e.sampleEpoch)
		defer e.kernel.RemoveProbe(id)
		e.rebase()
	}
	tl := e.opts.Timeline
	if tl != nil {
		e.ctl.SetTrace(tl)
		defer e.ctl.SetTrace(nil)
	}

	e.phase = PhaseWarmup
	phaseStart := e.kernel.Now()
	if e.run.WarmupInstructions > 0 {
		if !e.core.RunCancellable(e.run.WarmupInstructions, cancelled) {
			return Outcome{}, ctx.Err()
		}
	}
	tl.Slice(xtrace.TrackPhase, PhaseWarmup, "phase", phaseStart, e.kernel.Now(), 0, 0)
	e.hier.ResetStats()
	e.ctl.ResetStats()
	e.core.BeginMeasurement()
	// Counter baselines must not span the warmup-boundary reset.
	if e.opts.observing() {
		e.rebase()
	}

	e.phase = PhaseDetailed
	phaseStart = e.kernel.Now()
	if !e.core.RunCancellable(e.run.DetailedInstructions, cancelled) {
		return Outcome{}, ctx.Err()
	}
	tl.Slice(xtrace.TrackPhase, PhaseDetailed, "phase", phaseStart, e.kernel.Now(), 0, 0)

	// Drain: align the memory clock with the core before snapshotting so
	// utilization windows match the measured cycles.
	e.phase = PhaseDrain
	phaseStart = e.kernel.Now()
	if t := sim.Tick(e.core.Cycles()); t > e.ctl.Now() {
		e.ctl.AdvanceTo(t)
	}
	tl.Slice(xtrace.TrackPhase, PhaseDrain, "phase", phaseStart, e.kernel.Now(), 0, 0)
	e.ctl.FlushTrace()

	out := Outcome{
		Instructions: e.core.MeasuredInstructions(),
		Cycles:       e.core.MeasuredCycles(),
		IPC:          e.core.IPC(),
		Mem:          e.ctl.Snapshot(),
		Cache:        e.hier.Snapshot(),
		Series:       e.series,
	}
	if e.opts.observing() {
		// Close a final partial epoch so the series covers the whole
		// run; skip it when the probe already sampled this exact tick.
		if now := e.kernel.Now(); now > e.prevEnd {
			e.sampleEpoch(now)
			out.Series = e.series
		}
		e.tracker.SetProgress(1)
	}
	return out, nil
}
