package engine

import "sync"

// TrackerSet aggregates the live Trackers of simulations running in
// parallel for one logical job. A status reader sums the members'
// progress and picks the freshest epoch sample without knowing how many
// simulations are in flight at that instant; membership churns as the
// job's simulations start and retire. The zero value is ready to use.
type TrackerSet struct {
	mu     sync.Mutex
	active map[*Tracker]struct{}
}

// Add registers a running simulation's tracker. Nil trackers are
// ignored.
func (s *TrackerSet) Add(t *Tracker) {
	if t == nil {
		return
	}
	s.mu.Lock()
	if s.active == nil {
		s.active = map[*Tracker]struct{}{}
	}
	s.active[t] = struct{}{}
	s.mu.Unlock()
}

// Remove retires a tracker; removing one that was never added is a
// no-op.
func (s *TrackerSet) Remove(t *Tracker) {
	s.mu.Lock()
	delete(s.active, t)
	s.mu.Unlock()
}

// Len returns the number of active trackers.
func (s *TrackerSet) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.active)
}

// SumProgress returns the sum of the active trackers' completion
// fractions — the in-flight contribution to a job's "done + partial"
// progress figure.
func (s *TrackerSet) SumProgress() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var sum float64
	for t := range s.active {
		sum += t.Progress()
	}
	return sum
}

// Freshest returns the epoch sample with the greatest end tick among
// the active trackers, or nil if none has closed an epoch yet.
func (s *TrackerSet) Freshest() *EpochSample {
	s.mu.Lock()
	defer s.mu.Unlock()
	var best *EpochSample
	for t := range s.active {
		if smp := t.Sample(); smp != nil && (best == nil || smp.End > best.End) {
			best = smp
		}
	}
	return best
}
