package engine

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteSeries encodes an epoch time series as one JSON array, one
// sample per element, in epoch order. The encoding is deterministic:
// equal series produce equal bytes.
func WriteSeries(w io.Writer, samples []EpochSample) error {
	enc := json.NewEncoder(w)
	return enc.Encode(samples)
}

// ReadSeries decodes a series written by WriteSeries and validates the
// epoch-determinism contract: indexes are consecutive from zero and end
// ticks strictly increase.
func ReadSeries(r io.Reader) ([]EpochSample, error) {
	var samples []EpochSample
	if err := json.NewDecoder(r).Decode(&samples); err != nil {
		return nil, fmt.Errorf("engine: decode series: %w", err)
	}
	for i, s := range samples {
		if s.Epoch != i {
			return nil, fmt.Errorf("engine: sample %d carries epoch index %d", i, s.Epoch)
		}
		if i > 0 && s.End <= samples[i-1].End {
			return nil, fmt.Errorf("engine: epoch %d end tick %d not after %d", i, s.End, samples[i-1].End)
		}
	}
	return samples, nil
}
