package engine_test

import (
	"bytes"
	"context"
	"math"
	"reflect"
	"strings"
	"testing"

	"mellow/internal/config"
	"mellow/internal/core"
	"mellow/internal/engine"
	"mellow/internal/policy"
	"mellow/internal/trace"
)

func goldenConfig() config.Config {
	cfg := config.Default()
	cfg.Run.WarmupInstructions = 300_000
	cfg.Run.DetailedInstructions = 1_000_000
	cfg.Run.Seed = 7
	return cfg
}

func newSystem(t *testing.T, workload, pol string) *core.System {
	t.Helper()
	spec, err := policy.Parse(pol)
	if err != nil {
		t.Fatalf("parse policy %q: %v", pol, err)
	}
	w, err := trace.ByName(workload)
	if err != nil {
		t.Fatalf("workload %q: %v", workload, err)
	}
	sys, err := core.NewSystem(goldenConfig(), spec, w)
	if err != nil {
		t.Fatalf("new system: %v", err)
	}
	return sys
}

// golden pins results captured from the pre-engine pipeline (warmup
// 300k, detailed 1M, seed 7). The engine path must reproduce them bit
// for bit, observed or not.
var golden = []struct {
	workload, policy string
	ipc              float64
	instructions     uint64
	totalWrites      uint64
	lifetimeYears    float64
	energyPJ         float64
	llcMisses        uint64
	reads            uint64
}{
	{"stream", "Norm", 1.1591222613409495, 1000001, 0, math.Inf(1), 19057844, 5360, 12503},
	{"gups", "BE-Mellow+SC+WQ", 0.89048032896951257, 1000029, 3200, 19.988010492670579, 17045515.670333397, 8922, 8922},
	{"GemsFDTD", "BE-Mellow+SC", 0.79075332093969208, 1000008, 1047, 63.173977070969123, 28931582.368133351, 9007, 17558},
}

func checkGolden(t *testing.T, label string, g struct {
	workload, policy string
	ipc              float64
	instructions     uint64
	totalWrites      uint64
	lifetimeYears    float64
	energyPJ         float64
	llcMisses        uint64
	reads            uint64
}, r core.Result) {
	t.Helper()
	if r.IPC != g.ipc {
		t.Errorf("%s %s/%s: IPC = %v, golden %v", label, g.workload, g.policy, r.IPC, g.ipc)
	}
	if r.Instructions != g.instructions {
		t.Errorf("%s %s/%s: Instructions = %d, golden %d", label, g.workload, g.policy, r.Instructions, g.instructions)
	}
	if w := r.Mem.TotalWrites(); w != g.totalWrites {
		t.Errorf("%s %s/%s: TotalWrites = %d, golden %d", label, g.workload, g.policy, w, g.totalWrites)
	}
	if r.Mem.LifetimeYears != g.lifetimeYears {
		t.Errorf("%s %s/%s: LifetimeYears = %v, golden %v", label, g.workload, g.policy, r.Mem.LifetimeYears, g.lifetimeYears)
	}
	if r.Mem.EnergyPJ != g.energyPJ {
		t.Errorf("%s %s/%s: EnergyPJ = %v, golden %v", label, g.workload, g.policy, r.Mem.EnergyPJ, g.energyPJ)
	}
	if r.Cache.LLCMisses != g.llcMisses {
		t.Errorf("%s %s/%s: LLCMisses = %d, golden %d", label, g.workload, g.policy, r.Cache.LLCMisses, g.llcMisses)
	}
	if r.Mem.Reads != g.reads {
		t.Errorf("%s %s/%s: Reads = %d, golden %d", label, g.workload, g.policy, r.Mem.Reads, g.reads)
	}
}

// TestGoldenUnobserved pins the engine's no-probe path to the captured
// pre-refactor output.
func TestGoldenUnobserved(t *testing.T) {
	for _, g := range golden {
		r, err := newSystem(t, g.workload, g.policy).RunContext(context.Background())
		if err != nil {
			t.Fatalf("%s/%s: %v", g.workload, g.policy, err)
		}
		checkGolden(t, "unobserved", g, r)
	}
}

// TestGoldenObservedBitIdentical runs the same systems with the full
// observer stack attached (epoch probe, collection, tracker, per-bank
// damage) and requires results bit-identical to both the golden values
// and an unobserved twin run.
func TestGoldenObservedBitIdentical(t *testing.T) {
	for _, g := range golden {
		plain, err := newSystem(t, g.workload, g.policy).RunContext(context.Background())
		if err != nil {
			t.Fatalf("%s/%s plain: %v", g.workload, g.policy, err)
		}
		var epochs int
		observed, series, err := newSystem(t, g.workload, g.policy).RunObserved(
			context.Background(), engine.Options{
				Collect:    true,
				BankDamage: true,
				Tracker:    &engine.Tracker{},
				OnEpoch:    func(engine.EpochSample) { epochs++ },
			})
		if err != nil {
			t.Fatalf("%s/%s observed: %v", g.workload, g.policy, err)
		}
		checkGolden(t, "observed", g, observed)
		if !reflect.DeepEqual(plain, observed) {
			t.Errorf("%s/%s: observed result differs from unobserved run", g.workload, g.policy)
		}
		if len(series) == 0 || epochs != len(series) {
			t.Errorf("%s/%s: %d samples collected, %d OnEpoch calls", g.workload, g.policy, len(series), epochs)
		}
	}
}

// TestSeriesDeterministic requires two identical observed runs to emit
// identical sample series.
func TestSeriesDeterministic(t *testing.T) {
	run := func() []engine.EpochSample {
		_, series, err := newSystem(t, "gups", "BE-Mellow+SC+WQ").RunObserved(
			context.Background(), engine.Options{Collect: true, BankDamage: true})
		if err != nil {
			t.Fatal(err)
		}
		return series
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("series differ between identical runs: %d vs %d samples", len(a), len(b))
	}
}

// TestOnEpochSamplesMatchSeries pins the streaming-determinism
// contract at its root: the samples delivered live through OnEpoch are,
// in order and value, exactly the series the run returns. mellowd's SSE
// feed relays OnEpoch verbatim, so this equality is what makes a
// streamed job byte-identical to its embedded result series.
func TestOnEpochSamplesMatchSeries(t *testing.T) {
	var live []engine.EpochSample
	_, series, err := newSystem(t, "stream", "BE-Mellow+SC").RunObserved(
		context.Background(), engine.Options{
			Collect: true, BankDamage: true,
			OnEpoch: func(s engine.EpochSample) { live = append(live, s) },
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) == 0 {
		t.Fatal("observed run produced no samples")
	}
	if !reflect.DeepEqual(live, series) {
		t.Fatalf("live OnEpoch samples differ from returned series: %d vs %d", len(live), len(series))
	}
}

// TestSeriesContract checks the epoch determinism contract on a real
// run: consecutive indexes, strictly increasing end ticks, adjacent
// intervals, known phases, and monotone progress reaching 1.
func TestSeriesContract(t *testing.T) {
	tr := &engine.Tracker{}
	_, series, err := newSystem(t, "GemsFDTD", "BE-Mellow+SC").RunObserved(
		context.Background(), engine.Options{Collect: true, Tracker: tr})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) < 2 {
		t.Fatalf("want several epochs, got %d", len(series))
	}
	prevProgress := 0.0
	for i, s := range series {
		if s.Epoch != i {
			t.Fatalf("sample %d has epoch index %d", i, s.Epoch)
		}
		if s.End <= s.Start {
			t.Fatalf("epoch %d: end %d not after start %d", i, s.End, s.Start)
		}
		if i > 0 {
			if s.Start != series[i-1].End {
				t.Fatalf("epoch %d starts at %d, previous ended at %d", i, s.Start, series[i-1].End)
			}
			if s.End <= series[i-1].End {
				t.Fatalf("epoch %d end %d not after %d", i, s.End, series[i-1].End)
			}
		}
		switch s.Phase {
		case engine.PhaseWarmup, engine.PhaseDetailed, engine.PhaseDrain:
		default:
			t.Fatalf("epoch %d: unknown phase %q", i, s.Phase)
		}
		if s.Progress < prevProgress {
			t.Fatalf("epoch %d: progress went backwards (%v -> %v)", i, prevProgress, s.Progress)
		}
		prevProgress = s.Progress
	}
	if got := tr.Progress(); got != 1 {
		t.Errorf("tracker progress after run = %v, want 1", got)
	}
	if got := tr.Epochs(); got != uint64(len(series)) {
		t.Errorf("tracker epochs = %d, series has %d", got, len(series))
	}
	if last := tr.Sample(); last == nil || last.Epoch != len(series)-1 {
		t.Errorf("tracker sample = %+v, want last epoch %d", last, len(series)-1)
	}
}

// TestSeriesJSONRoundTrip checks the codec reproduces a real series and
// enforces its validation rules.
func TestSeriesJSONRoundTrip(t *testing.T) {
	_, series, err := newSystem(t, "gups", "Norm").RunObserved(
		context.Background(), engine.Options{Collect: true, BankDamage: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := engine.WriteSeries(&buf, series); err != nil {
		t.Fatal(err)
	}
	got, err := engine.ReadSeries(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(series, got) {
		t.Fatal("series does not survive a JSON round trip")
	}

	bad := append([]engine.EpochSample(nil), series...)
	bad[1].Epoch = 7
	buf.Reset()
	if err := engine.WriteSeries(&buf, bad); err != nil {
		t.Fatal(err)
	}
	if _, err := engine.ReadSeries(&buf); err == nil || !strings.Contains(err.Error(), "epoch index") {
		t.Fatalf("want epoch-index validation error, got %v", err)
	}

	bad = append([]engine.EpochSample(nil), series...)
	bad[1].End = bad[0].End
	buf.Reset()
	if err := engine.WriteSeries(&buf, bad); err != nil {
		t.Fatal(err)
	}
	if _, err := engine.ReadSeries(&buf); err == nil || !strings.Contains(err.Error(), "not after") {
		t.Fatalf("want end-tick validation error, got %v", err)
	}
}

// TestTrackerClamp checks the tracker's monotone [0,1] clamp.
func TestTrackerClamp(t *testing.T) {
	tr := &engine.Tracker{}
	tr.SetProgress(0.5)
	tr.SetProgress(0.25) // backwards: ignored
	if got := tr.Progress(); got != 0.5 {
		t.Errorf("progress = %v after backwards set, want 0.5", got)
	}
	tr.SetProgress(7)
	if got := tr.Progress(); got != 1 {
		t.Errorf("progress = %v after overshoot, want 1", got)
	}
	tr2 := &engine.Tracker{}
	tr2.SetProgress(math.NaN())
	tr2.SetProgress(-3)
	if got := tr2.Progress(); got != 0 {
		t.Errorf("progress = %v after NaN/negative sets, want 0", got)
	}
}

// TestCancellation checks the engine aborts with ctx's error.
func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := newSystem(t, "gups", "Norm").RunObserved(ctx, engine.Options{Collect: true})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestExplicitEpochPeriod checks a custom epoch controls sample density.
func TestExplicitEpochPeriod(t *testing.T) {
	_, coarse, err := newSystem(t, "gups", "Norm").RunObserved(
		context.Background(), engine.Options{Collect: true, Epoch: engine.DefaultEpoch * 4})
	if err != nil {
		t.Fatal(err)
	}
	_, fine, err := newSystem(t, "gups", "Norm").RunObserved(
		context.Background(), engine.Options{Collect: true, Epoch: engine.DefaultEpoch / 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(fine) <= len(coarse) {
		t.Fatalf("fine epoch produced %d samples, coarse %d", len(fine), len(coarse))
	}
}
