package scenario

import (
	"bytes"
	"fmt"
	"os"
	"strings"

	"mellow/internal/core"

	"encoding/json"
)

// CellResult labels one simulation of the matrix.
type CellResult struct {
	Workload string `json:"workload"`
	Leveler  string `json:"leveler,omitempty"`
	Policy   string `json:"policy"`
	// Result is the full simulation outcome. The encoding is the stdlib
	// struct codec: deterministic field order, deterministic float
	// formatting — equal results are equal bytes.
	Result core.Result `json:"result"`
}

// Result is the deterministic result document of one scenario run —
// the bytes committed as the .expected golden.
type Result struct {
	Scenario string `json:"scenario"`
	// Key is the content address of (scenario, base config): runs that
	// report the same key must report the same cells.
	Key   string       `json:"key"`
	Cells []CellResult `json:"cells"`
}

// Encode renders the canonical golden bytes: indented JSON with a
// trailing newline, cells in matrix order.
func (r *Result) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteFile writes the golden bytes to path (the -update path).
func (r *Result) WriteFile(path string) error {
	b, err := r.Encode()
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// CompareFile checks the result against the committed golden at path,
// byte for byte. A missing golden and any divergence return an error
// naming the first differing line, with the -update hint.
func (r *Result) CompareFile(path string) error {
	got, err := r.Encode()
	if err != nil {
		return err
	}
	want, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return fmt.Errorf("scenario %s: no expected file %s (run with -update to create it)", r.Scenario, path)
		}
		return fmt.Errorf("scenario %s: %v", r.Scenario, err)
	}
	if bytes.Equal(got, want) {
		return nil
	}
	line, gl, wl := firstDiff(got, want)
	return fmt.Errorf("scenario %s: result differs from %s at line %d:\n  got:  %s\n  want: %s\n(re-run with -update if the change is intended)",
		r.Scenario, path, line, gl, wl)
}

// firstDiff locates the first differing line between two texts.
func firstDiff(got, want []byte) (line int, gl, wl string) {
	gs := strings.Split(string(got), "\n")
	ws := strings.Split(string(want), "\n")
	for i := 0; i < len(gs) || i < len(ws); i++ {
		var g, w string
		if i < len(gs) {
			g = gs[i]
		} else {
			g = "<end of output>"
		}
		if i < len(ws) {
			w = ws[i]
		} else {
			w = "<end of file>"
		}
		if g != w {
			return i + 1, strings.TrimSpace(g), strings.TrimSpace(w)
		}
	}
	return 0, "", ""
}
