package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Scenario files follow the paired-golden convention: test-<name>.json
// holds the declarative scenario, test-<name>.expected next to it holds
// the exact result bytes a run must reproduce.
const (
	filePrefix  = "test-"
	fileSuffix  = ".json"
	expectedExt = ".expected"
)

// ExpectedPath returns the committed golden path paired with a scenario
// file: test-<name>.json → test-<name>.expected.
func ExpectedPath(scenarioPath string) string {
	return strings.TrimSuffix(scenarioPath, fileSuffix) + expectedExt
}

// Load reads, resolves and validates one scenario file. Decoding is
// strict — unknown fields fail, so a typo in a data file cannot
// silently run a different experiment than the one reviewed. Replay
// trace paths resolve relative to the scenario file's directory.
func Load(path string) (*Scenario, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %v", err)
	}
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: %s: %v", path, err)
	}
	if dec.More() {
		return nil, fmt.Errorf("scenario: %s: trailing data after the document", path)
	}
	if err := s.Resolve(filepath.Dir(path)); err != nil {
		return nil, fmt.Errorf("scenario: %s: %v", path, err)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("scenario: %s: %v", path, err)
	}
	return s.Normalize(), nil
}

// Entry is one scenario discovered by LoadDir.
type Entry struct {
	// Path is the scenario file; its golden lives at ExpectedPath(Path).
	Path     string
	Scenario *Scenario
}

// LoadDir walks root for test-*.json scenario files (any depth),
// loading each in sorted path order — the corpus a runner executes. A
// file's declared name must match its filename (test-<name>.json), so
// a directory listing reads as the scenario index.
func LoadDir(root string) ([]Entry, error) {
	var paths []string
	err := filepath.WalkDir(root, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			return nil
		}
		base := filepath.Base(p)
		if strings.HasPrefix(base, filePrefix) && strings.HasSuffix(base, fileSuffix) {
			paths = append(paths, p)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("scenario: %v", err)
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("scenario: no %s*%s files under %s", filePrefix, fileSuffix, root)
	}
	sort.Strings(paths)
	entries := make([]Entry, 0, len(paths))
	seen := map[string]string{}
	for _, p := range paths {
		s, err := Load(p)
		if err != nil {
			return nil, err
		}
		base := filepath.Base(p)
		want := strings.TrimSuffix(strings.TrimPrefix(base, filePrefix), fileSuffix)
		if s.Name != want {
			return nil, fmt.Errorf("scenario: %s declares name %q, want %q from the filename", p, s.Name, want)
		}
		if prev, dup := seen[s.Name]; dup {
			return nil, fmt.Errorf("scenario: duplicate name %q in %s and %s", s.Name, prev, p)
		}
		seen[s.Name] = p
		entries = append(entries, Entry{Path: p, Scenario: s})
	}
	return entries, nil
}
