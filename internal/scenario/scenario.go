// Package scenario defines the declarative experiment corpus: a
// scenario file pairs workload specs × policy/leveler/cell matrices ×
// run options, and a committed .expected file pins the exact result
// bytes — the elastic-package policy-test pattern (paired test-<name>
// inputs and goldens) applied to simulation sweeps. Scenarios are plain
// canonical JSON and content-addressable like config.Config, so they
// ship in mellowd job requests, replay from the write-ahead log and
// memoise under stable keys without code changes per configuration.
package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"mellow/internal/config"
	"mellow/internal/nvm"
	"mellow/internal/policy"
	"mellow/internal/trace"
	"mellow/internal/wear"
)

// WorkloadRef names one workload of a scenario: either a builtin Table
// IV benchmark by name, or an inline declarative trace.Spec (including
// the replay kind) labelled by Name.
type WorkloadRef struct {
	// Name labels results; without Spec it must be a builtin workload.
	Name string `json:"name"`
	// Spec, when set, declares the generator inline.
	Spec *trace.Spec `json:"spec,omitempty"`
}

// Overrides tweaks the base configuration one field at a time — the
// sensitivity-sweep knobs of Tables I/II. Nil fields leave the base
// value untouched. Anything not expressible here can replace the whole
// configuration via Scenario.Config.
type Overrides struct {
	Seed                *uint64  `json:"seed,omitempty"`
	Warmup              *uint64  `json:"warmup_instructions,omitempty"`
	Detailed            *uint64  `json:"detailed_instructions,omitempty"`
	Banks               *int     `json:"banks,omitempty"`
	Channels            *int     `json:"channels,omitempty"`
	ExpoFactor          *float64 `json:"expo_factor,omitempty"`
	Cell                *string  `json:"cell,omitempty"`
	Scheduler           *string  `json:"scheduler,omitempty"`
	ReadQueue           *int     `json:"read_queue,omitempty"`
	WriteQueue          *int     `json:"write_queue,omitempty"`
	EagerQueue          *int     `json:"eager_queue,omitempty"`
	DrainHigh           *int     `json:"drain_high,omitempty"`
	DrainLow            *int     `json:"drain_low,omitempty"`
	LLCBytes            *int     `json:"llc_bytes,omitempty"`
	UselessHitRatio     *float64 `json:"useless_hit_ratio,omitempty"`
	EagerPredictor      *string  `json:"eager_predictor,omitempty"`
	DecayAccesses       *uint64  `json:"decay_accesses,omitempty"`
	StartGapPsi         *int     `json:"startgap_psi,omitempty"`
	WolframSwapPeriod   *int     `json:"wolfram_swap_period,omitempty"`
	SoftWearPageBlocks  *int     `json:"softwear_page_blocks,omitempty"`
	SoftWearEpochWrites *int     `json:"softwear_epoch_writes,omitempty"`
}

func (o *Overrides) empty() bool { return o == nil || *o == (Overrides{}) }

// Scenario is one declarative experiment: the cross product of its
// workloads × levelers × policies runs under the base configuration
// with Overrides (or Config) applied, and the result document is
// compared byte-for-byte against the committed expected file.
type Scenario struct {
	// Name identifies the scenario; LoadDir requires the file to be
	// named test-<name>.json.
	Name string `json:"name"`
	// Description says what the scenario pins, for reviewers.
	Description string `json:"description,omitempty"`
	// Workloads, Policies and Levelers span the simulation matrix, in
	// declared order. Levelers may be empty (run under the base
	// configuration's backend); an empty-string entry means the same.
	Workloads []WorkloadRef `json:"workloads"`
	Policies  []string      `json:"policies"`
	Levelers  []string      `json:"levelers,omitempty"`
	// Config, when set, replaces the whole base configuration before
	// Overrides apply.
	Config *config.Config `json:"config,omitempty"`
	// Overrides adjusts individual fields of the (possibly replaced)
	// base configuration.
	Overrides *Overrides `json:"overrides,omitempty"`
}

// Cell is one simulation of the scenario matrix.
type Cell struct {
	Workload WorkloadRef
	Leveler  string // "" = keep the configuration's backend
	Policy   string
}

// Cells enumerates the matrix in declared order: workload-major, then
// leveler, then policy.
func (s *Scenario) Cells() []Cell {
	levelers := s.Levelers
	if len(levelers) == 0 {
		levelers = []string{""}
	}
	var out []Cell
	for _, w := range s.Workloads {
		for _, l := range levelers {
			for _, p := range s.Policies {
				out = append(out, Cell{Workload: w, Leveler: l, Policy: p})
			}
		}
	}
	return out
}

// Normalize returns a canonical copy: inline specs normalized (defaults
// explicit), an all-zero Overrides collapsed to nil. Replay specs must
// already be resolved (Load does this); content, not file paths, enters
// the canonical form.
func (s *Scenario) Normalize() *Scenario {
	n := *s
	if len(s.Workloads) > 0 {
		n.Workloads = make([]WorkloadRef, len(s.Workloads))
		for i, w := range s.Workloads {
			n.Workloads[i] = w
			if w.Spec != nil {
				sp := w.Spec.Normalize()
				n.Workloads[i].Spec = &sp
			}
		}
	}
	if s.Overrides.empty() {
		n.Overrides = nil
	}
	return &n
}

// Validate checks the scenario document: names, workload specs, policy
// spellings, leveler backends and matrix well-formedness. Configuration
// validity (including Overrides) is checked against a base by
// EffectiveConfig, since it depends on the base values.
func (s *Scenario) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: missing name")
	}
	if strings.ContainsAny(s.Name, " \t\n/") {
		return fmt.Errorf("scenario: name %q must not contain spaces or slashes", s.Name)
	}
	if len(s.Workloads) == 0 {
		return fmt.Errorf("scenario %s: needs at least one workload", s.Name)
	}
	seenW := map[string]bool{}
	for i, w := range s.Workloads {
		if w.Name == "" {
			return fmt.Errorf("scenario %s: workload %d: missing name", s.Name, i)
		}
		if seenW[w.Name] {
			return fmt.Errorf("scenario %s: duplicate workload %q", s.Name, w.Name)
		}
		seenW[w.Name] = true
		if w.Spec == nil {
			if _, err := trace.ByName(w.Name); err != nil {
				return fmt.Errorf("scenario %s: workload %q has no spec and is not builtin: %v", s.Name, w.Name, err)
			}
		} else if err := w.Spec.Validate(); err != nil {
			return fmt.Errorf("scenario %s: workload %q: %v", s.Name, w.Name, err)
		}
	}
	if len(s.Policies) == 0 {
		return fmt.Errorf("scenario %s: needs at least one policy", s.Name)
	}
	seenP := map[string]bool{}
	for _, p := range s.Policies {
		if seenP[p] {
			return fmt.Errorf("scenario %s: duplicate policy %q", s.Name, p)
		}
		seenP[p] = true
		if _, err := policy.Parse(p); err != nil {
			return fmt.Errorf("scenario %s: %v", s.Name, err)
		}
	}
	seenL := map[string]bool{}
	for _, l := range s.Levelers {
		if seenL[l] {
			return fmt.Errorf("scenario %s: duplicate leveler %q", s.Name, l)
		}
		seenL[l] = true
		if l == "" {
			continue
		}
		ok := false
		for _, b := range wear.Backends() {
			if l == b {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("scenario %s: unknown leveler %q (want %v)", s.Name, l, wear.Backends())
		}
	}
	if s.Config != nil {
		if err := s.Config.Validate(); err != nil {
			return fmt.Errorf("scenario %s: config: %v", s.Name, err)
		}
	}
	return nil
}

// EffectiveConfig applies the scenario's Config replacement and
// Overrides to base and validates the outcome — the configuration every
// cell of the matrix runs under (modulo the per-cell leveler).
func (s *Scenario) EffectiveConfig(base config.Config) (config.Config, error) {
	cfg := base
	if s.Config != nil {
		cfg = *s.Config
	}
	o := s.Overrides
	if o == nil {
		o = &Overrides{}
	}
	if o.Seed != nil {
		cfg.Run.Seed = *o.Seed
	}
	if o.Warmup != nil {
		cfg.Run.WarmupInstructions = *o.Warmup
	}
	if o.Detailed != nil {
		cfg.Run.DetailedInstructions = *o.Detailed
	}
	if o.Banks != nil {
		c, err := cfg.WithBanks(*o.Banks)
		if err != nil {
			return cfg, fmt.Errorf("scenario %s: %v", s.Name, err)
		}
		cfg = c
	}
	if o.Channels != nil {
		cfg.Memory.Channels = *o.Channels
	}
	if o.ExpoFactor != nil {
		cfg.Memory.Device.ExpoFactor = *o.ExpoFactor
	}
	if o.Cell != nil {
		found := false
		for _, c := range nvm.Cells() {
			if c.String() == *o.Cell {
				cfg.Memory.Cell = c
				found = true
				break
			}
		}
		if !found {
			return cfg, fmt.Errorf("scenario %s: unknown cell %q", s.Name, *o.Cell)
		}
	}
	if o.Scheduler != nil {
		cfg.Memory.Scheduler = *o.Scheduler
	}
	if o.ReadQueue != nil {
		cfg.Memory.ReadQueue = *o.ReadQueue
	}
	if o.WriteQueue != nil {
		cfg.Memory.WriteQueue = *o.WriteQueue
	}
	if o.EagerQueue != nil {
		cfg.Memory.EagerQueue = *o.EagerQueue
	}
	if o.DrainHigh != nil {
		cfg.Memory.DrainHigh = *o.DrainHigh
	}
	if o.DrainLow != nil {
		cfg.Memory.DrainLow = *o.DrainLow
	}
	if o.LLCBytes != nil {
		cfg.Caches.L3.SizeBytes = *o.LLCBytes
	}
	if o.UselessHitRatio != nil {
		cfg.Caches.UselessHitRatio = *o.UselessHitRatio
	}
	if o.EagerPredictor != nil {
		cfg.Caches.EagerPredictor = *o.EagerPredictor
	}
	if o.DecayAccesses != nil {
		cfg.Caches.DecayAccesses = *o.DecayAccesses
	}
	if o.StartGapPsi != nil {
		cfg.Memory.StartGapPsi = *o.StartGapPsi
	}
	if o.WolframSwapPeriod != nil {
		cfg.Memory.WolframSwapPeriod = *o.WolframSwapPeriod
	}
	if o.SoftWearPageBlocks != nil {
		cfg.Memory.SoftWearPageBlocks = *o.SoftWearPageBlocks
	}
	if o.SoftWearEpochWrites != nil {
		cfg.Memory.SoftWearEpochWrites = *o.SoftWearEpochWrites
	}
	if err := cfg.Validate(); err != nil {
		return cfg, fmt.Errorf("scenario %s: effective config: %v", s.Name, err)
	}
	return cfg, nil
}

// CanonicalJSON renders the normalized scenario in its canonical byte
// form: equal scenarios yield identical bytes, safe to hash.
func (s *Scenario) CanonicalJSON() ([]byte, error) {
	n := s.Normalize()
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return json.Marshal(n)
}

// Hash returns the hex SHA-256 of the canonical JSON — the scenario's
// content address.
func (s *Scenario) Hash() (string, error) {
	b, err := s.CanonicalJSON()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// RunKey is the content address of (scenario, base configuration): the
// identity of the full result document. Two runs with equal keys must
// produce byte-identical results.
func (s *Scenario) RunKey(base config.Config) (string, error) {
	sb, err := s.CanonicalJSON()
	if err != nil {
		return "", err
	}
	cb, err := base.CanonicalJSON()
	if err != nil {
		return "", err
	}
	h := sha256.New()
	h.Write(sb)
	h.Write([]byte{'\n'})
	h.Write(cb)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// Resolve inlines replay-spec trace files referenced by Path, relative
// to dir. After Resolve the scenario is self-contained: it transports
// through job requests and the write-ahead log without filesystem
// references.
func (s *Scenario) Resolve(dir string) error {
	for i, w := range s.Workloads {
		if w.Spec == nil {
			continue
		}
		sp, err := w.Spec.Resolve(dir)
		if err != nil {
			return fmt.Errorf("scenario %s: workload %q: %v", s.Name, w.Name, err)
		}
		s.Workloads[i].Spec = &sp
	}
	return nil
}
