package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mellow/internal/config"
	"mellow/internal/trace"
)

func validScenario() *Scenario {
	return &Scenario{
		Name:      "t",
		Workloads: []WorkloadRef{{Name: "gups"}},
		Policies:  []string{"Norm", "BE-Mellow+SC"},
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Scenario)
		want string
	}{
		{"missing name", func(s *Scenario) { s.Name = "" }, "missing name"},
		{"name with slash", func(s *Scenario) { s.Name = "a/b" }, "spaces or slashes"},
		{"name with space", func(s *Scenario) { s.Name = "a b" }, "spaces or slashes"},
		{"no workloads", func(s *Scenario) { s.Workloads = nil }, "at least one workload"},
		{"unnamed workload", func(s *Scenario) { s.Workloads[0].Name = "" }, "missing name"},
		{"unknown builtin", func(s *Scenario) { s.Workloads[0].Name = "nope" }, "not builtin"},
		{"duplicate workload", func(s *Scenario) {
			s.Workloads = append(s.Workloads, WorkloadRef{Name: "gups"})
		}, "duplicate workload"},
		{"bad inline spec", func(s *Scenario) {
			s.Workloads[0].Spec = &trace.Spec{Kind: "bogus"}
		}, "unknown kind"},
		{"no policies", func(s *Scenario) { s.Policies = nil }, "at least one policy"},
		{"bad policy", func(s *Scenario) { s.Policies = []string{"Quick"} }, "unknown base policy"},
		{"duplicate policy", func(s *Scenario) { s.Policies = []string{"Norm", "Norm"} }, "duplicate policy"},
		{"unknown leveler", func(s *Scenario) { s.Levelers = []string{"rotato"} }, "unknown leveler"},
		{"duplicate leveler", func(s *Scenario) { s.Levelers = []string{"wolfram", "wolfram"} }, "duplicate leveler"},
	}
	for _, tc := range cases {
		s := validScenario()
		tc.mut(s)
		err := s.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
	if err := validScenario().Validate(); err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}
}

func TestCellsOrder(t *testing.T) {
	s := &Scenario{
		Name:      "t",
		Workloads: []WorkloadRef{{Name: "gups"}, {Name: "stream"}},
		Policies:  []string{"Norm", "Slow"},
		Levelers:  []string{"startgap", "softwear"},
	}
	cells := s.Cells()
	if len(cells) != 8 {
		t.Fatalf("len(cells) = %d, want 8", len(cells))
	}
	// Workload-major, then leveler, then policy.
	want := []Cell{
		{WorkloadRef{Name: "gups"}, "startgap", "Norm"},
		{WorkloadRef{Name: "gups"}, "startgap", "Slow"},
		{WorkloadRef{Name: "gups"}, "softwear", "Norm"},
		{WorkloadRef{Name: "gups"}, "softwear", "Slow"},
		{WorkloadRef{Name: "stream"}, "startgap", "Norm"},
		{WorkloadRef{Name: "stream"}, "startgap", "Slow"},
		{WorkloadRef{Name: "stream"}, "softwear", "Norm"},
		{WorkloadRef{Name: "stream"}, "softwear", "Slow"},
	}
	for i := range want {
		if cells[i] != want[i] {
			t.Errorf("cells[%d] = %+v, want %+v", i, cells[i], want[i])
		}
	}
	// No levelers declared: one "" cell per (workload, policy).
	s.Levelers = nil
	if got := s.Cells(); len(got) != 4 || got[0].Leveler != "" {
		t.Fatalf("leveler-less cells = %+v", got)
	}
}

// Sparse and fully explicit spellings of the same scenario must share
// one content address — the canonical form makes defaults explicit.
func TestHashSparseVsExplicit(t *testing.T) {
	sparse := &Scenario{
		Name: "t",
		Workloads: []WorkloadRef{{Name: "hot", Spec: &trace.Spec{
			Kind: trace.KindHotOnly, GapMean: 2.5, HotBytes: 1 << 20, HotWriteProb: 0.5, HotTheta: 0.8,
		}}},
		Policies:  []string{"Norm"},
		Overrides: &Overrides{},
	}
	explicit := &Scenario{
		Name: "t",
		Workloads: []WorkloadRef{{Name: "hot", Spec: &trace.Spec{
			Kind: trace.KindHotOnly, GapMean: 2.5, RegionBytes: 64 << 20,
			HotBytes: 1 << 20, HotProb: 0.995, HotWriteProb: 0.5, HotTheta: 0.8,
		}}},
		Policies: []string{"Norm"},
	}
	h1, err := sparse.Hash()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := explicit.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatalf("sparse hash %s != explicit hash %s", h1, h2)
	}
	h3, err := validScenario().Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h3 == h1 {
		t.Fatal("different scenarios share a hash")
	}
}

func TestEffectiveConfigOverrides(t *testing.T) {
	base := config.Default()
	u64 := func(v uint64) *uint64 { return &v }
	i := func(v int) *int { return &v }
	f := func(v float64) *float64 { return &v }
	str := func(v string) *string { return &v }

	s := validScenario()
	s.Overrides = &Overrides{
		Seed: u64(9), Warmup: u64(100), Detailed: u64(200),
		Banks: i(8), ExpoFactor: f(3), Cell: str("CellA"),
		Scheduler: str("frfcfs"), LLCBytes: i(1 << 20),
		DrainLow: i(8), DrainHigh: i(16),
	}
	cfg, err := s.EffectiveConfig(base)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Run.Seed != 9 || cfg.Run.WarmupInstructions != 100 || cfg.Run.DetailedInstructions != 200 {
		t.Errorf("run overrides not applied: %+v", cfg.Run)
	}
	if cfg.Memory.Banks() != 8 || cfg.Memory.Device.ExpoFactor != 3 {
		t.Errorf("memory overrides not applied: banks %d expo %v", cfg.Memory.Banks(), cfg.Memory.Device.ExpoFactor)
	}
	if cfg.Memory.Cell.String() != "CellA" || cfg.Memory.Scheduler != "frfcfs" {
		t.Errorf("cell/scheduler overrides not applied")
	}
	if cfg.Caches.L3.SizeBytes != 1<<20 || cfg.Memory.DrainLow != 8 || cfg.Memory.DrainHigh != 16 {
		t.Errorf("cache/drain overrides not applied")
	}
	// The base is untouched.
	if base.Run.Seed == 9 || base.Memory.Banks() == 8 {
		t.Fatal("EffectiveConfig mutated the base")
	}

	for _, bad := range []*Overrides{
		{Banks: i(7)},
		{Cell: str("CellZ")},
		{Scheduler: str("elevator")},
		{DrainHigh: i(99)},
		{LLCBytes: i(3 << 20)}, // not a power of two
	} {
		s.Overrides = bad
		if _, err := s.EffectiveConfig(base); err == nil {
			t.Errorf("override %+v accepted, want error", bad)
		}
	}
}

// RunKey covers both the document and the base configuration.
func TestRunKeyCoversBase(t *testing.T) {
	s := validScenario()
	base := config.Default()
	k1, err := s.RunKey(base)
	if err != nil {
		t.Fatal(err)
	}
	base.Run.Seed = 999
	k2, err := s.RunKey(base)
	if err != nil {
		t.Fatal(err)
	}
	if k1 == k2 {
		t.Fatal("run key ignores the base configuration")
	}
}

func writeScenario(t *testing.T, dir, name, body string) string {
	t.Helper()
	path := filepath.Join(dir, "test-"+name+".json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadStrictAndLoadDir(t *testing.T) {
	dir := t.TempDir()

	// Unknown fields are rejected outright.
	p := writeScenario(t, dir, "unknown", `{"name":"unknown","workloads":[{"name":"gups"}],"policies":["Norm"],"bogus":1}`)
	if _, err := Load(p); err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Errorf("unknown field: err = %v", err)
	}
	// Trailing data is rejected.
	p = writeScenario(t, dir, "trailing", `{"name":"trailing","workloads":[{"name":"gups"}],"policies":["Norm"]} {}`)
	if _, err := Load(p); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Errorf("trailing data: err = %v", err)
	}
	// The declared name must match the file name.
	writeScenario(t, dir, "alpha", `{"name":"beta","workloads":[{"name":"gups"}],"policies":["Norm"]}`)
	if _, err := LoadDir(dir); err == nil || !strings.Contains(err.Error(), "alpha") {
		t.Errorf("name mismatch: err = %v", err)
	}

	// A clean directory loads sorted and validated; duplicates across
	// subdirectories are rejected.
	dir2 := t.TempDir()
	writeScenario(t, dir2, "b", `{"name":"b","workloads":[{"name":"gups"}],"policies":["Norm"]}`)
	sub := filepath.Join(dir2, "sub")
	if err := os.Mkdir(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	writeScenario(t, sub, "a", `{"name":"a","workloads":[{"name":"stream"}],"policies":["Slow"]}`)
	entries, err := LoadDir(dir2)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].Scenario.Name != "a" || entries[1].Scenario.Name != "b" {
		t.Fatalf("entries sorted by path: %q then %q", entries[0].Path, entries[1].Path)
	}
	writeScenario(t, sub, "b", `{"name":"b","workloads":[{"name":"gups"}],"policies":["Norm"]}`)
	if _, err := LoadDir(dir2); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate name: err = %v", err)
	}
	if _, err := LoadDir(t.TempDir()); err == nil {
		t.Error("empty corpus accepted")
	}
}

// Load inlines a replay spec's trace file so the scenario is
// self-contained: content, not paths, enters the canonical form.
func TestLoadInlinesReplay(t *testing.T) {
	dir := t.TempDir()
	traceBody := "10 1000 W\n5 2000 R\n"
	if err := os.WriteFile(filepath.Join(dir, "t.trace"), []byte(traceBody), 0o644); err != nil {
		t.Fatal(err)
	}
	p := writeScenario(t, dir, "rep",
		`{"name":"rep","workloads":[{"name":"r","spec":{"kind":"replay","path":"t.trace"}}],"policies":["Norm"]}`)
	s, err := Load(p)
	if err != nil {
		t.Fatal(err)
	}
	sp := s.Workloads[0].Spec
	if sp.Path != "" || sp.Data != traceBody {
		t.Fatalf("replay spec not inlined: path %q, data %q", sp.Path, sp.Data)
	}

	// The same content inlined directly hashes identically: replay
	// identity is the records, not where they came from.
	inline := &Scenario{
		Name:      "rep",
		Workloads: []WorkloadRef{{Name: "r", Spec: &trace.Spec{Kind: trace.KindReplay, Data: traceBody}}},
		Policies:  []string{"Norm"},
	}
	h1, err := s.Hash()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := inline.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatalf("path-resolved hash %s != inline hash %s", h1, h2)
	}
}

func TestCompareFileAndUpdate(t *testing.T) {
	dir := t.TempDir()
	golden := ExpectedPath(filepath.Join(dir, "test-x.json"))
	res := &Result{Scenario: "x", Key: strings.Repeat("ab", 32), Cells: []CellResult{}}

	// Missing golden: the error teaches the -update workflow.
	err := res.CompareFile(golden)
	if err == nil || !strings.Contains(err.Error(), "-update") {
		t.Fatalf("missing golden err = %v", err)
	}
	if err := res.WriteFile(golden); err != nil {
		t.Fatal(err)
	}
	if err := res.CompareFile(golden); err != nil {
		t.Fatalf("fresh golden differs: %v", err)
	}
	// Any drift reports the first differing line.
	res2 := *res
	res2.Key = strings.Repeat("cd", 32)
	err = res2.CompareFile(golden)
	if err == nil || !strings.Contains(err.Error(), "line") {
		t.Fatalf("drift err = %v", err)
	}

	// Encoded documents end in exactly one newline and are stable.
	b1, err := res.Encode()
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := res.Encode()
	if string(b1) != string(b2) || !strings.HasSuffix(string(b1), "}\n") {
		t.Fatalf("Encode not stable or badly terminated: %q", b1)
	}
}

// The committed corpus itself must load: every file named after its
// scenario, every document valid against the default base.
func TestCommittedCorpusLoads(t *testing.T) {
	entries, err := LoadDir(filepath.Join("..", "..", "scenarios"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 24 {
		t.Fatalf("corpus has %d scenarios, want >= 24", len(entries))
	}
	base := config.Default()
	for _, e := range entries {
		if _, err := e.Scenario.EffectiveConfig(base); err != nil {
			t.Errorf("%s: %v", e.Path, err)
		}
		if _, err := os.Stat(ExpectedPath(e.Path)); err != nil {
			t.Errorf("%s has no committed golden: %v", e.Path, err)
		}
	}
}
