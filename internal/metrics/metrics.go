// Package metrics is the repository's single telemetry spine: a
// registry of named counter, gauge and histogram families with
// lock-free hot paths, rendered on demand into Prometheus text
// exposition or a JSON snapshot.
//
// Two scopes use it. The process registry (mellowd's /metrics) carries
// service counters, scheduler occupancy, the simulation memo-cache and
// Go runtime basics. Per-run registries are threaded through the engine
// so cpu, cache, mem and wear publish their simulation counters as
// collectors — read-only functions evaluated only when a snapshot is
// taken, so instrumentation can never perturb simulation event order.
//
// Hot-path writes are wait-free: counters and gauges are single
// atomics, histograms are atomic power-of-two buckets on the
// stats.Histogram layout. Snapshots are taken first and rendered after,
// so no lock is ever held while bytes are written to a slow client.
package metrics

import (
	"fmt"
	"sort"
	"sync"

	"mellow/internal/stats"
)

// Kind classifies a metric family.
type Kind string

// Family kinds, named after their Prometheus TYPE.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// Collector contributes snapshot-time values to a registry: it is
// called with a Gatherer during Registry.Snapshot and must only read
// the state it reports. Collectors on per-run registries additionally
// must not mutate simulation state — that is the determinism contract
// that keeps an instrumented run bit-identical to a bare one.
type Collector func(*Gatherer)

// family is one registered metric family. The handle maps are only
// mutated under the registry mutex; hot-path access goes through
// handles callers keep, or the lock-free cells map of a Vec.
type family struct {
	name  string
	help  string
	kind  Kind
	label string  // label key for Vec families, "" otherwise
	scale float64 // histogram render multiplier (e.g. µs → s = 1e-6)

	counter *Counter
	gauge   *Gauge
	gaugeFn func() float64
	hist    *Histogram
	cells   *sync.Map // label value → *Counter / *Histogram (Vec families)
}

// Registry holds metric families and collectors. Registration takes a
// mutex; recording through the returned handles is lock-free.
type Registry struct {
	mu         sync.Mutex
	families   map[string]*family
	collectors []Collector
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// register adds fam or returns the existing family with the same name.
// Re-registering with a different kind or label key panics: two call
// sites disagreeing about a metric's shape is a programming error.
func (r *Registry) register(fam *family) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.families[fam.name]; ok {
		if old.kind != fam.kind || old.label != fam.label {
			panic(fmt.Sprintf("metrics: %s re-registered as %s/%q (was %s/%q)",
				fam.name, fam.kind, fam.label, old.kind, old.label))
		}
		return old
	}
	r.families[fam.name] = fam
	return fam
}

// Counter registers (or finds) an unlabelled counter family and
// returns its handle.
func (r *Registry) Counter(name, help string) *Counter {
	fam := r.register(&family{name: name, help: help, kind: KindCounter, counter: &Counter{}})
	return fam.counter
}

// CounterVec registers a counter family keyed by one label.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	fam := r.register(&family{name: name, help: help, kind: KindCounter, label: label, cells: &sync.Map{}})
	return &CounterVec{fam: fam}
}

// Gauge registers an unlabelled gauge family and returns its handle.
func (r *Registry) Gauge(name, help string) *Gauge {
	fam := r.register(&family{name: name, help: help, kind: KindGauge, gauge: &Gauge{}})
	return fam.gauge
}

// GaugeFunc registers a gauge whose value is computed at snapshot time.
// fn must be safe for concurrent use and should return quickly; it is
// the natural shape for "current depth of some queue" gauges.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&family{name: name, help: help, kind: KindGauge, gaugeFn: fn})
}

// Histogram registers an unlabelled histogram family. scale multiplies
// recorded values at render time (record microseconds, scale 1e-6,
// expose seconds); zero means 1.
func (r *Registry) Histogram(name, help string, scale float64) *Histogram {
	fam := r.register(&family{name: name, help: help, kind: KindHistogram, scale: scale, hist: &Histogram{}})
	return fam.hist
}

// HistogramVec registers a histogram family keyed by one label.
func (r *Registry) HistogramVec(name, help, label string, scale float64) *HistogramVec {
	fam := r.register(&family{name: name, help: help, kind: KindHistogram, label: label, scale: scale, cells: &sync.Map{}})
	return &HistogramVec{fam: fam}
}

// RegisterCollector adds a snapshot-time collector.
func (r *Registry) RegisterCollector(c Collector) {
	r.mu.Lock()
	r.collectors = append(r.collectors, c)
	r.mu.Unlock()
}

// CounterVec is a labelled counter family.
type CounterVec struct{ fam *family }

// With returns the counter cell for one label value, creating it on
// first use. Lookup is a sync.Map read: lock-free after creation.
func (v *CounterVec) With(value string) *Counter {
	if c, ok := v.fam.cells.Load(value); ok {
		return c.(*Counter)
	}
	c, _ := v.fam.cells.LoadOrStore(value, &Counter{})
	return c.(*Counter)
}

// HistogramVec is a labelled histogram family.
type HistogramVec struct{ fam *family }

// With returns the histogram cell for one label value.
func (v *HistogramVec) With(value string) *Histogram {
	if h, ok := v.fam.cells.Load(value); ok {
		return h.(*Histogram)
	}
	h, _ := v.fam.cells.LoadOrStore(value, &Histogram{})
	return h.(*Histogram)
}

// Snapshot materialises every registered family and collector into a
// deterministic, immutable view: families sorted by name, cells sorted
// by label value. The registry mutex is held only to copy the family
// and collector lists; reading the atomics and running the collectors
// happens outside it, and rendering happens entirely on the snapshot.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	collectors := make([]Collector, len(r.collectors))
	copy(collectors, r.collectors)
	r.mu.Unlock()

	g := &Gatherer{fams: map[string]*Family{}, order: make([]string, 0, len(fams))}
	for _, f := range fams {
		g.addRegistered(f)
	}
	for _, c := range collectors {
		c(g)
	}
	return g.snapshot()
}

// Gatherer accumulates one snapshot's families. Collectors publish
// through it; registered families are folded in by Registry.Snapshot.
type Gatherer struct {
	fams  map[string]*Family
	order []string
}

func (g *Gatherer) fam(name, help string, kind Kind, label string, scale float64) *Family {
	if f, ok := g.fams[name]; ok {
		// Merging cells into an existing family is allowed (a collector
		// adding label values); changing its shape is not.
		if f.Kind != kind {
			panic(fmt.Sprintf("metrics: snapshot family %s gathered as %s and %s", name, f.Kind, kind))
		}
		return f
	}
	f := &Family{Name: name, Help: help, Kind: kind, Label: label, Scale: scale}
	g.fams[name] = f
	g.order = append(g.order, name)
	return f
}

// addRegistered folds one registered family's current values in.
func (g *Gatherer) addRegistered(f *family) {
	out := g.fam(f.name, f.help, f.kind, f.label, f.scale)
	switch {
	case f.counter != nil:
		out.Cells = append(out.Cells, Cell{Value: float64(f.counter.Value())})
	case f.gauge != nil:
		out.Cells = append(out.Cells, Cell{Value: f.gauge.Value()})
	case f.gaugeFn != nil:
		out.Cells = append(out.Cells, Cell{Value: f.gaugeFn()})
	case f.hist != nil:
		h := f.hist.Snapshot()
		out.Cells = append(out.Cells, Cell{Hist: &h})
	case f.cells != nil:
		f.cells.Range(func(k, v any) bool {
			cell := Cell{Label: k.(string)}
			switch m := v.(type) {
			case *Counter:
				cell.Value = float64(m.Value())
			case *Histogram:
				h := m.Snapshot()
				cell.Hist = &h
			}
			out.Cells = append(out.Cells, cell)
			return true
		})
	}
}

// Counter publishes one unlabelled counter value.
func (g *Gatherer) Counter(name, help string, v uint64) {
	f := g.fam(name, help, KindCounter, "", 0)
	f.Cells = append(f.Cells, Cell{Value: float64(v)})
}

// Gauge publishes one unlabelled gauge value.
func (g *Gatherer) Gauge(name, help string, v float64) {
	f := g.fam(name, help, KindGauge, "", 0)
	f.Cells = append(f.Cells, Cell{Value: v})
}

// CounterL publishes one cell of a labelled counter family.
func (g *Gatherer) CounterL(name, help, label, value string, v uint64) {
	f := g.fam(name, help, KindCounter, label, 0)
	f.Cells = append(f.Cells, Cell{Label: value, Value: float64(v)})
}

// GaugeL publishes one cell of a labelled gauge family.
func (g *Gatherer) GaugeL(name, help, label, value string, v float64) {
	f := g.fam(name, help, KindGauge, label, 0)
	f.Cells = append(f.Cells, Cell{Label: value, Value: v})
}

// GaugeRaw publishes a gauge cell with a pre-rendered label set (a
// `k="v",k2="v2"` string) — the build-info idiom, where one metric
// carries several constant labels.
func (g *Gatherer) GaugeRaw(name, help, rawLabels string, v float64) {
	f := g.fam(name, help, KindGauge, "", 0)
	f.Raw = true
	f.Cells = append(f.Cells, Cell{Label: rawLabels, Value: v})
}

// Histogram publishes one unlabelled distribution. scale multiplies
// values at render time (zero means 1).
func (g *Gatherer) Histogram(name, help string, scale float64, h stats.Histogram) {
	f := g.fam(name, help, KindHistogram, "", scale)
	f.Cells = append(f.Cells, Cell{Hist: &h})
}

// snapshot freezes the gathered families in deterministic order.
func (g *Gatherer) snapshot() Snapshot {
	sort.Strings(g.order)
	s := Snapshot{Families: make([]Family, 0, len(g.order))}
	for _, name := range g.order {
		f := g.fams[name]
		sort.SliceStable(f.Cells, func(i, j int) bool { return f.Cells[i].Label < f.Cells[j].Label })
		s.Families = append(s.Families, *f)
	}
	return s
}
