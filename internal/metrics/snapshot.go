package metrics

import (
	"bufio"
	"io"
	"strconv"
	"strings"

	"mellow/internal/stats"
)

// Snapshot is one registry's frozen, deterministic view: families
// sorted by name, cells sorted by label value. It is both the JSON
// codec surface (results, mellowbench -metrics) and the input to the
// Prometheus exposition writer — one materialisation, two renderings.
type Snapshot struct {
	Families []Family `json:"families"`
}

// Family is one metric family in a snapshot.
type Family struct {
	Name  string `json:"name"`
	Help  string `json:"help,omitempty"`
	Kind  Kind   `json:"kind"`
	Label string `json:"label,omitempty"`
	// Scale multiplies histogram values at render time (recorded
	// microseconds with Scale 1e-6 expose as seconds).
	Scale float64 `json:"scale,omitempty"`
	// Raw marks families whose cell labels are pre-rendered
	// `k="v",k2="v2"` strings (build info).
	Raw   bool   `json:"raw,omitempty"`
	Cells []Cell `json:"cells,omitempty"`
}

// Cell is one sample of a family: an optional label value plus either
// a scalar value (counter, gauge) or a distribution (histogram).
type Cell struct {
	Label string           `json:"label,omitempty"`
	Value float64          `json:"value,omitempty"`
	Hist  *stats.Histogram `json:"histogram,omitempty"`
}

// Names returns "name kind" lines in snapshot order — the golden
// exposition name set CI pins, and the source for the README table.
func (s Snapshot) Names() []string {
	out := make([]string, len(s.Families))
	for i, f := range s.Families {
		out[i] = f.Name + " " + string(f.Kind)
	}
	return out
}

// Get finds a family by name.
func (s Snapshot) Get(name string) (Family, bool) {
	for _, f := range s.Families {
		if f.Name == name {
			return f, true
		}
	}
	return Family{}, false
}

// Value returns the scalar of an unlabelled counter or gauge family,
// or 0 when absent — the convenience tests reach for.
func (s Snapshot) Value(name string) float64 {
	f, ok := s.Get(name)
	if !ok || len(f.Cells) == 0 {
		return 0
	}
	return f.Cells[0].Value
}

// escapeLabel escapes a label value for the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatFloat renders a value the way the old hand renderer did (%g).
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the snapshot in Prometheus text exposition
// format. Families with no cells still emit their HELP and TYPE lines,
// so the name set is complete and stable from the first scrape. The
// snapshot is immutable: no lock is held while writing, however slow w
// is.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range s.Families {
		if f.Help != "" {
			bw.WriteString("# HELP " + f.Name + " " + f.Help + "\n")
		}
		bw.WriteString("# TYPE " + f.Name + " " + string(f.Kind) + "\n")
		for _, c := range f.Cells {
			if f.Kind == KindHistogram && c.Hist != nil {
				writeHistogram(bw, f, c)
				continue
			}
			bw.WriteString(f.Name)
			writeLabels(bw, f, c, "")
			bw.WriteByte(' ')
			if f.Kind == KindCounter {
				bw.WriteString(strconv.FormatUint(uint64(c.Value), 10))
			} else {
				bw.WriteString(formatFloat(c.Value))
			}
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// writeLabels renders a cell's label set, with an optional extra
// `le="..."` pair for histogram bucket lines.
func writeLabels(bw *bufio.Writer, f Family, c Cell, le string) {
	var parts []string
	switch {
	case f.Raw && c.Label != "":
		parts = append(parts, c.Label) // pre-rendered k="v" list
	case f.Label != "":
		parts = append(parts, f.Label+`="`+escapeLabel(c.Label)+`"`)
	}
	if le != "" {
		parts = append(parts, `le="`+le+`"`)
	}
	if len(parts) == 0 {
		return
	}
	bw.WriteString("{" + strings.Join(parts, ",") + "}")
}

// writeHistogram renders one histogram cell: cumulative buckets in
// scaled units, the +Inf bucket, then _sum and _count.
func writeHistogram(bw *bufio.Writer, f Family, c Cell) {
	scale := f.Scale
	if scale == 0 {
		scale = 1
	}
	var cum uint64
	for _, b := range c.Hist.Buckets() {
		cum += b.Count
		bw.WriteString(f.Name + "_bucket")
		writeLabels(bw, f, c, formatFloat(float64(b.Upper)*scale))
		bw.WriteString(" " + strconv.FormatUint(cum, 10) + "\n")
	}
	bw.WriteString(f.Name + "_bucket")
	writeLabels(bw, f, c, "+Inf")
	bw.WriteString(" " + strconv.FormatUint(c.Hist.Count(), 10) + "\n")

	bw.WriteString(f.Name + "_sum")
	writeLabels(bw, f, c, "")
	bw.WriteString(" " + formatFloat(float64(c.Hist.Sum())*scale) + "\n")

	bw.WriteString(f.Name + "_count")
	writeLabels(bw, f, c, "")
	bw.WriteString(" " + strconv.FormatUint(c.Hist.Count(), 10) + "\n")
}
