package metrics

import "runtime"

// GoRuntime returns a collector publishing Go runtime basics under the
// given name prefix (goroutines, heap occupancy, GC cycles). It belongs
// on process-scope registries only: runtime state is wall-clock-ish and
// has no place in a deterministic per-run snapshot.
func GoRuntime(prefix string) Collector {
	return func(g *Gatherer) {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		g.Gauge(prefix+"go_goroutines", "Goroutines currently live in the process.",
			float64(runtime.NumGoroutine()))
		g.Gauge(prefix+"go_heap_alloc_bytes", "Bytes of allocated heap objects.",
			float64(ms.HeapAlloc))
		g.Gauge(prefix+"go_sys_bytes", "Total bytes of memory obtained from the OS.",
			float64(ms.Sys))
		g.Counter(prefix+"go_gc_cycles_total", "Completed GC cycles.", uint64(ms.NumGC))
		g.Counter(prefix+"go_alloc_bytes_total", "Cumulative bytes allocated for heap objects.",
			ms.TotalAlloc)
	}
}
