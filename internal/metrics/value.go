package metrics

import (
	"math"
	"sync/atomic"

	"mellow/internal/stats"
)

// Counter is a monotonically increasing counter. The zero value is
// ready to use; all methods are safe for concurrent use and wait-free.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 gauge. The zero value is ready to use; all
// methods are safe for concurrent use.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by d (CAS loop; wait-free in practice).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Inc and Dec adjust the gauge by ±1.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a lock-free distribution on the stats.Histogram
// power-of-two bucket layout: bucket i counts values in [2^i, 2^(i+1)).
// Observe is wait-free (two atomic adds). A concurrent Snapshot may
// tear between sum and buckets by a few in-flight samples — fine for
// monitoring; the count is derived from the buckets so the exposition's
// cumulative +Inf bucket always equals its _count line.
type Histogram struct {
	buckets [stats.NumBuckets]atomic.Uint64
	sum     atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	h.sum.Add(v)
	h.buckets[stats.BucketIndex(v)].Add(1)
}

// Snapshot copies the distribution into a stats.Histogram value.
func (h *Histogram) Snapshot() stats.Histogram {
	var b [stats.NumBuckets]uint64
	for i := range h.buckets {
		b[i] = h.buckets[i].Load()
	}
	return stats.FromBuckets(b[:], h.sum.Load())
}
