package metrics

import (
	"encoding/json"
	"reflect"
	"strings"
	"sync"
	"testing"

	"mellow/internal/stats"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "Jobs.")
	c.Inc()
	c.Add(4)
	g := r.Gauge("depth", "Depth.")
	g.Set(3)
	g.Dec()

	s := r.Snapshot()
	if v := s.Value("jobs_total"); v != 5 {
		t.Errorf("counter = %v, want 5", v)
	}
	if v := s.Value("depth"); v != 2 {
		t.Errorf("gauge = %v, want 2", v)
	}
}

func TestRegisterIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "X.")
	b := r.Counter("x_total", "X.")
	if a != b {
		t.Fatal("re-registering the same counter returned a different handle")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("x_total", "X.")
}

func TestHistogramMatchesStats(t *testing.T) {
	var h Histogram
	var want stats.Histogram
	for _, v := range []uint64{0, 1, 2, 3, 100, 5000, 1 << 40} {
		h.Observe(v)
		want.Add(v)
	}
	got := h.Snapshot()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("atomic histogram snapshot diverges from stats.Histogram:\n got %+v\nwant %+v", got, want)
	}
}

func TestVecCells(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("by_kind_total", "By kind.", "kind")
	v.With("sim").Add(2)
	v.With("compare").Inc()
	hv := r.HistogramVec("lat_seconds", "Latency.", "kind", 1e-6)
	hv.With("sim").Observe(1000)

	s := r.Snapshot()
	f, ok := s.Get("by_kind_total")
	if !ok || len(f.Cells) != 2 {
		t.Fatalf("family missing or wrong cells: %+v", f)
	}
	// Deterministic label order.
	if f.Cells[0].Label != "compare" || f.Cells[1].Label != "sim" {
		t.Errorf("cells not sorted: %+v", f.Cells)
	}
	if f.Cells[1].Value != 2 {
		t.Errorf("sim cell = %v, want 2", f.Cells[1].Value)
	}
}

func TestCollectorAndRawLabels(t *testing.T) {
	r := NewRegistry()
	r.RegisterCollector(func(g *Gatherer) {
		g.Counter("col_total", "From a collector.", 7)
		g.GaugeL("banks", "Per bank.", "bank", "01", 2.5)
		g.GaugeL("banks", "Per bank.", "bank", "00", 1.5)
		g.GaugeRaw("build_info", "Build.", `go_version="go1.22",rev="abc"`, 1)
		var h stats.Histogram
		h.Add(3)
		g.Histogram("wait_seconds", "Wait.", 1e-6, h)
	})
	s := r.Snapshot()
	if v := s.Value("col_total"); v != 7 {
		t.Errorf("collector counter = %v", v)
	}
	f, _ := s.Get("banks")
	if len(f.Cells) != 2 || f.Cells[0].Label != "00" {
		t.Errorf("labelled collector cells wrong: %+v", f.Cells)
	}

	var b strings.Builder
	if err := s.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"# TYPE banks gauge\n",
		`banks{bank="00"} 1.5`,
		`build_info{go_version="go1.22",rev="abc"} 1`,
		"col_total 7",
		`wait_seconds_bucket{le="+Inf"} 1`,
		"wait_seconds_sum 3e-06",
		"wait_seconds_count 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestEmptyFamilyStillExposesTypeLine(t *testing.T) {
	r := NewRegistry()
	r.HistogramVec("dur_seconds", "Durations.", "kind", 1e-6)
	var b strings.Builder
	if err := r.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "# TYPE dur_seconds histogram\n") {
		t.Errorf("empty vec family lost its TYPE line:\n%s", b.String())
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "A.").Add(3)
	r.Gauge("b", "B.").Set(1.25)
	r.Histogram("c_seconds", "C.", 1e-6).Observe(42)
	s := r.Snapshot()

	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	b2, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != string(b2) {
		t.Errorf("snapshot JSON not stable across a round trip:\n%s\n%s", b, b2)
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	build := func() Snapshot {
		r := NewRegistry()
		r.Counter("z_total", "Z.").Add(2)
		r.Counter("a_total", "A.").Inc()
		v := r.CounterVec("k_total", "K.", "kind")
		v.With("b").Inc()
		v.With("a").Add(2)
		return r.Snapshot()
	}
	a, _ := json.Marshal(build())
	b, _ := json.Marshal(build())
	if string(a) != string(b) {
		t.Errorf("equal registries snapshot to different bytes:\n%s\n%s", a, b)
	}
}

// TestConcurrentHotPath hammers every handle type while snapshots are
// taken — the -race witness that the hot paths hold up without locks.
func TestConcurrentHotPath(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits_total", "Hits.")
	g := r.Gauge("inflight", "In flight.")
	h := r.Histogram("lat", "Latency.", 1)
	v := r.CounterVec("kinds_total", "Kinds.", "kind")
	labels := []string{"a", "b", "c", "d"}

	const workers, iters = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(uint64(i))
				v.With(labels[(w+i)%len(labels)]).Inc()
				if i%256 == 0 {
					_ = r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()

	s := r.Snapshot()
	if got := s.Value("hits_total"); got != workers*iters {
		t.Errorf("hits_total = %v, want %d", got, workers*iters)
	}
	f, _ := s.Get("kinds_total")
	var sum float64
	for _, cell := range f.Cells {
		sum += cell.Value
	}
	if sum != workers*iters {
		t.Errorf("vec total = %v, want %d", sum, workers*iters)
	}
	hist, _ := s.Get("lat")
	if hist.Cells[0].Hist.Count() != workers*iters {
		t.Errorf("histogram count = %d, want %d", hist.Cells[0].Hist.Count(), workers*iters)
	}
}

func TestGoRuntimeCollector(t *testing.T) {
	r := NewRegistry()
	r.RegisterCollector(GoRuntime("svc_"))
	s := r.Snapshot()
	if s.Value("svc_go_goroutines") < 1 {
		t.Error("goroutine gauge missing")
	}
	if _, ok := s.Get("svc_go_gc_cycles_total"); !ok {
		t.Error("gc counter missing")
	}
}
