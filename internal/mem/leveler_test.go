package mem

import (
	"testing"

	"mellow/internal/config"
	"mellow/internal/policy"
	"mellow/internal/sim"
	"mellow/internal/wear"
)

// ctlWithLeveler builds a controller with the named backend, tightening
// the remap intervals so short tests actually trigger migrations.
func ctlWithLeveler(t *testing.T, backend string) (*sim.Kernel, *Controller) {
	t.Helper()
	cfg := config.Default()
	cfg.Memory.WearLeveler = backend
	cfg.Memory.WolframSwapPeriod = 10
	cfg.Memory.SoftWearPageBlocks = 4
	cfg.Memory.SoftWearEpochWrites = 32
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	k := &sim.Kernel{}
	return k, New(k, cfg.Memory, policy.Norm())
}

// TestBackendSelection checks every configured backend actually drives
// the controller's per-bank mapping and reports itself by name.
func TestBackendSelection(t *testing.T) {
	for _, backend := range wear.Backends() {
		_, c := ctlWithLeveler(t, backend)
		if got := c.Leveler(0).Name(); got != backend {
			t.Errorf("configured %q, controller built %q", backend, got)
		}
		if c.Leveler(0) == c.Leveler(1) {
			t.Errorf("%s: banks share one leveler instance", backend)
		}
		if got := c.levelEff; got != c.Leveler(0).Efficiency() {
			t.Errorf("%s: cached efficiency %v != backend's %v", backend, got, c.Leveler(0).Efficiency())
		}
	}
}

// TestBackendRemapsCharge drives one bank hard enough that every backend
// performs migrations, and checks the copy writes land in the snapshot
// (GapMoves), the wear meters and the energy account — remaps are never
// free.
func TestBackendRemapsCharge(t *testing.T) {
	for _, backend := range wear.Backends() {
		t.Run(backend, func(t *testing.T) {
			k, c := ctlWithLeveler(t, backend)
			for n := 1; n <= 300; n++ {
				c.SubmitWrite(lineForBank(3, n), k.Now())
				k.AdvanceTo(k.Now() + sim.NS(500))
			}
			c.Drain()
			s := c.Snapshot()
			if s.GapMoves == 0 {
				t.Fatal("no migration writes recorded")
			}
			moves := c.Leveler(3).Moves()
			if moves == 0 {
				t.Fatal("leveler reports zero remap operations")
			}
			if s.GapMoves < moves {
				t.Errorf("snapshot GapMoves %d < leveler remap ops %d", s.GapMoves, moves)
			}
			if got := c.Meter(3).GapWrites(); got != s.GapMoves {
				t.Errorf("meter gap writes %d != snapshot GapMoves %d", got, s.GapMoves)
			}
		})
	}
}

// TestBackendCopyCostOccupiesBank pins the remap cost model: each copy
// write holds the bank for tRCD plus one normal pulse, so a
// multi-block page swap (softwear) keeps the bank busy proportionally
// longer than a single Start-Gap move.
func TestBackendCopyCostOccupiesBank(t *testing.T) {
	busyAfter := func(backend string, writes int) sim.Tick {
		cfg := config.Default()
		cfg.Memory.WearLeveler = backend
		cfg.Memory.WolframSwapPeriod = 1000000
		cfg.Memory.SoftWearPageBlocks = 8
		cfg.Memory.SoftWearEpochWrites = writes
		cfg.Memory.StartGapPsi = writes
		k := &sim.Kernel{}
		c := New(k, cfg.Memory, policy.Norm())
		for n := 1; n <= writes; n++ {
			c.SubmitWrite(lineForBank(0, n), k.Now())
			c.Drain()
		}
		return c.banks[0].freeAt - k.Now()
	}
	// Start-Gap's last write triggers one copy; SoftWear's epoch close
	// swaps an 8-block page (16 copies). Same demand traffic, so any
	// extra busy time is remap cost.
	sg := busyAfter("startgap", 32)
	sw := busyAfter("softwear", 32)
	if sw <= sg {
		t.Errorf("softwear page swap busy %d ticks <= startgap single move %d ticks", sw, sg)
	}
}

// TestBackendDeterminism runs the identical workload twice per backend
// and requires identical snapshots — WoLFRaM's randomized swap partners
// come from a per-bank seeded stream, not global state.
func TestBackendDeterminism(t *testing.T) {
	for _, backend := range wear.Backends() {
		run := func() Snapshot {
			k, c := ctlWithLeveler(t, backend)
			for i := 0; i < 400; i++ {
				c.SubmitWrite(lineForBank(i%16, i+1), k.Now())
				if i%6 == 0 {
					r := c.SubmitRead(lineForBank((i+5)%16, i+3), k.Now())
					c.WaitRead(r)
				}
				k.AdvanceTo(k.Now() + sim.NS(200))
			}
			c.Drain()
			return c.Snapshot()
		}
		a, b := run(), run()
		if a.Counters != b.Counters || a.EnergyPJ != b.EnergyPJ || a.MaxBankDamage != b.MaxBankDamage {
			t.Errorf("%s: backend not deterministic:\n%+v\n%+v", backend, a.Counters, b.Counters)
		}
	}
}

// TestBackendLifetimeUsesOwnEfficiency checks the §V snapshot lifetime
// is computed with the active backend's leveling efficiency, not the
// Start-Gap config field.
func TestBackendLifetimeUsesOwnEfficiency(t *testing.T) {
	lifetime := func(backend string) (years, eff float64) {
		cfg := config.Default()
		cfg.Memory.WearLeveler = backend
		// Make remaps impossible so every backend sees identical damage.
		cfg.Memory.StartGapPsi = 1 << 30
		cfg.Memory.WolframSwapPeriod = 1 << 30
		cfg.Memory.SoftWearEpochWrites = 1 << 30
		k := &sim.Kernel{}
		c := New(k, cfg.Memory, policy.Norm())
		for n := 1; n <= 20; n++ {
			c.SubmitWrite(lineForBank(0, n), k.Now())
			k.AdvanceTo(k.Now() + sim.NS(500))
		}
		k.AdvanceTo(sim.NS(1e6))
		return c.Snapshot().LifetimeYears, c.Leveler(0).Efficiency()
	}
	sgY, sgE := lifetime("startgap")
	wfY, wfE := lifetime("wolfram")
	swY, swE := lifetime("softwear")
	if sgE == wfE || wfE == swE {
		t.Fatalf("efficiencies not distinct: %v %v %v", sgE, wfE, swE)
	}
	// Identical damage ⇒ lifetime ratios equal efficiency ratios.
	if got, want := wfY/sgY, wfE/sgE; !approxEqual(got, want) {
		t.Errorf("wolfram/startgap lifetime ratio %v, want %v", got, want)
	}
	if got, want := swY/sgY, swE/sgE; !approxEqual(got, want) {
		t.Errorf("softwear/startgap lifetime ratio %v, want %v", got, want)
	}
}

func approxEqual(a, b float64) bool { return a/b > 0.999 && a/b < 1.001 }
