package mem

import "mellow/internal/sim"

// This file holds the controller's indexed request containers: a chunked
// request arena (so the hot path never allocates per request) and the
// intrusive per-bank FIFO queues that replaced the old []*Request slices
// with their per-issue linear scans.

// reqChunkBits sizes the arena chunks: 512 requests (~64 KB) each.
const reqChunkBits = 9

// reqArena hands out Requests from append-only chunks. Slots are never
// recycled within a run — a *Request stays valid for the controller's
// lifetime, which is what the CPU model (which holds requests across
// arbitrary simulated time) and the completion events (which name
// requests by index) rely on. One run allocates a handful of chunks
// instead of one object per memory operation.
type reqArena struct {
	chunks [][]Request
	n      uint32
}

// alloc returns a zeroed Request with its arena index stamped.
func (a *reqArena) alloc() *Request {
	ci, off := int(a.n>>reqChunkBits), int(a.n&(1<<reqChunkBits-1))
	if off == 0 {
		a.chunks = append(a.chunks, make([]Request, 1<<reqChunkBits))
	}
	r := &a.chunks[ci][off]
	r.idx = a.n
	a.n++
	return r
}

// at resolves an arena index (an event payload word) to its Request.
func (a *reqArena) at(idx uint32) *Request {
	return &a.chunks[idx>>reqChunkBits][idx&(1<<reqChunkBits-1)]
}

// bankFIFO is one bank's intrusive request list, linked through the
// Request next/prev fields and kept in (arrive, submission) order: new
// requests arrive at monotone ticks and append at the tail, and the only
// front insertions are cancelled/paused writes, which by construction
// arrived no later than anything still queued for the bank. The head is
// therefore always the oldest request — the O(1) answer to what used to
// be a scan.
type bankFIFO struct {
	head, tail *Request
	n          int
}

// reqQueue is one controller queue (read, write or eager) indexed by
// bank. The aggregate size drives the full/drain thresholds; per-bank
// lists drive issue selection.
type reqQueue struct {
	size  int
	banks []bankFIFO
}

func (q *reqQueue) init(banks int) { q.banks = make([]bankFIFO, banks) }

// pushBack appends r to its bank's list (new arrivals).
func (q *reqQueue) pushBack(r *Request) {
	f := &q.banks[r.Bank]
	r.next, r.prev = nil, f.tail
	if f.tail != nil {
		f.tail.next = r
	} else {
		f.head = r
	}
	f.tail = r
	f.n++
	q.size++
}

// pushFront re-queues a preempted request at its bank's head.
func (q *reqQueue) pushFront(r *Request) {
	f := &q.banks[r.Bank]
	r.prev, r.next = nil, f.head
	if f.head != nil {
		f.head.prev = r
	} else {
		f.tail = r
	}
	f.head = r
	f.n++
	q.size++
}

// remove unlinks r from its bank's list.
func (q *reqQueue) remove(r *Request) {
	f := &q.banks[r.Bank]
	if r.prev != nil {
		r.prev.next = r.next
	} else {
		f.head = r.next
	}
	if r.next != nil {
		r.next.prev = r.prev
	} else {
		f.tail = r.prev
	}
	r.next, r.prev = nil, nil
	f.n--
	q.size--
}

// oldest returns the oldest queued request for a bank, or nil. O(1).
func (q *reqQueue) oldest(bank int) *Request {
	return q.banks[bank].head
}

// count returns the number of queued requests for a bank. O(1).
func (q *reqQueue) count(bank int) int { return q.banks[bank].n }

// find returns the queued request holding line, or nil. The walk spans
// only the line's bank list (a handful of entries) instead of the whole
// queue.
func (q *reqQueue) find(bank int, line uint64) *Request {
	for r := q.banks[bank].head; r != nil; r = r.next {
		if r.Line == line {
			return r
		}
	}
	return nil
}

// wake schedules (or dedups) a scheduling attempt for a bank at tick t.
// The bank's precomputed next-wakeup tick makes redundant scheduler
// events disappear: several same-tick submissions to one bank used to
// enqueue one no-op trySchedule event each; now the first wins and the
// rest cost a comparison. An idle bank has no pending wake event at all.
func (c *Controller) wake(bank int, t sim.Tick) {
	b := &c.banks[bank]
	if b.wakeSet && b.wakeAt == t {
		return
	}
	b.wakeSet, b.wakeAt = true, t
	c.k.AtEvent(t, c, evWord(opSched, bank, 0), 0)
}
