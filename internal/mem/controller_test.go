package mem

import (
	"testing"

	"mellow/internal/config"
	"mellow/internal/nvm"
	"mellow/internal/policy"
	"mellow/internal/sim"
)

// newCtl builds a controller on a fresh kernel with the Table II default
// memory system.
func newCtl(spec policy.Spec) (*sim.Kernel, *Controller) {
	k := &sim.Kernel{}
	return k, New(k, config.Default().Memory, spec)
}

// lineForBank returns the n-th line address mapping to the given bank
// (16 banks: low 4 line-address bits select the bank).
func lineForBank(bank, n int) uint64 { return uint64(n)<<4 | uint64(bank) }

func TestReadTiming(t *testing.T) {
	k, c := newCtl(policy.Norm())
	r := c.SubmitRead(lineForBank(0, 1), 0)
	done := c.WaitRead(r)
	// Cold read: tRCD (240) + tCAS (5) + burst (20) = 265 ticks.
	if done != 265 {
		t.Errorf("cold read done at %d ticks, want 265", done)
	}
	// Row-buffer hit: a second line in the same 1KB buffer segment.
	r2 := c.SubmitRead(lineForBank(0, 0), k.Now())
	done2 := c.WaitRead(r2)
	if got := done2 - done; got != 25 { // tCAS + burst
		t.Errorf("row-hit read took %d ticks after first, want 25", got)
	}
	s := c.Snapshot()
	if s.RowMisses != 1 || s.RowHits != 1 {
		t.Errorf("row hits/misses = %d/%d, want 1/1", s.RowHits, s.RowMisses)
	}
}

func TestRowBufferTagGranularity(t *testing.T) {
	_, c := newCtl(policy.Norm())
	r := c.SubmitRead(lineForBank(3, 0), 0)
	c.WaitRead(r)
	// Line 16 buffers away in the same bank: different 1KB segment.
	r2 := c.SubmitRead(lineForBank(3, 1000), c.Now())
	c.WaitRead(r2)
	if s := c.Snapshot(); s.RowMisses != 2 {
		t.Errorf("row misses = %d, want 2 (distinct segments)", s.RowMisses)
	}
}

func TestWriteModesByPolicy(t *testing.T) {
	// Norm: every write normal. Slow: every write slow.
	for _, tc := range []struct {
		spec policy.Spec
		mode nvm.WriteMode
	}{
		{policy.Norm(), nvm.WriteNormal},
		{policy.Slow(), nvm.WriteSlow30},
	} {
		k, c := newCtl(tc.spec)
		c.SubmitWrite(lineForBank(2, 1), 0)
		k.AdvanceTo(sim.NS(10000))
		s := c.Snapshot()
		if s.WritesByMode[tc.mode] != 1 || s.TotalWrites() != 1 {
			t.Errorf("%s: writes by mode = %v", tc.spec.Name, s.WritesByMode)
		}
	}
}

func TestBankAwareSingleWriteIsSlow(t *testing.T) {
	k, c := newCtl(policy.BMellow())
	c.SubmitWrite(lineForBank(5, 1), 0)
	k.AdvanceTo(sim.NS(10000))
	s := c.Snapshot()
	if s.WritesByMode[nvm.WriteSlow30] != 1 {
		t.Errorf("sole write not slow: %v", s.WritesByMode)
	}
}

func TestBankAwareMultipleWrites(t *testing.T) {
	// Two write-backs to the same bank arriving together: the first
	// issues normal (a second is waiting), the survivor issues slow.
	k, c := newCtl(policy.BMellow())
	c.SubmitWrite(lineForBank(5, 1), 0)
	c.SubmitWrite(lineForBank(5, 2), 0)
	k.AdvanceTo(sim.NS(20000))
	s := c.Snapshot()
	if s.WritesByMode[nvm.WriteNormal] != 1 || s.WritesByMode[nvm.WriteSlow30] != 1 {
		t.Errorf("writes by mode = %v, want one normal + one slow", s.WritesByMode)
	}
}

func TestBankAwareDifferentBanksBothSlow(t *testing.T) {
	k, c := newCtl(policy.BMellow())
	c.SubmitWrite(lineForBank(1, 1), 0)
	c.SubmitWrite(lineForBank(2, 1), 0)
	k.AdvanceTo(sim.NS(20000))
	s := c.Snapshot()
	if s.WritesByMode[nvm.WriteSlow30] != 2 {
		t.Errorf("writes by mode = %v, want two slow", s.WritesByMode)
	}
}

func TestReadPriorityOverWrite(t *testing.T) {
	// A read and a write for the same bank, submitted together: the read
	// must be served first.
	_, c := newCtl(policy.Norm())
	// Hold the bank with one write first so both can queue behind it.
	c.SubmitWrite(lineForBank(4, 9), 0)
	c.SubmitWrite(lineForBank(4, 10), 1)
	r := c.SubmitRead(lineForBank(4, 11), 2)
	done := c.WaitRead(r)
	s := c.Snapshot()
	// Only the first write may have completed before the read.
	if s.WritesDone > 1 {
		t.Errorf("%d writes completed before the read", s.WritesDone)
	}
	if done == 0 {
		t.Error("read never completed")
	}
}

func TestWriteDrainTriggersAndClears(t *testing.T) {
	_, c := newCtl(policy.Norm())
	// Fill the write queue to the high threshold with same-bank writes
	// while reads keep the bank nominally read-prioritised.
	for i := 0; i < 32; i++ {
		c.SubmitWrite(lineForBank(0, i+1), 0)
	}
	if !c.Draining() {
		t.Fatal("drain did not trigger at high threshold")
	}
	c.AdvanceTo(sim.NS(100000))
	if c.Draining() {
		_, w, _ := c.QueueDepths()
		t.Fatalf("drain never cleared; %d writes still queued", w)
	}
	s := c.Snapshot()
	if s.Drains != 1 {
		t.Errorf("drain count = %d, want 1", s.Drains)
	}
	if s.DrainFraction <= 0 || s.DrainFraction >= 1 {
		t.Errorf("drain fraction = %v, want in (0,1)", s.DrainFraction)
	}
}

func TestDrainPrioritisesWrites(t *testing.T) {
	_, c := newCtl(policy.Norm())
	for i := 0; i < 32; i++ {
		c.SubmitWrite(lineForBank(0, i+1), 0)
	}
	if !c.Draining() {
		t.Fatal("expected drain")
	}
	// A read to the draining bank must wait for several writes: with
	// 31 queued writes to drain to 16, the read completes only after
	// the drain ends or after the queue thins for its bank.
	r := c.SubmitRead(lineForBank(0, 100), c.Now())
	c.WaitRead(r)
	s := c.Snapshot()
	if s.WritesDone < 5 {
		t.Errorf("read jumped the drain: only %d writes done first", s.WritesDone)
	}
}

func TestWriteCancellation(t *testing.T) {
	// Slow cancellable write in flight; a read to the same bank arrives
	// mid-pulse and must abort it.
	_, c := newCtl(policy.Slow().WithSC())
	c.SubmitWrite(lineForBank(7, 1), 0)
	c.AdvanceTo(sim.NS(100)) // write pulse (450 ns) is in flight
	r := c.SubmitRead(lineForBank(7, 2), sim.NS(100))
	done := c.WaitRead(r)
	// Read should finish well before the 450 ns pulse would have ended
	// plus read time: cancellation frees the bank at ~100 ns.
	if done.Nanoseconds() > 300 {
		t.Errorf("read done at %v ns; cancellation did not free the bank", done.Nanoseconds())
	}
	c.AdvanceTo(sim.NS(100000))
	s := c.Snapshot()
	if s.Cancellations != 1 || s.CancelledByMode[nvm.WriteSlow30] != 1 {
		t.Errorf("cancellations = %d (%v)", s.Cancellations, s.CancelledByMode)
	}
	// The write must still complete eventually (retried).
	if s.WritesByMode[nvm.WriteSlow30] != 1 {
		t.Errorf("cancelled write never retried: %v", s.WritesByMode)
	}
	// Wear counts both the aborted attempt and the final write.
	if got := c.Meter(7).Snapshot().TotalAttempts(); got != 2 {
		t.Errorf("bank attempts = %d, want 2", got)
	}
}

func TestNoCancellationWithoutFlag(t *testing.T) {
	_, c := newCtl(policy.Slow()) // no +SC
	c.SubmitWrite(lineForBank(7, 1), 0)
	c.AdvanceTo(sim.NS(100))
	r := c.SubmitRead(lineForBank(7, 2), sim.NS(100))
	done := c.WaitRead(r)
	// Must wait for the full 450 ns pulse before the read runs.
	if done < sim.NS(450) {
		t.Errorf("read done at %v ns, before the slow pulse finished", done.Nanoseconds())
	}
	if s := c.Snapshot(); s.Cancellations != 0 {
		t.Errorf("cancellations = %d, want 0", s.Cancellations)
	}
}

func TestForwarding(t *testing.T) {
	_, c := newCtl(policy.Norm())
	// Park a write in the queue behind another so it stays queued.
	c.SubmitWrite(lineForBank(9, 1), 0)
	c.SubmitWrite(lineForBank(9, 2), 0)
	r := c.SubmitRead(lineForBank(9, 2), 1)
	done := c.WaitRead(r)
	if got := done - 1; got > forwardLatency {
		t.Errorf("forwarded read took %d ticks, want <= %d", got, forwardLatency)
	}
	if s := c.Snapshot(); s.Forwarded != 1 {
		t.Errorf("forwarded = %d, want 1", s.Forwarded)
	}
}

func TestWriteCoalescing(t *testing.T) {
	k, c := newCtl(policy.Norm())
	c.SubmitWrite(lineForBank(9, 1), 0)
	c.SubmitWrite(lineForBank(9, 2), 0) // keeps first from issuing alone
	c.SubmitWrite(lineForBank(9, 2), 1) // duplicate of the queued write
	k.AdvanceTo(sim.NS(10000))
	s := c.Snapshot()
	if s.Coalesced != 1 {
		t.Errorf("coalesced = %d, want 1", s.Coalesced)
	}
	if s.WritesDone != 2 {
		t.Errorf("writes done = %d, want 2", s.WritesDone)
	}
}

func TestEagerQueueLifecycle(t *testing.T) {
	k, c := newCtl(policy.BEMellow())
	supply := []uint64{lineForBank(1, 1), lineForBank(2, 1), lineForBank(3, 1)}
	i := 0
	c.SetEagerSource(func() (uint64, bool) {
		if i >= len(supply) {
			return 0, false
		}
		v := supply[i]
		i++
		return v, true
	})
	k.AdvanceTo(sim.NS(50000))
	s := c.Snapshot()
	if s.EagerQueued != 3 {
		t.Errorf("eager queued = %d, want 3", s.EagerQueued)
	}
	if s.EagerDone != 3 {
		t.Errorf("eager done = %d, want 3", s.EagerDone)
	}
	// Eager writes are always slow in BE-Mellow.
	if s.WritesByMode[nvm.WriteSlow30] != 3 {
		t.Errorf("eager writes not slow: %v", s.WritesByMode)
	}
}

func TestEagerYieldsToDemand(t *testing.T) {
	// An eager entry for a bank with a queued demand write must wait.
	k, c := newCtl(policy.BEMellow())
	fed := false
	c.SetEagerSource(func() (uint64, bool) {
		if fed {
			return 0, false
		}
		fed = true
		return lineForBank(6, 50), true
	})
	// Demand writes keep bank 6 occupied from t=0 until ~1.5 µs (seven
	// normal pulses then one bank-aware slow pulse).
	for n := 1; n <= 8; n++ {
		c.SubmitWrite(lineForBank(6, n), 0)
	}
	k.AdvanceTo(sim.NS(1000))
	s := c.Snapshot()
	if s.EagerDone != 0 {
		t.Error("eager write issued while demand writes were queued for the bank")
	}
	k.AdvanceTo(sim.NS(60000))
	if s := c.Snapshot(); s.EagerDone != 1 {
		t.Errorf("eager write never issued after bank went idle: %+v", s.Counters)
	}
}

func TestWearQuotaForcesSlow(t *testing.T) {
	spec := policy.Norm().WithWQ()
	k, c := newCtl(spec)
	// Blast one bank with far more than its per-period quota (~37
	// normal-write damage), then cross a period boundary.
	for n := 1; n <= 100; n++ {
		c.SubmitWrite(lineForBank(0, n), k.Now())
		k.AdvanceTo(k.Now() + sim.NS(400)) // space them out; avoid drains
	}
	k.AdvanceTo(spec.QuotaPeriod + sim.NS(1000))
	if !c.Quota(0).Exceeded() {
		t.Fatal("bank 0 quota not exceeded after 100 writes in one period")
	}
	if c.Quota(1).Exceeded() {
		t.Error("idle bank 1 reported exceeded")
	}
	// Writes to bank 0 in the new period must be slow despite Norm base.
	before := c.Snapshot().WritesByMode
	for n := 200; n < 205; n++ {
		c.SubmitWrite(lineForBank(0, n), k.Now())
		k.AdvanceTo(k.Now() + sim.NS(1000))
	}
	k.AdvanceTo(k.Now() + sim.NS(10000))
	after := c.Snapshot().WritesByMode
	if got := after[nvm.WriteSlow30] - before[nvm.WriteSlow30]; got != 5 {
		t.Errorf("slow writes in quota-exceeded period = %d, want 5", got)
	}
}

func TestStartGapMigrations(t *testing.T) {
	k, c := newCtl(policy.Norm())
	// psi = 100: 250 writes to one bank yield 2 gap moves.
	for n := 1; n <= 250; n++ {
		c.SubmitWrite(lineForBank(3, n), k.Now())
		k.AdvanceTo(k.Now() + sim.NS(500))
	}
	k.AdvanceTo(k.Now() + sim.NS(10000))
	s := c.Snapshot()
	if s.GapMoves != 2 {
		t.Errorf("gap moves = %d, want 2", s.GapMoves)
	}
}

func TestUtilizationMeters(t *testing.T) {
	k, c := newCtl(policy.Norm())
	// One 150 ns write on bank 0, then idle until 1500 ns.
	c.SubmitWrite(lineForBank(0, 1), 0)
	k.AdvanceTo(sim.NS(1500))
	s := c.Snapshot()
	u := s.BankUtilization[0]
	if u < 0.08 || u > 0.13 { // ~150/1500
		t.Errorf("bank 0 utilization = %v, want ~0.10", u)
	}
	if s.BankUtilization[1] != 0 {
		t.Errorf("idle bank utilization = %v", s.BankUtilization[1])
	}
}

func TestEnergyAccounting(t *testing.T) {
	k, c := newCtl(policy.Norm())
	c.SubmitWrite(lineForBank(0, 1), 0)
	k.AdvanceTo(sim.NS(2000))
	s := c.Snapshot()
	wantWrite := nvm.EnergyModel{Cell: nvm.CellC}.WriteEnergyPJ(nvm.WriteNormal)
	if s.EnergyPJ < wantWrite*0.99 || s.EnergyPJ > wantWrite*1.01 {
		t.Errorf("energy = %v pJ, want ~%v (one normal write)", s.EnergyPJ, wantWrite)
	}
	r := c.SubmitRead(lineForBank(1, 1), k.Now())
	c.WaitRead(r)
	s = c.Snapshot()
	wantTotal := wantWrite + 1503.0 + 100.0
	if s.EnergyPJ < wantTotal*0.99 || s.EnergyPJ > wantTotal*1.01 {
		t.Errorf("energy = %v pJ, want ~%v (write + cold read)", s.EnergyPJ, wantTotal)
	}
}

func TestLifetimeSnapshot(t *testing.T) {
	k, c := newCtl(policy.Norm())
	for n := 1; n <= 20; n++ {
		c.SubmitWrite(lineForBank(0, n), k.Now())
		k.AdvanceTo(k.Now() + sim.NS(500))
	}
	k.AdvanceTo(sim.NS(1e6)) // 1 ms window
	s := c.Snapshot()
	// 20 normal writes over 1 ms on a 4Mi-block bank with endurance 5e6
	// and 0.9 leveling: lifetime = 1e-3 s * (4Mi*5e6*0.9)/20.
	blocks := float64(config.Default().Memory.BlocksPerBank())
	wantSec := 1e-3 * blocks * 5e6 * 0.9 / 20
	wantYears := wantSec / policy.SecondsPerYear
	if s.LifetimeYears < wantYears*0.98 || s.LifetimeYears > wantYears*1.02 {
		t.Errorf("lifetime = %v years, want ~%v", s.LifetimeYears, wantYears)
	}
}

func TestSlowWritesExtendSnapshotLifetime(t *testing.T) {
	run := func(spec policy.Spec) float64 {
		k, c := newCtl(spec)
		for n := 1; n <= 50; n++ {
			c.SubmitWrite(lineForBank(0, n), k.Now())
			k.AdvanceTo(k.Now() + sim.NS(1000))
		}
		k.AdvanceTo(sim.NS(1e6))
		return c.Snapshot().LifetimeYears
	}
	norm := run(policy.Norm())
	slow := run(policy.Slow())
	ratio := slow / norm
	if ratio < 8.9 || ratio > 9.1 {
		t.Errorf("slow/norm lifetime ratio = %v, want 9 (Expo=2, 3x pulse)", ratio)
	}
}

func TestResetStatsClearsWindow(t *testing.T) {
	k, c := newCtl(policy.Norm())
	c.SubmitWrite(lineForBank(0, 1), 0)
	k.AdvanceTo(sim.NS(5000))
	c.ResetStats()
	s := c.Snapshot()
	if s.TotalWrites() != 0 || s.EnergyPJ != 0 || s.Reads != 0 {
		t.Errorf("stats after reset: %+v", s)
	}
	if s.AvgUtilization != 0 {
		t.Errorf("utilization after reset = %v", s.AvgUtilization)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Snapshot {
		k, c := newCtl(policy.BEMellow().WithSC())
		n := 0
		c.SetEagerSource(func() (uint64, bool) {
			n++
			if n%3 == 0 {
				return lineForBank(n%16, n), true
			}
			return 0, false
		})
		for i := 0; i < 200; i++ {
			c.SubmitWrite(lineForBank(i%16, i+1), k.Now())
			if i%5 == 0 {
				r := c.SubmitRead(lineForBank((i+3)%16, i+7), k.Now())
				c.WaitRead(r)
			}
			k.AdvanceTo(k.Now() + sim.NS(100))
		}
		k.AdvanceTo(k.Now() + sim.NS(50000))
		return c.Snapshot()
	}
	a, b := run(), run()
	if a.Counters != b.Counters || a.EnergyPJ != b.EnergyPJ || a.WritesByMode != b.WritesByMode {
		t.Errorf("controller not deterministic:\n%+v\n%+v", a.Counters, b.Counters)
	}
}

func TestTFAWThrottlesActivates(t *testing.T) {
	// Five row-miss reads to five banks of the same rank: the fifth
	// activate must wait for the tFAW window (50 ns) after the first.
	_, c := newCtl(policy.Norm())
	var last *Request
	for b := 0; b < 4; b++ {
		last = c.SubmitRead(lineForBank(b, 1), 0)
	}
	c.WaitRead(last)
	fifth := c.SubmitRead(lineForBank(0, 2000), c.Now())
	done := c.WaitRead(fifth)
	_ = done
	// All five used distinct row segments: five activations recorded.
	if s := c.Snapshot(); s.RowMisses != 5 {
		t.Errorf("row misses = %d, want 5", s.RowMisses)
	}
}

func TestEagerDedupAgainstWriteQueue(t *testing.T) {
	k, c := newCtl(policy.BEMellow())
	line := lineForBank(8, 3)
	fed := 0
	c.SetEagerSource(func() (uint64, bool) {
		fed++
		if fed > 3 {
			return 0, false
		}
		return line, true
	})
	// The same line is already a queued demand write (parked behind
	// another write for the bank).
	c.SubmitWrite(lineForBank(8, 99), 0)
	c.SubmitWrite(line, 0)
	k.AdvanceTo(sim.NS(100))
	if s := c.Snapshot(); s.EagerQueued != 0 {
		t.Errorf("eager accepted a line already in the write queue (%d)", s.EagerQueued)
	}
}

func TestWritebackReplacesStaleEagerEntry(t *testing.T) {
	k, c := newCtl(policy.BEMellow())
	line := lineForBank(9, 5)
	fed := false
	c.SetEagerSource(func() (uint64, bool) {
		if fed {
			return 0, false
		}
		fed = true
		return line, true
	})
	// Keep bank 9 busy so the eager entry stays queued.
	for n := 0; n < 6; n++ {
		c.SubmitWrite(lineForBank(9, 100+n), 0)
	}
	k.AdvanceTo(sim.NS(60)) // eager pump fires at 25 ns
	_, _, eBefore := c.QueueDepths()
	if eBefore != 1 {
		t.Fatalf("eager entry not queued (depth %d)", eBefore)
	}
	// A fresh demand write-back to the same line supersedes it.
	c.SubmitWrite(line, k.Now())
	_, _, eAfter := c.QueueDepths()
	if eAfter != 0 {
		t.Errorf("stale eager entry not removed (depth %d)", eAfter)
	}
	k.AdvanceTo(sim.NS(100000))
	if s := c.Snapshot(); s.EagerDone != 0 {
		t.Errorf("superseded eager write still completed (%d)", s.EagerDone)
	}
}

func TestForwardFromInFlightWrite(t *testing.T) {
	_, c := newCtl(policy.Slow())
	line := lineForBank(11, 1)
	c.SubmitWrite(line, 0)
	c.AdvanceTo(sim.NS(100)) // pulse in flight (not cancellable)
	r := c.SubmitRead(line, sim.NS(100))
	done := c.WaitRead(r)
	if done > sim.NS(110) {
		t.Errorf("read of in-flight write data not forwarded (done at %v ns)", done.Nanoseconds())
	}
	if s := c.Snapshot(); s.Forwarded != 1 {
		t.Errorf("forwarded = %d, want 1", s.Forwarded)
	}
}

func TestWriteThroughDoesNotOpenRow(t *testing.T) {
	// Writes bypass the row buffer (Table II): a read following a write
	// to the same 1 KB segment must still pay the activation.
	k, c := newCtl(policy.Norm())
	c.SubmitWrite(lineForBank(2, 1), 0)
	k.AdvanceTo(sim.NS(1000))
	r := c.SubmitRead(lineForBank(2, 0), k.Now()) // same buffer segment
	c.WaitRead(r)
	s := c.Snapshot()
	if s.RowHits != 0 || s.RowMisses != 1 {
		t.Errorf("row hits/misses = %d/%d; write must not warm the row buffer",
			s.RowHits, s.RowMisses)
	}
}

func TestFourBankTopology(t *testing.T) {
	cfg, err := config.Default().WithBanks(4)
	if err != nil {
		t.Fatal(err)
	}
	k := &sim.Kernel{}
	c := New(k, cfg.Memory, policy.BMellow())
	// Lines map across only 4 banks now.
	for n := 0; n < 16; n++ {
		c.SubmitWrite(uint64(n), k.Now())
	}
	k.AdvanceTo(sim.NS(100000))
	s := c.Snapshot()
	if len(s.BankUtilization) != 4 {
		t.Fatalf("bank count = %d, want 4", len(s.BankUtilization))
	}
	if s.TotalWrites() != 16 {
		t.Errorf("writes = %d, want 16", s.TotalWrites())
	}
	for b, u := range s.BankUtilization {
		if u == 0 {
			t.Errorf("bank %d idle; interleave broken", b)
		}
	}
}

func TestMultiChannelBusesIndependent(t *testing.T) {
	cfg, err := config.Default().WithChannels(2)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Memory.Banks() != 32 {
		t.Fatalf("2-channel banks = %d, want 32", cfg.Memory.Banks())
	}
	k := &sim.Kernel{}
	c := New(k, cfg.Memory, policy.Norm())
	// Banks 0 and 1 are on different channels (bank % channels); their
	// data bursts must not serialize against each other.
	r0 := c.SubmitRead(0, 0)
	r1 := c.SubmitRead(1, 0)
	d0, d1 := c.WaitRead(r0), c.WaitRead(r1)
	if d0 != d1 {
		t.Errorf("cross-channel reads not fully parallel: %d vs %d ticks", d0, d1)
	}
	// Same-channel banks (0 and 2) share a bus: the second transfer
	// queues behind the first.
	k2 := &sim.Kernel{}
	c2 := New(k2, cfg.Memory, policy.Norm())
	s0 := c2.SubmitRead(0, 0)
	s2 := c2.SubmitRead(2, 0)
	e0, e2 := c2.WaitRead(s0), c2.WaitRead(s2)
	if e0 == e2 {
		t.Error("same-channel reads completed simultaneously; bus not shared")
	}
	_ = e0
}

func TestSingleChannelDefault(t *testing.T) {
	if config.Default().Memory.Channels != 1 {
		t.Fatal("Table II default must be one channel")
	}
}

func TestFRFCFSPrefersRowHits(t *testing.T) {
	cfg := config.Default()
	cfg.Memory.Scheduler = "frfcfs"
	k := &sim.Kernel{}
	c := New(k, cfg.Memory, policy.Norm())
	// Open a row on bank 0, then queue an older row-miss read and a
	// younger row-hit read while the bank is busy with another read.
	first := c.SubmitRead(lineForBank(0, 1), 0)
	missRead := c.SubmitRead(lineForBank(0, 5000), 1) // different segment
	hitRead := c.SubmitRead(lineForBank(0, 0), 2)     // same segment as first
	c.WaitRead(first)
	dHit, dMiss := c.WaitRead(hitRead), c.WaitRead(missRead)
	if dHit >= dMiss {
		t.Errorf("FR-FCFS did not prefer the row hit: hit done %d, miss done %d", dHit, dMiss)
	}
	// Under plain FCFS the older miss goes first.
	k2 := &sim.Kernel{}
	c2 := New(k2, config.Default().Memory, policy.Norm())
	f := c2.SubmitRead(lineForBank(0, 1), 0)
	m := c2.SubmitRead(lineForBank(0, 5000), 1)
	h := c2.SubmitRead(lineForBank(0, 0), 2)
	c2.WaitRead(f)
	if c2.WaitRead(h) <= c2.WaitRead(m) {
		t.Error("FCFS served the younger request first")
	}
}
