package mem

import (
	"testing"
	"testing/quick"

	"mellow/internal/config"
	"mellow/internal/policy"
	"mellow/internal/rng"
	"mellow/internal/sim"
)

// TestQuickRandomSoup throws randomized request mixes at the controller
// under every policy family and checks global invariants:
//
//   - every read completes,
//   - every accepted demand write eventually completes exactly once,
//   - queue depths never exceed their configured capacities (plus the
//     one transient slot a cancelled write reclaims),
//   - wear attempts are at least completed writes,
//   - the memory clock never runs backwards.
func TestQuickRandomSoup(t *testing.T) {
	policies := []policy.Spec{
		policy.Norm(),
		policy.Slow(),
		policy.Norm().WithNC(),
		policy.BMellow().WithSC(),
		policy.BEMellow().WithSC(),
		policy.BEMellow().WithSC().WithWQ(),
		policy.BEMellow().WithSC().WithML(),
		policy.BEMellow().WithWP(),
		policy.Slow().WithSC().WithWP(),
		policy.ESlow().WithSC(),
	}
	f := func(seed uint64, pick uint8) bool {
		spec := policies[int(pick)%len(policies)]
		src := rng.New(seed)
		k := &sim.Kernel{}
		c := New(k, config.Default().Memory, spec)
		eagerN := 0
		c.SetEagerSource(func() (uint64, bool) {
			if !src.Bool(0.3) {
				return 0, false
			}
			eagerN++
			return src.Uintn(1 << 20), true
		})
		var reads []*Request
		prev := k.Now()
		for i := 0; i < 400; i++ {
			line := src.Uintn(1 << 12) // small space: plenty of conflicts
			switch {
			case src.Bool(0.45):
				reads = append(reads, c.SubmitRead(line, k.Now()))
			default:
				c.SubmitWrite(line, k.Now())
			}
			if src.Bool(0.2) {
				k.AdvanceTo(k.Now() + sim.Tick(src.Uintn(2000)))
			}
			if k.Now() < prev {
				return false
			}
			prev = k.Now()
			// Queue caps hold up to cancellation re-queues: every bank
			// can have at most one in-flight write bounced back.
			r, w, e := c.QueueDepths()
			cfg := config.Default().Memory
			banks := cfg.Banks()
			if r > cfg.ReadQueue || w > cfg.WriteQueue+banks || e > cfg.EagerQueue+banks {
				return false
			}
		}
		for _, r := range reads {
			c.WaitRead(r)
			if !r.Done() {
				return false
			}
		}
		// Let the rest drain.
		k.AdvanceTo(k.Now() + sim.NS(3_000_000))
		s := c.Snapshot()
		if _, w, _ := c.QueueDepths(); w != 0 {
			return false
		}
		// Every accepted write completes exactly once (coalesced requests
		// were merged, never enqueued).
		if s.WritesDone != s.WriteQueued {
			return false
		}
		// Attempts include cancellations; never fewer than completions.
		var attempts uint64
		for b := 0; b < config.Default().Memory.Banks(); b++ {
			attempts += c.Meter(b).TotalAttempts()
		}
		return attempts >= s.TotalWrites()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickReadsAlwaysComplete drives dependent read chains against
// heavy write pressure: no read may hang, under any policy.
func TestQuickReadsAlwaysComplete(t *testing.T) {
	f := func(seed uint64, cancellable bool) bool {
		spec := policy.Slow()
		if cancellable {
			spec = spec.WithSC()
		}
		src := rng.New(seed)
		k := &sim.Kernel{}
		c := New(k, config.Default().Memory, spec)
		for i := 0; i < 100; i++ {
			// Saturate one bank with writes, then read from it.
			bank := src.Uintn(16)
			for j := 0; j < 5; j++ {
				c.SubmitWrite(bank|src.Uintn(1<<10)<<4, k.Now())
			}
			r := c.SubmitRead(bank|src.Uintn(1<<10)<<4, k.Now())
			done := c.WaitRead(r)
			if !r.Done() || done < r.arrive {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
