package mem

import (
	"testing"

	"mellow/internal/config"
	"mellow/internal/nvm"
	"mellow/internal/policy"
	"mellow/internal/sim"
)

func TestWritePausingSuspendsAndResumes(t *testing.T) {
	_, c := newCtl(policy.Slow().WithWP())
	c.SubmitWrite(lineForBank(7, 1), 0)
	c.AdvanceTo(sim.NS(100)) // 450 ns pulse under way
	r := c.SubmitRead(lineForBank(7, 2), sim.NS(100))
	done := c.WaitRead(r)
	// The pause frees the bank almost immediately.
	if done.Nanoseconds() > 300 {
		t.Errorf("read done at %v ns; pause did not free the bank", done.Nanoseconds())
	}
	c.AdvanceTo(sim.NS(100000))
	s := c.Snapshot()
	if s.Pauses != 1 {
		t.Errorf("pauses = %d, want 1", s.Pauses)
	}
	if s.Cancellations != 0 {
		t.Errorf("cancellations = %d, want 0 (pausing, not cancelling)", s.Cancellations)
	}
	// The write completed exactly once, with a single wear record.
	if s.WritesByMode[nvm.WriteSlow30] != 1 {
		t.Errorf("writes = %v", s.WritesByMode)
	}
	if got := c.Meter(7).Snapshot().TotalAttempts(); got != 1 {
		t.Errorf("wear attempts = %d, want 1 (pause redoes no work)", got)
	}
}

func TestPausingCheaperThanCancellation(t *testing.T) {
	// Under identical traffic, +WP must wear the memory no more than +SC
	// (a cancelled pulse's partial work is wasted; a paused one is kept).
	run := func(spec policy.Spec) (damage float64, completed uint64) {
		k, c := newCtl(spec)
		for i := 0; i < 60; i++ {
			c.SubmitWrite(lineForBank(3, i+1), k.Now())
			c.AdvanceTo(k.Now() + sim.NS(120))
			r := c.SubmitRead(lineForBank(3, 1000+i), k.Now())
			c.WaitRead(r)
			c.AdvanceTo(k.Now() + sim.NS(200))
		}
		k.AdvanceTo(k.Now() + sim.NS(200000))
		s := c.Snapshot()
		return c.Meter(3).Damage(), s.TotalWrites()
	}
	scDamage, scDone := run(policy.Slow().WithSC())
	wpDamage, wpDone := run(policy.Slow().WithWP())
	if scDone != wpDone {
		t.Fatalf("completed writes differ: SC %d vs WP %d", scDone, wpDone)
	}
	if wpDamage > scDamage {
		t.Errorf("pausing wore more than cancelling: %v vs %v", wpDamage, scDamage)
	}
}

func TestPauseTakesPrecedenceOverCancel(t *testing.T) {
	_, c := newCtl(policy.Slow().WithSC().WithWP())
	c.SubmitWrite(lineForBank(5, 1), 0)
	c.AdvanceTo(sim.NS(150))
	r := c.SubmitRead(lineForBank(5, 2), sim.NS(150))
	c.WaitRead(r)
	c.AdvanceTo(sim.NS(50000))
	s := c.Snapshot()
	if s.Pauses != 1 || s.Cancellations != 0 {
		t.Errorf("pauses=%d cancels=%d, want pause to win", s.Pauses, s.Cancellations)
	}
}

func TestPausedWriteKeepsMode(t *testing.T) {
	// A bank-aware slow write paused mid-pulse must resume slow even if
	// the queue has meanwhile filled with more writes (which would have
	// graded a fresh decision to normal).
	k, c := newCtl(policy.BMellow().WithWP())
	c.SubmitWrite(lineForBank(2, 1), 0) // sole write: issues slow
	c.AdvanceTo(sim.NS(100))
	r := c.SubmitRead(lineForBank(2, 50), sim.NS(100)) // pauses it
	c.WaitRead(r)
	c.SubmitWrite(lineForBank(2, 2), k.Now()) // competition arrives
	k.AdvanceTo(k.Now() + sim.NS(100000))
	s := c.Snapshot()
	if s.WritesByMode[nvm.WriteSlow30] < 1 {
		t.Errorf("resumed write lost its slow mode: %v", s.WritesByMode)
	}
}

func TestPausingDisabledDuringDrain(t *testing.T) {
	_, c := newCtl(policy.Norm().WithWP())
	for i := 0; i < 32; i++ {
		c.SubmitWrite(lineForBank(0, i+1), 0)
	}
	if !c.Draining() {
		t.Fatal("expected drain")
	}
	c.AdvanceTo(sim.NS(300))
	// A read during the drain must not pause the draining write.
	r := c.SubmitRead(lineForBank(0, 99), c.Now())
	c.WaitRead(r)
	if s := c.Snapshot(); s.Pauses != 0 {
		t.Errorf("pauses during drain = %d, want 0", s.Pauses)
	}
}

func TestPauseParse(t *testing.T) {
	spec, err := policy.Parse("BE-Mellow+SC+WP+WQ")
	if err != nil {
		t.Fatal(err)
	}
	if !spec.Pausable || spec.Name != "BE-Mellow+SC+WP+WQ" {
		t.Errorf("parsed: %+v", spec)
	}
	// Pausing composes with the default memory config.
	if err := config.Default().Validate(); err != nil {
		t.Fatal(err)
	}
}
