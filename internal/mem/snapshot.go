package mem

import (
	"encoding/json"
	"fmt"
	"math"

	"mellow/internal/energy"
	"mellow/internal/metrics"
	"mellow/internal/nvm"
	"mellow/internal/policy"
	"mellow/internal/sim"
	"mellow/internal/stats"
	"mellow/internal/wear"
)

// Snapshot is the controller's measurement view over the window since
// the last ResetStats.
type Snapshot struct {
	Counters
	// Window is the measurement window length.
	Window sim.Tick
	// WritesByMode / CancelledByMode aggregate bank write traffic.
	WritesByMode    [4]uint64
	CancelledByMode [4]uint64
	// GapMoves counts wear-leveling migration writes (gap moves under
	// Start-Gap; copy writes under the other Leveler backends).
	GapMoves uint64
	// BankAttempts is every request a bank serviced or started: reads,
	// completed writes, cancelled attempts and migrations (Figure 15).
	BankAttempts uint64
	// EnergyPJ is total main-memory energy over the window (Figure 16);
	// Energy carries the per-class breakdown.
	EnergyPJ float64
	Energy   energy.Breakdown
	// DrainFraction is time spent in write-drain mode (Figure 13).
	DrainFraction float64
	// ReadLatency is the distribution of bank-serviced read latencies
	// (arrival to data return), in nanoseconds. Forwarded reads are
	// excluded.
	ReadLatency stats.Histogram
	// BankUtilization per bank, and the average (Figures 3, 12, 18b).
	BankUtilization []float64
	AvgUtilization  float64
	// LifetimeYears is the §V lifetime: min over banks, the active
	// leveler's efficiency applied, assuming the workload repeats
	// (Figures 2, 11).
	LifetimeYears float64
	// MaxBankDamage is the worst bank's damage (normal-write units).
	MaxBankDamage float64
}

// MarshalJSON encodes the snapshot for the API. A window with no
// completed writes projects an infinite lifetime, which JSON cannot
// carry as a number; it is encoded as null.
func (s Snapshot) MarshalJSON() ([]byte, error) {
	type plain Snapshot
	w := struct {
		plain
		LifetimeYears any `json:"LifetimeYears"`
	}{plain: plain(s), LifetimeYears: s.LifetimeYears}
	if math.IsInf(s.LifetimeYears, 0) || math.IsNaN(s.LifetimeYears) {
		w.LifetimeYears = nil
	}
	return json.Marshal(w)
}

// UnmarshalJSON decodes the wire form; a null lifetime is +Inf.
func (s *Snapshot) UnmarshalJSON(b []byte) error {
	type plain Snapshot
	w := struct {
		*plain
		LifetimeYears *float64 `json:"LifetimeYears"`
	}{plain: (*plain)(s)}
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	if w.LifetimeYears != nil {
		s.LifetimeYears = *w.LifetimeYears
	} else {
		s.LifetimeYears = math.Inf(1)
	}
	return nil
}

// TotalWrites returns completed demand+eager writes across modes.
func (s Snapshot) TotalWrites() uint64 {
	var n uint64
	for _, v := range s.WritesByMode {
		n += v
	}
	return n
}

// SlowWrites returns completed slow-mode writes.
func (s Snapshot) SlowWrites() uint64 {
	var n uint64
	for i := 1; i < len(s.WritesByMode); i++ {
		n += s.WritesByMode[i]
	}
	return n
}

// TotalCancelled returns aborted write attempts.
func (s Snapshot) TotalCancelled() uint64 {
	var n uint64
	for _, v := range s.CancelledByMode {
		n += v
	}
	return n
}

// meterBase holds the per-bank wear baseline captured at ResetStats.
type meterBase []wear.MeterSnapshot

// Snapshot captures measurements at the current memory clock.
func (c *Controller) Snapshot() Snapshot {
	now := c.k.Now()
	s := Snapshot{
		Counters: c.counts,
		Window:   now - c.statsStart,
		Energy:   c.energy.Sub(c.energyBase),
	}
	s.EnergyPJ = s.Energy.TotalPJ()
	s.DrainFraction = c.drainMeter.Fraction(now)
	s.ReadLatency = c.readLat.Sub(c.readLatBase)
	s.BankUtilization = make([]float64, len(c.banks))
	sum := 0.0
	maxDamage := 0.0
	lifetime := 0.0
	first := true
	for b := range c.banks {
		u := c.banks[b].busy.Utilization(now)
		s.BankUtilization[b] = u
		sum += u
		d := c.meters[b].Snapshot().Sub(c.base[b])
		for m := range d.Writes {
			s.WritesByMode[m] += d.Writes[m]
			s.CancelledByMode[m] += d.Cancelled[m]
		}
		s.GapMoves += d.GapWrites
		s.BankAttempts += d.TotalAttempts()
		if d.Damage > maxDamage {
			maxDamage = d.Damage
		}
		y := wear.LifetimeYears(d.Damage, c.blocksPerBank, c.cfg.Device.BaseEndurance,
			c.levelEff, s.Window)
		if first || y < lifetime {
			lifetime = y
			first = false
		}
	}
	s.BankAttempts += c.counts.Reads
	s.AvgUtilization = sum / float64(len(c.banks))
	s.MaxBankDamage = maxDamage
	s.LifetimeYears = lifetime
	return s
}

// ResetStats starts a fresh measurement window (end of warmup). Wear
// quota state and cache/bank contents are preserved; only measurements
// reset.
func (c *Controller) ResetStats() {
	now := c.k.Now()
	c.statsStart = now
	c.counts = Counters{}
	c.energyBase = c.energy
	c.readLatBase = c.readLat
	c.drainMeter.Reset(now)
	if c.base == nil {
		c.base = make(meterBase, len(c.banks))
	}
	for b := range c.banks {
		c.banks[b].busy.Reset(now)
		c.base[b] = c.meters[b].Snapshot()
	}
}

// ProbeCounters is the controller's cumulative traffic-and-wear view,
// cheap enough to snapshot from an epoch probe: counter copies plus one
// pass over the (typically 16) banks, with no queue walks and no
// mutation of simulation state.
type ProbeCounters struct {
	Counters
	// WritesFast / WritesSlow split completed writes by pulse speed
	// (normal vs any slow mode), cumulative since the last ResetStats'
	// epoch base — the engine diffs consecutive snapshots.
	WritesFast uint64
	WritesSlow uint64
	// BankDamage is cumulative per-bank wear in normal-write units
	// (never reset: Wear Quota needs damage from time zero).
	BankDamage []float64
	// MaxBankDamage is the worst entry of BankDamage.
	MaxBankDamage float64
	// Queue occupancy and drain mode at the probe instant.
	ReadQueue  int
	WriteQueue int
	EagerQueue int
	Draining   bool
}

// ProbeCounters snapshots the controller for an epoch probe.
func (c *Controller) ProbeCounters() ProbeCounters {
	p := ProbeCounters{
		Counters:   c.counts,
		BankDamage: make([]float64, len(c.banks)),
		ReadQueue:  c.readQ.size,
		WriteQueue: c.writeQ.size,
		EagerQueue: c.eagerQ.size,
		Draining:   c.draining,
	}
	for b := range c.banks {
		m := c.meters[b]
		d := m.Damage()
		p.BankDamage[b] = d
		if d > p.MaxBankDamage {
			p.MaxBankDamage = d
		}
		p.WritesFast += m.TotalCompleted() - m.SlowCompleted()
		p.WritesSlow += m.SlowCompleted()
	}
	return p
}

// Delta returns the monotone counters accumulated since prev; the
// instantaneous fields (queues, drain mode, damage) keep p's values.
func (p ProbeCounters) Delta(prev ProbeCounters) ProbeCounters {
	d := p
	d.Reads -= prev.Reads
	d.RowHits -= prev.RowHits
	d.RowMisses -= prev.RowMisses
	d.Forwarded -= prev.Forwarded
	d.WriteQueued -= prev.WriteQueued
	d.EagerQueued -= prev.EagerQueued
	d.Coalesced -= prev.Coalesced
	d.WritesDone -= prev.WritesDone
	d.EagerDone -= prev.EagerDone
	d.Cancellations -= prev.Cancellations
	d.Pauses -= prev.Pauses
	d.Drains -= prev.Drains
	d.WritesFast -= prev.WritesFast
	d.WritesSlow -= prev.WritesSlow
	return d
}

// CollectMetrics publishes the controller's counters, queue occupancy,
// read-latency distribution and per-bank wear (via the wear meters)
// into a per-run metrics registry. Read-only: plain field reads plus
// one pass over the banks, exactly like ProbeCounters — collecting can
// never perturb event order.
func (c *Controller) CollectMetrics(g *metrics.Gatherer) {
	g.Counter("sim_mem_reads_total", "Reads serviced by banks.", c.counts.Reads)
	g.Counter("sim_mem_row_hits_total", "Row-buffer hits.", c.counts.RowHits)
	g.Counter("sim_mem_row_misses_total", "Row-buffer misses.", c.counts.RowMisses)
	g.Counter("sim_mem_forwarded_total", "Reads served from queued write data.", c.counts.Forwarded)
	g.Counter("sim_mem_write_queued_total", "Write-backs accepted into the write queue.", c.counts.WriteQueued)
	g.Counter("sim_mem_eager_queued_total", "Eager write-backs accepted.", c.counts.EagerQueued)
	g.Counter("sim_mem_coalesced_total", "Write-backs merged into an existing queue entry.", c.counts.Coalesced)
	g.Counter("sim_mem_writes_done_total", "Demand writes completed.", c.counts.WritesDone)
	g.Counter("sim_mem_eager_done_total", "Eager writes completed.", c.counts.EagerDone)
	g.Counter("sim_mem_cancellations_total", "Write attempts aborted by write cancellation.", c.counts.Cancellations)
	g.Counter("sim_mem_pauses_total", "Write pulses suspended by reads (write pausing).", c.counts.Pauses)
	g.Counter("sim_mem_drains_total", "Write drain-mode entries.", c.counts.Drains)

	var modes [4]uint64
	var cancelled [4]uint64
	for b := range c.banks {
		m := c.meters[b]
		for i := range modes {
			modes[i] += m.Writes(nvm.WriteMode(i))
			cancelled[i] += m.Cancelled(nvm.WriteMode(i))
		}
	}
	for i := range modes {
		mode := fmt.Sprintf("%dx", 1<<uint(i))
		g.CounterL("sim_mem_writes_by_mode_total", "Completed writes by pulse slowdown.", "mode", mode, modes[i])
		g.CounterL("sim_mem_cancelled_by_mode_total", "Aborted write attempts by pulse slowdown.", "mode", mode, cancelled[i])
	}

	g.GaugeL("sim_mem_queue_depth", "Controller queue occupancy.", "queue", "eager", float64(c.eagerQ.size))
	g.GaugeL("sim_mem_queue_depth", "Controller queue occupancy.", "queue", "read", float64(c.readQ.size))
	g.GaugeL("sim_mem_queue_depth", "Controller queue occupancy.", "queue", "write", float64(c.writeQ.size))
	draining := 0.0
	if c.draining {
		draining = 1
	}
	g.Gauge("sim_mem_draining", "Whether the controller is in write-drain mode (0/1).", draining)
	g.Histogram("sim_mem_read_latency_seconds",
		"Bank-serviced read latency (arrival to data return).", 1e-9, c.readLat)

	wear.CollectMeters(g, c.meters)
	wear.CollectLevelers(g, c.levs)
}

// QueueDepths reports current queue occupancy (tests, debugging).
func (c *Controller) QueueDepths() (read, write, eager int) {
	return c.readQ.size, c.writeQ.size, c.eagerQ.size
}

// Draining reports whether the controller is in write-drain mode.
func (c *Controller) Draining() bool { return c.draining }

// Quota exposes a bank's quota state (tests).
func (c *Controller) Quota(bank int) *wear.Quota { return c.quotas[bank] }

// Meter exposes a bank's wear meter (tests).
func (c *Controller) Meter(bank int) *wear.Meter { return c.meters[bank] }

// Leveler exposes a bank's wear-leveling backend (tests).
func (c *Controller) Leveler(bank int) wear.Leveler { return c.levs[bank] }

// Spec returns the active policy (a value copy).
func (c *Controller) Spec() policy.Spec { return c.spec }

// Device returns the device model in use.
func (c *Controller) Device() nvm.Device { return c.cfg.Device }
