package mem

import (
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"

	"mellow/internal/sim"
)

// sampleSnapshot builds a snapshot with every JSON-visible field
// populated, so a round trip exercises more than zero values.
func sampleSnapshot(lifetime float64) Snapshot {
	s := Snapshot{
		Counters: Counters{
			Reads: 120, RowHits: 40, RowMisses: 80, Forwarded: 3,
			WriteQueued: 55, EagerQueued: 9, Coalesced: 2,
			WritesDone: 50, EagerDone: 7, Cancellations: 4, Pauses: 6, Drains: 1,
		},
		Window:          sim.Tick(1_000_000),
		WritesByMode:    [4]uint64{30, 10, 5, 5},
		CancelledByMode: [4]uint64{2, 1, 1, 0},
		GapMoves:        11,
		BankAttempts:    400,
		EnergyPJ:        123456.75,
		DrainFraction:   0.125,
		BankUtilization: []float64{0.5, 0.25},
		AvgUtilization:  0.375,
		LifetimeYears:   lifetime,
		MaxBankDamage:   42.5,
	}
	return s
}

// TestSnapshotJSONRoundTrip checks the codec reproduces a finite
// snapshot exactly.
func TestSnapshotJSONRoundTrip(t *testing.T) {
	want := sampleSnapshot(17.25)
	b, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	var got Snapshot
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("round trip changed the snapshot:\nwant %+v\ngot  %+v", want, got)
	}
}

// TestSnapshotInfiniteLifetimeJSON checks the infinite-lifetime mapping:
// a window with no completed writes projects LifetimeYears = +Inf, which
// JSON cannot carry as a number — it is encoded as null and decoded back
// to +Inf.
func TestSnapshotInfiniteLifetimeJSON(t *testing.T) {
	for _, lifetime := range []float64{math.Inf(1), math.NaN()} {
		b, err := json.Marshal(sampleSnapshot(lifetime))
		if err != nil {
			t.Fatalf("lifetime %v: %v", lifetime, err)
		}
		if !strings.Contains(string(b), `"LifetimeYears":null`) {
			t.Fatalf("lifetime %v not encoded as null: %s", lifetime, b)
		}
		var got Snapshot
		if err := json.Unmarshal(b, &got); err != nil {
			t.Fatal(err)
		}
		if !math.IsInf(got.LifetimeYears, 1) {
			t.Errorf("lifetime %v decoded to %v, want +Inf", lifetime, got.LifetimeYears)
		}
	}

	// An explicit null also decodes to +Inf.
	var got Snapshot
	if err := json.Unmarshal([]byte(`{"LifetimeYears":null}`), &got); err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(got.LifetimeYears, 1) {
		t.Errorf("null lifetime decoded to %v, want +Inf", got.LifetimeYears)
	}

	// A finite lifetime stays a number on the wire.
	b, err := json.Marshal(sampleSnapshot(5.5))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"LifetimeYears":5.5`) {
		t.Fatalf("finite lifetime not encoded as a number: %s", b)
	}
}
