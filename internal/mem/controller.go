package mem

import (
	"math/bits"

	"mellow/internal/config"
	"mellow/internal/energy"
	"mellow/internal/nvm"
	"mellow/internal/policy"
	"mellow/internal/sim"
	"mellow/internal/stats"
	"mellow/internal/wear"
	"mellow/internal/xtrace"
)

// eagerPumpInterval is how often the controller lets the LLC refill the
// Eager Mellow Queue. The paper allows one candidate per idle LLC cycle;
// topping the 16-entry queue up every 10 memory cycles (25 ns) is an
// equivalent but event-efficient rate (a slow write takes 450 ns).
const eagerPumpInterval = 10 * sim.MemCycle

// forwardLatency is the controller-internal latency of serving a read
// straight from a queued write's data (write-to-read forwarding).
const forwardLatency = 2 * sim.MemCycle

// cancelPenalty is the bank recovery time after an aborted write pulse.
const cancelPenalty = sim.MemCycle

// resumePenalty is the extra pulse time a paused write pays when it
// resumes (re-ramping the write drivers).
const resumePenalty = sim.MemCycle

// EagerSource supplies eager write-back candidates (the LLC). It returns
// a line address, or ok=false when no useless dirty line is available.
type EagerSource func() (line uint64, ok bool)

// Controller event opcodes. All controller events go through one typed
// sim.Handler (the controller itself) so the kernel never allocates a
// closure per event: the payload word a packs opcode, bank and issue
// generation, and b carries the request's arena index.
const (
	opSched    = iota // run trySchedule for a bank
	opComplete        // finish the bank's current operation
	opReadDone        // a read's data burst arrived
	opPump            // refill the Eager Mellow Queue
	opQuota           // close a Wear Quota sample period
)

// evWord packs an event payload: opcode in bits 0..7, bank in bits
// 8..31, issue generation in bits 32..63.
func evWord(op, bank, gen int) uint64 {
	return uint64(op) | uint64(bank)<<8 | uint64(gen)<<32
}

// bankState is the per-bank timing and row-buffer state.
type bankState struct {
	cur            *Request
	curCancellable bool
	curPausable    bool
	curStart       sim.Tick
	freeAt         sim.Tick
	openValid      bool
	openTag        uint64
	busy           stats.BusyMeter

	// wakeAt is the bank's precomputed next-wakeup tick: the tick of the
	// pending opSched event when wakeSet. Duplicate same-tick wakeups are
	// suppressed at the source, so an idle bank costs nothing — no event
	// traffic, no scans.
	wakeAt  sim.Tick
	wakeSet bool
}

// Controller is the resistive-memory controller. It is single-threaded
// and driven by the simulation kernel it is given.
type Controller struct {
	k    *sim.Kernel
	cfg  config.Memory
	spec policy.Spec
	em   nvm.EnergyModel

	banks         []bankState
	bankMask      uint64
	bankBits      uint
	linesPerBuf   uint64
	blocksPerBank int64

	arena                 reqArena
	readQ, writeQ, eagerQ reqQueue

	draining   bool
	drainMeter stats.Toggle
	busFree    []sim.Tick    // per-channel data-bus occupancy
	rankAct    [][4]sim.Tick // per-rank ring of last 4 activates (tFAW)
	rankActIdx []int
	rankActN   []int // activations recorded, saturating at 4

	meters []*wear.Meter
	quotas []*wear.Quota
	levs   []wear.Leveler

	// levelEff and remapName are precomputed from the leveling backend:
	// the §V lifetime efficiency, and the trace-instant name so remap
	// hooks never format on the hot path.
	levelEff  float64
	remapName string

	eagerSource EagerSource

	// trace, when non-nil, receives the per-bank execution timeline.
	// Hooks cost one nil check when disabled and only ever append to
	// the recorder, so a traced run stays bit-identical to an untraced
	// one.
	trace      *xtrace.Recorder
	drainStart sim.Tick

	statsStart  sim.Tick
	energy      energy.Breakdown
	energyBase  energy.Breakdown
	readLat     stats.Histogram
	readLatBase stats.Histogram
	counts      Counters
	base        meterBase
}

// Counters are the monotonically increasing event counts of the
// controller (since the last ResetStats).
type Counters struct {
	Reads         uint64 // reads serviced by banks
	RowHits       uint64
	RowMisses     uint64
	Forwarded     uint64 // reads served from queued write data
	WriteQueued   uint64 // write-backs accepted into the write queue
	EagerQueued   uint64 // eager write-backs accepted
	Coalesced     uint64 // write-backs merged into an existing entry
	WritesDone    uint64 // demand writes completed (write queue)
	EagerDone     uint64 // eager writes completed
	Cancellations uint64
	Pauses        uint64 // write pulses suspended by reads (+WP)
	Drains        uint64 // drain-mode entries
}

// New wires a controller to a kernel for the given configuration and
// policy.
func New(k *sim.Kernel, cfg config.Memory, spec policy.Spec) *Controller {
	nb := cfg.Banks()
	c := &Controller{
		k:             k,
		cfg:           cfg,
		spec:          spec,
		em:            nvm.EnergyModel{Cell: cfg.Cell},
		banks:         make([]bankState, nb),
		bankMask:      uint64(nb - 1),
		bankBits:      uint(bits.TrailingZeros(uint(nb))),
		linesPerBuf:   uint64(cfg.RowBufferBytes / config.LineBytes),
		blocksPerBank: cfg.BlocksPerBank(),
		busFree:       make([]sim.Tick, cfg.Channels),
		rankAct:       make([][4]sim.Tick, cfg.TotalRanks()),
		rankActIdx:    make([]int, cfg.TotalRanks()),
		rankActN:      make([]int, cfg.TotalRanks()),
	}
	c.readQ.init(nb)
	c.writeQ.init(nb)
	c.eagerQ.init(nb)
	c.meters = make([]*wear.Meter, nb)
	c.quotas = make([]*wear.Quota, nb)
	c.levs = make([]wear.Leveler, nb)
	for b := 0; b < nb; b++ {
		c.meters[b] = &wear.Meter{}
		c.quotas[b] = wear.NewQuota(c.blocksPerBank, cfg.Device.BaseEndurance,
			spec.QuotaPeriod, spec.TargetLifetime, spec.QuotaRatio)
		// The seed keeps randomized backends (WoLFRaM) deterministic per
		// bank while decorrelating banks from each other.
		lv, err := wear.NewLeveler(wear.LevelerConfig{
			Backend:             cfg.WearLeveler,
			Blocks:              c.blocksPerBank,
			Seed:                uint64(b),
			StartGapPsi:         cfg.StartGapPsi,
			StartGapEfficiency:  cfg.StartGapEfficiency,
			WolframSwapPeriod:   cfg.WolframSwapPeriod,
			SoftWearPageBlocks:  cfg.SoftWearPageBlocks,
			SoftWearEpochWrites: cfg.SoftWearEpochWrites,
		})
		if err != nil {
			// Validate() checks every leveler parameter, so this is a
			// programming error, not a configuration one.
			panic("mem: " + err.Error())
		}
		c.levs[b] = lv
	}
	c.levelEff = c.levs[0].Efficiency()
	c.remapName = "remap: " + c.levs[0].Name()
	if spec.WearQuota {
		// Housekeeping timer: it must not keep Drain() alive, so it is a
		// daemon event.
		c.k.AfterDaemonEvent(spec.QuotaPeriod, c, evWord(opQuota, 0, 0), 0)
		// Period 0 starts immediately with zero history.
		for _, q := range c.quotas {
			q.StartPeriod(0)
		}
	}
	c.ResetStats()
	return c
}

// SetEagerSource installs the LLC candidate callback and starts the
// eager pump. Must be called before simulation when the policy has
// Eager enabled.
func (c *Controller) SetEagerSource(src EagerSource) {
	c.eagerSource = src
	if c.spec.Eager {
		c.k.AfterDaemonEvent(eagerPumpInterval, c, evWord(opPump, 0, 0), 0)
	}
}

// SetTrace attaches (or detaches, nil) the execution-timeline
// recorder. The engine installs it before a traced run starts.
func (c *Controller) SetTrace(r *xtrace.Recorder) { c.trace = r }

// OnEvent dispatches the controller's typed kernel events (sim.Handler).
func (c *Controller) OnEvent(now sim.Tick, a, b uint64) {
	op := int(a & 0xff)
	bank := int(a >> 8 & 0xffffff)
	switch op {
	case opSched:
		bs := &c.banks[bank]
		if bs.wakeSet && bs.wakeAt == now {
			bs.wakeSet = false
		}
		c.trySchedule(bank, now)
	case opComplete:
		c.completeBankOp(bank, c.arena.at(uint32(b)), int(a>>32), now)
	case opReadDone:
		r := c.arena.at(uint32(b))
		r.done = true
		r.doneAt = now
		c.readLat.Add(uint64((now - r.arrive) / sim.TicksPerNS))
	case opPump:
		c.eagerPump(now)
	case opQuota:
		c.quotaTick(now)
	}
}

// Timeline slice names by write mode, precomputed so the trace hooks
// never format on the hot path.
var (
	writeSliceName = [4]string{"fast write", "slow write 1.5x", "slow write 2.0x", "slow write 3.0x"}
	eagerSliceName = [4]string{"eager write", "eager write 1.5x", "eager write 2.0x", "eager write 3.0x"}
)

// traceOp records one finished bank operation on its bank track.
func (c *Controller) traceOp(r *Request, start, end sim.Tick) {
	if c.trace == nil {
		return
	}
	name := "read"
	switch r.Kind {
	case KindWrite:
		name = writeSliceName[r.mode]
	case KindEager:
		name = eagerSliceName[r.mode]
	}
	c.trace.Slice(xtrace.BankTrack(r.Bank), name, r.Kind.String(),
		start, end, r.Line, uint64(r.attempts))
}

// quotaTick closes a Wear Quota sample period on every bank (§IV-C).
func (c *Controller) quotaTick(now sim.Tick) {
	for b := range c.quotas {
		flipped := c.quotas[b].StartPeriod(c.meters[b].Damage())
		if flipped && c.trace != nil {
			name := "quota: fast writes restored"
			if c.quotas[b].Exceeded() {
				name = "quota exceeded: slow-only"
			}
			c.trace.Instant(xtrace.BankTrack(b), name, "quota", now,
				0, c.quotas[b].Periods())
		}
	}
	c.k.AfterDaemonEvent(c.spec.QuotaPeriod, c, evWord(opQuota, 0, 0), 0)
}

// eagerPump tops the Eager Mellow Queue up from the LLC.
func (c *Controller) eagerPump(now sim.Tick) {
	for c.eagerQ.size < c.cfg.EagerQueue {
		line, ok := c.eagerSource()
		if !ok {
			break
		}
		bank := int(line & c.bankMask)
		if c.eagerQ.find(bank, line) != nil || c.writeQ.find(bank, line) != nil {
			continue
		}
		r := c.newRequest(KindEager, line, now)
		c.eagerQ.pushBack(r)
		c.counts.EagerQueued++
		c.wake(r.Bank, now)
	}
	c.k.AfterDaemonEvent(eagerPumpInterval, c, evWord(opPump, 0, 0), 0)
}

// mapLine decomposes a line address into bank and row-buffer tag after
// wear-leveling remapping within the bank.
func (c *Controller) mapLine(line uint64) (bank int, bufTag uint64) {
	bank = int(line & c.bankMask)
	inBank := int64(line>>c.bankBits) % c.blocksPerBank
	phys := c.levs[bank].Map(inBank)
	return bank, uint64(phys) / c.linesPerBuf
}

// newRequest fills a fresh arena slot; the hot path allocates nothing.
func (c *Controller) newRequest(kind Kind, line uint64, now sim.Tick) *Request {
	bank, tag := c.mapLine(line)
	r := c.arena.alloc()
	r.Kind, r.Line, r.Bank, r.bufTag, r.arrive = kind, line, bank, tag, now
	return r
}

// rank returns the global rank a bank belongs to.
func (c *Controller) rank(bank int) int { return bank / c.cfg.BanksPerRank }

// channel returns the channel a bank's data bus belongs to. Banks are
// line-interleaved, so adjacent lines alternate channels first.
func (c *Controller) channel(bank int) int { return bank % c.cfg.Channels }

// AdvanceTo lets the memory system run up to time t (e.g. while the core
// computes without missing).
func (c *Controller) AdvanceTo(t sim.Tick) { c.k.AdvanceTo(t) }

// Now returns the memory-system clock.
func (c *Controller) Now() sim.Tick { return c.k.Now() }

// SubmitRead enqueues a demand read at time t (clamped to the memory
// clock). If the read queue is full, the submission blocks (in simulated
// time) until space frees. The returned request completes when Done().
func (c *Controller) SubmitRead(line uint64, t sim.Tick) *Request {
	c.advanceToAtLeast(t)
	bank := int(line & c.bankMask)
	// Write-to-read forwarding: a queued or in-flight write to the same
	// line has the data.
	if r := c.writeQ.find(bank, line); r != nil {
		return c.forward(r)
	}
	if r := c.eagerQ.find(bank, line); r != nil {
		return c.forward(r)
	}
	for b := range c.banks {
		if cur := c.banks[b].cur; cur != nil && cur.Kind != KindRead && cur.Line == line {
			return c.forward(cur)
		}
	}
	for c.readQ.size >= c.cfg.ReadQueue {
		c.waitForProgress(func() bool { return c.readQ.size < c.cfg.ReadQueue })
	}
	now := c.k.Now()
	r := c.newRequest(KindRead, line, now)
	c.readQ.pushBack(r)
	c.maybePreemptForRead(r, now)
	c.wake(r.Bank, now)
	return r
}

// forward completes a read instantly from write data.
func (c *Controller) forward(w *Request) *Request {
	c.counts.Forwarded++
	now := c.k.Now()
	r := c.arena.alloc()
	r.Kind, r.Line, r.Bank = KindRead, w.Line, w.Bank
	r.arrive, r.done, r.doneAt = now, true, now+forwardLatency
	return r
}

// SubmitWrite enqueues an LLC dirty write-back at time t. If the write
// queue is full the submission blocks until space frees (the drain
// machinery guarantees progress). It returns the acceptance time.
func (c *Controller) SubmitWrite(line uint64, t sim.Tick) sim.Tick {
	c.advanceToAtLeast(t)
	bank := int(line & c.bankMask)
	// Coalesce with an already-queued write to the same line.
	if c.writeQ.find(bank, line) != nil {
		c.counts.Coalesced++
		return c.k.Now()
	}
	// A queued eager write to the line is stale relative to this
	// write-back: replace it.
	if e := c.eagerQ.find(bank, line); e != nil {
		c.eagerQ.remove(e)
	}
	for c.writeQ.size >= c.cfg.WriteQueue {
		c.waitForProgress(func() bool { return c.writeQ.size < c.cfg.WriteQueue })
	}
	now := c.k.Now()
	r := c.newRequest(KindWrite, line, now)
	c.writeQ.pushBack(r)
	c.counts.WriteQueued++
	c.updateDrainState(now)
	c.wake(r.Bank, now)
	return now
}

// WaitRead advances simulated time until the read completes.
func (c *Controller) WaitRead(r *Request) sim.Tick {
	if !r.done {
		c.k.AdvanceUntil(func() bool { return r.done })
	}
	return r.doneAt
}

// waitForProgress advances until cond holds, panicking if the event
// queue empties first (which would mean the controller deadlocked).
func (c *Controller) waitForProgress(cond func() bool) {
	if !c.k.AdvanceUntil(cond) {
		panic("mem: controller stalled waiting for queue space")
	}
}

// advanceToAtLeast moves the kernel to t if t is in the future; the core
// may lag slightly behind the memory clock after blocking submissions.
func (c *Controller) advanceToAtLeast(t sim.Tick) {
	if t > c.k.Now() {
		c.k.AdvanceTo(t)
	}
}

// maybePreemptForRead implements the two read-priority mechanisms: write
// pausing (+WP; the pulse suspends and later resumes) and write
// cancellation (§III; the pulse aborts and is redone). Pausing is tried
// first — it wastes no work.
func (c *Controller) maybePreemptForRead(r *Request, now sim.Tick) {
	b := &c.banks[r.Bank]
	if b.cur == nil || b.cur.Kind == KindRead {
		return
	}
	if b.curPausable {
		c.pauseWrite(r.Bank, now)
		return
	}
	if !b.curCancellable {
		return
	}
	w := b.cur
	c.counts.Cancellations++
	// The aborted pulse stressed the cell and dissipated power only for
	// the fraction of the pulse that ran; wear and energy are pro-rated
	// (§III: cancellation's lifetime penalty comes from the multiple
	// partial attempts).
	frac := 0.0
	if now > b.curStart && b.freeAt > b.curStart {
		frac = float64(now-b.curStart) / float64(b.freeAt-b.curStart)
		if frac > 1 {
			frac = 1
		}
	}
	c.meters[r.Bank].RecordCancelled(w.mode, c.cfg.Device.Damage(w.mode)*frac)
	c.energy.AddCancelled(c.em, w.mode, frac)
	b.busy.AddBusy(b.curStart, now)
	if c.trace != nil {
		c.trace.Slice(xtrace.BankTrack(r.Bank), "cancelled write", "cancel",
			b.curStart, now, w.Line, uint64(w.attempts))
	}
	b.cur = nil
	b.freeAt = now + cancelPenalty
	// The write returns to the head of its queue for retry.
	if w.Kind == KindEager {
		c.eagerQ.pushFront(w)
	} else {
		c.writeQ.pushFront(w)
		c.updateDrainState(now)
	}
	// The pending completion event will find bank.cur changed and do
	// nothing; schedule the read opportunity after the penalty.
	c.wake(r.Bank, b.freeAt)
}

// pauseWrite suspends the bank's in-flight write, remembering the pulse
// remainder for the resume. Wear and energy accrue once, at completion.
func (c *Controller) pauseWrite(bank int, now sim.Tick) {
	b := &c.banks[bank]
	w := b.cur
	if b.freeAt <= now {
		return // pulse effectively finished; let the completion event run
	}
	c.counts.Pauses++
	w.remaining = b.freeAt - now
	b.busy.AddBusy(b.curStart, now)
	if c.trace != nil {
		c.trace.Slice(xtrace.BankTrack(bank), "paused write", "pause",
			b.curStart, now, w.Line, uint64(w.attempts))
	}
	b.cur = nil
	b.freeAt = now + cancelPenalty
	if w.Kind == KindEager {
		c.eagerQ.pushFront(w)
	} else {
		c.writeQ.pushFront(w)
		c.updateDrainState(now)
	}
	c.wake(bank, b.freeAt)
}

// updateDrainState flips drain mode per the §VI-C thresholds.
func (c *Controller) updateDrainState(now sim.Tick) {
	if !c.draining && c.writeQ.size >= c.cfg.DrainHigh {
		c.draining = true
		c.counts.Drains++
		c.drainMeter.Set(true, now)
		if c.trace != nil {
			c.drainStart = now
			c.trace.Instant(xtrace.TrackController, "drain start", "drain",
				now, 0, uint64(c.writeQ.size))
		}
	} else if c.draining && c.writeQ.size <= c.cfg.DrainLow {
		c.draining = false
		c.drainMeter.Set(false, now)
		if c.trace != nil {
			c.trace.Slice(xtrace.TrackController, "drain", "drain",
				c.drainStart, now, 0, uint64(c.writeQ.size))
		}
	}
}

// FlushTrace closes any timeline window still open when a traced run
// ends (a drain the run finished inside). The engine calls it once
// after the final drain phase.
func (c *Controller) FlushTrace() {
	if c.trace == nil {
		return
	}
	if c.draining {
		c.trace.Slice(xtrace.TrackController, "drain", "drain",
			c.drainStart, c.k.Now(), 0, uint64(c.writeQ.size))
	}
}

// trySchedule issues the next request for a bank if it is idle.
func (c *Controller) trySchedule(bank int, now sim.Tick) {
	b := &c.banks[bank]
	if b.cur != nil {
		return
	}
	if b.freeAt > now {
		// Bank in post-op recovery; an event at freeAt retries.
		return
	}
	read := c.pickRead(bank)
	write := c.writeQ.oldest(bank)
	switch {
	case c.draining && write != nil:
		c.issueWrite(write, now)
	case read != nil:
		c.issueRead(read, now)
	case write != nil:
		c.issueWrite(write, now)
	default:
		if eager := c.eagerQ.oldest(bank); eager != nil {
			c.issueEager(eager, now)
		}
	}
}

// pickRead chooses the next read for a bank: plain FCFS, or under
// FR-FCFS the oldest row-buffer hit if one exists (first-ready FCFS).
func (c *Controller) pickRead(bank int) *Request {
	if c.cfg.Scheduler != "frfcfs" {
		return c.readQ.oldest(bank)
	}
	b := &c.banks[bank]
	any := c.readQ.oldest(bank)
	if b.openValid {
		for r := any; r != nil; r = r.next {
			if b.openTag == r.bufTag {
				return r
			}
		}
	}
	return any
}

// issueRead starts a read on its (idle) bank.
func (c *Controller) issueRead(r *Request, now sim.Tick) {
	b := &c.banks[r.Bank]
	c.readQ.remove(r)
	start := now
	var access sim.Tick
	if b.openValid && b.openTag == r.bufTag {
		c.counts.RowHits++
		access = c.cfg.TCAS
		c.energy.AddRowHitRead(c.em)
	} else {
		c.counts.RowMisses++
		start = c.activateStart(r.Bank, now)
		access = c.cfg.TRCD + c.cfg.TCAS
		c.energy.AddBufferFill(c.em)
		b.openValid = true
		b.openTag = r.bufTag
	}
	c.counts.Reads++
	burst := sim.Tick(c.cfg.BurstCycles) * sim.MemCycle
	ch := c.channel(r.Bank)
	accessEnd := start + access
	xferStart := accessEnd
	if c.busFree[ch] > xferStart {
		xferStart = c.busFree[ch]
	}
	c.busFree[ch] = xferStart + burst
	doneAt := xferStart + burst

	b.cur = r
	b.curCancellable = false
	b.curStart = start
	b.freeAt = accessEnd
	r.attempts++
	c.k.AtEvent(accessEnd, c, evWord(opComplete, r.Bank, r.attempts), uint64(r.idx))
	c.k.AtEvent(doneAt, c, evWord(opReadDone, 0, 0), uint64(r.idx))
}

// activateStart returns the earliest time a row activation may start in
// the bank's rank, honouring tFAW, and records the activation.
func (c *Controller) activateStart(bank int, now sim.Tick) sim.Tick {
	rk := c.rank(bank)
	idx := c.rankActIdx[rk]
	start := now
	if c.rankActN[rk] >= 4 {
		if oldest := c.rankAct[rk][idx]; oldest+c.cfg.TFAW > start {
			start = oldest + c.cfg.TFAW
		}
	} else {
		c.rankActN[rk]++
	}
	c.rankAct[rk][idx] = start
	c.rankActIdx[rk] = (idx + 1) % 4
	return start
}

// issueWrite starts a demand write-back, choosing its pulse per Fig. 9.
func (c *Controller) issueWrite(w *Request, now sim.Tick) {
	view := policy.QueueView{
		WritesForBank: c.writeQ.count(w.Bank),
		QuotaExceeded: c.quotas[w.Bank].Exceeded(),
		Draining:      c.draining,
	}
	dec := c.spec.DecideWrite(view)
	c.writeQ.remove(w)
	c.updateDrainState(now)
	c.startWritePulse(w, dec, now)
}

// issueEager starts an eager mellow write.
func (c *Controller) issueEager(w *Request, now sim.Tick) {
	view := policy.QueueView{QuotaExceeded: c.quotas[w.Bank].Exceeded()}
	dec := c.spec.DecideEager(view)
	c.eagerQ.remove(w)
	c.startWritePulse(w, dec, now)
}

// startWritePulse occupies the bank for the chosen pulse — or for the
// pulse remainder when resuming a paused write. The data burst on the
// shared bus overlaps the start of the pulse.
func (c *Controller) startWritePulse(w *Request, dec policy.WriteDecision, now sim.Tick) {
	b := &c.banks[w.Bank]
	start := now
	ch := c.channel(w.Bank)
	if c.busFree[ch] > start {
		start = c.busFree[ch]
	}
	burst := sim.Tick(c.cfg.BurstCycles) * sim.MemCycle
	c.busFree[ch] = start + burst
	var pulse sim.Tick
	if w.remaining > 0 {
		// Resume: keep the original mode, pay only the remainder.
		pulse = w.remaining + resumePenalty
		w.remaining = 0
	} else {
		w.mode = dec.Mode
		pulse = c.cfg.Device.WriteLatency(dec.Mode)
	}
	w.attempts++
	end := start + pulse
	b.cur = w
	b.curCancellable = dec.Cancellable
	b.curPausable = dec.Pausable
	b.curStart = start
	b.freeAt = end
	c.k.AtEvent(end, c, evWord(opComplete, w.Bank, w.attempts), uint64(w.idx))
}

// completeBankOp finishes the bank's current operation (unless it was
// cancelled meanwhile — the issue generation gen guards against a stale
// completion event matching a re-issued request) and schedules the next.
func (c *Controller) completeBankOp(bank int, r *Request, gen int, now sim.Tick) {
	b := &c.banks[bank]
	if b.cur != r || r.attempts != gen {
		return // cancelled; a retry was queued
	}
	b.cur = nil
	b.busy.AddBusy(b.curStart, now)
	c.traceOp(r, b.curStart, now)
	if r.Kind != KindRead {
		c.finishWrite(bank, r, now)
		if b.freeAt > now {
			// Wear-leveling migration keeps the bank busy a little longer.
			b.busy.AddBusy(now, b.freeAt)
			c.wake(bank, b.freeAt)
			return
		}
	}
	c.trySchedule(bank, now)
}

// finishWrite accounts wear, energy, wear-leveling movement and
// completion for a write that ran to the end of its pulse.
func (c *Controller) finishWrite(bank int, w *Request, now sim.Tick) {
	b := &c.banks[bank]
	c.meters[bank].Record(w.mode, c.cfg.Device.Damage(w.mode))
	c.energy.AddWrite(c.em, w.mode)
	if w.Kind == KindEager {
		c.counts.EagerDone++
	} else {
		c.counts.WritesDone++
	}
	w.done = true
	w.doneAt = now
	inBank := int64(w.Line>>c.bankBits) % c.blocksPerBank
	if cost := c.levs[bank].Observe(inBank); cost.CopyWrites > 0 {
		// Each migration copy is one array read plus one normal write; the
		// bank stays busy for all of them (page-granularity backends copy
		// many blocks at once).
		for i := 0; i < cost.CopyWrites; i++ {
			c.meters[bank].RecordGapMove()
			c.energy.AddMigration(c.em)
		}
		b.freeAt = now + sim.Tick(cost.CopyWrites)*(c.cfg.TRCD+c.cfg.Device.WriteLatency(nvm.WriteNormal))
		if c.trace != nil {
			c.trace.Instant(xtrace.BankTrack(bank), c.remapName, "remap",
				now, w.Line, uint64(cost.CopyWrites))
		}
	}
}

// bankIdle reports whether every bank is idle (no in-flight operation).
func (c *Controller) bankIdle() bool {
	for b := range c.banks {
		if c.banks[b].cur != nil {
			return false
		}
	}
	return true
}

// Drain runs the memory system until every queued request has completed
// and every bank is idle. Housekeeping timers (Wear Quota periods, the
// eager pump) are kernel daemon events, so they never keep Drain alive —
// this terminates for every policy, including +WQ and Eager.
func (c *Controller) Drain() {
	c.k.AdvanceUntil(func() bool {
		return c.readQ.size == 0 && c.writeQ.size == 0 && c.eagerQ.size == 0 && c.bankIdle()
	})
}
