// Package mem is the timing model of the resistive main-memory system —
// the NVMain-equivalent substrate of Table II. It models the
// channel/rank/bank topology, open-page row buffers (with writes
// bypassing them, i.e. write-through arrays), the three request queues
// (read 32 / write 32 / eager 16) with their priorities and the
// write-drain state machine, write cancellation, ReRAM write pulses of
// selectable speed, Start-Gap wear leveling, per-bank wear and Wear
// Quota accounting, and the Table V/VI energy model.
package mem

import (
	"mellow/internal/nvm"
	"mellow/internal/sim"
)

// Kind distinguishes the three request classes of the controller.
type Kind uint8

// Request kinds, in priority order.
const (
	// KindRead is a demand fill (highest priority).
	KindRead Kind = iota
	// KindWrite is an LLC dirty write-back (middle priority, drains).
	KindWrite
	// KindEager is an eager mellow write-back (lowest priority, never
	// drains, slow writes only in the Mellow schemes).
	KindEager
)

func (k Kind) String() string {
	switch k {
	case KindRead:
		return "read"
	case KindWrite:
		return "write"
	default:
		return "eager"
	}
}

// Request is one memory operation in flight through the controller. The
// zero Request is meaningless; the controller creates them.
type Request struct {
	// Kind is the request class.
	Kind Kind
	// Line is the line address (byte address >> 6).
	Line uint64
	// Bank is the target bank index.
	Bank int
	// bufTag identifies the 1 KB row-buffer segment the line lives in
	// (after Start-Gap remapping), for open-page hit detection.
	bufTag uint64
	// arrive orders FCFS service within a queue.
	arrive sim.Tick

	done   bool
	doneAt sim.Tick
	// mode is the write pulse chosen at issue (writes only).
	mode nvm.WriteMode
	// attempts counts issue attempts (1 + cancellations + resumes).
	attempts int
	// remaining is the unfinished pulse time of a paused write; zero
	// means a fresh (or cancelled-and-restarted) write.
	remaining sim.Tick

	// idx is the request's arena slot, used to name it in event payloads.
	idx uint32
	// next/prev link the request into its bank's queue while it waits.
	next, prev *Request
}

// Done reports completion; DoneAt is valid once Done is true.
func (r *Request) Done() bool { return r.done }

// DoneAt returns the completion time.
func (r *Request) DoneAt() sim.Tick { return r.doneAt }

// Attempts returns how many times the request started on a bank.
func (r *Request) Attempts() int { return r.attempts }
