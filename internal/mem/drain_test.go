package mem

import (
	"testing"
	"time"

	"mellow/internal/config"
	"mellow/internal/policy"
	"mellow/internal/sim"
)

// drainDeadline bounds every Drain() regression run. A hang here is the
// original bug: self-rescheduling housekeeping timers (the Wear Quota
// period, the eager pump) kept the kernel non-empty forever.
const drainDeadline = 30 * time.Second

// mustDrain runs c.Drain() under a deadline and fails the test if it
// does not come back.
func mustDrain(t *testing.T, name string, c *Controller) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		c.Drain()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(drainDeadline):
		t.Fatalf("%s: Drain() hung past %v (housekeeping timers kept the kernel alive)", name, drainDeadline)
	}
}

// TestDrainTerminatesEveryPolicy pins the headline bugfix: Drain()
// reaches quiescence for the full Figure 10–16 policy line-up, including
// every +WQ variant whose quota period timer re-arms itself forever.
func TestDrainTerminatesEveryPolicy(t *testing.T) {
	specs := append(policy.EvaluationSet(), policy.BEMellow().WithWQ())
	for _, spec := range specs {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			k, c := newCtl(spec)
			if spec.Eager {
				fed := 0
				c.SetEagerSource(func() (uint64, bool) {
					if fed >= 8 {
						return 0, false
					}
					fed++
					return lineForBank(fed%16, 300+fed), true
				})
			}
			for i := 0; i < 200; i++ {
				c.SubmitWrite(uint64(i)*7, k.Now())
				if i%4 == 0 {
					r := c.SubmitRead(uint64(i)*7^1, k.Now())
					c.WaitRead(r)
				}
			}
			mustDrain(t, spec.Name, c)
			s := c.Snapshot()
			if got := s.WritesDone + s.Coalesced; got != 200 {
				t.Errorf("after drain: %d writes accounted, want 200", got)
			}
			rq, wq, eq := c.QueueDepths()
			if rq != 0 || wq != 0 || eq != 0 {
				t.Errorf("after drain: queues %d/%d/%d, want empty", rq, wq, eq)
			}
			// The kernel may still hold daemon events, but no work.
			if k.PendingWork() != 0 {
				t.Errorf("after drain: %d work events pending", k.PendingWork())
			}
		})
	}
}

// TestDrainRegressionWearQuota is the ISSUE's pinned regression: the
// exact bench scenario that previously required a bounded-horizon
// workaround, run to quiescence under BE-Mellow+WQ.
func TestDrainRegressionWearQuota(t *testing.T) {
	k, c := newCtl(policy.BEMellow().WithWQ())
	for i := 0; i < 500; i++ {
		line := uint64(i) * 7
		c.SubmitWrite(line, k.Now())
		r := c.SubmitRead(line^1, k.Now())
		if i&7 == 0 {
			c.SubmitRead(line, k.Now())
		}
		c.WaitRead(r)
	}
	mustDrain(t, "BE-Mellow+WQ", c)
	if k.Pending() == 0 {
		t.Error("quota period timer was cancelled, not left as a daemon event")
	}
	// Drain is idempotent and time keeps advancing across it.
	now := k.Now()
	mustDrain(t, "BE-Mellow+WQ (again)", c)
	if k.Now() != now {
		t.Errorf("idle re-drain moved time %d -> %d", now, k.Now())
	}
}

// TestDrainHysteresisBoundaries pins the §VI-C write-drain flip points:
// drain mode engages when the write queue reaches DrainHigh (>=) and
// releases when it falls back to DrainLow (<=), one transition per
// update. The degenerate DrainHigh == DrainLow config collapses the
// hysteresis window to a single flip point.
func TestDrainHysteresisBoundaries(t *testing.T) {
	mkCtl := func(low, high int) *Controller {
		cfg := config.Default().Memory
		cfg.DrainLow, cfg.DrainHigh = low, high
		k := &sim.Kernel{}
		return New(k, cfg, policy.Norm())
	}
	cases := []struct {
		name      string
		low, high int
		draining  bool // state before the update
		size      int  // write queue occupancy
		want      bool // state after the update
	}{
		{"below high stays off", 16, 32, false, 31, false},
		{"at high flips on", 16, 32, false, 32, true},
		{"above high flips on", 16, 32, false, 33, true},
		{"above low stays on", 16, 32, true, 17, true},
		{"at low flips off", 16, 32, true, 16, false},
		{"below low flips off", 16, 32, true, 15, false},
		{"off between thresholds stays off", 16, 32, false, 20, false},
		{"zero low drains to empty", 0, 32, true, 1, true},
		{"zero low releases empty", 0, 32, true, 0, false},
		// Degenerate window: the same occupancy that engages drain mode
		// also releases it on the next evaluation — each update still
		// performs at most one transition.
		{"degenerate at point flips on", 24, 24, false, 24, true},
		{"degenerate at point flips off", 24, 24, true, 24, false},
		{"degenerate below stays off", 24, 24, false, 23, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := mkCtl(tc.low, tc.high)
			if tc.draining {
				// Enter drain mode through the real path first.
				c.writeQ.size = tc.high
				c.updateDrainState(0)
				if !c.draining {
					t.Fatal("setup: could not enter drain mode")
				}
			}
			c.writeQ.size = tc.size
			c.updateDrainState(1)
			if c.draining != tc.want {
				t.Errorf("low=%d high=%d draining=%v size=%d: got %v, want %v",
					tc.low, tc.high, tc.draining, tc.size, c.draining, tc.want)
			}
		})
	}
}

// TestGoldenPreRefactorBitIdentity pins the Start-Gap Leveler backend
// byte-for-byte to the pre-refactor controller: the values below were
// captured (with %.17g float formatting) from the code that called
// wear.StartGap directly, before the Leveler interface existed. Any
// drift in mapping, remap cost charging, wear, energy or event ordering
// changes one of these numbers.
func TestGoldenPreRefactorBitIdentity(t *testing.T) {
	type golden struct {
		spec        policy.Spec
		now         sim.Tick
		writes      uint64
		reads       uint64
		gapMoves    uint64
		drains      uint64
		totalDamage float64
		energyPJ    float64
		fired       uint64
	}
	goldens := []golden{
		{policy.Norm(), 4558740, 4000, 4000, 32, 0, 4032, 4711343.7999999123, 20032},
		{policy.BEMellow().WithSC(), 4577090, 4000, 4000, 32, 0, 623.05987654321109, 6480189.2592221275, 24456},
		{policy.BEMellow().WithSC().WithWQ(), 4577090, 4000, 4000, 32, 0, 623.05987654321109, 6480189.2592221275, 24460},
	}
	for _, g := range goldens {
		t.Run(g.spec.Name, func(t *testing.T) {
			k := &sim.Kernel{}
			c := New(k, config.Default().Memory, g.spec)
			for i := 0; i < 4000; i++ {
				line := uint64(i) * 7
				c.SubmitWrite(line, k.Now())
				r := c.SubmitRead(line^1, k.Now())
				if i&7 == 0 {
					c.SubmitRead(line, k.Now())
				}
				c.WaitRead(r)
			}
			k.AdvanceTo(k.Now() + sim.NS(2_000_000))
			s := c.Snapshot()
			var damage float64
			for b := 0; b < 16; b++ {
				damage += c.Meter(b).Damage()
			}
			if k.Now() != g.now {
				t.Errorf("now = %d, want %d", k.Now(), g.now)
			}
			if s.WritesDone != g.writes || s.Reads != g.reads {
				t.Errorf("writes/reads = %d/%d, want %d/%d", s.WritesDone, s.Reads, g.writes, g.reads)
			}
			if s.GapMoves != g.gapMoves {
				t.Errorf("gap moves = %d, want %d", s.GapMoves, g.gapMoves)
			}
			if s.Drains != g.drains {
				t.Errorf("drains = %d, want %d", s.Drains, g.drains)
			}
			if damage != g.totalDamage {
				t.Errorf("total damage = %.17g, want %.17g", damage, g.totalDamage)
			}
			if s.EnergyPJ != g.energyPJ {
				t.Errorf("energy = %.17g pJ, want %.17g", s.EnergyPJ, g.energyPJ)
			}
			if k.Fired() != g.fired {
				t.Errorf("events fired = %d, want %d", k.Fired(), g.fired)
			}
		})
	}
}
