package mem

import (
	"testing"

	"mellow/internal/config"
	"mellow/internal/policy"
	"mellow/internal/sim"
)

// BenchmarkControllerTick measures the controller layer in isolation —
// submit, schedule, issue and complete through the indexed per-bank
// queues — so optimization PRs can localize wins without running a full
// experiment. The mix models the LLC-facing traffic of a write-heavy
// run: interleaved reads and write-backs striding across banks, with
// coalescing and forwarding hits sprinkled in by address reuse.
func BenchmarkControllerTick(b *testing.B) {
	bench := func(b *testing.B, spec policy.Spec) {
		k := &sim.Kernel{}
		c := New(k, config.Default().Memory, spec)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			line := uint64(i) * 7 // strides over banks and row buffers
			c.SubmitWrite(line, k.Now())
			r := c.SubmitRead(line^1, k.Now())
			if i&7 == 0 {
				// Occasional same-line read exercises forwarding.
				c.SubmitRead(line, k.Now())
			}
			c.WaitRead(r)
		}
		// Let the queued writes finish. Quota period timers are daemon
		// events, so this terminates even under +WQ.
		c.Drain()
	}
	b.Run("norm", func(b *testing.B) { bench(b, policy.Norm()) })
	b.Run("mellow", func(b *testing.B) { bench(b, policy.BEMellow().WithSC().WithWQ()) })
}
