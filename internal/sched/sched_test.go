package sched

import (
	"context"
	"sync/atomic"
	"testing"
	"time"
)

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestAcquireReleaseWeights(t *testing.T) {
	s := New(4)
	ctx := context.Background()

	rel3, err := s.Acquire(ctx, 3)
	if err != nil {
		t.Fatal(err)
	}
	rel1, err := s.Acquire(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.InUse != 4 || st.Peak != 4 || st.Budget != 4 {
		t.Fatalf("stats after two grants: %+v", st)
	}

	// Budget exhausted: a further acquire times out.
	short, cancel := context.WithTimeout(ctx, 20*time.Millisecond)
	defer cancel()
	if _, err := s.Acquire(short, 1); err == nil {
		t.Fatal("acquire beyond the budget succeeded")
	}

	rel1()
	rel1() // double release must be a no-op
	if st := s.Stats(); st.InUse != 3 {
		t.Fatalf("in use after release = %d, want 3", st.InUse)
	}
	rel3()
	if st := s.Stats(); st.InUse != 0 {
		t.Fatalf("in use after all releases = %d, want 0", st.InUse)
	}

	// Sub-1 weights count as 1.
	rel, err := s.Acquire(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.InUse != 1 {
		t.Fatalf("in use after weight-0 acquire = %d, want 1", st.InUse)
	}
	rel()
}

// TestFIFOOrder parks three acquirers one at a time and checks grants
// come back in arrival order.
func TestFIFOOrder(t *testing.T) {
	s := New(1)
	hold, err := s.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}

	order := make(chan int, 3)
	for i := 0; i < 3; i++ {
		i := i
		before := s.Stats().Waiters
		go func() {
			rel, err := s.Acquire(context.Background(), 1)
			if err != nil {
				t.Error(err)
				return
			}
			order <- i
			rel()
		}()
		waitFor(t, "waiter to park", func() bool { return s.Stats().Waiters > before })
	}

	hold()
	for want := 0; want < 3; want++ {
		select {
		case got := <-order:
			if got != want {
				t.Fatalf("grant %d went to waiter %d", want, got)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("waiter %d never granted", want)
		}
	}
}

// TestNoBarging: a small acquire arriving behind a parked wide one must
// queue behind it even though it would fit — that is what keeps a
// stream of narrow work from starving a wide job forever (and, run the
// other way, what bounds a small job's wait behind a wide one).
func TestNoBarging(t *testing.T) {
	s := New(4)
	hold, err := s.Acquire(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}

	grants := make(chan string, 2)
	var wideGranted atomic.Bool
	go func() {
		rel, err := s.Acquire(context.Background(), 4) // needs 7 > 4: parks
		if err != nil {
			t.Error(err)
			return
		}
		wideGranted.Store(true)
		grants <- "wide"
		rel()
	}()
	waitFor(t, "wide acquire to park", func() bool { return s.Stats().Waiters == 1 })

	go func() {
		rel, err := s.Acquire(context.Background(), 1) // would fit, must not barge
		if err != nil {
			t.Error(err)
			return
		}
		if !wideGranted.Load() {
			t.Error("narrow acquire barged past the parked wide one")
		}
		grants <- "narrow"
		rel()
	}()
	waitFor(t, "narrow acquire to park", func() bool { return s.Stats().Waiters == 2 })

	// The narrow acquire fits (3+1 <= 4) yet parked: no barging.
	if st := s.Stats(); st.InUse != 3 || st.Waiters != 2 {
		t.Fatalf("before release: %+v, want inUse 3 with both acquires parked", st)
	}

	// The wide grant takes the whole budget, so the narrow one can only
	// follow after it releases — the grant order is observable.
	hold()
	if first := <-grants; first != "wide" {
		t.Fatalf("first grant went to %s, want wide", first)
	}
	if second := <-grants; second != "narrow" {
		t.Fatalf("second grant went to %s, want narrow", second)
	}
}

func TestCancelWhileQueued(t *testing.T) {
	s := New(1)
	hold, err := s.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := s.Acquire(ctx, 1)
		errc <- err
	}()
	waitFor(t, "waiter to park", func() bool { return s.Stats().Waiters == 1 })

	// A second waiter queues behind the one about to be cancelled.
	granted := make(chan struct{})
	go func() {
		rel, err := s.Acquire(context.Background(), 1)
		if err != nil {
			t.Error(err)
			return
		}
		close(granted)
		rel()
	}()
	waitFor(t, "second waiter to park", func() bool { return s.Stats().Waiters == 2 })

	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("cancelled acquire returned %v", err)
	}
	waitFor(t, "cancelled waiter to leave the queue", func() bool { return s.Stats().Waiters == 1 })

	// Capacity is intact: releasing the holder grants the survivor.
	hold()
	select {
	case <-granted:
	case <-time.After(5 * time.Second):
		t.Fatal("waiter behind a cancelled one never granted")
	}
	if st := s.Stats(); st.InUse != 0 || st.Waiters != 0 {
		t.Fatalf("stats after drain: %+v", st)
	}
}

// TestWeightClamp: an acquire wider than the budget degrades to
// exclusive access instead of deadlocking.
func TestWeightClamp(t *testing.T) {
	s := New(2)
	rel, err := s.Acquire(context.Background(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.InUse != 2 {
		t.Fatalf("clamped acquire holds %d, want 2", st.InUse)
	}
	short, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := s.Acquire(short, 1); err == nil {
		t.Fatal("acquire alongside an exclusive grant succeeded")
	}
	rel()
	rel2, err := s.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	rel2()
}

func TestSetBudgetGrowWakesWaiters(t *testing.T) {
	s := New(1)
	hold, err := s.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	granted := make(chan struct{})
	go func() {
		rel, err := s.Acquire(context.Background(), 1)
		if err != nil {
			t.Error(err)
			return
		}
		close(granted)
		rel()
	}()
	waitFor(t, "waiter to park", func() bool { return s.Stats().Waiters == 1 })

	s.SetBudget(2)
	select {
	case <-granted:
	case <-time.After(5 * time.Second):
		t.Fatal("budget grow did not wake the waiter")
	}
	hold()
	if st := s.Stats(); st.Budget != 2 || st.InUse != 0 {
		t.Fatalf("stats after grow and drain: %+v", st)
	}
}

func TestStatsAndWaitHistogram(t *testing.T) {
	s := New(1)
	rel, err := s.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		rel2, err := s.Acquire(context.Background(), 1)
		if err != nil {
			t.Error(err)
		} else {
			rel2()
		}
		close(done)
	}()
	waitFor(t, "waiter to park", func() bool { return s.Stats().Waiters == 1 })
	rel()
	<-done

	st := s.Stats()
	if st.Acquires != 2 {
		t.Errorf("acquires = %d, want 2", st.Acquires)
	}
	if st.Waited != 1 {
		t.Errorf("waited = %d, want 1", st.Waited)
	}
	if h := s.WaitHistogram(); h.Count() != 2 {
		t.Errorf("wait histogram count = %d, want one sample per grant (2)", h.Count())
	}
}
