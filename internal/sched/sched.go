// Package sched provides the process-wide simulation scheduler: a
// weighted, context-aware semaphore with strict FIFO fairness that is
// the single admission gate for every simulation the process runs.
//
// mellowd's worker pool admits jobs, but one job may fan out into many
// simulations (a compare matrix, an experiment sweep). Without a shared
// gate, W concurrent jobs each running NumCPU simulations oversubscribe
// the machine W-fold. Every simulation therefore acquires one slot (or
// more, via weights — a multiprogrammed mix holds one slot per core it
// models) from the scheduler before it runs, so total in-flight
// simulation work never exceeds the configured budget regardless of the
// job mix.
//
// Fairness is strict FIFO: a blocked acquire parks in arrival order and
// later, smaller acquires do not barge past it. A wide job that queues
// many acquisitions therefore delays a subsequent small job by at most
// the work already queued when the small job arrives — never
// indefinitely.
package sched

import (
	"container/list"
	"context"
	"runtime"
	"sync"
	"time"

	"mellow/internal/metrics"
	"mellow/internal/stats"
	"mellow/internal/xtrace"
)

// waiter is one parked acquire. ready closes when the scheduler grants
// its weight; the waiter's weight is fixed at enqueue time.
type waiter struct {
	weight int64
	ready  chan struct{}
}

// Scheduler is a weighted semaphore with FIFO fairness and
// occupancy/wait instrumentation. The zero value is not usable; call
// New.
type Scheduler struct {
	mu      sync.Mutex
	budget  int64
	inUse   int64
	peak    int64 // high-water mark of inUse
	waiters list.List

	acquires uint64          // grants handed out
	waited   uint64          // grants that parked first
	waitHist stats.Histogram // grant wait time, microseconds
}

// New builds a scheduler with the given slot budget (minimum 1).
func New(budget int64) *Scheduler {
	if budget < 1 {
		budget = 1
	}
	return &Scheduler{budget: budget}
}

// defaultSched is the process-wide scheduler every simulation routes
// through, sized like the old per-sweep default (one slot per CPU).
var defaultSched = New(int64(runtime.GOMAXPROCS(0)))

// Default returns the process-wide scheduler.
func Default() *Scheduler { return defaultSched }

// Acquire blocks until weight slots are free (FIFO among blocked
// acquirers) or ctx ends, and returns an idempotent release function.
// Weights below 1 count as 1; a weight above the budget is clamped to
// it, so an over-wide acquire degrades to exclusive access instead of
// deadlocking. On error (ctx cancelled or expired) no slots are held
// and the returned release is nil.
func (s *Scheduler) Acquire(ctx context.Context, weight int64) (func(), error) {
	if weight < 1 {
		weight = 1
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	if weight > s.budget {
		weight = s.budget
	}
	// Fast path: free capacity and nobody queued ahead.
	if s.waiters.Len() == 0 && s.inUse+weight <= s.budget {
		s.grantLocked(weight)
		s.waitHist.Add(0)
		s.mu.Unlock()
		return s.releaser(weight), nil
	}
	w := &waiter{weight: weight, ready: make(chan struct{})}
	elem := s.waiters.PushBack(w)
	s.mu.Unlock()

	start := time.Now()
	select {
	case <-w.ready:
		granted := time.Now()
		s.mu.Lock()
		s.waited++
		s.waitHist.Add(uint64(granted.Sub(start).Microseconds()))
		s.mu.Unlock()
		// Parked acquires are the interesting ones for a trace: record
		// the wait as a span when the context carries a recorder.
		xtrace.FromContext(ctx).Span("sched-wait", "sched", start, granted)
		return s.releaser(weight), nil
	case <-ctx.Done():
		s.mu.Lock()
		select {
		case <-w.ready:
			// Granted concurrently with cancellation: hand the slots
			// straight back (which may wake the next waiter).
			s.mu.Unlock()
			s.release(weight)
		default:
			s.waiters.Remove(elem)
			// Removing a parked head can unblock the waiters behind it.
			s.wakeLocked()
			s.mu.Unlock()
		}
		return nil, ctx.Err()
	}
}

// grantLocked charges weight slots. Callers hold s.mu.
func (s *Scheduler) grantLocked(weight int64) {
	s.inUse += weight
	if s.inUse > s.peak {
		s.peak = s.inUse
	}
	s.acquires++
}

// releaser wraps release so double-calling a grant's release func
// cannot corrupt the occupancy count.
func (s *Scheduler) releaser(weight int64) func() {
	var once sync.Once
	return func() { once.Do(func() { s.release(weight) }) }
}

func (s *Scheduler) release(weight int64) {
	s.mu.Lock()
	s.inUse -= weight
	if s.inUse < 0 {
		// A budget shrink below an already-granted weight can overdraw;
		// clamp so the books stay consistent.
		s.inUse = 0
	}
	s.wakeLocked()
	s.mu.Unlock()
}

// wakeLocked grants parked waiters strictly from the front while they
// fit. The head blocks everyone behind it — that is the FIFO guarantee.
// If the budget shrank below the head's enqueue-time weight, the head
// is granted exclusively once the scheduler drains. Callers hold s.mu.
func (s *Scheduler) wakeLocked() {
	for {
		front := s.waiters.Front()
		if front == nil {
			return
		}
		w := front.Value.(*waiter)
		if s.inUse+w.weight > s.budget && !(s.inUse == 0 && w.weight > s.budget) {
			return
		}
		s.waiters.Remove(front)
		s.grantLocked(w.weight)
		close(w.ready)
	}
}

// SetBudget resizes the slot budget (minimum 1). Growing wakes parked
// waiters immediately; shrinking never revokes granted slots — the
// scheduler just stops granting until occupancy drains below the new
// budget.
func (s *Scheduler) SetBudget(n int64) {
	if n < 1 {
		n = 1
	}
	s.mu.Lock()
	s.budget = n
	s.wakeLocked()
	s.mu.Unlock()
}

// Stats is a point-in-time snapshot of the scheduler's occupancy.
type Stats struct {
	// Budget is the configured slot budget.
	Budget int64
	// InUse is the weight currently granted; never exceeds Budget except
	// transiently after a budget shrink.
	InUse int64
	// Peak is the high-water mark of InUse since construction.
	Peak int64
	// Waiters is the number of acquires currently parked.
	Waiters int
	// Acquires counts grants handed out; Waited counts the subset that
	// parked before being granted.
	Acquires uint64
	Waited   uint64
}

// Stats snapshots the scheduler's occupancy and counters.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Budget:   s.budget,
		InUse:    s.inUse,
		Peak:     s.peak,
		Waiters:  s.waiters.Len(),
		Acquires: s.acquires,
		Waited:   s.waited,
	}
}

// WaitHistogram returns a copy of the grant wait-time distribution in
// microseconds (one sample per grant; zero for uncontended acquires).
func (s *Scheduler) WaitHistogram() stats.Histogram {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.waitHist
}

// Collector returns a read-only metrics collector publishing the
// scheduler's occupancy, grant counters and wait distribution under the
// given name prefix. It takes the scheduler mutex only long enough to
// snapshot — never while the caller renders.
func (s *Scheduler) Collector(prefix string) metrics.Collector {
	return func(g *metrics.Gatherer) {
		st := s.Stats()
		g.Gauge(prefix+"sched_budget", "Process-wide simulation slot budget.", float64(st.Budget))
		g.Gauge(prefix+"sched_slots_in_use", "Simulation slots currently held.", float64(st.InUse))
		g.Gauge(prefix+"sched_waiters", "Simulations parked waiting for a scheduler slot.", float64(st.Waiters))
		g.Counter(prefix+"sched_acquires_total", "Scheduler slot grants handed out.", st.Acquires)
		g.Counter(prefix+"sched_waited_total", "Grants that queued before being granted.", st.Waited)
		g.Histogram(prefix+"sched_wait_seconds",
			"Time simulations waited for a scheduler slot before running.", 1e-6, s.WaitHistogram())
	}
}
