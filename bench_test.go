package mellow_test

import (
	"io"
	"testing"

	"mellow"
)

// The benchmarks below regenerate each of the paper's tables and figures
// at reduced run lengths (DESIGN.md §5 maps each to its experiment).
// One benchmark iteration = one complete experiment. For full-length
// paper-scale output use `go run ./cmd/mellowbench -exp <id>`.

// benchConfig keeps one iteration around a second.
func benchConfig() mellow.Config {
	cfg := mellow.DefaultConfig()
	cfg.Run.WarmupInstructions = 500_000
	cfg.Run.DetailedInstructions = 1_500_000
	return cfg
}

// benchSuite restricts sweeps to three representative workloads (a
// stream, the heaviest writer, and a random-update workload).
var benchSuite = []string{"stream", "lbm", "gups"}

func runExperiment(b *testing.B, id string, workloads ...string) {
	b.Helper()
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// A fresh seed per iteration defeats the sweep memoiser, so every
		// iteration performs real simulation work.
		cfg.Run.Seed = uint64(i + 1)
		if err := mellow.RunExperiment(id, cfg, io.Discard, workloads...); err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
}

func BenchmarkTable4(b *testing.B) { runExperiment(b, "tab4", benchSuite...) }
func BenchmarkTable6(b *testing.B) { runExperiment(b, "tab6") }
func BenchmarkFig1(b *testing.B)   { runExperiment(b, "fig1") }
func BenchmarkFig2(b *testing.B)   { runExperiment(b, "fig2", benchSuite...) }
func BenchmarkFig3(b *testing.B)   { runExperiment(b, "fig3", benchSuite...) }
func BenchmarkFig10(b *testing.B)  { runExperiment(b, "fig10", benchSuite...) }
func BenchmarkFig11(b *testing.B)  { runExperiment(b, "fig11", benchSuite...) }
func BenchmarkFig12(b *testing.B)  { runExperiment(b, "fig12", benchSuite...) }
func BenchmarkFig13(b *testing.B)  { runExperiment(b, "fig13", benchSuite...) }
func BenchmarkFig14(b *testing.B)  { runExperiment(b, "fig14", benchSuite...) }
func BenchmarkFig15(b *testing.B)  { runExperiment(b, "fig15", benchSuite...) }
func BenchmarkFig16(b *testing.B)  { runExperiment(b, "fig16", benchSuite...) }
func BenchmarkFig17(b *testing.B)  { runExperiment(b, "fig17", "stream", "gups") }
func BenchmarkFig18(b *testing.B)  { runExperiment(b, "fig18") }
func BenchmarkFig19(b *testing.B)  { runExperiment(b, "fig19", benchSuite...) }

// Extension and ablation benches (features beyond the paper's figures).
func BenchmarkExt1(b *testing.B) { runExperiment(b, "ext1", "stream", "gups") }
func BenchmarkExt2(b *testing.B) { runExperiment(b, "ext2", "stream", "gups") }
func BenchmarkExt3(b *testing.B) { runExperiment(b, "ext3", "stream") }
func BenchmarkExt4(b *testing.B) { runExperiment(b, "ext4", "stream", "gups") }
func BenchmarkExt5(b *testing.B) { runExperiment(b, "ext5") }
func BenchmarkExt7(b *testing.B) { runExperiment(b, "ext7", "stream", "gups") }
func BenchmarkExt6Mix(b *testing.B) {
	cfg := benchConfig()
	spec, err := mellow.ParsePolicy("BE-Mellow+SC")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Run.Seed = uint64(i + 1)
		if _, err := mellow.RunMix(cfg, spec, "stream", "gups"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulation measures raw simulator throughput: one full
// (workload, policy) run per iteration, reported per simulated
// instruction and per simulated tick. scripts/benchsnap divides these
// by ns/op into instrs/sec and simticks/sec for the committed baseline.
func BenchmarkSimulation(b *testing.B) {
	cfg := benchConfig()
	spec, err := mellow.ParsePolicy("BE-Mellow+SC+WQ")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := mellow.Run(cfg, spec, "GemsFDTD")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Instructions), "instrs/op")
		b.ReportMetric(res.Cycles, "simticks/op")
	}
}
