// Command benchsnap captures a benchmark snapshot and compares it
// against a committed baseline, so throughput regressions surface in
// review instead of in production.
//
// Usage:
//
//	go run ./scripts/benchsnap -o BENCH_baseline.json        # (re)capture the baseline
//	go run ./scripts/benchsnap -compare BENCH_baseline.json  # exit 2 on >10% regression
//	go run ./scripts/benchsnap -bench 'Fig11|Simulation' -count 5
//
// benchsnap shells out to `go test -bench`, keeps each benchmark's best
// (minimum ns/op) run across -count repetitions — the run least
// disturbed by machine noise — and derives the two throughput numbers
// the project tracks: simulated ticks per wall second and simulated
// instructions per wall second. Comparison checks ns/op AND allocs/op
// (and reports B/op), each with its own threshold: allocation counts
// are deterministic, so -threshold holds allocs/op tightly — any jump
// there is a real code change — while ns/op wobbles with runner load
// and only fails past the looser -ns-threshold, catching catastrophic
// slowdowns without flaking on shared hardware. CI runs the compare as
// a blocking gate.
//
// Manifest mode gates every committed snapshot uniformly:
//
//	go run ./scripts/benchsnap -manifest benchsnap.manifest.json
//	go run ./scripts/benchsnap -manifest benchsnap.manifest.json -readme README.md         # rewrite the perf table
//	go run ./scripts/benchsnap -manifest benchsnap.manifest.json -readme README.md -check  # fail if the table is stale
//
// The manifest lists each committed BENCH_*.json with its capture
// settings (bench regexp, package, benchtime, count) and whether it
// gates CI; entries with identical settings share one capture, so the
// whole manifest costs as many benchmark runs as it has distinct
// configurations. Ungated entries (historical trajectory points such
// as the pre-optimisation baseline) are kept only for the README
// table, which -readme regenerates between the
// "<!-- benchsnap:begin -->" / "<!-- benchsnap:end -->" markers from
// the committed snapshot files — no benchmarks run for the table.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Bench is one benchmark's snapshot: the best observed run plus derived
// throughput.
type Bench struct {
	// NsPerOp is the minimum across -count runs.
	NsPerOp float64 `json:"ns_per_op"`
	// Units carries every custom metric of the best run (instrs/op,
	// simticks/op, B/op, allocs/op, ...).
	Units map[string]float64 `json:"units,omitempty"`
	// SimTicksPerSec and InstrsPerSec are derived: simulated progress
	// per wall-clock second, the project's headline throughput numbers.
	SimTicksPerSec float64 `json:"simticks_per_sec,omitempty"`
	InstrsPerSec   float64 `json:"instrs_per_sec,omitempty"`
}

// Snapshot is the benchsnap file format.
type Snapshot struct {
	GoVersion  string           `json:"go_version"`
	Bench      string           `json:"bench"`
	Count      int              `json:"count"`
	Benchtime  string           `json:"benchtime"`
	Benchmarks map[string]Bench `json:"benchmarks"`
}

func main() {
	var (
		bench       = flag.String("bench", "BenchmarkSimulation$", "benchmark regexp passed to go test -bench")
		count       = flag.Int("count", 3, "repetitions per benchmark; the minimum ns/op run is kept")
		benchtime   = flag.String("benchtime", "2x", "go test -benchtime per run")
		pkg         = flag.String("pkg", "mellow", "package holding the benchmarks")
		out         = flag.String("o", "", "write the snapshot JSON here (default stdout)")
		compare     = flag.String("compare", "", "baseline snapshot to compare against; exit 2 on regression")
		threshold   = flag.Float64("threshold", 0.10, "relative allocs/op regression tolerated before exit 2")
		nsThreshold = flag.Float64("ns-threshold", 0.60, "relative ns/op regression tolerated before exit 2 (loose: wall time is noisy on shared runners)")
		manifest    = flag.String("manifest", "", "gate every snapshot listed in this manifest (shared captures, uniform thresholds)")
		readme      = flag.String("readme", "", "with -manifest: rewrite the perf-trajectory table between the benchsnap markers in this file")
		check       = flag.Bool("check", false, "with -readme: compare instead of rewriting; exit 2 if the table is stale")
	)
	flag.Parse()

	if *manifest != "" {
		code, err := runManifest(*manifest, *readme, *check, *threshold, *nsThreshold)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchsnap:", err)
			os.Exit(1)
		}
		os.Exit(code)
	}

	snap, err := capture(*bench, *count, *benchtime, *pkg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}

	b, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
	b = append(b, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, b, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchsnap:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchsnap: wrote %d benchmarks to %s\n", len(snap.Benchmarks), *out)
	} else if *compare == "" {
		os.Stdout.Write(b)
	}

	if *compare != "" {
		baseRaw, err := os.ReadFile(*compare)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchsnap:", err)
			os.Exit(1)
		}
		var base Snapshot
		if err := json.Unmarshal(baseRaw, &base); err != nil {
			fmt.Fprintf(os.Stderr, "benchsnap: %s: %v\n", *compare, err)
			os.Exit(1)
		}
		if regressed := diff(base, snap, *threshold, *nsThreshold); regressed {
			os.Exit(2)
		}
	}
}

// benchLine matches one `go test -bench` result line:
//
//	BenchmarkSimulation-8   2   123456789 ns/op   42 B/op   7 allocs/op   1.5e+06 instrs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

func capture(bench string, count int, benchtime, pkg string) (Snapshot, error) {
	args := []string{"test", "-run", "^$", "-bench", bench, "-benchmem",
		"-benchtime", benchtime, "-count", strconv.Itoa(count), pkg}
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	outBytes, err := cmd.Output()
	if err != nil {
		return Snapshot{}, fmt.Errorf("go %s: %v", strings.Join(args, " "), err)
	}
	snap := Snapshot{
		GoVersion: runtime.Version(), Bench: bench, Count: count,
		Benchtime: benchtime, Benchmarks: map[string]Bench{},
	}
	for _, line := range strings.Split(string(outBytes), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		name := m[1]
		units := map[string]float64{}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			units[fields[i+1]] = v
		}
		ns, ok := units["ns/op"]
		if !ok {
			continue
		}
		delete(units, "ns/op")
		if prev, seen := snap.Benchmarks[name]; seen && prev.NsPerOp <= ns {
			continue // keep the fastest of the -count runs
		}
		b := Bench{NsPerOp: ns, Units: units}
		if ns > 0 {
			if ticks, ok := units["simticks/op"]; ok {
				b.SimTicksPerSec = ticks / (ns / 1e9)
			}
			if instrs, ok := units["instrs/op"]; ok {
				b.InstrsPerSec = instrs / (ns / 1e9)
			}
		}
		snap.Benchmarks[name] = b
	}
	if len(snap.Benchmarks) == 0 {
		return snap, fmt.Errorf("no benchmark results matched %q", bench)
	}
	return snap, nil
}

// diff reports each shared benchmark's delta on ns/op and allocs/op and
// returns true when either regressed past its threshold: allocThreshold
// for the deterministic allocs/op, nsThreshold for the noisy ns/op.
// Benchmarks present on only one side are noted, never failed — the
// baseline regenerates with -o when the set changes.
func diff(base, cur Snapshot, allocThreshold, nsThreshold float64) bool {
	names := make([]string, 0, len(cur.Benchmarks))
	for name := range cur.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	regressed := false
	for _, name := range names {
		b, ok := base.Benchmarks[name]
		if !ok {
			fmt.Printf("NEW   %-24s %12.0f ns/op (not in baseline)\n", name, cur.Benchmarks[name].NsPerOp)
			continue
		}
		c := cur.Benchmarks[name]
		rel := (c.NsPerOp - b.NsPerOp) / b.NsPerOp
		verdict := "ok   "
		if rel > nsThreshold {
			verdict = "SLOW "
			regressed = true
		} else if rel < -nsThreshold {
			verdict = "fast "
		}
		fmt.Printf("%s %-24s %12.0f -> %12.0f ns/op (%+.1f%%)", verdict, name, b.NsPerOp, c.NsPerOp, 100*rel)
		if c.SimTicksPerSec > 0 && b.SimTicksPerSec > 0 {
			fmt.Printf("  %.3g -> %.3g simticks/s", b.SimTicksPerSec, c.SimTicksPerSec)
		}
		fmt.Println()
		// Allocation counts are deterministic per op, so hold them to the
		// tight threshold: unlike ns/op, a jump here can never be machine
		// noise.
		ba, haveBase := b.Units["allocs/op"]
		ca, haveCur := c.Units["allocs/op"]
		if haveBase && haveCur && ba > 0 {
			arel := (ca - ba) / ba
			if arel > allocThreshold {
				regressed = true
				fmt.Printf("ALLOC %-24s %12.0f -> %12.0f allocs/op (%+.1f%%)", name, ba, ca, 100*arel)
				if bb, cb := b.Units["B/op"], c.Units["B/op"]; bb > 0 {
					fmt.Printf("  %.0f -> %.0f B/op", bb, cb)
				}
				fmt.Println()
			}
		}
	}
	for name := range base.Benchmarks {
		if _, ok := cur.Benchmarks[name]; !ok {
			fmt.Printf("GONE  %-24s (in baseline, not measured)\n", name)
		}
	}
	if regressed {
		fmt.Printf("benchsnap: regression beyond threshold (allocs >%.0f%% or ns >%.0f%%) — investigate or regenerate the baseline with -o\n", 100*allocThreshold, 100*nsThreshold)
	}
	return regressed
}

// ManifestEntry describes one committed snapshot: where it lives, how
// to reproduce its capture, and whether it gates CI. Ungated entries
// are historical trajectory points kept for the README table only.
type ManifestEntry struct {
	// File is the committed snapshot path, relative to the manifest.
	File string `json:"file"`
	// Label names the trajectory point in the README table.
	Label string `json:"label"`
	// Bench, Pkg, Benchtime and Count reproduce the capture; entries
	// with identical settings share one benchmark run.
	Bench     string `json:"bench"`
	Pkg       string `json:"pkg"`
	Benchtime string `json:"benchtime"`
	Count     int    `json:"count"`
	// Gate marks the entry as a blocking CI comparison.
	Gate bool `json:"gate"`
}

// Manifest is the benchsnap.manifest.json format.
type Manifest struct {
	Snapshots []ManifestEntry `json:"snapshots"`
}

// captureKey identifies a capture configuration so manifest entries
// with identical settings share one `go test -bench` invocation.
type captureKey struct {
	bench, pkg, benchtime string
	count                 int
}

// runManifest gates every entry of the manifest uniformly and, when
// readme is set, regenerates (or with check verifies) the perf table.
// Returns the process exit code: 2 on regression or a stale table.
func runManifest(path, readme string, check bool, allocThreshold, nsThreshold float64) (int, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var m Manifest
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return 0, fmt.Errorf("%s: %v", path, err)
	}
	if len(m.Snapshots) == 0 {
		return 0, fmt.Errorf("%s: no snapshots", path)
	}
	dir := filepath.Dir(path)

	code := 0
	captures := map[captureKey]Snapshot{}
	for _, e := range m.Snapshots {
		if !e.Gate {
			continue
		}
		key := captureKey{e.Bench, e.Pkg, e.Benchtime, e.Count}
		cur, ok := captures[key]
		if !ok {
			fmt.Printf("=== capture %s (pkg %s, benchtime %s, count %d)\n", e.Bench, e.Pkg, e.Benchtime, e.Count)
			cur, err = capture(e.Bench, e.Count, e.Benchtime, e.Pkg)
			if err != nil {
				return 0, err
			}
			captures[key] = cur
		}
		baseRaw, err := os.ReadFile(filepath.Join(dir, e.File))
		if err != nil {
			return 0, err
		}
		var base Snapshot
		if err := json.Unmarshal(baseRaw, &base); err != nil {
			return 0, fmt.Errorf("%s: %v", e.File, err)
		}
		fmt.Printf("=== compare %s (%s)\n", e.File, e.Label)
		if diff(base, cur, allocThreshold, nsThreshold) {
			code = 2
		}
	}

	if readme != "" {
		stale, err := updateReadme(readme, dir, m, check)
		if err != nil {
			return 0, err
		}
		if stale {
			code = 2
		}
	}
	return code, nil
}

// Markers bracket the generated perf-trajectory table in the README.
const (
	tableBegin = "<!-- benchsnap:begin -->"
	tableEnd   = "<!-- benchsnap:end -->"
)

// updateReadme regenerates the perf table between the markers from the
// committed snapshot files (no benchmarks run). With check it only
// compares and reports staleness.
func updateReadme(readmePath, dir string, m Manifest, check bool) (stale bool, err error) {
	doc, err := os.ReadFile(readmePath)
	if err != nil {
		return false, err
	}
	text := string(doc)
	begin := strings.Index(text, tableBegin)
	end := strings.Index(text, tableEnd)
	if begin < 0 || end < 0 || end < begin {
		return false, fmt.Errorf("%s: missing %s / %s markers", readmePath, tableBegin, tableEnd)
	}
	table, err := perfTable(dir, m)
	if err != nil {
		return false, err
	}
	next := text[:begin+len(tableBegin)] + "\n" + table + text[end:]
	if next == text {
		return false, nil
	}
	if check {
		fmt.Printf("benchsnap: %s perf table is stale — regenerate with -manifest ... -readme %s\n", readmePath, readmePath)
		return true, nil
	}
	if err := os.WriteFile(readmePath, []byte(next), 0o644); err != nil {
		return false, err
	}
	fmt.Fprintf(os.Stderr, "benchsnap: rewrote perf table in %s\n", readmePath)
	return false, nil
}

// perfTable renders one markdown row per benchmark of each manifest
// entry, in manifest order — the project's performance trajectory.
func perfTable(dir string, m Manifest) (string, error) {
	var b strings.Builder
	b.WriteString("| snapshot | benchmark | ns/op | allocs/op | B/op | Minstr/s |\n")
	b.WriteString("|---|---|---:|---:|---:|---:|\n")
	for _, e := range m.Snapshots {
		raw, err := os.ReadFile(filepath.Join(dir, e.File))
		if err != nil {
			return "", err
		}
		var snap Snapshot
		if err := json.Unmarshal(raw, &snap); err != nil {
			return "", fmt.Errorf("%s: %v", e.File, err)
		}
		names := make([]string, 0, len(snap.Benchmarks))
		for name := range snap.Benchmarks {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			bench := snap.Benchmarks[name]
			mips := "—"
			if bench.InstrsPerSec > 0 {
				mips = fmt.Sprintf("%.1f", bench.InstrsPerSec/1e6)
			}
			fmt.Fprintf(&b, "| %s | %s | %s | %s | %s | %s |\n",
				e.Label, strings.TrimPrefix(name, "Benchmark"),
				group(bench.NsPerOp), group(bench.Units["allocs/op"]), group(bench.Units["B/op"]), mips)
		}
	}
	return b.String(), nil
}

// group renders a count with thousands separators ("1,234,567"); small
// non-integers keep two decimals.
func group(v float64) string {
	if v != float64(int64(v)) && v < 1000 {
		return strconv.FormatFloat(v, 'f', 2, 64)
	}
	s := strconv.FormatInt(int64(v), 10)
	var out []byte
	for i, c := range []byte(s) {
		if i > 0 && (len(s)-i)%3 == 0 {
			out = append(out, ',')
		}
		out = append(out, c)
	}
	return string(out)
}
