#!/usr/bin/env bash
# Profile the simulator hot path: run BenchmarkSimulation with CPU and
# allocation profiling and print the top hot frames of each, so a perf
# PR can see where the time and the garbage go before and after.
#
# Usage:
#   ./scripts/profile.sh             # profile BenchmarkSimulation, top 10
#   ./scripts/profile.sh Fig11 20    # another benchmark, top 20 frames
#
# Profiles land in ./profiles/ (git-ignored); inspect interactively with
#   go tool pprof -http=: profiles/cpu.pb.gz
set -euo pipefail

cd "$(dirname "$0")/.."

bench="${1:-Simulation}"
top="${2:-10}"
outdir=profiles
mkdir -p "$outdir"

go test -run '^$' -bench "Benchmark${bench}\$" -benchtime 3x \
  -cpuprofile "$outdir/cpu.pb.gz" -memprofile "$outdir/mem.pb.gz" .

echo
echo "=== top $top frames by CPU time ==="
go tool pprof -top -nodecount="$top" "$outdir/cpu.pb.gz" | tail -n +3

echo
echo "=== top $top frames by allocated objects ==="
go tool pprof -sample_index=alloc_objects -top -nodecount="$top" "$outdir/mem.pb.gz" | tail -n +3

echo
echo "profiles written to $outdir/ — drill down with: go tool pprof -http=: $outdir/cpu.pb.gz"
