#!/usr/bin/env bash
# End-to-end scenario-corpus test against real binaries: build mellowd,
# mellowbench and mellowsim, gate the committed corpus goldens through
# the mellowbench runner, replay one scenario through mellowsim and
# require byte-identity with its committed .expected, then submit the
# same document to a live mellowd and check the service agrees on the
# scenario's content address — three binaries, one deterministic
# result.
set -euo pipefail

cd "$(dirname "$0")/.."
go build -o /tmp/mellowd ./cmd/mellowd
go build -o /tmp/mellowbench ./cmd/mellowbench
go build -o /tmp/mellowsim ./cmd/mellowsim

# The whole corpus, twice: the acceptance bar is two consecutive
# bit-identical passes against the committed goldens.
/tmp/mellowbench -scenario-dir scenarios/
/tmp/mellowbench -scenario-dir scenarios/

# One scenario through the single-run binary: mellowsim's default flags
# rebuild the same base configuration mellowbench uses, so its result
# document must equal the committed golden byte for byte.
SCEN_FILE=scenarios/sensitivity/test-banks-4.json
GOLDEN=${SCEN_FILE%.json}.expected
/tmp/mellowsim -scenario "$SCEN_FILE" >/tmp/mellow_e2e_scen_sim.json
cmp "$GOLDEN" /tmp/mellow_e2e_scen_sim.json || {
  echo "mellowsim -scenario differs from the committed golden" >&2
  exit 1
}

# The same document through the service. The scenario result embeds its
# run key (scenario content + base config); the daemon's default base
# must agree with the CLI's, so the key in the serving path matches the
# committed golden's.
ADDR=127.0.0.1:8079
BASE=http://$ADDR
/tmp/mellowd -addr "$ADDR" -workers 2 -sim-budget 2 &
DAEMON=$!
trap 'kill $DAEMON 2>/dev/null || true; wait $DAEMON 2>/dev/null || true' EXIT
for _ in $(seq 1 100); do
  curl -fsS "$BASE/healthz" >/dev/null 2>&1 && break
  sleep 0.1
done

BODY=$(printf '{"kind":"scenario","scenario":%s}' "$(cat "$SCEN_FILE")")
sub=$(curl -fsS -X POST -H 'Content-Type: application/json' -d "$BODY" "$BASE/v1/jobs")
id=$(sed -n 's/.*"id":"\([^"]*\)".*/\1/p' <<<"$sub")
key=$(sed -n 's/.*"key":"\([0-9a-f]\{64\}\)".*/\1/p' <<<"$sub")
[ -n "$id" ] && [ -n "$key" ] || { echo "bad scenario submit response: $sub" >&2; exit 1; }
for _ in $(seq 1 600); do
  st=$(curl -fsS "$BASE/v1/jobs/$id")
  case $st in
    *'"state":"done"'*) break ;;
    *'"state":"failed"'*) echo "scenario job failed: $st" >&2; exit 1 ;;
  esac
  sleep 0.5
done
curl -fsS "$BASE/v1/results/$key" >/tmp/mellow_e2e_scen_srv.json

golden_key=$(sed -n 's/.*"key": "\([0-9a-f]\{64\}\)".*/\1/p' "$GOLDEN" | head -1)
grep -q "\"key\":\"$golden_key\"" /tmp/mellow_e2e_scen_srv.json || {
  echo "service scenario run key differs from the committed golden's ($golden_key)" >&2
  exit 1
}

echo "e2e scenario OK: corpus green twice, mellowsim byte-identical to golden, service agrees on run key $golden_key"
