// Command tracecheck validates a Chrome Trace Event Format file: the
// JSON must parse, use the object form with a traceEvents array, and
// carry at least one non-metadata event. The e2e smoke test runs it
// (`go run ./scripts/tracecheck <file>`) against traces fetched from
// mellowd, so a malformed export fails CI rather than a Perfetto
// session.
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

// traceFile is the subset of the format the checker inspects.
type traceFile struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Name string   `json:"name"`
		Ph   string   `json:"ph"`
		Ts   *float64 `json:"ts"`
		PID  *int     `json:"pid"`
		TID  *int     `json:"tid"`
	} `json:"traceEvents"`
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracecheck: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	if len(os.Args) != 2 {
		fail("usage: tracecheck <trace.json>")
	}
	data, err := os.ReadFile(os.Args[1])
	if err != nil {
		fail("%v", err)
	}
	var tf traceFile
	if err := json.Unmarshal(data, &tf); err != nil {
		fail("%s: not valid JSON: %v", os.Args[1], err)
	}
	if tf.DisplayTimeUnit == "" {
		fail("%s: missing displayTimeUnit (not the object form?)", os.Args[1])
	}
	events := 0
	for i, e := range tf.TraceEvents {
		if e.Ph == "" {
			fail("%s: event %d has no ph", os.Args[1], i)
		}
		if e.Ph == "M" {
			continue // metadata carries no timestamp
		}
		if e.Ts == nil || e.PID == nil || e.TID == nil {
			fail("%s: event %d (%q, ph %q) lacks ts/pid/tid", os.Args[1], i, e.Name, e.Ph)
		}
		events++
	}
	if events == 0 {
		fail("%s: no non-metadata trace events", os.Args[1])
	}
	fmt.Printf("tracecheck: %s OK: %d events (%d incl. metadata)\n",
		os.Args[1], events, len(tf.TraceEvents))
}
