#!/usr/bin/env bash
# End-to-end smoke test: boot mellowd, run an observed + traced compare
# matrix through the HTTP API, and check the result payload is
# byte-identical across two daemon lifetimes — the determinism contract
# behind content addressing, exercised through the parallel job matrix
# and the shared simulation scheduler. The job's execution trace is
# fetched and validated as well-formed Chrome Trace Event Format.
# Then the durability path: a job admitted to a write-ahead job log,
# the daemon killed -9 mid-run, and a restarted daemon replaying the
# log to a byte-identical result; plus batch submission, the SSE event
# stream (curl -N and mellowbench -follow), and log compaction on a
# clean SIGTERM drain.
set -euo pipefail

cd "$(dirname "$0")/.."
go build -o /tmp/mellowd ./cmd/mellowd
go build -o /tmp/mellowbench ./cmd/mellowbench

ADDR=127.0.0.1:8078
BASE=http://$ADDR
# Run lengths keep the smoke under a minute while leaving the matrix
# slow enough (~1s wall) that the kill -9 below reliably lands mid-run;
# interval_ns exercises the observed path so the series bytes are
# compared too, and trace records the execution timelines served at
# /v1/jobs/{id}/trace.
BODY='{"kind":"compare","workloads":["gups","stream"],"policies":["Norm","BE-Mellow+SC"],"interval_ns":20000,"seed":7,"warmup":0,"detailed":3000000,"trace":true}'

start_daemon() {
  /tmp/mellowd -addr "$ADDR" -workers 2 -sim-budget 2 "$@" &
  DAEMON=$!
  for _ in $(seq 1 100); do
    curl -fsS "$BASE/healthz" >/dev/null 2>&1 && return
    sleep 0.1
  done
  echo "mellowd never became healthy" >&2
  exit 1
}

stop_daemon() {
  kill "$DAEMON" 2>/dev/null || true
  wait "$DAEMON" 2>/dev/null || true
}

# run_job submits BODY, polls to completion, and prints the
# content-addressed result payload. The finished job's id is left in
# JOB_ID so the caller can fetch its trace.
run_job() {
  sub=$(curl -fsS -X POST -H 'Content-Type: application/json' -d "$BODY" "$BASE/v1/jobs")
  id=$(sed -n 's/.*"id":"\([^"]*\)".*/\1/p' <<<"$sub")
  key=$(sed -n 's/.*"key":"\([0-9a-f]\{64\}\)".*/\1/p' <<<"$sub")
  [ -n "$id" ] && [ -n "$key" ] || { echo "bad submit response: $sub" >&2; exit 1; }
  JOB_ID=$id
  for _ in $(seq 1 600); do
    st=$(curl -fsS "$BASE/v1/jobs/$id")
    case $st in
      *'"state":"done"'*) curl -fsS "$BASE/v1/results/$key"; return ;;
      *'"state":"failed"'*) echo "job failed: $st" >&2; exit 1 ;;
    esac
    sleep 0.5
  done
  echo "job $id never finished" >&2
  exit 1
}

start_daemon
trap stop_daemon EXIT

# Admission limits hold over HTTP: a sub-floor interval_ns is a 400.
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST \
  -d '{"kind":"sim","workload":"stream","policy":"Norm","interval_ns":1}' "$BASE/v1/jobs")
[ "$code" = 400 ] || { echo "interval_ns floor not enforced (got $code)" >&2; exit 1; }

run_job >/tmp/mellow_e2e_run1.json

# The traced job serves its execution trace as a separate artifact;
# tracecheck requires well-formed Chrome Trace Event Format JSON with
# at least one event.
curl -fsS "$BASE/v1/jobs/$JOB_ID/trace" >/tmp/mellow_e2e_trace.json
go run ./scripts/tracecheck /tmp/mellow_e2e_trace.json

# A job submitted without trace has no trace artifact: expect 404.
code=$(curl -s -o /dev/null -w '%{http_code}' "$BASE/v1/jobs/$JOB_ID-nope/trace")
[ "$code" = 404 ] || { echo "unknown job trace not 404 (got $code)" >&2; exit 1; }

# A fresh daemon re-simulates from scratch; equal keys must yield equal
# bytes no matter which matrix cells finished first.
stop_daemon
start_daemon
run_job >/tmp/mellow_e2e_run2.json

cmp /tmp/mellow_e2e_run1.json /tmp/mellow_e2e_run2.json || {
  echo "results differ across daemon lifetimes" >&2
  exit 1
}
grep -q '"series"' /tmp/mellow_e2e_run1.json || {
  echo "observed job result carries no series" >&2
  exit 1
}

# ---- durability: kill -9 mid-run, replay from the write-ahead log ----
stop_daemon
WAL=/tmp/mellow_e2e_jobs.wal
rm -f "$WAL"
start_daemon -joblog "$WAL"

# Admit one job (the admit record is fsynced before the 202 comes back)
# and kill the daemon hard before the multi-second matrix can finish.
sub=$(curl -fsS -X POST -H 'Content-Type: application/json' -d "$BODY" "$BASE/v1/jobs")
key=$(sed -n 's/.*"key":"\([0-9a-f]\{64\}\)".*/\1/p' <<<"$sub")
id=$(sed -n 's/.*"id":"\([^"]*\)".*/\1/p' <<<"$sub")
[ -n "$key" ] && [ -n "$id" ] || { echo "bad submit response: $sub" >&2; exit 1; }
kill -9 "$DAEMON"
wait "$DAEMON" 2>/dev/null || true
[ -s "$WAL" ] || { echo "joblog empty after admitted job" >&2; exit 1; }

# A restarted daemon replays the log and re-runs the job to completion;
# the replayed result must be byte-identical to the undisturbed runs.
start_daemon -joblog "$WAL"
for _ in $(seq 1 600); do
  if curl -fsS "$BASE/v1/results/$key" >/tmp/mellow_e2e_replay.json 2>/dev/null; then
    break
  fi
  sleep 0.5
done
cmp /tmp/mellow_e2e_run1.json /tmp/mellow_e2e_replay.json || {
  echo "replayed result differs from the undisturbed run" >&2
  exit 1
}

# The replayed job kept its pre-crash id, and its SSE feed replays the
# full epoch series followed by the terminal done event.
curl -fsSN --max-time 30 "$BASE/v1/jobs/$id/events" >/tmp/mellow_e2e_events.txt
grep -q '^event: epoch$' /tmp/mellow_e2e_events.txt || {
  echo "event stream carries no epoch events" >&2
  exit 1
}
tail -n 4 /tmp/mellow_e2e_events.txt | grep -q '^event: done$' || {
  echo "event stream did not terminate with done" >&2
  exit 1
}
# mellowbench -follow consumes the same stream as JSON lines.
/tmp/mellowbench -follow "$id" -server "$BASE" >/tmp/mellow_e2e_follow.jsonl
grep -q '"type":"epoch"' /tmp/mellow_e2e_follow.jsonl || {
  echo "mellowbench -follow printed no epoch events" >&2
  exit 1
}

# Batch submission: two jobs, one decision — 202 when fresh, 200 when
# the repeat is answered entirely from the caches.
BATCH='{"jobs":[{"kind":"sim","workload":"stream","policy":"Norm","seed":7,"warmup":0,"detailed":100000},{"kind":"sim","workload":"gups","policy":"Norm","seed":7,"warmup":0,"detailed":100000}]}'
code=$(curl -s -o /tmp/mellow_e2e_batch.json -w '%{http_code}' -X POST \
  -H 'Content-Type: application/json' -d "$BATCH" "$BASE/v1/jobs:batch")
[ "$code" = 202 ] || { echo "fresh batch not 202 (got $code)" >&2; exit 1; }
bid=$(sed -n 's/.*"id":"\([^"]*\)".*/\1/p' /tmp/mellow_e2e_batch.json | head -1)
for _ in $(seq 1 600); do
  st=$(curl -fsS "$BASE/v1/jobs/$bid")
  case $st in *'"state":"done"'*) break ;; *'"state":"failed"'*) echo "batch job failed: $st" >&2; exit 1 ;; esac
  sleep 0.5
done
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST \
  -H 'Content-Type: application/json' -d "$BATCH" "$BASE/v1/jobs:batch")
[ "$code" = 200 ] || { echo "repeat batch not 200 (got $code)" >&2; exit 1; }

# ---- scenario jobs: declarative documents through the same pipeline ----
# A scenario job carries its whole matrix in the document; the server
# rejects matrix fields on the request itself, and a scenario with
# interval_ns is refused so golden documents stay byte-stable.
SCEN='{"kind":"scenario","scenario":{"name":"e2e-smoke","workloads":[{"name":"gups"}],"policies":["Norm","BE-Mellow+SC"],"overrides":{"seed":7,"llc_bytes":262144,"warmup_instructions":100000,"detailed_instructions":200000}}}'
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST \
  -d "${SCEN%\}}, \"interval_ns\": 500000}" "$BASE/v1/jobs")
[ "$code" = 400 ] || { echo "scenario with interval_ns not rejected (got $code)" >&2; exit 1; }
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST \
  -d "${SCEN%\}}, \"policy\": \"Norm\"}" "$BASE/v1/jobs")
[ "$code" = 400 ] || { echo "scenario with request-level policy not rejected (got $code)" >&2; exit 1; }

sub=$(curl -fsS -X POST -H 'Content-Type: application/json' -d "$SCEN" "$BASE/v1/jobs")
sid=$(sed -n 's/.*"id":"\([^"]*\)".*/\1/p' <<<"$sub")
skey=$(sed -n 's/.*"key":"\([0-9a-f]\{64\}\)".*/\1/p' <<<"$sub")
[ -n "$sid" ] && [ -n "$skey" ] || { echo "bad scenario submit response: $sub" >&2; exit 1; }
for _ in $(seq 1 600); do
  st=$(curl -fsS "$BASE/v1/jobs/$sid")
  case $st in
    *'"state":"done"'*) break ;;
    *'"state":"failed"'*) echo "scenario job failed: $st" >&2; exit 1 ;;
  esac
  sleep 0.5
done
curl -fsS "$BASE/v1/results/$skey" >/tmp/mellow_e2e_scenario.json
grep -q '"scenario"' /tmp/mellow_e2e_scenario.json || {
  echo "scenario result carries no scenario document" >&2
  exit 1
}
# Same document again: answered from the cache, same content address.
# (The cached answer is the full JobResult, which also embeds the
# scenario's run key — take the first, outer key.)
sub2=$(curl -fsS -X POST -H 'Content-Type: application/json' -d "$SCEN" "$BASE/v1/jobs")
skey2=$(grep -o '"key":"[0-9a-f]\{64\}"' <<<"$sub2" | head -1 | cut -d'"' -f4)
[ "$skey" = "$skey2" ] || { echo "scenario resubmit changed key: $skey vs $skey2" >&2; exit 1; }

# A clean SIGTERM drain finishes everything and compacts the log to
# empty — the next boot has nothing to replay.
stop_daemon
[ -f "$WAL" ] && [ ! -s "$WAL" ] || {
  echo "joblog not compacted to empty after clean drain ($(wc -c <"$WAL") bytes)" >&2
  exit 1
}

echo "e2e smoke OK: $(wc -c </tmp/mellow_e2e_run1.json) identical bytes across restarts and a kill -9 replay"
