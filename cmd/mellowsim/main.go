// Command mellowsim runs a single (workload, policy) simulation of the
// Mellow Writes resistive-memory system and prints its measurements.
//
// Usage:
//
//	mellowsim -workload lbm -policy BE-Mellow+SC+WQ
//	mellowsim -workload gups -policy Slow@1.5x+SC -banks 8 -expo 2.5
//	mellowsim -workload stream -policy Norm -json
//	mellowsim -scenario scenarios/policies/test-eval-stream.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"mellow"
)

func main() {
	var (
		workload = flag.String("workload", "stream", "workload name (see -list)")
		traceIn  = flag.String("trace", "", "replay a textual trace file instead of a synthetic workload")
		scenPath = flag.String("scenario", "", "run one declarative scenario file and print its result document")
		policyNm = flag.String("policy", "BE-Mellow+SC", "write policy, e.g. Norm, Slow, B-Mellow+SC, BE-Mellow+SC+WQ")
		instrs   = flag.Uint64("instructions", 0, "detailed instructions (0 = default 20M)")
		warmup   = flag.Uint64("warmup", 0, "warmup instructions (0 = default 6M)")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		banks    = flag.Int("banks", 16, "total banks (4, 8 or 16)")
		expo     = flag.Float64("expo", 2.0, "latency/endurance ExpoFactor (1.0-3.0)")
		leveler  = flag.String("leveler", "", `wear-leveling backend: "startgap" (default), "wolfram" or "softwear"`)
		asJSON   = flag.Bool("json", false, "emit the result as JSON")
		list     = flag.Bool("list", false, "list workloads and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("workloads:", strings.Join(mellow.Workloads(), " "))
		return
	}

	cfg := mellow.DefaultConfig()
	if *instrs > 0 {
		cfg.Run.DetailedInstructions = *instrs
	}
	if *warmup > 0 {
		cfg.Run.WarmupInstructions = *warmup
	}
	cfg.Run.Seed = *seed
	cfg.Memory.Device.ExpoFactor = *expo
	if *leveler != "" {
		cfg.Memory.WearLeveler = *leveler
	}
	var err error
	if cfg, err = cfg.WithBanks(*banks); err != nil {
		fatal(err)
	}
	if err = cfg.Validate(); err != nil {
		fatal(err)
	}
	// -scenario runs a whole declarative matrix against the flag-built
	// base configuration and prints the deterministic result document —
	// the same bytes mellowbench -scenario-dir pins as goldens.
	if *scenPath != "" {
		sc, err := mellow.LoadScenario(*scenPath)
		if err != nil {
			fatal(err)
		}
		res, err := mellow.RunScenario(context.Background(), cfg, sc)
		if err != nil {
			fatal(err)
		}
		b, err := res.Encode()
		if err != nil {
			fatal(err)
		}
		if _, err := os.Stdout.Write(b); err != nil {
			fatal(err)
		}
		return
	}
	spec, err := mellow.ParsePolicy(*policyNm)
	if err != nil {
		fatal(err)
	}
	// A comma-separated workload list runs as a multiprogrammed mix of
	// one core per program sharing the memory system.
	if *traceIn == "" && strings.Contains(*workload, ",") {
		mix := strings.Split(*workload, ",")
		m, err := mellow.RunMix(cfg, spec, mix...)
		if err != nil {
			fatal(err)
		}
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(m); err != nil {
				fatal(err)
			}
			return
		}
		fmt.Printf("mix                %s\n", *workload)
		fmt.Printf("policy             %s\n", m.Policy)
		for _, cr := range m.Cores {
			fmt.Printf("core %-12s  IPC %.3f  MPKI %.2f\n", cr.Workload, cr.IPC, cr.MPKI)
		}
		fmt.Printf("throughput         %.3f IPC (sum)\n", m.WeightedIPC())
		fmt.Printf("lifetime           %.2f years\n", m.LifetimeYears())
		fmt.Printf("bank utilization   %.1f%%\n", m.Mem.AvgUtilization*100)
		fmt.Printf("writes norm/slow   %d/%d\n", m.Mem.WritesByMode[0], m.Mem.SlowWrites())
		return
	}
	var res mellow.Result
	if *traceIn != "" {
		f, err := os.Open(*traceIn)
		if err != nil {
			fatal(err)
		}
		w, err := mellow.WorkloadFromReader(*traceIn, f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		res, err = mellow.RunWorkload(cfg, spec, w)
		if err != nil {
			fatal(err)
		}
	} else if res, err = mellow.Run(cfg, spec, *workload); err != nil {
		fatal(err)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("workload           %s\n", res.Workload)
	fmt.Printf("policy             %s\n", res.Policy)
	fmt.Printf("instructions       %d\n", res.Instructions)
	fmt.Printf("IPC                %.3f\n", res.IPC)
	fmt.Printf("MPKI               %.2f\n", res.MPKI)
	fmt.Printf("lifetime           %.2f years\n", res.LifetimeYears())
	fmt.Printf("bank utilization   %.1f%%\n", res.Mem.AvgUtilization*100)
	fmt.Printf("write drain time   %.2f%%\n", res.Mem.DrainFraction*100)
	fmt.Printf("writes (normal)    %d\n", res.Mem.WritesByMode[0])
	fmt.Printf("writes (slow)      %d\n", res.Mem.SlowWrites())
	fmt.Printf("eager writes       %d\n", res.Mem.EagerDone)
	fmt.Printf("cancelled writes   %d\n", res.Mem.TotalCancelled())
	fmt.Printf("memory energy      %.2f uJ\n", res.Mem.EnergyPJ/1e6)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mellowsim:", err)
	os.Exit(1)
}
