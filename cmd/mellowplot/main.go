// Command mellowplot renders the paper's main evaluation figures as SVG
// bar charts (the plain-text analogues live in mellowbench). It runs the
// Figures 10–16 policy sweep once and writes one file per figure.
//
// Usage:
//
//	mellowplot -out figures/            # full settings (minutes)
//	mellowplot -out figures/ -quick -workloads stream,lbm,gups
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mellow/internal/config"
	"mellow/internal/core"
	"mellow/internal/experiments"
	"mellow/internal/policy"
	"mellow/internal/stats"
	"mellow/internal/trace"
)

func main() {
	var (
		out       = flag.String("out", "figures", "output directory for SVG files")
		quick     = flag.Bool("quick", false, "scale run lengths down ~10x")
		workloads = flag.String("workloads", "", "comma-separated subset of the suite")
		seed      = flag.Uint64("seed", 1, "simulation seed")
	)
	flag.Parse()

	cfg := config.Default()
	cfg.Run.Seed = *seed
	if *quick {
		cfg.Run.WarmupInstructions = 1_000_000
		cfg.Run.DetailedInstructions = 3_000_000
	}
	suite := trace.Names()
	if *workloads != "" {
		suite = strings.Split(*workloads, ",")
	}
	o := experiments.Options{Cfg: cfg, Out: os.Stdout, Workloads: suite}
	res, specs, err := experiments.EvalSweep(o)
	if err != nil {
		fatal(err)
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	figures := []struct {
		file, title, ylabel string
		log                 bool
		value               func(r, base core.Result) float64
	}{
		{"fig10_ipc.svg", "Figure 10: IPC by write policy (normalized to Norm)", "IPC vs Norm", false,
			func(r, base core.Result) float64 { return r.IPC / base.IPC }},
		{"fig11_lifetime.svg", "Figure 11: memory lifetime by write policy", "years (log)", true,
			func(r, base core.Result) float64 { return r.LifetimeYears() }},
		{"fig12_utilization.svg", "Figure 12: average bank utilization", "busy fraction", false,
			func(r, base core.Result) float64 { return r.Mem.AvgUtilization }},
		{"fig13_drain.svg", "Figure 13: time in write drain", "fraction of time", false,
			func(r, base core.Result) float64 { return r.Mem.DrainFraction }},
		{"fig15_bankreqs.svg", "Figure 15: requests issued to banks (normalized)", "vs Norm", false,
			func(r, base core.Result) float64 {
				return float64(r.Mem.BankAttempts) / float64(base.Mem.BankAttempts)
			}},
		{"fig16_energy.svg", "Figure 16: main memory energy (normalized)", "vs Norm", false,
			func(r, base core.Result) float64 { return r.Mem.EnergyPJ / base.Mem.EnergyPJ }},
	}
	for _, f := range figures {
		g := &stats.GroupedBars{Title: f.title, YLabel: f.ylabel, Series: policy.Names(specs), Log: f.log}
		for _, w := range suite {
			base := res[[2]string{"Norm", w}]
			var vals []float64
			for _, s := range specs {
				vals = append(vals, f.value(res[[2]string{s.Name, w}], base))
			}
			g.AddGroup(w, vals...)
		}
		path := filepath.Join(*out, f.file)
		fh, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if _, err := g.WriteTo(fh); err != nil {
			fatal(err)
		}
		if err := fh.Close(); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", path)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mellowplot:", err)
	os.Exit(1)
}
