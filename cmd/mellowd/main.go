// Command mellowd serves the simulation harness over HTTP: submit jobs,
// poll them, and fetch content-addressed results. Identical concurrent
// submissions run once; finished work is cached; load past the queue
// bound is shed with 429.
//
// Usage:
//
//	mellowd                              # listen on :8077
//	mellowd -addr :9000 -workers 8 -queue 64
//	mellowd -sim-budget 4                # at most 4 concurrent simulations, any job mix
//	mellowd -job-timeout 5m -quick
//	mellowd -joblog /var/lib/mellowd/jobs.wal  # durable queue: replay after a crash
//	mellowd -pprof-addr 127.0.0.1:6060   # net/http/pprof on a separate listener
//
// API:
//
//	POST /v1/jobs        {"kind":"sim","workload":"stream","policy":"BE-Mellow+SC"}
//	POST /v1/jobs        {"kind":"compare","workload":"gups","interval_ns":500000}
//	POST /v1/jobs        {"kind":"sim",...,"trace":true}   # record an execution trace
//	POST /v1/jobs:batch  {"jobs":[{...},{...}]}  # many submissions, one shed decision
//	GET  /v1/jobs/{id}   job status: live "progress" fraction, current
//	                     "epoch" sample, result inline when done
//	GET  /v1/jobs/{id}/events  live Server-Sent-Events feed of the job's
//	                     epoch series (curl -N; replays from the start)
//	GET  /v1/jobs/{id}/trace  finished traced job's Chrome/Perfetto trace JSON
//	GET  /v1/results/{key}  deterministic result payload by content address
//	GET  /healthz        liveness + queue depth
//	GET  /metrics        Prometheus text exposition
//
// With -joblog, every admission is fsynced to a write-ahead log before
// it is acknowledged; on startup the log is replayed and unfinished
// jobs re-enqueued under their original ids, so queued work survives a
// kill -9. A clean drain compacts the log.
//
// Profiling is opt-in and isolated: -pprof-addr serves the standard
// net/http/pprof handlers on its own mux and listener (bind it to
// loopback), never on the public API address.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"mellow/internal/config"
	"mellow/internal/experiments"
	"mellow/internal/joblog"
	"mellow/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", ":8077", "listen address")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "job worker pool size")
		simBudget  = flag.Int("sim-budget", runtime.GOMAXPROCS(0), "process-wide cap on concurrent simulations across all jobs")
		queue      = flag.Int("queue", 0, "admission queue bound (default 4x workers)")
		jobTimeout = flag.Duration("job-timeout", 15*time.Minute, "per-job execution cap")
		drain      = flag.Duration("drain", 10*time.Minute, "graceful-shutdown drain budget")
		maxResults = flag.Int("max-results", 1024, "finished jobs kept addressable")
		simCache   = flag.Int("sim-cache", experiments.DefaultCacheCap, "memoised simulations kept (<=0 unbounded)")
		joblogPath = flag.String("joblog", "", "write-ahead job log path; admissions are fsynced and replayed after a crash (empty: no durability)")
		pprofAddr  = flag.String("pprof-addr", "", "serve net/http/pprof on this address (e.g. 127.0.0.1:6060; empty: disabled)")
		quick      = flag.Bool("quick", false, "scale default run lengths down ~10x")
	)
	flag.Parse()

	log := slog.New(slog.NewJSONHandler(os.Stderr, nil))
	experiments.SetCacheCap(*simCache)

	base := config.Default()
	if *quick {
		base.Run.WarmupInstructions = 1_000_000
		base.Run.DetailedInstructions = 3_000_000
	}
	var wal *joblog.Log
	if *joblogPath != "" {
		var err error
		wal, err = joblog.Open(*joblogPath)
		if err != nil {
			log.Error("joblog open failed", "path", *joblogPath, "err", err)
			os.Exit(1)
		}
		st := wal.Stats()
		log.Info("joblog opened", "path", *joblogPath,
			"replayed_records", st.Replayed, "pending_jobs", st.Pending,
			"tail_dropped", st.TailDropped)
	}

	svc := server.New(server.Config{
		Workers:    *workers,
		SimBudget:  *simBudget,
		QueueDepth: *queue,
		JobTimeout: *jobTimeout,
		MaxResults: *maxResults,
		BaseConfig: &base,
		Logger:     log,
		JobLog:     wal,
	})
	if wal != nil {
		// Replay concurrently with serving: the queue may be smaller
		// than the pending backlog, and clients re-submitting replayed
		// work simply join it.
		go func() {
			n, err := svc.Restore()
			if err != nil {
				log.Error("joblog replay incomplete", "restored", n, "err", err)
				return
			}
			log.Info("joblog replay complete", "restored", n)
		}()
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// pprof gets its own mux and listener so the profiling surface is
	// never exposed on the public API address. The default-mux handlers
	// net/http/pprof registers on import are not served anywhere — both
	// API and pprof listeners use explicit muxes.
	var pprofSrv *http.Server
	if *pprofAddr != "" {
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		pprofSrv = &http.Server{
			Addr:              *pprofAddr,
			Handler:           pmux,
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			if err := pprofSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Error("pprof listen failed", "addr", *pprofAddr, "err", err)
			}
		}()
		log.Info("pprof listening", "addr", *pprofAddr)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Info("mellowd listening", "addr", *addr, "workers", *workers, "sim_budget", *simBudget)

	select {
	case <-ctx.Done():
		log.Info("signal received, draining", "budget", drain.String())
	case err := <-errc:
		log.Error("listen failed", "err", err)
		os.Exit(1)
	}

	// Stop accepting connections first, then drain queued and in-flight
	// jobs before exiting.
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Warn("http shutdown", "err", err)
	}
	if pprofSrv != nil {
		if err := pprofSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Warn("pprof shutdown", "err", err)
		}
	}
	if err := svc.Shutdown(drainCtx); err != nil {
		log.Warn("drain incomplete, jobs cancelled", "err", err)
		fmt.Fprintln(os.Stderr, "mellowd: drain incomplete:", err)
		os.Exit(1)
	}
	if wal != nil {
		// A clean drain finished everything: compaction rewrites the log
		// down to whatever is still pending (normally nothing).
		if err := wal.Compact(); err != nil {
			log.Warn("joblog compaction failed", "err", err)
		}
		if err := wal.Close(); err != nil {
			log.Warn("joblog close failed", "err", err)
		}
	}
	log.Info("drained, bye")
}
