// Command mellowbench regenerates the paper's tables and figures.
//
// Usage:
//
//	mellowbench -exp fig11              # one figure, full settings
//	mellowbench -exp all                # everything (minutes)
//	mellowbench -exp fig10 -quick       # scaled-down run lengths
//	mellowbench -exp fig2 -workloads stream,lbm,gups
//	mellowbench -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mellow"
)

func main() {
	var (
		exp       = flag.String("exp", "all", `experiment id ("fig11", "tab4", ...) or "all"`)
		quick     = flag.Bool("quick", false, "scale run lengths down ~10x for a fast look")
		workloads = flag.String("workloads", "", "comma-separated subset of the suite")
		seed      = flag.Uint64("seed", 1, "simulation seed")
		list      = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range mellow.Experiments() {
			fmt.Printf("%-6s %s\n", e.ID, e.Title)
		}
		return
	}

	cfg := mellow.DefaultConfig()
	cfg.Run.Seed = *seed
	if *quick {
		cfg.Run.WarmupInstructions = 1_000_000
		cfg.Run.DetailedInstructions = 3_000_000
	}
	var suite []string
	if *workloads != "" {
		suite = strings.Split(*workloads, ",")
	}

	var todo []mellow.Experiment
	if *exp == "all" {
		todo = mellow.Experiments()
	} else {
		e, err := mellow.ExperimentByID(*exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mellowbench:", err)
			os.Exit(1)
		}
		todo = []mellow.Experiment{e}
	}

	for i, e := range todo {
		if i > 0 {
			fmt.Println()
		}
		start := time.Now()
		opts := mellow.ExperimentOptions{Cfg: cfg, Out: os.Stdout, Workloads: suite}
		if err := e.Run(opts); err != nil {
			fmt.Fprintf(os.Stderr, "mellowbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %v]\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
