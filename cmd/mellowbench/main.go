// Command mellowbench regenerates the paper's tables and figures.
//
// Usage:
//
//	mellowbench -exp fig11              # one figure, full settings
//	mellowbench -exp all                # everything (minutes)
//	mellowbench -exp fig10 -quick       # scaled-down run lengths
//	mellowbench -exp fig2 -workloads stream,lbm,gups
//	mellowbench -exp fig11 -json        # machine-readable reports
//	mellowbench -exp all -timeout 10m   # bound the whole run
//	mellowbench -list
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mellow"
	"mellow/internal/server"
)

func main() {
	var (
		exp       = flag.String("exp", "all", `experiment id ("fig11", "tab4", ...) or "all"`)
		quick     = flag.Bool("quick", false, "scale run lengths down ~10x for a fast look")
		workloads = flag.String("workloads", "", "comma-separated subset of the suite")
		seed      = flag.Uint64("seed", 1, "simulation seed")
		timeout   = flag.Duration("timeout", 0, "abort the run after this long (0: no limit)")
		jsonOut   = flag.Bool("json", false, "emit reports as JSON (mellowd's experiment encoding)")
		list      = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range mellow.Experiments() {
			fmt.Printf("%-6s %s\n", e.ID, e.Title)
		}
		return
	}

	cfg := mellow.DefaultConfig()
	cfg.Run.Seed = *seed
	if *quick {
		cfg.Run.WarmupInstructions = 1_000_000
		cfg.Run.DetailedInstructions = 3_000_000
	}
	var suite []string
	if *workloads != "" {
		suite = strings.Split(*workloads, ",")
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var todo []mellow.Experiment
	if *exp == "all" {
		todo = mellow.Experiments()
	} else {
		e, err := mellow.ExperimentByID(*exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mellowbench:", err)
			os.Exit(1)
		}
		todo = []mellow.Experiment{e}
	}

	var reports []server.ExperimentReport
	for i, e := range todo {
		if !*jsonOut && i > 0 {
			fmt.Println()
		}
		start := time.Now()
		out := os.Stdout
		var buf bytes.Buffer
		opts := mellow.ExperimentOptions{Ctx: ctx, Cfg: cfg, Workloads: suite}
		if *jsonOut {
			opts.Out = &buf
		} else {
			opts.Out = out
		}
		if err := e.Run(opts); err != nil {
			fmt.Fprintf(os.Stderr, "mellowbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		if *jsonOut {
			reports = append(reports, server.ExperimentReport{
				ID: e.ID, Title: e.Title, Output: buf.String(),
			})
		} else {
			fmt.Printf("[%s completed in %v]\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			fmt.Fprintln(os.Stderr, "mellowbench:", err)
			os.Exit(1)
		}
	}
}
