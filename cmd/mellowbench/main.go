// Command mellowbench regenerates the paper's tables and figures.
//
// Usage:
//
//	mellowbench -exp fig11              # one figure, full settings
//	mellowbench -exp all                # everything (minutes)
//	mellowbench -exp fig10 -quick       # scaled-down run lengths
//	mellowbench -exp fig2 -workloads stream,lbm,gups
//	mellowbench -exp fig11 -json        # machine-readable reports
//	mellowbench -exp all -timeout 10m   # bound the whole run
//	mellowbench -exp all -parallel 4    # at most 4 concurrent simulations
//	mellowbench -exp fig11 -progress    # live sweep status on stderr
//	mellowbench -exp fig11 -interval 500us   # per-epoch time series as JSON
//	mellowbench -exp fig11 -metrics     # process metrics snapshot after the run
//	mellowbench -exp fig11 -trace out.trace.json   # execution trace for Perfetto
//	mellowbench -scenario-dir scenarios/          # run the declarative corpus against its goldens
//	mellowbench -scenario-dir scenarios/ -update  # regenerate the corpus goldens
//	mellowbench -follow job-000001 -server http://localhost:8077
//	mellowbench -list
//
// -follow switches mellowbench into client mode: it attaches to a
// running mellowd's GET /v1/jobs/{id}/events feed and prints one JSON
// line per event — the job's epoch series live, then the terminal
// done/failed event. The feed replays from the start, so following a
// finished job prints its complete series.
//
// -interval samples every simulation at the given period of simulated
// time (the paper's T_sample is 500us) and dumps one JSON series record
// per (workload, policy) after the tables — or embeds them in the
// reports with -json. -progress writes "done/total simulations" status
// lines to stderr as the sweep advances. -trace records every
// simulation's execution timeline (engine phases, epochs, per-bank
// reads, fast/slow/eager writes, cancellations, drain windows, Wear
// Quota flips) and writes one Chrome Trace Event Format file — open it
// at https://ui.perfetto.dev. Traced runs produce byte-identical
// tables and series to untraced ones.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"mellow"
	"mellow/internal/experiments"
	"mellow/internal/metrics"
	"mellow/internal/sched"
	"mellow/internal/server"
)

// runScenarioCorpus executes every scenario under dir in sorted order,
// comparing each result document against its committed .expected golden
// (or regenerating the goldens with -update). One line per scenario;
// any failure exits non-zero after the whole corpus has been attempted.
func runScenarioCorpus(ctx context.Context, cfg mellow.Config, dir string, update bool) {
	start := time.Now()
	failed := 0
	outcomes, err := experiments.RunScenarioCorpus(ctx, cfg, dir, update, func(oc experiments.ScenarioOutcome) {
		switch {
		case oc.Err != nil:
			failed++
			fmt.Fprintf(os.Stderr, "FAIL    %s: %v\n", oc.Name, oc.Err)
		case oc.Updated:
			fmt.Printf("updated %s (%d cells)\n", oc.Name, len(oc.Result.Cells))
		default:
			fmt.Printf("ok      %s (%d cells)\n", oc.Name, len(oc.Result.Cells))
		}
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mellowbench:", err)
		os.Exit(1)
	}
	fmt.Printf("[%d scenarios, %d failed, %v]\n", len(outcomes), failed, time.Since(start).Round(time.Millisecond))
	if failed > 0 {
		os.Exit(1)
	}
}

func main() {
	var (
		exp       = flag.String("exp", "all", `experiment id ("fig11", "tab4", ...) or "all"`)
		quick     = flag.Bool("quick", false, "scale run lengths down ~10x for a fast look")
		workloads = flag.String("workloads", "", "comma-separated subset of the suite")
		seed      = flag.Uint64("seed", 1, "simulation seed")
		timeout   = flag.Duration("timeout", 0, "abort the run after this long (0: no limit)")
		parallel  = flag.Int("parallel", runtime.GOMAXPROCS(0), "process-wide cap on concurrent simulations")
		jsonOut   = flag.Bool("json", false, "emit reports as JSON (mellowd's experiment encoding)")
		withMet   = flag.Bool("metrics", false, "append a process metrics snapshot (scheduler, memo cache, runtime) as JSON")
		interval  = flag.Duration("interval", 0, "sample an epoch series at this period of simulated time (e.g. 500us, min 1us; 0: off)")
		progress  = flag.Bool("progress", false, "report sweep progress on stderr")
		traceOut  = flag.String("trace", "", "write every simulation's execution timeline to this file (Chrome Trace Event Format JSON, open in Perfetto)")
		follow    = flag.String("follow", "", "follow a mellowd job's live event stream by id and exit (client mode)")
		serverURL = flag.String("server", "http://localhost:8077", "mellowd base URL for -follow")
		leveler   = flag.String("leveler", "", `wear-leveling backend: "startgap" (default), "wolfram" or "softwear"`)
		scenDir   = flag.String("scenario-dir", "", "run every test-*.json scenario under this directory against its committed .expected golden and exit")
		update    = flag.Bool("update", false, "with -scenario-dir: regenerate the .expected goldens instead of comparing")
		list      = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *follow != "" {
		if err := followJob(*serverURL, *follow); err != nil {
			fmt.Fprintln(os.Stderr, "mellowbench:", err)
			os.Exit(1)
		}
		return
	}

	// Same floor mellowd enforces at admission: finer sampling than 1 µs
	// of simulated time produces an effectively unbounded series.
	if *interval > 0 && *interval < time.Microsecond {
		fmt.Fprintf(os.Stderr, "mellowbench: -interval %v below the 1µs floor\n", *interval)
		os.Exit(1)
	}
	// All simulations in the process share one scheduler: its budget is
	// the hard cap on concurrency however wide the sweeps fan out.
	sched.Default().SetBudget(int64(*parallel))

	if *list {
		for _, e := range mellow.Experiments() {
			fmt.Printf("%-6s %s\n", e.ID, e.Title)
		}
		return
	}

	cfg := mellow.DefaultConfig()
	cfg.Run.Seed = *seed
	if *leveler != "" {
		cfg.Memory.WearLeveler = *leveler
		if err := cfg.Validate(); err != nil {
			fmt.Fprintln(os.Stderr, "mellowbench:", err)
			os.Exit(1)
		}
	}
	if *quick {
		cfg.Run.WarmupInstructions = 1_000_000
		cfg.Run.DetailedInstructions = 3_000_000
	}
	var suite []string
	if *workloads != "" {
		suite = strings.Split(*workloads, ",")
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *scenDir != "" {
		runScenarioCorpus(ctx, cfg, *scenDir, *update)
		return
	}

	var todo []mellow.Experiment
	if *exp == "all" {
		todo = mellow.Experiments()
	} else {
		e, err := mellow.ExperimentByID(*exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mellowbench:", err)
			os.Exit(1)
		}
		todo = []mellow.Experiment{e}
	}

	var reports []server.ExperimentReport
	// Experiments share memoised simulations, so the same *SimTrace can
	// arrive more than once; the trace file keeps each timeline once.
	var simTraces []*mellow.SimTrace
	seenTrace := map[*mellow.SimTrace]bool{}
	for i, e := range todo {
		if !*jsonOut && i > 0 {
			fmt.Println()
		}
		start := time.Now()
		out := os.Stdout
		var buf bytes.Buffer
		opts := mellow.ExperimentOptions{Ctx: ctx, Cfg: cfg, Workloads: suite}
		if *jsonOut {
			opts.Out = &buf
		} else {
			opts.Out = out
		}
		var series []mellow.SeriesRecord
		if *interval > 0 {
			opts.Epoch = mellow.NS(uint64(interval.Nanoseconds()))
			opts.OnSeries = func(rec mellow.SeriesRecord) { series = append(series, rec) }
		}
		if *progress {
			id := e.ID
			opts.OnProgress = func(done, total int) {
				fmt.Fprintf(os.Stderr, "mellowbench: %s: %d/%d simulations\n", id, done, total)
			}
		}
		if *traceOut != "" {
			opts.Trace = true
			opts.OnTrace = func(rec mellow.TraceRecord) {
				if !seenTrace[rec.Trace] {
					seenTrace[rec.Trace] = true
					simTraces = append(simTraces, rec.Trace)
				}
			}
		}
		if err := e.Run(opts); err != nil {
			fmt.Fprintf(os.Stderr, "mellowbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		if *jsonOut {
			reports = append(reports, server.ExperimentReport{
				ID: e.ID, Title: e.Title, Output: buf.String(), Series: series,
			})
		} else {
			if len(series) > 0 {
				enc := json.NewEncoder(out)
				for _, rec := range series {
					if err := enc.Encode(rec); err != nil {
						fmt.Fprintln(os.Stderr, "mellowbench:", err)
						os.Exit(1)
					}
				}
			}
			fmt.Printf("[%s completed in %v]\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mellowbench:", err)
			os.Exit(1)
		}
		doc := &mellow.TraceDoc{Sims: simTraces}
		werr := doc.WriteChrome(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(os.Stderr, "mellowbench:", werr)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "mellowbench: wrote %d simulation timelines to %s\n",
			len(simTraces), *traceOut)
	}
	// -metrics snapshots the same process-scope collectors mellowd
	// serves at /metrics — one taxonomy across both binaries. The
	// registry is built only now, after the sweeps, so the snapshot
	// reflects the whole run; without the flag nothing is registered
	// and output stays byte-identical to earlier releases.
	var snap *metrics.Snapshot
	if *withMet {
		reg := metrics.NewRegistry()
		server.RegisterProcessCollectors(reg)
		s := reg.Snapshot()
		snap = &s
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if *jsonOut {
		var payload any = reports
		if snap != nil {
			payload = struct {
				Reports []server.ExperimentReport `json:"reports"`
				Metrics *metrics.Snapshot         `json:"metrics"`
			}{Reports: reports, Metrics: snap}
		}
		if err := enc.Encode(payload); err != nil {
			fmt.Fprintln(os.Stderr, "mellowbench:", err)
			os.Exit(1)
		}
	} else if snap != nil {
		if err := enc.Encode(snap); err != nil {
			fmt.Fprintln(os.Stderr, "mellowbench:", err)
			os.Exit(1)
		}
	}
}
