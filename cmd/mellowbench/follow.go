package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strings"

	"mellow/internal/server"
)

// followJob consumes a mellowd job's Server-Sent-Events feed
// (GET /v1/jobs/{id}/events) and writes one JSON line per event to
// stdout. The feed replays from the job's first epoch regardless of
// when we attach, and the epoch events are byte-for-byte the series the
// finished result embeds, so piping this to a file captures the same
// data a result fetch would — just live. Returns an error for transport
// failures; a job that ends in a failed event exits through os.Exit so
// scripts can distinguish "stream worked, job failed".
func followJob(baseURL, id string) error {
	url := strings.TrimRight(baseURL, "/") + "/v1/jobs/" + id + "/events"
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: HTTP %s", url, resp.Status)
	}
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue // id:/event: lines, keepalive comments, separators
		}
		payload := strings.TrimPrefix(line, "data: ")
		var ev server.StreamEvent
		if err := json.Unmarshal([]byte(payload), &ev); err != nil {
			return fmt.Errorf("bad event payload: %v", err)
		}
		fmt.Fprintln(out, payload)
		switch ev.Type {
		case server.EventDone:
			return nil
		case server.EventFailed:
			out.Flush()
			fmt.Fprintf(os.Stderr, "mellowbench: job %s failed: %s\n", id, ev.Error)
			os.Exit(1)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("stream interrupted: %v", err)
	}
	return fmt.Errorf("stream ended without a terminal event")
}
