// Command mellowtrace inspects the synthetic workload generators: it
// dumps raw trace records or summarises a workload's memory behaviour
// (instruction mix, read/write split, dependence, working set). Useful
// when calibrating generators against Table IV or debugging a pattern.
//
// Usage:
//
//	mellowtrace -workload lbm -summary -ops 2000000
//	mellowtrace -workload gups -dump -ops 20
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"mellow/internal/trace"
)

func main() {
	var (
		workload = flag.String("workload", "stream", "workload name")
		ops      = flag.Uint64("ops", 1_000_000, "number of trace ops to generate")
		seed     = flag.Uint64("seed", 1, "generator seed")
		dump     = flag.Bool("dump", false, "print raw records instead of a summary")
		export   = flag.String("export", "", "write records to a trace file (replayable by mellowsim -trace)")
		list     = flag.Bool("list", false, "list workloads and exit")
	)
	flag.Parse()

	if *list {
		for _, w := range trace.All() {
			fmt.Printf("%-12s target MPKI %.2f\n", w.Name, w.TargetMPKI)
		}
		return
	}
	w, err := trace.ByName(*workload)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mellowtrace:", err)
		os.Exit(1)
	}
	g := w.New(*seed)

	if *export != "" {
		f, err := os.Create(*export)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mellowtrace:", err)
			os.Exit(1)
		}
		if err := trace.Record(f, g, int(*ops)); err != nil {
			fmt.Fprintln(os.Stderr, "mellowtrace:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "mellowtrace:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d records to %s\n", *ops, *export)
		return
	}

	if *dump {
		fmt.Println("gap  addr         kind  dep")
		for i := uint64(0); i < *ops; i++ {
			op := g.Next()
			kind := "R"
			if op.Write {
				kind = "W"
			}
			dep := ""
			if op.Dep {
				dep = "dep"
			}
			fmt.Printf("%-4d %#012x %-5s %s\n", op.Gap, op.Addr, kind, dep)
		}
		return
	}

	var (
		instr, reads, writes, deps uint64
		gapSum                     uint64
		lines                      = map[uint64]struct{}{}
		minAddr                    = ^uint64(0)
		maxAddr                    uint64
	)
	for i := uint64(0); i < *ops; i++ {
		op := g.Next()
		instr += uint64(op.Gap) + 1
		gapSum += uint64(op.Gap)
		if op.Write {
			writes++
		} else {
			reads++
		}
		if op.Dep {
			deps++
		}
		lines[op.Addr>>6] = struct{}{}
		if op.Addr < minAddr {
			minAddr = op.Addr
		}
		if op.Addr > maxAddr {
			maxAddr = op.Addr
		}
	}
	total := reads + writes
	fmt.Printf("workload          %s (target MPKI %.2f)\n", w.Name, w.TargetMPKI)
	fmt.Printf("ops               %d (%d instructions)\n", total, instr)
	fmt.Printf("memory fraction   %.1f%% of instructions\n", 100*float64(total)/float64(instr))
	fmt.Printf("mean gap          %.2f instructions\n", float64(gapSum)/float64(total))
	fmt.Printf("reads / writes    %.1f%% / %.1f%%\n",
		100*float64(reads)/float64(total), 100*float64(writes)/float64(total))
	fmt.Printf("dependent loads   %.1f%%\n", 100*float64(deps)/float64(total))
	fmt.Printf("touched lines     %d (%.1f MB)\n", len(lines), float64(len(lines))*64/1e6)
	fmt.Printf("address range     %#x - %#x\n", minAddr, maxAddr)
	fmt.Printf("bank spread       %s\n", bankSpread(lines))
}

// bankSpread summarises how touched lines distribute over 16 banks.
func bankSpread(lines map[uint64]struct{}) string {
	var counts [16]int
	for l := range lines {
		counts[l&15]++
	}
	sorted := append([]int(nil), counts[:]...)
	sort.Ints(sorted)
	return fmt.Sprintf("min %d / median %d / max %d lines per bank",
		sorted[0], sorted[8], sorted[15])
}
