package mellow

import (
	"context"
	"io"

	"mellow/internal/config"
	"mellow/internal/core"
	"mellow/internal/engine"
	"mellow/internal/experiments"
	"mellow/internal/nvm"
	"mellow/internal/policy"
	"mellow/internal/scenario"
	"mellow/internal/sim"
	"mellow/internal/trace"
	"mellow/internal/xtrace"
)

// Config is the complete system configuration (Tables I and II).
type Config = config.Config

// DefaultConfig returns the paper's baseline system: 2 GHz 8-wide core,
// 32 KB/256 KB/2 MB caches, 16-bank ReRAM with 150 ns writes, 5·10⁶
// endurance and a quadratic latency/endurance trade-off.
func DefaultConfig() Config { return config.Default() }

// Policy is a memory write policy (Table III): a base write speed plus
// the Mellow Writes mechanisms and modifiers.
type Policy = policy.Spec

// ParsePolicy resolves a canonical policy name such as "Norm",
// "B-Mellow+SC", "BE-Mellow+SC+WQ" or "Slow@1.5x+SC".
func ParsePolicy(name string) (Policy, error) { return policy.Parse(name) }

// Policies returns the paper's evaluation line-up (Figures 10–16).
func Policies() []Policy { return policy.EvaluationSet() }

// Result is the outcome of one simulation.
type Result = core.Result

// Run simulates the named workload under the policy and configuration.
func Run(cfg Config, p Policy, workload string) (Result, error) {
	return core.Run(cfg, p, workload)
}

// RunContext is Run with cancellation: the simulation aborts at its
// next checkpoint once ctx is cancelled or times out.
func RunContext(ctx context.Context, cfg Config, p Policy, workload string) (Result, error) {
	return core.RunContext(ctx, cfg, p, workload)
}

// Tick is the simulation time unit: 0.5 ns of simulated time.
type Tick = sim.Tick

// NS converts nanoseconds of simulated time to ticks.
func NS(ns uint64) Tick { return sim.NS(ns) }

// EpochSample is one closed observation interval of an observed run:
// interval deltas of the core, LLC and memory counters, plus queue and
// wear state at the epoch boundary.
type EpochSample = engine.EpochSample

// Tracker publishes an observed run's live progress and latest epoch
// through atomics; safe to read from any goroutine while the run
// executes.
type Tracker = engine.Tracker

// Observation configures an observed run: the sampling period (0:
// DefaultEpoch, the paper's 500 µs T_sample), whether samples carry the
// per-bank damage vector, and an optional live Tracker.
type Observation = experiments.Observation

// DefaultEpoch is the default sampling period: 500 µs of simulated
// time, one profiler-rotation/Wear-Quota interval.
const DefaultEpoch = engine.DefaultEpoch

// SeriesRecord labels one simulation's epoch series for export.
type SeriesRecord = experiments.SeriesRecord

// TraceRecord labels one simulation's execution timeline for export.
type TraceRecord = experiments.TraceRecord

// SimTrace is one finalized simulation execution timeline: engine
// phases, epochs and per-bank controller events in kernel ticks.
type SimTrace = xtrace.SimTrace

// TraceDoc bundles service spans and simulation timelines into one
// Chrome Trace Event Format document (WriteChrome), loadable in
// Perfetto or chrome://tracing.
type TraceDoc = xtrace.Doc

// RunObserved simulates like RunContext but samples an epoch time
// series on the side. Results are bit-identical to an unobserved run
// and the series is deterministic: same (config, policy, workload,
// observation) → same samples. Runs are memoised like RunExperiment's.
func RunObserved(ctx context.Context, cfg Config, p Policy, workload string, ob Observation) (Result, []EpochSample, error) {
	return experiments.RunObserved(ctx, cfg, p, workload, ob)
}

// WriteSeries encodes an epoch series as deterministic JSON.
func WriteSeries(w io.Writer, samples []EpochSample) error { return engine.WriteSeries(w, samples) }

// ReadSeries decodes a series written by WriteSeries, validating the
// epoch determinism contract (consecutive indexes, increasing ticks).
func ReadSeries(r io.Reader) ([]EpochSample, error) { return engine.ReadSeries(r) }

// Workloads returns the 11-benchmark suite of Table IV.
func Workloads() []string { return trace.Names() }

// Workload is a benchmark: a name plus a deterministic trace generator.
type Workload = trace.Workload

// WorkloadFromReader builds a workload that cyclically replays a textual
// trace ("<gap> <hex addr> <R|W>[!]" records; '#' comments). Use it to
// drive the simulator with traces captured from real applications.
func WorkloadFromReader(name string, r io.Reader) (Workload, error) {
	return trace.FromReader(name, r, 0)
}

// RunWorkload simulates an explicit Workload (e.g. from a trace file).
func RunWorkload(cfg Config, p Policy, w Workload) (Result, error) {
	return core.RunWorkload(cfg, p, w)
}

// MixResult is the outcome of a multiprogrammed simulation: several
// cores with private caches sharing one resistive memory system.
type MixResult = core.MixResult

// RunMix simulates one core per named workload against a shared memory
// system — the multiprogrammed setting where bank interference erodes
// the idle time Mellow Writes exploits.
func RunMix(cfg Config, p Policy, workloads ...string) (MixResult, error) {
	return core.RunMix(cfg, p, workloads)
}

// RecordTrace writes n records of a named workload's trace to w in the
// textual format WorkloadFromReader accepts.
func RecordTrace(w io.Writer, workload string, seed uint64, n int) error {
	wl, err := trace.ByName(workload)
	if err != nil {
		return err
	}
	return trace.Record(w, wl.New(seed), n)
}

// WriteMode is a write-pulse speed (normal, 1.5×, 2×, 3×).
type WriteMode = nvm.WriteMode

// Write pulse speeds.
const (
	WriteNormal = nvm.WriteNormal
	WriteSlow15 = nvm.WriteSlow15
	WriteSlow20 = nvm.WriteSlow20
	WriteSlow30 = nvm.WriteSlow30
)

// Device is the ReRAM latency/endurance model (Equation 2).
type Device = nvm.Device

// Experiment regenerates one table or figure of the paper.
type Experiment = experiments.Experiment

// Experiments returns every reproducible artifact in paper order.
func Experiments() []Experiment { return experiments.All() }

// ExperimentByID finds one experiment ("fig11", "tab4", ...).
func ExperimentByID(id string) (Experiment, error) { return experiments.ByID(id) }

// ExperimentOptions configure an experiment run.
type ExperimentOptions = experiments.Options

// RunExperiment executes one experiment, writing its tables to out.
func RunExperiment(id string, cfg Config, out io.Writer, workloads ...string) error {
	return RunExperimentContext(context.Background(), id, cfg, out, workloads...)
}

// RunExperimentContext is RunExperiment with cancellation: long sweeps
// abort at the next simulation checkpoint when ctx ends.
func RunExperimentContext(ctx context.Context, id string, cfg Config, out io.Writer, workloads ...string) error {
	e, err := experiments.ByID(id)
	if err != nil {
		return err
	}
	return e.Run(experiments.Options{Ctx: ctx, Cfg: cfg, Out: out, Workloads: workloads})
}

// WorkloadSpec is the declarative form of a workload generator: the
// parameterization of a Table IV benchmark (or a replayed trace) as
// plain, content-addressable data.
type WorkloadSpec = trace.Spec

// WorkloadSpecByName returns the declarative spec of a builtin
// workload.
func WorkloadSpecByName(name string) (WorkloadSpec, error) { return trace.SpecByName(name) }

// Scenario is one declarative experiment document: workload specs ×
// policy/leveler matrices × config overrides, with a committed expected
// result (see internal/scenario and the scenarios/ corpus).
type Scenario = scenario.Scenario

// ScenarioResult is a scenario run's deterministic result document —
// the bytes pinned by the committed .expected goldens.
type ScenarioResult = scenario.Result

// LoadScenario reads, resolves and validates one scenario file.
func LoadScenario(path string) (*Scenario, error) { return scenario.Load(path) }

// RunScenario executes a scenario against the base configuration,
// fanning its matrix out through the memoised simulation path.
func RunScenario(ctx context.Context, base Config, sc *Scenario) (*ScenarioResult, error) {
	return experiments.RunScenario(ctx, base, sc, nil)
}
