package mellow_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"mellow"
)

func quickConfig() mellow.Config {
	cfg := mellow.DefaultConfig()
	cfg.Run.WarmupInstructions = 500_000
	cfg.Run.DetailedInstructions = 1_500_000
	return cfg
}

func TestFacadeRun(t *testing.T) {
	spec, err := mellow.ParsePolicy("BE-Mellow+SC")
	if err != nil {
		t.Fatal(err)
	}
	res, err := mellow.Run(quickConfig(), spec, "stream")
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC <= 0 {
		t.Errorf("IPC = %v", res.IPC)
	}
	if res.Policy != "BE-Mellow+SC" || res.Workload != "stream" {
		t.Errorf("labels: %q %q", res.Policy, res.Workload)
	}
}

func TestFacadeWorkloads(t *testing.T) {
	if got := len(mellow.Workloads()); got != 11 {
		t.Errorf("workload count = %d, want 11", got)
	}
}

func TestFacadePolicies(t *testing.T) {
	ps := mellow.Policies()
	if len(ps) != 9 {
		t.Fatalf("evaluation set = %d policies, want 9", len(ps))
	}
	if ps[0].Name != "Norm" || ps[len(ps)-1].Name != "BE-Mellow+SC+WQ" {
		t.Errorf("unexpected line-up: %v ... %v", ps[0].Name, ps[len(ps)-1].Name)
	}
}

func TestFacadeExperiments(t *testing.T) {
	if got := len(mellow.Experiments()); got != 24 {
		t.Errorf("experiment count = %d, want 24", got)
	}
	if _, err := mellow.ExperimentByID("fig11"); err != nil {
		t.Error(err)
	}
	if _, err := mellow.ExperimentByID("nope"); err == nil {
		t.Error("expected error for unknown experiment")
	}
}

func TestFacadeRunExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := mellow.RunExperiment("tab6", quickConfig(), &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "CellC") {
		t.Errorf("Table VI output incomplete:\n%s", buf.String())
	}
}

func TestWriteModesExported(t *testing.T) {
	if mellow.WriteSlow30.Multiplier() != 3.0 || mellow.WriteNormal.IsSlow() {
		t.Error("write mode re-exports broken")
	}
}

func TestDeviceExported(t *testing.T) {
	var d mellow.Device = mellow.DefaultConfig().Memory.Device
	if d.Endurance(mellow.WriteSlow30) != 4.5e7 {
		t.Errorf("3x endurance = %v, want 4.5e7", d.Endurance(mellow.WriteSlow30))
	}
}

func TestFacadeTraceReplay(t *testing.T) {
	// A tiny synthetic trace: streaming writes over 64 lines.
	var sb strings.Builder
	for i := 0; i < 64; i++ {
		fmt.Fprintf(&sb, "9 %x W\n", 0x4000000+i*64)
	}
	w, err := mellow.WorkloadFromReader("toy", strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickConfig()
	cfg.Run.WarmupInstructions = 10_000
	cfg.Run.DetailedInstructions = 100_000
	spec, _ := mellow.ParsePolicy("Norm")
	res, err := mellow.RunWorkload(cfg, spec, w)
	if err != nil {
		t.Fatal(err)
	}
	if res.Workload != "toy" || res.IPC <= 0 {
		t.Errorf("replay result: %+v", res)
	}
}

func TestFacadeRunMix(t *testing.T) {
	cfg := quickConfig()
	cfg.Run.WarmupInstructions = 200_000
	cfg.Run.DetailedInstructions = 600_000
	spec, _ := mellow.ParsePolicy("B-Mellow+SC")
	m, err := mellow.RunMix(cfg, spec, "stream", "gups")
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Cores) != 2 || m.WeightedIPC() <= 0 {
		t.Errorf("mix result: %+v", m)
	}
	if m.LifetimeYears() <= 0 {
		t.Errorf("mix lifetime: %v", m.LifetimeYears())
	}
}

func TestFacadeRecordTrace(t *testing.T) {
	var sb strings.Builder
	if err := mellow.RecordTrace(&sb, "stream", 1, 100); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(sb.String(), "\n")
	if lines != 100 {
		t.Errorf("recorded %d lines, want 100", lines)
	}
	if err := mellow.RecordTrace(&sb, "nope", 1, 1); err == nil {
		t.Error("unknown workload accepted")
	}
	// Recorded output replays.
	w, err := mellow.WorkloadFromReader("replay", strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if w.New(1).Next().Addr == 0 {
		t.Error("replayed op looks empty")
	}
}
