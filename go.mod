module mellow

go 1.22
